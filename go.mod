module thor

go 1.22
