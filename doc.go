// Package thor is a from-scratch Go reproduction of "Mitigating Data
// Sparsity in Integrated Data through Text Conceptualization" (ICDE 2024):
// the THOR entity-centric slot-filling system, every substrate it depends
// on, the comparator systems of its evaluation, and a benchmark harness that
// regenerates every table and figure of the paper.
//
// See README.md for the quickstart, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured record. The root-level benchmarks
// in bench_test.go regenerate each table/figure; `go run ./cmd/thorbench`
// prints them all.
package thor
