package pos

import (
	"strings"
	"unicode"

	"thor/internal/text"
)

// TaggedToken pairs a token with its part-of-speech tag.
type TaggedToken struct {
	text.Token
	// Tag is the assigned Universal Dependencies part of speech.
	Tag Tag
}

// Tagger assigns Universal Dependencies tags to token sequences. The zero
// value is not usable; construct with New. A Tagger is safe for concurrent
// use.
type Tagger struct {
	// extra holds caller-supplied lexicon entries that take precedence over
	// the built-in open-class lexicon (but not over closed-class words).
	extra map[string]Tag
}

// New returns a Tagger with the built-in lexicons.
func New() *Tagger { return &Tagger{extra: map[string]Tag{}} }

// AddLexicon registers extra word→tag entries, e.g. domain nouns emitted by
// a dataset generator. Entries are matched lower-cased.
func (tg *Tagger) AddLexicon(entries map[string]Tag) {
	for w, t := range entries {
		tg.extra[strings.ToLower(w)] = t
	}
}

// Tag tags a sentence. The returned slice is parallel to sent.Tokens.
func (tg *Tagger) Tag(sent text.Sentence) []TaggedToken {
	out := make([]TaggedToken, len(sent.Tokens))
	for i, tok := range sent.Tokens {
		out[i] = TaggedToken{Token: tok, Tag: tg.lexical(tok, i == 0)}
	}
	tg.patch(out)
	return out
}

// lexical assigns a context-free tag from lexicons, shape and suffixes.
func (tg *Tagger) lexical(tok text.Token, sentenceInitial bool) Tag {
	switch tok.Kind {
	case text.Punct:
		return PUNCT
	case text.Number:
		return NUM
	case text.Symbol:
		return SYM
	}
	w := tok.Lower
	if t, ok := closedClass[w]; ok {
		return t
	}
	if t, ok := tg.extra[w]; ok {
		return t
	}
	if t, ok := openClass[w]; ok {
		return t
	}
	// Capitalized non-initial word → proper noun. Sentence-initial
	// capitalization is ambiguous; fall through to suffix rules, and let a
	// patch rule promote if needed.
	if !sentenceInitial && isCapitalized(tok.Text) {
		return PROPN
	}
	return suffixTag(w)
}

// suffixTag guesses an open-class tag from derivational suffixes. Nouns are
// the default, which matches both English type frequency and THOR's bias
// (false NOUN readings merely produce extra candidate phrases; the matcher
// filters them).
func suffixTag(w string) Tag {
	switch {
	case hasAnySuffix(w, "ly"):
		return ADV
	case hasAnySuffix(w, "ous", "ful", "ive", "ic", "al", "able", "ible", "ant", "ent", "ar", "ary", "less", "ish"):
		return ADJ
	case hasAnySuffix(w, "ize", "ise", "ify", "ated", "ates"):
		return VERB
	case hasAnySuffix(w, "ing", "ed"):
		// Ambiguous between VERB (participles) and NOUN/ADJ (gerunds,
		// deverbal adjectives). Default to VERB; patch rules repair the
		// common "DET _ NOUN" and phrase-final gerund cases.
		return VERB
	default:
		return NOUN
	}
}

func hasAnySuffix(w string, suffixes ...string) bool {
	for _, s := range suffixes {
		if len(w) > len(s)+2 && strings.HasSuffix(w, s) {
			return true
		}
	}
	return false
}

func isCapitalized(s string) bool {
	for _, r := range s {
		return unicode.IsUpper(r)
	}
	return false
}

// patch applies contextual repair rules over the context-free tags, in the
// spirit of Brill's transformation-based tagging.
func (tg *Tagger) patch(toks []TaggedToken) {
	for i := range toks {
		t := &toks[i]
		prev, next := prevTag(toks, i), nextTag(toks, i)

		// Rule 1: an -ing/-ed word before a nominal or adjective is an
		// adjective ("slow-growing tumor", "qualified engineer") — but only
		// in positions where a finite verb cannot occur (after a
		// determiner, adjective, conjunction or at phrase start), so
		// perfect tenses ("has developed symptoms") keep their verb.
		adjContext := prev == DET || prev == ADJ || prev == NUM || prev == ADP || prev == CCONJ || prev == PUNCT || prev == X
		if t.Tag == VERB && adjContext && (strings.HasSuffix(t.Lower, "ing") || strings.HasSuffix(t.Lower, "ed")) && (next.IsNominal() || next == ADJ) {
			t.Tag = ADJ
		}

		// Rule 2: a verb-shaped word directly after a determiner or
		// adjective is a noun ("the swelling", "severe itching").
		if t.Tag == VERB && (prev == DET || prev == ADJ || prev == NUM) {
			t.Tag = NOUN
		}

		// Rule 3: sentence-initial capitalized unknown word followed by a
		// verb or auxiliary (possibly across adverbs: "Tuberculosis
		// generally damages ...") is likely a proper noun.
		if i == 0 && t.Tag == NOUN && isCapitalized(t.Text) && followedByVerb(toks, i) {
			if _, known := openClass[t.Lower]; !known {
				if _, known := tg.extra[t.Lower]; !known {
					t.Tag = PROPN
				}
			}
		}

		// Rule 4: "to" before a verb stays PART; before a nominal it is a
		// preposition ("to the hospital").
		if t.Lower == "to" && (next.IsNominal() || next == DET) {
			t.Tag = ADP
		}

		// Rule 5: an auxiliary with no following verb is a main verb
		// ("she has two degrees").
		if t.Tag == AUX && (t.Lower == "has" || t.Lower == "have" || t.Lower == "had" || t.Lower == "do" || t.Lower == "does" || t.Lower == "did") {
			if !followedByVerb(toks, i) {
				t.Tag = VERB
			}
		}

		// Rule 6: "that"/"which" after a nominal introduces a relative
		// clause → SCONJ-like behavior; tag as PRON is kept, but "that"
		// before a clause verb becomes SCONJ.
		if t.Lower == "that" && prev == VERB {
			t.Tag = SCONJ
		}
	}
}

func prevTag(toks []TaggedToken, i int) Tag {
	if i == 0 {
		return X
	}
	return toks[i-1].Tag
}

func nextTag(toks []TaggedToken, i int) Tag {
	if i+1 >= len(toks) {
		return X
	}
	return toks[i+1].Tag
}

// followedByVerb reports whether a VERB/AUX appears within the next three
// tokens, skipping adverbs and particles.
func followedByVerb(toks []TaggedToken, i int) bool {
	for j := i + 1; j < len(toks) && j <= i+3; j++ {
		switch toks[j].Tag {
		case ADV, PART:
			continue
		case VERB, AUX:
			return true
		default:
			return false
		}
	}
	return false
}
