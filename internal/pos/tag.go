package pos

// Tag is a Universal Dependencies part-of-speech tag.
type Tag int

const (
	X     Tag = iota // other / unknown
	NOUN             // common noun
	PROPN            // proper noun
	PRON             // pronoun
	VERB             // lexical verb
	AUX              // auxiliary verb
	ADJ              // adjective
	ADV              // adverb
	DET              // determiner
	ADP              // adposition (preposition)
	CCONJ            // coordinating conjunction
	SCONJ            // subordinating conjunction
	NUM              // numeral
	PART             // particle ("to", "not", possessive 's)
	PUNCT            // punctuation
	SYM              // symbol
)

var tagNames = [...]string{
	X: "X", NOUN: "NOUN", PROPN: "PROPN", PRON: "PRON", VERB: "VERB",
	AUX: "AUX", ADJ: "ADJ", ADV: "ADV", DET: "DET", ADP: "ADP",
	CCONJ: "CCONJ", SCONJ: "SCONJ", NUM: "NUM", PART: "PART",
	PUNCT: "PUNCT", SYM: "SYM",
}

// String returns the UD tag name.
func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return "X"
}

// IsNominal reports whether the tag can head a noun phrase.
func (t Tag) IsNominal() bool { return t == NOUN || t == PROPN || t == PRON }

// IsModifier reports whether the tag can modify a noun inside a noun phrase.
func (t Tag) IsModifier() bool { return t == ADJ || t == DET || t == NUM }
