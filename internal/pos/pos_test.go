package pos

import (
	"testing"

	"thor/internal/text"
)

func tagSentence(t *testing.T, tg *Tagger, s string) []TaggedToken {
	t.Helper()
	sents := text.SplitSentences(s)
	if len(sents) != 1 {
		t.Fatalf("expected 1 sentence from %q, got %d", s, len(sents))
	}
	return tg.Tag(sents[0])
}

func tagsOf(tt []TaggedToken) []Tag {
	out := make([]Tag, len(tt))
	for i, x := range tt {
		out[i] = x.Tag
	}
	return out
}

func TestTagRunningExample(t *testing.T) {
	// The paper's Fig. 3 sentence.
	tt := tagSentence(t, New(), "Tuberculosis generally damages the lungs.")
	want := []Tag{PROPN, ADV, VERB, DET, NOUN, PUNCT}
	got := tagsOf(tt)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %q: tag = %v, want %v", tt[i].Text, got[i], want[i])
		}
	}
}

func TestTagDeterminerNounRepair(t *testing.T) {
	tt := tagSentence(t, New(), "The swelling increased.")
	if tt[1].Tag != NOUN {
		t.Errorf("swelling after determiner = %v, want NOUN", tt[1].Tag)
	}
}

func TestTagParticipleAdjective(t *testing.T) {
	tt := tagSentence(t, New(), "a slow-growing tumor")
	if tt[1].Tag != ADJ {
		t.Errorf("slow-growing = %v, want ADJ", tt[1].Tag)
	}
	if tt[2].Tag != NOUN {
		t.Errorf("tumor = %v, want NOUN", tt[2].Tag)
	}
}

func TestTagClosedClass(t *testing.T) {
	tt := tagSentence(t, New(), "It is in the brain and the nerve.")
	want := []Tag{PRON, AUX, ADP, DET, NOUN, CCONJ, DET, NOUN, PUNCT}
	got := tagsOf(tt)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %q: tag = %v, want %v", tt[i].Text, got[i], want[i])
		}
	}
}

func TestTagNumbers(t *testing.T) {
	tt := tagSentence(t, New(), "She has 5 years of experience.")
	if tt[2].Tag != NUM {
		t.Errorf("5 = %v, want NUM", tt[2].Tag)
	}
	// "has" with no following verb is a main verb.
	if tt[1].Tag != VERB {
		t.Errorf("has = %v, want VERB", tt[1].Tag)
	}
}

func TestTagHasAuxiliary(t *testing.T) {
	tt := tagSentence(t, New(), "The patient has developed symptoms.")
	if tt[2].Tag != AUX {
		t.Errorf("has before participle = %v, want AUX", tt[2].Tag)
	}
}

func TestTagProperNounMidSentence(t *testing.T) {
	tt := tagSentence(t, New(), "She studied at Stanford University.")
	if tt[3].Tag != PROPN || tt[4].Tag != PROPN {
		t.Errorf("Stanford University = %v %v, want PROPN PROPN", tt[3].Tag, tt[4].Tag)
	}
}

func TestTagSuffixHeuristics(t *testing.T) {
	tg := New()
	cases := map[string]Tag{
		"cancerous":  ADJ,
		"surgical":   ADJ,
		"rapidly":    ADV,
		"infection":  NOUN,
		"stabilize":  VERB,
		"vestibular": ADJ,
	}
	for w, want := range cases {
		tt := tagSentence(t, tg, "xxx "+w+" yyy")
		if tt[1].Tag != want {
			t.Errorf("suffix tag(%q) = %v, want %v", w, tt[1].Tag, want)
		}
	}
}

func TestTagCustomLexicon(t *testing.T) {
	tg := New()
	tg.AddLexicon(map[string]Tag{"empyema": NOUN, "metformin": NOUN})
	tt := tagSentence(t, tg, "empyema may follow")
	if tt[0].Tag != NOUN {
		t.Errorf("custom lexicon ignored: empyema = %v", tt[0].Tag)
	}
}

func TestTagToPreposition(t *testing.T) {
	tt := tagSentence(t, New(), "She went to the hospital to recover.")
	if tt[2].Tag != ADP {
		t.Errorf("to-the-hospital: to = %v, want ADP", tt[2].Tag)
	}
	if tt[5].Tag != PART {
		t.Errorf("to-recover: to = %v, want PART", tt[5].Tag)
	}
}

func TestTagNominalHelpers(t *testing.T) {
	if !NOUN.IsNominal() || !PROPN.IsNominal() || !PRON.IsNominal() {
		t.Error("nominal tags misreported")
	}
	if VERB.IsNominal() || ADJ.IsNominal() {
		t.Error("non-nominal tags misreported")
	}
	if !ADJ.IsModifier() || !DET.IsModifier() || !NUM.IsModifier() {
		t.Error("modifier tags misreported")
	}
}

func TestTagStringNames(t *testing.T) {
	if NOUN.String() != "NOUN" || PUNCT.String() != "PUNCT" || Tag(99).String() != "X" {
		t.Error("Tag.String misbehaves")
	}
}

func TestTagEmptySentence(t *testing.T) {
	tg := New()
	out := tg.Tag(text.Sentence{})
	if len(out) != 0 {
		t.Errorf("tagging empty sentence = %v", out)
	}
}

func TestTagCopulaSentence(t *testing.T) {
	tt := tagSentence(t, New(), "The condition is caused by bacteria.")
	if tt[2].Tag != AUX {
		t.Errorf("is = %v, want AUX", tt[2].Tag)
	}
	if tt[3].Tag != VERB {
		t.Errorf("caused = %v, want VERB (after auxiliary)", tt[3].Tag)
	}
}

func TestTagCoordinatedAdjectives(t *testing.T) {
	tt := tagSentence(t, New(), "a chronic and severe infection")
	if tt[1].Tag != ADJ || tt[3].Tag != ADJ {
		t.Errorf("chronic/severe = %v/%v, want ADJ/ADJ", tt[1].Tag, tt[3].Tag)
	}
	if tt[2].Tag != CCONJ {
		t.Errorf("and = %v, want CCONJ", tt[2].Tag)
	}
}

func TestTagAllPunctuationKinds(t *testing.T) {
	tg := New()
	sents := text.SplitSentences("Wait - really, (yes) \"ok\"!")
	if len(sents) == 0 {
		t.Fatal("no sentences")
	}
	for _, tok := range tg.Tag(sents[0]) {
		if tok.Kind == text.Punct && tok.Tag != PUNCT {
			t.Errorf("punct token %q tagged %v", tok.Text, tok.Tag)
		}
	}
}

func TestTagDomainDrugNames(t *testing.T) {
	tg := New()
	tg.AddLexicon(map[string]Tag{"amoxicillin": NOUN})
	tt := tagSentence(t, tg, "Doctors prescribe amoxicillin daily.")
	if tt[2].Tag != NOUN {
		t.Errorf("amoxicillin = %v, want NOUN via lexicon", tt[2].Tag)
	}
	if tt[1].Tag != VERB {
		t.Errorf("prescribe = %v, want VERB", tt[1].Tag)
	}
}

func TestTagConsistencyAcrossCalls(t *testing.T) {
	tg := New()
	a := tagsOf(tagSentence(t, tg, "Tuberculosis generally damages the lungs."))
	b := tagsOf(tagSentence(t, tg, "Tuberculosis generally damages the lungs."))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tagger not deterministic at token %d", i)
		}
	}
}
