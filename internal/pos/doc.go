// Package pos implements a deterministic rule-based part-of-speech tagger
// over the Universal Dependencies tag set.
//
// The tagger plays the role of spaCy's statistical tagger in the original
// THOR system. It combines (1) a closed-class lexicon, (2) an open-class
// lexicon of frequent words, (3) suffix and shape heuristics, and (4) a small
// set of contextual patch rules in the spirit of a Brill tagger. THOR only
// consumes the tags NOUN/PROPN/PRON (noun-phrase heads), ADJ/DET/NUM
// (modifiers) and VERB/ADP (phrase boundaries), so the rules are tuned for
// exactly those distinctions.
package pos
