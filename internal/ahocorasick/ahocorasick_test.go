package ahocorasick

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func matchedStrings(a *Automaton, text string, ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = strings.ToLower(text[m.Start:m.End])
	}
	return out
}

func TestFindAllBasic(t *testing.T) {
	a := NewAutomaton([]string{"he", "she", "his", "hers"})
	ms := a.FindAll("ushers")
	got := matchedStrings(a, "ushers", ms)
	sort.Strings(got)
	want := []string{"he", "hers", "she"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("matches = %v, want %v", got, want)
	}
}

func TestFindAllOffsets(t *testing.T) {
	a := NewAutomaton([]string{"acne", "skin cancer"})
	text := "Acne may precede skin cancer screening."
	for _, m := range a.FindAll(text) {
		span := strings.ToLower(text[m.Start:m.End])
		if span != strings.ToLower(a.Pattern(m.Pattern)) {
			t.Errorf("span %q != pattern %q", span, a.Pattern(m.Pattern))
		}
	}
}

func TestFindAllCaseInsensitive(t *testing.T) {
	a := NewAutomaton([]string{"Tuberculosis"})
	if ms := a.FindAll("TUBERCULOSIS damages the lungs"); len(ms) != 1 {
		t.Errorf("case-insensitive match failed: %v", ms)
	}
}

func TestFindWholeWords(t *testing.T) {
	a := NewAutomaton([]string{"acne"})
	if ms := a.FindWholeWords("the acnestis area"); len(ms) != 0 {
		t.Errorf("substring matched as whole word: %v", ms)
	}
	if ms := a.FindWholeWords("severe acne appeared"); len(ms) != 1 {
		t.Errorf("whole word not matched: %v", ms)
	}
	if ms := a.FindWholeWords("acne"); len(ms) != 1 {
		t.Errorf("boundary-at-edges not matched: %v", ms)
	}
}

func TestOverlappingMatches(t *testing.T) {
	a := NewAutomaton([]string{"aba", "bab"})
	ms := a.FindAll("ababab")
	if len(ms) != 4 {
		t.Errorf("overlap: got %d matches, want 4: %v", len(ms), ms)
	}
}

func TestEmptyPatternsAndText(t *testing.T) {
	a := NewAutomaton([]string{"", "x"})
	if ms := a.FindAll(""); len(ms) != 0 {
		t.Errorf("empty text matched: %v", ms)
	}
	if ms := a.FindAll("x"); len(ms) != 1 || ms[0].Pattern != 1 {
		t.Errorf("pattern indexing off after empty pattern: %v", ms)
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestDuplicatePatterns(t *testing.T) {
	a := NewAutomaton([]string{"flu", "flu"})
	ms := a.FindAll("flu season")
	if len(ms) != 2 {
		t.Errorf("duplicate patterns should both report: %v", ms)
	}
}

func TestManyPatterns(t *testing.T) {
	// A dictionary resembling the structured-data use: hundreds of
	// multi-word instances.
	var pats []string
	for i := 0; i < 300; i++ {
		pats = append(pats, "term"+string(rune('a'+i%26))+"x"+strings.Repeat("q", i%5))
	}
	pats = append(pats, "acoustic neuroma")
	a := NewAutomaton(pats)
	ms := a.FindWholeWords("an acoustic neuroma is a tumor")
	if len(ms) != 1 || a.Pattern(ms[0].Pattern) != "acoustic neuroma" {
		t.Errorf("multiword dictionary match failed: %v", ms)
	}
}

// Property: every reported span equals its pattern (lower-cased), and a
// naive strings.Index scan finds the same number of occurrences.
func TestAgainstNaiveSearch(t *testing.T) {
	patterns := []string{"ab", "bc", "abc", "ca", "a"}
	a := NewAutomaton(patterns)
	f := func(raw string) bool {
		// Restrict the alphabet so matches actually occur.
		var b strings.Builder
		for _, r := range raw {
			b.WriteByte("abc"[int(r)%3])
		}
		text := b.String()
		got := len(a.FindAll(text))
		want := 0
		for _, p := range patterns {
			for i := 0; i+len(p) <= len(text); i++ {
				if text[i:i+len(p)] == p {
					want++
				}
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
