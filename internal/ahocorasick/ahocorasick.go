package ahocorasick

// Match is a single pattern occurrence in the searched text.
type Match struct {
	// Pattern is the index of the matched pattern, in insertion order.
	Pattern int
	// Start and End are byte offsets of the occurrence, End exclusive.
	Start, End int
}

type node struct {
	next    map[byte]int32
	fail    int32
	outputs []int32 // pattern indices terminating here
}

// Automaton is an immutable Aho–Corasick automaton over a set of patterns.
// Build one with NewAutomaton; it is then safe for concurrent use.
type Automaton struct {
	nodes    []node
	patterns []string
}

// NewAutomaton builds the automaton for the given patterns. Matching is
// case-insensitive for ASCII letters (patterns and text are lowered with
// lowerASCII). Empty patterns are ignored but keep their index so
// Match.Pattern remains meaningful.
func NewAutomaton(patterns []string) *Automaton {
	a := &Automaton{
		nodes:    []node{{next: map[byte]int32{}}},
		patterns: make([]string, len(patterns)),
	}
	for i, p := range patterns {
		a.patterns[i] = p
		lp := lowerASCII(p)
		if lp == "" {
			continue
		}
		a.insert(lp, int32(i))
	}
	a.buildFailureLinks()
	return a
}

// lowerASCII lowercases ASCII letters only, byte for byte. Full Unicode
// case folding can change byte lengths ('K' U+212A → 'k', 'İ' U+0130 →
// "i̇"), which desynchronizes match offsets computed in the lowered text
// from the original and yields spans that slice mid-rune or past the end
// (found by FuzzAutomaton). Byte-preserving folding keeps every offset
// valid in both; non-ASCII letters simply match case-sensitively.
func lowerASCII(s string) string {
	i := 0
	for ; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			break
		}
	}
	if i == len(s) {
		return s
	}
	b := []byte(s)
	for ; i < len(b); i++ {
		if c := b[i]; c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}

func (a *Automaton) insert(pattern string, id int32) {
	cur := int32(0)
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		nxt, ok := a.nodes[cur].next[c]
		if !ok {
			a.nodes = append(a.nodes, node{next: map[byte]int32{}})
			nxt = int32(len(a.nodes) - 1)
			a.nodes[cur].next[c] = nxt
		}
		cur = nxt
	}
	a.nodes[cur].outputs = append(a.nodes[cur].outputs, id)
}

// buildFailureLinks computes failure transitions breadth-first and merges
// output sets along failure chains.
func (a *Automaton) buildFailureLinks() {
	queue := make([]int32, 0, len(a.nodes))
	for _, child := range a.nodes[0].next {
		a.nodes[child].fail = 0
		queue = append(queue, child)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for c, child := range a.nodes[cur].next {
			queue = append(queue, child)
			f := a.nodes[cur].fail
			for f != 0 {
				if nxt, ok := a.nodes[f].next[c]; ok {
					f = nxt
					goto found
				}
				f = a.nodes[f].fail
			}
			if nxt, ok := a.nodes[0].next[c]; ok && nxt != child {
				f = nxt
			} else {
				f = 0
			}
		found:
			a.nodes[child].fail = f
			a.nodes[child].outputs = append(a.nodes[child].outputs, a.nodes[f].outputs...)
		}
	}
}

// FindAll returns every occurrence of every pattern in text, in order of
// match end position. Matching is ASCII-case-insensitive.
func (a *Automaton) FindAll(text string) []Match {
	lower := lowerASCII(text)
	var out []Match
	cur := int32(0)
	for i := 0; i < len(lower); i++ {
		c := lower[i]
		for {
			if nxt, ok := a.nodes[cur].next[c]; ok {
				cur = nxt
				break
			}
			if cur == 0 {
				break
			}
			cur = a.nodes[cur].fail
		}
		for _, pid := range a.nodes[cur].outputs {
			// lowerASCII preserves byte length, so the lowered pattern's
			// length is the matched span length and every offset computed
			// in lower is valid in text.
			plen := len(a.patterns[pid])
			out = append(out, Match{Pattern: int(pid), Start: i + 1 - plen, End: i + 1})
		}
	}
	return out
}

// FindWholeWords returns matches whose span is delimited by non-letter
// characters (or text boundaries) on both sides, so the pattern "acne" does
// not fire inside "acnestis". This is how the Baseline model uses the
// automaton.
func (a *Automaton) FindWholeWords(text string) []Match {
	all := a.FindAll(text)
	out := all[:0]
	for _, m := range all {
		if isWordBoundary(text, m.Start-1) && isWordBoundary(text, m.End) {
			out = append(out, m)
		}
	}
	return out
}

func isWordBoundary(text string, i int) bool {
	if i < 0 || i >= len(text) {
		return true
	}
	c := text[i]
	return !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9')
}

// Pattern returns the pattern string for an index.
func (a *Automaton) Pattern(i int) string { return a.patterns[i] }

// Len returns the number of patterns the automaton was built with.
func (a *Automaton) Len() int { return len(a.patterns) }
