package ahocorasick

// Match is a single pattern occurrence in the searched text.
type Match struct {
	// Pattern is the index of the matched pattern, in insertion order.
	Pattern int
	// Start and End are byte offsets of the occurrence, End exclusive.
	Start, End int
}

// node stores its transitions as parallel sparse arrays: keys[i] maps to
// vals[i]. Nodes average a handful of children, where a linear scan over a
// byte slice beats a map lookup's hashing by a wide margin (the per-character
// map access dominated matching-heavy profiles).
type node struct {
	keys    []byte
	vals    []int32
	fail    int32
	outputs []int32 // pattern indices terminating here
}

// get returns the child for byte c, if any.
func (n *node) get(c byte) (int32, bool) {
	for i, k := range n.keys {
		if k == c {
			return n.vals[i], true
		}
	}
	return 0, false
}

func (n *node) set(c byte, v int32) {
	n.keys = append(n.keys, c)
	n.vals = append(n.vals, v)
}

// Automaton is an immutable Aho–Corasick automaton over a set of patterns.
// Build one with NewAutomaton; it is then safe for concurrent use.
type Automaton struct {
	nodes    []node
	patterns []string
	// root is the dense root-transition table: root[c] is the state entered
	// from the root on byte c (0 when no pattern starts with c). The root is
	// the fallback target of every failure chain, so it is consulted far more
	// often than any other node and earns a direct index.
	root [256]int32
}

// NewAutomaton builds the automaton for the given patterns. Matching is
// case-insensitive for ASCII letters (patterns and text are lowered with
// lowerASCII). Empty patterns are ignored but keep their index so
// Match.Pattern remains meaningful.
func NewAutomaton(patterns []string) *Automaton {
	a := &Automaton{
		nodes:    make([]node, 1),
		patterns: make([]string, len(patterns)),
	}
	for i, p := range patterns {
		a.patterns[i] = p
		lp := lowerASCII(p)
		if lp == "" {
			continue
		}
		a.insert(lp, int32(i))
	}
	a.buildFailureLinks()
	for i, k := range a.nodes[0].keys {
		a.root[k] = a.nodes[0].vals[i]
	}
	return a
}

// lowerASCII lowercases ASCII letters only, byte for byte. Full Unicode
// case folding can change byte lengths ('K' U+212A → 'k', 'İ' U+0130 →
// "i̇"), which desynchronizes match offsets computed in the lowered text
// from the original and yields spans that slice mid-rune or past the end
// (found by FuzzAutomaton). Byte-preserving folding keeps every offset
// valid in both; non-ASCII letters simply match case-sensitively.
func lowerASCII(s string) string {
	i := 0
	for ; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			break
		}
	}
	if i == len(s) {
		return s
	}
	b := []byte(s)
	for ; i < len(b); i++ {
		if c := b[i]; c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}

func (a *Automaton) insert(pattern string, id int32) {
	cur := int32(0)
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		nxt, ok := a.nodes[cur].get(c)
		if !ok {
			a.nodes = append(a.nodes, node{})
			nxt = int32(len(a.nodes) - 1)
			a.nodes[cur].set(c, nxt)
		}
		cur = nxt
	}
	a.nodes[cur].outputs = append(a.nodes[cur].outputs, id)
}

// buildFailureLinks computes failure transitions breadth-first and merges
// output sets along failure chains.
func (a *Automaton) buildFailureLinks() {
	queue := make([]int32, 0, len(a.nodes))
	for _, child := range a.nodes[0].vals {
		a.nodes[child].fail = 0
		queue = append(queue, child)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for i, c := range a.nodes[cur].keys {
			child := a.nodes[cur].vals[i]
			queue = append(queue, child)
			f := a.nodes[cur].fail
			for f != 0 {
				if nxt, ok := a.nodes[f].get(c); ok {
					f = nxt
					goto found
				}
				f = a.nodes[f].fail
			}
			if nxt, ok := a.nodes[0].get(c); ok && nxt != child {
				f = nxt
			} else {
				f = 0
			}
		found:
			a.nodes[child].fail = f
			a.nodes[child].outputs = append(a.nodes[child].outputs, a.nodes[f].outputs...)
		}
	}
}

// FindAll returns every occurrence of every pattern in text, in order of
// match end position. Matching is ASCII-case-insensitive: text bytes are
// lowered on the fly, so no lowered copy of the input is allocated.
func (a *Automaton) FindAll(text string) []Match {
	return a.AppendAll(nil, text)
}

// AppendAll appends every occurrence of every pattern in text to dst and
// returns it, in order of match end position. Callers scanning many spans can
// reuse one buffer across calls (`buf = a.AppendAll(buf[:0], span)`).
func (a *Automaton) AppendAll(dst []Match, text string) []Match {
	cur := int32(0)
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		for cur != 0 {
			if nxt, ok := a.nodes[cur].get(c); ok {
				cur = nxt
				goto stepped
			}
			cur = a.nodes[cur].fail
		}
		cur = a.root[c]
	stepped:
		for _, pid := range a.nodes[cur].outputs {
			// lowerASCII preserves byte length, so the lowered pattern's
			// length is the matched span length and every offset computed
			// in the lowered view is valid in text.
			plen := len(a.patterns[pid])
			dst = append(dst, Match{Pattern: int(pid), Start: i + 1 - plen, End: i + 1})
		}
	}
	return dst
}

// FindWholeWords returns matches whose span is delimited by non-letter
// characters (or text boundaries) on both sides, so the pattern "acne" does
// not fire inside "acnestis". This is how the Baseline model uses the
// automaton.
func (a *Automaton) FindWholeWords(text string) []Match {
	return a.AppendWholeWords(nil, text)
}

// AppendWholeWords is FindWholeWords appending into a reusable buffer.
func (a *Automaton) AppendWholeWords(dst []Match, text string) []Match {
	all := a.AppendAll(dst, text)
	out := all[:len(dst)]
	for _, m := range all[len(dst):] {
		if isWordBoundary(text, m.Start-1) && isWordBoundary(text, m.End) {
			out = append(out, m)
		}
	}
	return out
}

func isWordBoundary(text string, i int) bool {
	if i < 0 || i >= len(text) {
		return true
	}
	c := text[i]
	return !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9')
}

// Pattern returns the pattern string for an index.
func (a *Automaton) Pattern(i int) string { return a.patterns[i] }

// Len returns the number of patterns the automaton was built with.
func (a *Automaton) Len() int { return len(a.patterns) }
