package ahocorasick

import (
	"strings"
	"testing"
)

// FuzzAutomaton feeds the automaton arbitrary pattern sets and texts. The
// first operand is a newline-separated pattern blob (capped to keep build
// cost bounded); the second is the text to search. It pins the two
// invariants the Unicode-lowering bug violated (match spans must be valid
// byte ranges of the original text, and the span must actually equal the
// pattern under ASCII folding) — the Kelvin-sign seed below is the original
// crasher.
func FuzzAutomaton(f *testing.F) {
	f.Add("acoustic neuroma\ntumor\ntuberculosis", "An Acoustic Neuroma is a non-cancerous TUMOR.")
	f.Add("kk", "KK")          // Kelvin sign 'K': ToLower changed byte length
	f.Add("i̇", "İstanbul")    // dotted capital I: same class of bug
	f.Add("a\nab\nabc\nbc", "abcabcabc") // overlapping matches through failure links
	f.Add("", "anything")
	f.Add("\xff\n\xff\xfe", "\xff\xfe\xff")
	f.Fuzz(func(t *testing.T, patBlob, text string) {
		if len(text) > 1<<12 {
			t.Skip()
		}
		patterns := strings.Split(patBlob, "\n")
		if len(patterns) > 16 {
			patterns = patterns[:16]
		}
		for i, p := range patterns {
			if len(p) > 64 {
				patterns[i] = p[:64]
			}
		}
		a := NewAutomaton(patterns)
		all := a.FindAll(text)
		for _, m := range all {
			if m.Pattern < 0 || m.Pattern >= len(patterns) {
				t.Fatalf("match names pattern %d of %d", m.Pattern, len(patterns))
			}
			if m.Start < 0 || m.End > len(text) || m.Start >= m.End {
				t.Fatalf("match span [%d,%d) invalid in %d-byte text", m.Start, m.End, len(text))
			}
			span := text[m.Start:m.End]
			if lowerASCII(span) != lowerASCII(a.Pattern(m.Pattern)) {
				t.Fatalf("span %q does not match pattern %q under ASCII folding", span, a.Pattern(m.Pattern))
			}
		}
		// Whole-word matches are a filter over FindAll: same spans, subset.
		seen := map[Match]bool{}
		for _, m := range all {
			seen[m] = true
		}
		for _, m := range a.FindWholeWords(text) {
			if !seen[m] {
				t.Fatalf("FindWholeWords produced %+v absent from FindAll", m)
			}
		}
	})
}
