// Package ahocorasick implements the Aho–Corasick multi-pattern string
// matching automaton [Aho & Corasick 1975], the paper's traditional
// entity-recognition Baseline: structured-data instances become dictionary
// patterns, and all their occurrences in a document are reported in one pass.
package ahocorasick
