package text

import "strings"

// Stem reduces an English word to its stem using the Porter stemming
// algorithm (Porter 1980). THOR uses stems as a last-resort bridge between
// surface variants ("cancerous" → "cancer" territory) when a word has no
// vector of its own; the comparator simulators use it the same way.
//
// The implementation follows the original five-step definition. Input is
// expected lower-case; words of length ≤ 2 are returned unchanged.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := []byte(strings.ToLower(word))
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] acts as a consonant in Porter's definition:
// 'y' is a consonant when at the start or preceded by a vowel.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		return i == 0 || !isCons(w, i-1)
	default:
		return true
	}
}

// measure computes Porter's m: the number of vowel-consonant sequences in
// w[:k].
func measure(w []byte, k int) int {
	m := 0
	i := 0
	// Skip initial consonants.
	for i < k && isCons(w, i) {
		i++
	}
	for i < k {
		// Vowel run.
		for i < k && !isCons(w, i) {
			i++
		}
		if i >= k {
			break
		}
		m++
		// Consonant run.
		for i < k && isCons(w, i) {
			i++
		}
	}
	return m
}

func hasVowel(w []byte, k int) bool {
	for i := 0; i < k; i++ {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether w ends in a double consonant.
func endsDoubleCons(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// endsCVC reports whether w[:k] ends consonant-vowel-consonant where the
// final consonant is not w, x or y.
func endsCVC(w []byte, k int) bool {
	if k < 3 {
		return false
	}
	if !isCons(w, k-3) || isCons(w, k-2) || !isCons(w, k-1) {
		return false
	}
	switch w[k-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	return len(w) >= len(s) && string(w[len(w)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r if the stem before s has measure
// at least minM. Reports whether a replacement happened.
func replaceSuffix(w []byte, s, r string, minM int) ([]byte, bool) {
	if !hasSuffix(w, s) {
		return w, false
	}
	k := len(w) - len(s)
	if measure(w, k) < minM {
		return w, true // suffix matched: stop the rule group without change
	}
	return append(w[:k], r...), true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w, len(w)-3) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && hasVowel(w, len(w)-2):
		stem = w[:len(w)-2]
	case hasSuffix(w, "ing") && hasVowel(w, len(w)-3):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleCons(stem) && !hasSuffix(stem, "l") && !hasSuffix(stem, "s") && !hasSuffix(stem, "z"):
		return stem[:len(stem)-1]
	case measure(stem, len(stem)) == 1 && endsCVC(stem, len(stem)):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w, len(w)-1) {
		w[len(w)-1] = 'i'
	}
	return w
}

var step2Rules = []struct{ from, to string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, r := range step2Rules {
		if out, done := replaceSuffix(w, r.from, r.to, 1); done {
			return out
		}
	}
	return w
}

var step3Rules = []struct{ from, to string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, r := range step3Rules {
		if out, done := replaceSuffix(w, r.from, r.to, 1); done {
			return out
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	// "ion" requires a preceding s or t.
	if hasSuffix(w, "ion") {
		k := len(w) - 3
		if k > 0 && (w[k-1] == 's' || w[k-1] == 't') && measure(w, k) > 1 {
			return w[:k]
		}
		if k > 0 && (w[k-1] == 's' || w[k-1] == 't') {
			return w
		}
	}
	for _, s := range step4Suffixes {
		if hasSuffix(w, s) {
			k := len(w) - len(s)
			if measure(w, k) > 1 {
				return w[:k]
			}
			return w
		}
	}
	return w
}

func step5a(w []byte) []byte {
	if hasSuffix(w, "e") {
		k := len(w) - 1
		m := measure(w, k)
		if m > 1 || (m == 1 && !endsCVC(w, k)) {
			return w[:k]
		}
	}
	return w
}

func step5b(w []byte) []byte {
	if hasSuffix(w, "ll") && measure(w, len(w)) > 1 {
		return w[:len(w)-1]
	}
	return w
}
