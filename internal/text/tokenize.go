package text

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Tokenize splits s into tokens. Words keep internal hyphens and apostrophes
// ("slow-growing", "o'clock"); numbers keep internal commas and periods
// ("1,200", "2.5"); everything else becomes single-rune Punct/Symbol tokens.
func Tokenize(s string) []Token {
	var toks []Token
	i := 0
	n := len(s)
	for i < n {
		r, size := decodeRune(s[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case unicode.IsLetter(r):
			j := i + size
			for j < n {
				r2, sz := decodeRune(s[j:])
				if unicode.IsLetter(r2) || unicode.IsDigit(r2) {
					j += sz
					continue
				}
				// Keep an internal hyphen or apostrophe only when a letter
				// or digit follows immediately.
				if (r2 == '-' || r2 == '\'' || r2 == '’') && j+sz < n {
					r3, _ := decodeRune(s[j+sz:])
					if unicode.IsLetter(r3) || unicode.IsDigit(r3) {
						j += sz
						continue
					}
				}
				break
			}
			toks = append(toks, makeToken(s, i, j, Word))
			i = j
		case unicode.IsDigit(r):
			j := i + size
			for j < n {
				r2, sz := decodeRune(s[j:])
				if unicode.IsDigit(r2) {
					j += sz
					continue
				}
				if (r2 == ',' || r2 == '.') && j+sz < n {
					r3, _ := decodeRune(s[j+sz:])
					if unicode.IsDigit(r3) {
						j += sz
						continue
					}
				}
				break
			}
			toks = append(toks, makeToken(s, i, j, Number))
			i = j
		case unicode.IsPunct(r):
			toks = append(toks, makeToken(s, i, i+size, Punct))
			i += size
		default:
			toks = append(toks, makeToken(s, i, i+size, Symbol))
			i += size
		}
	}
	return toks
}

func makeToken(s string, start, end int, k Kind) Token {
	raw := s[start:end]
	return Token{Text: raw, Lower: strings.ToLower(raw), Kind: k, Start: start, End: end}
}

// decodeRune is a tiny wrapper so the tokenizer reads naturally; it decodes
// the first rune of s. It must report the number of bytes actually consumed:
// an invalid UTF-8 byte decodes to utf8.RuneError but advances exactly one
// byte, where re-encoding the replacement rune would claim three and walk
// the scanner past the end of the string (found by FuzzTokenize).
func decodeRune(s string) (rune, int) {
	return utf8.DecodeRuneInString(s)
}

// sentence-final punctuation and common abbreviations the splitter must not
// break after.
var abbreviations = map[string]bool{
	"dr": true, "mr": true, "mrs": true, "ms": true, "prof": true,
	"st": true, "vs": true, "etc": true, "e.g": true, "i.e": true,
	"eg": true, "ie": true, "fig": true, "al": true, "no": true,
	"inc": true, "ltd": true, "jr": true, "sr": true, "dept": true,
}

// SplitSentences tokenizes s and groups the tokens into sentences. A sentence
// ends at '.', '!' or '?' unless the period terminates a known abbreviation
// or a single capital initial ("J."), or is followed by a lower-case
// continuation.
func SplitSentences(s string) []Sentence {
	toks := Tokenize(s)
	var sents []Sentence
	begin := 0
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind != Punct || (t.Text != "." && t.Text != "!" && t.Text != "?") {
			continue
		}
		if t.Text == "." && i > 0 {
			prev := toks[i-1]
			if prev.Kind == Word && (abbreviations[prev.Lower] || len(prev.Text) == 1 && prev.Text == strings.ToUpper(prev.Text)) {
				continue
			}
		}
		// A period followed by a lower-case word is treated as internal
		// (e.g. bad spacing in scraped text), unless it ends the input.
		if t.Text == "." && i+1 < len(toks) {
			next := toks[i+1]
			if next.Kind == Word && next.Text == next.Lower && !startsNewClause(next.Lower) {
				// Only continue if the period directly abuts the next token
				// (no whitespace); normal prose with a space still splits.
				if next.Start == t.End {
					continue
				}
			}
		}
		sents = appendSentence(sents, toks[begin:i+1])
		begin = i + 1
	}
	if begin < len(toks) {
		sents = appendSentence(sents, toks[begin:])
	}
	return sents
}

// startsNewClause lists lower-case words that commonly begin a new sentence
// in informal text ("however", "it", ...). Kept small on purpose: it only
// influences the no-whitespace heuristic above.
func startsNewClause(w string) bool {
	switch w {
	case "however", "it", "this", "these", "the", "in", "a", "an":
		return true
	}
	return false
}

func appendSentence(sents []Sentence, toks []Token) []Sentence {
	// Drop sentences that carry no lexical content.
	hasWord := false
	for _, t := range toks {
		if t.IsWordLike() {
			hasWord = true
			break
		}
	}
	if !hasWord {
		return sents
	}
	cp := make([]Token, len(toks))
	copy(cp, toks)
	return append(sents, Sentence{Tokens: cp, Start: cp[0].Start, End: cp[len(cp)-1].End})
}
