package text

import "strings"

// stopwords is the default English stop-word list. It covers determiners,
// prepositions, conjunctions, pronouns, auxiliaries and high-frequency
// adverbs — the classes THOR strips from the edges of noun phrases.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "this": true, "that": true,
	"these": true, "those": true, "some": true, "any": true, "each": true,
	"every": true, "no": true, "such": true, "both": true, "all": true,
	"of": true, "in": true, "on": true, "at": true, "by": true, "for": true,
	"with": true, "without": true, "to": true, "from": true, "into": true,
	"onto": true, "over": true, "under": true, "about": true, "after": true,
	"before": true, "between": true, "during": true, "through": true,
	"and": true, "or": true, "but": true, "nor": true, "so": true,
	"as": true, "if": true, "than": true, "because": true, "while": true,
	"i": true, "you": true, "he": true, "she": true, "it": true, "we": true,
	"they": true, "them": true, "his": true, "her": true, "its": true,
	"their": true, "our": true, "your": true, "my": true, "me": true,
	"him": true, "us": true, "who": true, "whom": true, "which": true,
	"is": true, "am": true, "are": true, "was": true, "were": true,
	"be": true, "been": true, "being": true, "have": true, "has": true,
	"had": true, "do": true, "does": true, "did": true, "will": true,
	"would": true, "shall": true, "should": true, "can": true, "could": true,
	"may": true, "might": true, "must": true, "not": true, "also": true,
	"very": true, "too": true, "just": true, "only": true, "then": true,
	"there": true, "here": true, "when": true, "where": true, "how": true,
	"what": true, "why": true, "more": true, "most": true, "other": true,
	"often": true, "usually": true, "commonly": true, "generally": true,
	"typically": true, "sometimes": true, "many": true, "much": true,
	"several": true, "various": true, "including": true, "include": true,
	"includes": true, "etc": true,
}

// IsStopword reports whether the lower-cased word is in the default English
// stop-word list.
func IsStopword(w string) bool { return stopwords[strings.ToLower(w)] }

// StripStopwords removes leading and trailing stop-words from a word
// sequence, as THOR does when cleaning noun phrases ("the lungs" → "lungs").
// Interior stop-words are preserved ("shortness of breath" keeps "of").
func StripStopwords(words []string) []string {
	lo, hi := 0, len(words)
	for lo < hi && IsStopword(words[lo]) {
		lo++
	}
	for hi > lo && IsStopword(words[hi-1]) {
		hi--
	}
	return words[lo:hi]
}

// NormalizePhrase lower-cases a phrase, tokenizes it, and rejoins the
// word-like tokens with single spaces. It is the canonical form used for
// comparing extracted entities against ground truth and table instances.
func NormalizePhrase(p string) string {
	toks := Tokenize(p)
	words := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.IsWordLike() {
			words = append(words, t.Lower)
		}
	}
	return strings.Join(words, " ")
}

// Fields splits a normalized phrase back into its words. It is a convenience
// that mirrors strings.Fields but documents the expected input form.
func Fields(phrase string) []string { return strings.Fields(phrase) }
