package text_test

import (
	"strings"
	"testing"
	"unicode"
	"unicode/utf8"

	"thor/internal/text"
)

// Seed inputs mirror the two synthetic corpora: Disease A-Z prose with
// abbreviations, hyphenated medical terms and numbers, and Résumé prose with
// initials and inline punctuation — plus the pathological shapes fuzzing is
// really after.
var tokenizeSeeds = []string{
	"An Acoustic Neuroma is a slow-growing non-cancerous brain tumor.",
	"Dr. Smith prescribed 1,200 mg of Amoxicillin (twice daily) for T.B. symptoms.",
	"Symptoms include fever, night sweats, and a 2.5 cm swelling, e.g. near the ear.",
	"J. Alvarez worked at Innotech Inc. from 2015 to 2019.She studied at MIT.",
	"Skills: Go, C++, SQL — and 10+ years' experience.",
	"naïve café résumé 久保田 Straße",
	"",
	"\xff",                 // invalid UTF-8: the historic decodeRune overrun
	"a\xff\xfe\xfdb",       // invalid bytes between letters
	"\xe2\x84",             // truncated rune (chaos-style mid-rune cut)
	strings.Repeat("-", 8), // punctuation-only runs
	"1,2,3... 4.5.6 don't o'clock-",
}

func FuzzTokenize(f *testing.F) {
	for _, s := range tokenizeSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := text.Tokenize(s)
		prevEnd := 0
		for i, tok := range toks {
			if tok.Start < 0 || tok.End > len(s) || tok.Start >= tok.End {
				t.Fatalf("token %d has invalid span [%d,%d) in %d-byte input", i, tok.Start, tok.End, len(s))
			}
			if tok.Start < prevEnd {
				t.Fatalf("token %d [%d,%d) overlaps or precedes previous end %d", i, tok.Start, tok.End, prevEnd)
			}
			prevEnd = tok.End
			if tok.Text != s[tok.Start:tok.End] {
				t.Fatalf("token %d Text %q != input slice %q", i, tok.Text, s[tok.Start:tok.End])
			}
			if tok.Lower != strings.ToLower(tok.Text) {
				t.Fatalf("token %d Lower %q != ToLower(%q)", i, tok.Lower, tok.Text)
			}
		}
		// Every non-space byte of valid input must land in some token; for
		// invalid UTF-8 we only require termination and the span invariants
		// above. This catches scanners that silently skip content.
		if utf8.ValidString(s) {
			covered := 0
			for _, tok := range toks {
				covered += tok.End - tok.Start
			}
			nonSpace := 0
			for _, r := range s {
				if !unicode.IsSpace(r) {
					nonSpace += utf8.RuneLen(r)
				}
			}
			if covered != nonSpace {
				t.Fatalf("tokens cover %d bytes, input has %d non-space bytes", covered, nonSpace)
			}
		}
	})
}

func FuzzSplitSentences(f *testing.F) {
	for _, s := range tokenizeSeeds {
		f.Add(s)
	}
	f.Add("First sentence. Second one! Third? The end.")
	f.Add("See Fig. 3 and Dr. Who vs. the Daleks, etc. for details.")
	f.Fuzz(func(t *testing.T, s string) {
		sents := text.SplitSentences(s)
		prevEnd := 0
		for i, sent := range sents {
			if len(sent.Tokens) == 0 {
				t.Fatalf("sentence %d has no tokens", i)
			}
			if sent.Start != sent.Tokens[0].Start || sent.End != sent.Tokens[len(sent.Tokens)-1].End {
				t.Fatalf("sentence %d span [%d,%d) disagrees with its tokens", i, sent.Start, sent.End)
			}
			if sent.Start < prevEnd || sent.End > len(s) {
				t.Fatalf("sentence %d span [%d,%d) out of order or out of bounds", i, sent.Start, sent.End)
			}
			prevEnd = sent.End
			hasWord := false
			for _, tok := range sent.Tokens {
				if tok.IsWordLike() {
					hasWord = true
				}
				if tok.Text != s[tok.Start:tok.End] {
					t.Fatalf("sentence %d token %q detached from input", i, tok.Text)
				}
			}
			if !hasWord {
				t.Fatalf("sentence %d carries no lexical content", i)
			}
		}
	})
}
