package text

import (
	"testing"
	"testing/quick"
)

// Reference pairs from Porter's original paper and test vocabulary.
func TestStemKnownPairs(t *testing.T) {
	cases := map[string]string{
		// Step 1a.
		"caresses": "caress", "ponies": "poni", "ties": "ti",
		"caress": "caress", "cats": "cat",
		// Step 1b.
		"feed": "feed", "agreed": "agre", "plastered": "plaster",
		"bled": "bled", "motoring": "motor", "sing": "sing",
		"conflated": "conflat", "troubled": "troubl", "sized": "size",
		"hopping": "hop", "tanned": "tan", "falling": "fall",
		"hissing": "hiss", "fizzed": "fizz", "failing": "fail",
		"filing": "file",
		// Step 1c.
		"happy": "happi", "sky": "sky",
		// Step 2.
		"relational": "relat", "conditional": "condit", "rational": "ration",
		"valenci": "valenc", "digitizer": "digit", "operator": "oper",
		"feudalism": "feudal", "decisiveness": "decis", "hopefulness": "hope",
		"callousness": "callous", "formaliti": "formal", "sensitiviti": "sensit",
		// Step 3.
		"triplicate": "triplic", "formative": "form", "formalize": "formal",
		"electriciti": "electr", "electrical": "electr", "hopeful": "hope",
		"goodness": "good",
		// Step 4.
		"revival": "reviv", "allowance": "allow", "inference": "infer",
		"airliner": "airlin", "adoption": "adopt", "defensible": "defens",
		"irritant": "irrit", "replacement": "replac", "adjustment": "adjust",
		"communism": "commun", "activate": "activ", "effective": "effect",
		"bowdlerize": "bowdler",
		// Step 5.
		"probate": "probat", "rate": "rate", "cease": "ceas",
		"controll": "control", "roll": "roll",
		// Domain words the matcher cares about.
		"cancerous": "cancer", "scarring": "scar", "infections": "infect",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "is", "by"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemCaseInsensitive(t *testing.T) {
	if Stem("Motoring") != Stem("motoring") {
		t.Error("Stem should lower-case its input")
	}
}

func TestStemSharedVariants(t *testing.T) {
	// Morphological families must collapse to one stem.
	families := [][]string{
		{"connect", "connected", "connecting", "connection", "connections"},
		{"relate", "related", "relating"},
	}
	for _, fam := range families {
		want := Stem(fam[0])
		for _, w := range fam[1:] {
			if got := Stem(w); got != want {
				t.Errorf("Stem(%q) = %q, want family stem %q", w, got, want)
			}
		}
	}
}

// Property: stemming is idempotent on its own output for plain ASCII words,
// never panics, and never grows the word.
func TestStemProperties(t *testing.T) {
	f := func(raw string) bool {
		// Restrict to lowercase ASCII letters (the algorithm's domain).
		var b []byte
		for _, r := range raw {
			b = append(b, byte('a'+(int(r)%26+26)%26))
			if len(b) > 20 {
				break
			}
		}
		w := string(b)
		s := Stem(w)
		if len(s) > len(w) {
			return false
		}
		return len(Stem(s)) <= len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
