// Package text provides the low-level text-processing substrate used by the
// THOR pipeline: tokens, sentences, a tokenizer, a sentence splitter,
// stop-word handling and string normalization.
//
// The design follows the paper's document model: a document is a collection
// of sentences, a sentence a sequence of words, and a phrase a subsequence of
// a sentence.
package text
