package text

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeWords(t *testing.T) {
	toks := Tokenize("Tuberculosis generally damages the lungs.")
	want := []string{"Tuberculosis", "generally", "damages", "the", "lungs", "."}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
	if toks[5].Kind != Punct {
		t.Errorf("final token kind = %v, want Punct", toks[5].Kind)
	}
}

func TestTokenizeHyphenAndApostrophe(t *testing.T) {
	toks := Tokenize("A slow-growing non-cancerous tumor in the patient's brain")
	var words []string
	for _, tok := range toks {
		if tok.Kind == Word {
			words = append(words, tok.Text)
		}
	}
	want := []string{"A", "slow-growing", "non-cancerous", "tumor", "in", "the", "patient's", "brain"}
	if !reflect.DeepEqual(words, want) {
		t.Errorf("words = %v, want %v", words, want)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	toks := Tokenize("around 1,200 cases (2.5 percent)")
	var nums []string
	for _, tok := range toks {
		if tok.Kind == Number {
			nums = append(nums, tok.Text)
		}
	}
	if !reflect.DeepEqual(nums, []string{"1,200", "2.5"}) {
		t.Errorf("numbers = %v", nums)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	in := "Acne causes spots."
	for _, tok := range Tokenize(in) {
		if in[tok.Start:tok.End] != tok.Text {
			t.Errorf("offset mismatch: %q vs %q", in[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v, want empty", got)
	}
	if got := Tokenize("   \n\t "); len(got) != 0 {
		t.Errorf("Tokenize(whitespace) = %v, want empty", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	toks := Tokenize("café résumé")
	if len(toks) != 2 || toks[0].Text != "café" || toks[1].Text != "résumé" {
		t.Fatalf("unicode tokens = %v", toks)
	}
	if toks[1].Lower != "résumé" {
		t.Errorf("Lower = %q", toks[1].Lower)
	}
}

func TestSplitSentencesBasic(t *testing.T) {
	doc := "Acoustic neuroma is a slow-growing tumor. It develops on the main nerve! Does it cause hearing loss?"
	sents := SplitSentences(doc)
	if len(sents) != 3 {
		t.Fatalf("got %d sentences, want 3: %v", len(sents), sents)
	}
	if first := sents[0].Words()[0]; first != "acoustic" {
		t.Errorf("first word = %q", first)
	}
}

func TestSplitSentencesAbbreviation(t *testing.T) {
	doc := "Dr. Smith treated the patient. The patient recovered."
	sents := SplitSentences(doc)
	if len(sents) != 2 {
		t.Fatalf("got %d sentences, want 2", len(sents))
	}
	if !strings.Contains(sents[0].Text(), "Smith") {
		t.Errorf("abbreviation split too early: %q", sents[0].Text())
	}
}

func TestSplitSentencesInitial(t *testing.T) {
	doc := "J. Doe worked at Acme. He left in 2019."
	sents := SplitSentences(doc)
	if len(sents) != 2 {
		t.Fatalf("got %d sentences, want 2: %v", len(sents), sents)
	}
}

func TestSplitSentencesNoTerminator(t *testing.T) {
	sents := SplitSentences("no final period here")
	if len(sents) != 1 {
		t.Fatalf("got %d sentences, want 1", len(sents))
	}
}

func TestSplitSentencesDropsEmpty(t *testing.T) {
	sents := SplitSentences("... !!! ??")
	if len(sents) != 0 {
		t.Fatalf("got %d sentences, want 0", len(sents))
	}
}

func TestStripStopwords(t *testing.T) {
	cases := []struct {
		in, want []string
	}{
		{[]string{"the", "lungs"}, []string{"lungs"}},
		{[]string{"a", "slow-growing", "tumor", "of"}, []string{"slow-growing", "tumor"}},
		{[]string{"shortness", "of", "breath"}, []string{"shortness", "of", "breath"}},
		{[]string{"the", "a", "of"}, []string{}},
		{[]string{}, []string{}},
	}
	for _, c := range cases {
		got := StripStopwords(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("StripStopwords(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizePhrase(t *testing.T) {
	cases := map[string]string{
		"The Lungs":                    "the lungs",
		"  Non-Cancerous  Brain tumor": "non-cancerous brain tumor",
		"skin cancer.":                 "skin cancer",
		"":                             "",
	}
	for in, want := range cases {
		if got := NormalizePhrase(in); got != want {
			t.Errorf("NormalizePhrase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("The") {
		t.Error("The should be a stopword (case-insensitive)")
	}
	if IsStopword("tumor") {
		t.Error("tumor should not be a stopword")
	}
}

// Property: every token's span reproduces its text, tokens are ordered and
// non-overlapping.
func TestTokenizeSpansProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		prevEnd := 0
		for _, tok := range toks {
			if tok.Start < prevEnd || tok.End <= tok.Start || tok.End > len(s) {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
			prevEnd = tok.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: sentence splitting never loses word-like tokens.
func TestSplitSentencesConservesWords(t *testing.T) {
	f := func(s string) bool {
		all := 0
		for _, tok := range Tokenize(s) {
			if tok.IsWordLike() {
				all++
			}
		}
		got := 0
		for _, sent := range SplitSentences(s) {
			for _, tok := range sent.Tokens {
				if tok.IsWordLike() {
					got++
				}
			}
		}
		return got == all
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: NormalizePhrase is idempotent.
func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := NormalizePhrase(s)
		return NormalizePhrase(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
