package text

import "strings"

// Kind classifies a token at the lexical level, before part-of-speech
// tagging. The tokenizer assigns kinds; the POS tagger refines them.
type Kind int

const (
	// Word is an alphabetic token, possibly with internal hyphens or
	// apostrophes ("slow-growing", "patient's").
	Word Kind = iota
	// Number is a numeric token, possibly with separators ("3", "1,200", "2.5").
	Number
	// Punct is a punctuation token.
	Punct
	// Symbol is any other non-space token (currency signs, math, ...).
	Symbol
)

// String returns the lexical kind name.
func (k Kind) String() string {
	switch k {
	case Word:
		return "Word"
	case Number:
		return "Number"
	case Punct:
		return "Punct"
	default:
		return "Symbol"
	}
}

// Token is a single lexical unit with its position in the original input.
type Token struct {
	// Text is the token exactly as it appeared in the input.
	Text string
	// Lower is the lower-cased form, precomputed because nearly every
	// downstream consumer needs it.
	Lower string
	// Kind is the lexical class assigned by the tokenizer.
	Kind Kind
	// Start and End delimit the token as byte offsets into the original
	// string, with End exclusive.
	Start, End int
}

// IsWordLike reports whether the token carries lexical content (a word or a
// number), as opposed to punctuation or symbols.
func (t Token) IsWordLike() bool { return t.Kind == Word || t.Kind == Number }

// Sentence is a contiguous run of tokens plus its span in the document.
type Sentence struct {
	// Tokens are the sentence's tokens in order.
	Tokens []Token
	// Start and End delimit the sentence as byte offsets into the document.
	Start, End int
}

// Text reconstructs the sentence surface form by joining word-like tokens
// with single spaces and attaching punctuation to the preceding token. It is
// a display form, not a byte-exact reconstruction.
func (s Sentence) Text() string {
	var b strings.Builder
	for i, t := range s.Tokens {
		if i > 0 && t.Kind != Punct {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
	}
	return b.String()
}

// Words returns the lower-cased word-like tokens of the sentence, in order.
func (s Sentence) Words() []string {
	out := make([]string, 0, len(s.Tokens))
	for _, t := range s.Tokens {
		if t.IsWordLike() {
			out = append(out, t.Lower)
		}
	}
	return out
}
