package datagen

import (
	"strings"
	"testing"

	"thor/internal/embed"
	"thor/internal/schema"
	"thor/internal/text"
)

// The generators are deterministic but heavy; build each dataset once.
var (
	diseaseDS = Disease(DiseaseSeed)
	resumeDS  = Resume(ResumeSeed)
)

func TestDiseaseDeterminism(t *testing.T) {
	other := Disease(DiseaseSeed)
	if len(other.Test.Gold) != len(diseaseDS.Test.Gold) {
		t.Fatalf("gold size differs across runs: %d vs %d",
			len(other.Test.Gold), len(diseaseDS.Test.Gold))
	}
	for i := range other.Test.Gold {
		if other.Test.Gold[i] != diseaseDS.Test.Gold[i] {
			t.Fatalf("gold mention %d differs", i)
		}
	}
	if other.Table.InstanceCount() != diseaseDS.Table.InstanceCount() {
		t.Error("table instance count differs across runs")
	}
}

func TestDiseaseTableIIShape(t *testing.T) {
	tab := diseaseDS.Table
	if got := len(tab.Schema.Concepts); got != 11 {
		t.Errorf("concepts = %d, want 11", got)
	}
	if got := len(tab.Rows); got != 284 {
		t.Errorf("rows = %d, want 284", got)
	}
	// Paper: 4,706 total instances. Accept ±20%.
	n := tab.InstanceCount()
	if n < 3700 || n > 5700 {
		t.Errorf("instances = %d, want ≈4706", n)
	}
	// The integrated table must be sparse (the problem THOR addresses).
	sp := tab.Sparsity()
	if sp.Ratio() < 0.25 || sp.Ratio() > 0.75 {
		t.Errorf("sparsity = %.2f, want mid-range", sp.Ratio())
	}
}

func TestDiseaseTableIIIShape(t *testing.T) {
	cases := []struct {
		name             string
		s                Stats
		subjects         int
		docsLo, docsHi   int
		entLo, entHi     int
		wordsLo, wordsHi int
	}{
		{"train", SplitStats(&diseaseDS.Train), 240, 1200, 1700, 14000, 24000, 120000, 230000},
		{"valid", SplitStats(&diseaseDS.Valid), 61, 250, 360, 3000, 5200, 26000, 55000},
		{"test", SplitStats(&diseaseDS.Test), 13, 75, 105, 1700, 2800, 13000, 27000},
	}
	for _, c := range cases {
		if c.s.Subjects != c.subjects {
			t.Errorf("%s subjects = %d, want %d", c.name, c.s.Subjects, c.subjects)
		}
		if c.s.Docs < c.docsLo || c.s.Docs > c.docsHi {
			t.Errorf("%s docs = %d, want [%d,%d]", c.name, c.s.Docs, c.docsLo, c.docsHi)
		}
		if c.s.Entities < c.entLo || c.s.Entities > c.entHi {
			t.Errorf("%s entities = %d, want [%d,%d]", c.name, c.s.Entities, c.entLo, c.entHi)
		}
		if c.s.Words < c.wordsLo || c.s.Words > c.wordsHi {
			t.Errorf("%s words = %d, want [%d,%d]", c.name, c.s.Words, c.wordsLo, c.wordsHi)
		}
	}
}

func TestDiseaseGoldConsistency(t *testing.T) {
	subjects := make(map[string]bool)
	for _, s := range diseaseDS.Test.Subjects {
		subjects[strings.ToLower(s)] = true
	}
	seen := make(map[string]bool)
	for _, g := range diseaseDS.Test.Gold {
		if !subjects[g.Subject] {
			t.Fatalf("gold mention for non-test subject %q", g.Subject)
		}
		if !diseaseDS.Table.Schema.Has(g.Concept) {
			t.Fatalf("gold mention with off-schema concept %q", g.Concept)
		}
		key := g.Subject + "|" + string(g.Concept) + "|" + g.Phrase
		if seen[key] {
			t.Fatalf("duplicate gold mention %s", key)
		}
		seen[key] = true
		if g.Phrase != text.NormalizePhrase(g.Phrase) {
			t.Fatalf("gold phrase not normalized: %q", g.Phrase)
		}
	}
}

func TestDiseaseGoldAppearsInDocs(t *testing.T) {
	// Every gold phrase must actually occur in some document of its
	// subject (annotations come from generation).
	docText := make(map[string]string)
	for _, d := range diseaseDS.Test.Docs {
		docText[strings.ToLower(d.DefaultSubject)] += " " + text.NormalizePhrase(d.Text)
	}
	missing := 0
	for _, g := range diseaseDS.Test.Gold {
		if !strings.Contains(docText[g.Subject], g.Phrase) {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d/%d gold phrases not found in their subject's documents",
			missing, len(diseaseDS.Test.Gold))
	}
}

func TestDiseaseKnownNovelSeparation(t *testing.T) {
	// The Baseline-recall regime: only a minority of test gold phrases may
	// appear verbatim in the structured table.
	dict := make(map[string]bool)
	for _, c := range diseaseDS.Table.Schema.Concepts {
		for _, v := range diseaseDS.Table.ColumnValues(c) {
			dict[text.NormalizePhrase(v)] = true
		}
	}
	inTable := 0
	for _, g := range diseaseDS.Test.Gold {
		if dict[g.Phrase] {
			inTable++
		}
	}
	frac := float64(inTable) / float64(len(diseaseDS.Test.Gold))
	if frac < 0.08 || frac > 0.45 {
		t.Errorf("table coverage of gold = %.2f, want the sparse regime [0.08, 0.45]", frac)
	}
}

func TestDiseaseEmbeddingClusters(t *testing.T) {
	sp := diseaseDS.Space
	// Known and novel instances of the same concept must be closer than
	// instances of different concepts, on average.
	same := avgSim(sp, diseaseDS.Vocab["Anatomy"][:20], diseaseDS.Vocab["Anatomy"][20:40])
	diff := avgSim(sp, diseaseDS.Vocab["Anatomy"][:20], diseaseDS.Vocab["Medicine"][:20])
	if same <= diff+0.15 {
		t.Errorf("cluster geometry weak: same=%.3f diff=%.3f", same, diff)
	}
}

func avgSim(sp *embed.Space, a, b []string) float64 {
	var sum float64
	n := 0
	for _, x := range a {
		for _, y := range b {
			sum += sp.Similarity(text.NormalizePhrase(x), text.NormalizePhrase(y))
			n++
		}
	}
	return sum / float64(n)
}

func TestDiseaseTestTable(t *testing.T) {
	tt := diseaseDS.TestTable()
	if len(tt.Rows) != 13 {
		t.Fatalf("test table rows = %d", len(tt.Rows))
	}
	if sp := tt.Sparsity(); sp.Missing != sp.Cells {
		t.Error("test table must be fully cleared (worst case)")
	}
}

func TestDiseasePretrainCoverage(t *testing.T) {
	if diseaseDS.PretrainCovered["Composition"] {
		t.Error("Composition must be uncovered (UniNER zero recall)")
	}
	if !diseaseDS.PretrainCovered["Symptom"] {
		t.Error("Symptom should be covered")
	}
}

func TestResumeTableShape(t *testing.T) {
	tab := resumeDS.Table
	if got := len(tab.Schema.Concepts); got != 12 {
		t.Errorf("concepts = %d, want 12", got)
	}
	if got := len(tab.Rows); got != 201 {
		t.Errorf("rows = %d, want 201", got)
	}
	n := tab.InstanceCount()
	if n < 2300 || n > 4200 {
		t.Errorf("instances = %d, want ≈3119", n)
	}
}

func TestResumeSplitShape(t *testing.T) {
	test := SplitStats(&resumeDS.Test)
	if test.Subjects != 100 {
		t.Errorf("test subjects = %d, want 100", test.Subjects)
	}
	if test.Docs != 20 {
		t.Errorf("test docs = %d, want 20 (5 CVs each)", test.Docs)
	}
	if test.Entities < 1600 || test.Entities > 2800 {
		t.Errorf("test entities = %d, want ≈2140", test.Entities)
	}
	if test.Words < 20000 || test.Words > 60000 {
		t.Errorf("test words = %d, want ≈38459", test.Words)
	}
}

func TestResumeDocsBundleFiveCVs(t *testing.T) {
	for _, d := range resumeDS.Test.Docs {
		if d.DefaultSubject != "" {
			t.Fatalf("bundled doc %q should have no default subject", d.Name)
		}
	}
	// Each test doc opens 5 CVs (related mentions may add further names).
	doc := resumeDS.Test.Docs[0]
	openings := 0
	for _, s := range resumeDS.Test.Subjects {
		if strings.Contains(doc.Text, s+" is ") || strings.Contains(doc.Text, s+" has ") {
			openings++
		}
	}
	if openings != 5 {
		t.Errorf("doc 0 opens %d CVs, want 5", openings)
	}
}

func TestResumeGenericConcepts(t *testing.T) {
	for _, c := range []schema.Concept{"Name", "University", "Companies Worked At"} {
		if !resumeDS.GenericConcept[c] {
			t.Errorf("%s should be generic (GPT-4 strength)", c)
		}
	}
	for _, c := range []schema.Concept{"Worked As", "Years Of Experience"} {
		if resumeDS.GenericConcept[c] {
			t.Errorf("%s should not be generic (GPT-4 weakness)", c)
		}
	}
}

func TestAnnotationCostModel(t *testing.T) {
	c := DefaultAnnotationCost()
	// Table X anchor: LM-Human-1 trained on 973 words took 12,649 s
	// (13 s/token).
	if got := c.SecondsForWords(973); got != 12649 {
		t.Errorf("SecondsForWords(973) = %v, want 12649", got)
	}
	lo, hi := c.DocRange(100)
	if lo >= hi || lo.Seconds() != 800 || hi.Seconds() != 1300 {
		t.Errorf("DocRange(100) = %v, %v", lo, hi)
	}
	// Table IX: full train corpus annotation exceeds 600 hours.
	words := SplitStats(&diseaseDS.Train).Words
	if h := c.TotalHours(words); h < 400 {
		t.Errorf("TotalHours(train=%d words) = %.0f, want 400+", words, h)
	}
	slo, shi := c.SubjectRange([]int{100, 150})
	if slo.Seconds() != 2000 || shi.Seconds() != 3250 {
		t.Errorf("SubjectRange = %v, %v", slo, shi)
	}
}

func TestLexiconCoversVocabulary(t *testing.T) {
	lex := diseaseDS.Lexicon
	for _, w := range []string{"empyema", "amoxicillin", "keratin"} {
		if _, ok := lex[w]; !ok {
			t.Errorf("lexicon missing %q", w)
		}
	}
}

func TestVocabPoolsDisjoint(t *testing.T) {
	// known/novel separation is by head word; instances must not repeat
	// across the two pools.
	for _, ds := range []*Dataset{diseaseDS, resumeDS} {
		dict := make(map[string]bool)
		for _, c := range ds.Table.Schema.Concepts {
			if c == ds.Table.Schema.Subject {
				continue
			}
			for _, v := range ds.Table.ColumnValues(c) {
				dict[text.NormalizePhrase(v)] = true
			}
		}
		if len(dict) == 0 {
			t.Fatalf("%s: empty table dictionary", ds.Name)
		}
	}
}

func TestValidateDatasets(t *testing.T) {
	if err := Validate(diseaseDS); err != nil {
		t.Errorf("disease dataset invalid: %v", err)
	}
	if err := Validate(resumeDS); err != nil {
		t.Errorf("resume dataset invalid: %v", err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	ds := Disease(DiseaseSeed)
	ds.Test.Gold[0].Phrase = "phrase that never occurs anywhere zz"
	if err := Validate(ds); err == nil {
		t.Error("corrupted gold phrase not detected")
	}
	ds2 := Disease(DiseaseSeed)
	ds2.Test.Gold[0].Concept = "NotAConcept"
	if err := Validate(ds2); err == nil {
		t.Error("off-schema concept not detected")
	}
	ds3 := Disease(DiseaseSeed)
	ds3.Test.Subjects = append(ds3.Test.Subjects, ds3.Train.Subjects[0])
	if err := Validate(ds3); err == nil {
		t.Error("split overlap not detected")
	}
}
