package datagen

import (
	"fmt"
	"math/rand"

	"thor/internal/embed"
	"thor/internal/eval"
	"thor/internal/pos"
	"thor/internal/schema"
	"thor/internal/segment"
)

// Split is one portion of a dataset (train/validation/test).
type Split struct {
	// Subjects are the subject instances covered by this split.
	Subjects []string
	// Docs are the text documents, one or more per subject.
	Docs []segment.Document
	// Gold holds the ground-truth annotations: unique (subject, concept,
	// phrase) triples planted in the documents.
	Gold []eval.Mention
	// Words is the total word count of the documents.
	Words int
}

// GoldFor returns the gold mentions restricted to the given subject set.
func (s *Split) GoldFor(subjects map[string]bool) []eval.Mention {
	var out []eval.Mention
	for _, g := range s.Gold {
		if subjects[g.Subject] {
			out = append(out, g)
		}
	}
	return out
}

// Dataset is a fully generated evaluation dataset.
type Dataset struct {
	// Name is "disease-az" or "resume".
	Name string
	// Table is the integrated structured table R (the weak supervision
	// THOR fine-tunes on).
	Table *schema.Table
	// Space is the embedding space covering the dataset vocabulary — the
	// stand-in for the pre-trained vectors.
	Space *embed.Space
	// Train, Valid and Test follow the paper's splits (Table III).
	Train, Valid, Test Split
	// Lexicon extends the POS tagger with domain nouns so generated drug
	// names and the like are tagged correctly.
	Lexicon map[string]pos.Tag
	// Vocab is the full per-concept vocabulary (instances that may appear
	// in documents, a superset of the table's instances).
	Vocab map[schema.Concept][]string
	// PretrainCovered marks concepts covered by the UniNER simulator's
	// "pre-training" lexicon; under-represented concepts (Composition) are
	// absent, reproducing its published zero recall there.
	PretrainCovered map[schema.Concept]bool
	// PretrainCoverage gives the covered fraction of each concept's
	// vocabulary (0 = absent from every public benchmark).
	PretrainCoverage map[schema.Concept]float64
	// GenericConcept marks concepts whose instances are generic world
	// knowledge (people, universities, companies) on which the zero-shot
	// GPT-4 simulator performs well.
	GenericConcept map[schema.Concept]bool
}

// TestTable builds the cleared evaluation table R_test' of Section V: one
// row per test subject, all non-subject cells labeled nulls.
func (d *Dataset) TestTable() *schema.Table {
	t := schema.NewTable(d.Table.Schema)
	for _, s := range d.Test.Subjects {
		t.AddRow(s)
	}
	return t
}

// Stats summarizes a split like Table III of the paper.
type Stats struct {
	// Subjects is the number of distinct subject instances.
	Subjects int
	// Docs is the number of text documents.
	Docs int
	// Entities is the number of gold mentions across the documents.
	Entities int
	// Words is the total token count across the documents.
	Words int
}

// SplitStats computes Table III-style statistics for a split.
func SplitStats(s *Split) Stats {
	return Stats{
		Subjects: len(s.Subjects),
		Docs:     len(s.Docs),
		Entities: len(s.Gold),
		Words:    s.Words,
	}
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("%d subjects, %d docs, %d entities, %d words",
		s.Subjects, s.Docs, s.Entities, s.Words)
}

// pick returns a random element of xs.
func pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}

// sampleDistinct returns up to n distinct elements of xs, in random order.
func sampleDistinct[T any](rng *rand.Rand, xs []T, n int) []T {
	if n >= len(xs) {
		out := make([]T, len(xs))
		copy(out, xs)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	idx := rng.Perm(len(xs))[:n]
	out := make([]T, n)
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}
