package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"thor/internal/embed"
	"thor/internal/eval"
	"thor/internal/pos"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/text"
)

// conceptSpec describes how one non-subject concept is generated.
type conceptSpec struct {
	concept schema.Concept
	// known and novel are disjoint instance pools, split by head word: the
	// structured table only draws from known, so novel instances are
	// invisible to exact matchers but live in the same embedding cluster.
	known, novel []string
	// templates are sentence patterns with exactly one %s slot.
	templates []string
	// altTemplates are alternative phrasings used by splits with
	// altTemplateP > 0 — the format shift that makes test documents not
	// resemble the training distribution (Experiment 3's premise).
	altTemplates []string
	// listTemplates take a comma-joined list of 2–3 instances.
	listTemplates []string
	// coverage is the fraction of the concept's vocabulary present in the
	// UniNER simulator's pre-training lexicon (0 reproduces the published
	// zero recall on Composition).
	coverage float64
	// generic marks world-knowledge concepts the GPT-4 simulator is strong
	// on (names, universities, companies).
	generic bool
	// tableP is the probability a table row has any value for this
	// concept; tableMaxVals caps values per cell.
	tableP       float64
	tableMaxVals int
	// modifierWords lists the words of this concept's instances that are
	// generic modifiers (weak embedding pull).
	modifierWords map[string]bool
}

func (c *conceptSpec) allInstances() []string {
	out := make([]string, 0, len(c.known)+len(c.novel))
	out = append(out, c.known...)
	out = append(out, c.novel...)
	return out
}

// splitSpec sets the per-split generation densities (Table III shapes).
type splitSpec struct {
	subjects       int
	docsPerSubject int
	// factsPerConcept is the mean number of unique facts per (subject,
	// concept); actual counts vary ±30%.
	factsPerConcept float64
	// relatedPerSubject is the number of other subject-pool names
	// mentioned (gold mentions of the subject concept).
	relatedPerSubject int
	// fillerPerDoc pads documents with entity-free sentences.
	fillerPerDoc int
	// trapsPerDoc plants vocabulary phrases in contexts the annotators
	// would not mark as entities — the false-positive surface real corpora
	// have. Known-pool traps fool exact matchers at every τ; fringe-novel
	// traps only fool the semantic matcher at permissive τ.
	trapsPerDoc int
	// knownTrapP is the probability a trap comes from the known pool
	// (strict-τ and Baseline false positives); the rest are fringe-novel.
	knownTrapP float64
	// altTemplateP is the probability a fact sentence uses the concept's
	// alternative phrasing instead of the shared one (format shift).
	altTemplateP float64
}

// domainSpec is a complete dataset recipe.
type domainSpec struct {
	name           string
	subjectConcept schema.Concept
	concepts       []*conceptSpec
	// subjectPool holds every subject-like name; the first totalSubjects
	// entries become split subjects, the rest only appear as related
	// mentions (novel subject-concept instances).
	subjectPool []string
	// openingTemplates introduce the subject (one %s = subject name).
	openingTemplates []string
	// relatedTemplates mention another subject-pool name (one %s).
	relatedTemplates []string
	// trapTemplates embed a vocabulary phrase in a non-entity context.
	trapTemplates      []string
	filler             []string
	train, valid, test splitSpec
	// tableRows is the structured table size (284 / 201 in the paper).
	tableRows int
	// knownFactP is the probability a planted fact is drawn from the known
	// pool rather than the novel pool (the Baseline-recall lever).
	knownFactP float64
	// groupPerDoc bundles several subjects into one document (Résumé: 5
	// CVs per doc). 1 means one subject per document.
	groupPerDoc int
}

// Generate materializes a dataset from a domain recipe. The same seed always
// yields the identical dataset.
func generate(spec *domainSpec, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))

	total := spec.train.subjects + spec.valid.subjects + spec.test.subjects
	if total > len(spec.subjectPool) {
		panic(fmt.Sprintf("datagen: %s: subject pool too small: %d < %d",
			spec.name, len(spec.subjectPool), total))
	}
	subjects := spec.subjectPool[:total]
	trainSubj := subjects[:spec.train.subjects]
	validSubj := subjects[spec.train.subjects : spec.train.subjects+spec.valid.subjects]
	testSubj := subjects[spec.train.subjects+spec.valid.subjects:]

	ds := &Dataset{
		Name:             spec.name,
		Space:            buildSpace(spec),
		Lexicon:          buildLexicon(spec),
		Vocab:            make(map[schema.Concept][]string),
		PretrainCovered:  make(map[schema.Concept]bool),
		PretrainCoverage: make(map[schema.Concept]float64),
		GenericConcept:   make(map[schema.Concept]bool),
	}
	for _, cs := range spec.concepts {
		ds.Vocab[cs.concept] = cs.allInstances()
		ds.PretrainCovered[cs.concept] = cs.coverage > 0
		ds.PretrainCoverage[cs.concept] = cs.coverage
		ds.GenericConcept[cs.concept] = cs.generic
	}
	ds.Vocab[spec.subjectConcept] = append([]string(nil), spec.subjectPool...)
	ds.GenericConcept[spec.subjectConcept] = true
	ds.PretrainCovered[spec.subjectConcept] = true
	ds.PretrainCoverage[spec.subjectConcept] = 0.50

	ds.Table = buildTable(spec, rng, subjects)
	ds.Train = buildSplit(spec, spec.train, rng, trainSubj)
	ds.Valid = buildSplit(spec, spec.valid, rng, validSubj)
	ds.Test = buildSplit(spec, spec.test, rng, testSubj)
	return ds
}

// buildSpace places every vocabulary word in the embedding space around its
// concept centroid(s). Words shared between concepts (the cross-concept
// confusers) sit between centroids; generic modifiers get only a weak pull.
func buildSpace(spec *domainSpec) *embed.Space {
	type placement struct {
		sum   embed.Vector
		n     int
		alpha float64
	}
	words := make(map[string]*placement)
	place := func(word string, centroid embed.Vector, alpha float64) {
		w := strings.ToLower(word)
		p, ok := words[w]
		if !ok {
			p = &placement{alpha: alpha}
			words[w] = p
		}
		p.sum = p.sum.Add(centroid)
		p.n++
		if alpha > p.alpha {
			p.alpha = alpha
		}
	}
	centroidOf := func(c schema.Concept) embed.Vector {
		return embed.HashVector("centroid:" + spec.name + ":" + string(c))
	}
	for _, cs := range spec.concepts {
		centroid := centroidOf(cs.concept)
		for _, inst := range cs.allInstances() {
			for _, w := range strings.Fields(text.NormalizePhrase(inst)) {
				// Heterogeneous cluster tightness: some words sit close to
				// the concept centroid, others at the fringe. This is what
				// makes τ meaningful — strict thresholds only expand to the
				// tight core, so fringe-word instances become reachable
				// only at permissive τ, reproducing the paper's
				// precision/recall trade-off.
				alpha := 0.46 + 0.46*skew(hashFrac("alpha:"+w))
				if cs.modifierWords[w] {
					alpha = 0.45
				}
				place(w, centroid, alpha)
			}
		}
		// Concept-name words live near the centroid but not inside the
		// instance core (real embeddings put 'anatomy' near anatomy terms,
		// yet 'anatomy' is not itself an anatomical entity). The zero-shot
		// simulators key on these; THOR's matcher only reaches them at
		// permissive τ, where they become false positives.
		for _, w := range strings.Fields(text.NormalizePhrase(string(cs.concept))) {
			place(w, centroid, 0.72)
		}
	}
	subjCentroid := centroidOf(spec.subjectConcept)
	for _, name := range spec.subjectPool {
		for _, w := range strings.Fields(text.NormalizePhrase(name)) {
			place(w, subjCentroid, 0.46+0.46*skew(hashFrac("alpha:"+w)))
		}
	}
	for _, w := range strings.Fields(text.NormalizePhrase(string(spec.subjectConcept))) {
		place(w, subjCentroid, 0.72)
	}

	// Generic context words (template and filler vocabulary: 'doctors',
	// 'leaflet', 'treatment', ...) get a weak pull toward a hash-chosen
	// concept, the way real distributional embeddings place common domain
	// words near everything they co-occur with. They are reachable only at
	// permissive τ, where they become the bulk of the false positives —
	// the low-precision end of Table V.
	for _, w := range contextWords(spec) {
		if _, placed := words[w]; placed {
			continue
		}
		cs := spec.concepts[int(hashFrac("ctx-concept:"+w)*float64(len(spec.concepts)))%len(spec.concepts)]
		place(w, centroidOf(cs.concept), 0.30+0.35*hashFrac("ctx-alpha:"+w))
	}

	space := embed.NewSpace()
	for w, p := range words {
		base := p.sum.Scale(1 / float64(p.n)).Normalize()
		space.Add(w, embed.Blend(base, embed.HashVector("noise:"+spec.name+":"+w), p.alpha))
	}
	return space
}

// contextWords collects the content words of every sentence template and
// filler sentence in the recipe.
func contextWords(spec *domainSpec) []string {
	seen := make(map[string]bool)
	var out []string
	collect := func(ss []string) {
		for _, s := range ss {
			for _, w := range strings.Fields(text.NormalizePhrase(strings.ReplaceAll(s, "%s", " "))) {
				if text.IsStopword(w) || seen[w] {
					continue
				}
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	collect(spec.openingTemplates)
	collect(spec.relatedTemplates)
	collect(spec.trapTemplates)
	collect(spec.filler)
	for _, cs := range spec.concepts {
		collect(cs.templates)
		collect(cs.altTemplates)
		collect(cs.listTemplates)
	}
	sort.Strings(out)
	return out
}

// buildLexicon registers every vocabulary content word as a noun so the POS
// tagger treats synthesized terms (drug names, company names) correctly.
// Modifier words keep their built-in tags.
func buildLexicon(spec *domainSpec) map[string]pos.Tag {
	lex := make(map[string]pos.Tag)
	add := func(inst string, modifiers map[string]bool) {
		for _, w := range strings.Fields(text.NormalizePhrase(inst)) {
			if modifiers != nil && modifiers[w] {
				continue
			}
			if text.IsStopword(w) {
				continue
			}
			lex[w] = pos.NOUN
		}
	}
	for _, cs := range spec.concepts {
		for _, inst := range cs.allInstances() {
			add(inst, cs.modifierWords)
		}
	}
	for _, name := range spec.subjectPool {
		add(name, nil)
	}
	return lex
}

// buildTable samples the structured table: tableRows subjects (test and
// valid subjects first so evaluation subjects always have rows, matching the
// paper where the integrated table covers the evaluated diseases), cells
// filled from the known pools only.
func buildTable(spec *domainSpec, rng *rand.Rand, subjects []string) *schema.Table {
	sch := schema.NewSchema(spec.subjectConcept)
	for _, cs := range spec.concepts {
		sch = sch.WithConcept(cs.concept)
	}
	tab := schema.NewTable(sch)

	// Row order: valid + test subjects first (so every evaluated subject
	// has a row, as in the paper), then train subjects up to tableRows.
	nTrain := spec.train.subjects
	rows := make([]string, 0, spec.tableRows)
	rows = append(rows, subjects[nTrain:]...) // valid + test
	for _, s := range subjects[:nTrain] {
		if len(rows) >= spec.tableRows {
			break
		}
		rows = append(rows, s)
	}
	for _, subj := range rows {
		row := tab.AddRow(subj)
		for _, cs := range spec.concepts {
			if rng.Float64() > cs.tableP || len(cs.known) == 0 {
				continue
			}
			n := 1 + rng.Intn(cs.tableMaxVals)
			for _, v := range sampleDistinct(rng, cs.known, n) {
				row.Add(cs.concept, v)
			}
		}
	}
	return tab
}

// subjectFacts samples the unique facts of one subject for one split.
func subjectFacts(spec *domainSpec, ss splitSpec, rng *rand.Rand, subject string) map[schema.Concept][]string {
	facts := make(map[schema.Concept][]string)
	for _, cs := range spec.concepts {
		mean := ss.factsPerConcept
		n := int(mean*0.7) + rng.Intn(int(mean*0.6)+1) // mean ±30%
		if n < 1 {
			n = 1
		}
		seen := make(map[string]bool)
		var out []string
		for len(out) < n {
			var pool []string
			if rng.Float64() < spec.knownFactP && len(cs.known) > 0 {
				pool = cs.known
			} else {
				pool = cs.novel
			}
			if len(pool) == 0 {
				break
			}
			f := pick(rng, pool)
			if seen[f] {
				// Avoid infinite loops on tiny pools.
				if len(seen) >= len(cs.known)+len(cs.novel) {
					break
				}
				continue
			}
			seen[f] = true
			out = append(out, f)
		}
		facts[cs.concept] = out
	}
	return facts
}

// buildSplit generates documents and gold annotations for one split.
func buildSplit(spec *domainSpec, ss splitSpec, rng *rand.Rand, subjects []string) Split {
	split := Split{Subjects: append([]string(nil), subjects...)}
	goldSeen := make(map[string]bool)
	addGold := func(subj string, c schema.Concept, phrase string) {
		m := eval.Mention{Subject: subj, Concept: c, Phrase: phrase}.Normalize()
		key := m.Subject + "\x00" + string(m.Concept) + "\x00" + m.Phrase
		if goldSeen[key] {
			return
		}
		goldSeen[key] = true
		split.Gold = append(split.Gold, m)
	}

	group := spec.groupPerDoc
	if group < 1 {
		group = 1
	}

	// Per-subject sentence bundles.
	type bundle struct {
		subject   string
		sentences [][]string // per-doc sentence lists
	}
	bundles := make([]bundle, 0, len(subjects))
	for _, subj := range subjects {
		facts := subjectFacts(spec, ss, rng, subj)
		sentences := subjectSentences(spec, ss, rng, subj, facts, addGold)
		// Partition sentences across this subject's documents.
		docs := ss.docsPerSubject
		if group > 1 {
			docs = 1 // grouped domains put one section per subject
		}
		parts := make([][]string, docs)
		for i, s := range sentences {
			parts[i%docs] = append(parts[i%docs], s)
		}
		bundles = append(bundles, bundle{subject: subj, sentences: parts})
	}

	if group == 1 {
		for _, b := range bundles {
			for di, sents := range b.sentences {
				if len(sents) == 0 {
					continue
				}
				doc := segment.Document{
					Name:           fmt.Sprintf("%s-%s-%d", spec.name, sanitize(b.subject), di),
					DefaultSubject: b.subject,
					Text:           strings.Join(sents, " "),
				}
				split.Docs = append(split.Docs, doc)
				split.Words += countWords(doc.Text)
			}
		}
	} else {
		// Bundle `group` subjects per document (Résumé: 5 CVs per doc).
		for i := 0; i < len(bundles); i += group {
			hi := i + group
			if hi > len(bundles) {
				hi = len(bundles)
			}
			var sents []string
			for _, b := range bundles[i:hi] {
				sents = append(sents, b.sentences[0]...)
			}
			doc := segment.Document{
				Name: fmt.Sprintf("%s-doc-%d", spec.name, i/group),
				Text: strings.Join(sents, " "),
			}
			split.Docs = append(split.Docs, doc)
			split.Words += countWords(doc.Text)
		}
	}
	return split
}

// subjectSentences renders one subject's facts into sentences: an opening
// mention, fact sentences per concept, related-subject mentions and filler.
func subjectSentences(spec *domainSpec, ss splitSpec, rng *rand.Rand, subj string,
	facts map[schema.Concept][]string, addGold func(string, schema.Concept, string)) []string {

	var sents []string
	opening := fmt.Sprintf(pick(rng, spec.openingTemplates), subj)
	sents = append(sents, opening)
	addGold(subj, spec.subjectConcept, subj)

	// Concept facts, iterated in schema order for determinism.
	concepts := make([]*conceptSpec, len(spec.concepts))
	copy(concepts, spec.concepts)
	var factSents []string
	for _, cs := range concepts {
		fs := facts[cs.concept]
		for i := 0; i < len(fs); {
			// Occasionally emit a list sentence covering 2–3 facts.
			if len(cs.listTemplates) > 0 && len(fs)-i >= 2 && rng.Float64() < 0.4 {
				n := 2
				if len(fs)-i >= 3 && rng.Float64() < 0.5 {
					n = 3
				}
				items := fs[i : i+n]
				factSents = append(factSents, fmt.Sprintf(pick(rng, cs.listTemplates), joinList(items)))
				for _, f := range items {
					addGold(subj, cs.concept, f)
				}
				i += n
				continue
			}
			tpl := cs.templates
			if len(cs.altTemplates) > 0 && rng.Float64() < ss.altTemplateP {
				tpl = cs.altTemplates
			}
			factSents = append(factSents, fmt.Sprintf(pick(rng, tpl), fs[i]))
			addGold(subj, cs.concept, fs[i])
			i++
		}
	}

	// Trap mentions: vocabulary phrases the annotators did not mark.
	if len(spec.trapTemplates) > 0 {
		factWords := make(map[string]bool)
		for _, fs := range facts {
			for _, f := range fs {
				for _, w := range strings.Fields(text.NormalizePhrase(f)) {
					factWords[w] = true
				}
			}
		}
		docs := maxInt(1, ss.docsPerSubject)
		for i := 0; i < ss.trapsPerDoc*docs; i++ {
			cs := spec.concepts[rng.Intn(len(spec.concepts))]
			inst := trapInstance(rng, cs, factWords, ss.knownTrapP)
			if inst == "" {
				continue
			}
			factSents = append(factSents, fmt.Sprintf(pick(rng, spec.trapTemplates), inst))
		}
	}

	// Related subject mentions.
	for i := 0; i < ss.relatedPerSubject; i++ {
		other := pick(rng, spec.subjectPool)
		if strings.EqualFold(other, subj) {
			continue
		}
		factSents = append(factSents, fmt.Sprintf(pick(rng, spec.relatedTemplates), other))
		addGold(subj, spec.subjectConcept, other)
	}

	rng.Shuffle(len(factSents), func(i, j int) { factSents[i], factSents[j] = factSents[j], factSents[i] })
	sents = append(sents, factSents...)

	for i := 0; i < ss.fillerPerDoc*maxInt(1, ss.docsPerSubject); i++ {
		// Insert filler at random positions after the opening.
		f := pick(rng, spec.filler)
		pos := 1 + rng.Intn(len(sents))
		sents = append(sents[:pos], append([]string{f}, sents[pos:]...)...)
	}
	return sents
}

// trapInstance picks a vocabulary phrase that shares no content word with
// the subject's facts, so it cannot be scored as a (partial) true positive.
// With probability 0.35 it is an exact known-pool instance (fooling exact
// matchers at every threshold); otherwise it is a fringe novel instance,
// reachable only by permissive semantic matching.
func trapInstance(rng *rand.Rand, cs *conceptSpec, factWords map[string]bool, knownTrapP float64) string {
	for attempt := 0; attempt < 12; attempt++ {
		var cand string
		if rng.Float64() < knownTrapP && len(cs.known) > 0 {
			cand = pick(rng, cs.known)
		} else if len(cs.novel) > 0 {
			cand = pick(rng, cs.novel)
			words := strings.Fields(text.NormalizePhrase(cand))
			if len(words) == 0 {
				continue
			}
			// Fringe check on the head word: only weakly clustered heads
			// qualify as novel traps.
			if hashFrac("alpha:"+words[len(words)-1]) > 0.55 {
				continue
			}
		} else {
			return ""
		}
		ok := true
		for _, w := range strings.Fields(text.NormalizePhrase(cand)) {
			if factWords[w] {
				ok = false
				break
			}
		}
		if ok {
			return cand
		}
	}
	return ""
}

func joinList(items []string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	default:
		return strings.Join(items[:len(items)-1], ", ") + " and " + items[len(items)-1]
	}
}

func countWords(s string) int { return len(strings.Fields(s)) }

func sanitize(s string) string {
	return strings.ToLower(strings.ReplaceAll(s, " ", "-"))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// combinePools builds a concept's known/novel instance pools from heads and
// modifiers, splitting by head word so the pools stay disjoint even under
// partial matching. knownShare of heads go to the known pool. bareP is the
// probability a bare head (no modifier) joins a pool alongside its combos.
func combinePools(rng *rand.Rand, heads, modifiers []string, knownShare float64, combosPerHead int) (known, novel []string) {
	hs := append([]string(nil), heads...)
	rng.Shuffle(len(hs), func(i, j int) { hs[i], hs[j] = hs[j], hs[i] })
	nKnown := int(float64(len(hs)) * knownShare)
	for i, h := range hs {
		pool := &novel
		if i < nKnown {
			pool = &known
		}
		*pool = append(*pool, h)
		if len(modifiers) == 0 {
			continue
		}
		for _, m := range sampleDistinct(rng, modifiers, combosPerHead) {
			*pool = append(*pool, m+" "+h)
		}
	}
	sort.Strings(known)
	sort.Strings(novel)
	return known, novel
}

// skew biases a uniform fraction toward 0, thinning the tight core of each
// concept cluster so strict thresholds accept markedly fewer novel heads.
func skew(f float64) float64 { return f * f }

// hashFrac maps a string to a deterministic fraction in [0, 1).
func hashFrac(s string) float64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return float64(h%10000) / 10000
}

// modifierSet collects the modifier words for embedding placement.
func modifierSet(lists ...[]string) map[string]bool {
	out := make(map[string]bool)
	for _, l := range lists {
		for _, m := range l {
			for _, w := range strings.Fields(strings.ToLower(m)) {
				out[w] = true
			}
		}
	}
	return out
}
