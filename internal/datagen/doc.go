// Package datagen deterministically generates the paper's two evaluation
// datasets — Disease A-Z and Résumé — at the scale of Tables II and III.
//
// The real corpora (NHS/WHO/CDC health pages; job-seeker CVs) and their 600+
// hours of manual annotation are unavailable, so the generator synthesizes
// the closest equivalent that exercises the same code paths:
//
//   - per-concept vocabularies with cluster-consistent embeddings (known
//     table instances and novel out-of-table instances share a concept
//     cluster, so semantic matchers generalize and exact matchers do not),
//   - deliberate cross-concept confusers ('blood' as Anatomy vs 'blood clot'
//     as Complication) so syntactic refinement has work to do,
//   - a structured table whose coverage of the document entities matches the
//     Baseline's published recall regime, and
//   - ground-truth annotations that come for free from generation.
//
// All randomness is seeded; generation is reproducible bit-for-bit.
package datagen
