package datagen

import "time"

// AnnotationCost models the manual annotation effort of Experiment 2
// (Tables IX and X): three domain annotators plus a linguistic supervisor,
// with per-token annotation times between 8 and 13 seconds. Table X computes
// cumulative effort at the conservative per-token maximum, which this model
// reproduces.
type AnnotationCost struct {
	// MinTokenSeconds and MaxTokenSeconds bound the per-token annotation
	// time observed in the paper (8–13 s).
	MinTokenSeconds, MaxTokenSeconds float64
	// Annotators is the team size (3 annotators + 1 supervisor in the
	// paper; the supervisor is accounted separately).
	Annotators int
}

// DefaultAnnotationCost returns the paper's observed parameters.
func DefaultAnnotationCost() AnnotationCost {
	return AnnotationCost{MinTokenSeconds: 8, MaxTokenSeconds: 13, Annotators: 3}
}

// SecondsForWords returns the conservative (maximum-rate) annotation time in
// seconds for a document set of the given word count — the 'Annotation
// Time(s)' column of Table X.
func (c AnnotationCost) SecondsForWords(words int) float64 {
	return c.MaxTokenSeconds * float64(words)
}

// DocRange returns the min and max annotation time for a single document of
// the given word count (the 'Single Doc.' column of Table IX).
func (c AnnotationCost) DocRange(words int) (min, max time.Duration) {
	return time.Duration(c.MinTokenSeconds*float64(words)) * time.Second,
		time.Duration(c.MaxTokenSeconds*float64(words)) * time.Second
}

// SubjectRange returns the min and max annotation time for all documents of
// one subject (the 'Single Disease' column of Table IX).
func (c AnnotationCost) SubjectRange(wordsPerDoc []int) (min, max time.Duration) {
	total := 0
	for _, w := range wordsPerDoc {
		total += w
	}
	return c.DocRange(total)
}

// TotalHours returns the total annotation duration in hours for a corpus of
// the given word count at the conservative per-token rate — the '600+
// Hours' figure of Table IX (the paper accounts effort at the maximum
// observed rate, as Table X shows).
func (c AnnotationCost) TotalHours(words int) float64 {
	return c.MaxTokenSeconds * float64(words) / 3600
}
