package datagen

// Curated word material for the Résumé domain (Table II: 12 concepts).

var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
	"Christopher", "Lisa", "Daniel", "Nancy", "Matthew", "Betty", "Anthony",
	"Margaret", "Mark", "Sandra", "Priya", "Rahul", "Wei", "Mei", "Ahmed",
	"Fatima", "Carlos", "Sofia", "Pierre", "Amelie", "Yuki", "Hiro",
	"Olga", "Ivan", "Chioma", "Kwame", "Ingrid", "Lars", "Aisha", "Omar",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
	"Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
	"Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
	"Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
	"Carter", "Roberts", "Khan", "Patel", "Chen", "Kumar", "Ali", "Silva",
}

var awardHeads = []string{
	"employee of the month", "best paper award", "hackathon winner",
	"innovation award", "excellence award", "star performer award",
	"leadership award", "top seller award", "customer service award",
	"rising star award", "chairman's club award", "quality champion award",
	"team spirit award", "mentor of the year", "founders award",
	"spot bonus award", "engineering excellence award",
}

var certVendors = []string{
	"aws", "google cloud", "microsoft azure", "cisco", "oracle", "salesforce",
	"pmi", "scrum alliance", "comptia", "red hat", "vmware", "six sigma",
}

var certTypes = []string{
	"certified solutions architect", "certified developer",
	"certified administrator", "professional certification",
	"associate certification", "security certification",
	"networking certification", "data engineer certification",
	"project management certification", "master certification",
}

var degreeTypes = []string{
	"bachelor of science", "bachelor of arts", "bachelor of engineering",
	"master of science", "master of arts", "master of engineering",
	"master of business administration", "doctorate", "phd", "diploma",
	"associate degree",
}

var degreeFields = []string{
	"computer science", "electrical engineering", "mechanical engineering",
	"information technology", "data science", "business administration",
	"economics", "mathematics", "physics", "chemistry", "biology",
	"psychology", "marketing", "finance", "accounting", "graphic design",
	"civil engineering", "statistics", "linguistics", "philosophy",
}

var universityStems = []string{
	"Stanford", "Harvard", "Princeton", "Columbia", "Cornell", "Oxford",
	"Cambridge", "Toronto", "Melbourne", "Auckland", "Heidelberg",
	"Uppsala", "Bologna", "Salamanca", "Coimbra", "Leiden", "Geneva",
	"Vienna", "Prague", "Warsaw", "Lisbon", "Dublin", "Edinburgh",
	"Glasgow", "Manchester", "Bristol", "Helsinki", "Copenhagen", "Zurich",
	"Barcelona", "Madrid", "Lyon", "Grenoble", "Munich", "Hamburg", "Kyoto",
	"Osaka", "Seoul", "Taipei", "Singapore", "Delhi", "Mumbai", "Dhaka",
	"Cairo", "Nairobi", "Lagos", "Monterrey", "Bogota", "Santiago",
}

var collegeStems = []string{
	"St Xavier", "St Mary", "Riverside", "Lakeshore", "Hillcrest",
	"Oakwood", "Maplewood", "Northgate", "Southridge", "Eastfield",
	"Westbrook", "Kingsway", "Queensland", "Victoria", "Trinity",
	"Wellington", "Sunrise", "Greenfield", "Silverlake", "Brookstone",
}

var languages = []string{
	"english", "spanish", "french", "german", "mandarin", "hindi",
	"bengali", "arabic", "portuguese", "russian", "japanese", "italian",
	"dutch", "korean", "turkish", "swedish", "polish", "greek", "urdu",
	"tamil", "vietnamese", "thai", "hebrew", "finnish", "norwegian",
	"danish", "czech", "hungarian", "romanian", "ukrainian", "swahili",
	"catalan",
}

var cities = []string{
	"new york", "london", "barcelona", "berlin", "paris", "tokyo",
	"san francisco", "seattle", "austin", "chicago", "boston", "toronto",
	"vancouver", "sydney", "melbourne", "singapore", "dubai", "mumbai",
	"bangalore", "dhaka", "amsterdam", "stockholm", "zurich", "dublin",
	"lisbon", "madrid", "milan", "munich", "prague", "warsaw", "brussels",
	"copenhagen", "oslo", "helsinki", "vienna", "athens", "istanbul",
	"seoul", "shanghai", "beijing", "hong kong", "sao paulo",
	"mexico city", "buenos aires", "cape town", "nairobi", "cairo",
}

var roleSeniorities = []string{
	"senior", "junior", "lead", "principal", "associate", "staff", "chief",
	"assistant", "head",
}

var roleHeads = []string{
	"software engineer", "data analyst", "project manager", "data scientist",
	"product manager", "web developer", "systems administrator",
	"network engineer", "database administrator", "business analyst",
	"qa engineer", "devops engineer", "ux designer", "graphic designer",
	"marketing specialist", "sales executive", "financial analyst",
	"hr manager", "operations manager", "technical writer",
	"security analyst", "machine learning engineer", "mobile developer",
	"research scientist", "accountant", "consultant", "customer support specialist",
}

var skillHeads = []string{
	"python", "java", "javascript", "typescript", "golang", "rust", "sql",
	"nosql", "machine learning", "deep learning", "data visualization",
	"statistical analysis", "cloud computing", "docker", "kubernetes",
	"react", "angular", "django", "spring boot", "excel", "tableau",
	"power bi", "git", "linux", "agile methodology", "scrum", "leadership",
	"public speaking", "negotiation", "team management", "copywriting",
	"seo", "photoshop", "figma", "autocad", "salesforce crm",
	"financial modeling", "risk assessment", "etl pipelines",
	"natural language processing",
}

var companyStems = []string{
	"Acme", "Globex", "Initech", "Umbrella", "Vertex", "Quantum", "Nimbus",
	"Apex", "Zenith", "Orion", "Polaris", "Vega", "Atlas", "Titan",
	"Nova", "Pulsar", "Horizon", "Summit", "Cascade", "Meridian",
	"Beacon", "Catalyst", "Momentum", "Synergy", "Fusion", "Vortex",
	"Crystal", "Ember", "Granite", "Harbor",
}

var companySuffixes = []string{
	"Technologies", "Systems", "Solutions", "Labs", "Software", "Analytics",
	"Consulting", "Dynamics", "Industries", "Networks", "Digital", "Group",
}

var resumeFiller = []string{
	"References from previous employers are available upon request at any time.",
	"The candidate is open to relocation and willing to travel for the right position.",
	"Strong communication abilities were noted repeatedly by previous employers and clients alike.",
	"The attached portfolio showcases a broad range of completed projects from recent years.",
	"Remote collaboration across multiple time zones has been part of every recent role.",
	"Performance reviews over the last several evaluation cycles were consistently positive.",
	"The candidate enjoys mentoring younger colleagues and organizing internal study groups.",
	"Volunteer work includes several community initiatives organized over the past few years.",
	"Continuous learning remains a personal priority alongside regular conference attendance.",
	"The profile was last updated recently and reflects the current employment status.",
	"Day to day responsibilities covered planning, estimation, delivery and stakeholder reporting.",
	"The candidate contributed to internal documentation and onboarding material throughout each engagement.",
	"Hobbies include long distance running, chess and contributing to open source projects.",
	"Salary expectations and notice period details can be discussed during the interview.",
	"Availability for an initial conversation is generally good on weekday afternoons.",
	"Past teams describe a dependable colleague with a calm approach under pressure.",
}
