package datagen

import (
	"math/rand"

	"thor/internal/schema"
)

// DiseaseSeed is the default generation seed for the Disease A-Z dataset.
const DiseaseSeed = 20240115

// Disease generates the Disease A-Z dataset at the paper's scale (Tables II
// and III): 11 concepts, a 284-row structured table, and 314 diseases split
// 240/61/13 across train/validation/test.
func Disease(seed int64) *Dataset {
	vr := rand.New(rand.NewSource(seed ^ 0x5eed))

	anatomyKnown, anatomyNovel := combinePools(vr, anatomyHeads, anatomyModifiers, 0.35, 6)
	causeKnown, causeNovel := combinePools(vr, causeHeads, causeModifiers, 0.35, 4)
	complKnown, complNovel := combinePools(vr, complicationHeads, complicationModifiers, 0.35, 4)
	compoKnown, compoNovel := combinePools(vr, compositionHeads, compositionModifiers, 0.35, 2)
	diagKnown, diagNovel := combinePools(vr, diagnosisHeads, diagnosisModifiers, 0.35, 2)
	medKnown, medNovel := combinePools(vr, medicineNames(), nil, 0.35, 0)
	precKnown, precNovel := combinePools(vr, precautionHeads, nil, 0.35, 0)
	riskKnown, riskNovel := combinePools(vr, riskfactorHeads, nil, 0.35, 0)
	surgKnown, surgNovel := combinePools(vr, surgeryHeads, nil, 0.35, 0)
	sympKnown, sympNovel := combinePools(vr, symptomHeads, symptomModifiers, 0.35, 5)

	spec := &domainSpec{
		name:           "disease-az",
		subjectConcept: "Disease",
		subjectPool:    diseaseNames(vr, 620),
		concepts: []*conceptSpec{
			{
				concept: "Anatomy", known: anatomyKnown, novel: anatomyNovel,
				templates: []string{
					"It mainly affects the %s.",
					"The condition develops in the %s.",
					"Damage to the %s is typical.",
					"Swelling around the %s may appear.",
				},
				listTemplates: []string{"The disease can involve the %s."},
				coverage:      0.45, tableP: 0.70, tableMaxVals: 5,
				modifierWords: modifierSet(anatomyModifiers),
			},
			{
				concept: "Cause", known: causeKnown, novel: causeNovel,
				templates: []string{
					"It is usually caused by %s.",
					"%s can trigger the condition.",
					"The most common cause is %s.",
				},
				coverage: 0.35, tableP: 0.60, tableMaxVals: 3,
				modifierWords: modifierSet(causeModifiers),
			},
			{
				concept: "Complication", known: complKnown, novel: complNovel,
				templates: []string{
					"Without treatment it can lead to %s.",
					"Some patients develop %s.",
					"A serious complication is %s.",
				},
				listTemplates: []string{"Complications may include %s."},
				coverage:      0.40, tableP: 0.70, tableMaxVals: 4,
				modifierWords: modifierSet(complicationModifiers),
			},
			{
				// Composition is the under-represented class: small
				// vocabulary, zero UniNER pre-training coverage.
				concept: "Composition", known: compoKnown, novel: compoNovel,
				templates: []string{
					"The lesions consist of %s.",
					"Layers of %s build up over time.",
				},
				coverage: 0, tableP: 0.40, tableMaxVals: 2,
				modifierWords: modifierSet(compositionModifiers),
			},
			{
				concept: "Diagnosis", known: diagKnown, novel: diagNovel,
				templates: []string{
					"Doctors confirm it with a %s.",
					"A %s is used to diagnose the condition.",
					"Diagnosis usually requires a %s.",
				},
				coverage: 0.08, tableP: 0.65, tableMaxVals: 3,
				modifierWords: modifierSet(diagnosisModifiers),
			},
			{
				concept: "Medicine", known: medKnown, novel: medNovel,
				templates: []string{
					"Doctors often prescribe %s.",
					"Treatment usually involves %s.",
					"%s can relieve the condition.",
				},
				listTemplates: []string{"Common treatments include %s."},
				coverage:      0.12, tableP: 0.70, tableMaxVals: 5,
			},
			{
				concept: "Precaution", known: precKnown, novel: precNovel,
				templates: []string{
					"%s reduces the risk.",
					"Patients are advised to maintain %s.",
					"Doctors recommend %s as a precaution.",
				},
				coverage: 0.25, tableP: 0.55, tableMaxVals: 2,
			},
			{
				concept: "Riskfactor", known: riskKnown, novel: riskNovel,
				templates: []string{
					"%s increases the risk of the disease.",
					"People with %s are more likely to develop it.",
					"A major risk factor is %s.",
				},
				coverage: 0.40, tableP: 0.60, tableMaxVals: 3,
			},
			{
				concept: "Surgery", known: surgKnown, novel: surgNovel,
				templates: []string{
					"Severe cases may require %s.",
					"Surgeons sometimes perform %s.",
					"A %s can remove the damaged area.",
				},
				coverage: 0.25, tableP: 0.50, tableMaxVals: 2,
			},
			{
				concept: "Symptom", known: sympKnown, novel: sympNovel,
				templates: []string{
					"Patients often report %s.",
					"An early sign is %s.",
					"Many people experience %s.",
				},
				listTemplates: []string{"Common symptoms include %s."},
				coverage:      0.65, tableP: 0.75, tableMaxVals: 6,
				modifierWords: modifierSet(symptomModifiers),
			},
		},
		openingTemplates: []string{
			"%s is a condition that affects many people.",
			"%s is a disorder seen in clinics worldwide.",
			"%s develops gradually in most patients.",
		},
		relatedTemplates: []string{
			"It is sometimes confused with %s.",
			"Unlike %s, it progresses slowly.",
			"Patients with %s show similar signs.",
		},
		trapTemplates: []string{
			"The leaflet also mentions %s in passing.",
			"One review article discussed %s in a different context.",
			"A separate study once examined %s unrelated to this condition.",
			"The glossary at the clinic lists %s among other terms.",
		},
		filler: diseaseFiller,
		// Table III densities: train 240 subjects × 6 docs (~77 facts),
		// valid 61 × 5, test 13 × 7 (~170 facts incl. ~30 disease
		// mentions).
		train:       splitSpec{subjects: 240, docsPerSubject: 6, factsPerConcept: 6.3, relatedPerSubject: 14, fillerPerDoc: 4, trapsPerDoc: 4, knownTrapP: 0.15},
		valid:       splitSpec{subjects: 61, docsPerSubject: 5, factsPerConcept: 6.0, relatedPerSubject: 10, fillerPerDoc: 2, trapsPerDoc: 4, knownTrapP: 0.15},
		test:        splitSpec{subjects: 13, docsPerSubject: 7, factsPerConcept: 14.0, relatedPerSubject: 30, fillerPerDoc: 2, trapsPerDoc: 14, knownTrapP: 0.12},
		tableRows:   284,
		knownFactP:  0.15,
		groupPerDoc: 1,
	}
	return generate(spec, seed)
}

// medicineNames synthesizes the drug-name vocabulary.
func medicineNames() []string {
	var out []string
	for _, p := range medicinePrefixes {
		for _, s := range medicineSuffixes {
			out = append(out, p+s)
		}
	}
	return append(out, medicinePhrases...)
}

// diseaseNames builds the subject-name pool: real names first, then
// synthesized modifier+anatomy+pathology names.
func diseaseNames(rng *rand.Rand, n int) []string {
	names := append([]string(nil), realDiseases...)
	seen := make(map[string]bool, n)
	for _, d := range names {
		seen[d] = true
	}
	for len(names) < n {
		name := pick(rng, diseaseNameModifiers) + " " +
			pick(rng, diseaseNameAnatomies) + " " +
			pick(rng, diseaseNamePathologies)
		if seen[name] {
			continue
		}
		seen[name] = true
		names = append(names, name)
	}
	return names
}

// DiseaseSchema returns the Disease A-Z schema (Table II).
func DiseaseSchema() schema.Schema {
	return schema.NewSchema("Disease", "Anatomy", "Cause", "Complication",
		"Composition", "Diagnosis", "Medicine", "Precaution", "Riskfactor",
		"Surgery", "Symptom")
}
