package datagen

import (
	"math/rand"
	"strconv"

	"thor/internal/schema"
)

// ResumeSeed is the default generation seed for the Résumé dataset.
const ResumeSeed = 20240220

// Resume generates the Résumé dataset (Tables II and III): 12 concepts, a
// 201-row structured table, 270 job seekers split 100/70/100, and documents
// bundling 5 CVs each — long enough that the UniNER simulator's 2,048-token
// context window truncates them, as reported in the paper.
func Resume(seed int64) *Dataset {
	vr := rand.New(rand.NewSource(seed ^ 0xcafe))

	awardKnown, awardNovel := combinePools(vr, awardHeads, nil, 0.35, 0)
	certKnown, certNovel := combinePools(vr, certNames(), nil, 0.35, 0)
	degreeKnown, degreeNovel := combinePools(vr, degreeNames(), nil, 0.35, 0)
	uniKnown, uniNovel := combinePools(vr, universityNames(), nil, 0.35, 0)
	collegeKnown, collegeNovel := combinePools(vr, collegeNames(), nil, 0.35, 0)
	langKnown, langNovel := combinePools(vr, languages, nil, 0.35, 0)
	locKnown, locNovel := combinePools(vr, cities, nil, 0.35, 0)
	roleKnown, roleNovel := combinePools(vr, roleHeads, roleSeniorities, 0.35, 4)
	skillKnown, skillNovel := combinePools(vr, skillHeads, nil, 0.35, 0)
	compKnown, compNovel := combinePools(vr, companyNames(), nil, 0.35, 0)
	yoeKnown, yoeNovel := combinePools(vr, yoePhrases(), nil, 0.35, 0)

	spec := &domainSpec{
		name:           "resume",
		subjectConcept: "Name",
		subjectPool:    personNames(vr, 420),
		concepts: []*conceptSpec{
			{
				concept: "Awards", known: awardKnown, novel: awardNovel,
				templates: []string{
					"Won the %s.",
					"The candidate received the %s.",
				},
				altTemplates: []string{
					"Recognized with the %s at a company ceremony.",
					"Achievements feature the %s.",
				},
				coverage: 0.03, tableP: 0.5, tableMaxVals: 3,
			},
			{
				concept: "Certification", known: certKnown, novel: certNovel,
				templates: []string{
					"Holds a %s.",
					"Earned the %s last year.",
				},
				altTemplates: []string{
					"Credentials cover the %s.",
					"Obtained a %s recently.",
				},
				coverage: 0.03, tableP: 0.55, tableMaxVals: 3,
			},
			{
				concept: "Degree", known: degreeKnown, novel: degreeNovel,
				templates: []string{
					"Completed a %s.",
					"Graduated with a %s.",
				},
				altTemplates: []string{
					"Academic background features a %s.",
					"Education culminated in a %s.",
				},
				coverage: 0.08, generic: true, tableP: 0.7, tableMaxVals: 3,
			},
			{
				concept: "University", known: uniKnown, novel: uniNovel,
				templates: []string{
					"Studied at %s.",
					"The degree was awarded by %s.",
				},
				altTemplates: []string{
					"Enrolled at %s for the main degree.",
					"Alma mater is %s.",
				},
				coverage: 0.12, generic: true, tableP: 0.65, tableMaxVals: 2,
			},
			{
				concept: "College Name", known: collegeKnown, novel: collegeNovel,
				templates: []string{
					"Attended %s earlier.",
					"Secondary studies were at %s.",
				},
				altTemplates: []string{
					"Early schooling happened at %s.",
					"Foundation courses were taken at %s.",
				},
				coverage: 0.03, tableP: 0.45, tableMaxVals: 2,
			},
			{
				concept: "Language", known: langKnown, novel: langNovel,
				templates: []string{
					"Fluent in %s.",
					"Speaks %s at a professional level.",
				},
				altTemplates: []string{
					"Comfortable conversing in %s.",
					"Communicates daily in %s.",
				},
				listTemplates: []string{"Languages include %s."},
				coverage:      0.12, generic: true, tableP: 0.65, tableMaxVals: 4,
			},
			{
				concept: "Location", known: locKnown, novel: locNovel,
				templates: []string{
					"Based in %s.",
					"Currently living in %s.",
				},
				altTemplates: []string{
					"Home base is %s nowadays.",
					"Resides near %s.",
				},
				coverage: 0.12, generic: true, tableP: 0.7, tableMaxVals: 2,
			},
			{
				concept: "Worked As", known: roleKnown, novel: roleNovel,
				templates: []string{
					"Worked as a %s.",
					"The most recent role was %s.",
					"Previously employed as a %s.",
				},
				altTemplates: []string{
					"Functioned as a %s for several quarters.",
					"Serving currently as %s.",
				},
				coverage: 0.03, tableP: 0.75, tableMaxVals: 4,
				modifierWords: modifierSet(roleSeniorities),
			},
			{
				concept: "Skills", known: skillKnown, novel: skillNovel,
				templates: []string{
					"Highly proficient in %s.",
					"Core expertise covers %s.",
				},
				altTemplates: []string{
					"The toolbox contains %s.",
					"Hands-on mastery of %s.",
				},
				listTemplates: []string{"Skills include %s."},
				coverage:      0.08, tableP: 0.8, tableMaxVals: 6,
			},
			{
				concept: "Companies Worked At", known: compKnown, novel: compNovel,
				templates: []string{
					"Spent several years at %s.",
					"Joined %s after graduation.",
				},
				altTemplates: []string{
					"Career stops include %s.",
					"Employment history covers %s.",
				},
				coverage: 0.08, generic: true, tableP: 0.7, tableMaxVals: 4,
			},
			{
				concept: "Years Of Experience", known: yoeKnown, novel: yoeNovel,
				templates: []string{
					"Brings %s to the team.",
					"Has accumulated %s.",
				},
				altTemplates: []string{
					"Counts %s under the belt.",
					"The career spans %s.",
				},
				coverage: 0.01, tableP: 0.6, tableMaxVals: 1,
			},
		},
		openingTemplates: []string{
			"%s is an experienced professional.",
			"%s is seeking a new opportunity.",
			"%s has a strong track record.",
		},
		relatedTemplates: []string{
			"%s provided a reference.",
			"Collaborated closely with %s.",
		},
		trapTemplates: []string{
			"A former colleague mentioned %s during a casual chat.",
			"The cover letter briefly refers to %s without detail.",
			"An old newsletter once featured %s in another context.",
		},
		filler: resumeFiller,
		// Table III: 100/70/100 subjects, 20/14/20 documents (5 CVs each),
		// ~17–21 entities per CV.
		train:       splitSpec{subjects: 100, docsPerSubject: 1, factsPerConcept: 1.5, relatedPerSubject: 1, fillerPerDoc: 24, trapsPerDoc: 6, knownTrapP: 0.15},
		valid:       splitSpec{subjects: 70, docsPerSubject: 1, factsPerConcept: 1.8, relatedPerSubject: 1, fillerPerDoc: 24, trapsPerDoc: 6, knownTrapP: 0.15, altTemplateP: 0.5},
		test:        splitSpec{subjects: 100, docsPerSubject: 1, factsPerConcept: 1.8, relatedPerSubject: 1, fillerPerDoc: 24, trapsPerDoc: 12, knownTrapP: 0.50, altTemplateP: 0.8},
		tableRows:   201,
		knownFactP:  0.06,
		groupPerDoc: 5,
	}
	return generate(spec, seed)
}

func personNames(rng *rand.Rand, n int) []string {
	seen := make(map[string]bool, n)
	var out []string
	for len(out) < n {
		name := pick(rng, firstNames) + " " + pick(rng, lastNames)
		if seen[name] {
			continue
		}
		seen[name] = true
		out = append(out, name)
	}
	return out
}

func certNames() []string {
	var out []string
	for _, v := range certVendors {
		for _, t := range certTypes {
			out = append(out, v+" "+t)
		}
	}
	return out
}

func degreeNames() []string {
	var out []string
	for _, d := range degreeTypes {
		for _, f := range degreeFields {
			out = append(out, d+" in "+f)
		}
	}
	return out
}

func universityNames() []string {
	var out []string
	for _, s := range universityStems {
		out = append(out, s+" University", "University of "+s)
	}
	return out
}

func collegeNames() []string {
	var out []string
	for _, s := range collegeStems {
		out = append(out, s+" College", s+" Institute")
	}
	return out
}

func companyNames() []string {
	var out []string
	for _, s := range companyStems {
		for _, suf := range companySuffixes {
			out = append(out, s+" "+suf)
		}
	}
	return out
}

func yoePhrases() []string {
	var out []string
	for y := 1; y <= 30; y++ {
		out = append(out, strconv.Itoa(y)+" years of experience")
	}
	return out
}

// ResumeSchema returns the Résumé schema (Table II).
func ResumeSchema() schema.Schema {
	return schema.NewSchema("Name", "Awards", "Certification", "Degree",
		"University", "College Name", "Language", "Location", "Worked As",
		"Skills", "Companies Worked At", "Years Of Experience")
}
