package datagen

// Curated word material for the Disease A-Z domain (Table II: 11 concepts).
// Instances are built combinatorially from heads and modifiers, giving each
// concept a vocabulary far larger than the structured table's coverage — the
// regime in which exact dictionary matching (the Baseline) loses most of its
// recall while semantic matching generalizes.

var anatomyHeads = []string{
	"lung", "lungs", "liver", "kidney", "heart", "brain", "nerve", "spine",
	"skin", "ear", "eye", "throat", "stomach", "intestine", "bladder",
	"pancreas", "spleen", "artery", "vein", "muscle", "joint", "bone",
	"tendon", "cornea", "retina", "sinus", "tonsil", "gland", "colon",
	"esophagus", "diaphragm", "trachea", "scalp", "jaw", "gum", "blood",
	"nervous system", "inner ear", "spinal cord", "blood vessel",
	"optic nerve", "vocal cords", "hair follicle", "lymph node",
	"bone marrow", "heart valve", "rib cage", "nasal cavity",
}

var anatomyModifiers = []string{
	"left", "right", "inner", "outer", "upper", "lower", "peripheral",
	"central", "frontal", "vestibular", "cranial", "facial", "abdominal",
	"cardiac", "renal", "hepatic", "main",
}

var causeHeads = []string{
	"viral infection", "bacterial infection", "fungal infection",
	"bacteria", "virus", "fungus", "parasite", "genetic mutation",
	"hormonal imbalance", "immune reaction", "vitamin deficiency",
	"iron deficiency", "poor hygiene", "contaminated water",
	"airborne droplets", "insect bite", "tick bite", "tissue damage",
	"nerve compression", "smoking", "alcohol abuse", "radiation exposure",
	"chemical exposure", "blocked duct", "plaque buildup", "food poisoning",
	"allergic reaction", "autoimmune response", "enzyme deficiency",
}

var causeModifiers = []string{
	"chronic", "repeated", "severe", "untreated", "prolonged", "acute",
	"recurrent", "persistent",
}

var complicationHeads = []string{
	"hearing loss", "vision loss", "kidney failure", "heart failure",
	"organ damage", "blood clot", "scarring", "paralysis", "seizures",
	"infertility", "chronic pain", "empyema", "sepsis", "meningitis",
	"pneumonia", "abscess", "ulceration", "gangrene", "stroke",
	"nerve damage", "unsteadiness", "deafness", "blindness", "tumor",
	"skin cancer", "respiratory failure", "internal bleeding",
	"memory loss", "joint deformity", "bone fracture", "depression",
	"anxiety", "liver damage", "speech problems", "balance problems",
	"dark spots", "swollen glands",
}

var complicationModifiers = []string{
	"permanent", "severe", "progressive", "partial", "sudden", "long-term",
	"irreversible", "recurring",
}

var compositionHeads = []string{
	"calcium deposits", "fibrous tissue", "fatty tissue", "scar tissue",
	"keratin", "collagen", "uric acid crystals", "cholesterol", "plaque",
	"protein clumps", "melanin", "dead skin cells", "sebum", "mucus", "pus",
	"cyst fluid", "mineral salts",
}

var compositionModifiers = []string{"hardened", "excess", "abnormal", "thickened"}

var diagnosisHeads = []string{
	"blood test", "urine test", "skin biopsy", "biopsy", "ct scan",
	"mri scan", "x-ray", "ultrasound", "endoscopy", "colonoscopy",
	"physical examination", "hearing test", "vision test", "allergy test",
	"genetic screening", "stool sample", "lumbar puncture",
	"electrocardiogram", "blood pressure reading", "tissue culture",
	"sputum test", "bone scan", "nerve conduction study",
}

var diagnosisModifiers = []string{"routine", "detailed", "follow-up", "specialized"}

// medicinePrefixes and medicineSuffixes synthesize plausible drug names
// ("amoxicillin", "ketozole", ...). Every synthesized name is registered in
// the embedding space near the Medicine centroid and in the POS lexicon as a
// noun.
var medicinePrefixes = []string{
	"amoxi", "metro", "predni", "ibu", "cetri", "dexa", "fluco", "keto",
	"lisino", "ome", "panto", "rifa", "strepto", "tetra", "vanco", "cipro",
	"azithro", "clinda", "doxy", "erythro", "genta", "hydro", "lora", "nysta",
}

var medicineSuffixes = []string{
	"cillin", "mycin", "profen", "zole", "sone", "pril", "prazole",
	"floxacin", "dryl", "statin", "vir", "cycline",
}

var medicinePhrases = []string{
	"antibiotic ointment", "antifungal cream", "pain reliever",
	"antihistamine tablets", "insulin", "steroid cream", "beta blockers",
	"cough syrup", "antiviral tablets", "oral antibiotics", "eye drops",
	"nasal spray",
}

var precautionHeads = []string{
	"regular exercise", "balanced diet", "hand washing", "adequate sleep",
	"vaccination", "sun protection", "protective equipment",
	"clean drinking water", "stress management", "regular checkups",
	"smoking cessation", "limited alcohol intake", "proper ventilation",
	"mosquito nets", "safe food handling", "good posture", "weight control",
	"gentle skin care",
}

var riskfactorHeads = []string{
	"family history", "obesity", "smoking", "advanced age",
	"weakened immune system", "diabetes", "high blood pressure",
	"sedentary lifestyle", "poor nutrition", "excessive sun exposure",
	"occupational exposure", "pregnancy", "hormonal changes",
	"previous injury", "crowded living conditions", "chronic stress",
	"genetic predisposition", "vitamin d deficiency", "frequent travel",
}

var surgeryHeads = []string{
	"tumor removal", "organ transplant", "laser surgery", "bypass surgery",
	"joint replacement", "skin graft", "laparoscopic procedure",
	"appendectomy", "tonsillectomy", "corrective surgery",
	"drainage procedure", "stent placement", "cochlear implant",
	"radiosurgery", "microsurgical removal", "valve repair",
	"keyhole surgery", "biopsy excision",
}

var symptomHeads = []string{
	"fever", "fatigue", "headache", "nausea", "vomiting", "dizziness",
	"chest pain", "shortness of breath", "persistent cough", "rash",
	"itching", "swelling", "joint pain", "muscle weakness", "weight loss",
	"night sweats", "chills", "sore throat", "runny nose", "abdominal pain",
	"diarrhea", "constipation", "blurred vision", "tinnitus", "numbness",
	"loss of appetite", "insomnia", "hoarseness", "stiffness", "tremors",
	"pale skin", "excessive thirst",
}

var symptomModifiers = []string{
	"mild", "severe", "persistent", "sudden", "intermittent", "chronic",
	"occasional", "intense",
}

// realDiseases seed the subject-name pool with recognizable names.
var realDiseases = []string{
	"Acne", "Asthma", "Tuberculosis", "Malaria", "Measles", "Mumps",
	"Influenza", "Pneumonia", "Bronchitis", "Hepatitis", "Cirrhosis",
	"Diabetes", "Arthritis", "Osteoporosis", "Psoriasis", "Eczema",
	"Dermatitis", "Conjunctivitis", "Glaucoma", "Cataracts", "Vertigo",
	"Migraine", "Epilepsy", "Anemia", "Leukemia", "Lymphoma", "Melanoma",
	"Gout", "Lupus", "Scoliosis", "Sciatica", "Tetanus", "Typhoid",
	"Cholera", "Dengue", "Rabies", "Shingles", "Chickenpox", "Rubella",
	"Scarlet Fever", "Whooping Cough", "Acoustic Neuroma", "Appendicitis",
	"Tonsillitis", "Sinusitis", "Laryngitis", "Gastritis", "Colitis",
	"Pancreatitis", "Nephritis", "Cystitis", "Meningioma", "Sarcoidosis",
	"Endometriosis", "Fibromyalgia", "Hypothyroidism", "Hyperthyroidism",
	"Hypertension", "Hypotension", "Tachycardia",
}

// Synthetic disease-name material: modifier + anatomy-adjective + pathology.
var diseaseNameModifiers = []string{
	"Chronic", "Acute", "Congenital", "Juvenile", "Adult-Onset", "Atypical",
	"Primary", "Secondary", "Recurrent", "Idiopathic", "Seasonal",
	"Hereditary", "Progressive", "Benign",
}

var diseaseNameAnatomies = []string{
	"Renal", "Hepatic", "Cardiac", "Pulmonary", "Dermal", "Neural",
	"Ocular", "Gastric", "Spinal", "Vascular", "Muscular", "Auditory",
	"Nasal", "Oral", "Pancreatic", "Thyroid",
}

var diseaseNamePathologies = []string{
	"Fibrosis", "Dystrophy", "Syndrome", "Atrophy", "Sclerosis",
	"Stenosis", "Neuropathy", "Myopathy", "Dysplasia", "Edema",
	"Necrosis", "Lesion Disorder", "Inflammation", "Deficiency",
}

// fillerSentences carry no entities; they pad documents like real prose.
var diseaseFiller = []string{
	"The outlook is generally good with early treatment.",
	"Most people recover fully within a few weeks.",
	"The condition affects people of all ages.",
	"Early recognition makes management much easier.",
	"Cases vary widely from person to person.",
	"Researchers continue to study the underlying mechanisms.",
	"Support groups can help patients cope with the condition.",
	"A healthcare professional should be consulted promptly.",
	"Hospital admission is rarely necessary.",
	"The condition was first described more than a century ago.",
	"Awareness campaigns have improved early reporting.",
	"Follow-up visits are scheduled every few months.",
}
