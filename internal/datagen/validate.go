package datagen

import (
	"fmt"
	"strings"

	"thor/internal/eval"
	"thor/internal/text"
)

// Validate checks a generated dataset's structural invariants: split
// subjects are disjoint, every gold mention belongs to its split's subjects
// and the schema, gold phrases are normalized and actually occur in the
// subject's documents, the embedding space covers the vocabulary, and the
// table's evaluation subjects all have rows. It returns the first violation
// found.
func Validate(ds *Dataset) error {
	if ds.Table == nil || ds.Space == nil {
		return fmt.Errorf("datagen: %s: missing table or space", ds.Name)
	}
	seen := make(map[string]string) // lower subject -> split name
	for _, sp := range []struct {
		name  string
		split *Split
	}{{"train", &ds.Train}, {"valid", &ds.Valid}, {"test", &ds.Test}} {
		for _, s := range sp.split.Subjects {
			key := strings.ToLower(s)
			if prev, dup := seen[key]; dup {
				return fmt.Errorf("datagen: %s: subject %q in both %s and %s", ds.Name, s, prev, sp.name)
			}
			seen[key] = sp.name
		}
		if err := validateSplit(ds, sp.name, sp.split); err != nil {
			return err
		}
	}
	// Every test subject must have a table row (the paper's setting).
	for _, s := range ds.Test.Subjects {
		if ds.Table.Row(s) == nil {
			return fmt.Errorf("datagen: %s: test subject %q has no table row", ds.Name, s)
		}
	}
	// The space must cover the vocabulary's content words.
	for concept, instances := range ds.Vocab {
		for _, inst := range instances {
			for _, w := range strings.Fields(text.NormalizePhrase(inst)) {
				if text.IsStopword(w) {
					continue
				}
				if !ds.Space.Contains(w) {
					return fmt.Errorf("datagen: %s: vocabulary word %q of %s missing from the space", ds.Name, w, concept)
				}
			}
		}
	}
	return nil
}

func validateSplit(ds *Dataset, name string, split *Split) error {
	subjects := make(map[string]bool, len(split.Subjects))
	for _, s := range split.Subjects {
		subjects[strings.ToLower(s)] = true
	}
	// Group document text per subject for occurrence checks.
	bySubject := make(map[string]*strings.Builder)
	grouped := true
	for _, d := range split.Docs {
		if d.DefaultSubject == "" {
			grouped = false
			break
		}
		key := strings.ToLower(d.DefaultSubject)
		if bySubject[key] == nil {
			bySubject[key] = &strings.Builder{}
		}
		bySubject[key].WriteByte(' ')
		bySubject[key].WriteString(text.NormalizePhrase(d.Text))
	}
	var allText string
	if !grouped {
		var b strings.Builder
		for _, d := range split.Docs {
			b.WriteByte(' ')
			b.WriteString(text.NormalizePhrase(d.Text))
		}
		allText = b.String()
	}

	dup := make(map[eval.Mention]bool, len(split.Gold))
	for _, g := range split.Gold {
		if !subjects[g.Subject] {
			return fmt.Errorf("datagen: %s/%s: gold mention for foreign subject %q", ds.Name, name, g.Subject)
		}
		if !ds.Table.Schema.Has(g.Concept) {
			return fmt.Errorf("datagen: %s/%s: gold mention with off-schema concept %q", ds.Name, name, g.Concept)
		}
		if g.Phrase == "" || g.Phrase != text.NormalizePhrase(g.Phrase) {
			return fmt.Errorf("datagen: %s/%s: gold phrase %q not normalized", ds.Name, name, g.Phrase)
		}
		if dup[g] {
			return fmt.Errorf("datagen: %s/%s: duplicate gold mention %v", ds.Name, name, g)
		}
		dup[g] = true
		haystack := allText
		if grouped {
			if b := bySubject[g.Subject]; b != nil {
				haystack = b.String()
			} else {
				haystack = ""
			}
		}
		if !strings.Contains(haystack, g.Phrase) {
			return fmt.Errorf("datagen: %s/%s: gold phrase %q absent from documents", ds.Name, name, g.Phrase)
		}
	}
	return nil
}
