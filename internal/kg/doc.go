// Package kg implements a lightweight knowledge graph over the integrated
// data and a THOR extension built on it: the paper's future-work proposal of
// "reducing the number of false positives ... by further exploring the data
// integration context" (Section VII).
//
// The graph is a triple store whose nodes are subject instances, concepts
// and instance phrases; FromTable derives it from a concept-oriented table
// ((subject, concept, instance) triples plus same-row co-occurrence edges).
// Validator uses the graph's type assertions to reject extracted entities
// whose head word is known under different concepts only — the cross-concept
// confusions that dominate THOR's false positives at permissive τ.
package kg
