package kg

import (
	"sort"
	"strings"

	"thor/internal/schema"
	"thor/internal/text"
)

// Triple is one edge of the graph.
type Triple struct {
	// Subject, Predicate and Object are the edge's three components.
	Subject, Predicate, Object string
}

// Predicates used by FromTable.
const (
	// PredInstanceOf links an instance phrase to its concept.
	PredInstanceOf = "instanceOf"
	// PredHasValue links a subject instance to an instance phrase.
	PredHasValue = "hasValue"
	// PredCooccurs links two instance phrases appearing in the same row.
	PredCooccurs = "cooccursWith"
)

// Graph is an in-memory triple store with subject and object indexes. Build
// it with New/Add or FromTable; it is then safe for concurrent readers.
type Graph struct {
	triples map[Triple]bool
	bySP    map[[2]string][]string // (subject, predicate) -> objects
	byOP    map[[2]string][]string // (object, predicate) -> subjects
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		triples: make(map[Triple]bool),
		bySP:    make(map[[2]string][]string),
		byOP:    make(map[[2]string][]string),
	}
}

// Add inserts a triple (idempotent). Terms are stored lower-cased.
func (g *Graph) Add(subject, predicate, object string) {
	t := Triple{
		Subject:   strings.ToLower(subject),
		Predicate: predicate,
		Object:    strings.ToLower(object),
	}
	if t.Subject == "" || t.Object == "" || g.triples[t] {
		return
	}
	g.triples[t] = true
	sp := [2]string{t.Subject, t.Predicate}
	g.bySP[sp] = append(g.bySP[sp], t.Object)
	op := [2]string{t.Object, t.Predicate}
	g.byOP[op] = append(g.byOP[op], t.Subject)
}

// Len returns the number of distinct triples.
func (g *Graph) Len() int { return len(g.triples) }

// Has reports whether the triple exists.
func (g *Graph) Has(subject, predicate, object string) bool {
	return g.triples[Triple{
		Subject:   strings.ToLower(subject),
		Predicate: predicate,
		Object:    strings.ToLower(object),
	}]
}

// Objects returns the objects of (subject, predicate), sorted.
func (g *Graph) Objects(subject, predicate string) []string {
	out := append([]string(nil), g.bySP[[2]string{strings.ToLower(subject), predicate}]...)
	sort.Strings(out)
	return out
}

// Subjects returns the subjects of (predicate, object), sorted.
func (g *Graph) Subjects(predicate, object string) []string {
	out := append([]string(nil), g.byOP[[2]string{strings.ToLower(object), predicate}]...)
	sort.Strings(out)
	return out
}

// FromTable derives the integration-context graph of a concept-oriented
// table: every cell value yields (value, instanceOf, concept) and (subject,
// hasValue, value); values sharing a row are linked with cooccursWith. Head
// words additionally assert their instances' concepts, so partial mentions
// stay typable.
func FromTable(t *schema.Table) *Graph {
	g := New()
	for _, row := range t.Rows {
		var rowValues []string
		for _, c := range t.Schema.NonSubject() {
			for _, v := range row.Values(c) {
				norm := text.NormalizePhrase(v)
				if norm == "" {
					continue
				}
				g.Add(norm, PredInstanceOf, string(c))
				g.Add(row.Subject, PredHasValue, norm)
				if h := headOf(norm); h != norm {
					g.Add(h, PredInstanceOf, string(c))
				}
				rowValues = append(rowValues, norm)
			}
		}
		for i := 0; i < len(rowValues); i++ {
			for j := i + 1; j < len(rowValues); j++ {
				g.Add(rowValues[i], PredCooccurs, rowValues[j])
				g.Add(rowValues[j], PredCooccurs, rowValues[i])
			}
		}
	}
	return g
}

func headOf(phrase string) string {
	fields := strings.Fields(phrase)
	for i := len(fields) - 1; i >= 0; i-- {
		if !text.IsStopword(fields[i]) {
			return fields[i]
		}
	}
	return phrase
}

// Validator filters extracted entities against the graph's type assertions.
type Validator struct {
	g *Graph
}

// NewValidator wraps a graph.
func NewValidator(g *Graph) *Validator { return &Validator{g: g} }

// Validate reports whether assigning concept to phrase is consistent with
// the graph: if the phrase (or its head word) is a known instance, the
// assigned concept must be among its known concepts. Unknown phrases pass —
// the graph can only veto what it has evidence about.
func (v *Validator) Validate(phrase string, concept schema.Concept) bool {
	norm := text.NormalizePhrase(phrase)
	if norm == "" {
		return false
	}
	for _, term := range []string{norm, headOf(norm)} {
		known := v.g.Objects(term, PredInstanceOf)
		if len(known) == 0 {
			continue
		}
		for _, c := range known {
			if strings.EqualFold(c, string(concept)) {
				return true
			}
		}
		return false
	}
	return true
}
