package kg

import (
	"reflect"
	"testing"

	"thor/internal/schema"
)

func sampleTable() *schema.Table {
	t := schema.NewTable(schema.NewSchema("Disease", "Anatomy", "Complication"))
	r := t.AddRow("Acoustic Neuroma")
	r.Add("Anatomy", "nervous system")
	r.Add("Complication", "hearing loss")
	r2 := t.AddRow("Tuberculosis")
	r2.Add("Complication", "empyema")
	return t
}

func TestGraphAddAndQuery(t *testing.T) {
	g := New()
	g.Add("Empyema", PredInstanceOf, "Complication")
	g.Add("empyema", PredInstanceOf, "complication") // duplicate (case)
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1 (idempotent, case-insensitive)", g.Len())
	}
	if !g.Has("EMPYEMA", PredInstanceOf, "Complication") {
		t.Error("Has should be case-insensitive")
	}
	if got := g.Objects("empyema", PredInstanceOf); !reflect.DeepEqual(got, []string{"complication"}) {
		t.Errorf("Objects = %v", got)
	}
	if got := g.Subjects(PredInstanceOf, "complication"); !reflect.DeepEqual(got, []string{"empyema"}) {
		t.Errorf("Subjects = %v", got)
	}
}

func TestGraphIgnoresEmptyTerms(t *testing.T) {
	g := New()
	g.Add("", PredInstanceOf, "x")
	g.Add("x", PredInstanceOf, "")
	if g.Len() != 0 {
		t.Errorf("empty terms stored: %d triples", g.Len())
	}
}

func TestFromTableTriples(t *testing.T) {
	g := FromTable(sampleTable())
	// Instance typing.
	if !g.Has("nervous system", PredInstanceOf, "Anatomy") {
		t.Error("missing instanceOf for full phrase")
	}
	// Head-word typing.
	if !g.Has("system", PredInstanceOf, "Anatomy") {
		t.Error("missing instanceOf for head word")
	}
	// Subject values.
	if !g.Has("Acoustic Neuroma", PredHasValue, "hearing loss") {
		t.Error("missing hasValue edge")
	}
	// Same-row co-occurrence, symmetric.
	if !g.Has("nervous system", PredCooccurs, "hearing loss") ||
		!g.Has("hearing loss", PredCooccurs, "nervous system") {
		t.Error("missing co-occurrence edges")
	}
	// No cross-row co-occurrence.
	if g.Has("empyema", PredCooccurs, "nervous system") {
		t.Error("cross-row co-occurrence leaked")
	}
}

func TestValidatorConsistency(t *testing.T) {
	v := NewValidator(FromTable(sampleTable()))
	// Known instance under its own concept: pass.
	if !v.Validate("empyema", "Complication") {
		t.Error("known instance vetoed under its own concept")
	}
	// Known instance under a different concept: veto.
	if v.Validate("empyema", "Anatomy") {
		t.Error("cross-concept assignment not vetoed")
	}
	// Head-word evidence: 'severe hearing loss' heads 'loss', known under
	// Complication.
	if !v.Validate("severe hearing loss", "Complication") {
		t.Error("variant with known head vetoed")
	}
	if v.Validate("severe hearing loss", "Anatomy") {
		t.Error("variant with known head accepted under wrong concept")
	}
	// Unknown phrases pass — the graph only vetoes what it knows.
	if !v.Validate("completely unknown thing", "Anatomy") {
		t.Error("unknown phrase vetoed")
	}
	// Empty phrase: reject.
	if v.Validate("", "Anatomy") {
		t.Error("empty phrase accepted")
	}
}

func TestValidatorMultiConceptInstances(t *testing.T) {
	g := New()
	g.Add("smoking", PredInstanceOf, "Cause")
	g.Add("smoking", PredInstanceOf, "Riskfactor")
	v := NewValidator(g)
	if !v.Validate("smoking", "Cause") || !v.Validate("smoking", "Riskfactor") {
		t.Error("multi-concept instance should validate under each")
	}
	if v.Validate("smoking", "Symptom") {
		t.Error("multi-concept instance accepted under a third concept")
	}
}
