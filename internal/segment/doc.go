// Package segment implements Phase ① (a) of the THOR pipeline: splitting a
// document into sentences and associating each sentence with an instance of
// the subject concept (Algorithm 1, line 1).
//
// The strategy mirrors the paper: documents (or paragraphs) typically talk
// about one subject instance at a time, so a direct mention switches the
// active subject and subsequent sentences inherit it; sentences before any
// mention fall back to the document's default subject (e.g. the disease a
// Disease A-Z page is about) or, failing that, a fuzzy match.
package segment
