package segment

import (
	"testing"
)

var subjects = []string{"Acoustic Neuroma", "Tuberculosis", "Acne"}

// The Fig. 1 document: first two sentences about Acoustic Neuroma, the last
// about Tuberculosis.
func TestSegmentRunningExample(t *testing.T) {
	doc := Document{
		Name: "sample",
		Text: "An Acoustic Neuroma is a slow-growing non-cancerous brain tumor. " +
			"It develops on the main nerve leading from the inner ear to the brain. " +
			"Tuberculosis generally damages the lungs.",
	}
	got := New(subjects).Segment(doc)
	if len(got) != 3 {
		t.Fatalf("got %d assignments, want 3", len(got))
	}
	want := []string{"Acoustic Neuroma", "Acoustic Neuroma", "Tuberculosis"}
	for i, w := range want {
		if got[i].Subject != w {
			t.Errorf("sentence %d: subject = %q, want %q", i, got[i].Subject, w)
		}
	}
}

func TestSegmentCarryForward(t *testing.T) {
	doc := Document{Text: "Acne is common. It affects the skin. Scarring may follow."}
	got := New(subjects).Segment(doc)
	for i, a := range got {
		if a.Subject != "Acne" {
			t.Errorf("sentence %d: subject = %q, want carry-forward Acne", i, a.Subject)
		}
	}
}

func TestSegmentDefaultSubject(t *testing.T) {
	doc := Document{
		DefaultSubject: "Tuberculosis",
		Text:           "The condition damages the lungs. Complications may include empyema.",
	}
	got := New(subjects).Segment(doc)
	for i, a := range got {
		if a.Subject != "Tuberculosis" {
			t.Errorf("sentence %d: subject = %q, want document default", i, a.Subject)
		}
	}
}

func TestSegmentFuzzyFallback(t *testing.T) {
	// Misspelled mention, no default: the fuzzy matcher should recover it.
	doc := Document{Text: "Tubercolosis damages the lungs."}
	got := New(subjects).Segment(doc)
	if len(got) != 1 || got[0].Subject != "Tuberculosis" {
		t.Errorf("fuzzy fallback: got %+v", got)
	}
}

func TestSegmentFuzzyDisabled(t *testing.T) {
	sg := New(subjects)
	sg.SetFuzzyThreshold(0)
	got := sg.Segment(Document{Text: "Tubercolosis damages the lungs."})
	if len(got) != 1 || got[0].Subject != "" {
		t.Errorf("fuzzy disabled: got %+v", got)
	}
}

func TestSegmentLongestMentionWins(t *testing.T) {
	sg := New([]string{"Neuroma", "Acoustic Neuroma"})
	got := sg.Segment(Document{Text: "An acoustic neuroma was found."})
	if got[0].Subject != "Acoustic Neuroma" {
		t.Errorf("subject = %q, want the longer mention", got[0].Subject)
	}
}

func TestSegmentSwitchBack(t *testing.T) {
	doc := Document{Text: "Acne affects the skin. Tuberculosis damages the lungs. Acne may return."}
	got := New(subjects).Segment(doc)
	want := []string{"Acne", "Tuberculosis", "Acne"}
	for i, w := range want {
		if got[i].Subject != w {
			t.Errorf("sentence %d: %q, want %q", i, got[i].Subject, w)
		}
	}
}

func TestSegmentEmptyDocument(t *testing.T) {
	if got := New(subjects).Segment(Document{Text: ""}); len(got) != 0 {
		t.Errorf("empty document: %v", got)
	}
}

func TestSegmentNoSubjects(t *testing.T) {
	sg := New(nil)
	got := sg.Segment(Document{Text: "Something entirely different."})
	if len(got) != 1 || got[0].Subject != "" {
		t.Errorf("no-subject segmentation: %+v", got)
	}
}

func TestSegmentParagraphReset(t *testing.T) {
	doc := Document{
		DefaultSubject: "Acne",
		Text: "Acne affects the skin. Tuberculosis is different and damages the lungs.\n\n" +
			"The condition usually clears up on its own.",
	}
	got := New(subjects).Segment(doc)
	if len(got) != 3 {
		t.Fatalf("assignments = %d", len(got))
	}
	if got[1].Subject != "Tuberculosis" {
		t.Errorf("sentence 2 subject = %q, want mention switch", got[1].Subject)
	}
	// After the blank line the document's own subject resumes.
	if got[2].Subject != "Acne" {
		t.Errorf("sentence 3 subject = %q, want paragraph reset to default", got[2].Subject)
	}
}

func TestSegmentNoParagraphResetWithinParagraph(t *testing.T) {
	doc := Document{
		DefaultSubject: "Acne",
		Text:           "Tuberculosis damages the lungs. It spreads through the air.",
	}
	got := New(subjects).Segment(doc)
	if got[1].Subject != "Tuberculosis" {
		t.Errorf("carry-forward broken within a paragraph: %q", got[1].Subject)
	}
}
