package segment

import (
	"strings"

	"thor/internal/ahocorasick"
	"thor/internal/strsim"
	"thor/internal/text"
)

// Document is a named text to conceptualize.
type Document struct {
	// Name identifies the document (file name, page title, ...).
	Name string
	// DefaultSubject, when non-empty, is the subject instance the document
	// is about when no explicit mention has been seen yet.
	DefaultSubject string
	// Text is the raw document body.
	Text string
}

// Assignment pairs a sentence with the subject instance it talks about.
// Subject is empty when no instance could be determined.
type Assignment struct {
	// Subject is the instance the sentence was attributed to.
	Subject string
	// Sentence is the attributed sentence.
	Sentence text.Sentence
}

// Segmenter assigns sentences to subject instances.
type Segmenter struct {
	subjects []string
	auto     *ahocorasick.Automaton
	// fuzzyThreshold is the minimum Levenshtein ratio for the fuzzy
	// fallback; 0 disables fuzzy matching.
	fuzzyThreshold float64
}

// New builds a Segmenter for the given subject instances (R.C* in the
// paper's notation).
func New(subjects []string) *Segmenter {
	return &Segmenter{
		subjects:       subjects,
		auto:           ahocorasick.NewAutomaton(subjects),
		fuzzyThreshold: 0.82,
	}
}

// SetFuzzyThreshold adjusts the fuzzy-fallback threshold (0 disables).
func (sg *Segmenter) SetFuzzyThreshold(t float64) { sg.fuzzyThreshold = t }

// Segment splits the document into sentences and assigns each to a subject
// instance using, in order: direct whole-word mention, carry-forward of the
// active subject, the document default, and fuzzy matching. A paragraph
// break (blank line) resets the carried subject to the document default:
// paragraphs usually open their own topic, as the paper observes.
func (sg *Segmenter) Segment(doc Document) []Assignment {
	sents := text.SplitSentences(doc.Text)
	out := make([]Assignment, 0, len(sents))
	active := doc.DefaultSubject
	prevEnd := 0
	for _, s := range sents {
		if paragraphBreak(doc.Text, prevEnd, s.Start) {
			active = doc.DefaultSubject
		}
		prevEnd = s.End
		if subj := sg.mention(doc.Text, s); subj != "" {
			active = subj
		} else if active == "" && sg.fuzzyThreshold > 0 {
			active = sg.fuzzy(s)
		}
		out = append(out, Assignment{Subject: active, Sentence: s})
	}
	return out
}

// paragraphBreak reports whether the gap text[from:to] contains a blank line
// (two newlines with only whitespace between them).
func paragraphBreak(text string, from, to int) bool {
	if from >= to || from < 0 || to > len(text) {
		return false
	}
	newlines := 0
	for i := from; i < to; i++ {
		switch text[i] {
		case '\n':
			newlines++
			if newlines >= 2 {
				return true
			}
		case ' ', '\t', '\r':
		default:
			newlines = 0
		}
	}
	return false
}

// mention returns the subject instance that opens the sentence, preferring
// the longest mention (so "acoustic neuroma" beats "neuroma"). Only
// sentence-initial mentions (starting within the first few words) switch the
// active subject: "Tuberculosis damages the lungs" switches, while "it is
// often confused with Tuberculosis" stays with the current subject.
func (sg *Segmenter) mention(docText string, s text.Sentence) string {
	limit := initialSpan(s)
	best := ""
	for _, m := range sg.auto.FindWholeWords(docText[s.Start:s.End]) {
		if m.Start > limit {
			continue
		}
		p := sg.auto.Pattern(m.Pattern)
		if len(p) > len(best) {
			best = p
		}
	}
	return best
}

// initialSpan returns the byte offset (relative to the sentence) where the
// fourth word-like token starts — the window in which a mention counts as
// sentence-initial.
func initialSpan(s text.Sentence) int {
	words := 0
	for _, t := range s.Tokens {
		if t.IsWordLike() {
			words++
			if words == 4 {
				return t.Start - s.Start
			}
		}
	}
	if len(s.Tokens) == 0 {
		return 0
	}
	return s.End - s.Start
}

// fuzzy finds the subject whose normalized form is closest to any word
// window of the sentence by Levenshtein ratio, if above the threshold.
func (sg *Segmenter) fuzzy(s text.Sentence) string {
	words := s.Words()
	best, bestScore := "", sg.fuzzyThreshold
	for _, subj := range sg.subjects {
		ns := text.NormalizePhrase(subj)
		k := len(strings.Fields(ns))
		if k == 0 || k > len(words) {
			continue
		}
		for i := 0; i+k <= len(words); i++ {
			window := strings.Join(words[i:i+k], " ")
			if score := strsim.LevenshteinRatio(window, ns); score >= bestScore {
				best, bestScore = subj, score
			}
		}
	}
	return best
}
