package segment_test

import (
	"testing"

	"thor/internal/segment"
	"thor/internal/text"
)

// FuzzSegment checks the segmenter's structural contract on arbitrary
// document text: one assignment per sentence, in order, and every assigned
// subject is either empty, the document default, or one of the segmenter's
// subject instances — never text invented from the input.
func FuzzSegment(f *testing.F) {
	f.Add("An Acoustic Neuroma is a brain tumor. Tuberculosis damages the lungs.", "Acoustic Neuroma")
	f.Add("First paragraph about tuberculosis.\n\nA new paragraph starts here.", "")
	f.Add("J. Alvarez worked at Innotech Inc. since 2015.", "J. Alvarez")
	f.Add("\xff\xfe truncated \xe2\x84", "")
	f.Add("acoustic neuroma acoustic neuroma acoustic neuroma", "other")
	f.Fuzz(func(t *testing.T, doc, defaultSubject string) {
		if len(doc) > 1<<13 {
			t.Skip()
		}
		subjects := []string{"Acoustic Neuroma", "Tuberculosis", "J. Alvarez"}
		sg := segment.New(subjects)
		asg := sg.Segment(segment.Document{Name: "fuzz", DefaultSubject: defaultSubject, Text: doc})
		sents := text.SplitSentences(doc)
		if len(asg) != len(sents) {
			t.Fatalf("%d assignments for %d sentences", len(asg), len(sents))
		}
		allowed := map[string]bool{"": true, defaultSubject: true}
		for _, s := range subjects {
			allowed[s] = true
		}
		for i, a := range asg {
			if a.Sentence.Start != sents[i].Start || a.Sentence.End != sents[i].End {
				t.Fatalf("assignment %d sentence span [%d,%d) != splitter's [%d,%d)",
					i, a.Sentence.Start, a.Sentence.End, sents[i].Start, sents[i].End)
			}
			if !allowed[a.Subject] {
				t.Fatalf("assignment %d subject %q is neither empty, the default, nor a known instance", i, a.Subject)
			}
		}
		// Disabling fuzzy fallback must never widen the subject set.
		sg2 := segment.New(subjects)
		sg2.SetFuzzyThreshold(0)
		for i, a := range sg2.Segment(segment.Document{Name: "fuzz", DefaultSubject: defaultSubject, Text: doc}) {
			if !allowed[a.Subject] {
				t.Fatalf("no-fuzzy assignment %d subject %q out of range", i, a.Subject)
			}
		}
	})
}
