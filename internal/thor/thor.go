// Package thor implements the THOR pipeline of the paper "Mitigating Data
// Sparsity in Integrated Data through Text Conceptualization" (ICDE 2024):
// entity-centric slot filling that enriches an integrated table with
// conceptualized entities extracted from external documents.
//
// The pipeline follows Algorithm 1 exactly:
//
//	① Preparation      — segment documents by subject instance and fine-tune
//	                      a semantic matcher from the table's own instances.
//	② Entity Extraction — parse each sentence, extract noun phrases, match
//	                      subphrases semantically, refine syntactically, and
//	                      keep the best entity per phrase.
//	③ Slot Filling      — write the extracted entities into the table's
//	                      labeled nulls.
package thor

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"thor/internal/cow"
	"thor/internal/dep"
	"thor/internal/embed"
	"thor/internal/matcher"
	"thor/internal/obs"
	"thor/internal/phrase"
	"thor/internal/pos"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/strsim"
)

// Entity is a conceptualized entity extracted from text: a phrase paired
// with a concept, attributed to a subject instance, with the refinement
// scores of Algorithm 1 lines 10–13.
type Entity struct {
	// Subject is the subject instance c* the entity relates to.
	Subject string
	// Doc names the document the entity was extracted from (provenance).
	Doc string
	// Phrase is e.p, the extracted (normalized) phrase.
	Phrase string
	// Concept is e.C, the assigned schema concept.
	Concept schema.Concept
	// Matched is c_m, the seed instance the matcher aligned the phrase to.
	Matched string
	// ScoreS, ScoreW and ScoreC are the semantic, word-level (Jaccard) and
	// character-level (Gestalt) similarities to Matched.
	ScoreS, ScoreW, ScoreC float64
	// Score is their combination (the average, by default).
	Score float64
}

// Config controls a pipeline run.
type Config struct {
	// Tau is the user threshold τ ∈ [0,1]; see Table V of the paper.
	Tau float64
	// Knowledge optionally supplies a different table for matcher
	// fine-tuning than the slot-filling target. This is the paper's
	// evaluation setting: the matcher learns from the full structured table
	// R while the cleared test table R_test' receives the slots. Nil means
	// fine-tune on the target table itself.
	Knowledge *schema.Table
	// MinScore discards refined entities whose combined score falls below
	// it. Zero means 0.30.
	MinScore float64
	// Matcher carries advanced matcher options; Tau is copied into it.
	Matcher matcher.Config
	// TuneCache, when set, memoizes matcher fine-tuning across pipelines
	// keyed by (space, table content, matcher config) — see matcher.Cache.
	// Threshold sweeps over the same knowledge table then share one
	// fine-tuned matcher instead of re-expanding identical clusters. Results
	// are identical with or without the cache.
	TuneCache *matcher.Cache
	// ParseCache, when set, shares sentence analysis — POS tagging,
	// dependency parsing, noun-phrase extraction — across pipelines. The
	// analysis is a pure function of the sentence tokens, the tagger lexicon
	// and the chunking mode, all of which are part of the cache key, so one
	// cache may serve differently configured runs. Results are identical
	// with or without the cache; only the stage accounting shifts (a cache
	// hit records the lookup under phrase_extract and skips the pos_tag /
	// dep_parse observations).
	ParseCache *ParseCache
	// UseSemantic/UseJaccard/UseGestalt select the refinement scores that
	// participate in the combined score. All false means all three (the
	// paper's configuration). Used by the ablation benchmarks.
	UseSemantic, UseJaccard, UseGestalt bool
	// NaiveChunking replaces dependency-parse noun-phrase extraction with
	// sliding word n-grams (ablation).
	NaiveChunking bool
	// Lexicon optionally extends the POS tagger with domain words.
	Lexicon map[string]pos.Tag
	// Workers sets the number of documents processed concurrently. Zero or
	// one means sequential. Results are identical regardless of the worker
	// count: documents are merged back in input order.
	Workers int
	// Validator, when set, vetoes extracted entities before slot filling —
	// the knowledge-graph context filter of the paper's future work (see
	// the kg package). Must be safe for concurrent use when Workers > 1.
	Validator EntityValidator
	// Metrics, when set, receives per-stage latency histograms
	// ("thor.stage.<name>", see PipelineStages) and run counters
	// ("thor.docs", "thor.sentences", "thor.phrases", "thor.candidates",
	// "thor.entities", "thor.filled"). Nil disables metric reporting at
	// zero cost on the hot path (no allocations; guarded by
	// BenchmarkNilRegistryHotPath in the obs package). Instrumentation
	// never affects results: parallel runs stay identical to sequential
	// ones with or without a registry.
	Metrics *obs.Registry
	// Tracer, when set, records one span per Run ("run"), per document
	// ("doc", with a "doc" attribute) and per matcher fine-tune
	// ("finetune") into its ring buffer, plus runtime/trace regions when
	// an execution trace is active. Nil disables tracing.
	Tracer *obs.Tracer
}

// EntityValidator vetoes (phrase, concept) assignments; kg.Validator is the
// canonical implementation.
type EntityValidator interface {
	Validate(phrase string, concept schema.Concept) bool
}

func (c Config) minScore() float64 {
	if c.MinScore == 0 {
		return 0.30
	}
	return c.MinScore
}

// scoreWeights resolves the ablation flags: which of the three scores are
// averaged.
func (c Config) scoreWeights() (sem, jac, ges bool) {
	if !c.UseSemantic && !c.UseJaccard && !c.UseGestalt {
		return true, true, true
	}
	return c.UseSemantic, c.UseJaccard, c.UseGestalt
}

// Stats reports what a run did.
type Stats struct {
	Documents  int
	Sentences  int
	Phrases    int
	Candidates int
	Entities   int
	Filled     int
	// PrepTime and ExtractTime split the wall clock between phase ① and
	// phases ②–③.
	PrepTime    time.Duration
	ExtractTime time.Duration
	// Stages breaks the run down per pipeline stage, in PipelineStages
	// order (every stage is present, even with zero calls). Calls counts
	// are deterministic across worker counts; Total durations are wall
	// clock.
	Stages []StageStat
}

// Total returns the combined wall-clock duration.
func (s Stats) Total() time.Duration { return s.PrepTime + s.ExtractTime }

// Result is the output of a pipeline run.
type Result struct {
	// Table is the enriched copy of the input table (the input is not
	// modified).
	Table *schema.Table
	// Entities holds every refined entity, grouped by subject instance
	// (the map E[c*] of Algorithm 1).
	Entities map[string][]Entity
	// Stats summarizes the run.
	Stats Stats
}

// AllEntities flattens the per-subject entity map in deterministic order
// (subjects sorted, entities in extraction order).
func (r *Result) AllEntities() []Entity {
	subjects := make([]string, 0, len(r.Entities))
	for s := range r.Entities {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)
	var out []Entity
	for _, s := range subjects {
		out = append(out, r.Entities[s]...)
	}
	return out
}

// Pipeline is a reusable THOR instance: fine-tuned once (phase ①b), then run
// over any number of documents.
type Pipeline struct {
	cfg     Config
	table   *schema.Table
	space   *embed.Space
	match   *matcher.Matcher
	tagger  *pos.Tagger
	seg     *segment.Segmenter
	prepDur time.Duration
	tuneDur time.Duration
	ins     instruments
	// refine memoizes the three syntactic-refinement similarities per
	// (phrase, matched seed) pair. The same pairs recur across sentences and
	// documents, and all three scores are pure functions of the pair, so the
	// read-mostly map turns the refinement stage into a lookup.
	refine *cow.Map[[2]string, [3]float64]
	// parse is the optional shared sentence-analysis cache (cfg.ParseCache)
	// and parseFP the pipeline's analysis-configuration fingerprint.
	parse   *ParseCache
	parseFP uint64
}

// New prepares a pipeline for the given integrated table: it fine-tunes the
// semantic matcher from the table's schema and instances (Algorithm 1 line
// 2) and builds the document segmenter over the subject instances.
func New(table *schema.Table, space *embed.Space, cfg Config) (*Pipeline, error) {
	if table == nil {
		return nil, fmt.Errorf("thor: nil table")
	}
	if space == nil {
		return nil, fmt.Errorf("thor: nil embedding space")
	}
	if cfg.Tau < 0 || cfg.Tau > 1 {
		return nil, fmt.Errorf("thor: tau %v outside [0,1]", cfg.Tau)
	}
	start := time.Now()
	knowledge := cfg.Knowledge
	if knowledge == nil {
		knowledge = table
	}
	mcfg := cfg.Matcher
	mcfg.Tau = cfg.Tau
	mcfg.IncludeSubject = true
	sp := cfg.Tracer.StartSpan("finetune")
	tuneStart := time.Now()
	var m *matcher.Matcher
	var err error
	if cfg.TuneCache != nil {
		m, err = cfg.TuneCache.FineTune(space, knowledge, mcfg)
	} else {
		m, err = matcher.FineTune(space, knowledge, mcfg)
	}
	tuneDur := time.Since(tuneStart)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("thor: fine-tune: %w", err)
	}
	tagger := pos.New()
	if cfg.Lexicon != nil {
		tagger.AddLexicon(cfg.Lexicon)
	}
	p := &Pipeline{
		cfg:     cfg,
		table:   table,
		space:   space,
		match:   m,
		tagger:  tagger,
		seg:     segment.New(table.Subjects()),
		prepDur: time.Since(start),
		tuneDur: tuneDur,
		ins:     newInstruments(cfg.Metrics),
		refine:  cow.New[[2]string, [3]float64](),
		parse:   cfg.ParseCache,
	}
	if p.parse != nil {
		p.parseFP = parseFingerprint(cfg.Lexicon, cfg.NaiveChunking)
	}
	// The fine-tune histogram observes once per pipeline; Run seeds its
	// Stats.Stages row from tuneDur instead of re-observing.
	p.ins.stageHist[idxFineTune].Observe(tuneDur)
	return p, nil
}

// docOutcome is one document's extraction output, merged in input order so
// parallel runs stay deterministic.
type docOutcome struct {
	sentences, phrases, candidates int
	entities                       []Entity
	stages                         stageAcc
}

// Run executes phases ①a, ② and ③ over the documents and returns the
// enriched table and extracted entities. With Config.Workers > 1, documents
// are processed concurrently and merged back in input order, so the result
// is identical to a sequential run. A panic while extracting a document
// (e.g. in a user-supplied Validator) is recovered and returned as an
// error rather than crashing the process.
func (p *Pipeline) Run(docs []segment.Document) (*Result, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("thor: no documents")
	}
	runSpan := p.cfg.Tracer.StartSpan("run")
	defer runSpan.End()
	start := time.Now()
	res := &Result{
		Table:    p.table.Clone(),
		Entities: make(map[string][]Entity),
	}
	res.Stats.Documents = len(docs)
	res.Stats.PrepTime = p.prepDur

	// ①a + ②: segmentation and entity extraction.
	outcomes := make([]*docOutcome, len(docs))
	errs := make([]error, len(docs))
	if w := p.cfg.Workers; w > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Each worker carries its own match context so Match's
				// scratch space is reused without contention.
				mctx := p.match.NewContext()
				for i := range jobs {
					outcomes[i], errs[i] = p.extractDocSafe(docs[i], mctx)
				}
			}()
		}
		for i := range docs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	} else {
		mctx := p.match.NewContext()
		for i := range docs {
			outcomes[i], errs[i] = p.extractDocSafe(docs[i], mctx)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Merge per-document outcomes in input order, deduplicating entities
	// per subject (the set semantics of E[c*] in Algorithm 1). The stage
	// breakdown starts from the one-off fine-tune cost (already observed
	// into the histogram by New).
	acc := stageAcc{}
	acc.observe(idxFineTune, p.tuneDur)
	for _, o := range outcomes {
		res.Stats.Sentences += o.sentences
		res.Stats.Phrases += o.phrases
		res.Stats.Candidates += o.candidates
		acc.merge(&o.stages)
		for _, e := range o.entities {
			if hasEntity(res.Entities[e.Subject], e) {
				continue
			}
			res.Entities[e.Subject] = append(res.Entities[e.Subject], e)
			res.Stats.Entities++
		}
	}

	// ③ Slot filling (Algorithm 1 lines 16–20).
	fillStart := time.Now()
	subjectConcept := p.table.Schema.Subject
	for subj, ents := range res.Entities {
		row := res.Table.Row(subj)
		if row == nil {
			continue
		}
		for _, e := range ents {
			// Mentions conceptualized as the subject concept are reported
			// as entities (the evaluation counts them) but do not fill
			// slots: the subject column is the key.
			if e.Concept == subjectConcept {
				continue
			}
			if row.Add(e.Concept, e.Phrase) {
				res.Stats.Filled++
			}
		}
	}
	acc.observe(idxFill, time.Since(fillStart))
	p.ins.stageHist[idxFill].Observe(time.Since(fillStart))

	res.Stats.ExtractTime = time.Since(start)
	res.Stats.Stages = acc.stats()
	// docs/sentences/phrases/candidates tick live in extractDoc; entities
	// and filled only exist after the merge and fill phases.
	p.ins.entities.Add(int64(res.Stats.Entities))
	p.ins.filled.Add(int64(res.Stats.Filled))
	return res, nil
}

// extractDocSafe runs extractDoc with panic recovery: a panicking stage or
// Validator surfaces as an error from Run instead of crashing the worker
// pool with a confusing goroutine stack.
func (p *Pipeline) extractDocSafe(doc segment.Document, mctx *matcher.MatchContext) (out *docOutcome, err error) {
	sp := p.cfg.Tracer.StartSpan("doc", obs.String("doc", doc.Name))
	defer sp.End()
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = fmt.Errorf("thor: document %q: extraction panicked: %v\n%s", doc.Name, r, debug.Stack())
		}
	}()
	return p.extractDoc(doc, mctx), nil
}

// extractDoc runs segmentation plus lines 6–15 of Algorithm 1 over one
// document.
func (p *Pipeline) extractDoc(doc segment.Document, mctx *matcher.MatchContext) *docOutcome {
	out := &docOutcome{}
	semW, jacW, gesW := p.cfg.scoreWeights()
	t0 := time.Now()
	assignments := p.seg.Segment(doc)
	p.observe(&out.stages, idxSegment, time.Since(t0))
	p.ins.docs.Add(1)
	p.ins.sentences.Add(int64(len(assignments)))
	for _, asg := range assignments {
		out.sentences++
		if asg.Subject == "" {
			continue
		}
		phrases := p.phrases(asg, &out.stages)
		out.phrases += len(phrases)
		p.ins.phrases.Add(int64(len(phrases)))
		for _, ph := range phrases {
			t0 = time.Now()
			cands := mctx.Match(ph)
			p.observe(&out.stages, idxMatch, time.Since(t0))
			out.candidates += len(cands)
			p.ins.candidates.Add(int64(len(cands)))
			t0 = time.Now()
			var best Entity
			found := false
			for _, c := range cands {
				e := Entity{
					Subject: asg.Subject,
					Doc:     doc.Name,
					Phrase:  c.Phrase,
					Concept: c.Concept,
					Matched: c.Matched,
				}
				e.ScoreS, e.ScoreW, e.ScoreC = p.refineScores(c.Phrase, c.Matched)
				e.Score = combine(e, semW, jacW, gesW)
				if !found || e.Score > best.Score {
					best, found = e, true
				}
			}
			refined := found && best.Score >= p.cfg.minScore() &&
				(p.cfg.Validator == nil || p.cfg.Validator.Validate(best.Phrase, best.Concept))
			p.observe(&out.stages, idxRefine, time.Since(t0))
			if refined {
				out.entities = append(out.entities, best)
			}
		}
	}
	return out
}

// refineScores returns the semantic, Jaccard and Gestalt similarities of a
// (phrase, matched seed) pair, memoized — all three are pure functions of
// the pair.
func (p *Pipeline) refineScores(phrase, matched string) (s, w, c float64) {
	key := [2]string{phrase, matched}
	if sc, ok := p.refine.Get(key); ok {
		return sc[0], sc[1], sc[2]
	}
	sc := [3]float64{
		p.match.Similarity(phrase, matched),
		strsim.Jaccard(phrase, matched),
		strsim.Gestalt(phrase, matched),
	}
	p.refine.Put(key, sc)
	return sc[0], sc[1], sc[2]
}

// observe records one stage call into the per-document accumulator and,
// when a registry is configured, into its latency histogram. With no
// registry the histogram pointer is nil and Observe is a guarded no-op, so
// the hot path pays nothing beyond the two time.Now calls that feed
// Stats.Stages.
func (p *Pipeline) observe(acc *stageAcc, i int, d time.Duration) {
	acc.observe(i, d)
	p.ins.stageHist[i].Observe(d)
}

// phrases produces the candidate noun phrases of a sentence, consulting the
// shared parse cache when one is configured. A hit books the lookup under
// the phrase-extract stage; a miss runs the full analysis (observing every
// stage as usual) and publishes the result.
func (p *Pipeline) phrases(asg segment.Assignment, acc *stageAcc) []phrase.Phrase {
	if p.parse == nil {
		return p.analyze(asg, acc)
	}
	t0 := time.Now()
	key := parseKey{cfg: p.parseFP, sent: sentenceKey(asg.Sentence)}
	if phs, ok := p.parse.m.Get(key); ok {
		p.observe(acc, idxPhraseExtract, time.Since(t0))
		return phs
	}
	phs := p.analyze(asg, acc)
	p.parse.m.Put(key, phs)
	return phs
}

// analyze produces the candidate noun phrases of a sentence, via the
// dependency parse (default) or naive n-gram chunking (ablation), recording
// the POS-tag, parse and extraction stage costs.
func (p *Pipeline) analyze(asg segment.Assignment, acc *stageAcc) []phrase.Phrase {
	if p.cfg.NaiveChunking {
		t0 := time.Now()
		out := naiveChunks(asg)
		p.observe(acc, idxPhraseExtract, time.Since(t0))
		return out
	}
	t0 := time.Now()
	tagged := p.tagger.Tag(asg.Sentence)
	p.observe(acc, idxPOSTag, time.Since(t0))
	t0 = time.Now()
	tree := dep.Parse(tagged)
	p.observe(acc, idxDepParse, time.Since(t0))
	t0 = time.Now()
	out := phrase.Extract(tree)
	p.observe(acc, idxPhraseExtract, time.Since(t0))
	return out
}

// naiveChunks emits every 1..3-word window of the sentence's words as a
// phrase, the strawman chunker for BenchmarkAblationChunking. Each window
// is copied so phrases never alias the sentence's backing array.
func naiveChunks(asg segment.Assignment) []phrase.Phrase {
	words := asg.Sentence.Words()
	var out []phrase.Phrase
	for n := 1; n <= 3; n++ {
		for i := 0; i+n <= len(words); i++ {
			w := make([]string, n)
			copy(w, words[i:i+n])
			out = append(out, phrase.Phrase{Words: w, HeadWord: w[n-1]})
		}
	}
	return out
}

func combine(e Entity, sem, jac, ges bool) float64 {
	sum, n := 0.0, 0
	if sem {
		sum += e.ScoreS
		n++
	}
	if jac {
		sum += e.ScoreW
		n++
	}
	if ges {
		sum += e.ScoreC
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func hasEntity(es []Entity, e Entity) bool {
	for _, x := range es {
		if x.Phrase == e.Phrase && x.Concept == e.Concept {
			return true
		}
	}
	return false
}

// Run is the one-shot convenience: prepare a pipeline and run it over the
// documents.
func Run(table *schema.Table, space *embed.Space, docs []segment.Document, cfg Config) (*Result, error) {
	p, err := New(table, space, cfg)
	if err != nil {
		return nil, err
	}
	return p.Run(docs)
}
