package thor

import (
	"context"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thor/internal/chaos"
	"thor/internal/cow"
	"thor/internal/dep"
	"thor/internal/embed"
	"thor/internal/matcher"
	"thor/internal/obs"
	"thor/internal/phrase"
	"thor/internal/pos"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/strsim"
)

// Entity is a conceptualized entity extracted from text: a phrase paired
// with a concept, attributed to a subject instance, with the refinement
// scores of Algorithm 1 lines 10–13.
type Entity struct {
	// Subject is the subject instance c* the entity relates to.
	Subject string
	// Doc names the document the entity was extracted from (provenance).
	Doc string
	// Phrase is e.p, the extracted (normalized) phrase.
	Phrase string
	// Concept is e.C, the assigned schema concept.
	Concept schema.Concept
	// Matched is c_m, the seed instance the matcher aligned the phrase to.
	Matched string
	// ScoreS, ScoreW and ScoreC are the semantic, word-level (Jaccard) and
	// character-level (Gestalt) similarities to Matched.
	ScoreS, ScoreW, ScoreC float64
	// Score is their combination (the average, by default).
	Score float64
}

// Config controls a pipeline run.
type Config struct {
	// Tau is the user threshold τ ∈ [0,1]; see Table V of the paper.
	Tau float64
	// Knowledge optionally supplies a different table for matcher
	// fine-tuning than the slot-filling target. This is the paper's
	// evaluation setting: the matcher learns from the full structured table
	// R while the cleared test table R_test' receives the slots. Nil means
	// fine-tune on the target table itself.
	Knowledge *schema.Table
	// MinScore discards refined entities whose combined score falls below
	// it. Zero means 0.30.
	MinScore float64
	// Matcher carries advanced matcher options; Tau is copied into it.
	Matcher matcher.Config
	// TuneCache, when set, memoizes matcher fine-tuning across pipelines
	// keyed by (space, table content, matcher config) — see matcher.Cache.
	// Threshold sweeps over the same knowledge table then share one
	// fine-tuned matcher instead of re-expanding identical clusters. Results
	// are identical with or without the cache.
	TuneCache *matcher.Cache
	// ParseCache, when set, shares sentence analysis — POS tagging,
	// dependency parsing, noun-phrase extraction — across pipelines. The
	// analysis is a pure function of the sentence tokens, the tagger lexicon
	// and the chunking mode, all of which are part of the cache key, so one
	// cache may serve differently configured runs. Results are identical
	// with or without the cache; only the stage accounting shifts (a cache
	// hit records the lookup under phrase_extract and skips the pos_tag /
	// dep_parse observations).
	ParseCache *ParseCache
	// UseSemantic/UseJaccard/UseGestalt select the refinement scores that
	// participate in the combined score. All false means all three (the
	// paper's configuration). Used by the ablation benchmarks.
	UseSemantic, UseJaccard, UseGestalt bool
	// NaiveChunking replaces dependency-parse noun-phrase extraction with
	// sliding word n-grams (ablation).
	NaiveChunking bool
	// Lexicon optionally extends the POS tagger with domain words.
	Lexicon map[string]pos.Tag
	// Workers sets the number of documents processed concurrently. Zero or
	// one means sequential. Results are identical regardless of the worker
	// count: documents are merged back in input order.
	Workers int
	// Validator, when set, vetoes extracted entities before slot filling —
	// the knowledge-graph context filter of the paper's future work (see
	// the kg package). Must be safe for concurrent use when Workers > 1.
	Validator EntityValidator
	// Metrics, when set, receives per-stage latency histograms
	// ("thor.stage.<name>", see PipelineStages), run counters
	// ("thor.docs", "thor.sentences", "thor.phrases", "thor.candidates",
	// "thor.entities", "thor.filled") and the per-concept sparsity
	// telemetry ("thor.sparsity.*": null density before/after fill, fill
	// rate, cells filled, assignment-score distributions, quarantine
	// fraction — see docs/OBSERVABILITY.md). Nil disables metric reporting at
	// zero cost on the hot path (no allocations; guarded by
	// BenchmarkNilRegistryHotPath in the obs package). Instrumentation
	// never affects results: parallel runs stay identical to sequential
	// ones with or without a registry.
	Metrics *obs.Registry
	// Tracer, when set, records one span per Run ("run"), per document
	// ("doc", with a "doc" attribute), per matcher fine-tune ("finetune")
	// and per quarantined document ("quarantine", with doc/stage/error
	// attributes) into its ring buffer, plus runtime/trace regions when an
	// execution trace is active. Nil disables tracing.
	Tracer *obs.Tracer
	// DocTimeout bounds the wall clock one document may spend in
	// extraction. A document that exceeds it is quarantined (checked
	// cooperatively at stage boundaries, so the bound is approximate by up
	// to one stage call). Zero means no per-document deadline.
	DocTimeout time.Duration
	// StageTimeout bounds the cumulative time any single stage may spend
	// on one document; exceeding it quarantines the document with the
	// offending stage named in the failure. Zero means no per-stage budget.
	StageTimeout time.Duration
	// MaxFailureFraction is the fraction of documents allowed to
	// quarantine before the run aborts with a *RunAbortedError (clamped to
	// [0,1]). Zero — the default — aborts on the first failure, preserving
	// the historic all-or-nothing contract; 1 never aborts. Even an
	// aborted run returns its partial Result alongside the error.
	MaxFailureFraction float64
	// Retry re-runs a document whose extraction failed transiently (an
	// error in whose chain some error declares `Transient() bool` true,
	// e.g. chaos.TransientError) with capped exponential backoff and full
	// jitter. The zero value disables retries. Panics are never retried.
	Retry chaos.Backoff
	// FaultHook, when set, is invoked once per document at the boundary of
	// every per-document stage (segment through refine) with the document
	// name and the stage about to run. A returned error — or a panic —
	// quarantines the document at that stage; chaos.Injector.Fault is the
	// canonical implementation. Must be safe for concurrent use when
	// Workers > 1. Nil costs nothing.
	FaultHook func(doc string, stage Stage) error
	// Explain, when set, makes the run fill slots through FillExplained:
	// Result.Assignments carries every filled cell with its Provenance
	// (source document, matched seed, similarity scores, τ at decision
	// time), and the registry — when one is configured — ticks one
	// "thor.fills_explained.<concept>" counter per explained fill. Off by
	// default; with Explain off the run's outputs are bit-identical to a
	// pre-explain pipeline.
	Explain bool
	// Logger, when set, receives structured run diagnostics — quarantines
	// (warn, with doc_id/stage/error), aborts and cancellations — with
	// correlation fields matching the serving layer's (see obs.LogDocID).
	// Nil disables logging.
	Logger *slog.Logger
	// SkipFill, when set, skips phase ③ entirely: the run does not clone the
	// target table and Result.Table stays nil, Result.Assignments stays nil
	// (even under Explain) and Stats.Filled is 0. Callers that compute their
	// own fills from Result.Entities or Result.Docs — the serving layer uses
	// Assignments/AssignmentsExplained per request — opt out of the per-run
	// table copy this way. Everything up to and including the entity merge is
	// unaffected. Per-run sparsity telemetry is still published: the
	// after-fill null densities are derived from the would-be assignments
	// (computed read-only) instead of an enriched clone, with identical
	// values.
	SkipFill bool
	// CollectDocResults, when set, retains each completed document's
	// individual pre-merge outcome in Result.Docs: its extracted entities
	// in extraction order (before the per-subject set deduplication of the
	// merge), its sentence/phrase/candidate counts and its per-stage cost
	// breakdown. The serving layer uses this to demultiplex one batched
	// run into per-request results that are bit-identical to single-shot
	// runs (see MergeEntities and Fill). Off by default: retaining
	// per-document slices costs memory proportional to the batch.
	CollectDocResults bool
}

// EntityValidator vetoes (phrase, concept) assignments; kg.Validator is the
// canonical implementation.
type EntityValidator interface {
	// Validate reports whether the (phrase, concept) assignment is
	// admissible.
	Validate(phrase string, concept schema.Concept) bool
}

func (c Config) minScore() float64 {
	if c.MinScore == 0 {
		return 0.30
	}
	return c.MinScore
}

// scoreWeights resolves the ablation flags: which of the three scores are
// averaged.
func (c Config) scoreWeights() (sem, jac, ges bool) {
	if !c.UseSemantic && !c.UseJaccard && !c.UseGestalt {
		return true, true, true
	}
	return c.UseSemantic, c.UseJaccard, c.UseGestalt
}

// Stats reports what a run did.
type Stats struct {
	// Documents is the number of input documents.
	Documents int
	// Sentences is the number of segmented sentences.
	Sentences int
	// Phrases is the number of extracted noun phrases.
	Phrases int
	// Candidates is the number of semantic match candidates.
	Candidates int
	// Entities is the number of refined entities after deduplication.
	Entities int
	// Filled is the number of slots written into the table.
	Filled int
	// PrepTime and ExtractTime split the wall clock between phase ① and
	// phases ②–③.
	PrepTime, ExtractTime time.Duration
	// Stages breaks the run down per pipeline stage, in PipelineStages
	// order (every stage is present, even with zero calls). Calls counts
	// are deterministic across worker counts; Total durations are wall
	// clock.
	Stages []StageStat
	// Quarantined lists the documents whose extraction failed — error,
	// panic, per-document deadline or per-stage budget — in input order.
	// Their partial work is discarded entirely, so the merged result is
	// bit-identical to a run over the surviving documents alone.
	Quarantined []DocumentFailure
	// Skipped counts documents never extracted because the run was
	// cancelled or aborted before reaching them (or while they were
	// in flight).
	Skipped int
	// Retried counts extra extraction attempts consumed by transient
	// failures (Config.Retry).
	Retried int
	// CompletedDocs are the input indices of the documents whose outcomes
	// are merged into the result, in input order. On a fully successful
	// run it is simply [0..Documents).
	CompletedDocs []int
	// Cancelled reports that the caller's context ended before the run
	// completed.
	Cancelled bool
}

// Total returns the combined wall-clock duration.
func (s Stats) Total() time.Duration { return s.PrepTime + s.ExtractTime }

// Result is the output of a pipeline run.
type Result struct {
	// Table is the enriched copy of the input table (the input is not
	// modified).
	Table *schema.Table
	// Entities holds every refined entity, grouped by subject instance
	// (the map E[c*] of Algorithm 1).
	Entities map[string][]Entity
	// Docs holds each completed document's individual outcome, in input
	// order. Populated only under Config.CollectDocResults; nil otherwise.
	Docs []DocResult
	// Assignments lists every slot the run filled, each with its
	// Provenance. Populated only under Config.Explain; nil otherwise.
	Assignments []Assignment
	// Stats summarizes the run.
	Stats Stats
}

// DocResult is one document's isolated extraction outcome, before the
// cross-document merge. Entities are in extraction order and not
// deduplicated against other documents, so any subset of documents can be
// re-merged with MergeEntities to reproduce exactly what a run over that
// subset alone would produce.
type DocResult struct {
	// Index is the document's position in the run's input slice.
	Index int
	// Name is the document's name.
	Name string
	// Sentences, Phrases and Candidates are the document's contribution to
	// the run counters of the same names.
	Sentences, Phrases, Candidates int
	// Entities are the document's refined entities in extraction order,
	// before per-subject set deduplication.
	Entities []Entity
	// Stages is the document's per-stage cost breakdown (the per-document
	// stages only: segment through refine; fine-tune and fill are
	// run-level).
	Stages []StageStat
}

// MergeEntities folds per-document entities into the per-subject entity map
// E[c*] of Algorithm 1, applying the same set semantics as a pipeline run:
// documents in input order, duplicate (phrase, concept) pairs per subject
// dropped. Merging the DocResults of any document subset yields exactly the
// Entities map a clean run over that subset produces.
func MergeEntities(docs []DocResult) map[string][]Entity {
	out := make(map[string][]Entity)
	for _, d := range docs {
		for _, e := range d.Entities {
			if hasEntity(out[e.Subject], e) {
				continue
			}
			out[e.Subject] = append(out[e.Subject], e)
		}
	}
	return out
}

// Assignment is one slot filled by phase ③: Value was added to the row of
// Subject under the Concept column. Provenance is attached only on the
// explain path (FillExplained / Config.Explain), so the default wire form is
// unchanged.
type Assignment struct {
	// Subject is the row's subject instance.
	Subject string `json:"subject"`
	// Concept is the column the value was written to.
	Concept schema.Concept `json:"concept"`
	// Value is the written cell value.
	Value string `json:"value"`
	// Provenance, when requested, explains where the value came from.
	Provenance *Provenance `json:"provenance,omitempty"`
}

// Fill applies phase ③ (Algorithm 1 lines 16–20) to the table in place:
// every entity fills its subject's row under its concept, except mentions
// conceptualized as the subject concept itself (the subject column is the
// key). The returned assignments list each cell actually added — values the
// row already held are skipped — with subjects in sorted order and each
// subject's entities in merge order, so the output is deterministic.
func Fill(table *schema.Table, entities map[string][]Entity) []Assignment {
	return fillInto(table, entities, 0, false)
}

// Assignments computes, without mutating or cloning the table, exactly the
// assignment sequence Fill would produce on a fresh copy: same cells, same
// values, same order. It is the read-only form the serving layer fills
// requests through — one shared immutable table, no per-request clone.
func Assignments(table *schema.Table, entities map[string][]Entity) []Assignment {
	return assignmentsFor(table, entities, 0, false)
}

// AssignmentsExplained is Assignments with per-cell Provenance attached,
// mirroring FillExplained the way Assignments mirrors Fill.
func AssignmentsExplained(table *schema.Table, entities map[string][]Entity, tau float64) []Assignment {
	return assignmentsFor(table, entities, tau, true)
}

// fillInto is the shared phase-③ core of Fill and FillExplained: the
// assignments are computed read-only first (the single source of truth the
// Assignments variants share), then applied to the table — so the mutating
// and read-only paths cannot drift apart.
func fillInto(table *schema.Table, entities map[string][]Entity, tau float64, explain bool) []Assignment {
	out := assignmentsFor(table, entities, tau, explain)
	for _, a := range out {
		table.Row(a.Subject).Add(a.Concept, a.Value)
	}
	return out
}

// fillDedupKey identifies a (concept, value) cell within one row,
// case-insensitively — the same identity Row.Add enforces.
type fillDedupKey struct {
	concept schema.Concept
	value   string // lowercased
}

// assignmentsFor walks subjects in sorted order and emits every cell a fill
// pass would add: entities whose concept is the subject concept are skipped
// (the subject column is the key), empty and already-present values are
// skipped, and repeats within one row — which a mutating fill would reject
// via the row's updated state — are rejected via a per-row dedup set, so the
// table itself is never touched.
func assignmentsFor(table *schema.Table, entities map[string][]Entity, tau float64, explain bool) []Assignment {
	subjects := make([]string, 0, len(entities))
	for s := range entities {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)
	subjectConcept := table.Schema.Subject
	var out []Assignment
	var added map[fillDedupKey]bool
	for _, subj := range subjects {
		row := table.Row(subj)
		if row == nil {
			continue
		}
		clear(added)
		for _, e := range entities[subj] {
			if e.Concept == subjectConcept {
				continue
			}
			if e.Phrase == "" || row.Has(e.Concept, e.Phrase) {
				continue
			}
			key := fillDedupKey{concept: e.Concept, value: strings.ToLower(e.Phrase)}
			if added[key] {
				continue
			}
			if added == nil {
				added = make(map[fillDedupKey]bool)
			}
			added[key] = true
			a := Assignment{Subject: row.Subject, Concept: e.Concept, Value: e.Phrase}
			if explain {
				a.Provenance = &Provenance{
					Doc:      e.Doc,
					Phrase:   e.Phrase,
					Matched:  e.Matched,
					Semantic: e.ScoreS,
					Jaccard:  e.ScoreW,
					Gestalt:  e.ScoreC,
					Score:    e.Score,
					Tau:      tau,
				}
			}
			out = append(out, a)
		}
	}
	return out
}

// AllEntities flattens the per-subject entity map in deterministic order
// (subjects sorted, entities in extraction order).
func (r *Result) AllEntities() []Entity {
	subjects := make([]string, 0, len(r.Entities))
	for s := range r.Entities {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)
	var out []Entity
	for _, s := range subjects {
		out = append(out, r.Entities[s]...)
	}
	return out
}

// Pipeline is a reusable THOR instance: fine-tuned once (phase ①b), then run
// over any number of documents.
type Pipeline struct {
	cfg     Config
	table   *schema.Table
	space   *embed.Space
	match   *matcher.Matcher
	tagger  *pos.Tagger
	seg     *segment.Segmenter
	prepDur time.Duration
	tuneDur time.Duration
	ins     instruments
	spars   sparsityInstruments
	// refine memoizes the three syntactic-refinement similarities per
	// (phrase, matched seed) pair. The same pairs recur across sentences and
	// documents, and all three scores are pure functions of the pair, so the
	// read-mostly map turns the refinement stage into a lookup.
	refine *cow.Map[[2]string, [3]float64]
	// parse is the optional shared sentence-analysis cache (cfg.ParseCache),
	// parseFP the pipeline's analysis-configuration fingerprint and docFP
	// its extension with the segmentation inputs, keying the doc-level tier.
	parse   *ParseCache
	parseFP uint64
	docFP   uint64
	// lastQuantFiltered/lastQuantPassed are this pipeline's cursors into the
	// process-wide int8 propose-tier counters, advanced by publishQuantStats
	// after every run.
	lastQuantFiltered atomic.Uint64
	lastQuantPassed   atomic.Uint64
}

// New prepares a pipeline for the given integrated table: it fine-tunes the
// semantic matcher from the table's schema and instances (Algorithm 1 line
// 2) and builds the document segmenter over the subject instances.
func New(table *schema.Table, space *embed.Space, cfg Config) (*Pipeline, error) {
	if table == nil {
		return nil, fmt.Errorf("thor: nil table")
	}
	if space == nil {
		return nil, fmt.Errorf("thor: nil embedding space")
	}
	if cfg.Tau < 0 || cfg.Tau > 1 {
		return nil, fmt.Errorf("thor: tau %v outside [0,1]", cfg.Tau)
	}
	start := time.Now()
	knowledge := cfg.Knowledge
	if knowledge == nil {
		knowledge = table
	}
	mcfg := cfg.Matcher
	mcfg.Tau = cfg.Tau
	mcfg.IncludeSubject = true
	sp := cfg.Tracer.StartSpan("finetune")
	tuneStart := time.Now()
	var m *matcher.Matcher
	var err error
	if cfg.TuneCache != nil {
		m, err = cfg.TuneCache.FineTune(space, knowledge, mcfg)
	} else {
		m, err = matcher.FineTune(space, knowledge, mcfg)
	}
	tuneDur := time.Since(tuneStart)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("thor: fine-tune: %w", err)
	}
	tagger := pos.New()
	if cfg.Lexicon != nil {
		tagger.AddLexicon(cfg.Lexicon)
	}
	p := &Pipeline{
		cfg:     cfg,
		table:   table,
		space:   space,
		match:   m,
		tagger:  tagger,
		seg:     segment.New(table.Subjects()),
		prepDur: time.Since(start),
		tuneDur: tuneDur,
		ins:     newInstruments(cfg.Metrics),
		spars:   newSparsityInstruments(cfg.Metrics, table),
		refine:  cow.New[[2]string, [3]float64](),
		parse:   cfg.ParseCache,
	}
	if p.parse != nil {
		p.parseFP = parseFingerprint(cfg.Lexicon, cfg.NaiveChunking)
		p.docFP = docFingerprint(p.parseFP, table.Subjects())
	}
	// Seed the quant cursors so the first run publishes only its own delta,
	// not the process history.
	qf, qp := embed.QuantCounters()
	p.lastQuantFiltered.Store(qf)
	p.lastQuantPassed.Store(qp)
	// The fine-tune histogram observes once per pipeline; Run seeds its
	// Stats.Stages row from tuneDur instead of re-observing.
	p.ins.stageHist[idxFineTune].Observe(tuneDur)
	return p, nil
}

// docOutcome is one document's extraction output, merged in input order so
// parallel runs stay deterministic.
type docOutcome struct {
	sentences, phrases, candidates int
	entities                       []Entity
	stages                         stageAcc
}

// Run executes phases ①a, ② and ③ over the documents with a background
// context; see RunContext for the full contract.
func (p *Pipeline) Run(docs []segment.Document) (*Result, error) {
	return p.RunContext(context.Background(), docs)
}

// failureAllowance is the number of quarantined documents the run tolerates
// before aborting: floor(MaxFailureFraction · n), clamped to [0, n].
func (p *Pipeline) failureAllowance(n int) int {
	frac := p.cfg.MaxFailureFraction
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return n
	}
	return int(frac * float64(n))
}

// RunOptions are per-run overrides of a pipeline's configuration, for
// callers that reuse one fine-tuned Pipeline across many runs with varying
// request-scoped parameters (the serving layer's batch loop). Every field's
// zero value means "use the pipeline Config's setting".
type RunOptions struct {
	// DocTimeout overrides Config.DocTimeout when positive.
	DocTimeout time.Duration
	// Logger overrides Config.Logger when non-nil (e.g. a batch-correlated
	// logger).
	Logger *slog.Logger
}

// RunContext executes phases ①a, ② and ③ over the documents and returns the
// enriched table and extracted entities. With Config.Workers > 1, documents
// are processed concurrently and merged back in input order, so the result
// is identical to a sequential run.
//
// Fault isolation: a document whose extraction errors, panics, or exceeds
// its deadline is quarantined — recorded in Result.Stats.Quarantined with
// its stage, error and (for panics) stack — while the remaining documents
// complete. When quarantines exceed Config.MaxFailureFraction the run stops
// early and returns a *RunAbortedError. When ctx ends mid-run, in-flight and
// unprocessed documents are skipped and the context's error is returned.
// In both cases — unlike the usual Go convention — the returned *Result is
// non-nil and valid: it merges every document that completed, bit-identical
// to a clean run over exactly those documents.
func (p *Pipeline) RunContext(ctx context.Context, docs []segment.Document) (*Result, error) {
	return p.RunContextOpts(ctx, docs, nil)
}

// RunContextOpts is RunContext with per-run overrides; a nil opts is
// equivalent to RunContext.
func (p *Pipeline) RunContextOpts(ctx context.Context, docs []segment.Document, opts *RunOptions) (*Result, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("thor: no documents")
	}
	docTimeout, logger := p.cfg.DocTimeout, p.cfg.Logger
	if opts != nil {
		if opts.DocTimeout > 0 {
			docTimeout = opts.DocTimeout
		}
		if opts.Logger != nil {
			logger = opts.Logger
		}
	}
	// The run span attaches under whatever SpanRefs the caller's context
	// carries (the serving layer's batch span, fanned out per request);
	// without refs it records flat, exactly as before request tracing.
	ctx, runSpan := p.cfg.Tracer.StartSpanCtx(ctx, "run")
	defer runSpan.End()
	start := time.Now()
	res := &Result{
		Entities: make(map[string][]Entity),
	}
	if !p.cfg.SkipFill {
		res.Table = p.table.Clone()
	}
	res.Stats.Documents = len(docs)
	res.Stats.PrepTime = p.prepDur

	// runCtx is cancelled by the caller's ctx or by the failure threshold
	// tripping; either way the workers drain their remaining jobs without
	// extracting them.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	allowance := p.failureAllowance(len(docs))
	var failed atomic.Int64
	noteFailure := func() {
		if failed.Add(1) > int64(allowance) {
			cancelRun()
		}
	}

	// ①a + ②: segmentation and entity extraction.
	outcomes := make([]*docOutcome, len(docs))
	errs := make([]error, len(docs))
	tries := make([]int, len(docs))
	if w := p.cfg.Workers; w > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Each worker carries its own pooled match context so Match's
				// scratch space is reused without contention — and across
				// runs, so the steady state allocates no scratch at all.
				mctx := p.match.AcquireContext()
				defer p.match.ReleaseContext(mctx)
				for i := range jobs {
					if runCtx.Err() != nil {
						continue // drain; the document stays unattempted
					}
					outcomes[i], tries[i], errs[i] = p.extractDocResilient(runCtx, docs[i], mctx, docTimeout)
					if errs[i] != nil && !isContextErr(errs[i]) {
						noteFailure()
					}
				}
			}()
		}
		for i := range docs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	} else {
		mctx := p.match.AcquireContext()
		for i := range docs {
			if runCtx.Err() != nil {
				break
			}
			outcomes[i], tries[i], errs[i] = p.extractDocResilient(runCtx, docs[i], mctx, docTimeout)
			if errs[i] != nil && !isContextErr(errs[i]) {
				noteFailure()
			}
		}
		p.match.ReleaseContext(mctx)
	}
	aborted := failed.Load() > int64(allowance)
	cancelled := ctx.Err() != nil

	// Merge per-document outcomes in input order, deduplicating entities
	// per subject (the set semantics of E[c*] in Algorithm 1). Failed
	// documents contribute nothing — their partial work is discarded — so
	// the merged result over the surviving subset is exactly what a clean
	// run over that subset produces. The stage breakdown starts from the
	// one-off fine-tune cost (already observed into the histogram by New).
	acc := stageAcc{}
	acc.observe(idxFineTune, p.tuneDur)
	for i, o := range outcomes {
		res.Stats.Retried += tries[i]
		if err := errs[i]; err != nil {
			if isContextErr(err) {
				res.Stats.Skipped++
				continue
			}
			f := failureOf(docs[i].Name, i, err)
			res.Stats.Quarantined = append(res.Stats.Quarantined, f)
			_, qs := p.cfg.Tracer.StartSpanCtx(ctx, "quarantine",
				obs.String("doc", f.Doc),
				obs.String("stage", string(f.Stage)),
				obs.String("error", f.Err))
			qs.End()
			if logger != nil {
				logger.Warn("document quarantined",
					obs.LogDocID, f.Doc,
					"stage", string(f.Stage),
					"error", f.Err)
			}
			continue
		}
		if o == nil { // never attempted: run ended first
			res.Stats.Skipped++
			continue
		}
		res.Stats.CompletedDocs = append(res.Stats.CompletedDocs, i)
		res.Stats.Sentences += o.sentences
		res.Stats.Phrases += o.phrases
		res.Stats.Candidates += o.candidates
		acc.merge(&o.stages)
		if p.cfg.CollectDocResults {
			res.Docs = append(res.Docs, DocResult{
				Index:      i,
				Name:       docs[i].Name,
				Sentences:  o.sentences,
				Phrases:    o.phrases,
				Candidates: o.candidates,
				Entities:   o.entities,
				Stages:     o.stages.stats(),
			})
		}
		for _, e := range o.entities {
			if hasEntity(res.Entities[e.Subject], e) {
				continue
			}
			res.Entities[e.Subject] = append(res.Entities[e.Subject], e)
			res.Stats.Entities++
			p.spars.observeScore(e)
		}
	}
	p.ins.quarantined.Add(int64(len(res.Stats.Quarantined)))
	p.ins.skipped.Add(int64(res.Stats.Skipped))
	p.ins.retried.Add(int64(res.Stats.Retried))

	// ③ Slot filling (Algorithm 1 lines 16–20). The explain path runs the
	// identical fill and additionally retains the per-cell provenance. Under
	// SkipFill no table is cloned or written; the would-be assignments are
	// still computed (read-only) when a registry wants the sparsity
	// telemetry, and they are identical to what a filling run would apply.
	fillStart := time.Now()
	var assignments []Assignment
	switch {
	case p.cfg.SkipFill:
		if p.cfg.Metrics != nil {
			assignments = Assignments(p.table, res.Entities)
		}
	case p.cfg.Explain:
		res.Assignments = FillExplained(res.Table, res.Entities, p.cfg.Tau)
		assignments = res.Assignments
		for _, a := range res.Assignments {
			p.cfg.Metrics.Counter("thor.fills_explained." + string(a.Concept)).Add(1)
		}
	default:
		assignments = Fill(res.Table, res.Entities)
	}
	if !p.cfg.SkipFill {
		res.Stats.Filled = len(assignments)
	}
	acc.observe(idxFill, time.Since(fillStart))
	p.ins.stageHist[idxFill].Observe(time.Since(fillStart))
	// Sparsity telemetry: the paper's headline effect — null density removed
	// per concept — published after every run. No-op without a registry.
	p.spars.recordRun(p.table, res.Table, assignments, &res.Stats)

	res.Stats.ExtractTime = time.Since(start)
	res.Stats.Stages = acc.stats()
	// Per-stage summary spans: one span per stage with calls, total
	// duration — children of the run span, fanned into each request trace
	// the context carries. Emitted only when the run is traced.
	if refs := obs.SpanRefs(ctx); len(refs) > 0 {
		for _, st := range res.Stats.Stages {
			if st.Calls == 0 {
				continue
			}
			p.cfg.Tracer.RecordSpan(refs, "stage."+string(st.Stage), start, st.Total,
				obs.String("calls", fmt.Sprint(st.Calls)))
		}
	}
	// docs/sentences/phrases/candidates tick live in extractDoc; entities
	// and filled only exist after the merge and fill phases.
	p.ins.entities.Add(int64(res.Stats.Entities))
	p.ins.filled.Add(int64(res.Stats.Filled))
	p.publishQuantStats()

	switch {
	case cancelled:
		res.Stats.Cancelled = true
		return res, fmt.Errorf("thor: run cancelled after %d of %d documents: %w",
			len(res.Stats.CompletedDocs), len(docs), ctx.Err())
	case aborted:
		return res, &RunAbortedError{
			Failures:           res.Stats.Quarantined,
			Documents:          len(docs),
			MaxFailureFraction: p.cfg.MaxFailureFraction,
		}
	}
	return res, nil
}

// extractDocResilient wraps one document's extraction in the configured
// retry policy: transient failures are re-attempted with capped, jittered
// backoff; panics and permanent errors surface immediately. retries is the
// number of extra attempts consumed.
func (p *Pipeline) extractDocResilient(ctx context.Context, doc segment.Document, mctx *matcher.MatchContext, docTimeout time.Duration) (out *docOutcome, retries int, err error) {
	err = chaos.Retry(ctx, p.cfg.Retry, doc.Name, func(attempt int) error {
		retries = attempt
		o, e := p.extractDocSafe(ctx, doc, mctx, docTimeout)
		out = o
		return e
	})
	if err != nil {
		out = nil
	}
	return out, retries, err
}

// docRun carries one extraction attempt's cancellation state: the run
// context, the document's own deadline, the last stage entered (so a panic
// is attributed to the stage it escaped from), and which stage-entry fault
// hooks have fired this attempt.
type docRun struct {
	ctx      context.Context
	doc      string
	deadline time.Time     // zero when no document timeout is in force
	timeout  time.Duration // the timeout behind deadline, for error messages
	stage    Stage         // last stage entered, for failure attribution
	hooked   [numStages]bool
}

// checkpoint marks entry into a stage: it records the stage for failure
// attribution, honors run-level cancellation and the document deadline, and
// fires the stage-entry fault hook (once per stage per attempt). With no
// deadline and no hook configured the cost is one atomic context check.
func (p *Pipeline) checkpoint(dr *docRun, idx int) error {
	dr.stage = PipelineStages[idx]
	if err := dr.ctx.Err(); err != nil {
		return err
	}
	if !dr.deadline.IsZero() && time.Now().After(dr.deadline) {
		return &docError{stage: dr.stage, cause: fmt.Errorf("document timeout %v exceeded", dr.timeout)}
	}
	if h := p.cfg.FaultHook; h != nil && !dr.hooked[idx] {
		dr.hooked[idx] = true
		if err := h(dr.doc, dr.stage); err != nil {
			return &docError{stage: dr.stage, cause: err}
		}
	}
	return nil
}

// observeChecked records one stage call and enforces the per-stage time
// budget: a stage whose cumulative time on this document exceeds
// Config.StageTimeout quarantines the document.
func (p *Pipeline) observeChecked(dr *docRun, acc *stageAcc, i int, d time.Duration) error {
	p.observe(acc, i, d)
	if st := p.cfg.StageTimeout; st > 0 && acc.total[i] > st {
		return &docError{stage: PipelineStages[i],
			cause: fmt.Errorf("stage budget %v exceeded (spent %v)", st, acc.total[i])}
	}
	return nil
}

// extractDocSafe runs one extraction attempt with panic recovery: a
// panicking stage, fault hook or Validator surfaces as a stage-attributed
// error carrying the goroutine stack, feeding the quarantine record instead
// of crashing the worker pool.
func (p *Pipeline) extractDocSafe(ctx context.Context, doc segment.Document, mctx *matcher.MatchContext, docTimeout time.Duration) (out *docOutcome, err error) {
	_, sp := p.cfg.Tracer.StartSpanCtx(ctx, "doc", obs.String("doc", doc.Name))
	defer sp.End()
	dr := &docRun{ctx: ctx, doc: doc.Name, stage: StageSegment, timeout: docTimeout}
	if docTimeout > 0 {
		dr.deadline = time.Now().Add(docTimeout)
	}
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = &docError{
				stage: dr.stage,
				cause: fmt.Errorf("extraction panicked: %v", r),
				stack: debug.Stack(),
			}
		}
	}()
	out, err = p.extractDoc(dr, doc, mctx)
	if err != nil {
		out = nil
	}
	return out, err
}

// analyzeDoc produces one document's sentence/subject assignments and, for
// every attributed sentence, its candidate noun phrases. With a ParseCache
// configured, whole-document results are memoized: a warm document costs one
// lookup (booked under the segment stage) and no per-sentence key building at
// all — the serving layer's warm fill path depends on this. A miss runs the
// full analysis (the sentence-level cache tier still applies) and publishes
// the completed entry; failed analyses publish nothing.
func (p *Pipeline) analyzeDoc(dr *docRun, doc segment.Document, acc *stageAcc) (docEntry, error) {
	if err := p.checkpoint(dr, idxSegment); err != nil {
		return docEntry{}, err
	}
	var key docKey
	t0 := time.Now()
	if p.parse != nil {
		key = docKey{cfg: p.docFP, subject: doc.DefaultSubject, text: doc.Text}
		if e, ok := p.parse.docs.Get(key); ok {
			if err := p.observeChecked(dr, acc, idxSegment, time.Since(t0)); err != nil {
				return docEntry{}, err
			}
			return *e, nil
		}
	}
	e := docEntry{assignments: p.seg.Segment(doc)}
	if err := p.observeChecked(dr, acc, idxSegment, time.Since(t0)); err != nil {
		return docEntry{}, err
	}
	e.phrases = make([][]phrase.Phrase, len(e.assignments))
	for i := range e.assignments {
		if e.assignments[i].Subject == "" {
			continue
		}
		phs, err := p.phrases(dr, e.assignments[i], acc)
		if err != nil {
			return docEntry{}, err
		}
		e.phrases[i] = phs
	}
	if p.parse != nil {
		p.parse.docs.Put(key, &e)
	}
	return e, nil
}

// extractDoc runs segmentation plus lines 6–15 of Algorithm 1 over one
// document, checking for cancellation, deadlines and injected faults at
// stage boundaries.
func (p *Pipeline) extractDoc(dr *docRun, doc segment.Document, mctx *matcher.MatchContext) (*docOutcome, error) {
	out := &docOutcome{}
	semW, jacW, gesW := p.cfg.scoreWeights()
	entry, err := p.analyzeDoc(dr, doc, &out.stages)
	if err != nil {
		return nil, err
	}
	p.ins.docs.Add(1)
	p.ins.sentences.Add(int64(len(entry.assignments)))
	for si, asg := range entry.assignments {
		out.sentences++
		if asg.Subject == "" {
			continue
		}
		phrases := entry.phrases[si]
		out.phrases += len(phrases)
		p.ins.phrases.Add(int64(len(phrases)))
		for _, ph := range phrases {
			if err := p.checkpoint(dr, idxMatch); err != nil {
				return nil, err
			}
			t0 := time.Now()
			// MatchBuf returns the context's scratch-backed candidates; they
			// are consumed (and their strings copied into the best Entity)
			// before the next call, so the hot loop allocates nothing for
			// rejected phrases.
			cands := mctx.MatchBuf(ph)
			if err := p.observeChecked(dr, &out.stages, idxMatch, time.Since(t0)); err != nil {
				return nil, err
			}
			out.candidates += len(cands)
			p.ins.candidates.Add(int64(len(cands)))
			if err := p.checkpoint(dr, idxRefine); err != nil {
				return nil, err
			}
			t0 = time.Now()
			var best Entity
			found := false
			for _, c := range cands {
				e := Entity{
					Subject: asg.Subject,
					Doc:     doc.Name,
					Phrase:  c.Phrase,
					Concept: c.Concept,
					Matched: c.Matched,
				}
				e.ScoreS, e.ScoreW, e.ScoreC = p.refineScores(c.Phrase, c.Matched)
				e.Score = combine(e, semW, jacW, gesW)
				if !found || e.Score > best.Score {
					best, found = e, true
				}
			}
			refined := found && best.Score >= p.cfg.minScore() &&
				(p.cfg.Validator == nil || p.cfg.Validator.Validate(best.Phrase, best.Concept))
			if err := p.observeChecked(dr, &out.stages, idxRefine, time.Since(t0)); err != nil {
				return nil, err
			}
			if refined {
				out.entities = append(out.entities, best)
			}
		}
	}
	return out, nil
}

// refineScores returns the semantic, Jaccard and Gestalt similarities of a
// (phrase, matched seed) pair, memoized — all three are pure functions of
// the pair.
func (p *Pipeline) refineScores(phrase, matched string) (s, w, c float64) {
	key := [2]string{phrase, matched}
	if sc, ok := p.refine.Get(key); ok {
		return sc[0], sc[1], sc[2]
	}
	sc := [3]float64{
		p.match.Similarity(phrase, matched),
		strsim.Jaccard(phrase, matched),
		strsim.Gestalt(phrase, matched),
	}
	p.refine.Put(key, sc)
	return sc[0], sc[1], sc[2]
}

// observe records one stage call into the per-document accumulator and,
// when a registry is configured, into its latency histogram. With no
// registry the histogram pointer is nil and Observe is a guarded no-op, so
// the hot path pays nothing beyond the two time.Now calls that feed
// Stats.Stages.
func (p *Pipeline) observe(acc *stageAcc, i int, d time.Duration) {
	acc.observe(i, d)
	p.ins.stageHist[i].Observe(d)
}

// publishQuantStats forwards the int8 propose tier's screening counters to
// the registry as deltas since this pipeline's previous publish. The source
// counters are process-wide (all matrices share them), so with several
// concurrently running pipelines the attribution is process-level rather
// than exact per-pipeline; totals remain correct. The pass-rate gauge
// reflects the latest delta: filtered/(filtered+passed) screened away.
func (p *Pipeline) publishQuantStats() {
	if p.ins.quantFiltered == nil {
		return
	}
	f, q := embed.QuantCounters()
	df := f - p.lastQuantFiltered.Swap(f)
	dp := q - p.lastQuantPassed.Swap(q)
	p.ins.quantFiltered.Add(int64(df))
	p.ins.quantPassed.Add(int64(dp))
	if df+dp > 0 {
		p.ins.quantPassRate.Set(float64(dp) / float64(df+dp))
	}
}

// phrases produces the candidate noun phrases of a sentence, consulting the
// shared parse cache when one is configured. A hit books the lookup under
// the phrase-extract stage; a miss runs the full analysis (observing every
// stage as usual) and publishes the result. Nothing is published for a
// failed analysis.
func (p *Pipeline) phrases(dr *docRun, asg segment.Assignment, acc *stageAcc) ([]phrase.Phrase, error) {
	if p.parse == nil {
		return p.analyze(dr, asg, acc)
	}
	if err := p.checkpoint(dr, idxPhraseExtract); err != nil {
		return nil, err
	}
	t0 := time.Now()
	key := parseKey{cfg: p.parseFP, sent: sentenceKey(asg.Sentence)}
	if phs, ok := p.parse.m.Get(key); ok {
		if err := p.observeChecked(dr, acc, idxPhraseExtract, time.Since(t0)); err != nil {
			return nil, err
		}
		return phs, nil
	}
	phs, err := p.analyze(dr, asg, acc)
	if err != nil {
		return nil, err
	}
	p.parse.m.Put(key, phs)
	return phs, nil
}

// analyze produces the candidate noun phrases of a sentence, via the
// dependency parse (default) or naive n-gram chunking (ablation), recording
// the POS-tag, parse and extraction stage costs.
func (p *Pipeline) analyze(dr *docRun, asg segment.Assignment, acc *stageAcc) ([]phrase.Phrase, error) {
	if p.cfg.NaiveChunking {
		if err := p.checkpoint(dr, idxPhraseExtract); err != nil {
			return nil, err
		}
		t0 := time.Now()
		out := naiveChunks(asg)
		if err := p.observeChecked(dr, acc, idxPhraseExtract, time.Since(t0)); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := p.checkpoint(dr, idxPOSTag); err != nil {
		return nil, err
	}
	t0 := time.Now()
	tagged := p.tagger.Tag(asg.Sentence)
	if err := p.observeChecked(dr, acc, idxPOSTag, time.Since(t0)); err != nil {
		return nil, err
	}
	if err := p.checkpoint(dr, idxDepParse); err != nil {
		return nil, err
	}
	t0 = time.Now()
	tree := dep.Parse(tagged)
	if err := p.observeChecked(dr, acc, idxDepParse, time.Since(t0)); err != nil {
		return nil, err
	}
	if err := p.checkpoint(dr, idxPhraseExtract); err != nil {
		return nil, err
	}
	t0 = time.Now()
	out := phrase.Extract(tree)
	if err := p.observeChecked(dr, acc, idxPhraseExtract, time.Since(t0)); err != nil {
		return nil, err
	}
	return out, nil
}

// naiveChunks emits every 1..3-word window of the sentence's words as a
// phrase, the strawman chunker for BenchmarkAblationChunking. Each window
// is copied so phrases never alias the sentence's backing array.
func naiveChunks(asg segment.Assignment) []phrase.Phrase {
	words := asg.Sentence.Words()
	var out []phrase.Phrase
	for n := 1; n <= 3; n++ {
		for i := 0; i+n <= len(words); i++ {
			w := make([]string, n)
			copy(w, words[i:i+n])
			out = append(out, phrase.Phrase{Words: w, HeadWord: w[n-1]})
		}
	}
	return out
}

func combine(e Entity, sem, jac, ges bool) float64 {
	sum, n := 0.0, 0
	if sem {
		sum += e.ScoreS
		n++
	}
	if jac {
		sum += e.ScoreW
		n++
	}
	if ges {
		sum += e.ScoreC
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func hasEntity(es []Entity, e Entity) bool {
	for _, x := range es {
		if x.Phrase == e.Phrase && x.Concept == e.Concept {
			return true
		}
	}
	return false
}

// Run is the one-shot convenience: prepare a pipeline and run it over the
// documents.
func Run(table *schema.Table, space *embed.Space, docs []segment.Document, cfg Config) (*Result, error) {
	p, err := New(table, space, cfg)
	if err != nil {
		return nil, err
	}
	return p.Run(docs)
}

// RunContext is Run with a caller-controlled context: cancellation or a
// deadline time-boxes the document phase and yields a valid partial Result
// (see Pipeline.RunContext). Fine-tuning in New is not cancellable; its
// cost is bounded by the knowledge table, not the documents.
func RunContext(ctx context.Context, table *schema.Table, space *embed.Space, docs []segment.Document, cfg Config) (*Result, error) {
	p, err := New(table, space, cfg)
	if err != nil {
		return nil, err
	}
	return p.RunContext(ctx, docs)
}
