package thor

import (
	"errors"
	"strings"
	"testing"

	"thor/internal/datagen"
	"thor/internal/obs"
	"thor/internal/schema"
)

// panicValidator panics on a chosen phrase — the regression harness for the
// worker-pool panic recovery.
type panicValidator struct{ on string }

func (v panicValidator) Validate(phrase string, _ schema.Concept) bool {
	if v.on == "" || strings.Contains(phrase, v.on) {
		panic("validator exploded on " + phrase)
	}
	return true
}

func TestRunRecoversValidatorPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		// MaxFailureFraction defaults to 0, so the single panicking document
		// trips the threshold and the run aborts — but unlike the historic
		// all-or-nothing contract, the panic is quarantined with its stage
		// and stack, and the partial result is still returned.
		cfg := Config{Tau: 0.6, Workers: workers, Validator: panicValidator{}}
		res, err := Run(fig1Table(), fig1Space(), fig1Docs(), cfg)
		if err == nil {
			t.Fatalf("Workers=%d: Run returned no error for a panicking validator (res=%+v)", workers, res)
		}
		if !strings.Contains(err.Error(), "extraction panicked") ||
			!strings.Contains(err.Error(), "validator exploded") {
			t.Fatalf("Workers=%d: error does not describe the panic: %v", workers, err)
		}
		var aborted *RunAbortedError
		if !errors.As(err, &aborted) {
			t.Fatalf("Workers=%d: error is %T, want *RunAbortedError", workers, err)
		}
		if res == nil {
			t.Fatalf("Workers=%d: aborted run returned no partial result", workers)
		}
		if len(res.Stats.Quarantined) != 1 {
			t.Fatalf("Workers=%d: quarantined = %+v, want exactly the panicking doc", workers, res.Stats.Quarantined)
		}
		f := res.Stats.Quarantined[0]
		if f.Doc != "sample" || f.Stage != StageRefine {
			t.Errorf("Workers=%d: failure attribution wrong: %+v", workers, f)
		}
		if !strings.Contains(f.Stack, "goroutine") {
			t.Errorf("Workers=%d: failure carries no panic stack", workers)
		}
	}
}

func TestStageStatsPopulated(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(128)
	res, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6, Metrics: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Stages) != len(PipelineStages) {
		t.Fatalf("got %d stage rows, want %d", len(res.Stats.Stages), len(PipelineStages))
	}
	byStage := map[Stage]StageStat{}
	for i, st := range res.Stats.Stages {
		if st.Stage != PipelineStages[i] {
			t.Fatalf("stage row %d = %q, want %q (pipeline order)", i, st.Stage, PipelineStages[i])
		}
		byStage[st.Stage] = st
	}
	for _, s := range []Stage{StageFineTune, StageSegment, StagePOSTag, StageDepParse, StagePhraseExtract, StageMatch, StageFill} {
		if byStage[s].Calls == 0 {
			t.Errorf("stage %q: 0 calls", s)
		}
	}
	if got := byStage[StageSegment].Calls; got != int64(res.Stats.Documents) {
		t.Errorf("segment calls = %d, want one per document (%d)", got, res.Stats.Documents)
	}
	if got := byStage[StageMatch].Calls; got != int64(res.Stats.Phrases) {
		t.Errorf("match calls = %d, want one per phrase (%d)", got, res.Stats.Phrases)
	}

	snap := reg.Snapshot()
	if snap.Counters["thor.docs"] != int64(res.Stats.Documents) {
		t.Errorf("thor.docs = %d, want %d", snap.Counters["thor.docs"], res.Stats.Documents)
	}
	if snap.Counters["thor.entities"] != int64(res.Stats.Entities) {
		t.Errorf("thor.entities = %d, want %d", snap.Counters["thor.entities"], res.Stats.Entities)
	}
	if h := snap.Histograms["thor.stage.match"]; h.Count != int64(res.Stats.Phrases) {
		t.Errorf("thor.stage.match histogram count = %d, want %d", h.Count, res.Stats.Phrases)
	}
	if h := snap.Histograms["thor.stage.finetune"]; h.Count != 1 {
		t.Errorf("thor.stage.finetune histogram count = %d, want 1", h.Count)
	}

	var runs, docs, tunes int
	for _, sp := range tr.Spans() {
		switch sp.Name {
		case "run":
			runs++
		case "doc":
			docs++
		case "finetune":
			tunes++
		}
	}
	if runs != 1 || tunes != 1 || docs != res.Stats.Documents {
		t.Errorf("spans: run=%d finetune=%d doc=%d, want 1/1/%d", runs, tunes, docs, res.Stats.Documents)
	}
}

// countersOf projects Stats onto its deterministic fields: everything except
// wall-clock durations.
func countersOf(s Stats) map[string]int64 {
	m := map[string]int64{
		"documents":  int64(s.Documents),
		"sentences":  int64(s.Sentences),
		"phrases":    int64(s.Phrases),
		"candidates": int64(s.Candidates),
		"entities":   int64(s.Entities),
		"filled":     int64(s.Filled),
	}
	for _, st := range s.Stages {
		m["stage."+string(st.Stage)+".calls"] = st.Calls
	}
	return m
}

func TestStatsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the full Disease dataset")
	}
	ds := datagen.Disease(datagen.DiseaseSeed)
	run := func(workers int) *Result {
		res, err := Run(ds.TestTable(), ds.Space, ds.Test.Docs, Config{
			Tau:       0.7,
			Knowledge: ds.Table,
			Lexicon:   ds.Lexicon,
			Workers:   workers,
			Metrics:   obs.NewRegistry(),
			Tracer:    obs.NewTracer(0),
		})
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		return res
	}
	seq := run(1)
	par := run(8)

	cseq, cpar := countersOf(seq.Stats), countersOf(par.Stats)
	for k, v := range cseq {
		if cpar[k] != v {
			t.Errorf("stat %q differs: sequential %d, parallel %d", k, v, cpar[k])
		}
	}
	if len(cseq) != len(cpar) {
		t.Errorf("stat key sets differ: %d vs %d", len(cseq), len(cpar))
	}

	a, b := seq.AllEntities(), par.AllEntities()
	if len(a) != len(b) {
		t.Fatalf("entity counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entity %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if csvOf(t, seq.Table) != csvOf(t, par.Table) {
		t.Error("enriched tables differ between sequential and parallel runs")
	}
}

// TestSparsityTelemetry runs the Fig. 1 example with a registry and checks
// the thor.sparsity.* instruments report the run's actual fill effect.
func TestSparsityTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	tbl := fig1Table()
	res, err := Run(tbl, fig1Space(), fig1Docs(), Config{Tau: 0.6, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Filled == 0 {
		t.Fatal("fixture run filled nothing; sparsity telemetry untestable")
	}
	snap := reg.Snapshot()

	// Per-concept gauges exist for every non-subject concept, densities in
	// [0,1], and after <= before.
	var filledTotal int64
	for _, c := range tbl.Schema.NonSubject() {
		label := []string{"concept", string(c)}
		before, okB := snap.FloatGauges[obs.LabeledName("thor.sparsity.null_density_before", label...)]
		after, okA := snap.FloatGauges[obs.LabeledName("thor.sparsity.null_density_after", label...)]
		if !okB || !okA {
			t.Fatalf("concept %q: density gauges missing (have %v)", c, snap.FloatGauges)
		}
		if before < 0 || before > 1 || after < 0 || after > 1 || after > before {
			t.Errorf("concept %q: densities out of order: before=%v after=%v", c, before, after)
		}
		filledTotal += snap.Counters[obs.LabeledName("thor.sparsity.cells_filled", label...)]
	}
	if filledTotal != int64(res.Stats.Filled) {
		t.Errorf("cells_filled sum = %d, want Stats.Filled = %d", filledTotal, res.Stats.Filled)
	}

	// Fill rate reflects the run; quarantine fraction is 0 on a clean run.
	if rate := snap.FloatGauges["thor.sparsity.fill_rate"]; rate <= 0 {
		t.Errorf("fill_rate = %v, want > 0", rate)
	}
	qname := ""
	for name := range snap.FloatGauges {
		if strings.HasPrefix(name, "thor.sparsity.quarantine_fraction{table=") {
			qname = name
		}
	}
	if qname == "" {
		t.Fatalf("quarantine_fraction gauge missing: %v", snap.FloatGauges)
	}
	if v := snap.FloatGauges[qname]; v != 0 {
		t.Errorf("quarantine_fraction = %v, want 0 on a clean run", v)
	}

	// Assignment scores surfaced per concept, one observation per merged
	// entity of that concept.
	var scoreObs int64
	for name, d := range snap.Distributions {
		if strings.HasPrefix(name, "thor.sparsity.assignment_score{") {
			scoreObs += d.Count
			if d.Min < 0 || d.Max > 1 {
				t.Errorf("%s: scores outside [0,1]: %+v", name, d)
			}
		}
	}
	if scoreObs == 0 {
		t.Error("no assignment-score observations recorded")
	}
}

// TestSparsityNilRegistry guards the no-metrics path: a pipeline without a
// registry must produce identical results (the telemetry is observational
// only) and not allocate instruments.
func TestSparsityNilRegistry(t *testing.T) {
	with, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if csvOf(t, with.Table) != csvOf(t, without.Table) {
		t.Error("enriched tables differ with vs without a registry")
	}
	if with.Stats.Filled != without.Stats.Filled {
		t.Errorf("filled differs: %d vs %d", with.Stats.Filled, without.Stats.Filled)
	}
}

func csvOf(t *testing.T, tbl *schema.Table) string {
	t.Helper()
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
