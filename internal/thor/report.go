package thor

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the JSON-serializable summary of a pipeline run: the extracted
// entities with their provenance and refinement scores, plus the run
// statistics. The enriched table itself is serialized separately via
// schema.Table's writers.
type Report struct {
	// Entities in deterministic order (see Result.AllEntities).
	Entities []ReportEntity `json:"entities"`
	// Assignments are the filled slots, present only on explain runs
	// (Config.Explain), where each carries its Provenance.
	Assignments []Assignment `json:"assignments,omitempty"`
	// Stats summarizes the run.
	Stats ReportStats `json:"stats"`
}

// ReportEntity is the exported form of an Entity.
type ReportEntity struct {
	// Subject is the instance the entity was extracted for.
	Subject string `json:"subject"`
	// Concept is the assigned schema concept.
	Concept string `json:"concept"`
	// Phrase is the extracted (normalized) phrase.
	Phrase string `json:"phrase"`
	// Matched is the seed instance the matcher aligned the phrase to.
	Matched string `json:"matchedInstance"`
	// Doc names the source document.
	Doc string `json:"doc,omitempty"`
	// ScoreS, ScoreW and ScoreC are the semantic, word-level and
	// character-level similarities.
	ScoreS float64 `json:"scoreSemantic"`
	// ScoreW is the word-level (Jaccard) similarity.
	ScoreW float64 `json:"scoreWord"`
	// ScoreC is the character-level (gestalt) similarity.
	ScoreC float64 `json:"scoreChar"`
	// Score is the combined refinement score.
	Score float64 `json:"score"`
}

// ReportStats is the exported form of Stats (durations in seconds).
type ReportStats struct {
	// Documents is the number of input documents.
	Documents int `json:"documents"`
	// Sentences is the number of segmented sentences.
	Sentences int `json:"sentences"`
	// Phrases is the number of extracted noun phrases.
	Phrases int `json:"phrases"`
	// Candidates is the number of semantic match candidates.
	Candidates int `json:"candidates"`
	// Entities is the number of refined entities after deduplication.
	Entities int `json:"entities"`
	// Filled is the number of slots written into the table.
	Filled int `json:"slotsFilled"`
	// PrepSecs and ExtractSecs split the wall clock between phase ① and
	// phases ②–③.
	PrepSecs float64 `json:"prepSeconds"`
	// ExtractSecs is the extraction wall clock.
	ExtractSecs float64 `json:"extractSeconds"`
	// Stages is the per-stage cost breakdown.
	Stages []ReportStage `json:"stages,omitempty"`
	// Fault-isolation outcome: quarantined documents (with stage and
	// error), documents skipped by cancellation/abort, retry attempts
	// consumed, and whether the run was cancelled.
	Quarantined []DocumentFailure `json:"quarantined,omitempty"`
	// Skipped is the number of documents never attempted.
	Skipped int `json:"skipped,omitempty"`
	// Retried counts transient faults absorbed by retries.
	Retried int `json:"retried,omitempty"`
	// Cancelled reports whether the run was interrupted.
	Cancelled bool `json:"cancelled,omitempty"`
}

// ReportStage is the exported form of one StageStat row.
type ReportStage struct {
	// Stage names the pipeline stage.
	Stage string `json:"stage"`
	// Calls is the number of times the stage ran.
	Calls int64 `json:"calls"`
	// TotalSecs and MeanSecs are the summed and per-call durations.
	TotalSecs float64 `json:"totalSeconds"`
	// MeanSecs is TotalSecs / Calls.
	MeanSecs float64 `json:"meanSeconds"`
}

// Report builds the exportable summary of the result.
func (r *Result) Report() *Report {
	rep := &Report{
		Assignments: r.Assignments,
		Stats: ReportStats{
			Documents:   r.Stats.Documents,
			Sentences:   r.Stats.Sentences,
			Phrases:     r.Stats.Phrases,
			Candidates:  r.Stats.Candidates,
			Entities:    r.Stats.Entities,
			Filled:      r.Stats.Filled,
			PrepSecs:    r.Stats.PrepTime.Seconds(),
			ExtractSecs: r.Stats.ExtractTime.Seconds(),
			Quarantined: r.Stats.Quarantined,
			Skipped:     r.Stats.Skipped,
			Retried:     r.Stats.Retried,
			Cancelled:   r.Stats.Cancelled,
		},
	}
	for _, st := range r.Stats.Stages {
		rep.Stats.Stages = append(rep.Stats.Stages, ReportStage{
			Stage:     string(st.Stage),
			Calls:     st.Calls,
			TotalSecs: st.Total.Seconds(),
			MeanSecs:  st.Mean().Seconds(),
		})
	}
	for _, e := range r.AllEntities() {
		rep.Entities = append(rep.Entities, ReportEntity{
			Subject: e.Subject,
			Concept: string(e.Concept),
			Phrase:  e.Phrase,
			Matched: e.Matched,
			Doc:     e.Doc,
			ScoreS:  e.ScoreS,
			ScoreW:  e.ScoreW,
			ScoreC:  e.ScoreC,
			Score:   e.Score,
		})
	}
	return rep
}

// WriteReport serializes the run report as indented JSON.
func (r *Result) WriteReport(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Report()); err != nil {
		return fmt.Errorf("thor: write report: %w", err)
	}
	return nil
}
