package thor

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the JSON-serializable summary of a pipeline run: the extracted
// entities with their provenance and refinement scores, plus the run
// statistics. The enriched table itself is serialized separately via
// schema.Table's writers.
type Report struct {
	// Entities in deterministic order (see Result.AllEntities).
	Entities []ReportEntity `json:"entities"`
	// Stats summarizes the run.
	Stats ReportStats `json:"stats"`
}

// ReportEntity is the exported form of an Entity.
type ReportEntity struct {
	Subject string  `json:"subject"`
	Concept string  `json:"concept"`
	Phrase  string  `json:"phrase"`
	Matched string  `json:"matchedInstance"`
	Doc     string  `json:"doc,omitempty"`
	ScoreS  float64 `json:"scoreSemantic"`
	ScoreW  float64 `json:"scoreWord"`
	ScoreC  float64 `json:"scoreChar"`
	Score   float64 `json:"score"`
}

// ReportStats is the exported form of Stats (durations in seconds).
type ReportStats struct {
	Documents   int           `json:"documents"`
	Sentences   int           `json:"sentences"`
	Phrases     int           `json:"phrases"`
	Candidates  int           `json:"candidates"`
	Entities    int           `json:"entities"`
	Filled      int           `json:"slotsFilled"`
	PrepSecs    float64       `json:"prepSeconds"`
	ExtractSecs float64       `json:"extractSeconds"`
	Stages      []ReportStage `json:"stages,omitempty"`
	// Fault-isolation outcome: quarantined documents (with stage and
	// error), documents skipped by cancellation/abort, retry attempts
	// consumed, and whether the run was cancelled.
	Quarantined []DocumentFailure `json:"quarantined,omitempty"`
	Skipped     int               `json:"skipped,omitempty"`
	Retried     int               `json:"retried,omitempty"`
	Cancelled   bool              `json:"cancelled,omitempty"`
}

// ReportStage is the exported form of one StageStat row.
type ReportStage struct {
	Stage     string  `json:"stage"`
	Calls     int64   `json:"calls"`
	TotalSecs float64 `json:"totalSeconds"`
	MeanSecs  float64 `json:"meanSeconds"`
}

// Report builds the exportable summary of the result.
func (r *Result) Report() *Report {
	rep := &Report{
		Stats: ReportStats{
			Documents:   r.Stats.Documents,
			Sentences:   r.Stats.Sentences,
			Phrases:     r.Stats.Phrases,
			Candidates:  r.Stats.Candidates,
			Entities:    r.Stats.Entities,
			Filled:      r.Stats.Filled,
			PrepSecs:    r.Stats.PrepTime.Seconds(),
			ExtractSecs: r.Stats.ExtractTime.Seconds(),
			Quarantined: r.Stats.Quarantined,
			Skipped:     r.Stats.Skipped,
			Retried:     r.Stats.Retried,
			Cancelled:   r.Stats.Cancelled,
		},
	}
	for _, st := range r.Stats.Stages {
		rep.Stats.Stages = append(rep.Stats.Stages, ReportStage{
			Stage:     string(st.Stage),
			Calls:     st.Calls,
			TotalSecs: st.Total.Seconds(),
			MeanSecs:  st.Mean().Seconds(),
		})
	}
	for _, e := range r.AllEntities() {
		rep.Entities = append(rep.Entities, ReportEntity{
			Subject: e.Subject,
			Concept: string(e.Concept),
			Phrase:  e.Phrase,
			Matched: e.Matched,
			Doc:     e.Doc,
			ScoreS:  e.ScoreS,
			ScoreW:  e.ScoreW,
			ScoreC:  e.ScoreC,
			Score:   e.Score,
		})
	}
	return rep
}

// WriteReport serializes the run report as indented JSON.
func (r *Result) WriteReport(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Report()); err != nil {
		return fmt.Errorf("thor: write report: %w", err)
	}
	return nil
}
