package thor_test

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"thor/internal/embed"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/thor"
)

// exampleWorld builds the miniature Fig. 1 fixture the examples share: an
// integrated Disease table with a labeled null and an embedding space whose
// vectors cluster anatomy and complication words.
func exampleWorld() (*schema.Table, *embed.Space) {
	// The integrated table: Acoustic Neuroma has no known Complication (⊥).
	table := schema.NewTable(schema.NewSchema("Disease", "Anatomy", "Complication"))
	row := table.AddRow("Acoustic Neuroma")
	row.Add("Anatomy", "nervous system")
	table.AddRow("Tuberculosis").Add("Complication", "skin cancer")

	// A miniature embedding space; real deployments load one with
	// embed.ReadSpace or build it from their corpus.
	space := embed.NewSpace()
	anatomy := embed.HashVector("ex:anatomy")
	complication := embed.HashVector("ex:complication")
	add := func(c embed.Vector, alpha float64, noise string, words ...string) {
		for _, w := range words {
			for _, part := range strings.Fields(w) {
				key := noise
				if key == "" {
					key = "ex-noise:" + part
				}
				space.Add(part, embed.Blend(c, embed.HashVector(key), alpha))
			}
		}
	}
	add(anatomy, 0.58, "", "nervous system", "brain", "nerve", "ear", "lungs")
	add(complication, 0.85, "ex:cancer-family", "cancer", "cancerous", "non-cancerous", "tumor")
	return table, space
}

// ExampleRun reproduces the paper's Fig. 1 in miniature: an integrated table
// with a labeled null is enriched from external text.
func ExampleRun() {
	table, space := exampleWorld()
	doc := segment.Document{
		Name: "health-portal",
		Text: "An Acoustic Neuroma is a slow-growing non-cancerous brain tumor. " +
			"Tuberculosis generally damages the lungs.",
	}
	res, err := thor.Run(table, space, []segment.Document{doc}, thor.Config{Tau: 0.6})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("Acoustic Neuroma complication:",
		res.Table.Row("Acoustic Neuroma").Values("Complication")[0])
	fmt.Println("Tuberculosis anatomy:",
		res.Table.Row("Tuberculosis").Values("Anatomy")[0])
	// Output:
	// Acoustic Neuroma complication: non-cancerous brain tumor
	// Tuberculosis anatomy: lungs
}

// ExampleRunContext demonstrates the fault-isolated entry point: a document
// that fails is quarantined on its own while its batchmates complete, and
// the context bounds the whole run. FaultHook stands in for any per-document
// failure (a panic, a timeout, an injected chaos fault).
func ExampleRunContext() {
	table, space := exampleWorld()
	docs := []segment.Document{
		{Name: "health-portal", Text: "An Acoustic Neuroma is a slow-growing non-cancerous brain tumor."},
		{Name: "flaky-feed", Text: "Tuberculosis generally damages the lungs."},
	}
	cfg := thor.Config{
		Tau:                0.6,
		MaxFailureFraction: 1, // quarantine failures instead of aborting the run
		FaultHook: func(doc string, stage thor.Stage) error {
			if doc == "flaky-feed" && stage == thor.StageSegment {
				return errors.New("injected outage")
			}
			return nil
		},
	}
	res, err := thor.RunContext(context.Background(), table, space, docs, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, f := range res.Stats.Quarantined {
		fmt.Println("quarantined:", f.String())
	}
	fmt.Println("Acoustic Neuroma complication:",
		res.Table.Row("Acoustic Neuroma").Values("Complication")[0])
	// Output:
	// quarantined: doc "flaky-feed" (#1) stage segment: injected outage
	// Acoustic Neuroma complication: non-cancerous brain tumor
}
