package thor

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"thor/internal/chaos"
	"thor/internal/obs"
	"thor/internal/segment"
)

// failDocsHook returns a FaultHook that fails the named documents at the
// given stage with err, every attempt.
func failDocsHook(stage Stage, err error, names ...string) func(string, Stage) error {
	bad := map[string]bool{}
	for _, n := range names {
		bad[n] = true
	}
	return func(doc string, s Stage) error {
		if bad[doc] && s == stage {
			return err
		}
		return nil
	}
}

// TestQuarantineIsolatesHealthyDocs is the core fault-isolation invariant:
// quarantining some documents must not perturb the others — the faulted
// run's result is bit-identical to a clean run over the surviving subset.
func TestQuarantineIsolatesHealthyDocs(t *testing.T) {
	table, space := fig1Table(), fig1Space()
	docs := cancelDocs(8, 3)
	for _, workers := range []int{1, 4} {
		res, err := Run(table, space, docs, Config{
			Tau:                0.6,
			Workers:            workers,
			MaxFailureFraction: 1,
			FaultHook:          failDocsHook(StageMatch, errors.New("boom"), "doc-2", "doc-5"),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertWellFormedPartial(t, res, len(docs))
		if len(res.Stats.Quarantined) != 2 {
			t.Fatalf("workers=%d: quarantined %+v, want doc-2 and doc-5", workers, res.Stats.Quarantined)
		}
		for _, f := range res.Stats.Quarantined {
			if f.Doc != "doc-2" && f.Doc != "doc-5" {
				t.Errorf("workers=%d: wrong doc quarantined: %+v", workers, f)
			}
			if f.Stage != StageMatch || f.Err != "boom" {
				t.Errorf("workers=%d: failure attribution wrong: %+v", workers, f)
			}
		}
		var subset []segment.Document
		for _, i := range res.Stats.CompletedDocs {
			subset = append(subset, docs[i])
		}
		clean, err := Run(table, space, subset, Config{Tau: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		a, b := res.AllEntities(), clean.AllEntities()
		if len(a) != len(b) {
			t.Fatalf("workers=%d: %d entities with faults, %d clean", workers, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("workers=%d: entity %d differs: %+v vs %+v", workers, i, a[i], b[i])
			}
		}
		if csvOf(t, res.Table) != csvOf(t, clean.Table) {
			t.Errorf("workers=%d: tables differ between faulted and clean-subset runs", workers)
		}
		if res.Stats.Sentences != clean.Stats.Sentences || res.Stats.Filled != clean.Stats.Filled {
			t.Errorf("workers=%d: counters differ: %+v vs %+v", workers, res.Stats, clean.Stats)
		}
	}
}

func TestMaxFailureFractionAborts(t *testing.T) {
	docs := cancelDocs(4, 2)
	res, err := Run(fig1Table(), fig1Space(), docs, Config{
		Tau:                0.6,
		MaxFailureFraction: 0.25, // allowance = 1 of 4
		FaultHook:          failDocsHook(StageSegment, errors.New("dead"), "doc-0", "doc-1", "doc-2", "doc-3"),
	})
	if err == nil {
		t.Fatal("run above the failure threshold did not abort")
	}
	var aborted *RunAbortedError
	if !errors.As(err, &aborted) {
		t.Fatalf("error is %T (%v), want *RunAbortedError", err, err)
	}
	if len(aborted.Failures) < 2 || aborted.Documents != 4 {
		t.Errorf("composite error incomplete: %+v", aborted)
	}
	if !strings.Contains(err.Error(), "dead") || !strings.Contains(err.Error(), "aborted") {
		t.Errorf("composite error message uninformative: %v", err)
	}
	// Sequential run: doc-0 fails (1 <= allowance), doc-1 trips the
	// threshold, doc-2 and doc-3 are never attempted.
	assertWellFormedPartial(t, res, len(docs))
	if len(res.Stats.Quarantined) != 2 || res.Stats.Skipped != 2 {
		t.Errorf("quarantined=%d skipped=%d, want 2/2: %+v", len(res.Stats.Quarantined), res.Stats.Skipped, res.Stats)
	}
}

// flakyHook fails a document's segment stage with a transient error for the
// first failures attempts, then succeeds.
type flakyHook struct {
	mu       sync.Mutex
	failures int
	calls    int
}

func (h *flakyHook) hook(doc string, s Stage) error {
	if s != StageSegment || doc != "doc-1" {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.calls++
	if h.calls <= h.failures {
		return &chaos.TransientError{Err: fmt.Errorf("flaky attempt %d", h.calls)}
	}
	return nil
}

func TestTransientFailureRetriedToSuccess(t *testing.T) {
	h := &flakyHook{failures: 2}
	docs := cancelDocs(3, 2)
	res, err := Run(fig1Table(), fig1Space(), docs, Config{
		Tau:       0.6,
		FaultHook: h.hook,
		Retry:     chaos.Backoff{Attempts: 3, Base: time.Microsecond, Cap: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("transient failures within the retry budget must not surface: %v", err)
	}
	if len(res.Stats.Quarantined) != 0 || len(res.Stats.CompletedDocs) != len(docs) {
		t.Fatalf("doc not recovered: %+v", res.Stats)
	}
	if res.Stats.Retried != 2 {
		t.Errorf("Retried = %d, want 2", res.Stats.Retried)
	}
}

func TestTransientFailureBeyondBudgetQuarantines(t *testing.T) {
	h := &flakyHook{failures: 10}
	docs := cancelDocs(3, 2)
	res, err := Run(fig1Table(), fig1Space(), docs, Config{
		Tau:                0.6,
		MaxFailureFraction: 1,
		FaultHook:          h.hook,
		Retry:              chaos.Backoff{Attempts: 2, Base: time.Microsecond, Cap: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Quarantined) != 1 || res.Stats.Quarantined[0].Doc != "doc-1" {
		t.Fatalf("want doc-1 quarantined after retry budget: %+v", res.Stats)
	}
	if h.calls != 2 {
		t.Errorf("hook called %d times for doc-1/segment, want exactly the 2 budgeted attempts", h.calls)
	}
}

func TestPermanentFailureNotRetried(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	hook := func(doc string, s Stage) error {
		if doc == "doc-0" && s == StageSegment {
			mu.Lock()
			calls++
			mu.Unlock()
			return errors.New("permanent")
		}
		return nil
	}
	docs := cancelDocs(2, 2)
	res, err := Run(fig1Table(), fig1Space(), docs, Config{
		Tau:                0.6,
		MaxFailureFraction: 1,
		FaultHook:          hook,
		Retry:              chaos.Backoff{Attempts: 5, Base: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("permanent failure retried %d times", calls)
	}
	if len(res.Stats.Quarantined) != 1 || res.Stats.Retried != 0 {
		t.Errorf("stats wrong for permanent failure: %+v", res.Stats)
	}
}

func TestInjectedPanicQuarantinedWithStack(t *testing.T) {
	hook := func(doc string, s Stage) error {
		if doc == "doc-1" && s == StageDepParse {
			panic("chaos says hi")
		}
		return nil
	}
	docs := cancelDocs(3, 2)
	res, err := Run(fig1Table(), fig1Space(), docs, Config{
		Tau: 0.6, Workers: 2, MaxFailureFraction: 1, FaultHook: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Quarantined) != 1 {
		t.Fatalf("quarantined = %+v, want just doc-1", res.Stats.Quarantined)
	}
	f := res.Stats.Quarantined[0]
	if f.Doc != "doc-1" || f.Stage != StageDepParse {
		t.Errorf("panic attribution wrong: %+v", f)
	}
	if !strings.Contains(f.Err, "chaos says hi") || !strings.Contains(f.Stack, "goroutine") {
		t.Errorf("panic record incomplete: err=%q stack %d bytes", f.Err, len(f.Stack))
	}
}

func TestQuarantineSurfacesInMetricsAndSpans(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(256)
	h := &flakyHook{failures: 10}
	docs := cancelDocs(4, 2)
	res, err := Run(fig1Table(), fig1Space(), docs, Config{
		Tau:                0.6,
		MaxFailureFraction: 1,
		FaultHook:          h.hook,
		Retry:              chaos.Backoff{Attempts: 2, Base: time.Microsecond},
		Metrics:            reg,
		Tracer:             tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["thor.quarantined"]; got != int64(len(res.Stats.Quarantined)) {
		t.Errorf("thor.quarantined = %d, want %d", got, len(res.Stats.Quarantined))
	}
	if got := snap.Counters["thor.retries"]; got != int64(res.Stats.Retried) {
		t.Errorf("thor.retries = %d, want %d", got, res.Stats.Retried)
	}
	var quarantineSpans int
	for _, sp := range tr.Spans() {
		if sp.Name != "quarantine" {
			continue
		}
		quarantineSpans++
		attrs := map[string]string{}
		for _, a := range sp.Attrs {
			attrs[a.Key] = a.Value
		}
		if attrs["doc"] != "doc-1" || attrs["stage"] != string(StageSegment) || attrs["error"] == "" {
			t.Errorf("quarantine span attrs wrong: %+v", sp.Attrs)
		}
	}
	if quarantineSpans != len(res.Stats.Quarantined) {
		t.Errorf("quarantine spans = %d, want %d", quarantineSpans, len(res.Stats.Quarantined))
	}
}

// TestChaosInjectionEndToEnd drives the pipeline with the chaos injector on
// the fig1 workload under -race-friendly concurrency: every run completes,
// every quarantined document is reported, and healthy documents are
// bit-identical to a clean run over the surviving subset.
func TestChaosInjectionEndToEnd(t *testing.T) {
	table, space := fig1Table(), fig1Space()
	docs := cancelDocs(24, 3)
	for _, seed := range []uint64{1, 7, 42, 1337} {
		inj := chaos.New(chaos.Config{
			Seed:              seed,
			ErrorRate:         0.03,
			TransientFraction: 0.5,
			PanicRate:         0.02,
			LatencyRate:       0.05,
			MaxLatency:        200 * time.Microsecond,
		})
		res, err := Run(table, space, docs, Config{
			Tau:                0.6,
			Workers:            4,
			MaxFailureFraction: 1,
			Retry:              chaos.Backoff{Attempts: 2, Base: time.Microsecond, Cap: time.Millisecond, Seed: seed},
			FaultHook: func(doc string, stage Stage) error {
				return inj.Fault(doc, string(stage))
			},
		})
		if err != nil {
			t.Fatalf("seed %d: chaos run failed outright: %v", seed, err)
		}
		assertWellFormedPartial(t, res, len(docs))
		var subset []segment.Document
		for _, i := range res.Stats.CompletedDocs {
			subset = append(subset, docs[i])
		}
		if len(subset) == 0 {
			t.Fatalf("seed %d: chaos quarantined every document; rates too hot for the test", seed)
		}
		clean, err := Run(table, space, subset, Config{Tau: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		a, b := res.AllEntities(), clean.AllEntities()
		if len(a) != len(b) {
			t.Fatalf("seed %d: faulted %d entities vs clean subset %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("seed %d: entity %d differs: %+v vs %+v", seed, i, a[i], b[i])
			}
		}
		if csvOf(t, res.Table) != csvOf(t, clean.Table) {
			t.Errorf("seed %d: tables differ", seed)
		}
	}
}
