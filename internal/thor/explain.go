package thor

import "thor/internal/schema"

// Provenance is the audit trail of one filled cell: the evidence chain from
// source document through semantic match to the similarity decision that
// admitted the value, captured at fill time. Slot filling in integrated
// tables is only trustworthy when every imputed value can be traced back to
// its supporting text (see docs/OBSERVABILITY.md); Provenance is that trace.
type Provenance struct {
	// Doc names the source document the value was extracted from.
	Doc string `json:"doc"`
	// Phrase is the extracted phrase that became the cell value.
	Phrase string `json:"phrase"`
	// Matched is the seed instance the matcher aligned the phrase to.
	Matched string `json:"matched"`
	// Semantic, Jaccard and Gestalt are the three refinement similarities
	// between Phrase and Matched.
	Semantic float64 `json:"semantic"`
	// Jaccard is the word-level similarity.
	Jaccard float64 `json:"jaccard"`
	// Gestalt is the character-level similarity.
	Gestalt float64 `json:"gestalt"`
	// Score is the combined refinement score the admission decision used.
	Score float64 `json:"score"`
	// Tau is the similarity threshold τ in force when the value was
	// admitted.
	Tau float64 `json:"tau"`
}

// FillExplained is Fill with provenance: it applies phase ③ identically —
// the returned assignments' (Subject, Concept, Value) sequence is
// bit-identical to Fill's over the same inputs — and additionally attaches
// to each assignment the Provenance of the entity that produced it, stamped
// with the τ at decision time.
func FillExplained(table *schema.Table, entities map[string][]Entity, tau float64) []Assignment {
	return fillInto(table, entities, tau, true)
}
