package thor

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"thor/internal/embed"
	"thor/internal/matcher"
	"thor/internal/schema"
	"thor/internal/segment"
)

// fig1Space plants the running example's semantic geometry: anatomy words in
// a moderately tight cluster, and the cancer/tumor family sharing a noise
// direction so 'tumor' is (as in real embeddings) nearly synonymous with
// 'cancer'.
func fig1Space() *embed.Space {
	s := embed.NewSpace()
	anatomy := embed.HashVector("centroid:anatomy")
	complication := embed.HashVector("centroid:complication")
	add := func(centroid embed.Vector, alpha float64, noiseKey string, words ...string) {
		for _, w := range words {
			for _, part := range strings.Fields(w) {
				key := noiseKey
				if key == "" {
					key = "noise:" + part
				}
				s.Add(part, embed.Blend(centroid, embed.HashVector(key), alpha))
			}
		}
	}
	add(anatomy, 0.58, "", "nervous system", "brain", "nerve", "ear", "lungs", "spine")
	add(complication, 0.60, "", "unsteadiness", "empyema", "loss")
	add(complication, 0.85, "noise:cancer-family", "cancer", "cancerous", "non-cancerous", "tumor")
	s.Add("skin", embed.Blend(complication, embed.HashVector("noise:skin"), 0.55))
	return s
}

func fig1Table() *schema.Table {
	t := schema.NewTable(schema.NewSchema("Disease", "Anatomy", "Complication"))
	r := t.AddRow("Acoustic Neuroma")
	r.Add("Anatomy", "nervous system")
	t.AddRow("Tuberculosis").Add("Complication", "skin cancer")
	return t
}

func fig1Docs() []segment.Document {
	return []segment.Document{{
		Name: "sample",
		Text: "An Acoustic Neuroma is a slow-growing non-cancerous brain tumor. " +
			"It develops on the main nerve leading from the inner ear to the brain. " +
			"Tuberculosis generally damages the lungs.",
	}}
}

func TestPipelineFig1EndToEnd(t *testing.T) {
	res, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Sentences != 3 {
		t.Errorf("sentences = %d, want 3", res.Stats.Sentences)
	}
	// The labeled null for Acoustic Neuroma's Complication must be filled
	// from the conceptualized text (the paper's headline behavior).
	an := res.Table.Row("Acoustic Neuroma")
	if an.Missing("Complication") {
		t.Errorf("Complication slot not filled; entities: %+v", res.Entities["Acoustic Neuroma"])
	}
	// Additional Anatomy information should also be captured.
	foundAnatomy := false
	for _, e := range res.Entities["Acoustic Neuroma"] {
		if e.Concept == "Anatomy" {
			foundAnatomy = true
		}
	}
	if !foundAnatomy {
		t.Error("no Anatomy entity extracted for Acoustic Neuroma")
	}
	// Tuberculosis: 'lungs' is Anatomy.
	tb := res.Table.Row("Tuberculosis")
	if !tb.Has("Anatomy", "lungs") {
		t.Errorf("Tuberculosis Anatomy not filled: %+v", tb.Cells)
	}
	// The input table must not have been mutated.
	if fig1Table().Row("Acoustic Neuroma").Has("Complication", "non-cancerous brain tumor") {
		t.Error("input table mutated")
	}
}

func TestPipelineSyntacticRefinementPrefersComplication(t *testing.T) {
	// Section IV-B: for 'slow-growing non-cancerous brain tumor', syntactic
	// similarity to seed 'skin cancer' should make the Complication reading
	// win over the bare-'brain' Anatomy reading.
	res, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	var best *Entity
	for i, e := range res.Entities["Acoustic Neuroma"] {
		if strings.Contains(e.Phrase, "tumor") || strings.Contains(e.Phrase, "cancerous") {
			best = &res.Entities["Acoustic Neuroma"][i]
			break
		}
	}
	if best == nil {
		t.Fatalf("no tumor-phrase entity extracted: %+v", res.Entities["Acoustic Neuroma"])
	}
	if best.Concept != "Complication" {
		t.Errorf("tumor phrase conceptualized as %v, want Complication", best.Concept)
	}
	if best.Score <= 0 || best.Score > 1 {
		t.Errorf("combined score out of range: %v", best.Score)
	}
}

func TestPipelineTauPrecisionRecallTradeoff(t *testing.T) {
	loose, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Stats.Entities > loose.Stats.Entities {
		t.Errorf("strict τ produced more entities (%d) than loose (%d)",
			strict.Stats.Entities, loose.Stats.Entities)
	}
	if strict.Stats.Candidates > loose.Stats.Candidates {
		t.Errorf("strict τ produced more candidates (%d) than loose (%d)",
			strict.Stats.Candidates, loose.Stats.Candidates)
	}
}

func TestPipelineSubjectConceptNotFilled(t *testing.T) {
	res, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Table.Rows {
		if len(r.Cells[res.Table.Schema.Subject]) != 0 {
			t.Errorf("subject column was slot-filled for %q", r.Subject)
		}
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := Run(nil, fig1Space(), fig1Docs(), Config{Tau: 0.5}); err == nil {
		t.Error("nil table should error")
	}
	if _, err := Run(fig1Table(), nil, fig1Docs(), Config{Tau: 0.5}); err == nil {
		t.Error("nil space should error")
	}
	if _, err := Run(fig1Table(), fig1Space(), nil, Config{Tau: 0.5}); err == nil {
		t.Error("no documents should error")
	}
	if _, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: -0.1}); err == nil {
		t.Error("negative tau should error")
	}
}

func TestPipelineReusable(t *testing.T) {
	p, err := New(fig1Table(), fig1Space(), Config{Tau: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p.Run(fig1Docs())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Run(fig1Docs())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Entities != r2.Stats.Entities {
		t.Errorf("re-running the pipeline changed results: %d vs %d",
			r1.Stats.Entities, r2.Stats.Entities)
	}
}

func TestPipelineAblationFlags(t *testing.T) {
	semOnly, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6, UseSemantic: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// Semantic-only scores are the raw similarity; combined scores include
	// the (usually lower) syntactic components, so per-entity scores differ.
	if len(semOnly.AllEntities()) == 0 || len(full.AllEntities()) == 0 {
		t.Fatal("ablation runs extracted nothing")
	}
	naive, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6, NaiveChunking: true})
	if err != nil {
		t.Fatal(err)
	}
	if naive.Stats.Phrases <= full.Stats.Phrases {
		t.Errorf("naive chunking should inflate phrase count: %d vs %d",
			naive.Stats.Phrases, full.Stats.Phrases)
	}
}

func TestPipelineEntityDeduplication(t *testing.T) {
	docs := []segment.Document{{
		Name: "dup",
		Text: "Acoustic Neuroma affects the brain. Acoustic Neuroma affects the brain.",
	}}
	res, err := Run(fig1Table(), fig1Space(), docs, Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, e := range res.Entities["Acoustic Neuroma"] {
		seen[e.Phrase+"|"+string(e.Concept)]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("entity %s extracted %d times", k, n)
		}
	}
}

func TestAllEntitiesDeterministic(t *testing.T) {
	res, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	a := res.AllEntities()
	b := res.AllEntities()
	if len(a) != len(b) {
		t.Fatal("AllEntities unstable length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("AllEntities order unstable at %d", i)
		}
	}
}

func TestStatsTotal(t *testing.T) {
	res, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total() < res.Stats.ExtractTime {
		t.Error("Total < ExtractTime")
	}
}

func TestPipelineParallelMatchesSequential(t *testing.T) {
	table, space := fig1Table(), fig1Space()
	// Several documents so the worker pool actually interleaves.
	var docs []segment.Document
	for i := 0; i < 8; i++ {
		docs = append(docs, fig1Docs()[0])
		docs[i].Name = fmt.Sprintf("doc-%d", i)
	}
	seq, err := Run(table, space, docs, Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(table, space, docs, Config{Tau: 0.6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := seq.AllEntities(), par.AllEntities()
	if len(a) != len(b) {
		t.Fatalf("parallel run differs: %d vs %d entities", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("entity %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if seq.Stats.Entities != par.Stats.Entities || seq.Stats.Filled != par.Stats.Filled {
		t.Errorf("stats differ: %+v vs %+v", seq.Stats, par.Stats)
	}
}

// TestPipelineCachedPathsMatchUncached extends the parallel-determinism
// property to the cached fine-tune and parse paths: a τ sweep sharing one
// matcher cache and one parse cache — sequentially and under a parallel
// worker pool, with the caches warm and cold — must produce exactly the
// entities of an uncached sequential run at every threshold.
func TestPipelineCachedPathsMatchUncached(t *testing.T) {
	table, space := fig1Table(), fig1Space()
	var docs []segment.Document
	for i := 0; i < 8; i++ {
		docs = append(docs, fig1Docs()[0])
		docs[i].Name = fmt.Sprintf("doc-%d", i)
	}
	tune := matcher.NewCache()
	parse := NewParseCache()
	for _, tau := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		plain, err := Run(table, space, docs, Config{Tau: tau})
		if err != nil {
			t.Fatal(err)
		}
		want := plain.AllEntities()
		for _, workers := range []int{0, 4} {
			// Two rounds per configuration: the first may fill the shared
			// caches, the second always hits them.
			for round := 0; round < 2; round++ {
				res, err := Run(table, space, docs, Config{
					Tau:        tau,
					Workers:    workers,
					TuneCache:  tune,
					ParseCache: parse,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := res.AllEntities()
				if len(got) != len(want) {
					t.Fatalf("τ=%.1f workers=%d round=%d: %d entities, uncached %d",
						tau, workers, round, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("τ=%.1f workers=%d round=%d: entity %d differs: %+v vs %+v",
							tau, workers, round, i, got[i], want[i])
					}
				}
			}
		}
	}
	if parse.Len() == 0 {
		t.Error("parse cache never populated")
	}
}

func TestPipelineProvenance(t *testing.T) {
	res, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.AllEntities() {
		if e.Doc != "sample" {
			t.Errorf("entity %q lost provenance: doc=%q", e.Phrase, e.Doc)
		}
	}
}

func TestResultReport(t *testing.T) {
	res, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Entities) != res.Stats.Entities {
		t.Errorf("report entities = %d, stats say %d", len(rep.Entities), res.Stats.Entities)
	}
	if rep.Stats.Filled != res.Stats.Filled || rep.Stats.Documents != 1 {
		t.Errorf("report stats mismatch: %+v", rep.Stats)
	}
	for _, e := range rep.Entities {
		if e.Subject == "" || e.Concept == "" || e.Phrase == "" || e.Doc == "" {
			t.Errorf("incomplete report entity: %+v", e)
		}
		if e.Score < 0 || e.Score > 1 {
			t.Errorf("score out of range: %+v", e)
		}
	}
}

// vetoAll rejects everything; used to check validator plumbing.
type vetoAll struct{}

func (vetoAll) Validate(string, schema.Concept) bool { return false }

func TestPipelineValidatorVeto(t *testing.T) {
	res, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6, Validator: vetoAll{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Entities != 0 || res.Stats.Filled != 0 {
		t.Errorf("validator veto ignored: %+v", res.Stats)
	}
}
