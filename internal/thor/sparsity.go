package thor

import (
	"fmt"
	"strings"

	"thor/internal/obs"
	"thor/internal/schema"
)

// sparsityInstruments carries the thor.sparsity.* instruments — the paper's
// headline effect (how much null density THOR removes, per concept) as a
// scrapeable signal. Resolved once per pipeline at construction; every
// field is nil (a valid no-op instrument) when the pipeline runs without a
// registry, so the no-metrics hot path stays zero-cost.
type sparsityInstruments struct {
	concepts []schema.Concept
	// nullBefore/nullAfter are per-concept null-density gauges over the
	// most recent run's input and output tables, in [0,1].
	nullBefore []*obs.FloatGauge
	nullAfter  []*obs.FloatGauge
	// filled counts cells filled per concept, cumulatively across runs.
	filled []*obs.Counter
	// score is the per-concept distribution of merged assignment scores.
	score []*obs.Distribution
	// fillRate is filled cells / previously-null cells of the latest run,
	// across all concepts.
	fillRate *obs.FloatGauge
	// quarantineFrac is the latest run's quarantined-document fraction,
	// labeled with the target table's fingerprint so multi-table processes
	// (or re-pointed shards) keep their series distinct.
	quarantineFrac *obs.FloatGauge
}

// newSparsityInstruments resolves the per-concept sparsity series for the
// pipeline's target table. With a nil registry every instrument is nil and
// recording no-ops.
func newSparsityInstruments(reg *obs.Registry, table *schema.Table) sparsityInstruments {
	var si sparsityInstruments
	if reg == nil {
		return si
	}
	si.concepts = table.Schema.NonSubject()
	si.nullBefore = make([]*obs.FloatGauge, len(si.concepts))
	si.nullAfter = make([]*obs.FloatGauge, len(si.concepts))
	si.filled = make([]*obs.Counter, len(si.concepts))
	si.score = make([]*obs.Distribution, len(si.concepts))
	for i, c := range si.concepts {
		label := []string{"concept", string(c)}
		si.nullBefore[i] = reg.FloatGauge(obs.LabeledName("thor.sparsity.null_density_before", label...))
		si.nullAfter[i] = reg.FloatGauge(obs.LabeledName("thor.sparsity.null_density_after", label...))
		si.filled[i] = reg.Counter(obs.LabeledName("thor.sparsity.cells_filled", label...))
		si.score[i] = reg.Distribution(obs.LabeledName("thor.sparsity.assignment_score", label...))
	}
	si.fillRate = reg.FloatGauge("thor.sparsity.fill_rate")
	si.quarantineFrac = reg.FloatGauge(obs.LabeledName("thor.sparsity.quarantine_fraction",
		"table", fmt.Sprintf("%016x", table.Fingerprint())))
	return si
}

// conceptIndex maps a concept to its slot (-1 when the concept is not part
// of the pipeline's schema, e.g. the subject concept).
func (si *sparsityInstruments) conceptIndex(c schema.Concept) int {
	for i, k := range si.concepts {
		if k == c {
			return i
		}
	}
	return -1
}

// observeScore records one merged entity's combined assignment score under
// its concept. No-op without a registry.
func (si *sparsityInstruments) observeScore(e Entity) {
	if si.concepts == nil {
		return
	}
	if i := si.conceptIndex(e.Concept); i >= 0 {
		si.score[i].Observe(e.Score)
	}
}

// conceptDensity computes the per-concept null density of a table, indexed
// like concepts: nulls / rows per concept column.
func conceptDensity(t *schema.Table, concepts []schema.Concept) []float64 {
	out := make([]float64, len(concepts))
	if len(t.Rows) == 0 {
		return out
	}
	for i, c := range concepts {
		nulls := 0
		for _, r := range t.Rows {
			if r.Missing(c) {
				nulls++
			}
		}
		out[i] = float64(nulls) / float64(len(t.Rows))
	}
	return out
}

// derivedDensity computes the after-fill per-concept null densities a
// SkipFill run would have produced, without materializing the filled table:
// each distinct (subject, concept) pair among the assignments whose cell was
// null before turns exactly one null cell non-null (assignments are the
// cells a fill pass adds, so the first assignment to a null cell fills it).
func derivedDensity(before *schema.Table, concepts []schema.Concept, db []float64, assignments []Assignment) []float64 {
	da := make([]float64, len(db))
	if len(before.Rows) == 0 {
		return da
	}
	nulls := make([]int, len(concepts))
	for i, c := range concepts {
		for _, r := range before.Rows {
			if r.Missing(c) {
				nulls[i]++
			}
		}
	}
	type cell struct {
		subject string
		concept schema.Concept
	}
	filledCells := make(map[cell]bool)
	for _, a := range assignments {
		key := cell{subject: strings.ToLower(a.Subject), concept: a.Concept}
		if filledCells[key] {
			continue
		}
		filledCells[key] = true
		row := before.Row(a.Subject)
		if row == nil || !row.Missing(a.Concept) {
			continue
		}
		for i, c := range concepts {
			if c == a.Concept {
				nulls[i]--
				break
			}
		}
	}
	for i := range concepts {
		da[i] = float64(nulls[i]) / float64(len(before.Rows))
	}
	return da
}

// recordRun publishes the run's sparsity effect: per-concept null density
// of the input table versus the enriched output, per-concept filled-cell
// counts (from the run's actual assignments), the overall fill rate
// (filled / previously-null cells) and the quarantined-document fraction.
// before is the pipeline's (immutable) target table; after is the run's
// enriched clone, or nil under Config.SkipFill — then the after-densities
// are derived from before plus the (read-only) assignments, which is exact:
// a cell leaves null state iff some assignment wrote its first value. No-op
// without a registry.
func (si *sparsityInstruments) recordRun(before, after *schema.Table, assignments []Assignment, stats *Stats) {
	if si.concepts == nil {
		return
	}
	db := conceptDensity(before, si.concepts)
	var da []float64
	if after != nil {
		da = conceptDensity(after, si.concepts)
	} else {
		da = derivedDensity(before, si.concepts, db, assignments)
	}
	rows := float64(len(before.Rows))
	var nullsBefore float64
	for i := range si.concepts {
		si.nullBefore[i].Set(db[i])
		si.nullAfter[i].Set(da[i])
		nullsBefore += db[i] * rows
	}
	for _, a := range assignments {
		if i := si.conceptIndex(a.Concept); i >= 0 {
			si.filled[i].Add(1)
		}
	}
	if nullsBefore > 0 {
		si.fillRate.Set(float64(len(assignments)) / nullsBefore)
	} else {
		si.fillRate.Set(0)
	}
	if stats.Documents > 0 {
		si.quarantineFrac.Set(float64(len(stats.Quarantined)) / float64(stats.Documents))
	}
}
