package thor

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// DocumentFailure records one quarantined document: its identity, the
// pipeline stage that failed, the error, and — for recovered panics — the
// goroutine stack at the point of the panic. Quarantined documents
// contribute nothing to the result (no entities, no sentence/phrase counts),
// so healthy documents are unaffected by their neighbors' failures.
type DocumentFailure struct {
	// Doc is the document's name.
	Doc string `json:"doc"`
	// Index is the document's position in the input slice.
	Index int `json:"index"`
	// Stage names the pipeline stage active when the failure occurred
	// (empty when the failure could not be attributed to a stage).
	Stage Stage `json:"stage,omitempty"`
	// Err is the failure message.
	Err string `json:"error"`
	// Stack is the goroutine stack for recovered panics, empty otherwise.
	Stack string `json:"stack,omitempty"`
}

// String renders the failure on one line (the stack is omitted).
func (f DocumentFailure) String() string {
	stage := string(f.Stage)
	if stage == "" {
		stage = "?"
	}
	return fmt.Sprintf("doc %q (#%d) stage %s: %s", f.Doc, f.Index, stage, f.Err)
}

// RunAbortedError is returned by Run when quarantined documents exceed
// Config.MaxFailureFraction: the composite of every failure recorded before
// the abort. The accompanying *Result is still valid and partial — it merges
// every document that completed before the threshold tripped.
type RunAbortedError struct {
	// Failures are the quarantined documents, in input order.
	Failures []DocumentFailure
	// Documents is the size of the input document set.
	Documents int
	// MaxFailureFraction echoes the threshold that tripped.
	MaxFailureFraction float64
}

// Error summarizes the abort and the first few failures.
func (e *RunAbortedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "thor: run aborted: %d of %d documents failed (max failure fraction %.2f)",
		len(e.Failures), e.Documents, e.MaxFailureFraction)
	const show = 3
	for i, f := range e.Failures {
		if i == show {
			fmt.Fprintf(&b, "; and %d more", len(e.Failures)-show)
			break
		}
		fmt.Fprintf(&b, "; %s", f)
	}
	return b.String()
}

// docError tags a per-document failure with the stage it occurred in. The
// stack is non-empty only for recovered panics. It deliberately does not
// match the context sentinel errors: a document that blows its own deadline
// is quarantined, while a document interrupted by run-level cancellation is
// merely skipped.
type docError struct {
	stage Stage
	cause error
	stack []byte
}

func (e *docError) Error() string { return fmt.Sprintf("stage %s: %v", e.stage, e.cause) }

// Unwrap exposes the cause so errors.Is/As (and chaos.IsTransient) see
// through the stage attribution.
func (e *docError) Unwrap() error { return e.cause }

// failureOf converts an extraction error into its quarantine record.
func failureOf(doc string, index int, err error) DocumentFailure {
	f := DocumentFailure{Doc: doc, Index: index, Err: err.Error()}
	var de *docError
	if errors.As(err, &de) {
		f.Stage = de.stage
		f.Err = de.cause.Error()
		f.Stack = string(de.stack)
	}
	return f
}

// isContextErr reports whether err is run-level cancellation (the caller's
// context or the internal abort cancel), as opposed to a per-document fault.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
