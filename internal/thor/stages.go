package thor

import (
	"time"

	"thor/internal/obs"
)

// Stage names the instrumented phases of Algorithm 1. The values are the
// keys used for Result.Stats.Stages, for the obs.Registry histograms
// ("thor.stage.<name>") and for the per-experiment stage-cost tables.
type Stage string

// The instrumented stages, in pipeline order. See DESIGN.md for the mapping
// to Algorithm 1 line numbers.
const (
	// StageFineTune is phase ①b: matcher fine-tuning (Algorithm 1 line 2).
	StageFineTune Stage = "finetune"
	// StageSegment is phase ①a: sentence segmentation and subject
	// assignment (line 1).
	StageSegment Stage = "segment"
	// StagePOSTag is part-of-speech tagging, the input to the parse
	// (line 6).
	StagePOSTag Stage = "pos_tag"
	// StageDepParse is the dependency parse (line 6).
	StageDepParse Stage = "dep_parse"
	// StagePhraseExtract is noun-phrase extraction over the parse tree —
	// or naive n-gram chunking under Config.NaiveChunking (line 7).
	StagePhraseExtract Stage = "phrase_extract"
	// StageMatch is semantic subphrase matching (lines 8–9).
	StageMatch Stage = "match"
	// StageRefine is syntactic refinement: the word/char similarity
	// scores, score combination, best-entity selection and validation
	// (lines 10–15).
	StageRefine Stage = "refine"
	// StageFill is phase ③: slot filling (lines 16–20).
	StageFill Stage = "fill"
)

// PipelineStages lists every instrumented stage in pipeline order.
var PipelineStages = []Stage{
	StageFineTune, StageSegment, StagePOSTag, StageDepParse,
	StagePhraseExtract, StageMatch, StageRefine, StageFill,
}

// stage indices into the fixed accumulation arrays; must mirror
// PipelineStages.
const (
	idxFineTune = iota
	idxSegment
	idxPOSTag
	idxDepParse
	idxPhraseExtract
	idxMatch
	idxRefine
	idxFill
	numStages
)

// StageStat is one row of the per-stage latency breakdown in Result.Stats.
// Calls is deterministic (identical across worker counts); Total is wall
// clock and varies run to run like any timing.
type StageStat struct {
	// Stage names the pipeline stage.
	Stage Stage
	// Calls is the number of times the stage ran.
	Calls int64
	// Total is the summed duration across all calls.
	Total time.Duration
}

// Mean returns the average duration per call (0 when the stage never ran).
func (s StageStat) Mean() time.Duration {
	if s.Calls == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Calls)
}

// stageAcc accumulates per-stage call counts and durations. Each document
// worker keeps its own accumulator, merged single-threaded afterwards, so
// no synchronization is needed on the hot path.
type stageAcc struct {
	calls [numStages]int64
	total [numStages]time.Duration
}

func (a *stageAcc) observe(i int, d time.Duration) {
	a.calls[i]++
	a.total[i] += d
}

func (a *stageAcc) merge(b *stageAcc) {
	for i := 0; i < numStages; i++ {
		a.calls[i] += b.calls[i]
		a.total[i] += b.total[i]
	}
}

// stats converts the accumulator into the exported breakdown, in pipeline
// order, including stages with zero calls so the shape is stable.
func (a *stageAcc) stats() []StageStat {
	out := make([]StageStat, numStages)
	for i, name := range PipelineStages {
		out[i] = StageStat{Stage: name, Calls: a.calls[i], Total: a.total[i]}
	}
	return out
}

// instruments caches the registry-backed counters and histograms a pipeline
// reports into, resolved once at construction so the hot path performs no
// map lookups. All fields are nil (valid no-op instruments) when the
// pipeline runs without a registry.
type instruments struct {
	stageHist   [numStages]*obs.Histogram
	docs        *obs.Counter
	sentences   *obs.Counter
	phrases     *obs.Counter
	candidates  *obs.Counter
	entities    *obs.Counter
	filled      *obs.Counter
	quarantined *obs.Counter
	skipped     *obs.Counter
	retried     *obs.Counter
	// quantFiltered/quantPassed expose the int8 propose tier's screening
	// effect (rows skipped before any float64 work vs rows passed through to
	// exact verification); quantPassRate is the pass fraction of the most
	// recent delta. The underlying counters are process-wide (they live in
	// the embed package), published as deltas after each run.
	quantFiltered *obs.Counter
	quantPassed   *obs.Counter
	quantPassRate *obs.FloatGauge
}

func newInstruments(reg *obs.Registry) instruments {
	var ins instruments
	if reg == nil {
		return ins
	}
	for i, name := range PipelineStages {
		ins.stageHist[i] = reg.Histogram("thor.stage." + string(name))
	}
	ins.docs = reg.Counter("thor.docs")
	ins.sentences = reg.Counter("thor.sentences")
	ins.phrases = reg.Counter("thor.phrases")
	ins.candidates = reg.Counter("thor.candidates")
	ins.entities = reg.Counter("thor.entities")
	ins.filled = reg.Counter("thor.filled")
	// Fault-isolation counters: quarantined documents, documents skipped by
	// cancellation/abort, and extra attempts consumed by transient retries.
	// docs/sentences/phrases/candidates tick per extraction attempt, so a
	// retried document contributes to them more than once.
	ins.quarantined = reg.Counter("thor.quarantined")
	ins.skipped = reg.Counter("thor.skipped")
	ins.retried = reg.Counter("thor.retries")
	// Quantized-propose-tier telemetry; see Pipeline.publishQuantStats.
	ins.quantFiltered = reg.Counter("thor.match.quant_filtered")
	ins.quantPassed = reg.Counter("thor.match.quant_passed")
	ins.quantPassRate = reg.FloatGauge("thor.match.quant_pass_rate")
	return ins
}
