package thor

import (
	"strings"

	"thor/internal/cow"
	"thor/internal/phrase"
	"thor/internal/pos"
	"thor/internal/segment"
	"thor/internal/text"
)

// parseKey identifies one sentence analysis: a fingerprint of the analysis
// configuration (tagger lexicon, chunking mode) plus the sentence's token
// stream. Tagging, parsing and extraction are pure functions of the two.
type parseKey struct {
	cfg  uint64
	sent string
}

// docKey identifies one document analysis: a fingerprint covering everything
// document analysis depends on besides the document body — the segmenter's
// subject instances plus the sentence-analysis configuration — together with
// the document's default subject and its raw text. Segmentation and phrase
// extraction are pure functions of these inputs (the document's Name is
// provenance only).
type docKey struct {
	cfg     uint64
	subject string
	text    string
}

// docEntry is one cached document analysis: the sentence/subject assignments
// and, aligned with them, each sentence's extracted noun phrases (nil for
// sentences without an attributed subject, which are never analyzed). Both
// slices are immutable once stored.
type docEntry struct {
	assignments []segment.Assignment
	phrases     [][]phrase.Phrase
}

// ParseCache shares deterministic text-analysis results — POS tags,
// dependency parses and the extracted noun phrases — across pipeline runs.
// A threshold sweep re-reads the same documents once per τ, but the parses
// do not depend on τ at all; with a shared cache only the first run pays
// for them. Cached phrase slices are returned to every run: they are
// immutable by contract. Safe for concurrent use.
//
// The cache has two granularities. The sentence level (m) keys on the token
// stream and serves any pipeline whose analysis configuration matches, even
// across different tables. The document level (docs) additionally covers
// segmentation — keyed on the subject set, the default subject and the raw
// text — so a warm document skips straight from body to phrase lists with a
// single lookup and no per-sentence key building; the serving layer's warm
// fill path leans on this for its allocation budget.
type ParseCache struct {
	m    *cow.Map[parseKey, []phrase.Phrase]
	docs *cow.Map[docKey, *docEntry]
}

// NewParseCache returns an empty parse cache.
func NewParseCache() *ParseCache {
	return &ParseCache{
		m:    cow.New[parseKey, []phrase.Phrase](),
		docs: cow.New[docKey, *docEntry](),
	}
}

// Len returns the number of cached sentence analyses.
func (c *ParseCache) Len() int { return c.m.Len() }

// DocLen returns the number of cached whole-document analyses.
func (c *ParseCache) DocLen() int { return c.docs.Len() }

// docFingerprint extends a parse fingerprint with the segmentation inputs:
// the segmenter's subject instances, order-sensitively (Table.Subjects is
// row order, part of the segmenter's longest-mention tie-breaking inputs).
func docFingerprint(parseFP uint64, subjects []string) uint64 {
	const prime64 = 1099511628211
	h := parseFP
	for _, s := range subjects {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	return h ^ uint64(len(subjects))
}

// parseFingerprint content-hashes everything sentence analysis depends on
// besides the sentence itself: the tagger lexicon (order-independent XOR —
// map iteration order must not matter) and the chunking mode.
func parseFingerprint(lexicon map[string]pos.Tag, naiveChunking bool) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	if naiveChunking {
		h ^= 1
		h *= prime64
	}
	var lex uint64
	for w, t := range lexicon {
		eh := uint64(offset64)
		for i := 0; i < len(w); i++ {
			eh ^= uint64(w[i])
			eh *= prime64
		}
		eh ^= uint64(t) + 1
		eh *= prime64
		lex ^= eh
	}
	return h ^ lex ^ uint64(len(lexicon))
}

// sentenceKey serializes a sentence's token stream. Token texts determine
// kinds, tags and parses, so the key captures the full analysis input.
func sentenceKey(s text.Sentence) string {
	n := 0
	for i := range s.Tokens {
		n += len(s.Tokens[i].Text) + 1
	}
	var b strings.Builder
	b.Grow(n)
	for i := range s.Tokens {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(s.Tokens[i].Text)
	}
	return b.String()
}
