package thor

import (
	"strings"

	"thor/internal/cow"
	"thor/internal/phrase"
	"thor/internal/pos"
	"thor/internal/text"
)

// parseKey identifies one sentence analysis: a fingerprint of the analysis
// configuration (tagger lexicon, chunking mode) plus the sentence's token
// stream. Tagging, parsing and extraction are pure functions of the two.
type parseKey struct {
	cfg  uint64
	sent string
}

// ParseCache shares deterministic sentence-analysis results — POS tags,
// dependency parses and the extracted noun phrases — across pipeline runs.
// A threshold sweep re-reads the same documents once per τ, but the parses
// do not depend on τ at all; with a shared cache only the first run pays
// for them. Cached phrase slices are returned to every run: they are
// immutable by contract. Safe for concurrent use.
type ParseCache struct {
	m *cow.Map[parseKey, []phrase.Phrase]
}

// NewParseCache returns an empty parse cache.
func NewParseCache() *ParseCache {
	return &ParseCache{m: cow.New[parseKey, []phrase.Phrase]()}
}

// Len returns the number of cached sentence analyses.
func (c *ParseCache) Len() int { return c.m.Len() }

// parseFingerprint content-hashes everything sentence analysis depends on
// besides the sentence itself: the tagger lexicon (order-independent XOR —
// map iteration order must not matter) and the chunking mode.
func parseFingerprint(lexicon map[string]pos.Tag, naiveChunking bool) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	if naiveChunking {
		h ^= 1
		h *= prime64
	}
	var lex uint64
	for w, t := range lexicon {
		eh := uint64(offset64)
		for i := 0; i < len(w); i++ {
			eh ^= uint64(w[i])
			eh *= prime64
		}
		eh ^= uint64(t) + 1
		eh *= prime64
		lex ^= eh
	}
	return h ^ lex ^ uint64(len(lexicon))
}

// sentenceKey serializes a sentence's token stream. Token texts determine
// kinds, tags and parses, so the key captures the full analysis input.
func sentenceKey(s text.Sentence) string {
	n := 0
	for i := range s.Tokens {
		n += len(s.Tokens[i].Text) + 1
	}
	var b strings.Builder
	b.Grow(n)
	for i := range s.Tokens {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(s.Tokens[i].Text)
	}
	return b.String()
}
