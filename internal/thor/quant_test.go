package thor

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"

	"thor/internal/matcher"
	"thor/internal/obs"
	"thor/internal/phrase"
	"thor/internal/segment"
)

// TestPipelineQuantOnOffBitIdentical is the end-to-end form of the matcher's
// equivalence property: a full pipeline run with the int8 propose tier
// disabled must reproduce the default run exactly — entities, scores, table
// contents and assignment sequence.
func TestPipelineQuantOnOffBitIdentical(t *testing.T) {
	table, space := fig1Table(), fig1Space()
	docs := fig1Docs()
	for _, tau := range []float64{0.5, 0.6, 0.8, 1.0} {
		on, err := Run(table, space, docs, Config{Tau: tau, Explain: true})
		if err != nil {
			t.Fatal(err)
		}
		off, err := Run(table, space, docs, Config{
			Tau: tau, Explain: true,
			Matcher: matcher.Config{DisableQuant: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		a, b := on.AllEntities(), off.AllEntities()
		if len(a) != len(b) {
			t.Fatalf("τ=%.1f: quant-on %d entities, quant-off %d", tau, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("τ=%.1f: entity %d differs: %+v vs %+v", tau, i, a[i], b[i])
			}
		}
		if len(on.Assignments) != len(off.Assignments) {
			t.Fatalf("τ=%.1f: assignment counts differ: %d vs %d",
				tau, len(on.Assignments), len(off.Assignments))
		}
		for i := range on.Assignments {
			x, y := on.Assignments[i], off.Assignments[i]
			if x.Subject != y.Subject || x.Concept != y.Concept || x.Value != y.Value {
				t.Fatalf("τ=%.1f: assignment %d differs: %+v vs %+v", tau, i, x, y)
			}
		}
	}
}

// sampleEntities builds an entity map exercising every fill edge case: case
// variants of one value, the subject concept, unknown subjects, empty
// phrases and cross-concept repeats.
func sampleEntities() map[string][]Entity {
	return map[string][]Entity{
		"Acoustic Neuroma": {
			{Subject: "Acoustic Neuroma", Concept: "Complication", Phrase: "Tumor", Score: 0.9},
			{Subject: "Acoustic Neuroma", Concept: "Complication", Phrase: "tumor", Score: 0.8}, // case dup
			{Subject: "Acoustic Neuroma", Concept: "Anatomy", Phrase: "tumor", Score: 0.7},      // other concept
			{Subject: "Acoustic Neuroma", Concept: "Disease", Phrase: "acoustic neuroma", Score: 0.9}, // subject concept
			{Subject: "Acoustic Neuroma", Concept: "Anatomy", Phrase: "", Score: 0.9},           // empty value
			{Subject: "Acoustic Neuroma", Concept: "Anatomy", Phrase: "nervous system", Score: 0.9}, // already present
		},
		"Tuberculosis": {
			{Subject: "Tuberculosis", Concept: "Anatomy", Phrase: "lungs", Score: 0.6},
		},
		"No Such Row": {
			{Subject: "No Such Row", Concept: "Anatomy", Phrase: "spine", Score: 0.6},
		},
	}
}

// TestAssignmentsMatchFill pins the read-only fill contract: Assignments /
// AssignmentsExplained over an untouched table must return exactly what Fill
// / FillExplained return while mutating a clone — and must not change the
// table.
func TestAssignmentsMatchFill(t *testing.T) {
	table := fig1Table()
	entities := sampleEntities()
	before := table.Fingerprint()
	ro := Assignments(table, entities)
	roX := AssignmentsExplained(table, entities, 0.6)
	if table.Fingerprint() != before {
		t.Fatal("Assignments mutated the table")
	}
	clone := table.Clone()
	mut := Fill(clone, entities)
	if len(ro) != len(mut) {
		t.Fatalf("read-only %d assignments, Fill %d\nro: %+v\nfill: %+v", len(ro), len(mut), ro, mut)
	}
	for i := range ro {
		if ro[i] != mut[i] {
			t.Fatalf("assignment %d differs: read-only %+v, Fill %+v", i, ro[i], mut[i])
		}
	}
	cloneX := table.Clone()
	mutX := FillExplained(cloneX, entities, 0.6)
	if len(roX) != len(mutX) {
		t.Fatalf("explained: read-only %d assignments, FillExplained %d", len(roX), len(mutX))
	}
	for i := range roX {
		a, b := roX[i], mutX[i]
		if a.Subject != b.Subject || a.Concept != b.Concept || a.Value != b.Value {
			t.Fatalf("explained assignment %d differs: %+v vs %+v", i, a, b)
		}
		if a.Provenance == nil || b.Provenance == nil || *a.Provenance != *b.Provenance {
			t.Fatalf("explained assignment %d provenance differs: %+v vs %+v", i, a.Provenance, b.Provenance)
		}
	}
	// Spot-check the semantics themselves, not just the agreement.
	want := []Assignment{
		{Subject: "Acoustic Neuroma", Concept: "Complication", Value: "Tumor"},
		{Subject: "Acoustic Neuroma", Concept: "Anatomy", Value: "tumor"},
		{Subject: "Tuberculosis", Concept: "Anatomy", Value: "lungs"},
	}
	if len(ro) != len(want) {
		t.Fatalf("assignments = %+v, want %+v", ro, want)
	}
	for i := range want {
		if ro[i] != want[i] {
			t.Fatalf("assignment %d = %+v, want %+v", i, ro[i], want[i])
		}
	}
}

// TestSkipFillMatchesFullRun checks the SkipFill contract: the run stops
// after the entity merge (no table, no assignments, Filled 0), its entities
// are identical to a filling run's, the read-only Assignments over them
// reproduce the filling run's assignment sequence, and the sparsity gauges
// (derived without a filled table) match the filling run's exactly.
func TestSkipFillMatchesFullRun(t *testing.T) {
	table, space, docs := fig1Table(), fig1Space(), fig1Docs()
	fullReg, skipReg := obs.NewRegistry(), obs.NewRegistry()
	full, err := Run(table, space, docs, Config{Tau: 0.6, Metrics: fullReg})
	if err != nil {
		t.Fatal(err)
	}
	skip, err := Run(table, space, docs, Config{Tau: 0.6, SkipFill: true, Metrics: skipReg})
	if err != nil {
		t.Fatal(err)
	}
	if skip.Table != nil || skip.Assignments != nil || skip.Stats.Filled != 0 {
		t.Fatalf("SkipFill run still filled: table=%v assignments=%v filled=%d",
			skip.Table, skip.Assignments, skip.Stats.Filled)
	}
	a, b := full.AllEntities(), skip.AllEntities()
	if len(a) != len(b) {
		t.Fatalf("entities differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entity %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	ro := Assignments(table, skip.Entities)
	mut := Fill(table.Clone(), full.Entities)
	if len(ro) != len(mut) {
		t.Fatalf("assignments differ: %d vs %d", len(ro), len(mut))
	}
	for i := range ro {
		if ro[i] != mut[i] {
			t.Fatalf("assignment %d differs: %+v vs %+v", i, ro[i], mut[i])
		}
	}
	// The derived sparsity densities must equal the clone-based ones.
	for _, c := range table.Schema.NonSubject() {
		for _, name := range []string{"thor.sparsity.null_density_before", "thor.sparsity.null_density_after"} {
			n := obs.LabeledName(name, "concept", string(c))
			if got, want := skipReg.FloatGauge(n).Value(), fullReg.FloatGauge(n).Value(); got != want {
				t.Errorf("%s: SkipFill %v, full run %v", n, got, want)
			}
		}
	}
	if got, want := skipReg.FloatGauge("thor.sparsity.fill_rate").Value(),
		fullReg.FloatGauge("thor.sparsity.fill_rate").Value(); got != want {
		t.Errorf("fill_rate: SkipFill %v, full run %v", got, want)
	}
}

// TestQuantMetricsPublished checks the telemetry plumbing end to end: a run
// with the tier active ticks the thor.match.quant_* series, and disabling
// the tier stops them.
func TestQuantMetricsPublished(t *testing.T) {
	table, space, docs := fig1Table(), fig1Space(), fig1Docs()
	reg := obs.NewRegistry()
	if _, err := Run(table, space, docs, Config{Tau: 0.6, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	filtered := reg.Counter("thor.match.quant_filtered").Value()
	passed := reg.Counter("thor.match.quant_passed").Value()
	if filtered+passed == 0 {
		t.Fatal("quant counters never advanced on a quant-enabled run")
	}
	if rate := reg.FloatGauge("thor.match.quant_pass_rate").Value(); rate < 0 || rate > 1 {
		t.Fatalf("quant_pass_rate = %v, want within [0,1]", rate)
	}
	// A pipeline's counters publish per-run deltas: two runs over the same
	// pipeline must not double-count the first run's work.
	reg2 := obs.NewRegistry()
	p, err := New(table, space, Config{Tau: 0.6, Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(docs); err != nil {
		t.Fatal(err)
	}
	after1 := reg2.Counter("thor.match.quant_filtered").Value() + reg2.Counter("thor.match.quant_passed").Value()
	if _, err := p.Run(docs); err != nil {
		t.Fatal(err)
	}
	after2 := reg2.Counter("thor.match.quant_filtered").Value() + reg2.Counter("thor.match.quant_passed").Value()
	if after1 == 0 {
		t.Fatal("first run published nothing")
	}
	// The warm second run resolves through memos, so its delta must be far
	// smaller than a double-count of the first run's sweep work.
	if after2 >= 2*after1 {
		t.Fatalf("second run delta looks cumulative, not incremental: %d then %d", after1, after2)
	}
}

// TestRunOptionsOverrides checks RunContextOpts: a per-run DocTimeout and
// Logger take effect without touching the pipeline's configuration.
func TestRunOptionsOverrides(t *testing.T) {
	p, err := New(fig1Table(), fig1Space(), Config{Tau: 0.6, MaxFailureFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	res, err := p.RunContextOpts(context.Background(), fig1Docs(), &RunOptions{
		DocTimeout: time.Nanosecond,
		Logger:     logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Quarantined) != 1 {
		t.Fatalf("override DocTimeout did not quarantine: %+v", res.Stats)
	}
	if !strings.Contains(res.Stats.Quarantined[0].Err, "timeout") {
		t.Fatalf("failure does not name the timeout: %+v", res.Stats.Quarantined[0])
	}
	if !strings.Contains(buf.String(), "document quarantined") {
		t.Fatalf("override logger saw no quarantine log: %q", buf.String())
	}
	// The pipeline's own config is untouched: a plain run still succeeds.
	res, err = p.Run(fig1Docs())
	if err != nil || len(res.Stats.Quarantined) != 0 {
		t.Fatalf("plain run after override run failed: err=%v stats=%+v", err, res.Stats)
	}
}

// TestServeZeroAllocWarmExtract is the pipeline half of the serving
// allocation gate: once caches and memos are warm, extracting a repeated
// document must cost only a handful of allocations (the per-document outcome
// and its accepted entities), and the matcher's scratch-backed MatchBuf none
// at all. Regressions here surface as serving-path allocation growth long
// before they show in p99s.
func TestServeZeroAllocWarmExtract(t *testing.T) {
	table, space := fig1Table(), fig1Space()
	parse := NewParseCache()
	p, err := New(table, space, Config{Tau: 0.6, ParseCache: parse, SkipFill: true})
	if err != nil {
		t.Fatal(err)
	}
	doc := fig1Docs()[0]
	mctx := p.match.AcquireContext()
	defer p.match.ReleaseContext(mctx)
	dr := &docRun{ctx: context.Background(), doc: doc.Name, stage: StageSegment}
	warm, err := p.extractDoc(dr, doc, mctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.entities) == 0 {
		t.Fatal("warm-up extracted no entities — the gate would measure an empty path")
	}
	entityAllocs := len(warm.entities) // appends into out.entities grow from nil

	allocs := testing.AllocsPerRun(50, func() {
		out, err := p.extractDoc(dr, doc, mctx)
		if err != nil || len(out.entities) != len(warm.entities) {
			t.Fatalf("warm extract changed: err=%v entities=%d", err, len(out.entities))
		}
	})
	// Budget: the docOutcome itself, one slice growth chain for the accepted
	// entities, and nothing else — no per-sentence, per-phrase or per-match
	// allocations survive on the warm path.
	budget := float64(2 + 2*entityAllocs)
	if allocs > budget {
		t.Errorf("warm extractDoc allocates %.1f allocs/op, budget %.0f", allocs, budget)
	}

	// The matcher hot path proper: matching a warm phrase that produces no
	// candidates must be allocation-free.
	miss := phrase.Phrase{Words: []string{"slow-growing", "development"}}
	mctx.MatchBuf(miss)
	if got := testing.AllocsPerRun(100, func() { mctx.MatchBuf(miss) }); got != 0 {
		t.Errorf("warm rejecting MatchBuf allocates %.1f allocs/op, want 0", got)
	}
}

// TestDocCacheHitSkipsAnalysis pins the doc-level cache tier: a repeated
// document resolves without any per-sentence analysis stage calls, and its
// outcome is identical to the cold extraction.
func TestDocCacheHitSkipsAnalysis(t *testing.T) {
	parse := NewParseCache()
	p, err := New(fig1Table(), fig1Space(), Config{Tau: 0.6, ParseCache: parse})
	if err != nil {
		t.Fatal(err)
	}
	docs := fig1Docs()
	cold, err := p.Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	if parse.DocLen() == 0 {
		t.Fatal("doc-level cache never populated")
	}
	warmRun, err := p.Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := cold.AllEntities(), warmRun.AllEntities()
	if len(a) != len(b) {
		t.Fatalf("warm run differs: %d vs %d entities", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entity %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for _, st := range warmRun.Stats.Stages {
		switch st.Stage {
		case StagePOSTag, StageDepParse, StagePhraseExtract:
			if st.Calls != 0 {
				t.Errorf("warm run still ran %s %d times", st.Stage, st.Calls)
			}
		case StageSegment:
			if st.Calls != 1 {
				t.Errorf("warm run booked %d segment calls, want 1 (the doc lookup)", st.Calls)
			}
		}
	}
	// Different default subjects key different entries — the cache must not
	// conflate them.
	docOther := docs[0]
	docOther.DefaultSubject = "Tuberculosis"
	if _, err := p.Run([]segment.Document{docOther}); err != nil {
		t.Fatal(err)
	}
	if parse.DocLen() < 2 {
		t.Errorf("DocLen = %d, want entries per (subject, text) pair", parse.DocLen())
	}
}
