package thor

import (
	"reflect"
	"testing"

	"thor/internal/obs"
)

// TestFillExplainedBitIdentical pins the provenance contract at the fill
// layer: FillExplained writes exactly the cells Fill writes — same
// (Subject, Concept, Value) sequence, same resulting table — and attaches a
// complete provenance chain stamped with τ to every assignment.
func TestFillExplainedBitIdentical(t *testing.T) {
	res, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	plainTable, explTable := fig1Table(), fig1Table()
	plain := Fill(plainTable, res.Entities)
	explained := FillExplained(explTable, res.Entities, 0.6)
	if len(plain) == 0 {
		t.Fatal("fixture filled nothing; the test is vacuous")
	}
	if len(explained) != len(plain) {
		t.Fatalf("FillExplained wrote %d cells, Fill wrote %d", len(explained), len(plain))
	}
	for i, e := range explained {
		p := plain[i]
		if e.Subject != p.Subject || e.Concept != p.Concept || e.Value != p.Value {
			t.Errorf("assignment %d diverges: explained %+v vs plain %+v", i, e, p)
		}
		if e.Provenance == nil {
			t.Fatalf("assignment %d has no provenance", i)
		}
		if e.Provenance.Tau != 0.6 {
			t.Errorf("assignment %d tau %v, want 0.6", i, e.Provenance.Tau)
		}
		if e.Provenance.Doc == "" || e.Provenance.Phrase != e.Value {
			t.Errorf("assignment %d provenance %+v inconsistent with value %q", i, e.Provenance, e.Value)
		}
		if p.Provenance != nil {
			t.Errorf("plain assignment %d carries provenance", i)
		}
	}
	// The tables themselves must end up identical cell for cell.
	if plainTable.String() != explTable.String() {
		t.Fatalf("tables diverge\nplain:\n%s\nexplained:\n%s", plainTable, explTable)
	}
}

// TestRunExplainPopulatesAssignments checks Config.Explain threads provenance
// through a full pipeline run — Result.Assignments, the JSON report, and the
// per-concept fills_explained counters — without changing the filled table.
func TestRunExplainPopulatesAssignments(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6, Explain: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) == 0 {
		t.Fatal("explain run produced no assignments")
	}
	if res.Stats.Filled != len(res.Assignments) {
		t.Fatalf("Filled %d != %d assignments", res.Stats.Filled, len(res.Assignments))
	}
	for i, a := range res.Assignments {
		if a.Provenance == nil {
			t.Fatalf("assignment %d has no provenance", i)
		}
	}
	rep := res.Report()
	if !reflect.DeepEqual(rep.Assignments, res.Assignments) {
		t.Fatal("report does not carry the run's assignments")
	}
	var ticked int64
	for _, c := range fig1Table().Schema.NonSubject() {
		ticked += reg.Counter("thor.fills_explained." + string(c)).Value()
	}
	if ticked != int64(len(res.Assignments)) {
		t.Fatalf("fills_explained counters sum to %d, want %d", ticked, len(res.Assignments))
	}

	// Off by default: same run without Explain fills the same table and
	// carries no assignments.
	base, err := Run(fig1Table(), fig1Space(), fig1Docs(), Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if base.Assignments != nil {
		t.Fatal("non-explain run carries assignments")
	}
	if base.Table.String() != res.Table.String() {
		t.Fatalf("explain changed the filled table\nbase:\n%s\nexplain:\n%s", base.Table, res.Table)
	}
	if base.Stats.Filled != res.Stats.Filled {
		t.Fatalf("explain changed Filled: %d vs %d", base.Stats.Filled, res.Stats.Filled)
	}
}
