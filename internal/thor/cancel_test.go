package thor

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"thor/internal/segment"
)

// cancelDocs builds a workload big enough that a run takes measurable time:
// n copies of a multi-sentence document over the fig1 vocabulary.
func cancelDocs(n, repeat int) []segment.Document {
	var sb strings.Builder
	for i := 0; i < repeat; i++ {
		sb.WriteString("An Acoustic Neuroma is a slow-growing non-cancerous brain tumor. ")
		sb.WriteString("It develops on the main nerve leading from the inner ear to the brain. ")
		sb.WriteString("Tuberculosis generally damages the lungs and the nervous system. ")
	}
	docs := make([]segment.Document, n)
	for i := range docs {
		docs[i] = segment.Document{Name: fmt.Sprintf("doc-%d", i), Text: sb.String()}
	}
	return docs
}

// assertWellFormedPartial checks the partial-result invariants: every
// document is accounted for exactly once, and the result structures exist.
func assertWellFormedPartial(t *testing.T, res *Result, docs int) {
	t.Helper()
	if res == nil {
		t.Fatal("nil result")
	}
	if res.Table == nil || res.Entities == nil {
		t.Fatal("partial result missing table or entity map")
	}
	if res.Stats.Documents != docs {
		t.Errorf("Documents = %d, want %d", res.Stats.Documents, docs)
	}
	if got := len(res.Stats.CompletedDocs) + len(res.Stats.Quarantined) + res.Stats.Skipped; got != docs {
		t.Errorf("completed(%d) + quarantined(%d) + skipped(%d) = %d, want %d",
			len(res.Stats.CompletedDocs), len(res.Stats.Quarantined), res.Stats.Skipped, got, docs)
	}
	if len(res.Stats.Stages) != len(PipelineStages) {
		t.Errorf("stage breakdown has %d rows, want %d", len(res.Stats.Stages), len(PipelineStages))
	}
}

func TestRunContextDeadlineAnyDuration(t *testing.T) {
	p, err := New(fig1Table(), fig1Space(), Config{Tau: 0.6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	docs := cancelDocs(16, 20)
	for _, d := range []time.Duration{time.Nanosecond, time.Microsecond, time.Millisecond, 20 * time.Millisecond, time.Minute} {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		start := time.Now()
		res, err := p.RunContext(ctx, docs)
		elapsed := time.Since(start)
		cancel()
		if elapsed > 10*time.Second {
			t.Fatalf("deadline %v: run took %v, not prompt", d, elapsed)
		}
		assertWellFormedPartial(t, res, len(docs))
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("deadline %v: error %v, want DeadlineExceeded in chain", d, err)
			}
			if !res.Stats.Cancelled {
				t.Errorf("deadline %v: Stats.Cancelled not set on %+v", d, res.Stats)
			}
		} else if len(res.Stats.CompletedDocs) != len(docs) {
			t.Errorf("deadline %v: no error but only %d/%d docs completed", d, len(res.Stats.CompletedDocs), len(docs))
		}
	}
}

func TestRunContextCancelMidRunIsPrompt(t *testing.T) {
	p, err := New(fig1Table(), fig1Space(), Config{Tau: 0.6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	docs := cancelDocs(64, 50)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := p.RunContext(ctx, docs)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	assertWellFormedPartial(t, res, len(docs))
	if err == nil {
		t.Skip("run finished before the cancel landed") // machine too fast; nothing to assert
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled in chain", err)
	}
}

func TestRunContextNoGoroutineLeak(t *testing.T) {
	p, err := New(fig1Table(), fig1Space(), Config{Tau: 0.6, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	docs := cancelDocs(32, 10)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i)*time.Millisecond)
		_, _ = p.RunContext(ctx, docs)
		cancel()
	}
	// Workers exit once the job channel closes; give the scheduler a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelledPartialResultDeterministic: whatever subset of documents a
// cancelled run completed, its merged result is bit-identical to a clean run
// over exactly that subset.
func TestCancelledPartialResultDeterministic(t *testing.T) {
	table, space := fig1Table(), fig1Space()
	p, err := New(table, space, Config{Tau: 0.6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	docs := cancelDocs(48, 30)
	var partial *Result
	// Find a deadline that completes a proper subset; skip if the machine
	// races past every deadline or completes nothing.
	for _, d := range []time.Duration{2 * time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		res, rerr := p.RunContext(ctx, docs)
		cancel()
		assertWellFormedPartial(t, res, len(docs))
		if rerr != nil && len(res.Stats.CompletedDocs) > 0 {
			partial = res
			break
		}
	}
	if partial == nil {
		t.Skip("no deadline produced a non-empty partial subset on this machine")
	}
	subset := make([]segment.Document, 0, len(partial.Stats.CompletedDocs))
	for _, i := range partial.Stats.CompletedDocs {
		subset = append(subset, docs[i])
	}
	clean, err := Run(table, space, subset, Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	a, b := partial.AllEntities(), clean.AllEntities()
	if len(a) != len(b) {
		t.Fatalf("partial has %d entities, clean subset run has %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("entity %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if partial.Stats.Sentences != clean.Stats.Sentences || partial.Stats.Phrases != clean.Stats.Phrases ||
		partial.Stats.Candidates != clean.Stats.Candidates || partial.Stats.Filled != clean.Stats.Filled {
		t.Errorf("deterministic counters differ: partial %+v vs clean %+v", partial.Stats, clean.Stats)
	}
	if csvOf(t, partial.Table) != csvOf(t, clean.Table) {
		t.Error("enriched tables differ between partial run and clean subset run")
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	p, err := New(fig1Table(), fig1Space(), Config{Tau: 0.6, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	docs := cancelDocs(5, 2)
	res, err := p.RunContext(ctx, docs)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	assertWellFormedPartial(t, res, len(docs))
	if res.Stats.Skipped != len(docs) || len(res.Stats.CompletedDocs) != 0 {
		t.Errorf("pre-cancelled run extracted documents: %+v", res.Stats)
	}
}

func TestDocTimeoutQuarantines(t *testing.T) {
	p, err := New(fig1Table(), fig1Space(), Config{
		Tau: 0.6, DocTimeout: time.Nanosecond, MaxFailureFraction: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := cancelDocs(3, 2)
	res, err := p.Run(docs)
	if err != nil {
		t.Fatalf("run with MaxFailureFraction=1 must complete: %v", err)
	}
	assertWellFormedPartial(t, res, len(docs))
	if len(res.Stats.Quarantined) != len(docs) {
		t.Fatalf("quarantined %d docs, want all %d: %+v", len(res.Stats.Quarantined), len(docs), res.Stats)
	}
	for _, f := range res.Stats.Quarantined {
		if !strings.Contains(f.Err, "timeout") {
			t.Errorf("failure does not name the timeout: %+v", f)
		}
		if f.Stage == "" {
			t.Errorf("failure carries no stage: %+v", f)
		}
	}
}

func TestStageTimeoutQuarantinesWithStage(t *testing.T) {
	p, err := New(fig1Table(), fig1Space(), Config{
		Tau: 0.6, StageTimeout: time.Nanosecond, MaxFailureFraction: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := cancelDocs(2, 2)
	res, err := p.Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Quarantined) != len(docs) {
		t.Fatalf("quarantined %d docs, want all %d", len(res.Stats.Quarantined), len(docs))
	}
	for _, f := range res.Stats.Quarantined {
		if !strings.Contains(f.Err, "stage budget") || f.Stage != StageSegment {
			t.Errorf("stage budget failure not attributed to segment: %+v", f)
		}
	}
}
