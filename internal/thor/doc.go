// Package thor implements the THOR pipeline of the paper "Mitigating Data
// Sparsity in Integrated Data through Text Conceptualization" (ICDE 2024):
// entity-centric slot filling that enriches an integrated table with
// conceptualized entities extracted from external documents.
//
// The pipeline follows Algorithm 1 exactly:
//
//	① Preparation      — segment documents by subject instance and fine-tune
//	                      a semantic matcher from the table's own instances.
//	② Entity Extraction — parse each sentence, extract noun phrases, match
//	                      subphrases semantically, refine syntactically, and
//	                      keep the best entity per phrase.
//	③ Slot Filling      — write the extracted entities into the table's
//	                      labeled nulls.
package thor
