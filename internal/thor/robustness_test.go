package thor

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"thor/internal/segment"
)

// The pipeline must never panic or error on arbitrary text: malformed prose,
// unicode soup, enormous sentences, punctuation runs, or empty documents
// (the only rejected input is an empty document *list*).

func TestPipelineArbitraryTextNeverPanics(t *testing.T) {
	p, err := New(fig1Table(), fig1Space(), Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	f := func(body string) bool {
		docs := []segment.Document{{Name: "fuzz", Text: body}}
		res, err := p.Run(docs)
		if err != nil {
			return false
		}
		// Entities, if any, must be well-formed.
		for _, e := range res.AllEntities() {
			if e.Subject == "" || e.Phrase == "" || e.Concept == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPipelineAdversarialDocuments(t *testing.T) {
	p, err := New(fig1Table(), fig1Space(), Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	words := []string{"Acoustic", "Neuroma", "the", "brain", "and", "...", "!!", "—", "桜", "mixedCASE", "x"}
	var giant strings.Builder
	for i := 0; i < 20000; i++ {
		giant.WriteString(words[rng.Intn(len(words))])
		giant.WriteByte(' ')
	}
	cases := []string{
		"",                                 // empty body
		"....!!!???",                       // punctuation only
		strings.Repeat("a", 100000),        // one enormous token
		strings.Repeat("word ", 50000),     // one enormous sentence (no terminator)
		giant.String(),                     // long mixed junk
		"Acoustic Neuroma\x00damages\x7f.", // control characters
		"τ=0.7 résumé naïve — “quoted”. 𝛼.", // unicode punctuation and symbols
	}
	for i, body := range cases {
		res, err := p.Run([]segment.Document{{Name: "adv", Text: body, DefaultSubject: "Acoustic Neuroma"}})
		if err != nil {
			t.Errorf("case %d: unexpected error: %v", i, err)
			continue
		}
		if res.Stats.Documents != 1 {
			t.Errorf("case %d: stats wrong: %+v", i, res.Stats)
		}
	}
}

func TestPipelineManyEmptyDocuments(t *testing.T) {
	p, err := New(fig1Table(), fig1Space(), Config{Tau: 0.6, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]segment.Document, 50)
	for i := range docs {
		docs[i] = segment.Document{Name: "empty"}
	}
	res, err := p.Run(docs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Entities != 0 || res.Stats.Sentences != 0 {
		t.Errorf("empty documents produced content: %+v", res.Stats)
	}
}

func TestPipelineTableWithOddSubjects(t *testing.T) {
	// Subjects containing regex-ish and punctuation characters must not
	// break segmentation or slot filling.
	tab := fig1Table()
	tab.AddRow("Weird (Sub)ject+*")
	p, err := New(tab, fig1Space(), Config{Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]segment.Document{{Name: "odd", Text: "Weird (Sub)ject+* damages the brain."}}); err != nil {
		t.Fatal(err)
	}
}
