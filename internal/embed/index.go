package embed

import (
	"sort"
	"sync"
)

// ThresholdIndex answers threshold-neighborhood queries over a snapshot of a
// Space's vocabulary with *exactly* the same results as Space.Neighbors —
// same words, same similarities, same order — at a fraction of the cost.
//
// It composes the two acceleration structures in this package:
//
//   - the banded random-hyperplane LSHIndex supplies, per query, the bucket
//     candidates that are likely neighbors; they are scored directly by true
//     cosine (prune-then-verify: LSH only *proposes*, the exact cosine
//     decides);
//   - the remaining vocabulary — which LSH alone would silently drop,
//     making results approximate — is screened by the Matrix's conservative
//     sketch bound: entries whose cosine upper bound falls short of τ are
//     skipped, and every survivor is verified by true cosine.
//
// Because the bound is conservative and survivors are re-scored exactly, the
// accepted set is provably identical to a brute-force sweep; the LSH pass
// merely shifts the likely hits onto the cheap path. The index is immutable
// and safe for concurrent queries.
type ThresholdIndex struct {
	words []string // sorted vocabulary; row i of mat and entry i of lsh
	basis *Basis
	mat   *Matrix
	lsh   *LSHIndex
	// planes holds the LSH hyperplanes flattened to float64 ([table][bit]
	// rows of Dim), so a query signature is k·l sign-of-dot sweeps instead
	// of k·l full cosines. sign(dot) == sign(cosine) for nonzero vectors, so
	// bucket lookups agree with the LSHIndex's stored signatures.
	planes  []float64
	scratch sync.Pool // *idxScratch
}

type idxScratch struct {
	seen []bool
	rows []int
}

// NewThresholdIndex snapshots the space's current vocabulary. Mutating the
// space afterwards does not update the index (Space.Index handles
// invalidation for the lazily built shared instance).
func NewThresholdIndex(s *Space) *ThresholdIndex {
	words := s.Words()
	vecs := make([]Vector, len(words))
	for i, w := range words {
		vecs[i] = s.Lookup(w)
	}
	basis := NewBasis(vecs)
	idx := &ThresholdIndex{
		words: words,
		basis: basis,
		mat:   NewMatrix(basis, vecs),
		lsh:   NewLSHIndex(s, 0, 0), // iterates s.Words(): entry i == row i
	}
	idx.planes = make([]float64, 0, idx.lsh.l*idx.lsh.k*Dim)
	for t := 0; t < idx.lsh.l; t++ {
		for b := 0; b < idx.lsh.k; b++ {
			for _, x := range idx.lsh.planes[t][b] {
				idx.planes = append(idx.planes, float64(x))
			}
		}
	}
	n := len(words)
	idx.scratch.New = func() any { return &idxScratch{seen: make([]bool, n)} }
	return idx
}

// Basis returns the pruning basis the index's matrix was built with, so
// callers can build Matrices and Queries that share it.
func (idx *ThresholdIndex) Basis() *Basis { return idx.basis }

// Len returns the number of indexed words.
func (idx *ThresholdIndex) Len() int { return len(idx.words) }

// Word returns the indexed word at row i (rows are sorted vocabulary order).
func (idx *ThresholdIndex) Word(i int) string { return idx.words[i] }

// RowOf returns the row index of a word, or -1 if it is not indexed.
func (idx *ThresholdIndex) RowOf(word string) int {
	i := sort.SearchStrings(idx.words, word)
	if i < len(idx.words) && idx.words[i] == word {
		return i
	}
	return -1
}

// querySignature computes the query's bucket signature for one LSH table
// from dot-product signs against the flattened planes.
func (idx *ThresholdIndex) querySignature(q *Query, t int) uint32 {
	var sig uint32
	base := t * idx.lsh.k * Dim
	for b := 0; b < idx.lsh.k; b++ {
		row := idx.planes[base+b*Dim : base+(b+1)*Dim]
		var dot float64
		for j := 0; j < Dim; j++ {
			dot += q.comps[j] * row[j]
		}
		if dot >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// candidateRows appends the deduplicated LSH bucket candidates for q to out,
// marking each appended row in seen. The caller owns resetting seen.
func (idx *ThresholdIndex) candidateRows(q *Query, seen []bool, out []int) []int {
	for t := 0; t < idx.lsh.l; t++ {
		sig := idx.querySignature(q, t)
		for _, i := range idx.lsh.buckets[t][sig] {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	return out
}

// CandidateRows appends the rows sharing an LSH bucket with q — the likely
// near neighbors — to buf and returns it. The result is approximate by
// construction; use it only to prime exact sweeps (e.g. seeding the running
// best of an ArgMax so the bound prunes harder), never as a result set.
func (idx *ThresholdIndex) CandidateRows(q *Query, buf []int) []int {
	sc := idx.scratch.Get().(*idxScratch)
	buf = idx.candidateRows(q, sc.seen, buf)
	for _, i := range buf {
		sc.seen[i] = false
	}
	idx.scratch.Put(sc)
	return buf
}

// CandidateRowsOfRow is CandidateRows for a query vector that is itself the
// indexed row: the signatures stored at build time replace the k·l
// sign-of-dot sweeps, so bucket retrieval costs no dot products at all.
func (idx *ThresholdIndex) CandidateRowsOfRow(row int, buf []int) []int {
	sc := idx.scratch.Get().(*idxScratch)
	l := idx.lsh.l
	for t := 0; t < l; t++ {
		sig := idx.lsh.sigs[row*l+t]
		for _, i := range idx.lsh.buckets[t][sig] {
			if !sc.seen[i] {
				sc.seen[i] = true
				buf = append(buf, i)
			}
		}
	}
	for _, i := range buf {
		sc.seen[i] = false
	}
	idx.scratch.Put(sc)
	return buf
}

// Neighbors returns all indexed words with cosine similarity ≥ tau to the
// query, ordered by decreasing similarity with ties broken alphabetically —
// bit-for-bit identical to Space.Neighbors on the snapshotted vocabulary.
func (idx *ThresholdIndex) Neighbors(query Vector, tau float64) []Neighbor {
	q := idx.basis.Query(query)
	return idx.NeighborsQuery(&q, tau)
}

// NeighborsQuery is Neighbors for a precomputed query (which must have been
// built by this index's Basis).
func (idx *ThresholdIndex) NeighborsQuery(q *Query, tau float64) []Neighbor {
	return idx.NeighborsQueryOpt(q, tau, true)
}

// NeighborsQueryOpt is NeighborsQuery with the int8 propose tier explicitly
// enabled or disabled (see Matrix's quant tier — results are bit-identical
// either way; the flag exists so matcher.Config.DisableQuant governs every
// screen on its path).
func (idx *ThresholdIndex) NeighborsQueryOpt(q *Query, tau float64, quant bool) []Neighbor {
	n := idx.mat.Len()
	if q.Zero() {
		// CosineAt defines every similarity against a zero vector as 0.
		if tau > 0 {
			return nil
		}
		out := make([]Neighbor, n)
		for i := range out {
			out[i] = Neighbor{Word: idx.words[i]}
		}
		return out // rows are sorted words: already the tie-break order
	}
	quant = quant && idx.mat.qs.enable
	var filtered, passed uint64
	sc := idx.scratch.Get().(*idxScratch)
	var out []Neighbor
	// Fast path: score LSH bucket candidates by true cosine; with the quant
	// tier on, candidates whose int8 bound already falls short of τ skip the
	// full-width dot product (the bound is conservative, so nothing scoring
	// ≥ τ is ever screened).
	sc.rows = idx.candidateRows(q, sc.seen, sc.rows[:0])
	for _, i := range sc.rows {
		if quant {
			if idx.mat.quantBound(q, i)+boundMargin < tau {
				filtered++
				continue
			}
			passed++
		}
		if sim := idx.mat.Cosine(q, i); sim >= tau {
			out = append(out, Neighbor{Word: idx.words[i], Sim: sim})
		}
	}
	// Exact-verification fallback: screen everything LSH did not propose —
	// int8 tier first, float64 sketch bound second — and score survivors by
	// true cosine. This pass is what makes the result identical to the
	// brute-force sweep rather than approximate.
	for i := 0; i < n; i++ {
		if sc.seen[i] {
			sc.seen[i] = false // reset scratch as we go
			continue
		}
		if quant {
			if idx.mat.quantBound(q, i)+boundMargin < tau {
				filtered++
				continue
			}
			passed++
		}
		if idx.mat.bound(q, i)+boundMargin < tau {
			continue
		}
		if sim := idx.mat.Cosine(q, i); sim >= tau {
			out = append(out, Neighbor{Word: idx.words[i], Sim: sim})
		}
	}
	idx.scratch.Put(sc)
	addQuantStats(filtered, passed)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].Word < out[j].Word
	})
	return out
}

// Query precomputes the sweep view of v under the index's basis.
func (idx *ThresholdIndex) Query(v Vector) Query { return idx.basis.Query(v) }
