package embed

import (
	"hash/fnv"
	"math"
)

// splitmix64 is a tiny, high-quality PRNG used to expand a 64-bit seed into a
// deterministic stream of pseudo-random words. It avoids math/rand so hash
// vectors stay stable across Go releases.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// gauss returns an approximately standard-normal sample via the sum of
// uniform variates (Irwin–Hall with n=4, rescaled). Adequate for placing
// vectors isotropically.
func (s *splitmix64) gauss() float64 {
	const inv = 1.0 / (1 << 63)
	sum := 0.0
	for i := 0; i < 4; i++ {
		sum += float64(int64(s.next())) * inv // uniform in (-1, 1)
	}
	return sum * math.Sqrt(3.0/4.0)
}

// HashVector deterministically maps an arbitrary string to a unit vector.
// Equal strings always map to equal vectors; distinct strings map to nearly
// orthogonal vectors in expectation.
func HashVector(s string) Vector {
	h := fnv.New64a()
	h.Write([]byte(s))
	rng := splitmix64(h.Sum64())
	var v Vector
	for i := range v {
		v[i] = float32(rng.gauss())
	}
	return v.Normalize()
}

// SubwordVector maps a word to the normalized sum of hash vectors of its
// character n-grams (n = 3..5, fastText-style, with boundary markers). Words
// sharing morphology ("cancer", "cancerous") therefore share most of their
// n-grams and end up nearby, which is what gives the matcher out-of-
// vocabulary generalization.
func SubwordVector(word string) Vector {
	if word == "" {
		return Vector{}
	}
	padded := "<" + word + ">"
	runes := []rune(padded)
	var sum Vector
	count := 0
	for n := 3; n <= 5; n++ {
		if len(runes) < n {
			break
		}
		for i := 0; i+n <= len(runes); i++ {
			sum = sum.Add(HashVector(string(runes[i : i+n])))
			count++
		}
	}
	if count == 0 {
		return HashVector(word)
	}
	return sum.Normalize()
}
