package embed

import (
	"fmt"
	"math"
)

// Dim is the dimensionality of all vectors in a Space. 256 dimensions keep
// random cross-terms small (≈1/16 standard deviation per pair), so cluster
// geometry — not noise extremes — decides similarity thresholds.
const Dim = 256

// Vector is a fixed-dimension embedding.
type Vector [Dim]float32

// Zero reports whether the vector has no magnitude.
func (v Vector) Zero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Norm returns the Euclidean length of the vector.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// Normalize returns the unit vector in the direction of v. The zero vector
// normalizes to itself.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	var out Vector
	for i, x := range v {
		out[i] = float32(float64(x) / n)
	}
	return out
}

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	var out Vector
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Scale returns v scaled by a.
func (v Vector) Scale(a float64) Vector {
	var out Vector
	for i, x := range v {
		out[i] = float32(float64(x) * a)
	}
	return out
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	var s float64
	for i := range v {
		s += float64(v[i]) * float64(w[i])
	}
	return s
}

// Cosine returns the cosine similarity of v and w in [-1, 1]. If either
// vector is zero the similarity is defined as 0.
func Cosine(v, w Vector) float64 { return CosineAt(&v, &w) }

// CosineAt is the pointer form of Cosine for hot loops: it avoids copying
// the (large) vector values at every call.
func CosineAt(v, w *Vector) float64 {
	var dot, nv, nw float64
	for i := 0; i < Dim; i++ {
		a, b := float64(v[i]), float64(w[i])
		dot += a * b
		nv += a * a
		nw += b * b
	}
	if nv == 0 || nw == 0 {
		return 0
	}
	c := dot / math.Sqrt(nv*nw)
	// Guard against floating-point drift outside [-1, 1].
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// Blend returns the unit vector alpha*base + (1-alpha)*noise. It is how the
// dataset generator places a vocabulary word near its concept centroid:
// higher alpha means a tighter cluster.
func Blend(base, noise Vector, alpha float64) Vector {
	return base.Scale(alpha).Add(noise.Scale(1 - alpha)).Normalize()
}

// String renders a short prefix of the vector for debugging.
func (v Vector) String() string {
	return fmt.Sprintf("[%.3f %.3f %.3f ...]", v[0], v[1], v[2])
}
