package embed

import (
	"fmt"
	"sort"
)

// LSHIndex accelerates threshold neighborhood queries over a Space with
// banded random-hyperplane locality-sensitive hashing: L independent hash
// tables each bucket words by a k-bit hyperplane sign signature, and a query
// scores the union of its buckets across all tables.
//
// With the default parameters (k=8, L=32) the probability that a neighbor at
// cosine ≥ 0.6 shares at least one bucket exceeds 95%, while unrelated words
// (cosine ≈ 0) are scored in only ~10% of cases — an order-of-magnitude
// pruning on realistic vocabularies. The hyperplanes derive from fixed
// labels, so equal spaces build equal indexes and results are deterministic.
type LSHIndex struct {
	k, l    int
	planes  [][]Vector         // [table][bit]
	buckets []map[uint32][]int // per-table buckets of entry indices
	entries []lshEntry
	// sigs retains each entry's per-table signature (entry-major:
	// sigs[i*l+t]), so queries that are themselves indexed entries can reach
	// their buckets without recomputing hyperplane signs.
	sigs []uint32
}

type lshEntry struct {
	word string
	vec  Vector
}

// Default banding parameters.
const (
	DefaultLSHBits   = 8
	DefaultLSHTables = 32
)

// NewLSHIndex builds an index over the space's current vocabulary with k
// bits per signature and l tables (0 selects the defaults). Mutating the
// space afterwards does not update the index.
func NewLSHIndex(s *Space, k, l int) *LSHIndex {
	if k <= 0 || k > 32 {
		k = DefaultLSHBits
	}
	if l <= 0 {
		l = DefaultLSHTables
	}
	idx := &LSHIndex{
		k:       k,
		l:       l,
		planes:  make([][]Vector, l),
		buckets: make([]map[uint32][]int, l),
	}
	for t := 0; t < l; t++ {
		idx.planes[t] = make([]Vector, k)
		for b := 0; b < k; b++ {
			idx.planes[t][b] = HashVector(fmt.Sprintf("lsh-plane:%d:%d", t, b))
		}
		idx.buckets[t] = make(map[uint32][]int)
	}
	for _, w := range s.Words() {
		v := s.Lookup(w)
		i := len(idx.entries)
		idx.entries = append(idx.entries, lshEntry{word: w, vec: v})
		for t := 0; t < l; t++ {
			sig := idx.signature(t, &v)
			idx.sigs = append(idx.sigs, sig)
			idx.buckets[t][sig] = append(idx.buckets[t][sig], i)
		}
	}
	return idx
}

// signature computes the table's hyperplane sign pattern for a vector.
func (idx *LSHIndex) signature(table int, v *Vector) uint32 {
	var sig uint32
	for b := 0; b < idx.k; b++ {
		if CosineAt(v, &idx.planes[table][b]) >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// candidates gathers the deduplicated entry indices sharing any bucket with
// the query.
func (idx *LSHIndex) candidates(query *Vector) []int {
	seen := make(map[int]bool)
	var out []int
	for t := 0; t < idx.l; t++ {
		sig := idx.signature(t, query)
		for _, i := range idx.buckets[t][sig] {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	return out
}

// Neighbors returns the indexed words with cosine similarity ≥ tau to the
// query, ordered like Space.Neighbors (descending similarity, ties by word).
// The result is approximate: a neighbor sharing no bucket with the query in
// any table is missed.
func (idx *LSHIndex) Neighbors(query Vector, tau float64) []Neighbor {
	var out []Neighbor
	for _, i := range idx.candidates(&query) {
		e := &idx.entries[i]
		if sim := CosineAt(&query, &e.vec); sim >= tau {
			out = append(out, Neighbor{Word: e.word, Sim: sim})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].Word < out[j].Word
	})
	return out
}

// Candidates reports how many vocabulary entries a query would score — the
// index's work saving versus a full scan of Len entries.
func (idx *LSHIndex) Candidates(query Vector) int {
	return len(idx.candidates(&query))
}

// Len returns the number of indexed words.
func (idx *LSHIndex) Len() int { return len(idx.entries) }
