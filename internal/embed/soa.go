package embed

import "math"

// This file implements the vectorized (structure-of-arrays) form of the
// similarity sweeps the matcher runs millions of times per pipeline: a
// Matrix stores a set of vectors as one contiguous float64 slab with
// precomputed norms, so a sweep is a cache-friendly run of dot products with
// no per-pair norm accumulation and no float32→float64 conversion.
//
// Bit-for-bit equivalence contract: Matrix.Cosine reproduces CosineAt
// exactly. CosineAt accumulates dot, |v|² and |w|² in three independent
// single accumulators over ascending indices; precomputing |w|² per row and
// |v|² per query yields the identical float64 values (same operand values —
// float32→float64 conversion is exact — combined in the same order), and the
// final dot/√(nv·nw) expression and clamp are unchanged. The equivalence
// property tests in embed and matcher pin this contract.
//
// On top of the slab, each row carries a low-dimensional sketch that yields
// a cheap, *conservative* upper bound on the cosine against any query
// (Cauchy–Schwarz on the component outside the sketch subspace). Sweeps use
// the bound only to skip rows that provably cannot beat the current best or
// reach a threshold, so pruned sweeps return exactly what full sweeps do.

// SketchDim is the dimensionality of the pruning sketch. The basis is built
// from the data's dominant directions (see NewBasis), so a couple dozen
// components capture the concept-centroid structure the synthetic spaces and
// real embedding tables share; what the sketch misses only weakens the bound,
// never correctness.
const SketchDim = 24

// boundMargin absorbs the floating-point error between the float64 bound
// and the float64 cosine (both within ~1e-12 of their real values): a row is
// skipped only when its bound clears the target by this margin, so rounding
// can never skip a row the exact sweep would keep.
const boundMargin = 1e-6

// Basis is a deterministic orthonormal set of directions used to sketch
// vectors for bound pruning. A Basis is immutable and safe for concurrent
// use; all Matrices and Queries compared together must share one Basis.
type Basis struct {
	dirs [][Dim]float64 // orthonormal rows, at most SketchDim of them
}

// NewBasis builds a pruning basis from a sample of the vectors it will
// screen, by pivoted Gram–Schmidt: it repeatedly takes the sample vector
// with the largest residual outside the span so far and orthonormalizes it
// in. On clustered data this recovers the cluster centroids first, which is
// what makes the sketch bound tight. The construction is deterministic in
// the order of vs (ties pick the earliest). A nil or empty sample yields an
// empty basis whose bound is vacuous (always 1) but still correct.
func NewBasis(vs []Vector) *Basis {
	b := &Basis{}
	if len(vs) == 0 {
		return b
	}
	// Unit-normalized float64 residuals.
	resid := make([][Dim]float64, 0, len(vs))
	for i := range vs {
		var r [Dim]float64
		n := 0.0
		for j, x := range vs[i] {
			f := float64(x)
			r[j] = f
			n += f * f
		}
		if n == 0 {
			continue
		}
		inv := 1 / math.Sqrt(n)
		for j := range r {
			r[j] *= inv
		}
		resid = append(resid, r)
	}
	for len(b.dirs) < SketchDim {
		// Pick the vector with the largest residual norm².
		bestI, bestN := -1, 0.0
		for i := range resid {
			n := 0.0
			for j := range resid[i] {
				n += resid[i][j] * resid[i][j]
			}
			if n > bestN {
				bestI, bestN = i, n
			}
		}
		// Once every residual is small the remaining mass is diffuse noise; a
		// further direction would barely tighten the bound.
		if bestI < 0 || bestN < 0.05 {
			break
		}
		dir := resid[bestI]
		inv := 1 / math.Sqrt(bestN)
		for j := range dir {
			dir[j] *= inv
		}
		// Re-orthonormalize against the accepted set (second Gram–Schmidt
		// pass) so accumulated rounding stays ~1e-15, far inside boundMargin.
		for _, d := range b.dirs {
			dot := 0.0
			for j := range dir {
				dot += dir[j] * d[j]
			}
			for j := range dir {
				dir[j] -= dot * d[j]
			}
		}
		n := 0.0
		for j := range dir {
			n += dir[j] * dir[j]
		}
		if n < 1e-12 {
			break
		}
		inv = 1 / math.Sqrt(n)
		for j := range dir {
			dir[j] *= inv
		}
		b.dirs = append(b.dirs, dir)
		// Deflate all residuals.
		for i := range resid {
			dot := 0.0
			for j := range resid[i] {
				dot += resid[i][j] * dir[j]
			}
			for j := range resid[i] {
				resid[i][j] -= dot * dir[j]
			}
		}
	}
	return b
}

// sketch computes the basis coordinates and off-span residual norm of the
// unit direction of v. comps must hold v converted to float64 and nv its
// CosineAt-style squared norm.
func (b *Basis) sketch(comps []float64, nv float64, sk []float64) (resid float64) {
	if nv == 0 {
		for t := range b.dirs {
			sk[t] = 0
		}
		for t := len(b.dirs); t < len(sk); t++ {
			sk[t] = 0
		}
		return 0
	}
	inv := 1 / math.Sqrt(nv)
	rem := 1.0
	for t := range b.dirs {
		dot := 0.0
		d := &b.dirs[t]
		for j := 0; j < Dim; j++ {
			dot += comps[j] * d[j]
		}
		dot *= inv
		sk[t] = dot
		rem -= dot * dot
	}
	for t := len(b.dirs); t < len(sk); t++ {
		sk[t] = 0
	}
	if rem < 0 {
		rem = 0
	}
	return math.Sqrt(rem)
}

// Query is a precomputed view of one query vector: float64 components, the
// CosineAt-style squared norm, and the pruning sketch. Queries are cheap to
// build relative to a sweep and may be reused across any Matrix sharing the
// same Basis.
type Query struct {
	comps [Dim]float64
	nv    float64
	sk    [SketchDim]float64
	resid float64
	// q8/qscale/qslack are the query's int8-quantized sketch for the quant
	// propose tier (see quant.go); always built, used only against matrices
	// with the tier enabled.
	q8     [SketchDim]int8
	qscale float64
	qslack float64
}

// Query precomputes the sweep view of v under the basis.
func (b *Basis) Query(v Vector) Query {
	var q Query
	for i, x := range v {
		f := float64(x)
		q.comps[i] = f
		q.nv += f * f
	}
	q.resid = b.sketch(q.comps[:], q.nv, q.sk[:])
	q.qscale, q.qslack = quantizeSketch(q.sk[:], q.q8[:])
	return q
}

// Zero reports whether the query vector had no magnitude (every cosine
// against it is 0, matching CosineAt).
func (q *Query) Zero() bool { return q.nv == 0 }

// Matrix is a set of vectors flattened into one contiguous float64 slab with
// precomputed norms and pruning sketches. Immutable after construction and
// safe for concurrent sweeps.
type Matrix struct {
	basis *Basis
	n     int
	comps []float64 // n rows of Dim components
	norm  []float64 // per-row squared norm, accumulated exactly as CosineAt does
	sk    []float64 // n rows of SketchDim unit-direction coordinates
	resid []float64 // per-row off-span residual norm
	qs    quantSketch
}

// NewMatrix flattens vs under the basis with the int8 propose tier enabled.
// The rows keep their order, so row indices align with the caller's slice.
func NewMatrix(b *Basis, vs []Vector) *Matrix {
	return NewMatrixQuant(b, vs, true)
}

// NewMatrixQuant is NewMatrix with the int8 propose tier explicitly enabled
// or disabled. Sweep results are bit-identical either way — the tier is a
// screen, not an approximation — so disabling it is purely an ablation /
// kill-switch knob (matcher.Config.DisableQuant).
func NewMatrixQuant(b *Basis, vs []Vector, quant bool) *Matrix {
	m := &Matrix{
		basis: b,
		n:     len(vs),
		comps: make([]float64, len(vs)*Dim),
		norm:  make([]float64, len(vs)),
		sk:    make([]float64, len(vs)*SketchDim),
		resid: make([]float64, len(vs)),
	}
	for i := range vs {
		row := m.comps[i*Dim : (i+1)*Dim]
		nw := 0.0
		for j, x := range vs[i] {
			f := float64(x)
			row[j] = f
			nw += f * f
		}
		m.norm[i] = nw
		m.resid[i] = b.sketch(row, nw, m.sk[i*SketchDim:(i+1)*SketchDim])
	}
	if quant {
		m.quantize()
	}
	return m
}

// Len returns the number of rows.
func (m *Matrix) Len() int { return m.n }

// Basis returns the sketch basis the matrix was flattened under; queries for
// this matrix must be built with it.
func (m *Matrix) Basis() *Basis { return m.basis }

// Cosine returns the cosine similarity between the query and row i,
// bit-identical to CosineAt on the original vectors.
func (m *Matrix) Cosine(q *Query, i int) float64 {
	nw := m.norm[i]
	if q.nv == 0 || nw == 0 {
		return 0
	}
	row := m.comps[i*Dim : (i+1)*Dim]
	var dot float64
	for j := 0; j < Dim; j++ {
		dot += q.comps[j] * row[j]
	}
	c := dot / math.Sqrt(q.nv*nw)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// bound returns a conservative upper bound on Cosine(q, i): the sketch
// coordinates carry the in-span part of the dot product and Cauchy–Schwarz
// bounds the off-span part by the product of the residual norms.
func (m *Matrix) bound(q *Query, i int) float64 {
	sk := m.sk[i*SketchDim : (i+1)*SketchDim]
	ub := q.resid * m.resid[i]
	for t := 0; t < SketchDim; t++ {
		ub += q.sk[t] * sk[t]
	}
	return ub
}

// ArgMax returns the index and similarity of the first row whose cosine
// attains the maximum among rows with cosine strictly greater than init
// (-1 if no row exceeds init). It reproduces the sequential
// "if sim > best { best = sim }" sweep exactly — including which index wins
// on ties — while using the int8 propose tier (when enabled) and the float64
// sketch bound to skip rows that provably cannot exceed the running best.
func (m *Matrix) ArgMax(q *Query, init float64) (int, float64) {
	bestI, best := -1, init
	if q.nv == 0 {
		// Every cosine is 0, matching CosineAt's zero-vector convention.
		if best < 0 && m.n > 0 {
			return 0, 0
		}
		return -1, init
	}
	if m.qs.enable {
		var filtered, passed uint64
		for i := 0; i < m.n; i++ {
			if m.quantBound(q, i)+boundMargin < best {
				filtered++
				continue
			}
			passed++
			if m.bound(q, i)+boundMargin < best {
				continue
			}
			if c := m.Cosine(q, i); c > best {
				best, bestI = c, i
			}
		}
		addQuantStats(filtered, passed)
		return bestI, best
	}
	for i := 0; i < m.n; i++ {
		if m.bound(q, i)+boundMargin < best {
			continue
		}
		if c := m.Cosine(q, i); c > best {
			best, bestI = c, i
		}
	}
	return bestI, best
}

// Max returns the maximum cosine over all rows, at least init (headFit-style
// sweep starting from init).
func (m *Matrix) Max(q *Query, init float64) float64 {
	_, best := m.ArgMax(q, init)
	return best
}

// PrefixMaxFloor fills dst[i-lo] with the maximum cosine between q and rows
// lo..i (inclusive) for every i in [lo, hi), with the running maximum started
// at floor — the prefix-maximum sweep backing the matcher's cross-τ fit
// profiles. Prefix maxima above floor equal the sequential Cosine sweep's
// exactly (both pruning tiers only skip rows that provably cannot raise the
// running maximum, and the maximum of a set is order-independent); prefixes
// whose true maximum does not exceed floor come back as floor itself, which
// is what lets the tiers skip nearly every sub-floor row. dst must have
// length hi-lo.
func (m *Matrix) PrefixMaxFloor(q *Query, lo, hi int, floor float64, dst []float64) {
	if q.nv == 0 {
		// Every cosine is 0, matching CosineAt's zero-vector convention; the
		// running maximum still starts at floor.
		v := floor
		if 0 > v {
			v = 0
		}
		for i := range dst {
			dst[i] = v
		}
		return
	}
	run := floor
	if m.qs.enable {
		var filtered, passed uint64
		for i := lo; i < hi; i++ {
			if m.quantBound(q, i)+boundMargin < run {
				filtered++
			} else {
				passed++
				if m.bound(q, i)+boundMargin >= run {
					if c := m.Cosine(q, i); c > run {
						run = c
					}
				}
			}
			dst[i-lo] = run
		}
		addQuantStats(filtered, passed)
		return
	}
	for i := lo; i < hi; i++ {
		if m.bound(q, i)+boundMargin >= run {
			if c := m.Cosine(q, i); c > run {
				run = c
			}
		}
		dst[i-lo] = run
	}
}

// EachAtLeast calls f(i, sim) for every row whose cosine reaches tau, in row
// order, using the sketch bound to skip rows that provably fall short. The
// set and similarities reported are exactly those of a full sweep.
func (m *Matrix) EachAtLeast(q *Query, tau float64, f func(i int, sim float64)) {
	if q.nv == 0 {
		if tau > 0 {
			return
		}
		for i := 0; i < m.n; i++ {
			f(i, 0)
		}
		return
	}
	if m.qs.enable {
		var filtered, passed uint64
		for i := 0; i < m.n; i++ {
			if m.quantBound(q, i)+boundMargin < tau {
				filtered++
				continue
			}
			passed++
			if m.bound(q, i)+boundMargin < tau {
				continue
			}
			if c := m.Cosine(q, i); c >= tau {
				f(i, c)
			}
		}
		addQuantStats(filtered, passed)
		return
	}
	for i := 0; i < m.n; i++ {
		if m.bound(q, i)+boundMargin < tau {
			continue
		}
		if c := m.Cosine(q, i); c >= tau {
			f(i, c)
		}
	}
}
