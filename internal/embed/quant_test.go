package embed

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

// quantQueries builds a representative query mix for a space: every
// vocabulary vector, a few out-of-vocabulary hashes, and the zero vector.
func quantQueries(s *Space) []Vector {
	queries := []Vector{{}}
	for _, w := range s.Words() {
		queries = append(queries, s.Lookup(w))
	}
	for i := 0; i < 8; i++ {
		queries = append(queries, HashVector(fmt.Sprintf("quant-oov-%d", i)))
	}
	return queries
}

// TestQuantBoundConservative pins the tier's safety property: the int8 bound
// (plus the shared margin) must dominate both the exact cosine and can
// therefore never screen out a row an exact sweep would keep.
func TestQuantBoundConservative(t *testing.T) {
	s := clusteredSpace(5, 15, 10)
	words := s.Words()
	vecs := make([]Vector, len(words))
	for i, w := range words {
		vecs[i] = s.Lookup(w)
	}
	vecs = append(vecs, Vector{}) // all-zero row
	b := NewBasis(vecs)
	m := NewMatrix(b, vecs)
	if !m.QuantEnabled() {
		t.Fatal("NewMatrix did not enable the quant tier")
	}
	for qi, qv := range quantQueries(s) {
		q := b.Query(qv)
		for i := range vecs {
			cos := m.Cosine(&q, i)
			qb := m.quantBound(&q, i)
			if qb+boundMargin < cos {
				t.Fatalf("query %d row %d: quantBound %v + margin < cosine %v", qi, i, qb, cos)
			}
		}
	}
}

// TestQuantSweepsBitIdentical compares every sweep with the tier on against
// the tier off: indices, similarities (bitwise) and visit order must agree.
func TestQuantSweepsBitIdentical(t *testing.T) {
	s := clusteredSpace(4, 12, 9)
	words := s.Words()
	vecs := make([]Vector, len(words))
	for i, w := range words {
		vecs[i] = s.Lookup(w)
	}
	b := NewBasis(vecs)
	on := NewMatrixQuant(b, vecs, true)
	off := NewMatrixQuant(b, vecs, false)
	if off.QuantEnabled() {
		t.Fatal("NewMatrixQuant(..., false) left the tier enabled")
	}
	inits := []float64{-2, 0, 0.85, math.Nextafter(0.95, 0)}
	taus := []float64{0, 0.5, 0.7, 0.9, 0.95, 1.0}
	for qi, qv := range quantQueries(s) {
		q := b.Query(qv)
		for _, init := range inits {
			gi, gv := on.ArgMax(&q, init)
			wi, wv := off.ArgMax(&q, init)
			if gi != wi || math.Float64bits(gv) != math.Float64bits(wv) {
				t.Fatalf("query %d ArgMax(init=%v): quant (%d,%v) vs exact (%d,%v)", qi, init, gi, gv, wi, wv)
			}
		}
		for _, tau := range taus {
			type hit struct {
				i   int
				sim float64
			}
			var got, want []hit
			on.EachAtLeast(&q, tau, func(i int, sim float64) { got = append(got, hit{i, sim}) })
			off.EachAtLeast(&q, tau, func(i int, sim float64) { want = append(want, hit{i, sim}) })
			if len(got) != len(want) {
				t.Fatalf("query %d EachAtLeast(tau=%v): quant %d rows vs exact %d", qi, tau, len(got), len(want))
			}
			for k := range got {
				if got[k].i != want[k].i || math.Float64bits(got[k].sim) != math.Float64bits(want[k].sim) {
					t.Fatalf("query %d EachAtLeast(tau=%v) pos %d: quant %+v vs exact %+v", qi, tau, k, got[k], want[k])
				}
			}
		}
	}
}

// TestQuantNeighborsOptBitIdentical checks the index path: NeighborsQueryOpt
// with the tier on must return exactly the tier-off (and brute-force) result.
func TestQuantNeighborsOptBitIdentical(t *testing.T) {
	s := clusteredSpace(6, 20, 15)
	idx := s.Index()
	for _, tau := range []float64{0, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0} {
		for qi, qv := range quantQueries(s) {
			q := idx.Query(qv)
			got := idx.NeighborsQueryOpt(&q, tau, true)
			want := idx.NeighborsQueryOpt(&q, tau, false)
			if len(got) != len(want) {
				t.Fatalf("tau=%v query=%d: quant %d neighbors vs exact %d", tau, qi, len(got), len(want))
			}
			for k := range got {
				if got[k].Word != want[k].Word || math.Float64bits(got[k].Sim) != math.Float64bits(want[k].Sim) {
					t.Fatalf("tau=%v query=%d pos=%d: quant %+v vs exact %+v", tau, qi, k, got[k], want[k])
				}
			}
		}
	}
}

// TestQuantEdgeCases exercises the degenerate shapes the quantizer must
// handle: all-zero vectors (scale 0), a single-row matrix, and rows/queries
// at the extremes of the float32 magnitude range. Quantization acts on the
// sketch of the *unit direction*, so magnitude extremes must not disturb
// either safety or bit-identity.
func TestQuantEdgeCases(t *testing.T) {
	var tiny, huge, mixed Vector
	for j := 0; j < Dim; j++ {
		tiny[j] = float32(1e-30 * float64(j%7))
		huge[j] = float32(1e30 * float64((j%5)-2))
		if j%2 == 0 {
			mixed[j] = float32(1e-20)
		} else {
			mixed[j] = float32(-1e20)
		}
	}
	vecs := []Vector{{}, tiny, huge, mixed, HashVector("plain")}
	b := NewBasis(vecs)
	on := NewMatrixQuant(b, vecs, true)
	off := NewMatrixQuant(b, vecs, false)
	queries := append([]Vector{}, vecs...)
	queries = append(queries, HashVector("edge-query"))
	for qi, qv := range queries {
		q := b.Query(qv)
		for i := range vecs {
			cos := on.Cosine(&q, i)
			if qb := on.quantBound(&q, i); qb+boundMargin < cos {
				t.Fatalf("query %d row %d: quantBound %v + margin < cosine %v", qi, i, qb, cos)
			}
		}
		for _, init := range []float64{-2, 0, 0.5} {
			gi, gv := on.ArgMax(&q, init)
			wi, wv := off.ArgMax(&q, init)
			if gi != wi || math.Float64bits(gv) != math.Float64bits(wv) {
				t.Fatalf("query %d ArgMax(init=%v): quant (%d,%v) vs exact (%d,%v)", qi, init, gi, gv, wi, wv)
			}
		}
	}

	// Single-element cluster: a 1-row matrix must behave like the 1-element
	// sequential sweep for hits, misses and the zero query.
	single := []Vector{HashVector("solo")}
	sb := NewBasis(single)
	sm := NewMatrixQuant(sb, single, true)
	q := sb.Query(single[0])
	if i, sim := sm.ArgMax(&q, -2); i != 0 || sim != sm.Cosine(&q, 0) {
		t.Fatalf("single-row ArgMax: got (%d,%v)", i, sim)
	}
	if i, _ := sm.ArgMax(&q, 2); i != -1 {
		t.Fatalf("single-row ArgMax with unreachable init returned %d", i)
	}
	zq := sb.Query(Vector{})
	if i, sim := sm.ArgMax(&zq, -1); i != 0 || sim != 0 {
		t.Fatalf("single-row zero-query ArgMax: got (%d,%v)", i, sim)
	}
}

// TestQuantCountersAdvance checks the telemetry plumbing: quant-screened
// sweeps move the package counters, and the filtered+passed total accounts
// for every row of the sweep.
func TestQuantCountersAdvance(t *testing.T) {
	s := clusteredSpace(4, 10, 6)
	words := s.Words()
	vecs := make([]Vector, len(words))
	for i, w := range words {
		vecs[i] = s.Lookup(w)
	}
	b := NewBasis(vecs)
	m := NewMatrix(b, vecs)
	f0, p0 := QuantCounters()
	q := b.Query(vecs[0])
	m.ArgMax(&q, 0.95)
	f1, p1 := QuantCounters()
	if got, want := (f1-f0)+(p1-p0), uint64(m.Len()); got < want {
		t.Fatalf("counters advanced by %d, want at least %d (one per row)", got, want)
	}
}

// FuzzQuantBound drives the int8 round-trip bound with adversarial vectors:
// for any pair of fuzzer-chosen vectors, the quantized bound must stay above
// the exact cosine (recall can never drop a true candidate), and a quantized
// threshold sweep must return exactly the exact sweep's rows.
func FuzzQuantBound(f *testing.F) {
	seed := func(a, b float64) []byte {
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[0:8], math.Float64bits(a))
		binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(b))
		return buf[:]
	}
	f.Add(seed(1, -1))
	f.Add(seed(0, 0))
	f.Add(seed(1e30, 1e-30))
	f.Add(seed(math.Pi, -math.E))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode the fuzz payload into two dense vectors (repeating the bytes
		// across components) plus a third hashed from the raw payload, so the
		// basis sees both structured and arbitrary directions.
		var va, vb Vector
		for j := 0; j < Dim; j++ {
			if len(data) > 0 {
				va[j] = float32(int8(data[j%len(data)])) / 16
				vb[j] = float32(int8(data[(j*7+3)%len(data)])) / 16
			}
		}
		vecs := []Vector{va, vb, HashVector(string(data))}
		b := NewBasis(vecs)
		m := NewMatrixQuant(b, vecs, true)
		exact := NewMatrixQuant(b, vecs, false)
		for _, qv := range vecs {
			q := b.Query(qv)
			for i := range vecs {
				cos := m.Cosine(&q, i)
				if !(math.IsInf(cos, 0) || math.IsNaN(cos)) {
					if qb := m.quantBound(&q, i); qb+boundMargin < cos {
						t.Fatalf("quantBound %v + margin < cosine %v (row %d)", qb, cos, i)
					}
				}
			}
			for _, tau := range []float64{0.3, 0.7, 0.95} {
				var got, want []int
				m.EachAtLeast(&q, tau, func(i int, _ float64) { got = append(got, i) })
				exact.EachAtLeast(&q, tau, func(i int, _ float64) { want = append(want, i) })
				if len(got) != len(want) {
					t.Fatalf("tau=%v: quant sweep kept %v, exact %v", tau, got, want)
				}
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("tau=%v: quant sweep kept %v, exact %v", tau, got, want)
					}
				}
			}
		}
	})
}
