package embed

import (
	"math"
	"sync/atomic"
)

// This file adds the int8-quantized propose tier that screens rows *before*
// the float64 Gram–Schmidt sketch bound (and before any exact cosine): each
// sketch is symmetrically quantized to int8 with one per-row scale, and a
// conservative upper bound on the cosine is computed from the integer dot
// product plus a worst-case dequantization slack. The chain
//
//	quantBound ≥ bound ≥ Cosine        (up to ~1e-10, inside boundMargin)
//
// means the tier can only skip rows the float64 bound would also skip (or
// that the exact cosine would reject), so pruned sweeps stay bit-for-bit
// identical to full sweeps: every survivor is still verified by the float64
// bound and then by the exact CosineAt-order cosine.
//
// Why symmetric (zero-point 0): sketch coordinates are centered projections
// of unit directions, so their range is symmetric around zero and an affine
// zero-point would only add a constant the bound must conservatively absorb
// anyway. One scale per row (the "cluster" of one sketch) keeps dequantization
// exact at the row's extreme coordinate and the slack formula tight.
//
// Bound derivation. Write the row sketch r_t = s_r·i_t + e_t with integer
// i_t ∈ [-127,127] and |e_t| ≤ s_r/2 (round-to-nearest), and the query sketch
// likewise with scale s_q. Then
//
//	Σ q_t r_t = s_q·s_r·Σ iq_t·ir_t + s_q·Σ iq_t·er_t + s_r·Σ ir_t·eq_t + Σ eq_t·er_t
//	          ≤ s_q·s_r·( D + Σ|iq_t|/2 + Σ|ir_t|/2 + K/4 )
//
// with D the integer dot product and K = SketchDim. Adding the off-span
// Cauchy–Schwarz term resid_q·resid_r (unchanged from the float64 bound)
// yields quantBound. The per-row constants Σ|i|/2 + K/8 are precomputed as
// qslack, so the per-pair cost is one K-wide int8 dot product and a handful
// of float64 operations over 24 bytes of row data instead of 192.
type quantSketch struct {
	q8     []int8    // rows of SketchDim quantized sketch coordinates
	scale  []float64 // per-row dequantization scale (0 for an all-zero sketch)
	slack  []float64 // per-row Σ|i|/2 + SketchDim/8 (its half of the error bound)
	enable bool
}

// quantFiltered and quantPassed count, package-wide, the rows the int8 tier
// screened out versus let through to the float64 bound. Sweeps accumulate
// locally and flush once per sweep, so the counters cost two atomic adds per
// sweep. thor publishes per-run deltas as thor.match.quant_filtered /
// thor.match.quant_pass_rate.
var quantFiltered, quantPassed atomic.Uint64

// QuantCounters returns the cumulative number of rows the int8 propose tier
// screened out (filtered) and passed through to exact verification since
// process start. Intended for telemetry deltas; both counters are monotonic.
func QuantCounters() (filtered, passed uint64) {
	return quantFiltered.Load(), quantPassed.Load()
}

// addQuantStats flushes one sweep's screening tallies.
func addQuantStats(filtered, passed uint64) {
	if filtered != 0 {
		quantFiltered.Add(filtered)
	}
	if passed != 0 {
		quantPassed.Add(passed)
	}
}

// quantizeSketch quantizes one sketch row into q (len SketchDim), returning
// the dequantization scale and the row's precomputed slack term. An all-zero
// sketch quantizes to scale 0 with zero slack: its in-span dot product is
// exactly 0, and the bound degenerates to the residual term alone.
func quantizeSketch(sk []float64, q []int8) (scale, slack float64) {
	maxAbs := 0.0
	for _, x := range sk {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for t := range q {
			q[t] = 0
		}
		return 0, 0
	}
	scale = maxAbs / 127
	inv := 127 / maxAbs
	var absSum int64
	for t, x := range sk {
		r := math.Round(x * inv)
		q[t] = int8(r)
		if r < 0 {
			r = -r
		}
		absSum += int64(r)
	}
	return scale, float64(absSum)/2 + float64(SketchDim)/8
}

// quantize builds the quantized tier for a matrix's sketch slab.
func (m *Matrix) quantize() {
	m.qs = quantSketch{
		q8:     make([]int8, m.n*SketchDim),
		scale:  make([]float64, m.n),
		slack:  make([]float64, m.n),
		enable: true,
	}
	for i := 0; i < m.n; i++ {
		m.qs.scale[i], m.qs.slack[i] = quantizeSketch(
			m.sk[i*SketchDim:(i+1)*SketchDim],
			m.qs.q8[i*SketchDim:(i+1)*SketchDim])
	}
}

// QuantEnabled reports whether the matrix screens sweeps with the int8
// propose tier before the float64 sketch bound.
func (m *Matrix) QuantEnabled() bool { return m.qs.enable }

// CanExceed reports whether row i's cosine could possibly reach target,
// screening with the int8 tier when it is enabled. A false return is a proof
// (the exact cosine is strictly below target); a true return says nothing —
// callers must still verify exactly. With the tier disabled it always
// returns true. Used to skip exact priming cosines in the matcher.
func (m *Matrix) CanExceed(q *Query, i int, target float64) bool {
	if !m.qs.enable {
		return true
	}
	if m.quantBound(q, i)+boundMargin < target {
		quantFiltered.Add(1)
		return false
	}
	quantPassed.Add(1)
	return true
}

// quantBound returns a conservative upper bound on Cosine(q, i) computed
// entirely from the int8 sketches: integer dot product, dequantization slack,
// and the off-span residual term. It is ≥ the float64 sketch bound (up to
// float rounding far inside boundMargin), so screening with it can never skip
// a row the exact sweep would keep.
func (m *Matrix) quantBound(q *Query, i int) float64 {
	row := m.qs.q8[i*SketchDim : (i+1)*SketchDim]
	var d int32
	for t := 0; t < SketchDim; t++ {
		d += int32(q.q8[t]) * int32(row[t])
	}
	return q.qscale*m.qs.scale[i]*(float64(d)+q.qslack+m.qs.slack[i]) + q.resid*m.resid[i]
}
