package embed

import (
	"fmt"
	"testing"
)

// TestMatrixCosineBitIdentical pins the SoA contract: Matrix.Cosine must
// reproduce CosineAt bit for bit, including zero-vector conventions.
func TestMatrixCosineBitIdentical(t *testing.T) {
	s := clusteredSpace(4, 12, 8)
	words := s.Words()
	vecs := make([]Vector, 0, len(words)+1)
	for _, w := range words {
		vecs = append(vecs, s.Lookup(w))
	}
	vecs = append(vecs, Vector{}) // zero row
	b := NewBasis(vecs)
	m := NewMatrix(b, vecs)
	queries := []Vector{
		s.Lookup(words[0]),
		s.Lookup(words[len(words)/2]),
		HashVector("out-of-vocab-query"),
		{}, // zero query
	}
	for qi, qv := range queries {
		q := b.Query(qv)
		for i := range vecs {
			want := CosineAt(&qv, &vecs[i])
			if got := m.Cosine(&q, i); got != want {
				t.Fatalf("query %d row %d: Matrix.Cosine=%v CosineAt=%v (must be bit-identical)", qi, i, got, want)
			}
		}
	}
}

// TestMatrixSweepsMatchBrute checks that the bound-pruned ArgMax/Max/
// EachAtLeast sweeps return exactly what unpruned sequential sweeps return,
// including earliest-index tie-breaking.
func TestMatrixSweepsMatchBrute(t *testing.T) {
	s := clusteredSpace(5, 15, 10)
	words := s.Words()
	vecs := make([]Vector, len(words))
	for i, w := range words {
		vecs[i] = s.Lookup(w)
	}
	b := NewBasis(vecs)
	m := NewMatrix(b, vecs)
	inits := []float64{-2, 0, 0.85}
	taus := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	for _, qv := range vecs {
		q := b.Query(qv)
		for _, init := range inits {
			wantI, want := -1, init
			for i := range vecs {
				if sim := CosineAt(&qv, &vecs[i]); sim > want {
					want, wantI = sim, i
				}
			}
			gotI, got := m.ArgMax(&q, init)
			if gotI != wantI || got != want {
				t.Fatalf("ArgMax(init=%v): got (%d, %v), brute (%d, %v)", init, gotI, got, wantI, want)
			}
		}
		for _, tau := range taus {
			var want []int
			for i := range vecs {
				if CosineAt(&qv, &vecs[i]) >= tau {
					want = append(want, i)
				}
			}
			var got []int
			m.EachAtLeast(&q, tau, func(i int, sim float64) {
				if wantSim := CosineAt(&qv, &vecs[i]); sim != wantSim {
					t.Fatalf("EachAtLeast sim mismatch at %d: %v != %v", i, sim, wantSim)
				}
				got = append(got, i)
			})
			if len(got) != len(want) {
				t.Fatalf("EachAtLeast(tau=%v): %d rows, brute %d", tau, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("EachAtLeast(tau=%v): row order diverged at %d: %v vs %v", tau, k, got, want)
				}
			}
		}
	}
}

// TestThresholdIndexMatchesSpaceNeighbors is the embed-level equivalence
// property: the LSH-plus-bound index must return exactly Space.Neighbors —
// same words, same (bitwise) similarities, same order — across thresholds,
// for in-vocabulary, out-of-vocabulary, and zero queries.
func TestThresholdIndexMatchesSpaceNeighbors(t *testing.T) {
	s := clusteredSpace(6, 20, 15)
	idx := s.Index()
	queries := []Vector{{}}
	for _, w := range s.Words() {
		queries = append(queries, s.Lookup(w))
	}
	for i := 0; i < 10; i++ {
		queries = append(queries, HashVector(fmt.Sprintf("oov-query-%d", i)))
	}
	for _, tau := range []float64{-1, 0, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0} {
		for qi, qv := range queries {
			want := s.Neighbors(qv, tau)
			got := idx.Neighbors(qv, tau)
			if len(got) != len(want) {
				t.Fatalf("tau=%v query=%d: index returned %d neighbors, brute %d", tau, qi, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("tau=%v query=%d pos=%d: index %+v, brute %+v", tau, qi, k, got[k], want[k])
				}
			}
		}
	}
}

// TestSpaceIndexInvalidatedByAdd ensures the shared index and phrase memo
// track vocabulary mutations.
func TestSpaceIndexInvalidatedByAdd(t *testing.T) {
	s := NewSpace()
	s.Add("alpha", HashVector("alpha"))
	if got := s.Index().Len(); got != 1 {
		t.Fatalf("index over 1-word space has Len %d", got)
	}
	pv1 := s.PhraseVectorCached("alpha beta")
	s.Add("beta", HashVector("beta"))
	if got := s.Index().Len(); got != 2 {
		t.Fatalf("index not rebuilt after Add: Len %d", got)
	}
	pv2 := s.PhraseVectorCached("alpha beta")
	if pv1 == pv2 {
		t.Fatal("phrase memo not invalidated: cached vector survived vocabulary change")
	}
	if want := s.PhraseVector([]string{"alpha", "beta"}); pv2 != want {
		t.Fatal("cached phrase vector diverges from PhraseVector")
	}
}

func BenchmarkNeighborsBrute(b *testing.B) {
	s := clusteredSpace(10, 80, 73)
	q := s.Lookup("c3w7")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Neighbors(q, 0.5)
	}
}

func BenchmarkNeighborsIndexed(b *testing.B) {
	s := clusteredSpace(10, 80, 73)
	idx := s.Index()
	q := s.Lookup("c3w7")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Neighbors(q, 0.5)
	}
}
