package embed

import (
	"sort"
	"strings"
	"sync"

	"thor/internal/cow"
	"thor/internal/text"
)

// Space is a vocabulary of word vectors with similarity queries. It plays the
// role of the pre-trained embedding table: the dataset generator populates it
// with concept-clustered vocabularies, and the matcher queries it.
//
// A Space is safe for concurrent readers once construction is complete.
type Space struct {
	vecs map[string]Vector
	// stems indexes vocabulary words by Porter stem for out-of-vocabulary
	// resolution; built lazily by stemLookup under stemMu so concurrent
	// readers stay safe.
	stemMu sync.Mutex
	stems  map[string]string
	// subwordOOV controls whether Lookup falls back to stem resolution and
	// subword hashing for unknown words (on by default).
	subwordOOV bool
	// phrases memoizes PhraseVectorCached results (read-mostly: the matcher
	// and refinement stages embed the same normalized phrases millions of
	// times per pipeline). Invalidated by Add alongside the stem index.
	phrases *cow.Map[string, Vector]
	// index is the lazily built exact threshold index over the vocabulary,
	// shared by all queriers; invalidated by Add.
	idxMu sync.Mutex
	index *ThresholdIndex
}

// NewSpace returns an empty Space with subword fallback enabled.
func NewSpace() *Space {
	return &Space{
		vecs:       make(map[string]Vector),
		subwordOOV: true,
		phrases:    cow.New[string, Vector](),
	}
}

// SetSubwordFallback toggles the OOV subword fallback. Disabling it makes
// Lookup return the zero vector for unknown words, which is useful in
// ablation experiments.
func (s *Space) SetSubwordFallback(on bool) { s.subwordOOV = on }

// Add inserts (or replaces) the vector for a word. Words are stored
// lower-cased. Adding invalidates the lazy stem index, the phrase-vector
// memo, and the threshold index.
func (s *Space) Add(word string, v Vector) {
	s.vecs[strings.ToLower(word)] = v
	s.stemMu.Lock()
	s.stems = nil
	s.stemMu.Unlock()
	s.phrases.Seed(nil)
	s.idxMu.Lock()
	s.index = nil
	s.idxMu.Unlock()
}

// Len returns the vocabulary size.
func (s *Space) Len() int { return len(s.vecs) }

// Contains reports whether the word is in the stored vocabulary (ignoring
// the subword fallback).
func (s *Space) Contains(word string) bool {
	_, ok := s.vecs[strings.ToLower(word)]
	return ok
}

// Lookup returns the vector for a word. Unknown words fall back, in order,
// to (1) a stored vocabulary word sharing their Porter stem ("cancerous" →
// "cancer") and (2) subword hashing, when the fallback is enabled; otherwise
// to the zero vector.
func (s *Space) Lookup(word string) Vector {
	w := strings.ToLower(word)
	if v, ok := s.vecs[w]; ok {
		return v
	}
	if !s.subwordOOV {
		return Vector{}
	}
	if v, ok := s.stemLookup(w); ok {
		return v
	}
	return SubwordVector(w)
}

// stemLookup resolves an unknown word via the stem index (built lazily on
// first out-of-vocabulary miss).
func (s *Space) stemLookup(w string) (Vector, bool) {
	s.stemMu.Lock()
	defer s.stemMu.Unlock()
	if s.stems == nil {
		s.stems = make(map[string]string, len(s.vecs))
		// Deterministic index: among words sharing a stem, the
		// lexicographically smallest wins.
		for _, word := range s.Words() {
			st := text.Stem(word)
			if _, taken := s.stems[st]; !taken {
				s.stems[st] = word
			}
		}
	}
	if owner, ok := s.stems[text.Stem(w)]; ok {
		return s.vecs[owner], true
	}
	return Vector{}, false
}

// PhraseVector embeds a multi-word phrase as the normalized mean of its word
// vectors, the standard static-embedding composition. Empty phrases embed to
// the zero vector.
func (s *Space) PhraseVector(words []string) Vector {
	var sum Vector
	n := 0
	for _, w := range words {
		v := s.Lookup(w)
		if v.Zero() {
			continue
		}
		sum = sum.Add(v)
		n++
	}
	if n == 0 {
		return Vector{}
	}
	return sum.Normalize()
}

// PhraseVectorCached returns PhraseVector of the space-separated phrase,
// memoizing the result. The memo is read-mostly (a single atomic load on
// hits) and is invalidated whenever the vocabulary changes.
func (s *Space) PhraseVectorCached(phrase string) Vector {
	if v, ok := s.phrases.Get(phrase); ok {
		return v
	}
	v := s.PhraseVector(strings.Fields(phrase))
	s.phrases.Put(phrase, v)
	return v
}

// Similarity returns the cosine similarity between the embeddings of two
// phrases given as space-separated normalized strings.
func (s *Space) Similarity(a, b string) float64 {
	va, vb := s.PhraseVectorCached(a), s.PhraseVectorCached(b)
	return Cosine(va, vb)
}

// Neighbor is a vocabulary word with its similarity to a query.
type Neighbor struct {
	// Word is the vocabulary entry.
	Word string
	// Sim is its cosine similarity to the query.
	Sim float64
}

// Neighbors returns all vocabulary words whose cosine similarity to the
// query vector is at least tau, ordered by decreasing similarity (ties broken
// alphabetically so results are deterministic).
func (s *Space) Neighbors(query Vector, tau float64) []Neighbor {
	var out []Neighbor
	for w, v := range s.vecs {
		v := v
		if sim := CosineAt(&query, &v); sim >= tau {
			out = append(out, Neighbor{Word: w, Sim: sim})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].Word < out[j].Word
	})
	return out
}

// Index returns the exact threshold index over the current vocabulary,
// building it on first use and rebuilding after any Add. All callers share
// one instance, so the (one-time) construction cost is amortized across the
// matcher, the models, and τ-sweep experiments.
func (s *Space) Index() *ThresholdIndex {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if s.index == nil {
		s.index = NewThresholdIndex(s)
	}
	return s.index
}

// Words returns the vocabulary in sorted order. Intended for tests and
// serialization.
func (s *Space) Words() []string {
	out := make([]string, 0, len(s.vecs))
	for w := range s.vecs {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}
