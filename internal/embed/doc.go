// Package embed implements the static word-embedding substrate THOR's
// semantic matcher runs on.
//
// The paper uses spaCy's pre-trained English vectors (OntoNotes 5 +
// Wikipedia). Those are unavailable offline, so this package provides a
// deterministic synthetic embedding space with the single property the
// matcher depends on: instances of the same concept cluster together, while
// unrelated words are far apart. Vocabularies are placed around concept
// centroids by the dataset generator; unknown words fall back to subword
// (character n-gram) hash vectors so that morphologically related words
// ("cancer" / "cancerous") remain close.
package embed
