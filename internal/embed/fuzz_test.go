package embed_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"thor/internal/embed"
)

// vec1File builds a syntactically valid THORVEC1 file for the given words so
// the fuzzer starts from the happy path and mutates toward the edges.
func vec1File(words ...string) []byte {
	s := embed.NewSpace()
	for _, w := range words {
		s.Add(w, embed.HashVector(w))
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadSpace throws arbitrary bytes at the THORVEC1 parser: it must
// either return an error or a space that re-serializes and re-parses to the
// same contents — and never panic, hang, or allocate unboundedly on a
// hostile header.
func FuzzReadSpace(f *testing.F) {
	f.Add(vec1File())
	f.Add(vec1File("tumor", "tuberculosis", "acoustic"))
	f.Add([]byte("THORVEC1"))         // magic only, truncated header
	f.Add([]byte("THORVEC2\x00\x00")) // wrong version
	hostile := []byte("THORVEC1")
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(embed.Dim))
	binary.LittleEndian.PutUint32(hdr[4:8], 1<<31) // implausible word count
	f.Add(append(hostile, hdr[:]...))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := embed.ReadSpace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, werr := s.WriteTo(&out); werr != nil {
			t.Fatalf("parsed space failed to serialize: %v", werr)
		}
		s2, err := embed.ReadSpace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("roundtrip re-parse failed: %v", err)
		}
		if s.Len() != s2.Len() {
			t.Fatalf("roundtrip changed word count: %d vs %d", s.Len(), s2.Len())
		}
		wa, wb := s.Words(), s2.Words()
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("roundtrip changed word %d: %q vs %q", i, wa[i], wb[i])
			}
		}
	})
}
