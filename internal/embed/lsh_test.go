package embed

import (
	"fmt"
	"testing"
)

// clusteredSpace builds a vocabulary of tight clusters plus background
// noise, the geometry the matcher queries.
func clusteredSpace(clusters, perCluster, noise int) *Space {
	s := NewSpace()
	for c := 0; c < clusters; c++ {
		centroid := HashVector(fmt.Sprintf("lsh-test-centroid-%d", c))
		for i := 0; i < perCluster; i++ {
			w := fmt.Sprintf("c%dw%d", c, i)
			s.Add(w, Blend(centroid, HashVector("n:"+w), 0.8))
		}
	}
	for i := 0; i < noise; i++ {
		w := fmt.Sprintf("noise%d", i)
		s.Add(w, HashVector(w))
	}
	return s
}

func TestLSHRecallAtMatcherThresholds(t *testing.T) {
	s := clusteredSpace(8, 40, 400)
	idx := NewLSHIndex(s, 0, 0)
	query := s.Lookup("c3w0")
	for _, tau := range []float64{0.5, 0.7, 0.9} {
		exact := s.Neighbors(query, tau)
		approx := idx.Neighbors(query, tau)
		if len(exact) == 0 {
			t.Fatalf("tau=%v: exact search found nothing; bad fixture", tau)
		}
		// The approximate result must be a subset of the exact one...
		exactSet := map[string]bool{}
		for _, n := range exact {
			exactSet[n.Word] = true
		}
		for _, n := range approx {
			if !exactSet[n.Word] {
				t.Errorf("tau=%v: LSH returned non-neighbor %q", tau, n.Word)
			}
		}
		// ...and recover nearly all of it at these thresholds.
		recall := float64(len(approx)) / float64(len(exact))
		if recall < 0.9 {
			t.Errorf("tau=%v: LSH recall = %.2f (%d/%d)", tau, recall, len(approx), len(exact))
		}
	}
}

func TestLSHPrunesCandidates(t *testing.T) {
	s := clusteredSpace(8, 40, 800)
	idx := NewLSHIndex(s, 0, 0)
	query := s.Lookup("c0w0")
	cands := idx.Candidates(query)
	if cands >= s.Len() {
		t.Errorf("LSH scored %d of %d entries — no pruning", cands, s.Len())
	}
	if cands == 0 {
		t.Error("LSH scored nothing; query's own cluster lost")
	}
}

func TestLSHDeterministic(t *testing.T) {
	s := clusteredSpace(4, 20, 100)
	a := NewLSHIndex(s, 10, 16)
	b := NewLSHIndex(s, 10, 16)
	q := s.Lookup("c1w1")
	na, nb := a.Neighbors(q, 0.5), b.Neighbors(q, 0.5)
	if len(na) != len(nb) {
		t.Fatalf("nondeterministic index: %d vs %d", len(na), len(nb))
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Errorf("neighbor %d differs: %v vs %v", i, na[i], nb[i])
		}
	}
}

func TestLSHMoreTablesMoreRecall(t *testing.T) {
	s := clusteredSpace(8, 40, 400)
	q := s.Lookup("c2w5")
	few := len(NewLSHIndex(s, 8, 4).Neighbors(q, 0.5))
	many := len(NewLSHIndex(s, 8, 32).Neighbors(q, 0.5))
	if many < few {
		t.Errorf("more tables lost neighbors: %d -> %d", few, many)
	}
}

func TestLSHParamValidation(t *testing.T) {
	s := clusteredSpace(2, 5, 0)
	idx := NewLSHIndex(s, -1, 0)
	if idx.k != DefaultLSHBits || idx.l != DefaultLSHTables {
		t.Errorf("defaults not applied: k=%d l=%d", idx.k, idx.l)
	}
	if idx.Len() != 10 {
		t.Errorf("Len = %d", idx.Len())
	}
}

func BenchmarkNeighborsExact(b *testing.B) {
	s := clusteredSpace(10, 100, 4000)
	q := s.Lookup("c0w0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Neighbors(q, 0.7)
	}
}

func BenchmarkNeighborsLSH(b *testing.B) {
	s := clusteredSpace(10, 100, 4000)
	idx := NewLSHIndex(s, 0, 0)
	q := s.Lookup("c0w0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Neighbors(q, 0.7)
	}
}
