package embed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The on-disk vector format: a magic header, the dimensionality, the word
// count, then length-prefixed UTF-8 words each followed by Dim little-endian
// float32 components. The format is versioned through the magic string.
const vectorMagic = "THORVEC1"

// WriteTo serializes the space. Words are written in sorted order so equal
// spaces produce byte-identical files.
func (s *Space) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.WriteString(vectorMagic)); err != nil {
		return n, err
	}
	var header [8]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(Dim))
	binary.LittleEndian.PutUint32(header[4:8], uint32(len(s.vecs)))
	if err := count(bw.Write(header[:])); err != nil {
		return n, err
	}
	var buf [4]byte
	for _, word := range s.Words() {
		binary.LittleEndian.PutUint32(buf[:], uint32(len(word)))
		if err := count(bw.Write(buf[:])); err != nil {
			return n, err
		}
		if err := count(bw.WriteString(word)); err != nil {
			return n, err
		}
		vec := s.vecs[word]
		for _, x := range vec {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(x))
			if err := count(bw.Write(buf[:])); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadSpace parses a space previously produced by WriteTo.
func ReadSpace(r io.Reader) (*Space, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(vectorMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("embed: read magic: %w", err)
	}
	if string(magic) != vectorMagic {
		return nil, fmt.Errorf("embed: not a %s file (got %q)", vectorMagic, magic)
	}
	var header [8]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return nil, fmt.Errorf("embed: read header: %w", err)
	}
	dim := binary.LittleEndian.Uint32(header[0:4])
	if dim != Dim {
		return nil, fmt.Errorf("embed: file has dimension %d, this build uses %d", dim, Dim)
	}
	total := binary.LittleEndian.Uint32(header[4:8])
	const maxWords = 1 << 24
	if total > maxWords {
		return nil, fmt.Errorf("embed: implausible word count %d", total)
	}
	s := NewSpace()
	var buf [4]byte
	for i := uint32(0); i < total; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("embed: word %d length: %w", i, err)
		}
		wlen := binary.LittleEndian.Uint32(buf[:])
		if wlen == 0 || wlen > 1<<12 {
			return nil, fmt.Errorf("embed: word %d has implausible length %d", i, wlen)
		}
		word := make([]byte, wlen)
		if _, err := io.ReadFull(br, word); err != nil {
			return nil, fmt.Errorf("embed: word %d bytes: %w", i, err)
		}
		var vec Vector
		for d := 0; d < Dim; d++ {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("embed: word %q component %d: %w", word, d, err)
			}
			vec[d] = math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))
		}
		s.vecs[string(word)] = vec
	}
	return s, nil
}
