package embed

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHashVectorDeterministic(t *testing.T) {
	a, b := HashVector("tumor"), HashVector("tumor")
	if a != b {
		t.Error("HashVector not deterministic")
	}
	c := HashVector("lungs")
	if a == c {
		t.Error("distinct words hashed to identical vectors")
	}
}

func TestHashVectorUnit(t *testing.T) {
	for _, w := range []string{"a", "tumor", "acoustic neuroma", ""} {
		n := HashVector(w).Norm()
		if math.Abs(n-1) > 1e-5 {
			t.Errorf("HashVector(%q).Norm() = %v, want 1", w, n)
		}
	}
}

func TestHashVectorNearOrthogonal(t *testing.T) {
	// Random unrelated words should have low |cosine|.
	words := []string{"alpha", "brick", "cloud", "delta", "ember", "frost"}
	for i := 0; i < len(words); i++ {
		for j := i + 1; j < len(words); j++ {
			c := Cosine(HashVector(words[i]), HashVector(words[j]))
			if math.Abs(c) > 0.5 {
				t.Errorf("cosine(%q,%q) = %v, expected near-orthogonal", words[i], words[j], c)
			}
		}
	}
}

func TestSubwordVectorMorphology(t *testing.T) {
	related := Cosine(SubwordVector("cancer"), SubwordVector("cancerous"))
	unrelated := Cosine(SubwordVector("cancer"), SubwordVector("keyboard"))
	if related <= unrelated {
		t.Errorf("subword similarity: related=%v should exceed unrelated=%v", related, unrelated)
	}
	if related < 0.3 {
		t.Errorf("morphologically related words too dissimilar: %v", related)
	}
}

func TestSubwordVectorEmptyAndShort(t *testing.T) {
	if !SubwordVector("").Zero() {
		t.Error("empty word should embed to zero")
	}
	if SubwordVector("a").Zero() {
		t.Error("single-letter word should still embed (padded trigram)")
	}
}

func TestCosineBounds(t *testing.T) {
	v := HashVector("x")
	if c := Cosine(v, v); math.Abs(c-1) > 1e-9 {
		t.Errorf("self-cosine = %v", c)
	}
	if c := Cosine(v, v.Scale(-1)); math.Abs(c+1) > 1e-9 {
		t.Errorf("anti-cosine = %v", c)
	}
	if c := Cosine(v, Vector{}); c != 0 {
		t.Errorf("cosine with zero vector = %v, want 0", c)
	}
}

func TestBlendTightness(t *testing.T) {
	base := HashVector("centroid")
	n1, n2 := HashVector("noise-1"), HashVector("noise-2")
	tight1, tight2 := Blend(base, n1, 0.9), Blend(base, n2, 0.9)
	loose1, loose2 := Blend(base, n1, 0.3), Blend(base, n2, 0.3)
	if Cosine(tight1, tight2) <= Cosine(loose1, loose2) {
		t.Error("higher alpha should yield tighter clusters")
	}
	if Cosine(tight1, base) < 0.8 {
		t.Errorf("tight member too far from centroid: %v", Cosine(tight1, base))
	}
}

func TestSpaceLookupAndFallback(t *testing.T) {
	s := NewSpace()
	v := HashVector("seed")
	s.Add("Brain", v)
	if got := s.Lookup("brain"); got != v {
		t.Error("Lookup should be case-insensitive")
	}
	if s.Lookup("unknownword").Zero() {
		t.Error("OOV lookup should use subword fallback")
	}
	s.SetSubwordFallback(false)
	if !s.Lookup("unknownword").Zero() {
		t.Error("OOV lookup should be zero with fallback disabled")
	}
}

func TestPhraseVectorMean(t *testing.T) {
	s := NewSpace()
	a, b := HashVector("a-vec"), HashVector("b-vec")
	s.Add("brain", a)
	s.Add("tumor", b)
	pv := s.PhraseVector([]string{"brain", "tumor"})
	want := a.Add(b).Normalize()
	if Cosine(pv, want) < 0.999 {
		t.Errorf("phrase vector not the normalized mean: cos=%v", Cosine(pv, want))
	}
	if !s.PhraseVector(nil).Zero() {
		t.Error("empty phrase should embed to zero")
	}
}

func TestNeighborsThresholdAndOrder(t *testing.T) {
	s := NewSpace()
	center := HashVector("center")
	s.Add("near1", Blend(center, HashVector("n1"), 0.95))
	s.Add("near2", Blend(center, HashVector("n2"), 0.9))
	s.Add("far", HashVector("totally-unrelated"))
	ns := s.Neighbors(center, 0.5)
	if len(ns) != 2 {
		t.Fatalf("got %d neighbors, want 2: %v", len(ns), ns)
	}
	if ns[0].Sim < ns[1].Sim {
		t.Error("neighbors not sorted by decreasing similarity")
	}
	if all := s.Neighbors(center, -1); len(all) != 3 {
		t.Errorf("tau=-1 should return whole vocabulary, got %d", len(all))
	}
}

func TestSpaceWordsSorted(t *testing.T) {
	s := NewSpace()
	for _, w := range []string{"zeta", "alpha", "mid"} {
		s.Add(w, HashVector(w))
	}
	got := s.Words()
	if len(got) != 3 || got[0] != "alpha" || got[2] != "zeta" {
		t.Errorf("Words() = %v", got)
	}
}

// Property: Normalize yields unit length (or zero), and cosine is symmetric
// and bounded.
func TestVectorProperties(t *testing.T) {
	f := func(a, b string) bool {
		va, vb := HashVector(a), HashVector(b)
		c1, c2 := Cosine(va, vb), Cosine(vb, va)
		if math.Abs(c1-c2) > 1e-9 {
			return false
		}
		if c1 < -1 || c1 > 1 {
			return false
		}
		n := va.Add(vb).Normalize().Norm()
		return n == 0 || math.Abs(n-1) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SubwordVector is deterministic and unit-length for non-empty
// words.
func TestSubwordVectorProperty(t *testing.T) {
	f := func(w string) bool {
		v1, v2 := SubwordVector(w), SubwordVector(w)
		if v1 != v2 {
			return false
		}
		if w == "" {
			return v1.Zero()
		}
		return math.Abs(v1.Norm()-1) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLookupStemFallback(t *testing.T) {
	s := NewSpace()
	v := HashVector("cancer-vec")
	s.Add("cancer", v)
	// 'cancers' is OOV but stems to 'cancer': it must resolve to the stored
	// vector rather than a subword hash.
	if got := s.Lookup("cancers"); got != v {
		t.Errorf("stem fallback failed: cos=%v", Cosine(got, v))
	}
	// Unrelated OOV words still take the subword path.
	if got := s.Lookup("keyboarding"); got == v || got.Zero() {
		t.Error("unrelated OOV should use subword hashing")
	}
	// Adding a word invalidates the index.
	v2 := HashVector("scar-vec")
	s.Add("scar", v2)
	if got := s.Lookup("scarring"); got != v2 {
		t.Error("stem index not rebuilt after Add")
	}
	// Disabled fallback: zero vector.
	s.SetSubwordFallback(false)
	if !s.Lookup("cancers").Zero() {
		t.Error("fallback disabled but stem lookup still fired")
	}
}

func TestSpaceRoundTrip(t *testing.T) {
	s := NewSpace()
	for _, w := range []string{"alpha", "beta", "gamma"} {
		s.Add(w, HashVector(w))
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip lost words: %d vs %d", got.Len(), s.Len())
	}
	for _, w := range s.Words() {
		if got.Lookup(w) != s.Lookup(w) {
			t.Errorf("vector for %q changed", w)
		}
	}
	// Byte-identical determinism.
	var buf2 bytes.Buffer
	if _, err := s.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("serialization is not deterministic")
	}
}

func TestReadSpaceErrors(t *testing.T) {
	if _, err := ReadSpace(strings.NewReader("NOTAVEC1")); err == nil {
		t.Error("bad magic should error")
	}
	if _, err := ReadSpace(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	// Truncated file: header promises one word but body is missing.
	var buf bytes.Buffer
	s := NewSpace()
	s.Add("word", HashVector("word"))
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadSpace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated file should error")
	}
}
