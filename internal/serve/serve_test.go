package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"thor/internal/embed"
	"thor/internal/obs"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/thor"
)

// testWorld builds a miniature but non-trivial serving fixture: a 4-disease
// table with labeled nulls and an embedding space whose clusters make the
// matcher generalize (the ExampleRun fixture, widened).
func testWorld() (*schema.Table, *embed.Space) {
	table := schema.NewTable(schema.NewSchema("Disease", "Anatomy", "Complication"))
	table.AddRow("Acoustic Neuroma").Add("Anatomy", "nervous system")
	table.AddRow("Tuberculosis").Add("Complication", "skin cancer")
	table.AddRow("Malaria")
	table.AddRow("Cholera").Add("Anatomy", "small intestine")

	space := embed.NewSpace()
	anatomy := embed.HashVector("ex:anatomy")
	complication := embed.HashVector("ex:complication")
	add := func(c embed.Vector, alpha float64, noise string, words ...string) {
		for _, w := range words {
			for _, part := range strings.Fields(w) {
				key := noise
				if key == "" {
					key = "ex-noise:" + part
				}
				space.Add(part, embed.Blend(c, embed.HashVector(key), alpha))
			}
		}
	}
	add(anatomy, 0.58, "", "nervous system", "brain", "nerve", "ear", "lungs",
		"small intestine", "liver", "kidneys")
	add(complication, 0.85, "ex:cancer-family", "cancer", "cancerous", "non-cancerous", "tumor")
	return table, space
}

// worldDocs are deterministic request payloads over the fixture; each entry
// produces at least one entity on its own.
var worldDocs = []Document{
	{Name: "an", DefaultSubject: "Acoustic Neuroma",
		Text: "An Acoustic Neuroma is a slow-growing non-cancerous brain tumor."},
	{Name: "tb", DefaultSubject: "Tuberculosis",
		Text: "Tuberculosis generally damages the lungs of the patient."},
	{Name: "mal", DefaultSubject: "Malaria",
		Text: "Malaria parasites travel to the liver and can reach the brain."},
	{Name: "cho", DefaultSubject: "Cholera",
		Text: "Cholera infects the small intestine and may harm the kidneys."},
}

// segmentDocs converts wire documents to pipeline documents the way the
// handler does.
func segmentDocs(in []Document) []segment.Document {
	out := make([]segment.Document, len(in))
	for i, d := range in {
		name := d.Name
		if name == "" {
			name = fmt.Sprintf("doc-%d", i)
		}
		out[i] = segment.Document{Name: name, DefaultSubject: d.DefaultSubject, Text: d.Text}
	}
	return out
}

// singleShot runs the reference single-request pipeline the serving results
// must be bit-identical to.
func singleShot(t *testing.T, opts Options, docs []Document) *thor.Result {
	t.Helper()
	res, err := thor.RunContext(context.Background(), opts.Table, opts.Space, segmentDocs(docs),
		thor.Config{
			Tau:                opts.Tau,
			Knowledge:          opts.Knowledge,
			Lexicon:            opts.Lexicon,
			MaxFailureFraction: 1,
			FaultHook:          opts.FaultHook,
		})
	if err != nil {
		t.Fatalf("single-shot run: %v", err)
	}
	return res
}

// postJSON POSTs body as JSON and returns status plus raw response bytes.
func postJSON(t *testing.T, client *http.Client, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, raw, resp.Header
}

// decodeResponse unmarshals a 200 payload.
func decodeResponse(t *testing.T, raw []byte) Response {
	t.Helper()
	var r Response
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("decode response: %v (%s)", err, raw)
	}
	return r
}

// decodeError unmarshals an error envelope.
func decodeError(t *testing.T, raw []byte) ErrorBody {
	t.Helper()
	var e ErrorBody
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("decode error envelope: %v (%s)", err, raw)
	}
	return e
}

// waitFor polls cond until it is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// holdBatches builds a batch-start hook that signals entry and then blocks
// until release is called. entered is buffered so later (unheld) batches
// never block on it; release is idempotent and safe to defer.
func holdBatches() (hook func(), entered chan struct{}, release func()) {
	hold := make(chan struct{})
	entered = make(chan struct{}, 64)
	var once sync.Once
	release = func() { once.Do(func() { close(hold) }) }
	hook = func() {
		entered <- struct{}{}
		<-hold
	}
	return hook, entered, release
}

// waitEnter blocks until the coalescer enters a batch (the hook fired).
func waitEnter(t *testing.T, entered <-chan struct{}) {
	t.Helper()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a batch to start")
	}
}

// assertBitIdentical compares one serving response with the single-shot
// reference run over the same documents. base is the pristine pre-fill table
// (a fresh clone is filled to recompute the reference assignments).
func assertBitIdentical(t *testing.T, label string, got Response, ref *thor.Result, base *schema.Table, fill bool) {
	t.Helper()
	wantEnts := wireEntities(ref.Entities)
	if len(wantEnts) != 0 || len(got.Entities) != 0 {
		if !reflect.DeepEqual(got.Entities, wantEnts) {
			t.Errorf("%s: entities diverge from single-shot run\n got: %+v\nwant: %+v", label, got.Entities, wantEnts)
		}
	}
	if fill {
		want := thor.Fill(base.Clone(), ref.Entities)
		if !reflect.DeepEqual(got.Assignments, want) && !(len(got.Assignments) == 0 && len(want) == 0) {
			t.Errorf("%s: assignments diverge\n got: %+v\nwant: %+v", label, got.Assignments, want)
		}
		if got.Stats.Filled != ref.Stats.Filled {
			t.Errorf("%s: filled %d, single-shot %d", label, got.Stats.Filled, ref.Stats.Filled)
		}
	} else if len(got.Assignments) != 0 {
		t.Errorf("%s: extract response carries assignments", label)
	}
	if got.Stats.Sentences != ref.Stats.Sentences ||
		got.Stats.Phrases != ref.Stats.Phrases ||
		got.Stats.Candidates != ref.Stats.Candidates ||
		got.Stats.Entities != ref.Stats.Entities {
		t.Errorf("%s: counters diverge: got %+v, single-shot %+v", label, got.Stats, ref.Stats)
	}
}

// startEngine builds a hooked engine plus an httptest server around it.
func startEngine(t *testing.T, opts Options, hook func()) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Table == nil {
		opts.Table, opts.Space = testWorld()
	}
	if opts.Tau == 0 {
		opts.Tau = 0.6
	}
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	s, err := newServer(opts, hook)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// TestFillBitIdenticalAcrossBatch coalesces several concurrent requests
// into one pipeline run and asserts every demultiplexed response is
// bit-identical to a single-shot run over just that request's documents.
func TestFillBitIdenticalAcrossBatch(t *testing.T) {
	hook, entered, release := holdBatches()
	defer release()
	reg := obs.NewRegistry()
	s, ts := startEngine(t, Options{BatchMax: 64, BatchWindow: 0, QueueDepth: 64, Metrics: reg}, hook)

	// Request 0 occupies the coalescer (held at the hook); requests 1..3
	// queue behind it and must land in one shared batch.
	requests := [][]Document{
		{worldDocs[0]},
		{worldDocs[1], worldDocs[2]},
		{worldDocs[3]},
		{worldDocs[0], worldDocs[3]},
	}
	type reply struct {
		idx    int
		status int
		raw    []byte
	}
	replies := make(chan reply, len(requests))
	var wg sync.WaitGroup
	post := func(i int) {
		defer wg.Done()
		status, raw, _ := postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: requests[i]})
		replies <- reply{i, status, raw}
	}
	wg.Add(1)
	go post(0)
	waitEnter(t, entered)
	for i := 1; i < len(requests); i++ {
		wg.Add(1)
		go post(i)
	}
	// The held request is still counted in the gauge (its decrement happens
	// once its batch resumes), so held + queued = all requests.
	waitFor(t, "requests queued", func() bool { return s.ins.queueDepth.Value() == int64(len(requests)) })
	release()
	wg.Wait()
	close(replies)

	batchedDocs := 0
	for _, r := range requests[1:] {
		batchedDocs += len(r)
	}
	for rep := range replies {
		if rep.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", rep.idx, rep.status, rep.raw)
		}
		resp := decodeResponse(t, rep.raw)
		ref := singleShot(t, s.opts, requests[rep.idx])
		assertBitIdentical(t, fmt.Sprintf("request %d", rep.idx), resp, ref, s.opts.Table, true)
		if rep.idx > 0 && resp.Stats.BatchDocs != batchedDocs {
			t.Errorf("request %d: batch_docs %d, want %d (coalesced)", rep.idx, resp.Stats.BatchDocs, batchedDocs)
		}
		if resp.Stats.Completed != len(requests[rep.idx]) {
			t.Errorf("request %d: completed %d of %d", rep.idx, resp.Stats.Completed, len(requests[rep.idx]))
		}
	}
	if got := reg.Counter("serve.batches").Value(); got != 2 {
		t.Errorf("batches = %d, want 2 (one held, one coalesced)", got)
	}
	// The response must carry real work for the fixture.
	ref := singleShot(t, s.opts, requests[1])
	if ref.Stats.Entities == 0 || ref.Stats.Filled == 0 {
		t.Fatalf("fixture produces no entities/fills; test is vacuous: %+v", ref.Stats)
	}
}

// TestExtractOmitsFill asserts /v1/extract returns entities but never
// assignments, again bit-identical to a single-shot run.
func TestExtractOmitsFill(t *testing.T) {
	s, ts := startEngine(t, Options{BatchWindow: 0}, nil)
	status, raw, _ := postJSON(t, ts.Client(), ts.URL+"/v1/extract", Request{Documents: []Document{worldDocs[0]}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	resp := decodeResponse(t, raw)
	ref := singleShot(t, s.opts, []Document{worldDocs[0]})
	assertBitIdentical(t, "extract", resp, ref, s.opts.Table, false)
	if resp.Stats.Filled != 0 {
		t.Errorf("extract filled = %d, want 0", resp.Stats.Filled)
	}
}

// TestLoadShedding fills the bounded queue while the coalescer is held and
// asserts the next request is shed with 503 + Retry-After + the overloaded
// error envelope — and that shedding never disturbs queued requests.
func TestLoadShedding(t *testing.T) {
	hook, entered, release := holdBatches()
	defer release()
	reg := obs.NewRegistry()
	s, ts := startEngine(t, Options{BatchMax: 1, BatchWindow: 0, QueueDepth: 2, Metrics: reg}, hook)

	var wg sync.WaitGroup
	statuses := make([]int, 3)
	fire := func(i int) {
		defer wg.Done()
		statuses[i], _, _ = postJSON(t, ts.Client(), ts.URL+"/v1/fill",
			Request{Documents: []Document{worldDocs[i%len(worldDocs)]}})
	}
	wg.Add(1)
	go fire(0) // occupies the held batch
	waitEnter(t, entered)
	wg.Add(2)
	go fire(1)
	go fire(2)
	waitFor(t, "queue full", func() bool { return s.ins.queueDepth.Value() == 3 }) // 1 held + 2 queued

	status, raw, hdr := postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: []Document{worldDocs[3]}})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503: %s", status, raw)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if env := decodeError(t, raw); env.Error.Code != CodeOverloaded {
		t.Errorf("shed code = %q, want %q", env.Error.Code, CodeOverloaded)
	}
	if reg.Counter("serve.shed").Value() != 1 {
		t.Errorf("serve.shed = %d, want 1", reg.Counter("serve.shed").Value())
	}
	release()
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Errorf("queued request %d: status %d, want 200", i, st)
		}
	}
}

// TestCancelWhileQueued cancels a request that is sitting in the admission
// queue and asserts the coalescer skips it without disturbing its would-be
// batchmates.
func TestCancelWhileQueued(t *testing.T) {
	hook, entered, release := holdBatches()
	defer release()
	reg := obs.NewRegistry()
	s, ts := startEngine(t, Options{BatchMax: 1, BatchWindow: 0, QueueDepth: 8, Metrics: reg}, hook)

	var wg sync.WaitGroup
	wg.Add(1)
	var firstStatus int
	go func() {
		defer wg.Done()
		firstStatus, _, _ = postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: []Document{worldDocs[0]}})
	}()
	waitEnter(t, entered)

	// Queue a second request with a cancellable context, then abandon it.
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(Request{Documents: []Document{worldDocs[1]}})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/fill", bytes.NewReader(body))
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
			t.Errorf("cancelled request got status %d, want transport error", resp.StatusCode)
		}
	}()
	waitFor(t, "second request queued", func() bool { return s.ins.queueDepth.Value() == 2 }) // 1 held + 1 queued
	cancel()
	waitFor(t, "handler observed cancellation", func() bool { return reg.Counter("serve.canceled").Value() >= 1 })
	release()
	wg.Wait()
	if firstStatus != http.StatusOK {
		t.Errorf("first request status = %d, want 200", firstStatus)
	}
	waitFor(t, "queue drained", func() bool { return s.ins.queueDepth.Value() == 0 })

	// The server keeps serving after the cancellation.
	status, raw, _ := postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: []Document{worldDocs[2]}})
	if status != http.StatusOK {
		t.Errorf("post-cancel request status = %d: %s", status, raw)
	}
}

// TestPartialQuarantine poisons one document of one request inside a shared
// batch and asserts (a) the poisoned request still gets 200 with its
// healthy documents' results plus a quarantine record, and (b) its
// batchmate is untouched and bit-identical to a clean single-shot run.
func TestPartialQuarantine(t *testing.T) {
	hook, entered, release := holdBatches()
	defer release()
	table, space := testWorld()
	poison := errors.New("injected segment fault")
	opts := Options{
		Table: table, Space: space, Tau: 0.6,
		BatchMax: 64, BatchWindow: 0, QueueDepth: 8,
		// Metrics are required here: the queue-depth gauge is the test's
		// synchronization point, and without a registry it is a no-op.
		Metrics: obs.NewRegistry(),
		FaultHook: func(doc string, stage thor.Stage) error {
			if doc == "poison" && stage == thor.StageSegment {
				return poison
			}
			return nil
		},
	}
	s, ts := startEngine(t, opts, hook)

	reqA := []Document{worldDocs[0], {Name: "poison", DefaultSubject: "Malaria", Text: "Malaria harms the brain."}, worldDocs[2]}
	reqB := []Document{worldDocs[1]}

	type result struct {
		status int
		raw    []byte
	}
	results := make(map[string]result)
	var mu sync.Mutex
	var wg sync.WaitGroup
	post := func(name string, docs []Document) {
		defer wg.Done()
		status, raw, _ := postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: docs})
		mu.Lock()
		results[name] = result{status, raw}
		mu.Unlock()
	}
	// A dummy request occupies the held batch so A and B provably share
	// the next one.
	wg.Add(1)
	go post("dummy", []Document{worldDocs[3]})
	waitEnter(t, entered)
	wg.Add(2)
	go post("A", reqA)
	go post("B", reqB)
	waitFor(t, "A and B queued", func() bool { return s.ins.queueDepth.Value() == 3 }) // 1 held + 2 queued
	release()
	wg.Wait()

	for name, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %s: status %d: %s", name, r.status, r.raw)
		}
	}
	respA := decodeResponse(t, results["A"].raw)
	if len(respA.Stats.Quarantined) != 1 {
		t.Fatalf("A quarantined = %+v, want exactly the poisoned doc", respA.Stats.Quarantined)
	}
	q := respA.Stats.Quarantined[0]
	if q.Doc != "poison" || q.Index != 1 || q.Stage != string(thor.StageSegment) || !strings.Contains(q.Error, "injected") {
		t.Errorf("quarantine record = %+v", q)
	}
	if respA.Stats.Completed != 2 {
		t.Errorf("A completed = %d, want 2", respA.Stats.Completed)
	}
	// A's healthy documents match a single-shot run (which quarantines the
	// same poisoned doc under the same hook).
	refA := singleShot(t, s.opts, reqA)
	assertBitIdentical(t, "A", respA, refA, s.opts.Table, true)
	// B is untouched by its batchmate's fault.
	refB := singleShot(t, s.opts, reqB)
	assertBitIdentical(t, "B", decodeResponse(t, results["B"].raw), refB, s.opts.Table, true)
}

// TestDrainDuringInflight starts a graceful shutdown while one batch is in
// flight and another request is queued: both must complete with 200, new
// requests must be shed as draining, readyz must flip, and Shutdown must
// return cleanly with the dispatcher goroutine gone.
func TestDrainDuringInflight(t *testing.T) {
	hook, entered, release := holdBatches()
	defer release()
	s, ts := startEngine(t, Options{BatchMax: 1, BatchWindow: 0, QueueDepth: 8, Metrics: obs.NewRegistry()}, hook)

	var wg sync.WaitGroup
	statuses := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, _ = postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: []Document{worldDocs[i]}})
		}(i)
		if i == 0 {
			waitEnter(t, entered)
		}
	}
	waitFor(t, "second request queued", func() bool { return s.ins.queueDepth.Value() == 2 }) // 1 held + 1 queued

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- s.Shutdown(ctx)
	}()
	waitFor(t, "draining flag", func() bool {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.draining
	})

	// readyz flips; new work is shed as draining.
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	status, raw, _ := postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: []Document{worldDocs[3]}})
	if status != http.StatusServiceUnavailable {
		t.Errorf("request during drain = %d, want 503", status)
	}
	if env := decodeError(t, raw); env.Error.Code != CodeDraining {
		t.Errorf("drain code = %q, want %q", env.Error.Code, CodeDraining)
	}

	release()
	if err := <-drainErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Errorf("in-flight request %d: status %d, want 200 (drain must finish queued work)", i, st)
		}
	}
	select {
	case <-s.done:
	default:
		t.Error("dispatcher goroutine still running after Shutdown returned")
	}
	// healthz stays alive through and after the drain.
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after drain = %d, want 200", resp.StatusCode)
	}
}

// TestShutdownNoGoroutineLeak runs a full serve lifecycle and asserts the
// goroutine count returns to its baseline.
func TestShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		table, space := testWorld()
		s, err := NewServer(Options{Table: table, Space: space, Tau: 0.6, BatchWindow: 0})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		ts := httptest.NewServer(s)
		for i := 0; i < 3; i++ {
			status, raw, _ := postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: []Document{worldDocs[i]}})
			if status != http.StatusOK {
				t.Fatalf("request %d: %d %s", i, status, raw)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		ts.CloseClientConnections()
		ts.Close()
	}()
	waitFor(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

// TestEmptyBatchWindow asserts a zero window dispatches a lone request
// immediately as its own batch.
func TestEmptyBatchWindow(t *testing.T) {
	s, ts := startEngine(t, Options{BatchWindow: 0}, nil)
	start := time.Now()
	status, raw, _ := postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: []Document{worldDocs[0]}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	resp := decodeResponse(t, raw)
	if resp.Stats.BatchDocs != 1 {
		t.Errorf("batch_docs = %d, want 1 (no coalescing partner)", resp.Stats.BatchDocs)
	}
	_ = s
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("zero-window request took %v; the coalescer must not wait", elapsed)
	}
}

// TestBatchMaxSplitsBatches queues three one-doc requests behind a held
// batch with BatchMax=2 and asserts they split 2+1.
func TestBatchMaxSplitsBatches(t *testing.T) {
	hook, entered, release := holdBatches()
	defer release()
	reg := obs.NewRegistry()
	s, ts := startEngine(t, Options{BatchMax: 2, BatchWindow: 0, QueueDepth: 8, Metrics: reg}, hook)
	var wg sync.WaitGroup
	sizes := make([]int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, raw, _ := postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: []Document{worldDocs[i]}})
			if status != http.StatusOK {
				t.Errorf("request %d: status %d", i, status)
				return
			}
			sizes[i] = decodeResponse(t, raw).Stats.BatchDocs
		}(i)
		if i == 0 {
			waitEnter(t, entered)
		}
	}
	waitFor(t, "three queued", func() bool { return s.ins.queueDepth.Value() == 4 }) // 1 held + 3 queued
	release()
	wg.Wait()
	if got := reg.Counter("serve.batches").Value(); got != 3 {
		t.Errorf("batches = %d, want 3 (1 held + 2 split by BatchMax)", got)
	}
	twos, ones := 0, 0
	for _, sz := range sizes[1:] {
		switch sz {
		case 2:
			twos++
		case 1:
			ones++
		}
	}
	if twos != 2 || ones != 1 {
		t.Errorf("batch sizes of queued requests = %v, want one batch of 2 and one of 1", sizes[1:])
	}
}

// TestRequestValidation covers the 4xx surface: wrong method, bad JSON, no
// documents, too many documents, negative timeout.
func TestRequestValidation(t *testing.T) {
	s, ts := startEngine(t, Options{BatchWindow: 0, MaxDocsPerRequest: 2}, nil)
	_ = s
	get, err := ts.Client().Get(ts.URL + "/v1/fill")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/fill = %d, want 405", get.StatusCode)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/fill", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || decodeError(t, raw).Error.Code != CodeInvalidRequest {
		t.Errorf("bad JSON = %d %s, want 400 invalid_request", resp.StatusCode, raw)
	}

	status, raw, _ := postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{})
	if status != http.StatusBadRequest || decodeError(t, raw).Error.Code != CodeInvalidRequest {
		t.Errorf("no documents = %d %s, want 400", status, raw)
	}

	status, raw, _ = postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: []Document{worldDocs[0], worldDocs[1], worldDocs[2]}})
	if status != http.StatusBadRequest {
		t.Errorf("too many documents = %d %s, want 400", status, raw)
	}

	status, raw, _ = postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: []Document{worldDocs[0]}, DocTimeoutMS: -5})
	if status != http.StatusBadRequest {
		t.Errorf("negative timeout = %d %s, want 400", status, raw)
	}
}

// TestHardClose asserts Close answers queued requests with the
// server_closed envelope instead of leaving them hanging.
func TestHardClose(t *testing.T) {
	hook, entered, release := holdBatches()
	defer release()
	s, ts := startEngine(t, Options{BatchMax: 1, BatchWindow: 0, QueueDepth: 8, Metrics: obs.NewRegistry()}, hook)
	var wg sync.WaitGroup
	statuses := make([]int, 2)
	codes := make([]string, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, raw, _ := postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: []Document{worldDocs[i]}})
			statuses[i] = status
			if status != http.StatusOK {
				codes[i] = decodeError(t, raw).Error.Code
			}
		}(i)
		if i == 0 {
			waitEnter(t, entered)
		}
	}
	waitFor(t, "second queued", func() bool { return s.ins.queueDepth.Value() == 2 }) // 1 held + 1 queued
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	// Close cancels the base context; the held batch wakes when released.
	release()
	<-closed
	wg.Wait()
	// The queued request must have been answered with server_closed; the
	// in-flight one either completed (its run had already passed the
	// cancellation checkpoints) or was closed too.
	if statuses[1] != http.StatusServiceUnavailable || codes[1] != CodeClosed {
		t.Errorf("queued request after Close: status %d code %q, want 503 %q", statuses[1], codes[1], CodeClosed)
	}
	if statuses[0] != http.StatusOK && codes[0] != CodeClosed {
		t.Errorf("in-flight request after Close: status %d code %q", statuses[0], codes[0])
	}
}
