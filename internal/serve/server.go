package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"thor/internal/embed"
	"thor/internal/matcher"
	"thor/internal/obs"
	"thor/internal/pos"
	"thor/internal/schema"
	"thor/internal/segment"
	"thor/internal/tablestore"
	"thor/internal/thor"
)

// Options configure a Server. Table and Space are required; every other
// field has a serving-grade default.
type Options struct {
	// Table is the initial integrated table requests fill slots in. It seeds
	// the server's live-table store (version TableVersion, default 1); later
	// versions arrive through POST /v1/table mutations, each an atomic
	// copy-on-write swap that never blocks in-flight requests. The server
	// owns the table after construction.
	Table *schema.Table
	// TableVersion is the initial live-table version; zero means 1. A daemon
	// restoring a persisted snapshot passes the version it was saved with so
	// fleet version gauges stay comparable across restarts.
	TableVersion uint64
	// OnTableSwap, when set, runs synchronously after every live-table swap
	// with the new version and its table — cmd/thord persists the binary
	// snapshot here. The table is shared and must be treated as read-only.
	OnTableSwap func(version uint64, table *schema.Table)
	// Knowledge optionally fine-tunes the matcher from a different table
	// than the fill target (thor.Config.Knowledge, the paper's evaluation
	// setting). Nil fine-tunes on Table itself.
	Knowledge *schema.Table
	// Space is the embedding space, loaded once at startup.
	Space *embed.Space
	// Tau is the similarity threshold τ ∈ [0,1] every request is served
	// with. Per-request τ would fragment the warm caches, so it is fixed
	// per server.
	Tau float64
	// Lexicon optionally extends the POS tagger with domain words.
	Lexicon map[string]pos.Tag
	// Workers is the pipeline worker count per batch. Zero defaults to
	// GOMAXPROCS.
	Workers int
	// BatchMax is the maximum number of documents coalesced into one
	// pipeline run. Zero defaults to 16.
	BatchMax int
	// BatchWindow is how long the coalescer waits after a batch's first
	// request for more to arrive. Zero dispatches immediately with
	// whatever is already queued (no wait); cmd/thord defaults its flag
	// to 2ms.
	BatchWindow time.Duration
	// QueueDepth bounds the admission queue in requests; a full queue
	// sheds with 503 + Retry-After. Zero defaults to 64.
	QueueDepth int
	// MaxDocsPerRequest bounds one request's document count (400 beyond
	// it). Zero defaults to BatchMax.
	MaxDocsPerRequest int
	// MaxBodyBytes bounds a request body. Zero defaults to 8 MiB.
	MaxBodyBytes int64
	// DocTimeout is the default per-document extraction deadline applied
	// when a request does not set doc_timeout_ms. Zero means none.
	DocTimeout time.Duration
	// DisableQuant turns off the matcher's int8 propose tier. Results are
	// bit-for-bit identical either way (the tier only screens candidates
	// that exact float64 verification would reject); the switch exists for
	// A/B latency comparison and debugging.
	DisableQuant bool
	// Metrics, when set, receives the serving metrics (serve.* counters,
	// gauges and histograms) in addition to the pipeline's thor.* ones.
	Metrics *obs.Registry
	// Tracer, when set, records http.fill/http.extract and batch spans in
	// addition to the pipeline's.
	Tracer *obs.Tracer
	// FaultHook is threaded into every batch's thor.Config.FaultHook: a
	// chaos-testing seam for injecting per-document faults into a live
	// server (see internal/chaos). Nil in production.
	FaultHook func(doc string, stage thor.Stage) error
	// Recorder, when set (alongside Tracer), is the tail-sampling flight
	// recorder: it is attached to Tracer at construction, retains slow,
	// errored, shed and quarantined request traces, and is served at
	// /debug/traces and /debug/traces/{id}.
	Recorder *obs.Recorder
	// SLO, when set, receives one judged observation per request (stream
	// "fill" or "extract") and per-stage latency tracking from every batch;
	// /readyz reports degraded (503) while any judged stream's burn rate
	// breaches its threshold. It also feeds the /metrics exposition's SLO
	// families.
	SLO *obs.SLO
	// Profiler, when set, is served at /debug/profiles and
	// /debug/profiles/{id}. The caller owns its capture loop (obs.Profiler.Run),
	// typically wired to SLO.Degraded — see cmd/thord.
	Profiler *obs.Profiler
	// Journal, when set, records the server's state transitions — table
	// swaps, version drains, drain begin/end — and is served at
	// /debug/events. Appends are allocation-free, so the hooks may sit on
	// serving-path edges without regressing the zero-alloc fill path.
	Journal *obs.Journal
	// Logger, when set, receives structured serving logs correlated by
	// trace_id, batch_id and doc_id (see obs.Log* field names).
	Logger *slog.Logger
	// ShardID optionally names the shard this server holds in a
	// domain-partitioned tier. When set, /readyz and /healthz report it and
	// every /v1/* response carries an X-Thor-Shard header, so a router (or
	// an operator with curl) can verify a backend actually serves the shard
	// the topology says it does.
	ShardID string
}

// withDefaults resolves the zero values documented on Options.
func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.BatchMax == 0 {
		o.BatchMax = 16
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.MaxDocsPerRequest == 0 {
		o.MaxDocsPerRequest = o.BatchMax
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 8 << 20
	}
	return o
}

// ErrClosed is reported to requests interrupted by a hard Close.
var ErrClosed = errors.New("serve: server closed")

// instruments caches the serve-level metrics, resolved once so the request
// path performs no registry lookups. All fields are valid no-ops when the
// server runs without a registry.
type instruments struct {
	fillReqs    *obs.Counter
	extractReqs *obs.Counter
	shed        *obs.Counter
	canceled    *obs.Counter
	batches     *obs.Counter
	batchDocs   *obs.Counter
	queueDepth  *obs.Gauge
	queueWait   *obs.Histogram
	batchRun    *obs.Histogram
	fillLat     *obs.Histogram
	extractLat  *obs.Histogram
	// requestFills counts cells filled per concept across /v1/fill
	// responses ("thor.sparsity.request_fills{concept=…}") — the serving
	// counterpart of the pipeline's per-run sparsity telemetry, which a
	// batched server never sees per request. Keyed by concept; nil without
	// a registry.
	requestFills map[schema.Concept]*obs.Counter

	// Live-table telemetry (the thor.table.* families).
	tableVersion     *obs.Gauge     // current version
	tableMutations   *obs.Counter   // accepted POST /v1/table mutations (no-ops included)
	tableSwaps       *obs.Counter   // mutations that produced a new version
	tableSwapLat     *obs.Histogram // full mutation wall clock (validate→swap)
	tableBuildLat    *obs.Histogram // successor pipeline build (incremental fine-tune)
	tableInvalidated *obs.Counter   // concepts whose fine-tune state rebuilt, summed over swaps
	tableRetained    *obs.Counter   // concepts whose warm caches survived, summed over swaps
	tableRowsAdded   *obs.Counter   // rows added across swaps
	tableValsAdded   *obs.Counter   // cell values added across swaps
	tableDrains      *obs.Counter   // superseded versions whose last reader finished
	tableReaders     *obs.Gauge     // snapshot references currently held (event-sampled)
	tableLive        *obs.Gauge     // undrained versions, current included (event-sampled)
}

func newInstruments(reg *obs.Registry, table *schema.Table) instruments {
	ins := instruments{
		fillReqs:    reg.Counter("serve.fill.requests"),
		extractReqs: reg.Counter("serve.extract.requests"),
		shed:        reg.Counter("serve.shed"),
		canceled:    reg.Counter("serve.canceled"),
		batches:     reg.Counter("serve.batches"),
		batchDocs:   reg.Counter("serve.batch.docs"),
		queueDepth:  reg.Gauge("serve.queue.depth"),
		queueWait:   reg.Histogram("serve.queue.wait"),
		batchRun:    reg.Histogram("serve.batch.run"),
		fillLat:     reg.Histogram("serve.http.fill"),
		extractLat:  reg.Histogram("serve.http.extract"),

		tableVersion:     reg.Gauge("thor.table.version"),
		tableMutations:   reg.Counter("thor.table.mutations"),
		tableSwaps:       reg.Counter("thor.table.swaps"),
		tableSwapLat:     reg.Histogram("thor.table.swap"),
		tableBuildLat:    reg.Histogram("thor.table.build"),
		tableInvalidated: reg.Counter("thor.table.concepts_invalidated"),
		tableRetained:    reg.Counter("thor.table.concepts_retained"),
		tableRowsAdded:   reg.Counter("thor.table.rows_added"),
		tableValsAdded:   reg.Counter("thor.table.values_added"),
		tableDrains:      reg.Counter("thor.table.drains"),
		tableReaders:     reg.Gauge("thor.table.readers"),
		tableLive:        reg.Gauge("thor.table.live_snapshots"),
	}
	if reg != nil && table != nil {
		ins.requestFills = make(map[schema.Concept]*obs.Counter)
		for _, c := range table.Schema.NonSubject() {
			ins.requestFills[c] = reg.Counter(obs.LabeledName(
				"thor.sparsity.request_fills", "concept", string(c)))
		}
	}
	return ins
}

// Server is the online slot-filling engine: an http.Handler whose /v1/fill
// and /v1/extract endpoints coalesce concurrent requests into micro-batched
// pipeline runs over state loaded once at construction.
type Server struct {
	opts  Options
	tune  *matcher.Cache
	parse *thor.ParseCache
	ins   instruments

	// store is the live-table store: every snapshot's payload is that
	// version's persistent pipeline, constructed when the version is created
	// (initial warmup, then each mutation's build step) so the request path
	// never pays fine-tune. Requests pin the current snapshot at admission
	// and compute against it end to end; per-batch knobs (document timeout,
	// batch-scoped logger) travel via thor.RunOptions. Pipelines run with
	// SkipFill — batches only extract; each request's fill is computed
	// read-only against its admitted snapshot's table at response time.
	// Successive versions share s.tune and s.parse, so a swap re-fine-tunes
	// only the concepts the mutation's fingerprint diff invalidated.
	store *tablestore.Store
	// sc is the dispatcher's batch scratch, reused across batches; only the
	// dispatcher goroutine touches it.
	sc dispatchScratch

	queue   chan *pending
	baseCtx context.Context
	cancel  context.CancelFunc
	drainCh chan struct{}
	drain1  sync.Once
	done    chan struct{}

	// mu orders enqueue attempts against the draining flag flip: handlers
	// hold the read side across check+send, Shutdown takes the write side
	// to flip, so after the flip no handler can still be mid-enqueue and
	// the dispatcher's final drain observes every queued request.
	mu       sync.RWMutex
	draining bool

	mux *http.ServeMux

	// batchSeq numbers micro-batches for batch_id log/span correlation.
	batchSeq atomic.Uint64
	// shedSeq drives the deterministic Retry-After jitter on shed responses.
	shedSeq atomic.Uint64

	// testBatchStart, when set by tests before any request is admitted,
	// runs at the head of every batch; it lets tests hold the coalescer
	// at a deterministic point (e.g. to fill the admission queue).
	testBatchStart func()
}

// NewServer validates the options, warms the matcher cache by fine-tuning
// once, starts the coalescer goroutine and returns a ready-to-serve engine.
// The returned server is ready as soon as this returns (readyz reports ok).
func NewServer(opts Options) (*Server, error) {
	return newServer(opts, nil)
}

// newServer is NewServer with a test seam: batchStart, when non-nil, is
// installed as testBatchStart before the coalescer goroutine starts, so
// tests can hold batches at a deterministic point without racing the
// dispatcher.
func newServer(opts Options, batchStart func()) (*Server, error) {
	if opts.Table == nil {
		return nil, fmt.Errorf("serve: nil table")
	}
	if opts.Space == nil {
		return nil, fmt.Errorf("serve: nil embedding space")
	}
	if opts.Tau < 0 || opts.Tau > 1 {
		return nil, fmt.Errorf("serve: tau %v outside [0,1]", opts.Tau)
	}
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		tune:    matcher.NewCache(),
		parse:   thor.NewParseCache(),
		ins:     newInstruments(opts.Metrics, opts.Table),
		queue:   make(chan *pending, opts.QueueDepth),
		baseCtx: ctx,
		cancel:  cancel,
		drainCh: make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.testBatchStart = batchStart
	if opts.Tracer != nil && opts.Recorder != nil {
		opts.Tracer.SetRecorder(opts.Recorder)
	}
	// Build the initial version's pipeline now (the store's Build hook): the
	// first request should pay queueing and extraction, not minutes of
	// cluster expansion. Every later version built by a mutation goes
	// through the same hook, inheriting s.tune/s.parse so unchanged concepts
	// stay warm.
	store, err := tablestore.New(tablestore.Options{
		Table:   opts.Table,
		Version: opts.TableVersion,
		Build: func(sn *tablestore.Snapshot) (any, error) {
			return thor.New(sn.Table, opts.Space, s.runConfig())
		},
		OnDrain: s.onTableDrain,
		OnSwap:  s.onTableSwap,
	})
	if err != nil {
		cancel()
		return nil, fmt.Errorf("serve: warmup fine-tune: %w", err)
	}
	s.store = store
	s.ins.tableVersion.Set(int64(store.Version()))
	s.refreshTableGauges()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/table", s.handleTable)
	s.mux.HandleFunc("/v1/fill", func(w http.ResponseWriter, r *http.Request) {
		s.handleRun(w, r, true)
	})
	s.mux.HandleFunc("/v1/extract", func(w http.ResponseWriter, r *http.Request) {
		s.handleRun(w, r, false)
	})
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	debug := obs.DebugHandler(obs.DebugOptions{
		Registry: opts.Metrics,
		Tracer:   opts.Tracer,
		Recorder: opts.Recorder,
		SLO:      opts.SLO,
		Profiler: opts.Profiler,
		Journal:  opts.Journal,
	})
	s.mux.Handle("/debug/", debug)
	s.mux.Handle("/metrics", debug)
	go s.dispatch()
	return s, nil
}

// runConfig is the persistent pipeline's configuration: warm caches,
// per-document results for demultiplexing, MaxFailureFraction 1 so one
// poisoned document quarantines alone instead of aborting its batchmates,
// and SkipFill because batches only extract — fills are computed read-only
// per request at response time. Per-batch knobs (document timeout, the
// batch-scoped logger) are passed through thor.RunOptions instead.
func (s *Server) runConfig() thor.Config {
	return thor.Config{
		Tau:                s.opts.Tau,
		Knowledge:          s.opts.Knowledge,
		Lexicon:            s.opts.Lexicon,
		Workers:            s.opts.Workers,
		TuneCache:          s.tune,
		ParseCache:         s.parse,
		CollectDocResults:  true,
		MaxFailureFraction: 1,
		SkipFill:           true,
		Matcher:            matcher.Config{DisableQuant: s.opts.DisableQuant},
		Metrics:            s.opts.Metrics,
		Tracer:             s.opts.Tracer,
		FaultHook:          s.opts.FaultHook,
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusBody builds a health/readiness payload, naming the shard when the
// server is part of a partitioned tier.
func (s *Server) statusBody(status string) map[string]any {
	body := map[string]any{"status": status}
	if s.opts.ShardID != "" {
		body["shard"] = s.opts.ShardID
	}
	return body
}

// handleHealthz reports process liveness: 200 as long as the process can
// answer HTTP at all, draining or not.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statusBody("ok"))
}

// handleReadyz reports readiness to accept work: 503 once draining begins
// (load balancers should stop routing here), 503 "degraded" while the SLO
// engine reports a judged stream burning its budget past threshold, 200
// otherwise. The caches are warmed synchronously in NewServer, so a
// constructed server is ready; a degraded server recovers on its own once
// the violating observations age out of the SLO window.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, s.statusBody("draining"))
		return
	}
	if st := s.opts.SLO.Status(); st.Degraded {
		body := s.statusBody("degraded")
		body["violating"] = st.Violating
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, s.statusBody("ok"))
}

// statusWriter captures the response status so the handler can classify the
// request for the SLO engine after writing it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the first status written and forwards it.
func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// retryAfter returns the Retry-After value for shed responses: 1 plus a
// deterministic jitter in [0,2] seconds derived from a mixed shed counter,
// so a synchronized herd of shed clients spreads its retries instead of
// hammering back in lockstep.
func (s *Server) retryAfter() string {
	n := s.shedSeq.Add(1)
	n = (n ^ (n >> 30)) * 0xbf58476d1ce4e5b9
	return strconv.Itoa(1 + int((n>>33)%3))
}

// handleRun is the shared fill/extract handler: decode, validate, admit,
// wait for the coalescer's answer, respond. With a tracer configured it
// opens the request's root span — continuing the caller's trace when a W3C
// traceparent header is present, minting a fresh trace ID otherwise — and
// always echoes the trace ID in the X-Trace-Id response header.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request, fill bool) {
	endpoint, reqs, lat := "extract", s.ins.extractReqs, s.ins.extractLat
	if fill {
		endpoint, reqs, lat = "fill", s.ins.fillReqs, s.ins.fillLat
	}
	start := time.Now()
	// exTrace links the latency observation to its trace as the histogram's
	// exemplar, so a p99 spike on /metrics names a stitchable trace ID.
	var exTrace obs.TraceID
	defer func() { lat.ObserveTrace(time.Since(start), exTrace) }()
	reqs.Add(1)

	sw := &statusWriter{ResponseWriter: w}
	if s.opts.ShardID != "" {
		sw.Header().Set("X-Thor-Shard", s.opts.ShardID)
	}
	defer func() {
		// A request that wrote no response (client gone mid-wait) is not
		// judged: its latency reflects the client, not the server.
		if sw.status != 0 {
			s.opts.SLO.Observe(endpoint, time.Since(start), sw.status >= http.StatusInternalServerError)
		}
	}()

	ctx := r.Context()
	var traceID string
	var root *obs.ActiveSpan
	if s.opts.Tracer != nil {
		tc, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			tc = obs.TraceContext{Trace: obs.NewTraceID()}
		}
		exTrace = tc.Trace
		traceID = tc.Trace.String()
		sw.Header().Set("X-Trace-Id", traceID)
		ctx, root = s.opts.Tracer.StartTrace(ctx, tc, "http."+endpoint,
			obs.String("method", r.Method))
		defer root.End()
	}

	if r.Method != http.MethodPost {
		sw.Header().Set("Allow", http.MethodPost)
		writeError(sw, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			endpoint+" accepts POST only", traceID)
		return
	}
	var req Request
	body := http.MaxBytesReader(sw, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(sw, http.StatusBadRequest, CodeInvalidRequest, "decode body: "+err.Error(), traceID)
		return
	}
	// Drain any trailing bytes so keep-alive connections stay reusable.
	_, _ = io.Copy(io.Discard, body)
	if len(req.Documents) == 0 {
		writeError(sw, http.StatusBadRequest, CodeInvalidRequest, "at least one document is required", traceID)
		return
	}
	if len(req.Documents) > s.opts.MaxDocsPerRequest {
		writeError(sw, http.StatusBadRequest, CodeInvalidRequest,
			fmt.Sprintf("%d documents exceed the per-request limit of %d",
				len(req.Documents), s.opts.MaxDocsPerRequest), traceID)
		return
	}
	if req.DocTimeoutMS < 0 {
		writeError(sw, http.StatusBadRequest, CodeInvalidRequest, "doc_timeout_ms is negative", traceID)
		return
	}
	nDocs := len(req.Documents)
	p := acquirePending()
	p.ctx = r.Context()
	// Pin the live-table version at admission: the whole request — batch
	// run, demux, assignments — computes against this snapshot even if
	// mutations swap in newer versions while it is in flight. The handler
	// owns the reference and releases it on exactly one of its exit paths
	// (shed, answered, abandoned).
	p.snap = s.store.Acquire()
	for i, d := range req.Documents {
		name := d.Name
		if name == "" {
			name = fmt.Sprintf("doc-%d", i)
		}
		p.docs = append(p.docs, segment.Document{Name: name, DefaultSubject: d.DefaultSubject, Text: d.Text})
	}
	p.docTimeout = s.opts.DocTimeout
	if req.DocTimeoutMS > 0 {
		p.docTimeout = time.Duration(req.DocTimeoutMS) * time.Millisecond
	}
	p.enq = time.Now()
	if refs := obs.SpanRefs(ctx); len(refs) > 0 {
		// The ref under the root span: the coalescer parents the request's
		// queue.wait and batch spans here.
		p.ref = refs[0]
	}

	// Admission control: the read lock spans check+send so a concurrent
	// Shutdown cannot flip draining between them (see Server.mu).
	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		p.snap.Release()
		releasePending(p)
		s.shedResponse(sw, root, traceID, CodeDraining, "server is draining")
		return
	}
	select {
	case s.queue <- p:
		s.mu.RUnlock()
		s.ins.queueDepth.Add(1)
	default:
		s.mu.RUnlock()
		p.snap.Release()
		releasePending(p)
		s.shedResponse(sw, root, traceID, CodeOverloaded,
			fmt.Sprintf("admission queue full (%d requests)", s.opts.QueueDepth))
		return
	}

	select {
	case out := <-p.resp:
		snap := p.snap
		releasePending(p)
		demuxStart := time.Now()
		s.respond(sw, out, snap, nDocs, fill, req.Explain, traceID, root)
		snap.Release()
		if refs := obs.SpanRefs(ctx); len(refs) > 0 {
			// The demux/fill span: merging the request's share of the batch
			// and (on /v1/fill) computing its read-only assignments.
			s.opts.Tracer.RecordSpan(refs, "demux", demuxStart, time.Since(demuxStart),
				obs.String("endpoint", endpoint))
		}
	case <-r.Context().Done():
		// The client is gone; the coalescer will drop the buffered result.
		// The pending is NOT recycled: the coalescer may still send into its
		// channel, so it is left for the collector. The snapshot reference is
		// dropped here — the snapshot object itself stays valid (immutable,
		// reachable through the pending) if the coalescer is still mid-batch;
		// only the drain telemetry counts this reader as gone.
		s.ins.canceled.Add(1)
		p.snap.Release()
	}
}

// shedResponse answers one load-shed request: 503 with a jittered
// Retry-After, the shed annotated on the trace's root span (so the flight
// recorder always retains it) and logged.
func (s *Server) shedResponse(w http.ResponseWriter, root *obs.ActiveSpan, traceID, code, message string) {
	s.ins.shed.Add(1)
	root.Annotate(obs.ReasonShed, obs.String("code", code))
	if s.opts.Logger != nil {
		s.opts.Logger.Warn("request shed", obs.LogTraceID, traceID, "code", code)
	}
	w.Header().Set("Retry-After", s.retryAfter())
	writeError(w, http.StatusServiceUnavailable, code, message, traceID)
}

// respond converts one demultiplexed batch outcome into the HTTP response.
// snap is the snapshot the request was admitted under: assignments and the
// reported table version come from it, never from a version swapped in while
// the request was in flight.
func (s *Server) respond(w http.ResponseWriter, out batchOutcome, snap *tablestore.Snapshot, nDocs int, fill, explain bool, traceID string, root *obs.ActiveSpan) {
	if out.err != nil {
		root.Annotate(obs.ReasonError, obs.String("error", out.err.Error()))
		switch {
		case errors.Is(out.err, ErrClosed) || errors.Is(out.err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, CodeClosed, "server closed before the request completed", traceID)
		default:
			writeError(w, http.StatusInternalServerError, CodeInternal, out.err.Error(), traceID)
		}
		return
	}
	for _, q := range out.quarantined {
		root.Annotate(obs.ReasonQuarantine,
			obs.String("doc", q.Doc), obs.String("stage", string(q.Stage)))
	}
	merged := thor.MergeEntities(out.docs)
	resp := Response{Entities: wireEntities(merged)}
	if fill {
		// Assignments are computed read-only against the admitted snapshot's
		// table — no per-request clone, no contention, and the same output
		// a fill over a clone of that version would produce
		// (thor.Assignments is the fill pass minus the mutation).
		if explain {
			resp.Assignments = thor.AssignmentsExplained(snap.Table, merged, s.opts.Tau)
			for _, a := range resp.Assignments {
				s.opts.Metrics.Counter("thor.fills_explained." + string(a.Concept)).Add(1)
			}
		} else {
			resp.Assignments = thor.Assignments(snap.Table, merged)
		}
		for _, a := range resp.Assignments {
			s.ins.requestFills[a.Concept].Add(1)
		}
	}
	resp.Stats = buildStats(out, nDocs, merged, len(resp.Assignments))
	resp.Stats.TableVersion = snap.Version
	writeJSON(w, http.StatusOK, resp)
}

// buildStats assembles the per-request statistics from the demultiplexed
// outcome.
func buildStats(out batchOutcome, nDocs int, merged map[string][]thor.Entity, filled int) Stats {
	st := Stats{
		Documents:   nDocs,
		Completed:   len(out.docs),
		Skipped:     out.skipped,
		Filled:      filled,
		BatchDocs:   out.batchDocs,
		QueueWaitMS: float64(out.queueWait) / float64(time.Millisecond),
		RunMS:       float64(out.runDur) / float64(time.Millisecond),
	}
	for _, es := range merged {
		st.Entities += len(es)
	}
	calls := make(map[thor.Stage]int64)
	totals := make(map[thor.Stage]time.Duration)
	for _, d := range out.docs {
		st.Sentences += d.Sentences
		st.Phrases += d.Phrases
		st.Candidates += d.Candidates
		for _, sc := range d.Stages {
			calls[sc.Stage] += sc.Calls
			totals[sc.Stage] += sc.Total
		}
	}
	for _, stage := range thor.PipelineStages {
		if calls[stage] == 0 {
			continue
		}
		st.Stages = append(st.Stages, StageCost{
			Stage:   string(stage),
			Calls:   calls[stage],
			TotalMS: float64(totals[stage]) / float64(time.Millisecond),
		})
	}
	for _, q := range out.quarantined {
		st.Quarantined = append(st.Quarantined, Quarantine{
			Doc:   q.Doc,
			Index: q.Index,
			Stage: string(q.Stage),
			Error: q.Err,
		})
	}
	return st
}

// Shutdown drains gracefully: admission stops (new requests shed with 503
// draining), every queued and in-flight request completes and is answered,
// then the coalescer goroutine exits. Returns nil once drained, or ctx's
// error if it expires first (the drain continues in the background).
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginDrain()
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops hard: admission stops, the in-flight batch is cancelled, and
// queued requests are answered with a server_closed error. Blocks until the
// coalescer goroutine has exited.
func (s *Server) Close() {
	s.beginDrain()
	s.cancel()
	<-s.done
}

// beginDrain flips the draining flag under the write lock (ordering against
// in-flight enqueues) and wakes the dispatcher's drain path.
func (s *Server) beginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.drain1.Do(func() {
		s.opts.Journal.Append(obs.JournalEvent{Kind: obs.EventDrain, Subject: "server", To: "begin"})
		close(s.drainCh)
	})
}
