package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"thor/internal/obs"
	"thor/internal/thor"
)

// tracedEngine starts an engine with the full observability stack attached.
func tracedEngine(t *testing.T, opts Options) (*Server, string, *obs.Recorder, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(obs.RecorderOptions{SlowThreshold: time.Minute})
	opts.Metrics = reg
	opts.Tracer = obs.NewTracer(1024)
	opts.Recorder = rec
	_, ts := tracedStart(t, opts)
	return nil, ts, rec, reg
}

// tracedStart is startEngine with the options already carrying the obs stack.
func tracedStart(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	s, ts := startEngine(t, opts, nil)
	return s, ts.URL
}

// postTraced POSTs one fill request carrying the given traceparent header.
func postTraced(t *testing.T, url, traceparent string, body any) (int, []byte, http.Header) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body)
	return resp.StatusCode, raw.Bytes(), resp.Header
}

// TestTraceSpanTreeAcceptance is the tentpole acceptance check: a request
// sent with a W3C traceparent yields a retrievable span tree at
// /debug/traces/{id} covering queue wait, batch, pipeline stages and demux,
// every span parented into the caller's trace.
func TestTraceSpanTreeAcceptance(t *testing.T) {
	_, base, rec, _ := tracedEngine(t, Options{BatchWindow: time.Millisecond})

	tc := obs.TraceContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}
	status, raw, hdr := postTraced(t, base+"/v1/fill", tc.Traceparent(), Request{Documents: worldDocs[:2]})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if got := hdr.Get("X-Trace-Id"); got != tc.Trace.String() {
		t.Fatalf("X-Trace-Id = %q, want the sent trace %q", got, tc.Trace)
	}

	// The root span ends after the response is written; poll the recorder.
	waitFor(t, "trace retained by the flight recorder", func() bool {
		_, ok := rec.Trace(tc.Trace.String())
		return ok
	})

	// The acceptance path is the HTTP endpoint, not the Go API.
	resp, err := http.Get(base + "/debug/traces/" + tc.Trace.String())
	if err != nil {
		t.Fatalf("GET /debug/traces/{id}: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces/{id} status %d", resp.StatusCode)
	}
	var rt obs.RecordedTrace
	if err := json.NewDecoder(resp.Body).Decode(&rt); err != nil {
		t.Fatalf("decode recorded trace: %v", err)
	}
	if rt.TraceID != tc.Trace.String() {
		t.Fatalf("recorded trace ID %q, want %q", rt.TraceID, tc.Trace)
	}

	byName := map[string]obs.Span{}
	for _, sp := range rt.Spans {
		byName[sp.Name] = sp
	}
	root, ok := byName["http.fill"]
	if !ok {
		t.Fatalf("no http.fill root span; spans: %v", names(rt.Spans))
	}
	if root.ParentID != tc.Span.String() {
		t.Fatalf("root parent %q, want the caller's span %q (remote parent continued)", root.ParentID, tc.Span)
	}
	for _, want := range []string{"queue.wait", "batch", "run", "demux", "doc", "stage.segment"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("span %q missing from the tree; spans: %v", want, names(rt.Spans))
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	// Parent chain: root → {queue.wait, batch, demux}; batch → run; run → stages.
	for _, child := range []string{"queue.wait", "batch", "demux"} {
		if got := byName[child].ParentID; got != root.SpanID {
			t.Errorf("%s parent %q, want root %q", child, got, root.SpanID)
		}
	}
	if got := byName["run"].ParentID; got != byName["batch"].SpanID {
		t.Errorf("run parent %q, want batch %q", got, byName["batch"].SpanID)
	}
	if got := byName["stage.segment"].ParentID; got != byName["run"].SpanID {
		t.Errorf("stage.segment parent %q, want run %q", got, byName["run"].SpanID)
	}
	// Every span belongs to the caller's trace.
	for _, sp := range rt.Spans {
		if sp.TraceID != tc.Trace.String() {
			t.Errorf("span %q landed in trace %q, want %q", sp.Name, sp.TraceID, tc.Trace)
		}
	}
}

// names lists span names for failure messages.
func names(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestTraceWithoutTraceparentMintsID checks a bare request still gets a
// fresh trace, echoed in X-Trace-Id and retained by the recorder.
func TestTraceWithoutTraceparentMintsID(t *testing.T) {
	_, base, rec, _ := tracedEngine(t, Options{})
	status, raw, hdr := postTraced(t, base+"/v1/fill", "", Request{Documents: worldDocs[:1]})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	id := hdr.Get("X-Trace-Id")
	if len(id) != 32 {
		t.Fatalf("X-Trace-Id %q, want a 32-hex minted trace ID", id)
	}
	waitFor(t, "minted trace retained", func() bool {
		_, ok := rec.Trace(id)
		return ok
	})
}

// zeroTimings clears the wall-clock fields so two responses produced by
// different engines can be compared byte for byte.
func zeroTimings(r *Response) {
	r.Stats.QueueWaitMS = 0
	r.Stats.RunMS = 0
	for i := range r.Stats.Stages {
		r.Stats.Stages[i].TotalMS = 0
	}
}

// TestObservabilityOffIsBitIdentical pins the acceptance guarantee: with
// tracing and explain disabled, the serving outputs are bit-identical to an
// engine running the full observability stack — instrumentation observes,
// it never perturbs.
func TestObservabilityOffIsBitIdentical(t *testing.T) {
	table, space := testWorld()
	plainOpts := Options{Table: table, Space: space, Tau: 0.6, Workers: 2}
	_, plainTS := startEngine(t, plainOpts, nil)
	_, tracedBase, _, _ := tracedEngine(t, Options{Table: table.Clone(), Space: space, Tau: 0.6, Workers: 2})

	req := Request{Documents: worldDocs}
	stP, rawP, hdrP := postJSON(t, http.DefaultClient, plainTS.URL+"/v1/fill", req)
	stT, rawT, _ := postTraced(t, tracedBase+"/v1/fill", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", req)
	if stP != http.StatusOK || stT != http.StatusOK {
		t.Fatalf("statuses %d/%d: %s / %s", stP, stT, rawP, rawT)
	}
	if hdrP.Get("X-Trace-Id") != "" {
		t.Fatal("untraced engine emitted an X-Trace-Id header")
	}

	plain, traced := decodeResponse(t, rawP), decodeResponse(t, rawT)
	ref := singleShot(t, plainOpts, worldDocs)
	assertBitIdentical(t, "plain engine", plain, ref, table, true)
	assertBitIdentical(t, "traced engine", traced, ref, table, true)

	// Byte-level comparison modulo wall-clock timings: re-encode both with
	// timings zeroed and require identical bytes.
	zeroTimings(&plain)
	zeroTimings(&traced)
	bp, _ := json.Marshal(plain)
	bt, _ := json.Marshal(traced)
	if !bytes.Equal(bp, bt) {
		t.Fatalf("traced response diverges from plain\nplain:  %s\ntraced: %s", bp, bt)
	}
}

// TestExplainProvenance checks explain=true attaches a full provenance chain
// per filled cell without changing which cells are filled, and ticks the
// per-concept fills_explained counters.
func TestExplainProvenance(t *testing.T) {
	table, space := testWorld()
	reg := obs.NewRegistry()
	_, ts := startEngine(t, Options{Table: table, Space: space, Tau: 0.6, Workers: 2, Metrics: reg}, nil)

	stPlain, rawPlain, _ := postJSON(t, http.DefaultClient, ts.URL+"/v1/fill", Request{Documents: worldDocs})
	stEx, rawEx, _ := postJSON(t, http.DefaultClient, ts.URL+"/v1/fill", Request{Documents: worldDocs, Explain: true})
	if stPlain != http.StatusOK || stEx != http.StatusOK {
		t.Fatalf("statuses %d/%d", stPlain, stEx)
	}
	plain, explained := decodeResponse(t, rawPlain), decodeResponse(t, rawEx)
	if len(explained.Assignments) == 0 {
		t.Fatal("explain run filled nothing; fixture should fill slots")
	}
	if len(explained.Assignments) != len(plain.Assignments) {
		t.Fatalf("explain changed the fill count: %d vs %d", len(explained.Assignments), len(plain.Assignments))
	}
	for i, a := range explained.Assignments {
		p := plain.Assignments[i]
		if a.Subject != p.Subject || a.Concept != p.Concept || a.Value != p.Value {
			t.Errorf("assignment %d diverges: explain %+v vs plain %+v", i, a, p)
		}
		if a.Provenance == nil {
			t.Fatalf("assignment %d (%s/%s) has no provenance", i, a.Subject, a.Concept)
		}
		if a.Provenance.Tau != 0.6 {
			t.Errorf("assignment %d tau %v, want 0.6", i, a.Provenance.Tau)
		}
		if a.Provenance.Doc == "" || a.Provenance.Phrase == "" {
			t.Errorf("assignment %d provenance incomplete: %+v", i, a.Provenance)
		}
	}
	for _, p := range plain.Assignments {
		if p.Provenance != nil {
			t.Fatal("plain fill attached provenance")
		}
	}
	concepts := map[string]bool{}
	for _, a := range explained.Assignments {
		concepts[string(a.Concept)] = true
	}
	var ticked int64
	for c := range concepts {
		ticked += reg.Counter("thor.fills_explained." + c).Value()
	}
	if ticked != int64(len(explained.Assignments)) {
		t.Fatalf("fills_explained counters sum to %d, want %d", ticked, len(explained.Assignments))
	}
}

// TestReadyzDegradedAndRecovers checks /readyz flips to 503 degraded while
// the SLO engine reports a burning judged stream, and recovers by itself
// once the violating observations age out of the window.
func TestReadyzDegradedAndRecovers(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	slo := obs.NewSLO(obs.SLOConfig{
		Window: time.Minute, Latency: 100 * time.Millisecond,
		LatencyBudget: 0.01, MinSamples: 10, Now: clock,
	})
	_, ts := startEngine(t, Options{SLO: slo}, nil)

	readyz := func() (int, map[string]any) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatalf("GET /readyz: %v", err)
		}
		defer resp.Body.Close()
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	if st, _ := readyz(); st != http.StatusOK {
		t.Fatalf("fresh engine readyz %d, want 200", st)
	}
	// Inject an SLO violation: every request far beyond the objective.
	for i := 0; i < 20; i++ {
		slo.Observe("fill", time.Second, false)
	}
	st, body := readyz()
	if st != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz %d, want 503", st)
	}
	if body["status"] != "degraded" {
		t.Fatalf("degraded body %v, want status=degraded", body)
	}
	// The violations age out; no operator action, no restart.
	mu.Lock()
	now = now.Add(3 * time.Minute)
	mu.Unlock()
	if st, body := readyz(); st != http.StatusOK {
		t.Fatalf("recovered readyz %d (%v), want 200", st, body)
	}
}

// TestRetryAfterJitterBounds pins the shed backoff contract: Retry-After is
// always within [1,3] seconds and actually jitters across sheds.
func TestRetryAfterJitterBounds(t *testing.T) {
	s, _ := startEngine(t, Options{}, nil)
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		v := s.retryAfter()
		if v != "1" && v != "2" && v != "3" {
			t.Fatalf("Retry-After %q outside [1,3]", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatalf("no jitter: 64 sheds all produced %v", seen)
	}
}

// TestErrorEnvelopeCarriesTraceID checks error responses echo the trace both
// in the X-Trace-Id header and the JSON envelope's trace_id field.
func TestErrorEnvelopeCarriesTraceID(t *testing.T) {
	_, base, _, _ := tracedEngine(t, Options{})
	resp, err := http.Get(base + "/v1/fill") // GET → 405 via the traced handler
	if err != nil {
		t.Fatalf("GET /v1/fill: %v", err)
	}
	defer resp.Body.Close()
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-Id")
	if len(id) != 32 {
		t.Fatalf("X-Trace-Id %q, want 32-hex", id)
	}
	e := decodeError(t, raw.Bytes())
	if e.Error.Code != CodeMethodNotAllowed {
		t.Fatalf("code %q, want %q", e.Error.Code, CodeMethodNotAllowed)
	}
	if e.TraceID != id {
		t.Fatalf("envelope trace_id %q != header %q", e.TraceID, id)
	}
	if !strings.Contains(raw.String(), `"trace_id"`) {
		t.Fatalf("envelope JSON missing trace_id: %s", raw)
	}
}

// TestShedTraceRetained checks a shed request's trace is classified
// interesting and retained by the flight recorder with the shed annotation.
func TestShedTraceRetained(t *testing.T) {
	hook, entered, release := holdBatches()
	defer release()
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(obs.RecorderOptions{SlowThreshold: time.Minute})
	s, ts := startEngine(t, Options{
		BatchMax: 1, BatchWindow: 0, QueueDepth: 1,
		Metrics: reg, Tracer: obs.NewTracer(1024), Recorder: rec,
	}, hook)

	// Occupy the coalescer and fill the queue so the next request sheds.
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		postJSON(t, http.DefaultClient, ts.URL+"/v1/fill", Request{Documents: worldDocs[:1]})
	}
	wg.Add(1)
	go post()
	waitEnter(t, entered)
	wg.Add(1)
	go post()
	waitFor(t, "queue to fill", func() bool { return len(s.queue) == 1 })

	tc := obs.TraceContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}
	status, _, hdr := postTraced(t, ts.URL+"/v1/fill", tc.Traceparent(), Request{Documents: worldDocs[:1]})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 shed", status)
	}
	if got := hdr.Get("X-Trace-Id"); got != tc.Trace.String() {
		t.Fatalf("X-Trace-Id %q, want %q", got, tc.Trace)
	}
	if ra := hdr.Get("Retry-After"); ra != "1" && ra != "2" && ra != "3" {
		t.Fatalf("Retry-After %q outside [1,3]", ra)
	}
	release()
	wg.Wait()

	waitFor(t, "shed trace retained", func() bool {
		rt, ok := rec.Trace(tc.Trace.String())
		return ok && rt.Reason == obs.ReasonShed
	})
}

// TestExplainOnTracedEngineMatchesPlain closes the matrix: explain=true on a
// fully-traced engine fills exactly the cells a bare engine fills.
func TestExplainOnTracedEngineMatchesPlain(t *testing.T) {
	table, space := testWorld()
	plainOpts := Options{Table: table, Space: space, Tau: 0.6, Workers: 2}
	_, plainTS := startEngine(t, plainOpts, nil)
	_, tracedBase, _, _ := tracedEngine(t, Options{Table: table.Clone(), Space: space, Tau: 0.6, Workers: 2})

	_, rawP, _ := postJSON(t, http.DefaultClient, plainTS.URL+"/v1/fill", Request{Documents: worldDocs})
	_, rawT, _ := postTraced(t, tracedBase+"/v1/fill", "", Request{Documents: worldDocs, Explain: true})
	plain, traced := decodeResponse(t, rawP), decodeResponse(t, rawT)
	if len(plain.Assignments) != len(traced.Assignments) {
		t.Fatalf("fill counts diverge: %d vs %d", len(plain.Assignments), len(traced.Assignments))
	}
	strip := make([]thor.Assignment, len(traced.Assignments))
	for i, a := range traced.Assignments {
		a.Provenance = nil
		strip[i] = a
	}
	if !reflect.DeepEqual(plain.Assignments, strip) {
		t.Fatalf("assignments diverge\nplain:  %+v\ntraced: %+v", plain.Assignments, strip)
	}
}
