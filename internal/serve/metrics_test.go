package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"thor/internal/obs"
	"thor/internal/promtext"
)

// TestMetricsEndpoint serves one fill through a fully instrumented engine
// and asserts GET /metrics returns lint-clean OpenMetrics carrying the
// serving counters, at least one thor_sparsity_* family per loaded concept,
// SLO quantiles and runtime metrics — the acceptance shape the CI
// scrape-and-lint job enforces against a real thord binary.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	slo := obs.NewSLO(obs.SLOConfig{Latency: time.Second})
	_, ts := startEngine(t, Options{Metrics: reg, SLO: slo}, nil)

	status, _, _ := postJSON(t, ts.Client(), ts.URL+"/v1/fill", Request{Documents: worldDocs})
	if status != http.StatusOK {
		t.Fatalf("fill status = %d", status)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("/metrics content type = %q", ct)
	}

	exp, err := promtext.Parse(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	if probs := promtext.Lint(exp); len(probs) > 0 {
		t.Fatalf("/metrics does not lint: %v", probs)
	}

	// One thor_sparsity_* series per loaded concept.
	fills := exp.Family("thor_sparsity_request_fills")
	if fills == nil {
		t.Fatalf("thor_sparsity_request_fills family missing")
	}
	concepts := map[string]bool{}
	for _, s := range fills.Samples {
		concepts[s.Label("concept")] = true
	}
	for _, want := range []string{"Anatomy", "Complication"} {
		if !concepts[want] {
			t.Errorf("no request_fills series for concept %q: %v", want, concepts)
		}
	}
	// Serving counters, SLO quantiles and runtime metrics all present.
	if probs := promtext.RequireFamilies(exp, []string{
		"serve_fill_requests",
		"thor_sparsity_*",
		"thor_slo_latency_seconds",
		"thor_slo_degraded",
		"go_goroutines",
		"go_gc_pauses_seconds",
	}); len(probs) > 0 {
		t.Fatalf("required families missing: %v", probs)
	}
	// The SLO summary saw the request we just served.
	lat := exp.Family("thor_slo_latency_seconds")
	var count float64
	for _, s := range lat.Samples {
		if s.Name == "thor_slo_latency_seconds_count" && s.Label("stream") == "fill" {
			count = s.Value
		}
	}
	if count < 1 {
		t.Errorf("SLO fill stream count = %v, want >= 1", count)
	}
}

// TestProfilesEndpointOnServer checks the serving mux exposes the profiler
// ring when one is configured.
func TestProfilesEndpointOnServer(t *testing.T) {
	prof := obs.NewProfiler(obs.ProfilerConfig{CPUDuration: -1, SteadyEvery: -1})
	_, ts := startEngine(t, Options{Profiler: prof}, nil)
	prof.CaptureNow()

	resp, err := ts.Client().Get(ts.URL + "/debug/profiles")
	if err != nil {
		t.Fatalf("GET /debug/profiles: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("profiles listing wrong (status %d): %.200s", resp.StatusCode, body)
	}
}
