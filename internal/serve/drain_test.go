package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDrainAdmissionRaceNeverTearsConnections pins the drain contract the
// router relies on: requests admitted in the window between the drain
// beginning and the listener closing either complete normally (200) or are
// shed with 503 + Retry-After and a JSON error body — a client never sees a
// torn connection or an empty reply. The test hammers admissions from many
// goroutines while Shutdown runs concurrently (run under -race).
func TestDrainAdmissionRaceNeverTearsConnections(t *testing.T) {
	table, space := testWorld()
	s, err := NewServer(Options{
		Table: table, Space: space, Tau: 0.6,
		Workers: 2, BatchWindow: 0, QueueDepth: 4,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	// The listener outlives the engine drain on purpose: that is exactly the
	// SIGTERM→listener-close window under test.
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, err := json.Marshal(Request{Documents: worldDocs[:1]})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	const workers = 8
	var (
		wg      sync.WaitGroup
		stop    = make(chan struct{})
		torn    atomic.Int64 // transport errors / unreadable bodies: must stay 0
		ok200   atomic.Int64
		shed    atomic.Int64
		badShed atomic.Int64 // sheds missing Retry-After or a JSON error body
		other   atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hc := &http.Client{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := hc.Post(ts.URL+"/v1/fill", "application/json", bytes.NewReader(body))
				if err != nil {
					torn.Add(1)
					continue
				}
				raw, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					torn.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusServiceUnavailable:
					shed.Add(1)
					var eb ErrorBody
					if resp.Header.Get("Retry-After") == "" ||
						json.Unmarshal(raw, &eb) != nil ||
						(eb.Error.Code != CodeDraining && eb.Error.Code != CodeOverloaded && eb.Error.Code != CodeClosed) {
						badShed.Add(1)
					}
				default:
					other.Add(1)
				}
			}
		}()
	}

	// Let steady-state traffic flow, then drain while the hammer runs.
	time.Sleep(150 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Requests arriving after the drain completed must still shed cleanly
	// while the listener remains open.
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := torn.Load(); n != 0 {
		t.Fatalf("%d requests saw a torn connection or empty reply during drain", n)
	}
	if n := badShed.Load(); n != 0 {
		t.Fatalf("%d shed responses were missing Retry-After or a JSON error body", n)
	}
	if n := other.Load(); n != 0 {
		t.Fatalf("%d requests got an unexpected status", n)
	}
	if ok200.Load() == 0 {
		t.Fatal("no requests completed before the drain — hammer never reached steady state")
	}
	if shed.Load() == 0 {
		t.Fatal("no requests were shed — the drain window was never exercised")
	}
}

// TestReadyzReportsShard pins the shard-id surfacing the router's topology
// checks rely on: /readyz and /healthz name the shard, and every /v1/*
// response carries X-Thor-Shard.
func TestReadyzReportsShard(t *testing.T) {
	table, space := testWorld()
	s, err := NewServer(Options{
		Table: table, Space: space, Tau: 0.6,
		Workers: 2, BatchWindow: 0, ShardID: "anatomy",
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, path := range []string{"/readyz", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var body map[string]any
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		if body["shard"] != "anatomy" {
			t.Fatalf("%s shard = %v, want anatomy", path, body["shard"])
		}
	}

	body, _ := json.Marshal(Request{Documents: worldDocs[:1]})
	resp, err := http.Post(ts.URL+"/v1/fill", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("fill: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Thor-Shard"); got != "anatomy" {
		t.Fatalf("X-Thor-Shard = %q, want anatomy", got)
	}

	// Draining still names the shard (routers classify by body status).
	go s.Shutdown(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatalf("GET /readyz: %v", err)
		}
		var rb map[string]any
		json.NewDecoder(resp.Body).Decode(&rb)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if rb["status"] != "draining" || rb["shard"] != "anatomy" {
				t.Fatalf("draining readyz = %v", rb)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported draining")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
