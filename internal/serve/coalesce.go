package serve

import (
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"

	"thor/internal/obs"
	"thor/internal/segment"
	"thor/internal/tablestore"
	"thor/internal/thor"
)

// pending is one admitted request waiting for (or riding in) a batch.
type pending struct {
	ctx        reqContext
	docs       []segment.Document
	docTimeout time.Duration
	enq        time.Time
	// snap is the live-table snapshot the request was admitted under. The
	// handler acquires it before enqueueing and owns its reference; the
	// coalescer only reads it — to group batchmates by version and to run
	// the batch through that version's pipeline.
	snap *tablestore.Snapshot
	// ref is the request's position in its trace (the span ref under the
	// request's root span); the zero value means the request is untraced.
	// The coalescer parents the queue.wait and batch spans here, so a batch
	// shared by several requests writes its span tree into every rider's
	// trace.
	ref obs.SpanRef
	// resp is buffered (capacity 1) so the coalescer never blocks on a
	// client that stopped listening.
	resp chan batchOutcome
}

// reqContext is the slice of context.Context the coalescer needs; it keeps
// pending testable without spinning up HTTP requests.
type reqContext interface {
	Err() error
	Done() <-chan struct{}
}

// pendingPool recycles request envelopes — their buffered response channels
// and document-slice capacity — so steady-state admission allocates nothing.
// A pending is recycled only by the handler after it has received the
// outcome (or before it was ever enqueued); an abandoned pending whose
// client vanished mid-wait is left to the collector, since the coalescer may
// still deliver into its channel.
var pendingPool = sync.Pool{New: func() any {
	return &pending{resp: make(chan batchOutcome, 1)}
}}

func acquirePending() *pending { return pendingPool.Get().(*pending) }

func releasePending(p *pending) {
	p.ctx = nil
	p.docs = p.docs[:0]
	p.docTimeout = 0
	p.enq = time.Time{}
	p.ref = obs.SpanRef{}
	p.snap = nil
	pendingPool.Put(p)
}

// dispatchScratch is the coalescer's per-batch working memory, owned and
// reused exclusively by the dispatcher goroutine. Everything that crosses a
// channel to a handler is copied by value; the slices referenced by those
// values (per-request docs/quarantined) are freshly appended each batch, so
// reusing the containers here never aliases data a handler still reads.
type dispatchScratch struct {
	batch    []*pending
	live     []*pending
	docs     []segment.Document
	starts   []int
	rootRefs []obs.SpanRef
	outs     []batchOutcome
	runOpts  thor.RunOptions
}

// batchOutcome is one request's demultiplexed share of a batch run.
type batchOutcome struct {
	// docs are the request's completed documents, reindexed to the
	// request's own document order.
	docs []thor.DocResult
	// quarantined are the request's failed documents, reindexed likewise.
	quarantined []thor.DocumentFailure
	// skipped counts the request's documents never extracted (hard stop).
	skipped int
	// batchDocs is the total document count of the batch.
	batchDocs int
	// queueWait is the time from admission to batch start.
	queueWait time.Duration
	// runDur is the batch's pipeline wall clock.
	runDur time.Duration
	// err, when set, replaces the payload: the request failed as a whole
	// (cancelled while queued, or the server closed).
	err error
}

// dispatch is the coalescer goroutine: it gathers admitted requests into
// micro-batches and runs them until drain (finish everything, then exit) or
// hard stop (answer the queue with ErrClosed, then exit).
func (s *Server) dispatch() {
	defer close(s.done)
	for {
		select {
		case p := <-s.queue:
			s.runChain(p)
		case <-s.drainCh:
			// Graceful drain: admission is already off (Server.mu ordering
			// guarantees no enqueue is still in progress), so the queue
			// can only shrink; batch until it is empty.
			for {
				select {
				case p := <-s.queue:
					s.runChain(p)
				default:
					s.opts.Journal.Append(obs.JournalEvent{Kind: obs.EventDrain, Subject: "server", To: "end"})
					return
				}
			}
		case <-s.baseCtx.Done():
			s.failQueue()
			return
		}
	}
}

// runChain batches and runs starting from p. A batch never mixes table
// versions, so gather hands back the first rider admitted under a different
// snapshot; that carryover seeds the next batch immediately instead of
// returning to the queue (which would reorder it behind later arrivals).
func (s *Server) runChain(p *pending) {
	for p != nil {
		batch, carry := s.gather(p)
		s.runBatch(batch)
		p = carry
	}
}

// failQueue answers every queued request with ErrClosed (hard stop).
func (s *Server) failQueue() {
	for {
		select {
		case p := <-s.queue:
			s.ins.queueDepth.Add(-1)
			p.resp <- batchOutcome{err: ErrClosed}
		default:
			return
		}
	}
}

// gather builds one micro-batch: the first request plus whatever else
// arrives before the batch holds Options.BatchMax documents or
// Options.BatchWindow elapses. A zero window (or an in-progress drain)
// takes only what is already queued. Batchmates must share the first
// request's admitted table snapshot — one batch, one pipeline, one version;
// a request admitted under a different version is returned as carry and
// seeds the next batch (see runChain).
func (s *Server) gather(first *pending) (batch []*pending, carry *pending) {
	batch = append(s.sc.batch[:0], first)
	total := len(first.docs)
	if total >= s.opts.BatchMax {
		return batch, nil
	}
	var window <-chan time.Time
	if s.opts.BatchWindow > 0 {
		t := time.NewTimer(s.opts.BatchWindow)
		defer t.Stop()
		window = t.C
	}
	for total < s.opts.BatchMax {
		if window == nil {
			// No window: drain what is immediately available and go.
			select {
			case p := <-s.queue:
				if p.snap != first.snap {
					return batch, p
				}
				batch = append(batch, p)
				total += len(p.docs)
			default:
				return batch, nil
			}
			continue
		}
		select {
		case p := <-s.queue:
			if p.snap != first.snap {
				return batch, p
			}
			batch = append(batch, p)
			total += len(p.docs)
		case <-window:
			return batch, nil
		case <-s.drainCh:
			// Draining: stop waiting for stragglers, take what is queued.
			window = nil
		case <-s.baseCtx.Done():
			return batch, nil
		}
	}
	return batch, nil
}

// runBatch executes one micro-batch through a single pipeline run and
// demultiplexes the per-document outcomes back to their requests. Requests
// whose context ended while queued are answered (and excluded) up front.
func (s *Server) runBatch(batch []*pending) {
	// Retain gather's (possibly grown) batch slice for the next batch.
	s.sc.batch = batch
	if s.testBatchStart != nil {
		s.testBatchStart()
	}
	live := s.sc.live[:0]
	for _, p := range batch {
		s.ins.queueDepth.Add(-1)
		if err := p.ctx.Err(); err != nil {
			s.ins.canceled.Add(1)
			p.resp <- batchOutcome{err: err}
			continue
		}
		live = append(live, p)
	}
	s.sc.live = live
	if len(live) == 0 {
		return
	}
	batchID := s.batchSeq.Add(1)
	batchStart := time.Now()
	docs := s.sc.docs[:0]
	starts := s.sc.starts[:0]
	var docTimeout time.Duration
	rootRefs := s.sc.rootRefs[:0]
	for _, p := range live {
		starts = append(starts, len(docs))
		docs = append(docs, p.docs...)
		// The batch honors the strictest per-document deadline among its
		// batchmates: never looser than any request asked for.
		if p.docTimeout > 0 && (docTimeout == 0 || p.docTimeout < docTimeout) {
			docTimeout = p.docTimeout
		}
		s.ins.queueWait.Observe(batchStart.Sub(p.enq))
		if !p.ref.Trace.IsZero() {
			rootRefs = append(rootRefs, p.ref)
			// The queue.wait span: admission to batch start, measured rather
			// than Start/End-paired, synthesized into this request's trace.
			s.opts.Tracer.RecordSpan([]obs.SpanRef{p.ref}, "queue.wait", p.enq, batchStart.Sub(p.enq))
		}
	}
	// The batch span fans out into every traced rider's trace; without any
	// traced rider StartSpanCtx falls back to one flat span, the pre-trace
	// behavior.
	ctx := obs.WithSpanRefs(s.baseCtx, rootRefs...)
	ctx, bsp := s.opts.Tracer.StartSpanCtx(ctx, "batch",
		obs.String("batch_id", strconv.FormatUint(batchID, 10)),
		obs.String("requests", strconv.Itoa(len(live))),
		obs.String("docs", strconv.Itoa(len(docs))))
	// Grown scratch slices are kept for the next batch (same goroutine).
	s.sc.docs, s.sc.starts, s.sc.rootRefs = docs, starts, rootRefs
	var blog *slog.Logger
	if s.opts.Logger != nil {
		blog = s.opts.Logger.With(obs.LogBatchID, batchID)
		blog.Debug("batch start", "requests", len(live), "docs", len(docs))
	}
	s.sc.runOpts = thor.RunOptions{DocTimeout: docTimeout, Logger: blog}
	// The batch runs through its snapshot's pipeline: every batchmate shares
	// one snap (gather's grouping invariant), so the whole run — extraction
	// here, assignments at response time — sees one consistent table
	// version. Read through a live rider: canceled ones were already
	// answered above and may have been recycled by their handlers. The
	// snapshot object stays valid for the run even if every rider abandons
	// mid-batch: each abandoned pending still references it.
	pipe := live[0].snap.Payload.(*thor.Pipeline)
	res, err := pipe.RunContextOpts(ctx, docs, &s.sc.runOpts)
	runDur := time.Since(batchStart)
	bsp.End()
	s.ins.batches.Add(1)
	s.ins.batchDocs.Add(int64(len(docs)))
	s.ins.batchRun.Observe(runDur)
	if res != nil {
		// Per-stage latency feeds the SLO engine's tracked streams, so
		// /debug/vars shows windowed stage percentiles next to the routes.
		for _, st := range res.Stats.Stages {
			if st.Calls == 0 {
				continue
			}
			s.opts.SLO.Track("stage."+string(st.Stage), st.Total)
		}
	}
	if blog != nil {
		if err != nil {
			blog.Warn("batch failed", "error", err.Error())
		} else {
			blog.Debug("batch done", "run_ms", float64(runDur)/float64(time.Millisecond))
		}
	}
	if res == nil {
		for _, p := range live {
			p.resp <- batchOutcome{err: err}
		}
		return
	}

	outs := s.sc.outs[:0]
	for _, p := range live {
		// Full-value appends: any stale slice headers left in the reused
		// backing array are overwritten before the per-request appends below
		// start from nil.
		outs = append(outs, batchOutcome{
			batchDocs: len(docs),
			queueWait: batchStart.Sub(p.enq),
			runDur:    runDur,
		})
	}
	s.sc.outs = outs
	owner := func(global int) int {
		// The owner is the last range starting at or before the index.
		return sort.Search(len(starts), func(i int) bool { return starts[i] > global }) - 1
	}
	for _, d := range res.Docs {
		i := owner(d.Index)
		d.Index -= starts[i]
		outs[i].docs = append(outs[i].docs, d)
	}
	for _, q := range res.Stats.Quarantined {
		i := owner(q.Index)
		q.Index -= starts[i]
		outs[i].quarantined = append(outs[i].quarantined, q)
	}
	for i, p := range live {
		outs[i].skipped = len(p.docs) - len(outs[i].docs) - len(outs[i].quarantined)
		if err != nil && outs[i].skipped == len(p.docs) {
			// A hard stop interrupted the run before any of this request's
			// documents were attempted; report the stop, not an empty
			// success.
			outs[i] = batchOutcome{err: ErrClosed}
		}
		p.resp <- outs[i]
	}
}
