package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"thor/internal/embed"
	"thor/internal/schema"
	"thor/internal/serve"
)

// ExampleNewServer starts the online slot-filling engine over a miniature
// table and embedding space, then fills a labeled null with one POST
// /v1/fill call. Concurrent requests would be coalesced into micro-batched
// pipeline runs over the same warm caches.
func ExampleNewServer() {
	table := schema.NewTable(schema.NewSchema("Disease", "Anatomy", "Complication"))
	table.AddRow("Acoustic Neuroma").Add("Anatomy", "nervous system")
	table.AddRow("Tuberculosis").Add("Complication", "skin cancer")

	space := embed.NewSpace()
	anatomy := embed.HashVector("ex:anatomy")
	complication := embed.HashVector("ex:complication")
	add := func(c embed.Vector, alpha float64, noise string, words ...string) {
		for _, w := range words {
			for _, part := range strings.Fields(w) {
				key := noise
				if key == "" {
					key = "ex-noise:" + part
				}
				space.Add(part, embed.Blend(c, embed.HashVector(key), alpha))
			}
		}
	}
	add(anatomy, 0.58, "", "nervous system", "brain", "nerve", "ear", "lungs")
	add(complication, 0.85, "ex:cancer-family", "cancer", "cancerous", "non-cancerous", "tumor")

	srv, err := serve.NewServer(serve.Options{Table: table, Space: space, Tau: 0.6, Workers: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, _ := json.Marshal(serve.Request{Documents: []serve.Document{{
		Name: "health-portal",
		Text: "An Acoustic Neuroma is a slow-growing non-cancerous brain tumor.",
	}}})
	resp, err := http.Post(ts.URL+"/v1/fill", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer resp.Body.Close()
	var out serve.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, a := range out.Assignments {
		fmt.Printf("%s / %s := %s\n", a.Subject, a.Concept, a.Value)
	}
	fmt.Println("filled:", out.Stats.Filled)
	// Output:
	// Acoustic Neuroma / Complication := non-cancerous brain tumor
	// filled: 1
}
