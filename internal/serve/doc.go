// Package serve is THOR's online serving layer: a long-lived, stdlib-only
// HTTP engine that loads the integrated table, embedding space and warm
// matcher/parse caches once, then answers concurrent slot-filling requests.
// Command thord wraps it in a daemon.
//
// The paper's pipeline (Algorithm 1) is a batch job; serve re-frames it as
// the online, per-query problem of the localized-imputation literature:
// each request carries a handful of documents and expects its own isolated
// answer, while the expensive shared state — matcher fine-tuning
// (matcher.Cache), sentence analysis (thor.ParseCache), refinement memos —
// amortizes across every request the process ever serves.
//
// # Request flow
//
//	handler ──enqueue──▶ bounded queue ──▶ coalescer ──▶ one thor.RunContext
//	   ▲                    │ full?            │ gather ≤ BatchMax docs          │
//	   └── 503 + Retry-After ┘                 │ or BatchWindow of wall time     ▼
//	                                      demultiplex per request ◀── DocResults
//
// Admission control keeps the queue bounded: when it is full the request is
// shed immediately with 503 and a Retry-After header rather than queued
// into unbounded latency. The coalescer gathers queued requests into a
// micro-batch (up to Options.BatchMax documents, waiting at most
// Options.BatchWindow after the first), runs them through a single
// thor.RunContext call with Config.CollectDocResults, and splits the
// per-document outcomes back out by request. Quarantine records (PR 3) ride
// along, so one request's poisoned document never fails its batchmates —
// they simply see their own documents' results, bit-identical to what a
// single-shot run over just their documents would return (asserted by
// TestBatchBitIdentical).
//
// Graceful drain: Shutdown stops admission (new requests are shed), lets
// the coalescer finish every queued and in-flight request, then stops the
// dispatcher goroutine — no request is abandoned and no goroutine leaks.
// Close is the hard variant: it cancels the in-flight batch (clients get a
// server_closed error envelope).
package serve
