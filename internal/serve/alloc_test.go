package serve

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// TestServeZeroAllocWarmBatch gates the serving fill path's steady-state
// allocation behavior: once the pipeline, caches and dispatcher scratch are
// warm, coalescing and running a repeated micro-batch must stay within a
// small fixed allocation budget — independent of document length or phrase
// count, which all resolve through reused scratch. The dispatcher goroutine
// is parked via Shutdown first so the test goroutine can drive runBatch
// directly (AllocsPerRun only counts the calling goroutine; Workers: 1 keeps
// extraction on it too).
func TestServeZeroAllocWarmBatch(t *testing.T) {
	table, space := testWorld()
	s, err := NewServer(Options{Table: table, Space: space, Tau: 0.6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	docs := segmentDocs(worldDocs)
	p := acquirePending()
	p.ctx = context.Background()
	p.docs = append(p.docs[:0], docs...)
	p.enq = time.Now()
	batch := []*pending{p}

	run := func() batchOutcome {
		s.runBatch(batch)
		return <-p.resp
	}
	warm := run()
	if warm.err != nil {
		t.Fatal(warm.err)
	}
	if len(warm.docs) != len(docs) {
		t.Fatalf("warm batch completed %d/%d documents", len(warm.docs), len(docs))
	}
	run() // second warm-up: let every lazy scratch reach steady-state size

	allocs := testing.AllocsPerRun(20, func() {
		out := run()
		if out.err != nil || len(out.docs) != len(docs) {
			t.Fatalf("warm batch changed: err=%v docs=%d", out.err, len(out.docs))
		}
	})
	t.Logf("warm batch: %.1f allocs/op for %d documents", allocs, len(docs))
	// Budget: the per-request result payload (DocResult slices, entities,
	// stage stats, the Result itself) — bounded per batch, with nothing
	// proportional to sentences, phrases or candidate pairs. Measured ~60;
	// the margin absorbs runtime jitter, not regressions.
	if budget := 120.0; allocs > budget {
		t.Errorf("warm batch allocates %.1f allocs/op, budget %.0f", allocs, budget)
	}
}

// TestServerDisableQuantIdentical asserts the serving contract of the int8
// propose tier: a server with Options.DisableQuant answers /v1/fill with
// byte-identical payloads to the default server.
func TestServerDisableQuantIdentical(t *testing.T) {
	_, tsOn := startEngine(t, Options{}, nil)
	_, tsOff := startEngine(t, Options{DisableQuant: true}, nil)
	req := Request{Documents: worldDocs, Explain: true}
	stOn, rawOn, _ := postJSON(t, tsOn.Client(), tsOn.URL+"/v1/fill", req)
	stOff, rawOff, _ := postJSON(t, tsOff.Client(), tsOff.URL+"/v1/fill", req)
	if stOn != 200 || stOff != 200 {
		t.Fatalf("status on=%d off=%d", stOn, stOff)
	}
	on, off := decodeResponse(t, rawOn), decodeResponse(t, rawOff)
	// Stats carry wall-clock fields; compare the semantic payload.
	if !reflect.DeepEqual(on.Entities, off.Entities) {
		t.Errorf("entities differ:\nquant on:  %+v\nquant off: %+v", on.Entities, off.Entities)
	}
	if !reflect.DeepEqual(on.Assignments, off.Assignments) {
		t.Errorf("assignments differ:\nquant on:  %+v\nquant off: %+v", on.Assignments, off.Assignments)
	}
}
