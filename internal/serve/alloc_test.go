package serve

import (
	"context"
	"reflect"
	"testing"
	"time"

	"thor/internal/obs"
	"thor/internal/schema"
	"thor/internal/tablestore"
)

// TestServeZeroAllocWarmBatch gates the serving fill path's steady-state
// allocation behavior: once the pipeline, caches and dispatcher scratch are
// warm, coalescing and running a repeated micro-batch must stay within a
// small fixed allocation budget — independent of document length or phrase
// count, which all resolve through reused scratch. The dispatcher goroutine
// is parked via Shutdown first so the test goroutine can drive runBatch
// directly (AllocsPerRun only counts the calling goroutine; Workers: 1 keeps
// extraction on it too).
func TestServeZeroAllocWarmBatch(t *testing.T) {
	table, space := testWorld()
	// A live journal rides along: its hooks sit on drain/swap edges, so its
	// presence must not cost the warm batch path anything.
	journal := obs.NewJournal(obs.JournalConfig{Node: "test"})
	s, err := NewServer(Options{Table: table, Space: space, Tau: 0.6, Workers: 1, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	docs := segmentDocs(worldDocs)
	p := acquirePending()
	p.ctx = context.Background()
	p.docs = append(p.docs[:0], docs...)
	p.enq = time.Now()
	// Pin the snapshot once, as the handler does at admission; the batch
	// path itself must not add per-run work.
	p.snap = s.store.Acquire()
	defer p.snap.Release()
	batch := []*pending{p}

	run := func() batchOutcome {
		s.runBatch(batch)
		return <-p.resp
	}
	warm := run()
	if warm.err != nil {
		t.Fatal(warm.err)
	}
	if len(warm.docs) != len(docs) {
		t.Fatalf("warm batch completed %d/%d documents", len(warm.docs), len(docs))
	}
	run() // second warm-up: let every lazy scratch reach steady-state size

	allocs := testing.AllocsPerRun(20, func() {
		out := run()
		if out.err != nil || len(out.docs) != len(docs) {
			t.Fatalf("warm batch changed: err=%v docs=%d", out.err, len(out.docs))
		}
	})
	t.Logf("warm batch: %.1f allocs/op for %d documents", allocs, len(docs))
	// Budget: the per-request result payload (DocResult slices, entities,
	// stage stats, the Result itself) — bounded per batch, with nothing
	// proportional to sentences, phrases or candidate pairs. Measured ~60;
	// the margin absorbs runtime jitter, not regressions.
	if budget := 120.0; allocs > budget {
		t.Errorf("warm batch allocates %.1f allocs/op, budget %.0f", allocs, budget)
	}
}

// TestServeZeroAllocAfterUnrelatedMutation extends the warm-batch gate across
// a live-table swap: after mutating a concept the warm documents never match
// against, the new version's pipeline must answer the same batch within the
// same allocation budget. The per-concept cache keying (PR 9) is what makes
// this hold — only the mutated concept's fine-tuning is invalidated, so the
// swap re-derives one concept and inherits every other warm cache.
func TestServeZeroAllocAfterUnrelatedMutation(t *testing.T) {
	table, space := testWorld()
	journal := obs.NewJournal(obs.JournalConfig{Node: "test"})
	s, err := NewServer(Options{Table: table, Space: space, Tau: 0.6, Workers: 1, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	docs := segmentDocs(worldDocs)
	p := acquirePending()
	p.ctx = context.Background()
	p.docs = append(p.docs[:0], docs...)
	p.enq = time.Now()
	p.snap = s.store.Acquire()
	batch := []*pending{p}
	run := func() batchOutcome {
		s.runBatch(batch)
		return <-p.resp
	}
	warm := run()
	if warm.err != nil {
		t.Fatal(warm.err)
	}
	run()

	// The mutation: a synthetic Anatomy value no document mentions. Exactly
	// one concept invalidates; the rest carry their fine-tuned state across
	// the swap (thor.table.concepts_retained counts them).
	res, err := s.store.Mutate(0, []tablestore.RowUpdate{
		{Subject: "Malaria", Cells: map[schema.Concept][]string{"Anatomy": {"zz synthetic organ"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []schema.Concept{"Anatomy"}; !reflect.DeepEqual(res.Invalidated, want) {
		t.Fatalf("invalidated %v, want %v", res.Invalidated, want)
	}
	if res.Retained != 2 {
		t.Fatalf("retained %d concepts across the swap, want 2", res.Retained)
	}

	// Re-admit under the new version, as a fresh request would.
	p.snap.Release()
	p.snap = s.store.Acquire()
	defer p.snap.Release()
	if p.snap.Version != res.Version {
		t.Fatalf("acquired version %d after swap to %d", p.snap.Version, res.Version)
	}
	// One settling run on the swapped pipeline, then the same gate as the
	// pre-mutation test: a swap must not cost the steady state anything.
	run()
	allocs := testing.AllocsPerRun(20, func() {
		out := run()
		if out.err != nil || len(out.docs) != len(docs) {
			t.Fatalf("post-swap batch changed: err=%v docs=%d", out.err, len(out.docs))
		}
	})
	t.Logf("post-swap warm batch: %.1f allocs/op for %d documents", allocs, len(docs))
	if budget := 120.0; allocs > budget {
		t.Errorf("post-swap warm batch allocates %.1f allocs/op, budget %.0f", allocs, budget)
	}
}

// TestServerDisableQuantIdentical asserts the serving contract of the int8
// propose tier: a server with Options.DisableQuant answers /v1/fill with
// byte-identical payloads to the default server.
func TestServerDisableQuantIdentical(t *testing.T) {
	_, tsOn := startEngine(t, Options{}, nil)
	_, tsOff := startEngine(t, Options{DisableQuant: true}, nil)
	req := Request{Documents: worldDocs, Explain: true}
	stOn, rawOn, _ := postJSON(t, tsOn.Client(), tsOn.URL+"/v1/fill", req)
	stOff, rawOff, _ := postJSON(t, tsOff.Client(), tsOff.URL+"/v1/fill", req)
	if stOn != 200 || stOff != 200 {
		t.Fatalf("status on=%d off=%d", stOn, stOff)
	}
	on, off := decodeResponse(t, rawOn), decodeResponse(t, rawOff)
	// Stats carry wall-clock fields; compare the semantic payload.
	if !reflect.DeepEqual(on.Entities, off.Entities) {
		t.Errorf("entities differ:\nquant on:  %+v\nquant off: %+v", on.Entities, off.Entities)
	}
	if !reflect.DeepEqual(on.Assignments, off.Assignments) {
		t.Errorf("assignments differ:\nquant on:  %+v\nquant off: %+v", on.Assignments, off.Assignments)
	}
}
