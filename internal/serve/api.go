package serve

import (
	"encoding/json"
	"net/http"

	"thor/internal/tablestore"
	"thor/internal/thor"
)

// Document is one input text of a fill or extract request.
type Document struct {
	// Name identifies the document in entity provenance and quarantine
	// records. Empty names default to "doc-<index>".
	Name string `json:"name,omitempty"`
	// DefaultSubject, when set, is the subject instance the document is
	// about before any explicit mention (see segment.Document).
	DefaultSubject string `json:"default_subject,omitempty"`
	// Text is the raw document body.
	Text string `json:"text"`
}

// Request is the JSON body of POST /v1/fill and POST /v1/extract.
type Request struct {
	// Documents are the texts to conceptualize; at least one is required.
	Documents []Document `json:"documents"`
	// DocTimeoutMS optionally bounds the wall clock any single document of
	// this request may spend in extraction (thor.Config.DocTimeout). A
	// batch applies the strictest bound among its batchmates, so the
	// effective timeout is never looser than requested. Zero inherits the
	// server default.
	DocTimeoutMS int64 `json:"doc_timeout_ms,omitempty"`
	// Explain, on POST /v1/fill, attaches a provenance record to every
	// assignment: source document, matched seed, the three similarity
	// scores, and the τ in force at decision time. Off by default; with
	// Explain false the response is byte-identical to a pre-explain server.
	Explain bool `json:"explain,omitempty"`
}

// Entity is the wire form of thor.Entity: one conceptualized entity with
// its refinement scores.
type Entity struct {
	// Phrase is the extracted (normalized) phrase e.p.
	Phrase string `json:"phrase"`
	// Concept is the assigned schema concept e.C.
	Concept string `json:"concept"`
	// Doc names the document the entity was extracted from.
	Doc string `json:"doc"`
	// Matched is the seed instance the matcher aligned the phrase to.
	Matched string `json:"matched"`
	// Score is the combined refinement score.
	Score float64 `json:"score"`
	// Semantic, Jaccard and Gestalt are the three component similarities.
	Semantic float64 `json:"semantic"`
	// Jaccard is the word-level similarity.
	Jaccard float64 `json:"jaccard"`
	// Gestalt is the character-level similarity.
	Gestalt float64 `json:"gestalt"`
}

// Quarantine is the wire form of one quarantined document: the request's
// other documents complete normally (fault isolation, PR 3). Panic stacks
// are deliberately not exposed over HTTP; they remain in the server-side
// quarantine records and spans.
type Quarantine struct {
	// Doc is the document's name.
	Doc string `json:"doc"`
	// Index is the document's position in the request's Documents slice.
	Index int `json:"index"`
	// Stage names the pipeline stage that failed, when attributable.
	Stage string `json:"stage,omitempty"`
	// Error is the failure message.
	Error string `json:"error"`
}

// StageCost is one row of a response's per-stage cost breakdown, summed
// over the request's completed documents.
type StageCost struct {
	// Stage names the pipeline stage (see thor.PipelineStages).
	Stage string `json:"stage"`
	// Calls is the number of times the stage ran for this request.
	Calls int64 `json:"calls"`
	// TotalMS is the summed duration across those calls, in milliseconds.
	TotalMS float64 `json:"total_ms"`
}

// Stats summarizes one request's execution: what its documents produced and
// what the batching cost it.
type Stats struct {
	// Documents is the number of documents in the request.
	Documents int `json:"documents"`
	// Completed is the number that finished extraction.
	Completed int `json:"completed"`
	// Skipped counts documents never extracted (server shutdown mid-run).
	Skipped int `json:"skipped,omitempty"`
	// Sentences, Phrases and Candidates are the pipeline counters summed
	// over the request's completed documents.
	Sentences int `json:"sentences"`
	// Phrases counts extracted noun phrases.
	Phrases int `json:"phrases"`
	// Candidates counts semantic match candidates.
	Candidates int `json:"candidates"`
	// Entities is the number of refined entities after per-subject
	// deduplication.
	Entities int `json:"entities"`
	// Filled is the number of slots written (POST /v1/fill only).
	Filled int `json:"filled"`
	// Quarantined lists this request's failed documents, if any.
	Quarantined []Quarantine `json:"quarantined,omitempty"`
	// BatchDocs is the total document count of the micro-batch the request
	// rode in (≥ Documents).
	BatchDocs int `json:"batch_docs"`
	// QueueWaitMS is the time the request spent queued before its batch
	// started, in milliseconds.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// RunMS is the batch's pipeline wall clock, in milliseconds.
	RunMS float64 `json:"run_ms"`
	// TableVersion is the live-table version the request was admitted under
	// and answered from (see POST /v1/table). A request in flight across a
	// mutation still reports — and computes against — its admission version.
	TableVersion uint64 `json:"table_version"`
	// Stages breaks the request's document work down per pipeline stage.
	Stages []StageCost `json:"stages,omitempty"`
}

// Response is the JSON body of a successful fill or extract call.
type Response struct {
	// Entities maps each subject instance to its extracted entities (the
	// map E[c*] of Algorithm 1, restricted to this request's documents).
	Entities map[string][]Entity `json:"entities"`
	// Assignments are the slots the request filled, in deterministic
	// order (POST /v1/fill only).
	Assignments []thor.Assignment `json:"assignments,omitempty"`
	// Stats summarizes the request's execution.
	Stats Stats `json:"stats"`
}

// Error codes of the ErrorInfo envelope.
const (
	// CodeInvalidRequest marks malformed or out-of-bounds request bodies
	// (HTTP 400).
	CodeInvalidRequest = "invalid_request"
	// CodeMethodNotAllowed marks non-POST calls to the POST endpoints
	// (HTTP 405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeOverloaded marks load shedding: the admission queue is full
	// (HTTP 503 with Retry-After).
	CodeOverloaded = "overloaded"
	// CodeDraining marks requests arriving during graceful shutdown
	// (HTTP 503 with Retry-After).
	CodeDraining = "draining"
	// CodeClosed marks requests interrupted by a hard server stop
	// (HTTP 503).
	CodeClosed = "server_closed"
	// CodeVersionConflict marks a table mutation whose If-Match version
	// precondition no longer holds (HTTP 412); re-read GET /v1/table and
	// retry on the current version.
	CodeVersionConflict = "version_conflict"
	// CodeInternal marks unexpected server-side failures (HTTP 500).
	CodeInternal = "internal"
)

// TableInfo is the JSON body of GET /v1/table: the identity of the table
// version currently serving. The fingerprints are content hashes (hex);
// per-concept fingerprints change exactly when that concept's instance set
// does, so two calls bracketing a mutation name which concepts it touched.
type TableInfo struct {
	// Version is the current live-table version (also the response's ETag,
	// as "v<version>", and the value POST /v1/table's If-Match matches).
	Version uint64 `json:"version"`
	// Subject is the schema's subject concept.
	Subject string `json:"subject"`
	// Rows is the table's row count.
	Rows int `json:"rows"`
	// Fingerprint is the whole-table content fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Concepts maps each schema concept to its instance-set fingerprint.
	Concepts map[string]string `json:"concepts"`
	// Readers is the number of requests currently holding a snapshot.
	Readers int64 `json:"readers"`
	// LiveSnapshots counts undrained versions, the current one included; a
	// value above 1 means in-flight requests still finish on a superseded
	// version.
	LiveSnapshots int64 `json:"live_snapshots"`
}

// MutationRequest is the JSON body of POST /v1/table. The optional If-Match
// request header carries an optimistic-concurrency precondition: the version
// (bare, quoted, or in the ETag's "v<version>" form) the caller read before
// composing the mutation; the mutation fails with 412 version_conflict if
// the table has moved on. The response body is tablestore.MutateResult.
type MutationRequest struct {
	// Updates are applied atomically: either the whole batch becomes one new
	// version or (on validation failure) nothing changes. Appends are
	// set-semantic, so replaying a mutation is idempotent and a mutation
	// adding nothing new is a no-op that keeps the current version.
	Updates []tablestore.RowUpdate `json:"updates"`
}

// ErrorInfo is the error payload of the envelope.
type ErrorInfo struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is a human-readable description.
	Message string `json:"message"`
}

// ErrorBody is the uniform error envelope every non-2xx response carries.
type ErrorBody struct {
	// Error describes what went wrong.
	Error ErrorInfo `json:"error"`
	// TraceID is the request's trace identifier (also in the X-Trace-Id
	// response header), empty when the server runs without a tracer.
	TraceID string `json:"trace_id,omitempty"`
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the uniform error envelope. traceID ties the failure to
// its trace (/debug/traces/{id}); empty omits the field.
func writeError(w http.ResponseWriter, status int, code, message, traceID string) {
	writeJSON(w, status, ErrorBody{Error: ErrorInfo{Code: code, Message: message}, TraceID: traceID})
}

// wireEntities converts the merged per-subject entity map to its wire form.
func wireEntities(merged map[string][]thor.Entity) map[string][]Entity {
	out := make(map[string][]Entity, len(merged))
	for subj, es := range merged {
		ws := make([]Entity, len(es))
		for i, e := range es {
			ws[i] = Entity{
				Phrase:   e.Phrase,
				Concept:  string(e.Concept),
				Doc:      e.Doc,
				Matched:  e.Matched,
				Score:    e.Score,
				Semantic: e.ScoreS,
				Jaccard:  e.ScoreW,
				Gestalt:  e.ScoreC,
			}
		}
		out[subj] = ws
	}
	return out
}
