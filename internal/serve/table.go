package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"thor/internal/obs"
	"thor/internal/tablestore"
)

// onTableSwap is the store's OnSwap hook: telemetry, the swap log line, and
// the caller's persistence hook. It runs synchronously on the mutating
// request's goroutine, after the new version is already visible to Acquire.
func (s *Server) onTableSwap(sn *tablestore.Snapshot, res *tablestore.MutateResult) {
	s.ins.tableVersion.Set(int64(sn.Version))
	s.ins.tableSwaps.Add(1)
	s.ins.tableSwapLat.Observe(res.SwapTime)
	s.ins.tableBuildLat.Observe(res.BuildTime)
	s.ins.tableInvalidated.Add(int64(len(res.Invalidated)))
	s.ins.tableRetained.Add(int64(res.Retained))
	s.ins.tableRowsAdded.Add(int64(res.RowsAdded))
	s.ins.tableValsAdded.Add(int64(res.ValuesAdded))
	s.refreshTableGauges()
	if s.opts.Logger != nil {
		s.opts.Logger.Info("table swapped",
			"version", sn.Version,
			"rows_added", res.RowsAdded,
			"values_added", res.ValuesAdded,
			"invalidated", len(res.Invalidated),
			"retained", res.Retained,
			"build_ms", float64(res.BuildTime.Microseconds())/1e3,
			"swap_ms", float64(res.SwapTime.Microseconds())/1e3)
	}
	if s.opts.OnTableSwap != nil {
		s.opts.OnTableSwap(sn.Version, sn.Table)
	}
	if s.opts.Journal != nil {
		concepts := make([]string, 0, len(res.Invalidated))
		for _, c := range res.Invalidated {
			concepts = append(concepts, string(c))
		}
		s.opts.Journal.Append(obs.JournalEvent{
			Kind:     obs.EventTableSwap,
			Subject:  "table",
			Previous: res.Previous,
			Version:  sn.Version,
			Concepts: concepts,
		})
	}
}

// onTableDrain is the store's OnDrain hook: it fires once per superseded
// version, when the last request admitted under it finished.
func (s *Server) onTableDrain(sn *tablestore.Snapshot) {
	s.ins.tableDrains.Add(1)
	s.refreshTableGauges()
	s.opts.Journal.Append(obs.JournalEvent{
		Kind: obs.EventDrain, Subject: "table", To: "end", Version: sn.Version,
	})
}

// refreshTableGauges samples the store's reader/liveness counters into their
// gauges. Sampled on table events and /v1/table reads — not per request, so
// the zero-allocation serving path stays untouched.
func (s *Server) refreshTableGauges() {
	s.ins.tableReaders.Set(s.store.Readers())
	s.ins.tableLive.Set(s.store.Live())
}

// TableVersion returns the live-table version currently serving.
func (s *Server) TableVersion() uint64 { return s.store.Version() }

// WriteTableSnapshot serializes the current table version in the THORTBL1
// binary format (see internal/tablestore) — the daemon's shutdown
// persistence path. Safe under concurrent mutations: the snapshot is pinned
// for the duration of the write.
func (s *Server) WriteTableSnapshot(w io.Writer) (int64, error) {
	return s.store.WriteTo(w)
}

// etag formats a table version as the entity tag GET /v1/table serves and
// If-Match parses.
func etag(version uint64) string { return `"v` + strconv.FormatUint(version, 10) + `"` }

// parseIfMatch extracts the version precondition from an If-Match header.
// Accepted forms: empty or "*" (unconditional), a decimal version, or the
// ETag form with quotes and/or the v prefix ("3", v3, "v3").
func parseIfMatch(h string) (uint64, error) {
	h = strings.TrimSpace(h)
	if h == "" || h == "*" {
		return 0, nil
	}
	h = strings.Trim(h, `"`)
	h = strings.TrimPrefix(h, "v")
	v, err := strconv.ParseUint(h, 10, 64)
	if err != nil || v == 0 {
		return 0, fmt.Errorf("If-Match %q is not a table version", h)
	}
	return v, nil
}

// handleTable serves the live-table API: GET reports the serving version's
// identity (version, content fingerprints, reader counts); POST applies a
// batch of row upserts as one atomic copy-on-write swap, honoring an
// If-Match version precondition.
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	if s.opts.ShardID != "" {
		w.Header().Set("X-Thor-Shard", s.opts.ShardID)
	}
	switch r.Method {
	case http.MethodGet:
		s.handleTableGet(w)
	case http.MethodPost:
		s.handleTableMutate(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"/v1/table accepts GET and POST", "")
	}
}

func (s *Server) handleTableGet(w http.ResponseWriter) {
	sn := s.store.Acquire()
	defer sn.Release()
	s.refreshTableGauges()
	info := TableInfo{
		Version:       sn.Version,
		Subject:       string(sn.Table.Schema.Subject),
		Rows:          len(sn.Table.Rows),
		Fingerprint:   fmt.Sprintf("%016x", sn.Fingerprint),
		Concepts:      make(map[string]string, len(sn.Concepts)),
		Readers:       s.store.Readers(),
		LiveSnapshots: s.store.Live(),
	}
	for c, fp := range sn.Concepts {
		info.Concepts[string(c)] = fmt.Sprintf("%016x", fp)
	}
	w.Header().Set("ETag", etag(sn.Version))
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleTableMutate(w http.ResponseWriter, r *http.Request) {
	ifVersion, err := parseIfMatch(r.Header.Get("If-Match"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error(), "")
		return
	}
	var req MutationRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "decode body: "+err.Error(), "")
		return
	}
	_, _ = io.Copy(io.Discard, body)

	res, err := s.store.Mutate(ifVersion, req.Updates)
	if err != nil {
		var vm *tablestore.VersionMismatchError
		var ve *tablestore.ValidationError
		switch {
		case errors.As(err, &vm):
			// Tell the caller where the table actually is, so one GET-free
			// retry on the current version is possible.
			w.Header().Set("ETag", etag(vm.Have))
			writeError(w, http.StatusPreconditionFailed, CodeVersionConflict, err.Error(), "")
		case errors.As(err, &ve):
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error(), "")
		default:
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error(), "")
		}
		return
	}
	s.ins.tableMutations.Add(1)
	w.Header().Set("ETag", etag(res.Version))
	writeJSON(w, http.StatusOK, res)
}
