package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"thor/internal/schema"
	"thor/internal/tablestore"
)

// tableGet fetches GET /v1/table and decodes the TableInfo payload.
func tableGet(t *testing.T, ts string, client *http.Client) (TableInfo, http.Header) {
	t.Helper()
	resp, err := client.Get(ts + "/v1/table")
	if err != nil {
		t.Fatalf("GET /v1/table: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/table: status %d", resp.StatusCode)
	}
	var info TableInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode TableInfo: %v", err)
	}
	return info, resp.Header
}

// mustUnmarshal decodes raw JSON into v.
func mustUnmarshal(t *testing.T, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("decode %T: %v (%s)", v, err, raw)
	}
}

// TestTableGetReportsIdentity covers GET /v1/table: version, shape, content
// fingerprints and the ETag the mutation API's If-Match matches against.
func TestTableGetReportsIdentity(t *testing.T) {
	table, _ := testWorld()
	_, ts := startEngine(t, Options{}, nil)
	info, hdr := tableGet(t, ts.URL, ts.Client())

	if info.Version != 1 {
		t.Errorf("fresh table version = %d, want 1", info.Version)
	}
	if got := hdr.Get("ETag"); got != `"v1"` {
		t.Errorf("ETag = %q, want %q", got, `"v1"`)
	}
	if info.Subject != "Disease" || info.Rows != len(table.Rows) {
		t.Errorf("identity = %s/%d rows, want Disease/%d", info.Subject, info.Rows, len(table.Rows))
	}
	if want := fmt.Sprintf("%016x", table.Fingerprint()); info.Fingerprint != want {
		t.Errorf("fingerprint = %s, want %s", info.Fingerprint, want)
	}
	if len(info.Concepts) != len(table.Schema.Concepts) {
		t.Fatalf("concept fingerprints: %d entries, want %d", len(info.Concepts), len(table.Schema.Concepts))
	}
	for c, fp := range table.ConceptFingerprints() {
		if got := info.Concepts[string(c)]; got != fmt.Sprintf("%016x", fp) {
			t.Errorf("concept %s fingerprint = %s, want %016x", c, got, fp)
		}
	}
	if info.LiveSnapshots != 1 {
		t.Errorf("live snapshots = %d, want 1", info.LiveSnapshots)
	}
}

// TestTableMutateLifecycle walks the mutation API end to end: a successful
// versioned mutation, its visibility in subsequent fills, the If-Match
// precondition in both its passing and failing forms, validation failures,
// and per-concept fingerprint stability for untouched concepts.
func TestTableMutateLifecycle(t *testing.T) {
	s, ts := startEngine(t, Options{}, nil)
	client := ts.Client()
	before, _ := tableGet(t, ts.URL, client)

	// A stale precondition must not mutate anything: If-Match v99 vs v1.
	req := MutationRequest{Updates: []tablestore.RowUpdate{
		{Subject: "Dengue", Cells: map[schema.Concept][]string{"Anatomy": {"blood"}}},
	}}
	status, raw := postTable(t, client, ts.URL, req, `"v99"`)
	if status != http.StatusPreconditionFailed {
		t.Fatalf("stale If-Match: status %d, want 412 (%s)", status, raw)
	}
	if e := decodeError(t, raw); e.Error.Code != CodeVersionConflict {
		t.Errorf("stale If-Match: code %q, want %q", e.Error.Code, CodeVersionConflict)
	}
	if v := s.TableVersion(); v != 1 {
		t.Fatalf("table moved to v%d under a failed precondition", v)
	}

	// Malformed updates fail validation atomically (nothing applied).
	for name, bad := range map[string]MutationRequest{
		"empty subject":   {Updates: []tablestore.RowUpdate{{Subject: ""}}},
		"unknown concept": {Updates: []tablestore.RowUpdate{{Subject: "Malaria", Cells: map[schema.Concept][]string{"Climate": {"tropical"}}}}},
		"subject column":  {Updates: []tablestore.RowUpdate{{Subject: "Malaria", Cells: map[schema.Concept][]string{"Disease": {"alias"}}}}},
	} {
		status, raw := postTable(t, client, ts.URL, bad, "")
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, status, raw)
		} else if e := decodeError(t, raw); e.Error.Code != CodeInvalidRequest {
			t.Errorf("%s: code %q, want %q", name, e.Error.Code, CodeInvalidRequest)
		}
	}
	if v := s.TableVersion(); v != 1 {
		t.Fatalf("table moved to v%d under failed validation", v)
	}

	// The real mutation, with a passing precondition: one new row, one new
	// value on an existing row.
	req = MutationRequest{Updates: []tablestore.RowUpdate{
		{Subject: "Dengue", Cells: map[schema.Concept][]string{"Anatomy": {"blood"}}},
		{Subject: "Malaria", Cells: map[schema.Concept][]string{"Complication": {"anemia"}}},
	}}
	status, raw = postTable(t, client, ts.URL, req, `"v1"`)
	if status != http.StatusOK {
		t.Fatalf("mutation: status %d (%s)", status, raw)
	}
	var res tablestore.MutateResult
	mustUnmarshal(t, raw, &res)
	if res.Version != 2 || res.Previous != 1 || res.RowsAdded != 1 || res.ValuesAdded != 2 {
		t.Errorf("mutate result = %+v, want version 2 (from 1), 1 row, 2 values", res)
	}
	wantInvalid := []schema.Concept{"Disease", "Anatomy", "Complication"}
	if !reflect.DeepEqual(res.Invalidated, wantInvalid) {
		t.Errorf("invalidated = %v, want %v (new row touches its subject and every written concept)", res.Invalidated, wantInvalid)
	}

	after, hdr := tableGet(t, ts.URL, client)
	if after.Version != 2 || hdr.Get("ETag") != `"v2"` {
		t.Errorf("post-mutation GET: version %d / ETag %q, want 2 / \"v2\"", after.Version, hdr.Get("ETag"))
	}
	if after.Rows != before.Rows+1 {
		t.Errorf("rows = %d, want %d", after.Rows, before.Rows+1)
	}
	if after.Fingerprint == before.Fingerprint {
		t.Error("whole-table fingerprint unchanged across a content mutation")
	}

	// A fill after the swap must compute against — and report — version 2.
	fillStatus, fillRaw, _ := postJSON(t, client, ts.URL+"/v1/fill", Request{Documents: worldDocs})
	if fillStatus != http.StatusOK {
		t.Fatalf("post-mutation fill: status %d", fillStatus)
	}
	if got := decodeResponse(t, fillRaw); got.Stats.TableVersion != 2 {
		t.Errorf("fill reports table version %d, want 2", got.Stats.TableVersion)
	}

	// Replaying the same mutation is a set-semantic no-op: same version, no
	// swap, every concept retained.
	status, raw = postTable(t, client, ts.URL, req, "")
	if status != http.StatusOK {
		t.Fatalf("replay: status %d (%s)", status, raw)
	}
	mustUnmarshal(t, raw, &res)
	if !res.NoOp() || res.Version != 2 || res.Retained != len(wantInvalid) {
		t.Errorf("replayed mutation = %+v, want no-op at version 2 with %d retained", res, len(wantInvalid))
	}

	// A value-only mutation invalidates exactly the written concept.
	status, raw = postTable(t, client, ts.URL, MutationRequest{Updates: []tablestore.RowUpdate{
		{Subject: "Cholera", Cells: map[schema.Concept][]string{"Complication": {"dehydration"}}},
	}}, `v2`)
	if status != http.StatusOK {
		t.Fatalf("value mutation: status %d (%s)", status, raw)
	}
	mustUnmarshal(t, raw, &res)
	if want := []schema.Concept{"Complication"}; !reflect.DeepEqual(res.Invalidated, want) {
		t.Errorf("value-only mutation invalidated %v, want %v", res.Invalidated, want)
	}
	if res.Retained != 2 {
		t.Errorf("value-only mutation retained %d concepts, want 2", res.Retained)
	}
	final, _ := tableGet(t, ts.URL, client)
	if final.Concepts["Disease"] != after.Concepts["Disease"] || final.Concepts["Anatomy"] != after.Concepts["Anatomy"] {
		t.Error("untouched concept fingerprints changed across an unrelated mutation")
	}
	if final.Concepts["Complication"] == after.Concepts["Complication"] {
		t.Error("mutated concept fingerprint did not change")
	}

	// Unsupported methods get a 405 with the Allow set.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/table", nil)
	resp, err := client.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, POST" {
		t.Errorf("DELETE: status %d Allow %q, want 405 with GET, POST", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

// TestTableSwapHammer is the zero-downtime proof: requests hammer /v1/fill
// while a writer walks the table through a sequence of mutations. Every
// response must be bit-identical to a single-shot run over the table version
// it was admitted under — no torn tables, no version skew inside a response —
// and once traffic stops, every superseded snapshot must drain.
func TestTableSwapHammer(t *testing.T) {
	baseTable, space := testWorld()
	s, ts := startEngine(t, Options{QueueDepth: 256}, nil)
	client := ts.Client()

	const mutations = 12
	const readers = 4

	// tables[v] is the expected table content at version v, maintained by
	// replaying each accepted mutation onto a local clone.
	tables := make(map[uint64]*schema.Table, mutations+1)
	tables[1] = baseTable.Clone()

	type obsResp struct {
		version uint64
		resp    Response
	}
	var (
		mu       sync.Mutex
		observed []obsResp
	)
	done := make(chan struct{})

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				status, raw, _ := postJSON(t, client, ts.URL+"/v1/fill", Request{Documents: worldDocs})
				if status != http.StatusOK {
					t.Errorf("fill during mutation storm: status %d (%s)", status, raw)
					return
				}
				got := decodeResponse(t, raw)
				v := got.Stats.TableVersion
				if v < lastVersion {
					t.Errorf("table version went backwards for one client: %d after %d", v, lastVersion)
					return
				}
				lastVersion = v
				mu.Lock()
				observed = append(observed, obsResp{version: v, resp: got})
				mu.Unlock()
			}
		}()
	}

	// The writer: one value appended per mutation, each a new version. The
	// local replay gives the hammer its per-version reference tables.
	cur := tables[1]
	for k := 1; k <= mutations; k++ {
		val := fmt.Sprintf("aux complication %d", k)
		status, raw := postTable(t, client, ts.URL, MutationRequest{Updates: []tablestore.RowUpdate{
			{Subject: "Tuberculosis", Cells: map[schema.Concept][]string{"Complication": {val}}},
		}}, "")
		if status != http.StatusOK {
			t.Fatalf("mutation %d: status %d (%s)", k, status, raw)
		}
		var res tablestore.MutateResult
		mustUnmarshal(t, raw, &res)
		if res.Version != uint64(k+1) {
			t.Fatalf("mutation %d produced version %d, want %d", k, res.Version, k+1)
		}
		next := cur.Clone()
		next.Row("Tuberculosis").Add("Complication", val)
		tables[res.Version] = next
		cur = next
	}
	close(done)
	wg.Wait()

	// Group responses by admitted version; within a version every semantic
	// payload must agree, and the version's payload must be bit-identical to
	// the single-shot reference over that version's table.
	byVersion := make(map[uint64][]Response)
	for _, o := range observed {
		if tables[o.version] == nil {
			t.Fatalf("response reports version %d, which never existed", o.version)
		}
		byVersion[o.version] = append(byVersion[o.version], o.resp)
	}
	if len(observed) == 0 {
		t.Fatal("hammer produced no responses")
	}
	t.Logf("hammer: %d responses across %d distinct versions", len(observed), len(byVersion))
	for v, group := range byVersion {
		table := tables[v]
		ref := singleShot(t, Options{Table: table, Space: space, Tau: 0.6}, worldDocs)
		label := fmt.Sprintf("v%d", v)
		assertBitIdentical(t, label, group[0], ref, table, true)
		for i, other := range group[1:] {
			if !reflect.DeepEqual(other.Entities, group[0].Entities) ||
				!reflect.DeepEqual(other.Assignments, group[0].Assignments) {
				t.Errorf("%s: response %d diverges from its version peers", label, i+1)
			}
		}
	}

	// Drain proof: with traffic stopped, only the current version stays live
	// and no request still holds a snapshot.
	waitFor(t, "superseded snapshots to drain", func() bool {
		return s.store.Live() == 1 && s.store.Readers() == 0
	})
	if v := s.TableVersion(); v != mutations+1 {
		t.Errorf("final version = %d, want %d", v, mutations+1)
	}
}

// postTable POSTs a mutation to /v1/table with an optional If-Match header.
func postTable(t *testing.T, client *http.Client, base string, req MutationRequest, ifMatch string) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal mutation: %v", err)
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/table", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if ifMatch != "" {
		hreq.Header.Set("If-Match", ifMatch)
	}
	resp, err := client.Do(hreq)
	if err != nil {
		t.Fatalf("POST /v1/table: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, raw
}
