// Package promtext parses and lints the Prometheus/OpenMetrics text
// exposition format. It backs the CI scrape-and-lint gate (cmd/promlint),
// the exposition round-trip tests in internal/obs, and the fleet aggregator
// (cmd/thorctl), which re-parses /metrics payloads to merge them.
//
// The parser accepts the subset of the format internal/obs emits — HELP,
// TYPE and EOF comments plus sample lines with optional label blocks — and
// is strict about it: malformed lines are errors, not skips, because the
// whole point is to fail the build on output Prometheus would mis-scrape.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposition line: a metric name (including any magic suffix
// such as _total or _bucket), its label set, its value and an optional
// OpenMetrics exemplar.
type Sample struct {
	// Name is the full sample name as written.
	Name string
	// Labels maps label names to (unescaped) values; nil when unlabeled.
	Labels map[string]string
	// Value is the sample value (+Inf/-Inf/NaN parse to the IEEE values).
	Value float64
	// Exemplar is the sample's exemplar, when the line carries one
	// (" # {labels} value [timestamp]" after the sample value).
	Exemplar *Exemplar
}

// Exemplar is one sample's OpenMetrics exemplar: a label set (typically
// trace_id), a value and an optional timestamp.
type Exemplar struct {
	// Labels maps exemplar label names to (unescaped) values; may be empty.
	Labels map[string]string
	// Value is the exemplar value.
	Value float64
	// HasTimestamp reports whether the line carried an exemplar timestamp.
	HasTimestamp bool
	// Timestamp is the exemplar timestamp in unix seconds (0 when absent).
	Timestamp float64
}

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(name string) string {
	return s.Labels[name]
}

// LabelString renders the label set canonically (sorted, escaped), for use
// as a series key.
func (s Sample) LabelString() string {
	if len(s.Labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	return b.String()
}

// Family is one metric family: a TYPE (and optional HELP) plus the samples
// whose names belong to it.
type Family struct {
	// Name is the family name from the TYPE line.
	Name string
	// Type is the declared type: counter, gauge, histogram, summary or
	// untyped.
	Type string
	// Help is the HELP text ("" when absent).
	Help string
	// Samples are the family's samples in exposition order.
	Samples []Sample
}

// Exposition is one parsed scrape.
type Exposition struct {
	// Families maps family names to their parsed contents.
	Families map[string]*Family
	// Order lists family names in first-appearance order.
	Order []string
	// SawEOF reports whether the payload ended with the OpenMetrics "# EOF"
	// marker.
	SawEOF bool
}

// Family returns the named family (nil when absent).
func (e *Exposition) Family(name string) *Family {
	if e == nil {
		return nil
	}
	return e.Families[name]
}

// familySuffixes are the magic sample-name suffixes that map a sample back
// to its family, per declared type.
var familySuffixes = map[string][]string{
	"counter":   {"_total", "_created"},
	"histogram": {"_bucket", "_sum", "_count", "_created"},
	"summary":   {"_sum", "_count", "_created"},
}

// familyOf resolves which declared family a sample name belongs to. Exact
// name match wins; otherwise a declared family whose typed suffix produces
// the sample name.
func (e *Exposition) familyOf(sample string) *Family {
	if f := e.Families[sample]; f != nil {
		return f
	}
	for _, f := range e.Families {
		for _, suf := range familySuffixes[f.Type] {
			if sample == f.Name+suf {
				return f
			}
		}
	}
	return nil
}

// Parse reads one exposition payload. It returns the parsed families along
// with the first syntax error encountered (the exposition parsed so far is
// still returned, so linting can report both).
func Parse(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Families: make(map[string]*Family)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if exp.SawEOF {
			return exp, fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			if err := exp.parseComment(line); err != nil {
				return exp, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return exp, fmt.Errorf("line %d: %w", lineNo, err)
		}
		f := exp.familyOf(s.Name)
		if f == nil {
			// Keep undeclared samples under their own name so the linter can
			// flag them with context.
			f = &Family{Name: s.Name, Type: ""}
			exp.Families[s.Name] = f
			exp.Order = append(exp.Order, s.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return exp, fmt.Errorf("read: %w", err)
	}
	return exp, nil
}

// parseComment handles "# TYPE", "# HELP" and "# EOF" lines; other comments
// are ignored per the format.
func (e *Exposition) parseComment(line string) error {
	if line == "# EOF" {
		e.SawEOF = true
		return nil
	}
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if f := e.Families[name]; f != nil {
			if f.Type != "" {
				return fmt.Errorf("duplicate TYPE for family %q", name)
			}
			// HELP (or an early undeclared sample) created the entry first.
			f.Type = typ
			return nil
		}
		e.Families[name] = &Family{Name: name, Type: typ}
		e.Order = append(e.Order, name)
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		name := fields[2]
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		if f := e.Families[name]; f != nil {
			f.Help = help
		} else {
			e.Families[name] = &Family{Name: name, Help: help}
			e.Order = append(e.Order, name)
		}
	}
	return nil
}

// parseSample parses one sample line:
// name[{labels}] value [timestamp] [# {exemplar-labels} value [timestamp]].
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	// Name runs until '{' or whitespace.
	i := strings.IndexAny(rest, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	rest = rest[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", s.Name, err)
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " ")
	// An OpenMetrics exemplar is introduced by " # " after the value (and
	// optional timestamp). The sample's own label block is already consumed,
	// so the first occurrence here is the introducer, never label content.
	if j := strings.Index(rest, " # "); j >= 0 {
		ex, err := parseExemplar(rest[j+3:])
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", s.Name, err)
		}
		s.Exemplar = ex
		rest = rest[:j]
	}
	// Value is the next field; an optional timestamp may follow.
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	if rest == "" {
		return s, fmt.Errorf("sample %q: missing value", s.Name)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value %q", s.Name, rest)
	}
	s.Value = v
	return s, nil
}

// parseExemplar parses an exemplar clause: "{labels} value [timestamp]".
// The label block is mandatory (it may be empty: "{}"), the value mandatory,
// the timestamp optional; anything further is an error.
func parseExemplar(in string) (*Exemplar, error) {
	if in == "" || in[0] != '{' {
		return nil, fmt.Errorf("exemplar must start with a label block")
	}
	labels, rest, err := parseLabels(in)
	if err != nil {
		return nil, fmt.Errorf("exemplar: %w", err)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, fmt.Errorf("exemplar missing value")
	}
	if len(fields) > 2 {
		return nil, fmt.Errorf("exemplar has trailing fields %q", fields[2:])
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("exemplar: bad value %q", fields[0])
	}
	ex := &Exemplar{Labels: labels, Value: v}
	if len(fields) == 2 {
		ts, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("exemplar: bad timestamp %q", fields[1])
		}
		ex.HasTimestamp, ex.Timestamp = true, ts
	}
	return ex, nil
}

// parseLabels parses a '{…}' label block, handling escaped quotes,
// backslashes and newlines in values. Returns the remainder after '}'.
func parseLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	rest := in[1:] // past '{'
	for {
		rest = strings.TrimLeft(rest, ",")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label pair near %q", rest)
		}
		name := rest[:eq]
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return nil, "", fmt.Errorf("label %q: unquoted value", name)
		}
		val, tail, err := parseQuoted(rest)
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", name, err)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val
		rest = tail
	}
}

// parseQuoted consumes a leading double-quoted, backslash-escaped string
// and returns its unescaped value plus the remainder.
func parseQuoted(in string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '\\':
			if i+1 >= len(in) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch in[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(in[i])
			default:
				return "", "", fmt.Errorf("bad escape \\%c", in[i])
			}
		case '"':
			return b.String(), in[i+1:], nil
		default:
			b.WriteByte(in[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}
