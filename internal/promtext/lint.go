package promtext

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Problem is one lint finding.
type Problem struct {
	// Family is the metric family the finding concerns ("" for payload-level
	// findings such as a missing EOF marker).
	Family string
	// Msg describes the defect.
	Msg string
}

// String renders the finding with its family prefix when one applies.
func (p Problem) String() string {
	if p.Family == "" {
		return p.Msg
	}
	return p.Family + ": " + p.Msg
}

// validTypes are the exposition types the linter accepts.
var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]* and is
// not a reserved __ name.
func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// Lint checks a parsed exposition for structural defects: invalid names,
// missing or unknown TYPEs, counters without _total samples, histograms
// with non-cumulative or +Inf-less buckets, _count/+Inf disagreement,
// out-of-range quantiles, duplicate series and a missing EOF marker.
// Findings come back sorted by family.
func Lint(exp *Exposition) []Problem {
	var out []Problem
	if exp == nil {
		return []Problem{{Msg: "nil exposition"}}
	}
	if !exp.SawEOF {
		out = append(out, Problem{Msg: "missing # EOF marker"})
	}
	names := make([]string, 0, len(exp.Families))
	for n := range exp.Families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, lintFamily(exp.Families[name])...)
	}
	return out
}

// lintFamily checks one family.
func lintFamily(f *Family) []Problem {
	var out []Problem
	bad := func(format string, args ...any) {
		out = append(out, Problem{Family: f.Name, Msg: fmt.Sprintf(format, args...)})
	}
	if !validMetricName(f.Name) {
		bad("invalid metric name")
	}
	if f.Type == "" {
		bad("sample without a # TYPE declaration")
		return out
	}
	if !validTypes[f.Type] {
		bad("unknown type %q", f.Type)
		return out
	}
	seen := make(map[string]bool)
	for _, s := range f.Samples {
		key := s.Name + "|" + s.LabelString()
		if seen[key] {
			bad("duplicate series %s{%s}", s.Name, s.LabelString())
		}
		seen[key] = true
		for ln := range s.Labels {
			if !validLabelName(ln) {
				bad("invalid label name %q on %s", ln, s.Name)
			}
		}
		out = append(out, lintExemplar(f, s)...)
	}
	switch f.Type {
	case "counter":
		out = append(out, lintCounter(f)...)
	case "histogram":
		out = append(out, lintHistogram(f)...)
	case "summary":
		out = append(out, lintSummary(f)...)
	}
	return out
}

// lintExemplar checks one sample's exemplar, when present: OpenMetrics
// allows exemplars only on histogram _bucket and counter _total samples,
// label names must be valid, the combined label-set length is bounded at 128
// runes, and a bucket exemplar's value must not exceed its le bound.
func lintExemplar(f *Family, s Sample) []Problem {
	if s.Exemplar == nil {
		return nil
	}
	var out []Problem
	bad := func(format string, args ...any) {
		out = append(out, Problem{Family: f.Name, Msg: fmt.Sprintf(format, args...)})
	}
	isBucket := f.Type == "histogram" && s.Name == f.Name+"_bucket"
	isTotal := f.Type == "counter" && s.Name == f.Name+"_total"
	if !isBucket && !isTotal {
		bad("exemplar on %s: exemplars are allowed only on histogram _bucket and counter _total samples", s.Name)
	}
	runes := 0
	for ln, lv := range s.Exemplar.Labels {
		if !validLabelName(ln) {
			bad("invalid exemplar label name %q on %s", ln, s.Name)
		}
		runes += utf8.RuneCountInString(ln) + utf8.RuneCountInString(lv)
	}
	if runes > 128 {
		bad("exemplar label set on %s exceeds 128 runes (%d)", s.Name, runes)
	}
	if isBucket {
		if le, err := parseLE(s.Label("le")); err == nil && s.Exemplar.Value > le {
			bad("exemplar value %g on %s exceeds bucket le %g", s.Exemplar.Value, s.Name, le)
		}
	}
	return out
}

// lintCounter requires every sample to be <family>_total or
// <family>_created, with at least one _total.
func lintCounter(f *Family) []Problem {
	var out []Problem
	sawTotal := false
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_total":
			sawTotal = true
			if s.Value < 0 {
				out = append(out, Problem{Family: f.Name, Msg: "negative counter value"})
			}
		case f.Name + "_created":
		default:
			out = append(out, Problem{Family: f.Name,
				Msg: fmt.Sprintf("counter sample %q is not _total or _created", s.Name)})
		}
	}
	if !sawTotal && len(f.Samples) > 0 {
		out = append(out, Problem{Family: f.Name, Msg: "counter without a _total sample"})
	}
	return out
}

// histSeries groups one histogram series' buckets and _sum/_count by label
// set (excluding le).
type histSeries struct {
	les    []float64
	counts []float64
	count  float64
	hasCnt bool
}

// lintHistogram checks each labeled series: buckets sorted by le and
// cumulative, a +Inf bucket present, and _count equal to the +Inf bucket.
func lintHistogram(f *Family) []Problem {
	var out []Problem
	series := make(map[string]*histSeries)
	get := func(s Sample) *histSeries {
		// Key by the label set minus le so all parts of one series group.
		rest := make([]string, 0, len(s.Labels))
		for k, v := range s.Labels {
			if k != "le" {
				rest = append(rest, k+"="+v)
			}
		}
		sort.Strings(rest)
		key := strings.Join(rest, ",")
		hs := series[key]
		if hs == nil {
			hs = &histSeries{}
			series[key] = hs
		}
		return hs
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				out = append(out, Problem{Family: f.Name, Msg: "_bucket without le label"})
				continue
			}
			le, err := parseLE(leStr)
			if err != nil {
				out = append(out, Problem{Family: f.Name, Msg: fmt.Sprintf("bad le %q", leStr)})
				continue
			}
			hs := get(s)
			hs.les = append(hs.les, le)
			hs.counts = append(hs.counts, s.Value)
		case f.Name + "_count":
			hs := get(s)
			hs.count, hs.hasCnt = s.Value, true
		case f.Name + "_sum", f.Name + "_created":
		default:
			out = append(out, Problem{Family: f.Name,
				Msg: fmt.Sprintf("unexpected histogram sample %q", s.Name)})
		}
	}
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		hs := series[key]
		where := key
		if where == "" {
			where = "(unlabeled)"
		}
		if len(hs.les) == 0 {
			out = append(out, Problem{Family: f.Name,
				Msg: fmt.Sprintf("series %s has no buckets", where)})
			continue
		}
		if !sort.Float64sAreSorted(hs.les) {
			out = append(out, Problem{Family: f.Name,
				Msg: fmt.Sprintf("series %s buckets not sorted by le", where)})
		}
		for i := 1; i < len(hs.counts); i++ {
			if hs.counts[i] < hs.counts[i-1] {
				out = append(out, Problem{Family: f.Name,
					Msg: fmt.Sprintf("series %s buckets not cumulative", where)})
				break
			}
		}
		last := hs.les[len(hs.les)-1]
		if !math.IsInf(last, +1) {
			out = append(out, Problem{Family: f.Name,
				Msg: fmt.Sprintf("series %s missing +Inf bucket", where)})
		} else if hs.hasCnt && hs.counts[len(hs.counts)-1] != hs.count {
			out = append(out, Problem{Family: f.Name,
				Msg: fmt.Sprintf("series %s _count %g != +Inf bucket %g",
					where, hs.count, hs.counts[len(hs.counts)-1])})
		}
		if !hs.hasCnt {
			out = append(out, Problem{Family: f.Name,
				Msg: fmt.Sprintf("series %s missing _count", where)})
		}
	}
	return out
}

// parseLE parses a bucket bound, accepting the exposition infinity
// spellings.
func parseLE(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// lintSummary checks quantile labels are numbers in [0, 1] and quantile
// values per series are monotone.
func lintSummary(f *Family) []Problem {
	var out []Problem
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name:
			q, ok := s.Labels["quantile"]
			if !ok {
				out = append(out, Problem{Family: f.Name, Msg: "summary sample without quantile label"})
				continue
			}
			v, err := strconv.ParseFloat(q, 64)
			if err != nil || v < 0 || v > 1 {
				out = append(out, Problem{Family: f.Name, Msg: fmt.Sprintf("quantile %q out of [0,1]", q)})
			}
		case f.Name + "_sum", f.Name + "_count", f.Name + "_created":
		default:
			out = append(out, Problem{Family: f.Name,
				Msg: fmt.Sprintf("unexpected summary sample %q", s.Name)})
		}
	}
	return out
}

// RequireFamilies checks that, for every entry in prefixes, at least one
// declared family matches: an exact family name, or — when the entry ends
// in '_' or '*' — a prefix. It returns one Problem per unmet requirement.
// This is how CI asserts the scrape actually carries the thor_sparsity_*,
// SLO and runtime families rather than merely being well-formed.
func RequireFamilies(exp *Exposition, prefixes []string) []Problem {
	var out []Problem
	for _, want := range prefixes {
		prefix := strings.HasSuffix(want, "_") || strings.HasSuffix(want, "*")
		pat := strings.TrimSuffix(want, "*")
		found := false
		for name, f := range exp.Families {
			if f.Type == "" {
				continue // undeclared pseudo-family
			}
			if name == want || (prefix && strings.HasPrefix(name, pat)) {
				found = true
				break
			}
		}
		if !found {
			out = append(out, Problem{Msg: fmt.Sprintf("required metric family %q not found", want)})
		}
	}
	return out
}
