package promtext

import (
	"strings"
	"testing"
)

func parseOne(t *testing.T, payload string) *Exposition {
	t.Helper()
	exp, err := Parse(strings.NewReader(payload))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return exp
}

// TestParseEscapedLabelValues covers the escape forms the format allows in
// label values: \" \\ and \n.
func TestParseEscapedLabelValues(t *testing.T) {
	exp := parseOne(t, `# TYPE m counter
m_total{q="say \"hi\"",p="a\\b",nl="line1\nline2"} 3
# EOF
`)
	s := exp.Family("m").Samples[0]
	if got := s.Label("q"); got != `say "hi"` {
		t.Errorf("escaped quote label = %q", got)
	}
	if got := s.Label("p"); got != `a\b` {
		t.Errorf("escaped backslash label = %q", got)
	}
	if got := s.Label("nl"); got != "line1\nline2" {
		t.Errorf("escaped newline label = %q", got)
	}
}

func TestParseRejectsBadEscapes(t *testing.T) {
	for _, payload := range []string{
		"m{a=\"bad \\t escape\"} 1\n",
		"m{a=\"dangling \\\n",
		"m{a=\"unterminated} 1\n",
		"m{a=unquoted} 1\n",
		"m{a=\"x\",a=\"y\"} 1\n", // duplicate label
	} {
		if _, err := Parse(strings.NewReader(payload)); err == nil {
			t.Errorf("Parse accepted %q", payload)
		}
	}
}

// TestParseEmptyHelp covers HELP lines with no text: "# HELP name" is legal
// and leaves Help empty rather than erroring or mis-splitting.
func TestParseEmptyHelp(t *testing.T) {
	exp := parseOne(t, `# HELP m
# TYPE m gauge
m 1
# EOF
`)
	f := exp.Family("m")
	if f == nil || f.Help != "" || f.Type != "gauge" {
		t.Fatalf("empty HELP mishandled: %+v", f)
	}
	if probs := Lint(exp); len(probs) > 0 {
		t.Fatalf("empty HELP should lint clean: %v", probs)
	}
	// HELP with text still round-trips.
	exp = parseOne(t, "# HELP m queue depth right now\n# TYPE m gauge\nm 1\n# EOF\n")
	if got := exp.Family("m").Help; got != "queue depth right now" {
		t.Fatalf("HELP text = %q", got)
	}
	// A malformed HELP line (no metric name) errors.
	if _, err := Parse(strings.NewReader("# HELP\n")); err == nil {
		t.Fatal("bare # HELP accepted")
	}
}

// TestParseExemplarAccept is the accept table for the exemplar clause.
func TestParseExemplarAccept(t *testing.T) {
	cases := []struct {
		name    string
		line    string
		labels  map[string]string
		value   float64
		ts      float64
		hasTS   bool
	}{
		{
			name:   "bucket with trace and timestamp",
			line:   `m_bucket{le="0.01"} 5 # {trace_id="abc123"} 0.003 1700000000.123`,
			labels: map[string]string{"trace_id": "abc123"},
			value:  0.003, ts: 1700000000.123, hasTS: true,
		},
		{
			name:   "no timestamp",
			line:   `m_bucket{le="+Inf"} 5 # {trace_id="ff"} 1.5`,
			labels: map[string]string{"trace_id": "ff"},
			value:  1.5,
		},
		{
			name:   "empty label set",
			line:   `m_bucket{le="1"} 2 # {} 0.5`,
			labels: map[string]string{},
			value:  0.5,
		},
		{
			name:   "sample timestamp then exemplar",
			line:   `m_bucket{le="1"} 2 1700000001 # {trace_id="aa"} 0.25`,
			labels: map[string]string{"trace_id": "aa"},
			value:  0.25,
		},
		{
			name:   "escaped hash inside label value",
			line:   `m_bucket{le="1",note="a # b"} 2 # {trace_id="aa"} 0.25`,
			labels: map[string]string{"trace_id": "aa"},
			value:  0.25,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			payload := "# TYPE m histogram\n" + c.line + "\n# EOF\n"
			exp := parseOne(t, payload)
			s := exp.Family("m").Samples[0]
			if s.Exemplar == nil {
				t.Fatal("no exemplar parsed")
			}
			if s.Exemplar.Value != c.value {
				t.Errorf("value = %g, want %g", s.Exemplar.Value, c.value)
			}
			if s.Exemplar.HasTimestamp != c.hasTS || (c.hasTS && s.Exemplar.Timestamp != c.ts) {
				t.Errorf("timestamp = (%v, %g), want (%v, %g)",
					s.Exemplar.HasTimestamp, s.Exemplar.Timestamp, c.hasTS, c.ts)
			}
			for k, v := range c.labels {
				if s.Exemplar.Labels[k] != v {
					t.Errorf("label %s = %q, want %q", k, s.Exemplar.Labels[k], v)
				}
			}
		})
	}
}

// TestParseExemplarReject is the reject table: malformed exemplar clauses
// are errors, not skips.
func TestParseExemplarReject(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"missing label block", `m_bucket{le="1"} 2 # 0.5`},
		{"missing value", `m_bucket{le="1"} 2 # {trace_id="aa"}`},
		{"bad value", `m_bucket{le="1"} 2 # {trace_id="aa"} abc`},
		{"bad timestamp", `m_bucket{le="1"} 2 # {trace_id="aa"} 0.5 xyz`},
		{"trailing fields", `m_bucket{le="1"} 2 # {trace_id="aa"} 0.5 1.0 extra`},
		{"unterminated labels", `m_bucket{le="1"} 2 # {trace_id="aa 0.5`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			payload := "# TYPE m histogram\n" + c.line + "\n# EOF\n"
			if _, err := Parse(strings.NewReader(payload)); err == nil {
				t.Errorf("Parse accepted %q", c.line)
			}
		})
	}
}

// lintPayload parses and lints, returning the joined findings.
func lintPayload(t *testing.T, payload string) []Problem {
	t.Helper()
	exp, err := Parse(strings.NewReader(payload))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return Lint(exp)
}

func hasProblem(probs []Problem, substr string) bool {
	for _, p := range probs {
		if strings.Contains(p.String(), substr) {
			return true
		}
	}
	return false
}

// TestLintExemplarAccept: well-placed exemplars lint clean.
func TestLintExemplarAccept(t *testing.T) {
	clean := `# TYPE h histogram
h_bucket{le="0.01"} 1 # {trace_id="abc"} 0.003
h_bucket{le="+Inf"} 1
h_sum 0.003
h_count 1
# TYPE c counter
c_total 5 # {trace_id="def"} 1
# EOF
`
	if probs := lintPayload(t, clean); len(probs) > 0 {
		t.Fatalf("clean exemplars flagged: %v", probs)
	}
}

// TestLintExemplarReject: misplaced, oversized and out-of-bucket exemplars
// are flagged.
func TestLintExemplarReject(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		want    string
	}{
		{
			"exemplar on gauge",
			"# TYPE g gauge\ng 1 # {trace_id=\"a\"} 1\n# EOF\n",
			"allowed only on",
		},
		{
			"exemplar on histogram _sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1 # {trace_id=\"a\"} 1\nh_count 1\n# EOF\n",
			"allowed only on",
		},
		{
			"invalid exemplar label name",
			"# TYPE c counter\nc_total 1 # {__bad=\"a\"} 1\n# EOF\n",
			"invalid exemplar label name",
		},
		{
			"label set over 128 runes",
			"# TYPE c counter\nc_total 1 # {trace_id=\"" + strings.Repeat("x", 130) + "\"} 1\n# EOF\n",
			"exceeds 128 runes",
		},
		{
			"bucket exemplar above le",
			"# TYPE h histogram\nh_bucket{le=\"0.01\"} 1 # {trace_id=\"a\"} 5.0\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n# EOF\n",
			"exceeds bucket le",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			probs := lintPayload(t, c.payload)
			if !hasProblem(probs, c.want) {
				t.Errorf("lint missed %q: %v", c.want, probs)
			}
		})
	}
}
