package router

import (
	"encoding/json"
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// ShardConfig describes one shard: a set of identical replicas serving the
// same table partition.
type ShardConfig struct {
	// ID names the shard in metrics, topology output and degraded markers.
	ID string `json:"id"`
	// Concepts lists the concept domains this shard's table partition
	// serves. Informational: it is surfaced in topology output and in the
	// `degraded` marker of brownout responses so clients know which slots
	// a partial response is missing. Empty means "unspecified".
	Concepts []string `json:"concepts,omitempty"`
	// Backends are the replicas' base URLs ("host:port" or
	// "http://host:port").
	Backends []string `json:"backends"`
}

// ShardMap is the router's static topology: the JSON document passed to
// thor-router -shard-map.
type ShardMap struct {
	// Shards are the partitions; every request fans out to one replica of
	// each.
	Shards []ShardConfig `json:"shards"`
}

// SingleShard builds the replica-only topology: one shard ("all") whose
// replicas are the given backends. This is what thor-router -backends
// produces.
func SingleShard(backends []string) ShardMap {
	return ShardMap{Shards: []ShardConfig{{ID: "all", Backends: backends}}}
}

// ParseShardMap parses and validates a shard-map JSON document. Backend URLs
// are normalized (scheme defaulted to http, trailing slash stripped); shard
// IDs and backend URLs must be unique, and every shard needs at least one
// backend.
func ParseShardMap(data []byte) (ShardMap, error) {
	var m ShardMap
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return ShardMap{}, fmt.Errorf("shard map: %w", err)
	}
	if err := m.validate(); err != nil {
		return ShardMap{}, err
	}
	return m, nil
}

// validate normalizes the map in place and checks its invariants.
func (m *ShardMap) validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("shard map: no shards")
	}
	ids := make(map[string]bool, len(m.Shards))
	urls := make(map[string]bool)
	for i := range m.Shards {
		sh := &m.Shards[i]
		if sh.ID == "" {
			return fmt.Errorf("shard map: shard %d has no id", i)
		}
		if ids[sh.ID] {
			return fmt.Errorf("shard map: duplicate shard id %q", sh.ID)
		}
		ids[sh.ID] = true
		if len(sh.Backends) == 0 {
			return fmt.Errorf("shard map: shard %q has no backends", sh.ID)
		}
		for j, b := range sh.Backends {
			nb, err := NormalizeBackend(b)
			if err != nil {
				return fmt.Errorf("shard map: shard %q backend %d: %w", sh.ID, j, err)
			}
			if urls[nb] {
				return fmt.Errorf("shard map: backend %q appears twice", nb)
			}
			urls[nb] = true
			sh.Backends[j] = nb
		}
		sort.Strings(sh.Concepts)
	}
	return nil
}

// NormalizeBackend canonicalizes a backend address: "host:port" gains an
// http:// scheme, trailing slashes are stripped, and the result must be a
// bare scheme://host[:port] base URL.
func NormalizeBackend(s string) (string, error) {
	s = strings.TrimSpace(strings.TrimRight(strings.TrimSpace(s), "/"))
	if s == "" {
		return "", fmt.Errorf("empty backend address")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("backend address %q: %w", s, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("backend address %q: scheme must be http or https", s)
	}
	if u.Host == "" || u.Path != "" || u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("backend address %q: want a bare scheme://host[:port]", s)
	}
	return u.Scheme + "://" + u.Host, nil
}
