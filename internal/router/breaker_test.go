package router

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for breaker cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 5 * time.Second, Now: clk.Now})

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.Record(false)
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", st)
	}
	// A success resets the consecutive count: two more failures must not
	// open it.
	b.Allow()
	b.Record(true)
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after reset+2 failures = %v, want closed", st)
	}
	b.Allow()
	b.Record(false)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", st)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 5 * time.Second, Now: clk.Now})
	b.Allow()
	b.Record(false)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}

	// Before the cooldown: still rejecting.
	clk.Advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("open breaker allowed before cooldown")
	}

	// After the cooldown: exactly one probe.
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker denied the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe success closes.
	b.Record(true)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", st)
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied")
	}
	b.Record(true)
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, Now: clk.Now})
	b.Allow()
	b.Record(false)
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe denied")
	}
	b.Record(false)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", st)
	}
	// The cooldown restarts from the re-open.
	clk.Advance(900 * time.Millisecond)
	if b.Allow() {
		t.Fatal("allowed before the restarted cooldown elapsed")
	}
	clk.Advance(200 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe denied after restarted cooldown")
	}
	b.Record(true)
}

func TestBreakerRecordNeutralReleasesProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, Now: clk.Now})
	b.Allow()
	b.Record(false)
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe denied")
	}
	// The probe was abandoned (hedge loser / client gone): neutral release
	// keeps the breaker half-open and re-admits the next probe.
	b.RecordNeutral()
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state after neutral = %v, want half-open", st)
	}
	if !b.Allow() {
		t.Fatal("next probe denied after neutral release")
	}
	b.Record(true)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state = %v, want closed", st)
	}
}

func TestBreakerTransitionsObserved(t *testing.T) {
	clk := newFakeClock()
	var mu sync.Mutex
	var seen [][2]BreakerState
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, Now: clk.Now,
		OnTransition: func(from, to BreakerState) {
			mu.Lock()
			seen = append(seen, [2]BreakerState{from, to})
			mu.Unlock()
		}})
	b.Allow()
	b.Record(false) // closed → open
	clk.Advance(time.Second)
	b.Allow()      // open → half-open
	b.Record(true) // half-open → closed

	want := [][2]BreakerState{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestBreakerStaleRecordWhileOpenIgnored(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Minute, Now: clk.Now})
	b.Allow()
	b.Allow() // hypothetical second in-flight call (closed admits many)
	b.Record(false)
	// The straggler's success arrives after the breaker opened: stale, must
	// not close it.
	b.Record(true)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v, want open (stale record ignored)", st)
	}
}
