// Package router is the serving tier's front door: an HTTP router that fans
// /v1/fill and /v1/extract over N thord backends and makes backend failure a
// handled condition instead of an outage.
//
// # Topology
//
// A Router is configured with a shard map. Each shard is a set of identical
// replicas (same table, same embedding space); different shards may hold
// different concept-domain partitions of the table. Replica-only deployments
// use a single shard: every request goes to exactly one backend — chosen by
// rendezvous-hashing the request's document names so repeat corpora keep
// hitting the same warm caches — and its response is streamed back verbatim,
// byte-identical to talking to that backend directly. Multi-shard
// deployments fan every request out to one replica of each shard and merge
// the per-domain partial responses deterministically.
//
// # Failure handling
//
// Four mechanisms compose, from fastest to slowest reaction:
//
//   - Hedged reads: when a backend's reply exceeds a hedge threshold derived
//     from the router's own per-backend p95 sketch (deadline-aware, clamped),
//     the same call is issued to the next-preferred replica; the first
//     success wins and the loser's context is cancelled, which the backend's
//     coalescer honors by dropping the request before batch start.
//   - Circuit breakers: consecutive per-backend failures open a breaker
//     (closed → open → half-open with a single probe), removing the backend
//     from selection until a probe succeeds.
//   - Bounded retries: transient failures (connection errors, 503 sheds) are
//     retried with capped jittered backoff via chaos.Retry; 503 responses
//     carry Retry-After hints that take precedence over the computed delay.
//   - Brownout: when every replica of a shard is unavailable, multi-shard
//     responses degrade to partial results with a per-shard `degraded`
//     marker instead of failing the whole request.
//
// Health classification runs in a background prober: each backend's /readyz
// is polled (ok / degraded / down) and its SLO burn rate scraped from
// /metrics, ordering replica preference health-first.
//
// Every router decision is observable: router.* metric families (requests,
// hedges, retries, brownouts, per-backend latency and breaker state) and
// trace propagation — an inbound traceparent becomes the root of a
// cross-process span tree whose per-backend child spans are the traceparents
// the backends see.
package router
