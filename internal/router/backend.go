package router

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thor/internal/obs"
	"thor/internal/promtext"
)

// healthClass is the prober's three-way classification of a backend.
type healthClass int

const (
	// healthHealthy: /readyz returned 200.
	healthHealthy healthClass = iota
	// healthDegraded: the backend is up but its SLO engine reports burn
	// (/readyz 503 with status "degraded"). Used as fallback only.
	healthDegraded
	// healthDown: /readyz unreachable or draining. Last resort — a down
	// classification is the prober's opinion, possibly stale, so a down
	// backend is still tried when nothing better exists.
	healthDown
)

// String renders the class for topology output.
func (h healthClass) String() string {
	switch h {
	case healthHealthy:
		return "healthy"
	case healthDegraded:
		return "degraded"
	}
	return "down"
}

// backend is the router's per-replica state: identity, breaker, prober
// belief and the latency sketch the hedge threshold derives from.
type backend struct {
	url   string // normalized base URL
	host  string // host:port, the metrics label value
	shard string
	brk   *Breaker

	// mu serializes the sketch (not concurrency-safe) and health fields.
	mu      sync.Mutex
	sketch  *obs.Sketch
	health  healthClass
	burn    float64 // worst SLO burn rate scraped from /metrics
	lastErr string

	requests atomic.Int64
	errors   atomic.Int64

	// Pre-resolved labeled metrics.
	mReqs    *obs.Counter
	mErrs    *obs.Counter
	mLatency *obs.Histogram
	mState   *obs.Gauge
	mTrans   *obs.Counter
	mBurn    *obs.FloatGauge
}

// newBackend builds the state for one replica, registering its labeled
// metric series and wiring breaker transitions into them. notify, when
// non-nil, additionally observes transitions (the router logs them).
func newBackend(url, shard string, bcfg BreakerConfig, reg *obs.Registry, notify func(host string, from, to BreakerState)) *backend {
	host := url
	if i := strings.Index(host, "://"); i >= 0 {
		host = host[i+3:]
	}
	b := &backend{
		url:      url,
		host:     host,
		shard:    shard,
		sketch:   obs.NewSketch(0),
		mReqs:    reg.Counter(obs.LabeledName("router.backend.requests", "backend", host)),
		mErrs:    reg.Counter(obs.LabeledName("router.backend.errors", "backend", host)),
		mLatency: reg.Histogram(obs.LabeledName("router.backend.latency", "backend", host)),
		mState:   reg.Gauge(obs.LabeledName("router.breaker.state", "backend", host)),
		mTrans:   reg.Counter(obs.LabeledName("router.breaker.transitions", "backend", host)),
		mBurn:    reg.FloatGauge(obs.LabeledName("router.backend.burn_rate", "backend", host)),
	}
	cfg := bcfg
	cfg.OnTransition = func(from, to BreakerState) {
		b.mState.Set(int64(to))
		b.mTrans.Add(1)
		if notify != nil {
			notify(host, from, to)
		}
	}
	b.brk = NewBreaker(cfg)
	return b
}

// observe records one call's outcome into the backend's sketch, counters and
// breaker.
func (b *backend) observe(d time.Duration, ok bool) {
	b.requests.Add(1)
	b.mReqs.Add(1)
	b.mLatency.Observe(d)
	if !ok {
		b.errors.Add(1)
		b.mErrs.Add(1)
	}
	b.mu.Lock()
	b.sketch.ObserveDuration(d)
	b.mu.Unlock()
	b.brk.Record(ok)
}

// observeCancelled releases the breaker for a call abandoned by our own
// cancellation (hedge loser, client gone): neither a success nor a failure,
// and its latency — cancellation time, not backend time — stays out of the
// sketch.
func (b *backend) observeCancelled() {
	b.requests.Add(1)
	b.mReqs.Add(1)
	b.brk.RecordNeutral()
}

// p95 returns the router-observed p95 latency for the backend, 0 until the
// sketch has samples.
func (b *backend) p95() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.sketch.Count() == 0 {
		return 0
	}
	return time.Duration(b.sketch.Query(0.95) * float64(time.Second))
}

// classify returns the prober's current belief.
func (b *backend) classify() (healthClass, float64, string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.health, b.burn, b.lastErr
}

// setHealth records a prober observation.
func (b *backend) setHealth(h healthClass, burn float64, lastErr string) {
	b.mu.Lock()
	b.health = h
	b.burn = burn
	b.lastErr = lastErr
	b.mu.Unlock()
	b.mBurn.Set(burn)
}

// status snapshots the backend for topology output.
func (b *backend) status() BackendStatus {
	b.mu.Lock()
	h, burn := b.health, b.burn
	var p50, p95 float64
	if b.sketch.Count() > 0 {
		p50 = b.sketch.Query(0.50) * 1e3
		p95 = b.sketch.Query(0.95) * 1e3
	}
	b.mu.Unlock()
	return BackendStatus{
		URL:      b.url,
		Health:   h.String(),
		Breaker:  b.brk.State().String(),
		BurnRate: burn,
		P50MS:    p50,
		P95MS:    p95,
		Requests: b.requests.Load(),
		Errors:   b.errors.Load(),
	}
}

// available reports whether the backend is currently selectable: not
// believed down and breaker not open. (State() advances open → half-open
// after cooldown, so availability recovers without traffic.)
func (b *backend) available() bool {
	h, _, _ := b.classify()
	return h != healthDown && b.brk.State() != BreakerOpen
}

// probe polls the backend's /readyz and scrapes its SLO burn rate from
// /metrics, updating the prober belief. Runs on the prober goroutine.
func (b *backend) probe(ctx context.Context, client *http.Client) {
	h, lastErr := b.probeReadyz(ctx, client)
	burn := b.probeBurn(ctx, client)
	b.setHealth(h, burn, lastErr)
}

// probeReadyz classifies the backend from its /readyz endpoint: 200 is
// healthy; 503 with a "degraded" status body is degraded (the backend still
// serves, its SLO engine is just burning budget); anything else — draining,
// connection refused, timeout — is down.
func (b *backend) probeReadyz(ctx context.Context, client *http.Client) (healthClass, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/readyz", nil)
	if err != nil {
		return healthDown, err.Error()
	}
	resp, err := client.Do(req)
	if err != nil {
		return healthDown, err.Error()
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusOK {
		return healthHealthy, ""
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Status == "degraded" {
		return healthDegraded, "slo degraded"
	}
	return healthDown, "readyz " + resp.Status
}

// probeBurn scrapes the worst thor_slo_burn_rate sample from the backend's
// /metrics. Returns 0 when the endpoint or family is unavailable — burn rate
// refines ordering, it never gates selection.
func (b *backend) probeBurn(ctx context.Context, client *http.Client) float64 {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/metrics", nil)
	if err != nil {
		return 0
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0
	}
	exp, err := promtext.Parse(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return 0
	}
	fam := exp.Family("thor_slo_burn_rate")
	if fam == nil {
		return 0
	}
	worst := 0.0
	for _, s := range fam.Samples {
		if s.Value > worst {
			worst = s.Value
		}
	}
	return worst
}
