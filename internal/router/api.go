package router

import (
	"encoding/json"
	"net/http"

	"thor/internal/serve"
)

// DegradedShard marks one shard whose replicas were all unavailable when a
// request was served: the response is missing that shard's concepts
// (brownout). Clients that care about completeness check the `degraded`
// field; clients that prefer availability use the partial result as-is.
type DegradedShard struct {
	// Shard is the failed shard's ID.
	Shard string `json:"shard"`
	// Concepts lists the concept domains the response is missing (the
	// shard map's Concepts for the shard, when specified).
	Concepts []string `json:"concepts,omitempty"`
	// Reason is the last failure the router saw from the shard's replicas.
	Reason string `json:"reason"`
}

// Response is the router's fill/extract response: the backend response
// shape, plus the brownout marker. Single-shard responses are streamed
// through verbatim (no Degraded field, byte-identical to the backend);
// multi-shard responses are merged and carry Degraded when any shard was
// down.
type Response struct {
	serve.Response
	// Degraded lists the shards whose results are missing, empty/absent
	// when the response is complete.
	Degraded []DegradedShard `json:"degraded,omitempty"`
}

// Router-specific error code: every shard of the tier was unavailable, so
// not even a partial response could be served (HTTP 503 with Retry-After).
// Single-shard deployments also use it when all replicas are down. Other
// error codes pass through from serve (CodeInvalidRequest etc).
const CodeUnavailable = "unavailable"

// BackendStatus is one backend's row in the topology view: what the router
// currently believes about it.
type BackendStatus struct {
	// URL is the backend's normalized base URL.
	URL string `json:"url"`
	// Health is the prober's classification: "healthy", "degraded" (up but
	// burning SLO budget) or "down".
	Health string `json:"health"`
	// Breaker is the circuit breaker state: "closed", "half-open" or
	// "open".
	Breaker string `json:"breaker"`
	// BurnRate is the worst SLO burn rate scraped from the backend's
	// /metrics, 0 when unknown.
	BurnRate float64 `json:"burn_rate,omitempty"`
	// P50MS is the router-observed median latency for this backend, in
	// milliseconds (0 until enough samples).
	P50MS float64 `json:"p50_ms"`
	// P95MS is the router-observed p95 latency for this backend, in
	// milliseconds (0 until enough samples).
	P95MS float64 `json:"p95_ms"`
	// Requests counts the router's calls to this backend.
	Requests int64 `json:"requests"`
	// Errors counts the calls that failed (after retries).
	Errors int64 `json:"errors"`
}

// ShardTopology is one shard's row in the topology view.
type ShardTopology struct {
	// ID is the shard's ID.
	ID string `json:"id"`
	// Concepts is the shard's declared concept domains.
	Concepts []string `json:"concepts,omitempty"`
	// Available reports whether at least one replica is currently
	// selectable (not down, breaker not open).
	Available bool `json:"available"`
	// Backends are the shard's replicas.
	Backends []BackendStatus `json:"backends"`
}

// Topology is the GET /v1/topology response: the router's live view of the
// tier, consumed by thorctl's fleet display.
type Topology struct {
	// Shards are the tier's shards in shard-map order.
	Shards []ShardTopology `json:"shards"`
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the serve error envelope (routers and backends share
// one error shape, so clients need a single decoder).
func writeError(w http.ResponseWriter, status int, code, message, traceID string) {
	writeJSON(w, status, serve.ErrorBody{Error: serve.ErrorInfo{Code: code, Message: message}, TraceID: traceID})
}
