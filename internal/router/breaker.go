package router

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position in the closed → open →
// half-open cycle.
type BreakerState int

const (
	// BreakerClosed passes all traffic; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits exactly one probe request; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
	// BreakerOpen rejects all traffic until the cooldown elapses.
	BreakerOpen
)

// String renders the state for topology output and metrics labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes a circuit breaker. The zero value uses the defaults
// noted per field.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker (default 5).
	Threshold int
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// Now is the clock (default time.Now); tests inject a fake to step
	// through cooldowns without sleeping.
	Now func() time.Time
	// OnTransition, when set, observes every state change. Called outside
	// the breaker's lock with the old and new state.
	OnTransition func(from, to BreakerState)
}

func (c BreakerConfig) threshold() int {
	if c.Threshold <= 0 {
		return 5
	}
	return c.Threshold
}

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return 5 * time.Second
	}
	return c.Cooldown
}

func (c BreakerConfig) now() time.Time {
	if c.Now == nil {
		return time.Now()
	}
	return c.Now()
}

// Breaker is a per-backend circuit breaker. Allow asks permission to issue a
// request; every allowed request must be answered by exactly one Record call
// with its outcome — in half-open state the probe token is held until Record
// releases it, so a crashed call that never Records would wedge the breaker
// half-open (callers use defer). Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // half-open probe in flight
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker { return &Breaker{cfg: cfg} }

// State returns the breaker's current state, advancing open → half-open
// first if the cooldown has elapsed (so observers see the same state a
// caller would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	st, transition := b.advanceLocked()
	b.mu.Unlock()
	b.notify(transition)
	return st
}

// Allow reports whether a request may be issued now. A true return must be
// paired with exactly one Record call. In half-open state only a single
// probe is admitted at a time; further callers are rejected until the
// probe's Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	st, transition := b.advanceLocked()
	allowed := false
	switch st {
	case BreakerClosed:
		allowed = true
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			allowed = true
		}
	}
	b.mu.Unlock()
	b.notify(transition)
	return allowed
}

// Record reports the outcome of an allowed request. Success closes a
// half-open breaker and resets the failure count; failure re-opens a
// half-open breaker immediately and, in closed state, opens after Threshold
// consecutive failures.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	var transition *[2]BreakerState
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			transition = b.setLocked(BreakerClosed)
			b.fails = 0
		} else {
			transition = b.setLocked(BreakerOpen)
			b.openedAt = b.cfg.now()
		}
	case BreakerClosed:
		if ok {
			b.fails = 0
		} else {
			b.fails++
			if b.fails >= b.cfg.threshold() {
				transition = b.setLocked(BreakerOpen)
				b.openedAt = b.cfg.now()
			}
		}
	case BreakerOpen:
		// A straggler from before the breaker opened; its outcome is stale.
	}
	b.mu.Unlock()
	b.notify(transition)
}

// RecordNeutral releases an Allow without judging the backend: the call
// was abandoned for reasons that say nothing about backend health (a hedge
// loser cancelled because the other replica answered first, or the client
// went away). A half-open probe token is released so the next caller can
// probe again; closed-state failure counts are untouched.
func (b *Breaker) RecordNeutral() {
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// advanceLocked moves open → half-open when the cooldown has elapsed.
// Callers hold b.mu.
func (b *Breaker) advanceLocked() (BreakerState, *[2]BreakerState) {
	if b.state == BreakerOpen && b.cfg.now().Sub(b.openedAt) >= b.cfg.cooldown() {
		t := b.setLocked(BreakerHalfOpen)
		return b.state, t
	}
	return b.state, nil
}

// setLocked transitions to the given state, returning the (from, to) pair
// for notification after the lock is released. Callers hold b.mu.
func (b *Breaker) setLocked(to BreakerState) *[2]BreakerState {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	return &[2]BreakerState{from, to}
}

// notify delivers a transition to OnTransition outside the lock.
func (b *Breaker) notify(t *[2]BreakerState) {
	if t != nil && b.cfg.OnTransition != nil {
		b.cfg.OnTransition(t[0], t[1])
	}
}
