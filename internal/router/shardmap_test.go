package router

import (
	"strings"
	"testing"
)

func TestParseShardMapNormalizes(t *testing.T) {
	m, err := ParseShardMap([]byte(`{
		"shards": [
			{"id": "anatomy", "concepts": ["Complication", "Anatomy"], "backends": ["127.0.0.1:9001", "http://127.0.0.1:9002/"]},
			{"id": "rest", "backends": ["https://10.0.0.1:9003"]}
		]
	}`))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := m.Shards[0].Backends[0]; got != "http://127.0.0.1:9001" {
		t.Fatalf("scheme not defaulted: %q", got)
	}
	if got := m.Shards[0].Backends[1]; got != "http://127.0.0.1:9002" {
		t.Fatalf("trailing slash not stripped: %q", got)
	}
	if got := m.Shards[1].Backends[0]; got != "https://10.0.0.1:9003" {
		t.Fatalf("https backend mangled: %q", got)
	}
	// Concepts are sorted for deterministic degraded markers.
	if m.Shards[0].Concepts[0] != "Anatomy" {
		t.Fatalf("concepts not sorted: %v", m.Shards[0].Concepts)
	}
}

func TestParseShardMapRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", `{"shards": []}`, "no shards"},
		{"no id", `{"shards": [{"backends": ["a:1"]}]}`, "no id"},
		{"dup id", `{"shards": [{"id":"x","backends":["a:1"]},{"id":"x","backends":["b:1"]}]}`, "duplicate shard id"},
		{"no backends", `{"shards": [{"id":"x","backends":[]}]}`, "no backends"},
		{"dup backend", `{"shards": [{"id":"x","backends":["a:1","http://a:1"]}]}`, "appears twice"},
		{"backend path", `{"shards": [{"id":"x","backends":["http://a:1/v1"]}]}`, "bare scheme://host"},
		{"backend scheme", `{"shards": [{"id":"x","backends":["ftp://a:1"]}]}`, "scheme must be"},
		{"unknown field", `{"shards": [], "extra": 1}`, "unknown field"},
	}
	for _, c := range cases {
		if _, err := ParseShardMap([]byte(c.in)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestSingleShard(t *testing.T) {
	m := SingleShard([]string{"127.0.0.1:9001", "127.0.0.1:9002"})
	if err := m.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if m.Shards[0].ID != "all" || len(m.Shards[0].Backends) != 2 {
		t.Fatalf("unexpected map: %+v", m)
	}
	if m.Shards[0].Backends[0] != "http://127.0.0.1:9001" {
		t.Fatalf("backend not normalized: %q", m.Shards[0].Backends[0])
	}
}
