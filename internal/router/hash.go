package router

import "sort"

// hash64 is FNV-1a finished with a splitmix64 mix: cheap, stable across
// processes and runs (replica preference must not change on router restart),
// and well distributed even over short similar strings like document names.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rendezvousOrder returns node indices in highest-random-weight order for
// key: the full preference list of rendezvous (HRW) hashing. The first index
// is the key's home node; removing a node reshuffles only the keys that
// lived on it, which is the property that keeps replica caches warm when a
// backend dies and comes back. Deterministic in (key, nodes).
func rendezvousOrder(key string, nodes []string) []int {
	type scored struct {
		idx   int
		score uint64
	}
	hk := hash64(key)
	ss := make([]scored, len(nodes))
	for i, n := range nodes {
		ss[i] = scored{idx: i, score: mix64(hk ^ hash64(n))}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].idx < ss[j].idx
	})
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = s.idx
	}
	return out
}

// requestKey derives the rendezvous key for a request from its document
// names: repeat corpora (same names) keep their replica affinity — and its
// warm parse/fine-tune caches — while distinct corpora spread across
// replicas.
func requestKey(names []string) string {
	if len(names) == 0 {
		return ""
	}
	// Order-insensitive combine so shuffled document lists keep affinity.
	var acc uint64
	for _, n := range names {
		acc ^= hash64(n)
	}
	var b [16]byte
	const hexdigits = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		b[i] = hexdigits[(acc>>(60-4*i))&0xf]
	}
	return string(b[:])
}
