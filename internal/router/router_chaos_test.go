package router

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thor/internal/chaos"
	"thor/internal/embed"
	"thor/internal/obs"
	"thor/internal/schema"
	"thor/internal/serve"
)

// chaosWorld builds the serving fixture the kill-a-shard suite runs real
// engines over: a 4-disease table with labeled nulls and an embedding space
// whose clusters make the matcher generalize (the serve test fixture).
func chaosWorld(concepts ...string) (*schema.Table, *embed.Space) {
	if len(concepts) == 0 {
		concepts = []string{"Anatomy", "Complication"}
	}
	cs := make([]schema.Concept, len(concepts))
	for i, c := range concepts {
		cs[i] = schema.Concept(c)
	}
	table := schema.NewTable(schema.NewSchema("Disease", cs...))
	has := func(c string) bool {
		for _, k := range concepts {
			if k == c {
				return true
			}
		}
		return false
	}
	an := table.AddRow("Acoustic Neuroma")
	if has("Anatomy") {
		an.Add("Anatomy", "nervous system")
	}
	tb := table.AddRow("Tuberculosis")
	if has("Complication") {
		tb.Add("Complication", "skin cancer")
	}
	table.AddRow("Malaria")
	ch := table.AddRow("Cholera")
	if has("Anatomy") {
		ch.Add("Anatomy", "small intestine")
	}

	space := embed.NewSpace()
	anatomy := embed.HashVector("ex:anatomy")
	complication := embed.HashVector("ex:complication")
	add := func(c embed.Vector, alpha float64, noise string, words ...string) {
		for _, w := range words {
			for _, part := range strings.Fields(w) {
				key := noise
				if key == "" {
					key = "ex-noise:" + part
				}
				space.Add(part, embed.Blend(c, embed.HashVector(key), alpha))
			}
		}
	}
	add(anatomy, 0.58, "", "nervous system", "brain", "nerve", "ear", "lungs",
		"small intestine", "liver", "kidneys")
	add(complication, 0.85, "ex:cancer-family", "cancer", "cancerous", "non-cancerous", "tumor")
	return table, space
}

// chaosDocs are the request payloads; distinct subsets give distinct
// rendezvous keys so load spreads over both replicas.
var chaosDocs = []serve.Document{
	{Name: "an", DefaultSubject: "Acoustic Neuroma",
		Text: "An Acoustic Neuroma is a slow-growing non-cancerous brain tumor."},
	{Name: "tb", DefaultSubject: "Tuberculosis",
		Text: "Tuberculosis generally damages the lungs of the patient."},
	{Name: "mal", DefaultSubject: "Malaria",
		Text: "Malaria parasites travel to the liver and can reach the brain."},
	{Name: "cho", DefaultSubject: "Cholera",
		Text: "Cholera infects the small intestine and may harm the kidneys."},
}

// startEngine boots a real serve engine over the fixture and returns its
// HTTP server.
func startEngine(t *testing.T, table *schema.Table, space *embed.Space) *httptest.Server {
	t.Helper()
	s, err := serve.NewServer(serve.Options{Table: table, Space: space, Tau: 0.6, Workers: 2, BatchWindow: 0})
	if err != nil {
		t.Fatalf("serve.NewServer: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// proxied wraps an engine in a chaos fault proxy.
func proxied(t *testing.T, engine *httptest.Server) *chaos.Proxy {
	t.Helper()
	p, err := chaos.NewProxy(engine.URL)
	if err != nil {
		t.Fatalf("chaos.NewProxy: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// semantic strips the timing-dependent Stats fields from a response,
// keeping exactly the payload that must be bit-identical across replicas
// and runs: entities, assignments, and the deterministic counters.
type semantic struct {
	Entities    map[string][]serve.Entity
	Assignments string // canonical JSON
	Filled      int
	NEntities   int
}

func toSemantic(t *testing.T, raw []byte) semantic {
	t.Helper()
	var r serve.Response
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("decode response: %v (%s)", err, raw)
	}
	asg, err := json.Marshal(r.Assignments)
	if err != nil {
		t.Fatalf("marshal assignments: %v", err)
	}
	return semantic{Entities: r.Entities, Assignments: string(asg), Filled: r.Stats.Filled, NEntities: r.Stats.Entities}
}

// chaosBodies builds one request body per distinct doc subset.
func chaosBodies(t *testing.T) [][]byte {
	t.Helper()
	subsets := [][]serve.Document{
		{chaosDocs[0]},
		{chaosDocs[1]},
		{chaosDocs[2]},
		{chaosDocs[3]},
		{chaosDocs[0], chaosDocs[1]},
		{chaosDocs[2], chaosDocs[3]},
		{chaosDocs[0], chaosDocs[1], chaosDocs[2], chaosDocs[3]},
	}
	bodies := make([][]byte, len(subsets))
	for i, docs := range subsets {
		buf, err := json.Marshal(serve.Request{Documents: docs})
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		bodies[i] = buf
	}
	return bodies
}

// referenceFills posts every body directly to a bare engine and records the
// semantic payload each must produce.
func referenceFills(t *testing.T, engine *httptest.Server, bodies [][]byte) []semantic {
	t.Helper()
	refs := make([]semantic, len(bodies))
	for i, body := range bodies {
		resp, err := http.Post(engine.URL+"/v1/fill", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("reference fill %d: %v", i, err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference fill %d: status %d: %s", i, resp.StatusCode, buf.Bytes())
		}
		refs[i] = toSemantic(t, buf.Bytes())
	}
	return refs
}

// TestChaosKillOneReplicaZeroFailures is the headline robustness proof for
// replicated shards: with 2 replicas, killing one mid-load causes zero
// client-visible failures — every request completes 200 with the exact
// semantic payload of a direct single-shot run — and the tier heals
// automatically (the killed replica's keyspace returns to it once it is
// back and its breaker re-closes).
func TestChaosKillOneReplicaZeroFailures(t *testing.T) {
	table, space := chaosWorld()
	e1, e2 := startEngine(t, table, space), startEngine(t, table, space)
	p1, p2 := proxied(t, e1), proxied(t, e2)

	reg := obs.NewRegistry()
	rt, err := New(Options{
		Shards:         SingleShard([]string{p1.Addr(), p2.Addr()}),
		Metrics:        reg,
		HealthInterval: -1,
		HedgeMin:       40 * time.Millisecond,
		Retry:          chaos.Backoff{Attempts: 5, Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond},
		Breaker:        BreakerConfig{Threshold: 3, Cooldown: 150 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()

	bodies := chaosBodies(t)
	refs := referenceFills(t, e1, bodies)

	// Find a body homed on replica 1 so the kill provably crosses a served
	// keyspace.
	client := httptest.NewServer(rt.Handler())
	defer client.Close()
	homedOn1 := -1
	for i, body := range bodies {
		resp, err := http.Post(client.URL+"/v1/fill", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("warm fill %d: %v", i, err)
		}
		backend := resp.Header.Get("X-Thor-Backend")
		resp.Body.Close()
		if strings.Contains(p1.Addr(), backend) {
			homedOn1 = i
		}
	}
	if homedOn1 < 0 {
		t.Skip("no body homed on replica 1 (fixture hash collision); rendezvous balance test covers spread")
	}

	const workers = 4
	var failures atomic.Int64
	var served atomic.Int64
	var wrong atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hc := &http.Client{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (w + i) % len(bodies)
				resp, err := hc.Post(client.URL+"/v1/fill", "application/json", bytes.NewReader(bodies[k]))
				if err != nil {
					failures.Add(1)
					continue
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				got := toSemantic(t, buf.Bytes())
				if !reflect.DeepEqual(got.Entities, refs[k].Entities) || got.Assignments != refs[k].Assignments {
					wrong.Add(1)
				}
				served.Add(1)
			}
		}(w)
	}

	// Let steady-state traffic flow, then kill replica 1 mid-load, let the
	// tier absorb it, and bring the replica back.
	time.Sleep(250 * time.Millisecond)
	p1.SetDown(true)
	time.Sleep(500 * time.Millisecond)
	p1.SetDown(false)
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d client-visible failures during one-replica kill (served %d)", failures.Load(), served.Load())
	}
	if wrong.Load() != 0 {
		t.Fatalf("%d responses deviated from the single-shot reference", wrong.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no requests served")
	}

	// Auto-recovery: once the breaker cooldown passes, the killed replica's
	// keyspace migrates home again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(client.URL+"/v1/fill", "application/json", bytes.NewReader(bodies[homedOn1]))
		if err != nil {
			t.Fatalf("recovery fill: %v", err)
		}
		backend := resp.Header.Get("X-Thor-Backend")
		resp.Body.Close()
		if strings.Contains(p1.Addr(), backend) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("keyspace never returned to the revived replica (still served by %q)", backend)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestChaosKillWholeShardBrownout is the headline robustness proof for
// domain-partitioned tiers: killing every replica of one shard degrades
// responses to partials with that shard's `degraded` marker — the other
// shard's keyspace is untouched — the breaker transitions are visible in
// router.* metrics, and full service resumes automatically once the shard
// returns.
func TestChaosKillWholeShardBrownout(t *testing.T) {
	anatomyTable, anatomySpace := chaosWorld("Anatomy")
	compTable, compSpace := chaosWorld("Complication")
	ea := startEngine(t, anatomyTable, anatomySpace)
	ec := startEngine(t, compTable, compSpace)
	pa, pc := proxied(t, ea), proxied(t, ec)

	reg := obs.NewRegistry()
	rt, err := New(Options{
		Shards: ShardMap{Shards: []ShardConfig{
			{ID: "anatomy", Concepts: []string{"Anatomy"}, Backends: []string{pa.Addr()}},
			{ID: "complication", Concepts: []string{"Complication"}, Backends: []string{pc.Addr()}},
		}},
		Metrics:        reg,
		HealthInterval: -1,
		Retry:          chaos.Backoff{Attempts: 2, Base: 5 * time.Millisecond, Cap: 20 * time.Millisecond},
		Breaker:        BreakerConfig{Threshold: 2, Cooldown: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	client := httptest.NewServer(rt.Handler())
	defer client.Close()

	body, err := json.Marshal(serve.Request{Documents: chaosDocs})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	fill := func() (int, Response) {
		resp, err := http.Post(client.URL+"/v1/fill", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("fill: %v", err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		var r Response
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
				t.Fatalf("decode: %v (%s)", err, buf.Bytes())
			}
		}
		return resp.StatusCode, r
	}

	// Steady state: both domains contribute, nothing degraded.
	status, full := fill()
	if status != http.StatusOK || len(full.Degraded) != 0 {
		t.Fatalf("steady state: status %d degraded %+v", status, full.Degraded)
	}
	hasConcept := func(r Response, concept string) bool {
		for _, es := range r.Entities {
			for _, e := range es {
				if e.Concept == concept {
					return true
				}
			}
		}
		return false
	}
	if !hasConcept(full, "Anatomy") || !hasConcept(full, "Complication") {
		t.Fatalf("steady-state response missing a domain: %+v", full.Entities)
	}

	// Kill the complication shard (its only replica).
	pc.SetDown(true)
	var brown Response
	for i := 0; i < 4; i++ { // enough failures to open the breaker
		status, brown = fill()
		if status != http.StatusOK {
			t.Fatalf("brownout fill %d: status %d, want 200 partial", i, status)
		}
	}
	if len(brown.Degraded) != 1 || brown.Degraded[0].Shard != "complication" {
		t.Fatalf("degraded = %+v, want the complication shard", brown.Degraded)
	}
	if got := brown.Degraded[0].Concepts; len(got) != 1 || got[0] != "Complication" {
		t.Fatalf("degraded concepts = %v, want [Complication]", got)
	}
	if !hasConcept(brown, "Anatomy") {
		t.Fatal("brownout lost the healthy shard's results")
	}
	if hasConcept(brown, "Complication") {
		t.Fatal("brownout response claims results from the dead shard")
	}
	// The anatomy shard's payload is unchanged by the other shard's death.
	// (Both shards also emit subject/Disease matches, so compare only the
	// Anatomy-concept entities each side produced.)
	onlyAnatomy := func(es []serve.Entity) []serve.Entity {
		var out []serve.Entity
		for _, e := range es {
			if e.Concept == "Anatomy" {
				out = append(out, e)
			}
		}
		return out
	}
	for subj, es := range brown.Entities {
		got, want := onlyAnatomy(es), onlyAnatomy(full.Entities[subj])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("subject %s: brownout anatomy entities deviate: got %+v want %+v", subj, got, want)
		}
	}

	// Breaker state is visible in metrics: the dead backend's breaker is
	// open (gauge = 2) with transitions counted.
	host := strings.TrimPrefix(pc.Addr(), "http://")
	if got := reg.Gauge(obs.LabeledName("router.breaker.state", "backend", host)).Value(); got != int64(BreakerOpen) {
		t.Fatalf("router.breaker.state{%s} = %d, want %d (open)", host, got, BreakerOpen)
	}
	if reg.Counter(obs.LabeledName("router.breaker.transitions", "backend", host)).Value() == 0 {
		t.Fatal("breaker transitions not recorded")
	}
	if reg.Counter("router.brownouts").Value() == 0 {
		t.Fatal("router.brownouts not recorded")
	}

	// Shard returns: after the breaker cooldown a probe closes it and full
	// responses resume, automatically.
	pc.SetDown(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, r := fill()
		if status == http.StatusOK && len(r.Degraded) == 0 && hasConcept(r, "Complication") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never recovered: status %d degraded %+v", status, r.Degraded)
		}
		time.Sleep(30 * time.Millisecond)
	}
	if got := reg.Gauge(obs.LabeledName("router.breaker.state", "backend", host)).Value(); got != int64(BreakerClosed) {
		t.Fatalf("post-recovery breaker gauge = %d, want %d (closed)", got, BreakerClosed)
	}

	// All shards down: not even a partial is possible — 503.
	pa.SetDown(true)
	pc.SetDown(true)
	// Exhaust both breakers so the failure is immediate and unambiguous.
	for i := 0; i < 3; i++ {
		st, _ := fill()
		if st == http.StatusOK {
			t.Fatalf("fill %d: status 200 with every shard down", i)
		}
	}
	st, _ := fill()
	if st != http.StatusServiceUnavailable {
		t.Fatalf("all-down status %d, want 503", st)
	}
}
