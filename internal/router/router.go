package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"thor/internal/chaos"
	"thor/internal/obs"
	"thor/internal/serve"
)

// Options configures a Router. Zero-valued fields take the defaults noted
// per field; only Shards is required.
type Options struct {
	// Shards is the tier topology. Required: at least one shard with at
	// least one backend (ParseShardMap or SingleShard build valid maps).
	Shards ShardMap
	// Client issues backend requests (default: http.Client with no global
	// timeout — per-request contexts bound each call).
	Client *http.Client
	// HealthClient issues prober requests (default: 1s-timeout client,
	// separate from Client so slow fills never starve health checks).
	HealthClient *http.Client
	// Metrics receives the router.* families (nil-safe: a nil registry
	// records nothing).
	Metrics *obs.Registry
	// Tracer records router spans and threads traceparent to backends
	// (nil disables tracing).
	Tracer *obs.Tracer
	// Journal, when set, records router state transitions — breaker flips
	// and topology loads — into the event timeline served at /debug/events.
	Journal *obs.Journal
	// Logger, when set, logs breaker transitions, brownouts and probe
	// state changes.
	Logger *slog.Logger
	// HedgeFactor scales the primary backend's observed p95 into the hedge
	// threshold (default 1.5): the hedge fires when the primary has been
	// silent for p95×factor.
	HedgeFactor float64
	// HedgeMin is the hedge threshold floor (default 20ms); it also serves
	// as the threshold before the p95 sketch has samples.
	HedgeMin time.Duration
	// HedgeMax is the hedge threshold ceiling (default 2s).
	HedgeMax time.Duration
	// Retry bounds transient-failure retries per shard send (default 3
	// attempts, 10ms base, 250ms cap). The Hint hook defaults to
	// chaos.RetryAfterHint so backend Retry-After advice wins over the
	// computed backoff.
	Retry chaos.Backoff
	// Breaker tunes the per-backend circuit breakers.
	Breaker BreakerConfig
	// HealthInterval is the prober period (default 500ms). Negative
	// disables the background prober; tests drive Probe directly.
	HealthInterval time.Duration
	// MaxBodyBytes bounds an inbound request body (default 8 MiB).
	MaxBodyBytes int64
	// Now is the clock (default time.Now), threaded into the breakers.
	Now func() time.Time
}

func (o Options) hedgeFactor() float64 {
	if o.HedgeFactor <= 0 {
		return 1.5
	}
	return o.HedgeFactor
}

func (o Options) hedgeMin() time.Duration {
	if o.HedgeMin <= 0 {
		return 20 * time.Millisecond
	}
	return o.HedgeMin
}

func (o Options) hedgeMax() time.Duration {
	if o.HedgeMax <= 0 {
		return 2 * time.Second
	}
	return o.HedgeMax
}

func (o Options) healthInterval() time.Duration {
	if o.HealthInterval == 0 {
		return 500 * time.Millisecond
	}
	return o.HealthInterval
}

func (o Options) maxBodyBytes() int64 {
	if o.MaxBodyBytes <= 0 {
		return 8 << 20
	}
	return o.MaxBodyBytes
}

func (o Options) retry() chaos.Backoff {
	b := o.Retry
	if b.Attempts <= 0 {
		b.Attempts = 3
	}
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 250 * time.Millisecond
	}
	if b.Hint == nil {
		b.Hint = chaos.RetryAfterHint
	}
	return b
}

// shardState is one shard's runtime state: its config, replicas and down
// gauge.
type shardState struct {
	cfg      ShardConfig
	backends []*backend
	urls     []string // backend URLs, rendezvous node list
	mDown    *obs.Gauge
}

// available reports whether at least one replica is selectable.
func (sh *shardState) available() bool {
	for _, b := range sh.backends {
		if b.available() {
			return true
		}
	}
	return false
}

// Router fans fill/extract requests over the shard map's backends. Build
// with New, mount via Handler, stop the prober with Close.
type Router struct {
	opts         Options
	shards       []*shardState
	client       *http.Client
	healthClient *http.Client
	mux          *http.ServeMux
	log          *slog.Logger
	retry        chaos.Backoff

	mFill        *obs.Counter
	mExtract     *obs.Counter
	hFill        *obs.Histogram
	hExtract     *obs.Histogram
	mHedges      *obs.Counter
	mHedgeWins   *obs.Counter
	mRetries     *obs.Counter
	mBrownouts   *obs.Counter
	mUnavailable *obs.Counter

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a Router over the given topology and starts its health prober
// (unless HealthInterval < 0).
func New(opts Options) (*Router, error) {
	m := opts.Shards
	if err := m.validate(); err != nil {
		return nil, err
	}
	reg := opts.Metrics
	rt := &Router{
		opts:         opts,
		client:       opts.Client,
		healthClient: opts.HealthClient,
		log:          opts.Logger,
		retry:        opts.retry(),
		mFill:        reg.Counter("router.fill.requests"),
		mExtract:     reg.Counter("router.extract.requests"),
		hFill:        reg.Histogram("router.http.fill"),
		hExtract:     reg.Histogram("router.http.extract"),
		mHedges:      reg.Counter("router.hedges"),
		mHedgeWins:   reg.Counter("router.hedge.wins"),
		mRetries:     reg.Counter("router.retries"),
		mBrownouts:   reg.Counter("router.brownouts"),
		mUnavailable: reg.Counter("router.unavailable"),
		stop:         make(chan struct{}),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	if rt.healthClient == nil {
		rt.healthClient = &http.Client{Timeout: time.Second}
	}
	bcfg := opts.Breaker
	if bcfg.Now == nil {
		bcfg.Now = opts.Now
	}
	notify := func(host string, from, to BreakerState) {
		if rt.log != nil {
			rt.log.Info("breaker transition", "backend", host, "from", from.String(), "to", to.String())
		}
		opts.Journal.Append(obs.JournalEvent{
			Kind:    obs.EventBreaker,
			Subject: host,
			From:    from.String(),
			To:      to.String(),
		})
	}
	for _, sc := range m.Shards {
		sh := &shardState{
			cfg:   sc,
			urls:  sc.Backends,
			mDown: reg.Gauge(obs.LabeledName("router.shard.down", "shard", sc.ID)),
		}
		for _, u := range sc.Backends {
			sh.backends = append(sh.backends, newBackend(u, sc.ID, bcfg, reg, notify))
		}
		rt.shards = append(rt.shards, sh)
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/v1/fill", func(w http.ResponseWriter, r *http.Request) { rt.handleProxy(w, r, true) })
	rt.mux.HandleFunc("/v1/extract", func(w http.ResponseWriter, r *http.Request) { rt.handleProxy(w, r, false) })
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/v1/topology", rt.handleTopology)
	if opts.HealthInterval >= 0 {
		rt.wg.Add(1)
		go rt.proberLoop()
	}
	var topo []string
	for _, sh := range rt.shards {
		topo = append(topo, fmt.Sprintf("%s×%d", sh.cfg.ID, len(sh.backends)))
	}
	opts.Journal.Append(obs.JournalEvent{
		Kind:    obs.EventTopology,
		To:      "loaded",
		Subject: strings.Join(topo, ","),
		Detail:  fmt.Sprintf("%d shards", len(rt.shards)),
	})
	return rt, nil
}

// Handler returns the router's HTTP handler (/v1/fill, /v1/extract,
// /healthz, /readyz, /v1/topology). Debug and metrics endpoints are mounted
// by the caller (cmd/thor-router uses obs.DebugHandler).
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the health prober. In-flight requests are unaffected.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

// Probe runs one synchronous health-probe round over every backend. The
// background prober calls it each interval; tests call it directly for
// deterministic health state.
func (rt *Router) Probe(ctx context.Context) {
	for _, sh := range rt.shards {
		for _, b := range sh.backends {
			pctx, cancel := context.WithTimeout(ctx, time.Second)
			b.probe(pctx, rt.healthClient)
			cancel()
		}
		if sh.available() {
			sh.mDown.Set(0)
		} else {
			sh.mDown.Set(1)
		}
	}
}

// proberLoop drives Probe every HealthInterval until Close.
func (rt *Router) proberLoop() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.opts.healthInterval())
	defer t.Stop()
	ctx := context.Background()
	rt.Probe(ctx)
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.Probe(ctx)
		}
	}
}

// Topology snapshots the router's live view of the tier.
func (rt *Router) Topology() Topology {
	var top Topology
	for _, sh := range rt.shards {
		st := ShardTopology{ID: sh.cfg.ID, Concepts: sh.cfg.Concepts, Available: sh.available()}
		for _, b := range sh.backends {
			st.Backends = append(st.Backends, b.status())
		}
		top.Shards = append(top.Shards, st)
	}
	return top
}

// handleHealthz reports router process liveness.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports tier readiness: 200 when every shard has at least
// one selectable replica, 503 naming the down shards otherwise (a router
// that can only serve brownouts is not ready for new traffic).
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	var down []string
	for _, sh := range rt.shards {
		if !sh.available() {
			down = append(down, sh.cfg.ID)
		}
	}
	if len(down) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "degraded", "down_shards": down})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleTopology serves the live topology view.
func (rt *Router) handleTopology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, serve.CodeMethodNotAllowed, "use GET", "")
		return
	}
	writeJSON(w, http.StatusOK, rt.Topology())
}

// handleProxy is the fan-out path shared by /v1/fill and /v1/extract.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request, fill bool) {
	endpoint, name := "/v1/extract", "router.extract"
	counter, hist := rt.mExtract, rt.hExtract
	if fill {
		endpoint, name = "/v1/fill", "router.fill"
		counter, hist = rt.mFill, rt.hFill
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, serve.CodeMethodNotAllowed, "use POST", "")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.opts.maxBodyBytes()))
	if err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "read body: "+err.Error(), "")
		return
	}
	var req serve.Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "parse body: "+err.Error(), "")
		return
	}
	if len(req.Documents) == 0 {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "documents required", "")
		return
	}
	names := make([]string, len(req.Documents))
	for i, d := range req.Documents {
		if d.Name != "" {
			names[i] = d.Name
		} else {
			names[i] = "doc-" + strconv.Itoa(i)
		}
	}

	tc, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		tc = obs.TraceContext{Trace: obs.NewTraceID()}
	}
	ctx, root := rt.opts.Tracer.StartTrace(r.Context(), tc, name,
		obs.String("endpoint", endpoint))
	if root != nil {
		defer root.End()
	}
	traceID := tc.Trace.String()
	w.Header().Set("X-Trace-Id", traceID)

	counter.Add(1)
	start := time.Now()
	defer func() { hist.ObserveTrace(time.Since(start), tc.Trace) }()

	key := requestKey(names)
	if len(rt.shards) == 1 {
		rt.serveSingle(ctx, w, rt.shards[0], endpoint, body, key, traceID)
		return
	}
	rt.serveFanout(ctx, w, endpoint, body, key, traceID)
}

// serveSingle is the replica-only fast path: one shard, response streamed
// back verbatim — byte-identical to the chosen backend's reply.
func (rt *Router) serveSingle(ctx context.Context, w http.ResponseWriter, sh *shardState, endpoint string, body []byte, key, traceID string) {
	res := rt.sendShard(ctx, sh, endpoint, body, key)
	switch {
	case res.err == nil:
		writeRaw(w, http.StatusOK, res.contentType, res.body, res.backend)
	case res.status >= 400 && res.body != nil:
		// Permanent backend verdict (4xx): pass it through verbatim.
		writeRaw(w, res.status, res.contentType, res.body, res.backend)
	default:
		rt.mUnavailable.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable,
			fmt.Sprintf("shard %s unavailable: %v", sh.cfg.ID, res.err), traceID)
	}
}

// serveFanout sends the request to one replica of every shard and merges
// the partial responses; failed shards degrade to markers (brownout) as
// long as at least one shard answered.
func (rt *Router) serveFanout(ctx context.Context, w http.ResponseWriter, endpoint string, body []byte, key, traceID string) {
	results := make([]shardResult, len(rt.shards))
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		wg.Add(1)
		go func(i int, sh *shardState) {
			defer wg.Done()
			results[i] = rt.sendShard(ctx, sh, endpoint, body, key)
		}(i, sh)
	}
	wg.Wait()

	var parts []serve.Response
	var degraded []DegradedShard
	var permanent *shardResult
	for i := range results {
		res := &results[i]
		if res.err == nil {
			var part serve.Response
			if err := json.Unmarshal(res.body, &part); err != nil {
				res.err = fmt.Errorf("shard %s: decode response: %w", res.shard.cfg.ID, err)
			} else {
				parts = append(parts, part)
				continue
			}
		}
		if res.status >= 400 && res.status < 500 && permanent == nil {
			permanent = res
		}
		degraded = append(degraded, DegradedShard{
			Shard:    res.shard.cfg.ID,
			Concepts: res.shard.cfg.Concepts,
			Reason:   res.err.Error(),
		})
	}
	if len(parts) == 0 {
		if permanent != nil {
			// Every shard rejected the request itself (e.g. 400): relay the
			// first verdict instead of masking it as an outage.
			writeRaw(w, permanent.status, permanent.contentType, permanent.body, permanent.backend)
			return
		}
		rt.mUnavailable.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "all shards unavailable", traceID)
		return
	}
	if len(degraded) > 0 {
		rt.mBrownouts.Add(1)
		if rt.log != nil {
			rt.log.Warn("brownout response", "degraded_shards", len(degraded))
		}
	}
	writeJSON(w, http.StatusOK, Response{Response: mergeResponses(parts), Degraded: degraded})
}

// shardResult is one shard's contribution to a request.
type shardResult struct {
	shard       *shardState
	backend     string // host that served the response
	status      int
	contentType string
	body        []byte
	err         error
}

// sendShard delivers the request to one replica of sh, retrying transient
// failures with rotation across replicas, hedging slow calls. On success
// err is nil and body holds the backend's verbatim response; a permanent
// backend verdict surfaces as err + status/body for pass-through; transient
// exhaustion surfaces as err alone.
func (rt *Router) sendShard(ctx context.Context, sh *shardState, endpoint string, body []byte, key string) shardResult {
	order := rt.preferenceOrder(sh, key)
	var last callResult
	err := chaos.Retry(ctx, rt.retry, "shard:"+sh.cfg.ID, func(attempt int) error {
		if attempt > 0 {
			rt.mRetries.Add(1)
		}
		res, err := rt.attemptShard(ctx, sh, order, attempt, endpoint, body)
		last = res
		return err
	})
	out := shardResult{shard: sh, backend: last.backend, status: last.status, contentType: last.contentType, body: last.body, err: err}
	if err != nil {
		var he *errHTTP
		if errors.As(err, &he) {
			out.status, out.contentType, out.body, out.backend = he.res.status, he.res.contentType, he.res.body, he.res.backend
		} else {
			out.status, out.body = 0, nil
		}
	}
	return out
}

// preferenceOrder ranks sh's replicas for a request key: health class first
// (healthy, then degraded ordered by burn rate, down last — the prober's
// belief may be stale, so down replicas remain last-resort candidates
// rather than excluded), rendezvous order within a class for cache
// affinity.
func (rt *Router) preferenceOrder(sh *shardState, key string) []*backend {
	rank := rendezvousOrder(key, sh.urls)
	type cand struct {
		b     *backend
		class healthClass
		burn  float64
		pos   int // rendezvous position
	}
	cands := make([]cand, len(rank))
	for pos, idx := range rank {
		b := sh.backends[idx]
		h, burn, _ := b.classify()
		cands[pos] = cand{b: b, class: h, burn: burn, pos: pos}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].class != cands[j].class {
			return cands[i].class < cands[j].class
		}
		if cands[i].class == healthDegraded && cands[i].burn != cands[j].burn {
			return cands[i].burn < cands[j].burn
		}
		return cands[i].pos < cands[j].pos
	})
	out := make([]*backend, len(cands))
	for i, c := range cands {
		out[i] = c.b
	}
	return out
}

// attemptShard issues one (possibly hedged) call for one retry attempt:
// the preference list is rotated by attempt so consecutive retries land on
// different replicas, and the first replica whose breaker admits the call
// becomes the primary.
func (rt *Router) attemptShard(ctx context.Context, sh *shardState, order []*backend, attempt int, endpoint string, body []byte) (callResult, error) {
	n := len(order)
	rot := make([]*backend, n)
	for i := 0; i < n; i++ {
		rot[i] = order[(i+attempt)%n]
	}
	var primary *backend
	var fallbacks []*backend
	for i, b := range rot {
		if b.brk.Allow() {
			primary = b
			fallbacks = rot[i+1:]
			break
		}
	}
	if primary == nil {
		return callResult{}, chaos.MarkTransient(fmt.Errorf("shard %s: all breakers open", sh.cfg.ID))
	}
	return rt.hedgedCall(ctx, primary, fallbacks, endpoint, body, attempt)
}

// hedgedCall issues the request to primary and, if the reply is still
// outstanding after the hedge threshold, to the first admissible fallback.
// The first success wins and the loser's context is cancelled; if all
// started calls fail, the first failure is returned (the retry layer
// rotates and backs off).
func (rt *Router) hedgedCall(ctx context.Context, primary *backend, fallbacks []*backend, endpoint string, body []byte, attempt int) (callResult, error) {
	type done struct {
		res callResult
		err error
		b   *backend
	}
	ch := make(chan done, 2)
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	launch := func(b *backend, role string) {
		cctx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		go func() {
			res, err := rt.callBackend(cctx, b, endpoint, body, attempt, role)
			ch <- done{res: res, err: err, b: b}
		}()
	}
	launch(primary, "primary")
	inflight := 1

	var hedgeC <-chan time.Time
	if len(fallbacks) > 0 {
		t := time.NewTimer(rt.hedgeDelay(ctx, primary))
		defer t.Stop()
		hedgeC = t.C
	}
	var hedge *backend
	var firstRes callResult
	var firstErr error
	for {
		select {
		case d := <-ch:
			inflight--
			if d.err == nil {
				if hedge != nil && d.b == hedge {
					rt.mHedgeWins.Add(1)
				}
				return d.res, nil
			}
			if firstErr == nil {
				firstRes, firstErr = d.res, d.err
			}
			if inflight == 0 {
				// Primary failed fast and the hedge never fired (or both
				// failed): report to the retry layer rather than waiting
				// out the hedge timer.
				return firstRes, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			for _, b := range fallbacks {
				if b.brk.Allow() {
					hedge = b
					break
				}
			}
			if hedge == nil {
				continue
			}
			rt.mHedges.Add(1)
			launch(hedge, "hedge")
			inflight++
		case <-ctx.Done():
			return callResult{}, ctx.Err()
		}
	}
}

// hedgeDelay derives the hedge threshold for a call to primary: its
// router-observed p95 scaled by HedgeFactor, clamped to [HedgeMin,
// HedgeMax], and — deadline-aware — capped at half the remaining budget so
// a fired hedge still has time to answer.
func (rt *Router) hedgeDelay(ctx context.Context, primary *backend) time.Duration {
	d := rt.opts.hedgeMin()
	if p95 := primary.p95(); p95 > 0 {
		d = time.Duration(float64(p95) * rt.opts.hedgeFactor())
	}
	if min := rt.opts.hedgeMin(); d < min {
		d = min
	}
	if max := rt.opts.hedgeMax(); d > max {
		d = max
	}
	if dl, ok := ctx.Deadline(); ok {
		if half := time.Until(dl) / 2; half > 0 && d > half {
			d = half
		}
	}
	return d
}

// callResult is one backend call's outcome.
type callResult struct {
	backend     string
	status      int
	contentType string
	body        []byte
}

// errHTTP wraps a permanent (non-retryable) backend HTTP verdict so the
// response can be relayed verbatim. Not transient: chaos.Retry returns it
// immediately.
type errHTTP struct {
	res callResult
}

// Error implements error.
func (e *errHTTP) Error() string {
	return fmt.Sprintf("backend %s: http %d", e.res.backend, e.res.status)
}

// callBackend issues one HTTP call: child span tagged with the chosen
// backend/shard and the call's retry-attempt and hedge role (so stitched
// trace trees attribute every branch, winning or losing), traceparent
// injection, latency observation, breaker accounting, and error
// classification (connection failures and 5xx transient, 503 additionally
// carrying the server's Retry-After hint; other 4xx permanent).
func (rt *Router) callBackend(ctx context.Context, b *backend, endpoint string, body []byte, attempt int, role string) (callResult, error) {
	sctx, span := rt.opts.Tracer.StartSpanCtx(ctx, "router.backend",
		obs.String("backend", b.host),
		obs.String("shard", b.shard),
		obs.String("role", role),
		obs.String("attempt", strconv.Itoa(attempt)))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+endpoint, bytes.NewReader(body))
	if err != nil {
		if span != nil {
			span.End()
		}
		return callResult{backend: b.host}, fmt.Errorf("backend %s: %w", b.host, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if refs := obs.SpanRefs(sctx); len(refs) > 0 && !refs[0].Trace.IsZero() && !refs[0].Parent.IsZero() {
		req.Header.Set("traceparent", obs.TraceContext{Trace: refs[0].Trace, Span: refs[0].Parent}.Traceparent())
	}
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// Abandoned by our own cancellation (hedge loser, client gone):
			// says nothing about the backend, so neither the breaker nor
			// the latency sketch should count it.
			if span != nil {
				span.Annotate("router.backend.cancelled")
				span.End()
			}
			b.observeCancelled()
			return callResult{backend: b.host}, ctx.Err()
		}
		if span != nil {
			span.Annotate("router.backend.failed", obs.String("reason", err.Error()))
			span.End()
		}
		b.observe(time.Since(start), false)
		return callResult{backend: b.host}, chaos.MarkTransient(fmt.Errorf("backend %s: %w", b.host, err))
	}
	rbody, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	d := time.Since(start)
	if span != nil {
		span.Annotate("router.backend.response", obs.String("status", strconv.Itoa(resp.StatusCode)))
		span.End()
	}
	if rerr != nil {
		if ctx.Err() != nil {
			b.observeCancelled()
			return callResult{backend: b.host}, ctx.Err()
		}
		b.observe(d, false)
		return callResult{backend: b.host}, chaos.MarkTransient(fmt.Errorf("backend %s: read response: %w", b.host, rerr))
	}
	res := callResult{backend: b.host, status: resp.StatusCode, contentType: resp.Header.Get("Content-Type"), body: rbody}
	switch {
	case resp.StatusCode == http.StatusOK:
		b.observe(d, true)
		return res, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		b.observe(d, false)
		err := chaos.MarkTransient(fmt.Errorf("backend %s: 503 %s", b.host, strings.TrimSpace(string(rbody))))
		if ra := parseRetryAfterHeader(resp.Header.Get("Retry-After")); ra > 0 {
			err = chaos.WithRetryAfter(err, ra)
		}
		return res, err
	case resp.StatusCode >= 500:
		b.observe(d, false)
		return res, chaos.MarkTransient(fmt.Errorf("backend %s: http %d", b.host, resp.StatusCode))
	default:
		// A 4xx is the backend judging the request, not failing: the
		// backend is healthy and the verdict is final.
		b.observe(d, true)
		return res, &errHTTP{res: res}
	}
}

// parseRetryAfterHeader parses a delay-seconds Retry-After value (the only
// form thord emits); 0 when absent or unparseable.
func parseRetryAfterHeader(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// writeRaw relays a backend response verbatim, tagging which backend served
// it.
func writeRaw(w http.ResponseWriter, status int, contentType string, body []byte, backend string) {
	if contentType != "" {
		w.Header().Set("Content-Type", contentType)
	}
	if backend != "" {
		w.Header().Set("X-Thor-Backend", backend)
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// mergeResponses combines per-shard partial responses deterministically:
// entity lists concatenate in shard-map order, assignments sort by
// (subject, concept, value), per-request counters sum where shards
// contribute disjoint work (candidates, entities, filled) and take the
// maximum where they repeat it (documents, sentences, batch cost).
func mergeResponses(parts []serve.Response) serve.Response {
	out := serve.Response{Entities: map[string][]serve.Entity{}}
	for _, p := range parts {
		for subj, es := range p.Entities {
			out.Entities[subj] = append(out.Entities[subj], es...)
		}
		out.Assignments = append(out.Assignments, p.Assignments...)
		s, t := p.Stats, &out.Stats
		t.Candidates += s.Candidates
		t.Entities += s.Entities
		t.Filled += s.Filled
		t.Quarantined = append(t.Quarantined, s.Quarantined...)
		maxInt(&t.Documents, s.Documents)
		maxInt(&t.Completed, s.Completed)
		maxInt(&t.Skipped, s.Skipped)
		maxInt(&t.Sentences, s.Sentences)
		maxInt(&t.Phrases, s.Phrases)
		maxInt(&t.BatchDocs, s.BatchDocs)
		if s.QueueWaitMS > t.QueueWaitMS {
			t.QueueWaitMS = s.QueueWaitMS
		}
		if s.RunMS > t.RunMS {
			t.RunMS = s.RunMS
		}
	}
	sort.SliceStable(out.Assignments, func(i, j int) bool {
		a, b := out.Assignments[i], out.Assignments[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Concept != b.Concept {
			return a.Concept < b.Concept
		}
		return a.Value < b.Value
	})
	return out
}

func maxInt(dst *int, v int) {
	if v > *dst {
		*dst = v
	}
}
