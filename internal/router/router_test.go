package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thor/internal/obs"
	"thor/internal/serve"
)

// fakeThord emulates a thord backend: canned /v1/* responses with
// configurable status, delay and Retry-After, plus /readyz and /metrics.
type fakeThord struct {
	name string
	ts   *httptest.Server

	mu              sync.Mutex
	body            []byte
	status          int
	retryAfter      string
	delay           time.Duration
	failN           int // next failN /v1/* calls use status/retryAfter, then 200
	readyStatus     int
	readyBody       string
	lastTraceparent string

	calls    atomic.Int64
	canceled atomic.Int64
}

// newFakeThord starts a fake backend whose 200 responses carry the marker
// name (so tests can tell which replica served a request).
func newFakeThord(t *testing.T, name string) *fakeThord {
	t.Helper()
	f := &fakeThord{
		name:        name,
		body:        []byte(`{"entities":{"` + name + `":[]},"stats":{"documents":1,"completed":1}}` + "\n"),
		status:      http.StatusOK,
		readyStatus: http.StatusOK,
		readyBody:   `{"status":"ok"}`,
	}
	f.ts = httptest.NewServer(http.HandlerFunc(f.handle))
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeThord) handle(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/readyz":
		f.mu.Lock()
		st, body := f.readyStatus, f.readyBody
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(st)
		io.WriteString(w, body)
	case "/metrics":
		io.WriteString(w, "# TYPE thor_slo_burn_rate gauge\nthor_slo_burn_rate{stream=\"avail\"} 0.25\n# EOF\n")
	case "/v1/fill", "/v1/extract":
		f.calls.Add(1)
		// Consume the body like a real backend would: the net/http server
		// only watches for client disconnects (cancelling r.Context())
		// once the request body has been read.
		io.Copy(io.Discard, r.Body)
		f.mu.Lock()
		f.lastTraceparent = r.Header.Get("traceparent")
		status, body, ra, delay := f.status, f.body, f.retryAfter, f.delay
		if f.failN > 0 {
			// failN sheds the next N calls regardless of the steady status.
			f.failN--
			status = http.StatusServiceUnavailable
		}
		f.mu.Unlock()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				f.canceled.Add(1)
				return
			}
		}
		if ra != "" && status != http.StatusOK {
			w.Header().Set("Retry-After", ra)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		if status == http.StatusOK {
			w.Write(body)
		} else {
			io.WriteString(w, `{"error":{"code":"overloaded","message":"shed"}}`)
		}
	default:
		http.NotFound(w, r)
	}
}

// set applies a mutation under the backend's lock.
func (f *fakeThord) set(fn func(*fakeThord)) {
	f.mu.Lock()
	fn(f)
	f.mu.Unlock()
}

// newTestRouter builds a prober-less router over the given backends with
// fast test timings.
func newTestRouter(t *testing.T, reg *obs.Registry, opts Options, urls ...string) *Router {
	t.Helper()
	if opts.Shards.Shards == nil {
		opts.Shards = SingleShard(urls)
	}
	opts.Metrics = reg
	opts.HealthInterval = -1
	if opts.Retry.Attempts == 0 {
		opts.Retry.Attempts = 3
	}
	if opts.Retry.Base == 0 {
		opts.Retry.Base = time.Millisecond
		opts.Retry.Cap = 5 * time.Millisecond
	}
	rt, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// fillBody builds a /v1/fill request body over the given document names.
func fillBody(t *testing.T, names ...string) []byte {
	t.Helper()
	req := serve.Request{}
	for _, n := range names {
		req.Documents = append(req.Documents, serve.Document{Name: n, Text: "Some text about " + n + "."})
	}
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return buf
}

// post sends body to the router and returns status, raw bytes and headers.
func post(t *testing.T, h http.Handler, path string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes(), rec.Header()
}

func TestSingleShardPassthroughVerbatim(t *testing.T) {
	f := newFakeThord(t, "b1")
	rt := newTestRouter(t, obs.NewRegistry(), Options{}, f.ts.URL)

	status, raw, hdr := post(t, rt.Handler(), "/v1/fill", fillBody(t, "doc-a"))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	f.mu.Lock()
	want := append([]byte(nil), f.body...)
	f.mu.Unlock()
	if !bytes.Equal(raw, want) {
		t.Fatalf("response not byte-identical to backend reply:\n got %q\nwant %q", raw, want)
	}
	if hdr.Get("X-Thor-Backend") == "" {
		t.Fatal("missing X-Thor-Backend header")
	}
	if hdr.Get("X-Trace-Id") == "" {
		t.Fatal("missing X-Trace-Id header")
	}
}

func TestReplicaAffinity(t *testing.T) {
	a, b := newFakeThord(t, "a"), newFakeThord(t, "b")
	rt := newTestRouter(t, obs.NewRegistry(), Options{}, a.ts.URL, b.ts.URL)

	body := fillBody(t, "corpus-1", "corpus-2")
	for i := 0; i < 6; i++ {
		status, raw, _ := post(t, rt.Handler(), "/v1/fill", body)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, raw)
		}
	}
	ca, cb := a.calls.Load(), b.calls.Load()
	if ca+cb != 6 || (ca != 0 && cb != 0) {
		t.Fatalf("same-key requests split across replicas: a=%d b=%d (want all on one)", ca, cb)
	}
}

func TestFailoverToSecondReplica(t *testing.T) {
	a, b := newFakeThord(t, "a"), newFakeThord(t, "b")
	reg := obs.NewRegistry()
	rt := newTestRouter(t, reg, Options{}, a.ts.URL, b.ts.URL)

	body := fillBody(t, "failover-doc")
	status, raw, hdr := post(t, rt.Handler(), "/v1/fill", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	primary := hdr.Get("X-Thor-Backend")

	// Kill whichever replica served the request; the same key must now be
	// served by the other, with zero client-visible failures.
	var killed, survivor *fakeThord = a, b
	if strings.Contains(b.ts.URL, primary) {
		killed, survivor = b, a
	}
	killed.ts.CloseClientConnections()
	killed.ts.Close()

	for i := 0; i < 3; i++ {
		status, raw, hdr = post(t, rt.Handler(), "/v1/fill", body)
		if status != http.StatusOK {
			t.Fatalf("after kill, request %d: status %d: %s", i, status, raw)
		}
		if got := hdr.Get("X-Thor-Backend"); !strings.Contains(survivor.ts.URL, got) {
			t.Fatalf("after kill, served by %q, want survivor %q", got, survivor.ts.URL)
		}
	}
	if reg.Counter("router.retries").Value() == 0 {
		t.Fatal("failover should have recorded at least one retry")
	}
}

func TestHedgeFiresOnSlowPrimaryAndCancelsLoser(t *testing.T) {
	a, b := newFakeThord(t, "a"), newFakeThord(t, "b")
	reg := obs.NewRegistry()
	rt := newTestRouter(t, reg, Options{HedgeMin: 30 * time.Millisecond}, a.ts.URL, b.ts.URL)

	body := fillBody(t, "hedge-doc")
	_, _, hdr := post(t, rt.Handler(), "/v1/fill", body)
	primary := a
	if strings.Contains(b.ts.URL, hdr.Get("X-Thor-Backend")) {
		primary = b
	}

	// Make only the primary slow: the hedge must fire to the other replica
	// and win, and the abandoned primary call must observe cancellation.
	primary.set(func(f *fakeThord) { f.delay = 2 * time.Second })
	start := time.Now()
	status, raw, hdr := post(t, rt.Handler(), "/v1/fill", body)
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if got := hdr.Get("X-Thor-Backend"); strings.Contains(primary.ts.URL, got) {
		t.Fatalf("slow primary %q won, want the hedge replica", got)
	}
	if elapsed > time.Second {
		t.Fatalf("hedged request took %v, want well under the primary's 2s stall", elapsed)
	}
	if reg.Counter("router.hedges").Value() == 0 || reg.Counter("router.hedge.wins").Value() == 0 {
		t.Fatalf("hedge metrics: hedges=%d wins=%d, want both > 0",
			reg.Counter("router.hedges").Value(), reg.Counter("router.hedge.wins").Value())
	}
	// The loser is cancelled, not left running to completion.
	deadline := time.Now().Add(2 * time.Second)
	for primary.canceled.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if primary.canceled.Load() == 0 {
		t.Fatal("hedge loser was not cancelled")
	}
}

func TestAllReplicasDownUnavailable(t *testing.T) {
	a, b := newFakeThord(t, "a"), newFakeThord(t, "b")
	a.ts.Close()
	b.ts.Close()
	reg := obs.NewRegistry()
	rt := newTestRouter(t, reg, Options{}, a.ts.URL, b.ts.URL)

	status, raw, hdr := post(t, rt.Handler(), "/v1/fill", fillBody(t, "doc"))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", status, raw)
	}
	var eb serve.ErrorBody
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Error.Code != CodeUnavailable {
		t.Fatalf("error envelope = %s (err %v), want code %q", raw, err, CodeUnavailable)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 must carry Retry-After")
	}
	if reg.Counter("router.unavailable").Value() == 0 {
		t.Fatal("router.unavailable not incremented")
	}
}

func TestBreakerOpensThenRecovers(t *testing.T) {
	f := newFakeThord(t, "only")
	reg := obs.NewRegistry()
	rt := newTestRouter(t, reg, Options{
		Breaker: BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond},
	}, f.ts.URL)

	// Backend sheds everything: requests fail, breaker opens.
	f.set(func(f *fakeThord) { f.status = http.StatusServiceUnavailable })
	for i := 0; i < 3; i++ {
		post(t, rt.Handler(), "/v1/fill", fillBody(t, "doc"))
	}
	top := rt.Topology()
	if got := top.Shards[0].Backends[0].Breaker; got != "open" {
		t.Fatalf("breaker = %q, want open", got)
	}
	if top.Shards[0].Available {
		t.Fatal("shard with only an open-breaker backend should be unavailable")
	}
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d, want 503 while the only shard is breaker-open", rec.Code)
	}

	// Backend recovers; after the cooldown a half-open probe closes the
	// breaker and traffic resumes.
	f.set(func(f *fakeThord) { f.status = http.StatusOK })
	time.Sleep(60 * time.Millisecond)
	status, raw, _ := post(t, rt.Handler(), "/v1/fill", fillBody(t, "doc"))
	if status != http.StatusOK {
		t.Fatalf("post-recovery status %d: %s", status, raw)
	}
	if got := rt.Topology().Shards[0].Backends[0].Breaker; got != "closed" {
		t.Fatalf("post-recovery breaker = %q, want closed", got)
	}
	if reg.Counter(obs.LabeledName("router.breaker.transitions", "backend", hostOf(f.ts.URL))).Value() < 3 {
		t.Fatal("breaker transitions not visible in metrics")
	}
}

func TestBrownoutMultiShard(t *testing.T) {
	a, b := newFakeThord(t, "subj-a"), newFakeThord(t, "subj-b")
	reg := obs.NewRegistry()
	m := ShardMap{Shards: []ShardConfig{
		{ID: "anatomy", Concepts: []string{"Anatomy"}, Backends: []string{a.ts.URL}},
		{ID: "complication", Concepts: []string{"Complication"}, Backends: []string{b.ts.URL}},
	}}
	rt := newTestRouter(t, reg, Options{Shards: m})

	// Both shards up: merged response, no degraded marker.
	status, raw, _ := post(t, rt.Handler(), "/v1/fill", fillBody(t, "doc"))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Degraded) != 0 {
		t.Fatalf("degraded = %+v, want none", resp.Degraded)
	}
	if _, ok := resp.Entities["subj-a"]; !ok {
		t.Fatalf("missing shard A entities: %s", raw)
	}
	if _, ok := resp.Entities["subj-b"]; !ok {
		t.Fatalf("missing shard B entities: %s", raw)
	}

	// Shard B down: partial results with its degraded marker, not failure.
	b.ts.CloseClientConnections()
	b.ts.Close()
	status, raw, _ = post(t, rt.Handler(), "/v1/fill", fillBody(t, "doc"))
	if status != http.StatusOK {
		t.Fatalf("brownout status %d, want 200: %s", status, raw)
	}
	resp = Response{}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Degraded) != 1 || resp.Degraded[0].Shard != "complication" {
		t.Fatalf("degraded = %+v, want the complication shard", resp.Degraded)
	}
	if got := resp.Degraded[0].Concepts; len(got) != 1 || got[0] != "Complication" {
		t.Fatalf("degraded concepts = %v, want [Complication]", got)
	}
	if resp.Degraded[0].Reason == "" {
		t.Fatal("degraded marker missing reason")
	}
	if _, ok := resp.Entities["subj-a"]; !ok {
		t.Fatalf("brownout lost the healthy shard's entities: %s", raw)
	}
	if reg.Counter("router.brownouts").Value() != 1 {
		t.Fatalf("router.brownouts = %d, want 1", reg.Counter("router.brownouts").Value())
	}

	// Both shards down: no partial possible, 503.
	a.ts.CloseClientConnections()
	a.ts.Close()
	status, raw, _ = post(t, rt.Handler(), "/v1/fill", fillBody(t, "doc"))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("all-down status %d, want 503: %s", status, raw)
	}
}

func TestTraceparentPropagation(t *testing.T) {
	f := newFakeThord(t, "b1")
	tracer := obs.NewTracer(64)
	rt := newTestRouter(t, obs.NewRegistry(), Options{Tracer: tracer}, f.ts.URL)

	inbound := "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req := httptest.NewRequest(http.MethodPost, "/v1/fill", bytes.NewReader(fillBody(t, "doc")))
	req.Header.Set("traceparent", inbound)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Trace-Id"); got != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("X-Trace-Id = %q, want the inbound trace ID", got)
	}
	f.mu.Lock()
	got := f.lastTraceparent
	f.mu.Unlock()
	tc, ok := obs.ParseTraceparent(got)
	if !ok {
		t.Fatalf("backend saw invalid traceparent %q", got)
	}
	if tc.Trace.String() != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("backend trace ID %s, want the inbound trace", tc.Trace)
	}
	if tc.Span.String() == "00f067aa0ba902b7" {
		t.Fatal("backend parent span must be a fresh router span, not the inbound span")
	}
}

func TestPermanent4xxPassthroughNoRetry(t *testing.T) {
	f := newFakeThord(t, "b1")
	f.set(func(f *fakeThord) { f.status = http.StatusBadRequest })
	rt := newTestRouter(t, obs.NewRegistry(), Options{}, f.ts.URL)

	status, raw, _ := post(t, rt.Handler(), "/v1/fill", fillBody(t, "doc"))
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want the backend's 400", status)
	}
	if !strings.Contains(string(raw), "overloaded") {
		t.Fatalf("body not relayed verbatim: %s", raw)
	}
	if got := f.calls.Load(); got != 1 {
		t.Fatalf("backend called %d times, want exactly 1 (no retry of permanent verdicts)", got)
	}
}

func TestRetryOn503ThenSuccess(t *testing.T) {
	f := newFakeThord(t, "b1")
	// First two calls shed, then recover.
	f.set(func(f *fakeThord) { f.failN = 2 })
	reg := obs.NewRegistry()
	rt := newTestRouter(t, reg, Options{}, f.ts.URL)

	status, raw, _ := post(t, rt.Handler(), "/v1/fill", fillBody(t, "doc"))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if reg.Counter("router.retries").Value() == 0 {
		t.Fatal("retries not recorded")
	}
}

func TestProberClassifiesBackends(t *testing.T) {
	healthy := newFakeThord(t, "h")
	degraded := newFakeThord(t, "d")
	degraded.set(func(f *fakeThord) {
		f.readyStatus = http.StatusServiceUnavailable
		f.readyBody = `{"status":"degraded","violating":["latency_p99"]}`
	})
	down := newFakeThord(t, "x")
	down.ts.Close()

	rt := newTestRouter(t, obs.NewRegistry(), Options{}, healthy.ts.URL, degraded.ts.URL, down.ts.URL)
	rt.Probe(t.Context())

	top := rt.Topology()
	got := map[string]string{}
	for _, b := range top.Shards[0].Backends {
		got[b.URL] = b.Health
	}
	if got[healthy.ts.URL] != "healthy" {
		t.Fatalf("healthy backend classified %q", got[healthy.ts.URL])
	}
	if got[degraded.ts.URL] != "degraded" {
		t.Fatalf("degraded backend classified %q", got[degraded.ts.URL])
	}
	if got[down.ts.URL] != "down" {
		t.Fatalf("down backend classified %q", got[down.ts.URL])
	}
	// Burn rate scraped from /metrics.
	for _, b := range top.Shards[0].Backends {
		if b.URL == healthy.ts.URL && b.BurnRate != 0.25 {
			t.Fatalf("burn rate = %v, want 0.25 from the fake exposition", b.BurnRate)
		}
	}

	// Preference order puts the healthy replica first regardless of
	// rendezvous rank.
	sh := rt.shards[0]
	for trial := 0; trial < 8; trial++ {
		order := rt.preferenceOrder(sh, fmt.Sprintf("key-%d", trial))
		if order[0].url != healthy.ts.URL {
			t.Fatalf("trial %d: first preference %q, want the healthy backend", trial, order[0].url)
		}
		if order[2].url != down.ts.URL {
			t.Fatalf("trial %d: last preference %q, want the down backend", trial, order[2].url)
		}
	}
}

func TestMergeResponsesDeterministic(t *testing.T) {
	partA := serve.Response{
		Entities: map[string][]serve.Entity{
			"Cholera": {{Phrase: "small intestine", Concept: "Anatomy", Doc: "cho"}},
		},
		Stats: serve.Stats{Documents: 2, Completed: 2, Sentences: 5, Candidates: 3, Entities: 1, Filled: 1, RunMS: 4},
	}
	partB := serve.Response{
		Entities: map[string][]serve.Entity{
			"Cholera":      {{Phrase: "dehydration", Concept: "Complication", Doc: "cho"}},
			"Tuberculosis": {{Phrase: "lungs", Concept: "Anatomy", Doc: "tb"}},
		},
		Stats: serve.Stats{Documents: 2, Completed: 1, Sentences: 5, Candidates: 2, Entities: 2, Filled: 2, RunMS: 9},
	}
	merged := mergeResponses([]serve.Response{partA, partB})
	if len(merged.Entities["Cholera"]) != 2 || len(merged.Entities["Tuberculosis"]) != 1 {
		t.Fatalf("entities merged wrong: %+v", merged.Entities)
	}
	if merged.Stats.Documents != 2 || merged.Stats.Completed != 2 {
		t.Fatalf("documents/completed = %d/%d, want max 2/2", merged.Stats.Documents, merged.Stats.Completed)
	}
	if merged.Stats.Candidates != 5 || merged.Stats.Entities != 3 || merged.Stats.Filled != 3 {
		t.Fatalf("summed counters wrong: %+v", merged.Stats)
	}
	if merged.Stats.RunMS != 9 {
		t.Fatalf("RunMS = %v, want max 9", merged.Stats.RunMS)
	}
}

func TestRouterRejectsBadRequests(t *testing.T) {
	f := newFakeThord(t, "b1")
	rt := newTestRouter(t, obs.NewRegistry(), Options{}, f.ts.URL)

	status, raw, _ := post(t, rt.Handler(), "/v1/fill", []byte(`{not json`))
	if status != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d: %s", status, raw)
	}
	status, raw, _ = post(t, rt.Handler(), "/v1/fill", []byte(`{"documents":[]}`))
	if status != http.StatusBadRequest {
		t.Fatalf("empty documents: status %d: %s", status, raw)
	}
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/fill", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", rec.Code)
	}
	if f.calls.Load() != 0 {
		t.Fatalf("invalid requests reached the backend %d times", f.calls.Load())
	}
}

// hostOf strips the scheme from a test server URL.
func hostOf(u string) string {
	return strings.TrimPrefix(u, "http://")
}
