package router

import (
	"fmt"
	"testing"
)

func TestRendezvousOrderIsPermutation(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	order := rendezvousOrder("key-1", nodes)
	if len(order) != len(nodes) {
		t.Fatalf("order length %d, want %d", len(order), len(nodes))
	}
	seen := make(map[int]bool)
	for _, i := range order {
		if i < 0 || i >= len(nodes) || seen[i] {
			t.Fatalf("order %v is not a permutation", order)
		}
		seen[i] = true
	}
	// Deterministic across calls.
	again := rendezvousOrder("key-1", nodes)
	for i := range order {
		if order[i] != again[i] {
			t.Fatalf("order not deterministic: %v vs %v", order, again)
		}
	}
}

// TestRendezvousMinimalDisruption pins the HRW property the replica caches
// rely on: removing one node only moves the keys that lived on it.
func TestRendezvousMinimalDisruption(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	const keys = 500
	moved := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		full := rendezvousOrder(key, nodes)
		if full[0] == 2 {
			continue // lived on the removed node; expected to move
		}
		reduced := rendezvousOrder(key, nodes[:2])
		if reduced[0] != full[0] {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved that did not live on the removed node", moved)
	}
}

// TestRendezvousBalance sanity-checks the spread: over many keys each of 3
// nodes should own a non-trivial share.
func TestRendezvousBalance(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	counts := make([]int, 3)
	const keys = 3000
	for k := 0; k < keys; k++ {
		counts[rendezvousOrder(fmt.Sprintf("key-%d", k), nodes)[0]]++
	}
	for i, c := range counts {
		if c < keys/6 || c > keys/2+keys/6 {
			t.Fatalf("node %d owns %d of %d keys — badly unbalanced (%v)", i, c, keys, counts)
		}
	}
}

func TestRequestKeyOrderInsensitive(t *testing.T) {
	a := requestKey([]string{"doc-a", "doc-b", "doc-c"})
	b := requestKey([]string{"doc-c", "doc-a", "doc-b"})
	if a != b {
		t.Fatalf("shuffled document lists got different keys: %q vs %q", a, b)
	}
	if a == requestKey([]string{"doc-a", "doc-b"}) {
		t.Fatal("different document sets got the same key")
	}
	if requestKey(nil) != "" {
		t.Fatal("empty list should key to empty string")
	}
}
