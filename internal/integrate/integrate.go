package integrate

import (
	"fmt"
	"strings"

	"thor/internal/schema"
)

// Source is one input dataset: a table over a (possibly partial) schema that
// shares the subject concept with the integration target.
type Source struct {
	// Name identifies the source in reports and diagnostics.
	Name string
	// Table is the source's data.
	Table *schema.Table
}

// FullDisjunction integrates the sources over the union of their schemas,
// keyed by the subject concept. Every subject instance appearing in any
// source yields a row; cells absent from every source remain labeled nulls.
// It is the maximal partial-match combination of the sources (Rajaraman &
// Ullman's full disjunction restricted to a star schema around C*).
func FullDisjunction(subject schema.Concept, sources ...Source) (*schema.Table, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("integrate: no sources")
	}
	// Union schema, preserving first-seen concept order.
	union := schema.NewSchema(subject)
	for _, src := range sources {
		if src.Table == nil {
			return nil, fmt.Errorf("integrate: source %q has no table", src.Name)
		}
		if src.Table.Schema.Subject != subject {
			return nil, fmt.Errorf("integrate: source %q has subject %q, want %q",
				src.Name, src.Table.Schema.Subject, subject)
		}
		for _, c := range src.Table.Schema.Concepts {
			union = union.WithConcept(c)
		}
	}
	out := schema.NewTable(union)
	for _, src := range sources {
		for _, row := range src.Table.Rows {
			dst := out.AddRow(row.Subject)
			for c, vs := range row.Cells {
				for _, v := range vs {
					dst.Add(c, v)
				}
			}
		}
	}
	return out, nil
}

// LeftOuterJoin integrates right into left keyed by the subject concept:
// every left row is kept and enriched with right's cells where subjects
// match; right-only subjects are dropped. Schemas are unioned.
func LeftOuterJoin(left, right *schema.Table) (*schema.Table, error) {
	if left.Schema.Subject != right.Schema.Subject {
		return nil, fmt.Errorf("integrate: subject mismatch %q vs %q",
			left.Schema.Subject, right.Schema.Subject)
	}
	union := left.Schema
	for _, c := range right.Schema.Concepts {
		union = union.WithConcept(c)
	}
	out := schema.NewTable(union)
	for _, row := range left.Rows {
		dst := out.AddRow(row.Subject)
		for c, vs := range row.Cells {
			for _, v := range vs {
				dst.Add(c, v)
			}
		}
		if match := right.Row(row.Subject); match != nil {
			for c, vs := range match.Cells {
				for _, v := range vs {
					dst.Add(c, v)
				}
			}
		}
	}
	return out, nil
}

// Report summarizes an integration result for diagnostics.
type Report struct {
	// Sources is the number of input datasets integrated.
	Sources int
	// Rows is the integrated table's row count.
	Rows int
	// Concepts is the width of the unified schema.
	Concepts int
	// Instances is the number of non-null cell values.
	Instances int
	// Sparsity is the integrated table's missing-cell ratio.
	Sparsity schema.Sparsity
}

// Describe computes a Report for an integrated table.
func Describe(t *schema.Table, sources int) Report {
	return Report{
		Sources:   sources,
		Rows:      len(t.Rows),
		Concepts:  len(t.Schema.Concepts),
		Instances: t.InstanceCount(),
		Sparsity:  t.Sparsity(),
	}
}

// String renders the report in one line.
func (r Report) String() string {
	return fmt.Sprintf("%d sources -> %d rows x %d concepts, %d instances, %.1f%% missing",
		r.Sources, r.Rows, r.Concepts, r.Instances, 100*r.Sparsity.Ratio())
}

// FullOuterJoin integrates left and right keeping every subject from both
// sides (unlike LeftOuterJoin, which drops right-only subjects). Schemas are
// unioned; matching rows merge their cells.
func FullOuterJoin(left, right *schema.Table) (*schema.Table, error) {
	if left.Schema.Subject != right.Schema.Subject {
		return nil, fmt.Errorf("integrate: subject mismatch %q vs %q",
			left.Schema.Subject, right.Schema.Subject)
	}
	return FullDisjunction(left.Schema.Subject,
		Source{Name: "left", Table: left},
		Source{Name: "right", Table: right},
	)
}

// Provenance records which sources contributed each cell value of an
// integrated table, keyed by (subject, concept, normalized value).
type Provenance struct {
	sources map[provKey][]string
}

type provKey struct {
	subject string
	concept schema.Concept
	value   string
}

// Sources returns the names of the sources that contributed value v for
// (subject, concept), in contribution order.
func (p *Provenance) Sources(subject string, c schema.Concept, v string) []string {
	if p == nil {
		return nil
	}
	return p.sources[provKey{normTerm(subject), c, normTerm(v)}]
}

func normTerm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// FullDisjunctionTracked is FullDisjunction plus value provenance: the
// returned Provenance answers "which source said this?" for every cell
// value — the lineage a data integration pipeline needs when a downstream
// consumer questions a filled slot.
func FullDisjunctionTracked(subject schema.Concept, sources ...Source) (*schema.Table, *Provenance, error) {
	out, err := FullDisjunction(subject, sources...)
	if err != nil {
		return nil, nil, err
	}
	prov := &Provenance{sources: make(map[provKey][]string)}
	for _, src := range sources {
		for _, row := range src.Table.Rows {
			for c, vs := range row.Cells {
				for _, v := range vs {
					key := provKey{normTerm(row.Subject), c, normTerm(v)}
					names := prov.sources[key]
					dup := false
					for _, n := range names {
						if n == src.Name {
							dup = true
							break
						}
					}
					if !dup {
						prov.sources[key] = append(names, src.Name)
					}
				}
			}
		}
	}
	return out, prov, nil
}
