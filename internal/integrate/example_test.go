package integrate_test

import (
	"fmt"

	"thor/internal/integrate"
	"thor/internal/schema"
)

// ExampleFullDisjunction shows the paper's Fig. 1 integration step: two
// sources over different concept sets produce a sparse integrated table.
func ExampleFullDisjunction() {
	d1 := schema.NewTable(schema.NewSchema("Disease", "Anatomy"))
	d1.AddRow("Acoustic Neuroma").Add("Anatomy", "nervous system")

	d2 := schema.NewTable(schema.NewSchema("Disease", "Complication"))
	d2.AddRow("Tuberculosis").Add("Complication", "empyema")

	out, err := integrate.FullDisjunction("Disease",
		integrate.Source{Name: "D1", Table: d1},
		integrate.Source{Name: "D2", Table: d2},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(out)
	fmt.Println("Acoustic Neuroma complication missing:",
		out.Row("Acoustic Neuroma").Missing("Complication"))
	// Output:
	// Table[Disease: 3 concepts, 2 rows, 4 instances, 50.0% sparse]
	// Acoustic Neuroma complication missing: true
}
