// Package integrate combines concept-oriented data sources into a single
// integrated table, reproducing the data-integration setting of the paper's
// introduction: sources capture different instance sets and partial views,
// so combining them with partial-match operators (outer join / full
// disjunction over the subject concept) yields a table riddled with labeled
// nulls — the data sparsity THOR then mitigates.
package integrate
