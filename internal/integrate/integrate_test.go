package integrate

import (
	"strings"
	"testing"

	"thor/internal/schema"
)

func source(name string, subject schema.Concept, concepts []schema.Concept, rows map[string]map[schema.Concept][]string) Source {
	t := schema.NewTable(schema.Schema{Subject: subject, Concepts: append([]schema.Concept{subject}, concepts...)})
	for subj, cells := range rows {
		r := t.AddRow(subj)
		for c, vs := range cells {
			for _, v := range vs {
				r.Add(c, v)
			}
		}
	}
	return Source{Name: name, Table: t}
}

// The Fig. 1 scenario: D1 and D2 both hold 'Disease' but different instances
// and different concepts; combining them produces labeled nulls.
func TestFullDisjunctionFig1(t *testing.T) {
	d1 := source("D1", "Disease", []schema.Concept{"Anatomy"}, map[string]map[schema.Concept][]string{
		"Acoustic Neuroma": {"Anatomy": {"nervous system"}},
	})
	d2 := source("D2", "Disease", []schema.Concept{"Complication"}, map[string]map[schema.Concept][]string{
		"Tuberculosis": {"Complication": {"empyema"}},
	})
	out, err := FullDisjunction("Disease", d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 || len(out.Schema.Concepts) != 3 {
		t.Fatalf("integrated shape: %v", out)
	}
	an := out.Row("Acoustic Neuroma")
	if !an.Has("Anatomy", "nervous system") {
		t.Error("lost D1 value")
	}
	if !an.Missing("Complication") {
		t.Error("Acoustic Neuroma should have a labeled null for Complication")
	}
	tb := out.Row("Tuberculosis")
	if !tb.Missing("Anatomy") || !tb.Has("Complication", "empyema") {
		t.Error("Tuberculosis cells wrong")
	}
	sp := out.Sparsity()
	if sp.Missing != 2 {
		t.Errorf("expected 2 labeled nulls, got %d", sp.Missing)
	}
}

func TestFullDisjunctionMergesSameSubject(t *testing.T) {
	d1 := source("D1", "Disease", []schema.Concept{"Anatomy"}, map[string]map[schema.Concept][]string{
		"Flu": {"Anatomy": {"lungs"}},
	})
	d2 := source("D2", "Disease", []schema.Concept{"Anatomy", "Cause"}, map[string]map[schema.Concept][]string{
		"flu": {"Anatomy": {"throat"}, "Cause": {"influenza virus"}},
	})
	out, err := FullDisjunction("Disease", d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 {
		t.Fatalf("case-insensitive subject merge failed: %d rows", len(out.Rows))
	}
	r := out.Row("Flu")
	if !r.Has("Anatomy", "lungs") || !r.Has("Anatomy", "throat") || !r.Has("Cause", "influenza virus") {
		t.Errorf("multi-source values not unioned: %+v", r)
	}
}

func TestFullDisjunctionErrors(t *testing.T) {
	if _, err := FullDisjunction("Disease"); err == nil {
		t.Error("no sources should error")
	}
	bad := source("bad", "Name", nil, nil)
	if _, err := FullDisjunction("Disease", bad); err == nil {
		t.Error("subject mismatch should error")
	}
	if _, err := FullDisjunction("Disease", Source{Name: "nil"}); err == nil {
		t.Error("nil table should error")
	}
}

func TestLeftOuterJoin(t *testing.T) {
	left := source("L", "Disease", []schema.Concept{"Anatomy"}, map[string]map[schema.Concept][]string{
		"Acne": {"Anatomy": {"skin"}},
		"Flu":  {},
	}).Table
	right := source("R", "Disease", []schema.Concept{"Cause"}, map[string]map[schema.Concept][]string{
		"Flu":     {"Cause": {"virus"}},
		"Malaria": {"Cause": {"parasite"}},
	}).Table
	out, err := LeftOuterJoin(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("outer join row count = %d, want 2 (left preserved, right-only dropped)", len(out.Rows))
	}
	if out.Row("Malaria") != nil {
		t.Error("right-only subject should be dropped")
	}
	if !out.Row("Flu").Has("Cause", "virus") {
		t.Error("matching right cells not merged")
	}
	if !out.Row("Acne").Missing("Cause") {
		t.Error("Acne should hold a labeled null for Cause")
	}
}

func TestLeftOuterJoinSubjectMismatch(t *testing.T) {
	l := schema.NewTable(schema.NewSchema("Disease"))
	r := schema.NewTable(schema.NewSchema("Name"))
	if _, err := LeftOuterJoin(l, r); err == nil {
		t.Error("subject mismatch should error")
	}
}

func TestDescribeReport(t *testing.T) {
	d1 := source("D1", "Disease", []schema.Concept{"Anatomy"}, map[string]map[schema.Concept][]string{
		"Acne": {"Anatomy": {"skin"}},
		"Flu":  {},
	})
	out, err := FullDisjunction("Disease", d1)
	if err != nil {
		t.Fatal(err)
	}
	rep := Describe(out, 1)
	if rep.Rows != 2 || rep.Concepts != 2 || rep.Instances != 3 {
		t.Errorf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "1 sources") {
		t.Errorf("String = %q", rep.String())
	}
}

func TestFullOuterJoinKeepsBothSides(t *testing.T) {
	left := source("L", "Disease", []schema.Concept{"Anatomy"}, map[string]map[schema.Concept][]string{
		"Acne": {"Anatomy": {"skin"}},
	}).Table
	right := source("R", "Disease", []schema.Concept{"Cause"}, map[string]map[schema.Concept][]string{
		"Malaria": {"Cause": {"parasite"}},
	}).Table
	out, err := FullOuterJoin(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("rows = %d, want both sides kept", len(out.Rows))
	}
	if out.Row("Malaria") == nil || !out.Row("Malaria").Has("Cause", "parasite") {
		t.Error("right-only row lost")
	}
	if !out.Row("Acne").Missing("Cause") {
		t.Error("Acne should have labeled null for Cause")
	}
	if _, err := FullOuterJoin(left, schema.NewTable(schema.NewSchema("Name"))); err == nil {
		t.Error("subject mismatch should error")
	}
}

func TestFullDisjunctionTracked(t *testing.T) {
	d1 := source("who", "Disease", []schema.Concept{"Anatomy"}, map[string]map[schema.Concept][]string{
		"Flu": {"Anatomy": {"lungs"}},
	})
	d2 := source("nhs", "Disease", []schema.Concept{"Anatomy", "Cause"}, map[string]map[schema.Concept][]string{
		"flu": {"Anatomy": {"Lungs"}, "Cause": {"virus"}},
	})
	out, prov, err := FullDisjunctionTracked("Disease", d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Row("Flu").Has("Anatomy", "lungs") {
		t.Fatal("integration lost values")
	}
	// Both sources contributed 'lungs' (case-insensitively).
	got := prov.Sources("flu", "Anatomy", "LUNGS")
	if len(got) != 2 || got[0] != "who" || got[1] != "nhs" {
		t.Errorf("Sources(lungs) = %v", got)
	}
	if got := prov.Sources("Flu", "Cause", "virus"); len(got) != 1 || got[0] != "nhs" {
		t.Errorf("Sources(virus) = %v", got)
	}
	if got := prov.Sources("Flu", "Cause", "unknown"); got != nil {
		t.Errorf("unknown value should have no provenance: %v", got)
	}
	var nilProv *Provenance
	if nilProv.Sources("x", "y", "z") != nil {
		t.Error("nil provenance should be safe")
	}
}
