package eval

import (
	"fmt"
	"math"
	"testing"

	"thor/internal/schema"
)

func m(subj string, c schema.Concept, phrase string) Mention {
	return Mention{Subject: subj, Concept: c, Phrase: phrase}
}

func TestPhraseOverlap(t *testing.T) {
	cases := []struct {
		pred, gold string
		want       overlapKind
	}{
		{"lungs", "lungs", overlapExact},
		{"vestibular", "main vestibular nerve", overlapPartial},
		{"main vestibular nerve", "vestibular", overlapPartial},
		{"brain tumor", "non-cancerous brain tumor", overlapPartial},
		{"skin cancer", "lung cancer", overlapPartial}, // shares 'cancer' (half the words)
		{"lungs", "brain", overlapNone},
		{"", "brain", overlapNone},
	}
	for _, c := range cases {
		if got := phraseOverlap(c.pred, c.gold); got != c.want {
			t.Errorf("phraseOverlap(%q,%q) = %v, want %v", c.pred, c.gold, got, c.want)
		}
	}
}

func TestEvaluatePerfect(t *testing.T) {
	gold := []Mention{
		m("acne", "Complication", "scarring"),
		m("acne", "Anatomy", "skin"),
	}
	rep := Evaluate(gold, gold)
	o := rep.Overall
	if o.Correct != 2 || o.Predicted() != 2 || o.FP() != 0 || o.FN() != 0 {
		t.Fatalf("perfect eval: %+v", o)
	}
	if o.Precision() != 1 || o.Recall() != 1 || o.F1() != 1 || o.Sensitivity() != 1 {
		t.Errorf("perfect scores: P=%v R=%v F1=%v", o.Precision(), o.Recall(), o.F1())
	}
}

func TestEvaluatePartialCredit(t *testing.T) {
	gold := []Mention{m("x", "Anatomy", "main vestibular nerve")}
	pred := []Mention{m("x", "Anatomy", "vestibular")}
	o := Evaluate(pred, gold).Overall
	if o.Partial != 1 || o.Correct != 0 {
		t.Fatalf("expected 1 partial: %+v", o)
	}
	if o.TP() != 1 {
		t.Errorf("raw TP should count partial: %d", o.TP())
	}
	if math.Abs(o.Precision()-0.5) > 1e-9 || math.Abs(o.Recall()-0.5) > 1e-9 {
		t.Errorf("partial credit: P=%v R=%v, want 0.5", o.Precision(), o.Recall())
	}
}

func TestEvaluateWrongType(t *testing.T) {
	gold := []Mention{m("x", "Anatomy", "blood")}
	pred := []Mention{m("x", "Complication", "blood")}
	rep := Evaluate(pred, gold)
	o := rep.Overall
	if o.Incorrect != 1 || o.Missing != 1 {
		t.Fatalf("wrong type: %+v", o)
	}
	if o.TP() != 0 || o.FP() != 1 || o.FN() != 1 {
		t.Errorf("counts: TP=%d FP=%d FN=%d", o.TP(), o.FP(), o.FN())
	}
	// Per-concept attribution: FP under predicted concept, FN under gold.
	if rep.PerConcept["Complication"].Incorrect != 1 {
		t.Error("incorrect not attributed to predicted concept")
	}
	if rep.PerConcept["Anatomy"].Missing != 1 {
		t.Error("miss not attributed to gold concept")
	}
}

func TestEvaluateSpuriousAndMissing(t *testing.T) {
	gold := []Mention{m("x", "Anatomy", "lungs"), m("x", "Anatomy", "brain")}
	pred := []Mention{m("x", "Anatomy", "lungs"), m("x", "Anatomy", "keyboard")}
	o := Evaluate(pred, gold).Overall
	if o.Correct != 1 || o.Spurious != 1 || o.Missing != 1 {
		t.Fatalf("outcome: %+v", o)
	}
	if p := o.Precision(); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("P = %v", p)
	}
	if r := o.Recall(); math.Abs(r-0.5) > 1e-9 {
		t.Errorf("R = %v", r)
	}
}

func TestEvaluateSubjectScoping(t *testing.T) {
	// Same phrase under a different subject must not match.
	gold := []Mention{m("acne", "Anatomy", "skin")}
	pred := []Mention{m("flu", "Anatomy", "skin")}
	o := Evaluate(pred, gold).Overall
	if o.Correct != 0 || o.Spurious != 1 || o.Missing != 1 {
		t.Fatalf("cross-subject match leaked: %+v", o)
	}
}

func TestEvaluateGoldUsedOnce(t *testing.T) {
	gold := []Mention{m("x", "Anatomy", "lungs")}
	pred := []Mention{m("x", "Anatomy", "lungs"), m("x", "Anatomy", "lungs")}
	o := Evaluate(pred, gold).Overall
	if o.Correct != 1 || o.Spurious != 1 {
		t.Fatalf("duplicate prediction double-matched: %+v", o)
	}
}

func TestEvaluateExactPreferredOverPartial(t *testing.T) {
	// Two golds; the exact one must be taken by the exact prediction even if
	// the partial prediction comes first.
	gold := []Mention{m("x", "Anatomy", "inner ear")}
	pred := []Mention{
		m("x", "Anatomy", "ear"),       // partial
		m("x", "Anatomy", "inner ear"), // exact
	}
	o := Evaluate(pred, gold).Overall
	if o.Correct != 1 {
		t.Fatalf("exact prediction lost to partial: %+v", o)
	}
	if o.Spurious != 1 {
		t.Errorf("leftover partial should be spurious: %+v", o)
	}
}

func TestEvaluateCaseAndWhitespaceInsensitive(t *testing.T) {
	gold := []Mention{m("Acne", "Anatomy", "The Skin")}
	pred := []Mention{m("acne ", "Anatomy", "skin")}
	o := Evaluate(pred, gold).Overall
	if o.TP() != 1 {
		t.Fatalf("normalization failed: %+v", o)
	}
}

func TestEvaluateEmptyInputs(t *testing.T) {
	o := Evaluate(nil, nil).Overall
	if o.Predicted() != 0 || o.F1() != 0 {
		t.Errorf("empty eval: %+v", o)
	}
	o2 := Evaluate(nil, []Mention{m("x", "A", "y")}).Overall
	if o2.Missing != 1 || o2.Recall() != 0 {
		t.Errorf("gold only: %+v", o2)
	}
	o3 := Evaluate([]Mention{m("x", "A", "y")}, nil).Overall
	if o3.Spurious != 1 || o3.Precision() != 0 {
		t.Errorf("pred only: %+v", o3)
	}
}

func TestReportConceptsSorted(t *testing.T) {
	gold := []Mention{m("x", "B", "b"), m("x", "A", "a")}
	rep := Evaluate(gold, gold)
	cs := rep.Concepts()
	if len(cs) != 2 || cs[0] != "A" || cs[1] != "B" {
		t.Errorf("Concepts = %v", cs)
	}
}

// Invariant: Correct+Partial+Missing == gold count, and
// Predicted == len(pred) after normalization.
func TestEvaluateConservation(t *testing.T) {
	gold := []Mention{
		m("x", "Anatomy", "lungs"), m("x", "Complication", "empyema"),
		m("y", "Anatomy", "skin"), m("y", "Cause", "bacteria"),
	}
	pred := []Mention{
		m("x", "Anatomy", "lungs"), m("x", "Anatomy", "empyema"),
		m("y", "Cause", "dirt"), m("y", "Anatomy", "the skin"),
		m("y", "Anatomy", "spurious thing"),
	}
	rep := Evaluate(pred, gold)
	o := rep.Overall
	if got := o.Correct + o.Partial + o.Missing; got != len(gold) {
		t.Errorf("gold conservation: %d != %d (%+v)", got, len(gold), o)
	}
	if o.Predicted() != len(pred) {
		t.Errorf("prediction conservation: %d != %d", o.Predicted(), len(pred))
	}
	// Per-concept totals must sum to overall.
	var sum Outcome
	for _, c := range rep.Concepts() {
		sum = sum.add(rep.PerConcept[c])
	}
	if sum != o {
		t.Errorf("per-concept sum %+v != overall %+v", sum, o)
	}
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{Correct: 1, Spurious: 1}
	if s := o.String(); s == "" {
		t.Error("empty String")
	}
}

func TestBootstrapIntervals(t *testing.T) {
	// Build a multi-subject scenario with a known mix of hits and misses.
	var gold, pred []Mention
	for i := 0; i < 20; i++ {
		subj := fmt.Sprintf("s%d", i)
		gold = append(gold, m(subj, "A", "alpha"), m(subj, "B", "beta"))
		pred = append(pred, m(subj, "A", "alpha")) // hit
		if i%2 == 0 {
			pred = append(pred, m(subj, "B", "junk"+subj)) // miss
		}
	}
	point := Evaluate(pred, gold).Overall
	bs := Bootstrap(pred, gold, 300, 0.05, 7)
	for name, iv := range map[string]Interval{
		"P": bs.Precision, "R": bs.Recall, "F1": bs.F1,
	} {
		if iv.Low > iv.High || iv.Low < 0 || iv.High > 1 {
			t.Errorf("%s interval malformed: %+v", name, iv)
		}
	}
	if !bs.F1.Contains(point.F1()) {
		t.Errorf("point F1 %.3f outside interval [%.3f, %.3f]", point.F1(), bs.F1.Low, bs.F1.High)
	}
	if bs.F1.High-bs.F1.Low <= 0 {
		t.Error("interval has zero width despite subject variance")
	}
	// Determinism.
	bs2 := Bootstrap(pred, gold, 300, 0.05, 7)
	if bs != bs2 {
		t.Error("bootstrap not deterministic for a fixed seed")
	}
	// A different seed may produce (slightly) different bounds; it must not
	// panic or produce malformed output.
	_ = Bootstrap(pred, gold, 300, 0.05, 8)
}

func TestBootstrapDegenerate(t *testing.T) {
	bs := Bootstrap(nil, nil, 10, 0.05, 1)
	if bs.Resamples != 10 {
		t.Errorf("resamples = %d", bs.Resamples)
	}
	if bs.F1.Low != 0 || bs.F1.High != 0 {
		t.Errorf("empty bootstrap F1 = %+v", bs.F1)
	}
	// Defaults kick in for nonsensical parameters.
	one := []Mention{m("x", "A", "a")}
	bs2 := Bootstrap(one, one, -1, 2.0, 1)
	if bs2.Resamples != 1000 {
		t.Errorf("default resamples = %d", bs2.Resamples)
	}
	if bs2.F1.Point != 1 {
		t.Errorf("perfect single-subject F1 = %v", bs2.F1.Point)
	}
}
