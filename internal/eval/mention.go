package eval

import (
	"strings"

	"thor/internal/schema"
	"thor/internal/text"
)

// Mention is one conceptualized entity occurrence: the unit both ground
// truth annotations and system predictions are expressed in.
type Mention struct {
	// Subject is the subject instance the mention is about.
	Subject string
	// Concept is the assigned schema concept.
	Concept schema.Concept
	// Phrase is the normalized entity phrase.
	Phrase string
}

// Normalize canonicalizes the mention's phrase and subject for comparison.
func (m Mention) Normalize() Mention {
	return Mention{
		Subject: strings.ToLower(strings.TrimSpace(m.Subject)),
		Concept: m.Concept,
		Phrase:  text.NormalizePhrase(m.Phrase),
	}
}

// overlapKind classifies how a predicted phrase relates to a gold phrase.
type overlapKind int

const (
	overlapNone overlapKind = iota
	overlapPartial
	overlapExact
)

// phraseOverlap implements the partial-matching criterion of SemEval-2013:
// exact when the normalized phrases are equal; partial when one contains the
// other as a word subsequence or they share at least half of the shorter
// phrase's content words (e.g. predicting 'vestibular' for 'main vestibular
// nerve' is partially correct).
func phraseOverlap(pred, gold string) overlapKind {
	p, g := tokenize(Mention{Phrase: pred}), tokenize(Mention{Phrase: gold})
	return tokOverlap(&p, &g)
}

// tokMention is a mention pre-tokenized for pairwise overlap scoring.
// Evaluate compares every prediction against every same-subject gold mention
// across up to three alignment passes, so splitting and stopword-filtering
// the phrase once per mention (instead of once per comparison) is the
// difference between thousands and millions of strings.Fields calls.
type tokMention struct {
	Mention
	// words are the phrase's space-separated words.
	words []string
	// contentSet is the deduplicated non-stopword vocabulary (the
	// prediction-side view of the shared-content criterion).
	contentSet map[string]bool
	// content lists the non-stopword words with duplicates kept (the
	// gold-side view, which counts occurrences).
	content []string
}

func tokenize(m Mention) tokMention {
	t := tokMention{Mention: m, words: strings.Fields(m.Phrase)}
	for _, w := range t.words {
		if !text.IsStopword(w) {
			if t.contentSet == nil {
				t.contentSet = make(map[string]bool, len(t.words))
			}
			t.contentSet[w] = true
			t.content = append(t.content, w)
		}
	}
	return t
}

// tokOverlap is phraseOverlap over pre-tokenized mentions — the same
// decision, term for term.
func tokOverlap(pred, gold *tokMention) overlapKind {
	if pred.Phrase == gold.Phrase {
		return overlapExact
	}
	if len(pred.words) == 0 || len(gold.words) == 0 {
		return overlapNone
	}
	if containsSeq(pred.words, gold.words) || containsSeq(gold.words, pred.words) {
		return overlapPartial
	}
	shared := 0
	for _, w := range gold.content {
		if pred.contentSet[w] {
			shared++
		}
	}
	short := len(gold.content)
	if short == 0 {
		return overlapNone
	}
	if predContent := len(pred.contentSet); predContent < short {
		short = predContent
	}
	if short > 0 && 2*shared >= short {
		return overlapPartial
	}
	return overlapNone
}

// containsSeq reports whether needle occurs as a contiguous subsequence of
// haystack.
func containsSeq(haystack, needle []string) bool {
	if len(needle) == 0 || len(needle) > len(haystack) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j, w := range needle {
			if haystack[i+j] != w {
				continue outer
			}
		}
		return true
	}
	return false
}
