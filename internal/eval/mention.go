// Package eval implements the paper's evaluation machinery: the
// SemEval-2013-style partial-matching scorer (nervaluate [104]) producing
// Precision/Recall/F1, raw prediction counts (TP/FP/FN, Tables VI/VII) and
// per-concept sensitivity (Table VIII).
package eval

import (
	"strings"

	"thor/internal/schema"
	"thor/internal/text"
)

// Mention is one conceptualized entity occurrence: the unit both ground
// truth annotations and system predictions are expressed in.
type Mention struct {
	// Subject is the subject instance the mention is about.
	Subject string
	// Concept is the assigned schema concept.
	Concept schema.Concept
	// Phrase is the normalized entity phrase.
	Phrase string
}

// Normalize canonicalizes the mention's phrase and subject for comparison.
func (m Mention) Normalize() Mention {
	return Mention{
		Subject: strings.ToLower(strings.TrimSpace(m.Subject)),
		Concept: m.Concept,
		Phrase:  text.NormalizePhrase(m.Phrase),
	}
}

// overlapKind classifies how a predicted phrase relates to a gold phrase.
type overlapKind int

const (
	overlapNone overlapKind = iota
	overlapPartial
	overlapExact
)

// phraseOverlap implements the partial-matching criterion of SemEval-2013:
// exact when the normalized phrases are equal; partial when one contains the
// other as a word subsequence or they share at least half of the shorter
// phrase's content words (e.g. predicting 'vestibular' for 'main vestibular
// nerve' is partially correct).
func phraseOverlap(pred, gold string) overlapKind {
	if pred == gold {
		return overlapExact
	}
	pw, gw := strings.Fields(pred), strings.Fields(gold)
	if len(pw) == 0 || len(gw) == 0 {
		return overlapNone
	}
	if containsSeq(pw, gw) || containsSeq(gw, pw) {
		return overlapPartial
	}
	shared := 0
	set := make(map[string]bool, len(pw))
	for _, w := range pw {
		if !text.IsStopword(w) {
			set[w] = true
		}
	}
	short := 0
	for _, w := range gw {
		if text.IsStopword(w) {
			continue
		}
		short++
		if set[w] {
			shared++
		}
	}
	if short == 0 {
		return overlapNone
	}
	predContent := len(set)
	if predContent < short {
		short = predContent
	}
	if short > 0 && 2*shared >= short {
		return overlapPartial
	}
	return overlapNone
}

// containsSeq reports whether needle occurs as a contiguous subsequence of
// haystack.
func containsSeq(haystack, needle []string) bool {
	if len(needle) == 0 || len(needle) > len(haystack) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j, w := range needle {
			if haystack[i+j] != w {
				continue outer
			}
		}
		return true
	}
	return false
}
