package eval_test

import (
	"fmt"

	"thor/internal/eval"
)

// ExampleEvaluate shows the SemEval-style partial matching: 'vestibular' is
// a partially correct extraction of 'main vestibular nerve' and earns half
// credit.
func ExampleEvaluate() {
	gold := []eval.Mention{
		{Subject: "Acoustic Neuroma", Concept: "Anatomy", Phrase: "main vestibular nerve"},
		{Subject: "Acoustic Neuroma", Concept: "Complication", Phrase: "hearing loss"},
	}
	pred := []eval.Mention{
		{Subject: "Acoustic Neuroma", Concept: "Anatomy", Phrase: "vestibular"},
		{Subject: "Acoustic Neuroma", Concept: "Complication", Phrase: "hearing loss"},
	}
	o := eval.Evaluate(pred, gold).Overall
	fmt.Printf("COR=%d PAR=%d P=%.2f R=%.2f F1=%.2f\n",
		o.Correct, o.Partial, o.Precision(), o.Recall(), o.F1())
	// Output:
	// COR=1 PAR=1 P=0.75 R=0.75 F1=0.75
}
