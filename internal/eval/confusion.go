package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"thor/internal/schema"
)

// ConfusionMatrix counts, for every matched (prediction, gold) pair, how
// often gold concept G was predicted as concept P. The diagonal holds the
// type-correct matches; off-diagonal cells are the cross-concept confusions
// the syntactic refinement (and the kg filter) target. Unmatched predictions
// and gold mentions appear under the pseudo-concepts PredictedNoise and
// MissedGold.
type ConfusionMatrix struct {
	// Cells maps gold concept -> predicted concept -> count.
	Cells map[schema.Concept]map[schema.Concept]int
}

// Pseudo-concepts for the unmatched margins.
const (
	// PredictedNoise collects spurious predictions (no gold counterpart).
	PredictedNoise schema.Concept = "<spurious>"
	// MissedGold collects gold mentions nothing matched.
	MissedGold schema.Concept = "<missed>"
)

// Confusion aligns predictions with gold mentions (same greedy strategy as
// Evaluate) and tabulates the concept-level confusion matrix.
func Confusion(predictions, gold []Mention) *ConfusionMatrix {
	preds := tokenizeAll(predictions)
	golds := tokenizeAll(gold)
	cm := &ConfusionMatrix{Cells: make(map[schema.Concept]map[schema.Concept]int)}

	al := align(preds, golds)
	for _, m := range al.assign {
		cm.bump(golds[m.gold].Concept, preds[m.pred].Concept)
	}
	for pi, p := range preds {
		if !al.matchedPred[pi] {
			cm.bump(PredictedNoise, p.Concept)
		}
	}
	for gi, g := range golds {
		if !al.usedGold[gi] {
			cm.bump(g.Concept, MissedGold)
		}
	}
	return cm
}

func (cm *ConfusionMatrix) bump(gold, pred schema.Concept) {
	row := cm.Cells[gold]
	if row == nil {
		row = make(map[schema.Concept]int)
		cm.Cells[gold] = row
	}
	row[pred]++
}

// Count returns the (gold, predicted) cell.
func (cm *ConfusionMatrix) Count(gold, pred schema.Concept) int {
	return cm.Cells[gold][pred]
}

// Confusions lists the off-diagonal cells (true confusions between two real
// concepts), largest first.
func (cm *ConfusionMatrix) Confusions() []ConfusionCell {
	var out []ConfusionCell
	for g, row := range cm.Cells {
		if g == PredictedNoise {
			continue
		}
		for p, n := range row {
			if p == g || p == MissedGold {
				continue
			}
			out = append(out, ConfusionCell{Gold: g, Predicted: p, Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Gold != out[j].Gold {
			return out[i].Gold < out[j].Gold
		}
		return out[i].Predicted < out[j].Predicted
	})
	return out
}

// ConfusionCell is one off-diagonal confusion.
type ConfusionCell struct {
	// Gold and Predicted are the true and assigned concepts.
	Gold, Predicted schema.Concept
	// Count is how often the confusion occurred.
	Count int
}

// Render writes the matrix as a fixed-width table, concepts sorted, with the
// pseudo-concept margins last.
func (cm *ConfusionMatrix) Render(w io.Writer) {
	concepts := cm.concepts()
	fmt.Fprintf(w, "%-16s", "gold\\pred")
	for _, c := range concepts {
		fmt.Fprintf(w, " %10s", clip(string(c)))
	}
	fmt.Fprintln(w)
	for _, g := range concepts {
		fmt.Fprintf(w, "%-16s", clip(string(g)))
		for _, p := range concepts {
			fmt.Fprintf(w, " %10d", cm.Count(g, p))
		}
		fmt.Fprintln(w)
	}
}

func (cm *ConfusionMatrix) concepts() []schema.Concept {
	seen := make(map[schema.Concept]bool)
	var out []schema.Concept
	add := func(c schema.Concept) {
		if !seen[c] && c != PredictedNoise && c != MissedGold {
			seen[c] = true
			out = append(out, c)
		}
	}
	for g, row := range cm.Cells {
		add(g)
		for p := range row {
			add(p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return append(out, PredictedNoise, MissedGold)
}

func clip(s string) string {
	if len(s) > 10 {
		return s[:10]
	}
	return strings.TrimSpace(s)
}
