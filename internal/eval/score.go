package eval

import (
	"fmt"
	"sort"

	"thor/internal/schema"
)

// Outcome tallies the five nervaluate alignment categories plus the derived
// paper counts.
type Outcome struct {
	// Correct: exact phrase and correct concept (COR).
	Correct int
	// Partial: overlapping phrase and correct concept (PAR).
	Partial int
	// Incorrect: overlapping phrase, wrong concept (INC).
	Incorrect int
	// Spurious: prediction with no gold counterpart (SPU).
	Spurious int
	// Missing: gold mention no prediction reached (MIS).
	Missing int
}

// Predicted returns the number of predictions evaluated.
func (o Outcome) Predicted() int { return o.Correct + o.Partial + o.Incorrect + o.Spurious }

// TP returns the paper's "correct predictions" count: exact plus partial
// type-correct matches (this is how Tables VI, VII and XI count TP).
func (o Outcome) TP() int { return o.Correct + o.Partial }

// FP returns the paper's "incorrect predictions" count.
func (o Outcome) FP() int { return o.Incorrect + o.Spurious }

// FN returns the missed gold mentions. Gold mentions consumed by a
// wrong-type prediction are recorded under Missing (attributed to the gold
// concept), so Missing alone is the FN count.
func (o Outcome) FN() int { return o.Missing }

// Precision returns the SemEval partial-credit precision:
// (COR + 0.5·PAR) / all predictions.
func (o Outcome) Precision() float64 {
	d := o.Predicted()
	if d == 0 {
		return 0
	}
	return (float64(o.Correct) + 0.5*float64(o.Partial)) / float64(d)
}

// Recall returns the partial-credit recall:
// (COR + 0.5·PAR) / all gold mentions (= Correct+Partial+Missing).
func (o Outcome) Recall() float64 {
	d := o.Correct + o.Partial + o.Missing
	if d == 0 {
		return 0
	}
	return (float64(o.Correct) + 0.5*float64(o.Partial)) / float64(d)
}

// F1 returns the harmonic mean of Precision and Recall.
func (o Outcome) F1() float64 {
	p, r := o.Precision(), o.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Sensitivity returns TP / gold, the paper's Table VIII metric: the share of
// ground-truth entities the system recognized at least partially.
func (o Outcome) Sensitivity() float64 {
	gold := o.Correct + o.Partial + o.Missing
	if gold == 0 {
		return 0
	}
	return float64(o.TP()) / float64(gold)
}

func (o Outcome) add(p Outcome) Outcome {
	return Outcome{
		Correct:   o.Correct + p.Correct,
		Partial:   o.Partial + p.Partial,
		Incorrect: o.Incorrect + p.Incorrect,
		Spurious:  o.Spurious + p.Spurious,
		Missing:   o.Missing + p.Missing,
	}
}

// String renders the outcome compactly.
func (o Outcome) String() string {
	return fmt.Sprintf("pred=%d TP=%d FP=%d FN=%d P=%.2f R=%.2f F1=%.2f",
		o.Predicted(), o.TP(), o.FP(), o.FN(), o.Precision(), o.Recall(), o.F1())
}

// Report is a full evaluation: overall outcome plus the per-concept
// breakdown used by Tables VII and VIII and Fig. 10.
type Report struct {
	// Overall aggregates every concept's outcome.
	Overall Outcome
	// GoldTotal is the number of gold mentions evaluated against.
	GoldTotal int
	// PerConcept breaks the outcome down by concept.
	PerConcept map[schema.Concept]Outcome
}

// Concepts returns the evaluated concepts sorted by name.
func (r *Report) Concepts() []schema.Concept {
	out := make([]schema.Concept, 0, len(r.PerConcept))
	for c := range r.PerConcept {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Evaluate aligns predictions against gold mentions and scores them.
//
// Alignment is greedy and subject-scoped, best match class first: every
// prediction is matched to at most one unused gold mention of the same
// subject, preferring exact type-correct matches, then partial type-correct,
// then overlapping type-incorrect. Unmatched predictions are spurious;
// unmatched gold mentions are missing. Per-concept outcomes attribute
// predictions to the predicted concept and missing mentions to the gold
// concept, following nervaluate.
func Evaluate(predictions, gold []Mention) *Report {
	preds := tokenizeAll(predictions)
	golds := tokenizeAll(gold)

	rep := &Report{
		GoldTotal:  len(golds),
		PerConcept: make(map[schema.Concept]Outcome),
	}

	al := align(preds, golds)

	bump := func(c schema.Concept, f func(*Outcome)) {
		o := rep.PerConcept[c]
		f(&o)
		rep.PerConcept[c] = o
		f(&rep.Overall)
	}

	for _, m := range al.assign {
		p := preds[m.pred]
		switch {
		case m.typeOK && m.kind == overlapExact:
			bump(p.Concept, func(o *Outcome) { o.Correct++ })
		case m.typeOK:
			bump(p.Concept, func(o *Outcome) { o.Partial++ })
		default:
			// Wrong-type match: the prediction is incorrect under its own
			// concept; the consumed gold mention is missed under its
			// concept.
			bump(p.Concept, func(o *Outcome) { o.Incorrect++ })
			bumpGold := rep.PerConcept[golds[m.gold].Concept]
			bumpGold.Missing++
			rep.PerConcept[golds[m.gold].Concept] = bumpGold
			rep.Overall.Missing++
		}
	}
	for pi, p := range preds {
		if !al.matchedPred[pi] {
			bump(p.Concept, func(o *Outcome) { o.Spurious++ })
		}
	}
	for gi, g := range golds {
		if !al.usedGold[gi] {
			bump(g.Concept, func(o *Outcome) { o.Missing++ })
		}
	}
	return rep
}

// alignMatch records one matched (prediction, gold) pair.
type alignMatch struct {
	pred, gold int
	kind       overlapKind
	typeOK     bool
}

// alignment is the outcome of the greedy three-pass matching.
type alignment struct {
	assign      []alignMatch
	matchedPred []bool
	usedGold    []bool
}

// align performs the greedy subject-scoped matching shared by Evaluate and
// Confusion: three passes (exact+type, partial+type, overlap-only), each
// prediction consuming at most one unused gold mention of its subject.
// Overlap kinds are computed at most once per (prediction, gold) pair and
// reused across passes.
func align(preds, golds []tokMention) alignment {
	goldBySubject := make(map[string][]int)
	for i, g := range golds {
		goldBySubject[g.Subject] = append(goldBySubject[g.Subject], i)
	}
	al := alignment{
		assign:      make([]alignMatch, 0, len(preds)),
		matchedPred: make([]bool, len(preds)),
		usedGold:    make([]bool, len(golds)),
	}
	// kinds[pi] caches overlaps against goldBySubject[preds[pi].Subject],
	// parallel to that index slice; entries are filled on first use.
	const overlapUnset overlapKind = -1
	kinds := make([][]overlapKind, len(preds))
	for pass := 0; pass < 3; pass++ {
		for pi := range preds {
			if al.matchedPred[pi] {
				continue
			}
			p := &preds[pi]
			gis := goldBySubject[p.Subject]
			ks := kinds[pi]
			if ks == nil && len(gis) > 0 {
				ks = make([]overlapKind, len(gis))
				for j := range ks {
					ks[j] = overlapUnset
				}
				kinds[pi] = ks
			}
			for j, gi := range gis {
				if al.usedGold[gi] {
					continue
				}
				kind := ks[j]
				if kind == overlapUnset {
					kind = tokOverlap(p, &golds[gi])
					ks[j] = kind
				}
				typeOK := p.Concept == golds[gi].Concept
				ok := false
				switch pass {
				case 0:
					ok = kind == overlapExact && typeOK
				case 1:
					ok = kind >= overlapPartial && typeOK
				case 2:
					ok = kind >= overlapPartial
				}
				if ok {
					al.assign = append(al.assign, alignMatch{pi, gi, kind, typeOK})
					al.matchedPred[pi] = true
					al.usedGold[gi] = true
					break
				}
			}
		}
	}
	return al
}

func normalizeAll(ms []Mention) []Mention {
	out := make([]Mention, 0, len(ms))
	for _, m := range ms {
		n := m.Normalize()
		if n.Phrase == "" {
			continue
		}
		out = append(out, n)
	}
	return out
}

// tokenizeAll normalizes mentions, drops empty phrases and pre-tokenizes the
// survivors for pairwise overlap scoring.
func tokenizeAll(ms []Mention) []tokMention {
	out := make([]tokMention, 0, len(ms))
	for _, m := range ms {
		n := m.Normalize()
		if n.Phrase == "" {
			continue
		}
		out = append(out, tokenize(n))
	}
	return out
}
