// Package eval implements the paper's evaluation machinery: the
// SemEval-2013-style partial-matching scorer (nervaluate [104]) producing
// Precision/Recall/F1, raw prediction counts (TP/FP/FN, Tables VI/VII) and
// per-concept sensitivity (Table VIII).
package eval
