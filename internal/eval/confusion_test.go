package eval

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfusionDiagonal(t *testing.T) {
	gold := []Mention{
		m("x", "Anatomy", "lungs"),
		m("x", "Complication", "empyema"),
	}
	cm := Confusion(gold, gold)
	if cm.Count("Anatomy", "Anatomy") != 1 || cm.Count("Complication", "Complication") != 1 {
		t.Errorf("diagonal wrong: %+v", cm.Cells)
	}
	if len(cm.Confusions()) != 0 {
		t.Errorf("perfect predictions produced confusions: %v", cm.Confusions())
	}
}

func TestConfusionOffDiagonal(t *testing.T) {
	gold := []Mention{m("x", "Anatomy", "blood")}
	pred := []Mention{m("x", "Complication", "blood")}
	cm := Confusion(pred, gold)
	if cm.Count("Anatomy", "Complication") != 1 {
		t.Fatalf("confusion not recorded: %+v", cm.Cells)
	}
	cs := cm.Confusions()
	if len(cs) != 1 || cs[0].Gold != "Anatomy" || cs[0].Predicted != "Complication" || cs[0].Count != 1 {
		t.Errorf("Confusions = %v", cs)
	}
}

func TestConfusionMargins(t *testing.T) {
	gold := []Mention{m("x", "Anatomy", "lungs")}
	pred := []Mention{m("x", "Complication", "keyboard")} // spurious
	cm := Confusion(pred, gold)
	if cm.Count(PredictedNoise, "Complication") != 1 {
		t.Errorf("spurious prediction not in noise margin: %+v", cm.Cells)
	}
	if cm.Count("Anatomy", MissedGold) != 1 {
		t.Errorf("missed gold not in margin: %+v", cm.Cells)
	}
	// Margins must not count as confusions.
	if len(cm.Confusions()) != 0 {
		t.Errorf("margins leaked into Confusions: %v", cm.Confusions())
	}
}

func TestConfusionConsistentWithEvaluate(t *testing.T) {
	gold := []Mention{
		m("x", "Anatomy", "lungs"), m("x", "Complication", "empyema"),
		m("y", "Cause", "bacteria"), m("y", "Anatomy", "skin"),
	}
	pred := []Mention{
		m("x", "Anatomy", "lungs"),         // COR
		m("x", "Anatomy", "empyema"),       // INC (gold is Complication)
		m("y", "Cause", "dirt"),            // SPU
		m("y", "Anatomy", "the skin area"), // PAR
	}
	rep := Evaluate(pred, gold)
	cm := Confusion(pred, gold)

	// Diagonal total = COR + PAR.
	diag := 0
	for _, c := range cm.concepts() {
		diag += cm.Count(c, c)
	}
	if diag != rep.Overall.Correct+rep.Overall.Partial {
		t.Errorf("diagonal %d != COR+PAR %d", diag, rep.Overall.Correct+rep.Overall.Partial)
	}
	// Off-diagonal confusions = INC.
	inc := 0
	for _, c := range cm.Confusions() {
		inc += c.Count
	}
	if inc != rep.Overall.Incorrect {
		t.Errorf("confusions %d != INC %d", inc, rep.Overall.Incorrect)
	}
	// Noise margin = SPU; missed margin = Missing.
	noise, missed := 0, 0
	for _, row := range cm.Cells[PredictedNoise] {
		noise += row
	}
	for _, row := range cm.Cells {
		missed += row[MissedGold]
	}
	if noise != rep.Overall.Spurious {
		t.Errorf("noise margin %d != SPU %d", noise, rep.Overall.Spurious)
	}
	// Evaluate attributes INC-consumed gold to Missing as well, so the
	// matrix's missed margin plus the confusions equals Evaluate's MIS.
	if missed+inc != rep.Overall.Missing {
		t.Errorf("missed margin %d + INC %d != MIS %d", missed, inc, rep.Overall.Missing)
	}
}

func TestConfusionRender(t *testing.T) {
	gold := []Mention{m("x", "Anatomy", "lungs")}
	cm := Confusion(gold, gold)
	var buf bytes.Buffer
	cm.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Anatomy") || !strings.Contains(out, "gold\\pred") {
		t.Errorf("render output:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
		t.Error("render output too short")
	}
}
