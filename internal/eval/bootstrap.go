package eval

import (
	"math/rand"
	"sort"
	"strconv"
)

// Interval is a two-sided confidence interval with its point estimate.
type Interval struct {
	// Low, Point and High are the interval bounds around the point estimate.
	Low, Point, High float64
}

// Contains reports whether x lies within [Low, High].
func (iv Interval) Contains(x float64) bool { return x >= iv.Low && x <= iv.High }

// BootstrapResult carries the resampled intervals for the three headline
// metrics.
type BootstrapResult struct {
	// Precision, Recall and F1 are the resampled intervals per metric.
	Precision, Recall, F1 Interval
	// Resamples is the number of bootstrap iterations performed.
	Resamples int
}

// Bootstrap estimates confidence intervals for precision, recall and F1 by
// resampling evaluation subjects with replacement — the paper reports point
// estimates only; the intervals quantify how sensitive those numbers are to
// the particular test subjects drawn.
//
// Subjects (not individual mentions) are the resampling unit because
// mentions of one subject are correlated: they come from the same documents.
// The confidence level is two-sided at the given alpha (e.g. 0.05 for 95%);
// all randomness flows from seed.
func Bootstrap(predictions, gold []Mention, resamples int, alpha float64, seed int64) BootstrapResult {
	if resamples <= 0 {
		resamples = 1000
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	preds := normalizeAll(predictions)
	golds := normalizeAll(gold)

	// Group mentions per subject once.
	subjects := make([]string, 0)
	seen := make(map[string]bool)
	predsBy := make(map[string][]Mention)
	goldsBy := make(map[string][]Mention)
	for _, g := range golds {
		if !seen[g.Subject] {
			seen[g.Subject] = true
			subjects = append(subjects, g.Subject)
		}
		goldsBy[g.Subject] = append(goldsBy[g.Subject], g)
	}
	for _, p := range preds {
		if !seen[p.Subject] {
			seen[p.Subject] = true
			subjects = append(subjects, p.Subject)
		}
		predsBy[p.Subject] = append(predsBy[p.Subject], p)
	}
	sort.Strings(subjects)

	point := Evaluate(preds, golds).Overall
	out := BootstrapResult{Resamples: resamples}
	if len(subjects) == 0 {
		return out
	}

	rng := rand.New(rand.NewSource(seed))
	ps := make([]float64, resamples)
	rs := make([]float64, resamples)
	fs := make([]float64, resamples)
	for i := 0; i < resamples; i++ {
		var sp, sg []Mention
		for j := 0; j < len(subjects); j++ {
			s := subjects[rng.Intn(len(subjects))]
			// Resampled subjects must stay distinct for the aligner's
			// subject scoping; suffix them with the draw index.
			suffix := "\x00" + strconv.Itoa(j)
			for _, m := range predsBy[s] {
				m.Subject += suffix
				sp = append(sp, m)
			}
			for _, m := range goldsBy[s] {
				m.Subject += suffix
				sg = append(sg, m)
			}
		}
		o := Evaluate(sp, sg).Overall
		ps[i], rs[i], fs[i] = o.Precision(), o.Recall(), o.F1()
	}
	out.Precision = interval(ps, point.Precision(), alpha)
	out.Recall = interval(rs, point.Recall(), alpha)
	out.F1 = interval(fs, point.F1(), alpha)
	return out
}

func interval(samples []float64, point, alpha float64) Interval {
	sort.Float64s(samples)
	lo := int(float64(len(samples)) * alpha / 2)
	hi := int(float64(len(samples)) * (1 - alpha/2))
	if hi >= len(samples) {
		hi = len(samples) - 1
	}
	return Interval{Low: samples[lo], Point: point, High: samples[hi]}
}
