package schema

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func diseaseSchema() Schema {
	return NewSchema("Disease", "Anatomy", "Complication")
}

func TestSchemaBasics(t *testing.T) {
	s := diseaseSchema()
	if !s.Has("Disease") || !s.Has("Anatomy") || s.Has("Nope") {
		t.Error("Has misbehaves")
	}
	if got := s.NonSubject(); !reflect.DeepEqual(got, []Concept{"Anatomy", "Complication"}) {
		t.Errorf("NonSubject = %v", got)
	}
}

func TestSchemaWithConcept(t *testing.T) {
	s := diseaseSchema()
	s2 := s.WithConcept("Medicine")
	if !s2.Has("Medicine") || len(s2.Concepts) != 4 {
		t.Errorf("WithConcept failed: %v", s2)
	}
	if s.Has("Medicine") {
		t.Error("WithConcept mutated the original")
	}
	if s3 := s2.WithConcept("Medicine"); len(s3.Concepts) != 4 {
		t.Error("adding existing concept should be a no-op")
	}
}

func TestRowAddAndHas(t *testing.T) {
	tab := NewTable(diseaseSchema())
	r := tab.AddRow("Acoustic Neuroma")
	if !r.Add("Anatomy", "nervous system") {
		t.Error("first Add should report change")
	}
	if r.Add("Anatomy", "Nervous System") {
		t.Error("case-insensitive duplicate should not be added")
	}
	if r.Add("Anatomy", "") {
		t.Error("empty value should be rejected")
	}
	if !r.Has("Anatomy", "NERVOUS SYSTEM") {
		t.Error("Has should be case-insensitive")
	}
	if !r.Missing("Complication") {
		t.Error("unset concept should be missing (labeled null)")
	}
}

func TestTableRowDeduplication(t *testing.T) {
	tab := NewTable(diseaseSchema())
	r1 := tab.AddRow("Acne")
	r2 := tab.AddRow("acne")
	if r1 != r2 {
		t.Error("same subject (case-insensitive) should return same row")
	}
	if len(tab.Rows) != 1 {
		t.Errorf("rows = %d, want 1", len(tab.Rows))
	}
	if tab.Row("ACNE") != r1 {
		t.Error("Row lookup should be case-insensitive")
	}
	if tab.Row("missing") != nil {
		t.Error("unknown subject should return nil")
	}
}

func TestColumnValues(t *testing.T) {
	tab := NewTable(diseaseSchema())
	tab.AddRow("Acne").Add("Complication", "scarring")
	r := tab.AddRow("Tuberculosis")
	r.Add("Complication", "empyema")
	r.Add("Complication", "Scarring") // duplicate across rows, different case
	got := tab.ColumnValues("Complication")
	if len(got) != 2 {
		t.Fatalf("ColumnValues = %v", got)
	}
	subj := tab.ColumnValues("Disease")
	if !reflect.DeepEqual(subj, []string{"Acne", "Tuberculosis"}) {
		t.Errorf("subject column = %v", subj)
	}
}

func TestInstanceCountAndSparsity(t *testing.T) {
	tab := NewTable(diseaseSchema())
	r := tab.AddRow("Acne")
	r.Add("Anatomy", "skin")
	tab.AddRow("Flu") // fully sparse row
	if n := tab.InstanceCount(); n != 3 {
		t.Errorf("InstanceCount = %d, want 3 (2 subjects + 1 value)", n)
	}
	sp := tab.Sparsity()
	if sp.Cells != 4 || sp.Missing != 3 {
		t.Errorf("Sparsity = %+v, want 4 cells / 3 missing", sp)
	}
	if r := sp.Ratio(); r != 0.75 {
		t.Errorf("Ratio = %v", r)
	}
	if (Sparsity{}).Ratio() != 0 {
		t.Error("empty sparsity ratio should be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	tab := NewTable(diseaseSchema())
	tab.AddRow("Acne").Add("Anatomy", "skin")
	cp := tab.Clone()
	cp.Row("Acne").Add("Anatomy", "face")
	if tab.Row("Acne").Has("Anatomy", "face") {
		t.Error("Clone shares cell storage with original")
	}
}

func TestClearNonSubject(t *testing.T) {
	tab := NewTable(diseaseSchema())
	tab.AddRow("Acne").Add("Anatomy", "skin")
	tab.ClearNonSubject()
	if !tab.Row("Acne").Missing("Anatomy") {
		t.Error("ClearNonSubject left values behind")
	}
	if len(tab.Rows) != 1 {
		t.Error("ClearNonSubject dropped rows")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tab := NewTable(diseaseSchema())
	r := tab.AddRow("Acoustic Neuroma")
	r.Add("Anatomy", "nervous system")
	r.Add("Complication", "unsteadiness")
	tab.AddRow("Tuberculosis")

	var buf bytes.Buffer
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Subject != "Disease" || len(got.Rows) != 2 {
		t.Fatalf("round trip lost structure: %v", got)
	}
	if !got.Row("Acoustic Neuroma").Has("Anatomy", "nervous system") {
		t.Error("round trip lost values")
	}
	if !got.Row("Tuberculosis").Missing("Anatomy") {
		t.Error("round trip invented values")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("malformed JSON should error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"subject":"","concepts":[]}`)); err == nil {
		t.Error("missing subject should error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"subject":"D","concepts":["D"],"rows":[{}]}`)); err == nil {
		t.Error("row without subject should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := NewTable(diseaseSchema())
	r := tab.AddRow("Acne")
	r.Add("Complication", "scarring")
	r.Add("Complication", "dark spots")

	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "Disease")
	if err != nil {
		t.Fatal(err)
	}
	row := got.Row("Acne")
	if row == nil || !row.Has("Complication", "scarring") || !row.Has("Complication", "dark spots") {
		t.Errorf("CSV round trip lost multi-values: %+v", row)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "Disease"); err == nil {
		t.Error("empty CSV should error")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\nx,y\n"), "Disease"); err == nil {
		t.Error("missing subject column should error")
	}
}

func TestTableString(t *testing.T) {
	tab := NewTable(diseaseSchema())
	tab.AddRow("Acne")
	s := tab.String()
	if !strings.Contains(s, "Disease") || !strings.Contains(s, "1 rows") {
		t.Errorf("String = %q", s)
	}
}

func TestSparsityByConcept(t *testing.T) {
	tab := NewTable(diseaseSchema())
	tab.AddRow("Acne").Add("Anatomy", "skin")
	tab.AddRow("Flu")
	by := tab.SparsityByConcept()
	if by["Anatomy"].Missing != 1 || by["Anatomy"].Cells != 2 {
		t.Errorf("Anatomy sparsity = %+v", by["Anatomy"])
	}
	if by["Complication"].Missing != 2 {
		t.Errorf("Complication sparsity = %+v", by["Complication"])
	}
	// Per-concept cells must sum to the overall figure.
	total := tab.Sparsity()
	sum := Sparsity{}
	for _, sp := range by {
		sum.Cells += sp.Cells
		sum.Missing += sp.Missing
	}
	if sum != total {
		t.Errorf("per-concept sum %+v != overall %+v", sum, total)
	}
}

// Property: Add/Has agree and ColumnValues never contains duplicates
// (case-insensitively).
func TestTableProperty(t *testing.T) {
	f := func(values []string) bool {
		tab := NewTable(diseaseSchema())
		r := tab.AddRow("X")
		for _, v := range values {
			r.Add("Anatomy", v)
		}
		seen := map[string]bool{}
		for _, v := range tab.ColumnValues("Anatomy") {
			lv := strings.ToLower(v)
			if seen[lv] {
				return false
			}
			seen[lv] = true
			if !r.Has("Anatomy", v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
