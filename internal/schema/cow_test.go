package schema

import "testing"

// mutationWorld builds a small two-concept table for the COW tests.
func mutationWorld() *Table {
	t := NewTable(NewSchema("Disease", "Anatomy", "Complication"))
	t.AddRow("Acoustic Neuroma").Add("Anatomy", "nervous system")
	t.AddRow("Tuberculosis").Add("Complication", "skin cancer")
	t.AddRow("Malaria")
	return t
}

func TestConceptFingerprintIsolation(t *testing.T) {
	base := mutationWorld()
	fps := base.ConceptFingerprints()
	if len(fps) != 3 {
		t.Fatalf("expected 3 per-concept fingerprints, got %d", len(fps))
	}

	// Mutating one concept's instance set changes only that concept's
	// fingerprint.
	mut := base.Clone()
	mut.Row("Malaria").Add("Anatomy", "liver")
	mfps := mut.ConceptFingerprints()
	if mfps["Anatomy"] == fps["Anatomy"] {
		t.Error("Anatomy fingerprint unchanged after adding an Anatomy value")
	}
	if mfps["Complication"] != fps["Complication"] {
		t.Error("Complication fingerprint changed by an Anatomy-only mutation")
	}
	if mfps["Disease"] != fps["Disease"] {
		t.Error("subject fingerprint changed without a new row")
	}

	// Adding a row changes the subject fingerprint, not untouched columns.
	grown := base.Clone()
	grown.AddRow("Cholera")
	gfps := grown.ConceptFingerprints()
	if gfps["Disease"] == fps["Disease"] {
		t.Error("subject fingerprint unchanged after a new row")
	}
	if gfps["Anatomy"] != fps["Anatomy"] || gfps["Complication"] != fps["Complication"] {
		t.Error("column fingerprints changed by a row whose cells are empty")
	}

	// A value that already exists (case-insensitively) is a no-op mutation
	// and must not move the fingerprint.
	same := base.Clone()
	same.Row("Acoustic Neuroma").Add("Anatomy", "NERVOUS SYSTEM")
	if same.ConceptFingerprint("Anatomy") != fps["Anatomy"] {
		t.Error("case-duplicate value moved the Anatomy fingerprint")
	}
}

func TestCloneSharedCopyOnWrite(t *testing.T) {
	base := mutationWorld()
	baseFP := base.Fingerprint()

	next := base.CloneShared()
	// Shared rows: same pointers until a row is replaced.
	if next.Row("Malaria") != base.Row("Malaria") {
		t.Fatal("CloneShared did not share row pointers")
	}

	// Copy-on-write replace: clone the row, mutate the clone, install it.
	nr := next.Row("Malaria").Clone()
	nr.Add("Anatomy", "liver")
	next.SetRow(nr)

	if base.Row("Malaria").Has("Anatomy", "liver") {
		t.Error("mutating the COW clone leaked into the base snapshot")
	}
	if !next.Row("Malaria").Has("Anatomy", "liver") {
		t.Error("SetRow did not install the mutated row")
	}
	if base.Fingerprint() != baseFP {
		t.Error("base fingerprint moved after a COW mutation of its clone")
	}
	// Row order is preserved by in-place replacement.
	if next.Rows[2].Subject != "Malaria" {
		t.Errorf("replaced row moved: Rows[2] = %q", next.Rows[2].Subject)
	}

	// Appending a fresh row via SetRow extends the clone only.
	next.SetRow(&Row{Subject: "Cholera", Cells: map[Concept][]string{}})
	if base.Row("Cholera") != nil {
		t.Error("appended row visible in the base snapshot")
	}
	if next.Row("Cholera") == nil {
		t.Error("appended row not indexed in the clone")
	}

	// The COW clone's content equals a deep-clone-and-mutate of the base.
	deep := base.Clone()
	deep.Row("Malaria").Add("Anatomy", "liver")
	deep.AddRow("Cholera")
	if deep.Fingerprint() != next.Fingerprint() {
		t.Error("COW mutation fingerprint diverges from deep-clone mutation")
	}
}
