package schema

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// jsonTable is the serialized form of a Table.
type jsonTable struct {
	Subject  Concept          `json:"subject"`
	Concepts []Concept        `json:"concepts"`
	Rows     []map[string]any `json:"rows"`
}

// WriteJSON serializes the table. Multi-valued cells become JSON arrays;
// missing cells are omitted.
func (t *Table) WriteJSON(w io.Writer) error {
	jt := jsonTable{Subject: t.Schema.Subject, Concepts: t.Schema.Concepts}
	for _, r := range t.Rows {
		m := map[string]any{string(t.Schema.Subject): r.Subject}
		cs := make([]string, 0, len(r.Cells))
		for c := range r.Cells {
			cs = append(cs, string(c))
		}
		sort.Strings(cs)
		for _, c := range cs {
			if vs := r.Cells[Concept(c)]; len(vs) > 0 {
				m[c] = vs
			}
		}
		jt.Rows = append(jt.Rows, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// ReadJSON parses a table previously produced by WriteJSON.
func ReadJSON(r io.Reader) (*Table, error) {
	var jt jsonTable
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("schema: decode table: %w", err)
	}
	if jt.Subject == "" || len(jt.Concepts) == 0 {
		return nil, fmt.Errorf("schema: table missing subject or concepts")
	}
	t := NewTable(Schema{Subject: jt.Subject, Concepts: jt.Concepts})
	for i, m := range jt.Rows {
		subjRaw, ok := m[string(jt.Subject)]
		if !ok {
			return nil, fmt.Errorf("schema: row %d has no subject value", i)
		}
		subj, ok := subjRaw.(string)
		if !ok {
			return nil, fmt.Errorf("schema: row %d subject is not a string", i)
		}
		row := t.AddRow(subj)
		for k, v := range m {
			c := Concept(k)
			if c == jt.Subject || !t.Schema.Has(c) {
				continue
			}
			switch vv := v.(type) {
			case string:
				row.Add(c, vv)
			case []any:
				for _, x := range vv {
					if s, ok := x.(string); ok {
						row.Add(c, s)
					}
				}
			}
		}
	}
	return t, nil
}

// WriteCSV serializes the table with one column per concept; multi-valued
// cells are joined with "; ". Missing cells are empty fields.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Schema.Concepts))
	for i, c := range t.Schema.Concepts {
		header[i] = string(c)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := make([]string, len(t.Schema.Concepts))
		for i, c := range t.Schema.Concepts {
			if c == t.Schema.Subject {
				rec[i] = r.Subject
			} else {
				rec[i] = strings.Join(r.Cells[c], "; ")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table from CSV. The subject column is identified by name.
func ReadCSV(r io.Reader, subject Concept) (*Table, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("schema: read csv: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("schema: empty csv")
	}
	header := recs[0]
	subjectCol := -1
	concepts := make([]Concept, len(header))
	for i, h := range header {
		concepts[i] = Concept(h)
		if Concept(h) == subject {
			subjectCol = i
		}
	}
	if subjectCol == -1 {
		return nil, fmt.Errorf("schema: subject column %q not in header %v", subject, header)
	}
	t := NewTable(Schema{Subject: subject, Concepts: concepts})
	for _, rec := range recs[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("schema: row has %d fields, want %d", len(rec), len(header))
		}
		row := t.AddRow(rec[subjectCol])
		for i, field := range rec {
			if i == subjectCol || field == "" {
				continue
			}
			for _, v := range strings.Split(field, ";") {
				row.Add(concepts[i], strings.TrimSpace(v))
			}
		}
	}
	return t, nil
}
