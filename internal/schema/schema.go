package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Concept is a category of things in the integrated schema, e.g. 'Disease'
// or 'Anatomy'. Concepts double as column names.
type Concept string

// Schema is an ordered collection of concepts among which one, the subject
// concept, plays the role of the primary key.
type Schema struct {
	// Subject is the subject concept C*.
	Subject Concept
	// Concepts lists every concept including the subject, in column order.
	Concepts []Concept
}

// NewSchema builds a schema from the subject concept and the remaining
// concepts, in order.
func NewSchema(subject Concept, others ...Concept) Schema {
	cs := make([]Concept, 0, len(others)+1)
	cs = append(cs, subject)
	cs = append(cs, others...)
	return Schema{Subject: subject, Concepts: cs}
}

// Has reports whether c is part of the schema.
func (s Schema) Has(c Concept) bool {
	for _, x := range s.Concepts {
		if x == c {
			return true
		}
	}
	return false
}

// NonSubject returns the concepts other than the subject, in column order.
func (s Schema) NonSubject() []Concept {
	out := make([]Concept, 0, len(s.Concepts)-1)
	for _, c := range s.Concepts {
		if c != s.Subject {
			out = append(out, c)
		}
	}
	return out
}

// WithConcept returns a copy of the schema extended with a new concept. It
// is the schema-evolution operation THOR supports without re-annotation.
// Adding an existing concept returns the schema unchanged.
func (s Schema) WithConcept(c Concept) Schema {
	if s.Has(c) {
		return s
	}
	cs := make([]Concept, len(s.Concepts), len(s.Concepts)+1)
	copy(cs, s.Concepts)
	return Schema{Subject: s.Subject, Concepts: append(cs, c)}
}

// Row is one tuple of a concept-oriented table. The subject value is single;
// every other concept may hold zero or more instances. A nil cell slice is
// the labeled null ⊥ ("nothing known"), distinct from an empty non-nil slice
// only in provenance; both count as missing.
type Row struct {
	// Subject is the row's subject instance (the key).
	Subject string
	// Cells maps each non-subject concept to its instances.
	Cells map[Concept][]string
}

// Values returns the instances the row holds for concept c (nil if missing
// or if c is the subject concept — use Subject for that).
func (r *Row) Values(c Concept) []string { return r.Cells[c] }

// Has reports whether the row already holds value v for concept c
// (case-insensitive).
func (r *Row) Has(c Concept, v string) bool {
	lv := strings.ToLower(v)
	for _, x := range r.Cells[c] {
		if strings.ToLower(x) == lv {
			return true
		}
	}
	return false
}

// Add appends value v to concept c unless already present. It reports
// whether the row changed.
func (r *Row) Add(c Concept, v string) bool {
	if v == "" || r.Has(c, v) {
		return false
	}
	if r.Cells == nil {
		r.Cells = make(map[Concept][]string)
	}
	r.Cells[c] = append(r.Cells[c], v)
	return true
}

// Missing reports whether the row's cell for c is a labeled null.
func (r *Row) Missing(c Concept) bool { return len(r.Cells[c]) == 0 }

// Table is a relation adhering to a concept-oriented schema.
type Table struct {
	// Schema is the table's concept-oriented schema.
	Schema Schema
	// Rows in insertion order; Subjects are unique (enforced by AddRow).
	Rows []*Row

	bySubject map[string]*Row
}

// NewTable returns an empty table over the schema.
func NewTable(s Schema) *Table {
	return &Table{Schema: s, bySubject: make(map[string]*Row)}
}

// NewTableSized returns an empty table pre-sized for rows — the bulk-load
// constructor: deserializers that know the row count up front skip the
// subject index's incremental growth.
func NewTableSized(s Schema, rows int) *Table {
	return &Table{
		Schema:    s,
		Rows:      make([]*Row, 0, rows),
		bySubject: make(map[string]*Row, rows),
	}
}

// AddRow inserts a row for the subject instance and returns it. If the
// subject already exists, the existing row is returned.
func (t *Table) AddRow(subject string) *Row {
	key := strings.ToLower(subject)
	if r, ok := t.bySubject[key]; ok {
		return r
	}
	r := &Row{Subject: subject, Cells: make(map[Concept][]string)}
	t.Rows = append(t.Rows, r)
	t.bySubject[key] = r
	return r
}
// Row returns the row whose subject equals s (case-insensitive), or nil.
func (t *Table) Row(s string) *Row { return t.bySubject[strings.ToLower(s)] }

// Subjects returns all subject instances in row order. This is R.C* in the
// paper's notation.
func (t *Table) Subjects() []string {
	out := make([]string, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r.Subject
	}
	return out
}

// ColumnValues returns the deduplicated set of instances appearing in column
// c across all rows — R.C in the paper's notation. For the subject concept it
// returns the subjects. Results are sorted for determinism.
func (t *Table) ColumnValues(c Concept) []string {
	seen := make(map[string]string)
	if c == t.Schema.Subject {
		for _, r := range t.Rows {
			seen[strings.ToLower(r.Subject)] = r.Subject
		}
	} else {
		for _, r := range t.Rows {
			for _, v := range r.Cells[c] {
				seen[strings.ToLower(v)] = v
			}
		}
	}
	out := make([]string, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// InstanceCount returns the total number of instances stored in the table,
// counting the subject column, matching how the paper counts "total
// instances" (e.g. 4,706 for Disease A-Z).
func (t *Table) InstanceCount() int {
	n := len(t.Rows)
	for _, r := range t.Rows {
		for _, vs := range r.Cells {
			n += len(vs)
		}
	}
	return n
}

// Fingerprint returns an FNV-1a hash of the table's full content — schema
// (subject and column order), rows in insertion order, and each row's cells
// in schema column order. Equal-content tables hash equal regardless of cell
// map iteration order, so the fingerprint is a stable cache key for work
// derived from the table, such as fine-tuned matchers.
func (t *Table) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	write := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		// Separator so ("ab","c") and ("a","bc") hash differently.
		h ^= 0xff
		h *= prime64
	}
	write(string(t.Schema.Subject))
	for _, c := range t.Schema.Concepts {
		write(string(c))
	}
	for _, r := range t.Rows {
		write(r.Subject)
		for _, c := range t.Schema.Concepts {
			for _, v := range r.Cells[c] {
				write(v)
			}
			h ^= 0xfe
			h *= prime64
		}
	}
	return h
}

// ConceptFingerprint returns an FNV-1a hash of the deduplicated, sorted
// instance set of column c — exactly the input the matcher builds c's seed
// cluster from (ColumnValues). Two tables whose column c holds the same
// value set fingerprint equal for c even when every other column differs,
// which is what lets a live-table mutation invalidate fine-tune state for
// only the concepts it actually touched.
func (t *Table) ConceptFingerprint(c Concept) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	write := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	write(string(c))
	for _, v := range t.ColumnValues(c) {
		write(v)
	}
	return h
}

// ConceptFingerprints returns the per-concept content fingerprints of every
// concept in the schema, the subject included. Diffing two tables' maps
// names exactly the concepts whose instance sets changed between them.
func (t *Table) ConceptFingerprints() map[Concept]uint64 {
	out := make(map[Concept]uint64, len(t.Schema.Concepts))
	for _, c := range t.Schema.Concepts {
		out[c] = t.ConceptFingerprint(c)
	}
	return out
}

// Clone returns a deep copy of the row: the cell map and its value slices
// are fresh, so mutating the copy never aliases the original.
func (r *Row) Clone() *Row {
	nr := &Row{Subject: r.Subject, Cells: make(map[Concept][]string, len(r.Cells))}
	for c, vs := range r.Cells {
		nr.Cells[c] = append([]string(nil), vs...)
	}
	return nr
}

// CloneShared returns a shallow, copy-on-write clone: a fresh Rows slice and
// subject index pointing at the SAME Row values as the receiver. Callers that
// treat rows as immutable — replacing a row via SetRow with a Clone instead
// of mutating in place — get O(rows) snapshots whose unmodified rows are
// shared with every other snapshot (the tablestore's swap primitive).
func (t *Table) CloneShared() *Table {
	out := &Table{
		Schema:    t.Schema,
		Rows:      append(make([]*Row, 0, len(t.Rows)+1), t.Rows...),
		bySubject: make(map[string]*Row, len(t.Rows)+1),
	}
	for k, r := range t.bySubject {
		out.bySubject[k] = r
	}
	return out
}

// SetRow installs r as the row for its subject: replacing the existing row
// with the same (case-insensitive) subject in place, or appending a new row.
// It is the copy-on-write complement of CloneShared — swap in a cloned,
// mutated row without touching the shared original.
func (t *Table) SetRow(r *Row) {
	key := strings.ToLower(r.Subject)
	if t.bySubject == nil {
		t.bySubject = make(map[string]*Row)
	}
	if old, ok := t.bySubject[key]; ok {
		for i, x := range t.Rows {
			if x == old {
				t.Rows[i] = r
				break
			}
		}
		t.bySubject[key] = r
		return
	}
	t.Rows = append(t.Rows, r)
	t.bySubject[key] = r
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := NewTable(t.Schema)
	for _, r := range t.Rows {
		nr := out.AddRow(r.Subject)
		for c, vs := range r.Cells {
			nr.Cells[c] = append([]string(nil), vs...)
		}
	}
	return out
}

// ClearNonSubject removes every non-subject value, producing the worst-case
// evaluation tables (R_test') of Section V: only the subject column remains.
func (t *Table) ClearNonSubject() {
	for _, r := range t.Rows {
		r.Cells = make(map[Concept][]string)
	}
}

// Sparsity summarizes missingness: cells is rows × non-subject concepts,
// missing the count of labeled nulls among them.
type Sparsity struct {
	// Cells is rows × non-subject concepts.
	Cells int
	// Missing counts the labeled nulls among them.
	Missing int
}

// Ratio returns Missing/Cells, or 0 for an empty table.
func (s Sparsity) Ratio() float64 {
	if s.Cells == 0 {
		return 0
	}
	return float64(s.Missing) / float64(s.Cells)
}

// Sparsity computes the table's missing-value statistics.
func (t *Table) Sparsity() Sparsity {
	var sp Sparsity
	for _, r := range t.Rows {
		for _, c := range t.Schema.NonSubject() {
			sp.Cells++
			if r.Missing(c) {
				sp.Missing++
			}
		}
	}
	return sp
}

// String renders a compact description of the table.
func (t *Table) String() string {
	sp := t.Sparsity()
	return fmt.Sprintf("Table[%s: %d concepts, %d rows, %d instances, %.1f%% sparse]",
		t.Schema.Subject, len(t.Schema.Concepts), len(t.Rows), t.InstanceCount(), 100*sp.Ratio())
}

// SparsityByConcept computes per-column missing-value statistics: for each
// non-subject concept, how many of the table's rows hold a labeled null.
func (t *Table) SparsityByConcept() map[Concept]Sparsity {
	out := make(map[Concept]Sparsity, len(t.Schema.Concepts))
	for _, c := range t.Schema.NonSubject() {
		var sp Sparsity
		for _, r := range t.Rows {
			sp.Cells++
			if r.Missing(c) {
				sp.Missing++
			}
		}
		out[c] = sp
	}
	return out
}
