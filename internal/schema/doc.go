// Package schema implements the concept-oriented data model of the THOR
// paper (Section III): concepts, schemas with a subject concept, and
// relational tables whose cells are multi-valued and may hold labeled nulls
// (⊥), the missing values integration produces.
package schema
