package chaos

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"thor/internal/segment"
)

// Config selects the fault classes and their rates. All rates are
// probabilities in [0,1]; zero disables the class. The zero Config injects
// nothing.
type Config struct {
	// Seed drives every injection decision. Equal seeds over equal call
	// sequences replay identical fault schedules.
	Seed uint64
	// ErrorRate is the per-site probability of returning an injected error
	// from Fault.
	ErrorRate float64
	// TransientFraction is the fraction of injected errors wrapped in
	// TransientError (retryable); the rest are permanent.
	TransientFraction float64
	// PanicRate is the per-site probability that Fault panics.
	PanicRate float64
	// LatencyRate is the per-site probability that Fault sleeps before
	// returning; the sleep is uniform in [0, MaxLatency).
	LatencyRate float64
	// MaxLatency bounds an injected sleep (default 2ms).
	MaxLatency time.Duration
	// TruncateRate is the per-document probability that WrapDocs cuts the
	// text at a seed-chosen byte offset — possibly mid-rune, which is the
	// point: downstream parsers must survive invalid UTF-8.
	TruncateRate float64
	// CorruptRate is the per-document probability that WrapDocs overwrites
	// CorruptBytes seed-chosen bytes with seed-chosen values.
	CorruptRate float64
	// CorruptBytes is how many bytes a corrupted document has overwritten
	// (default 8).
	CorruptBytes int
}

func (c Config) maxLatency() time.Duration {
	if c.MaxLatency <= 0 {
		return 2 * time.Millisecond
	}
	return c.MaxLatency
}

func (c Config) corruptBytes() int {
	if c.CorruptBytes <= 0 {
		return 8
	}
	return c.CorruptBytes
}

// Stats counts the faults an injector has delivered.
type Stats struct {
	Errors    int // injected errors (Transient included)
	Transient int // injected errors that were marked transient
	Panics    int // injected panics
	Sleeps    int // injected latency events
	Truncated int // documents truncated by WrapDocs
	Corrupted int // documents byte-corrupted by WrapDocs
}

// Injector delivers faults on a deterministic schedule. Safe for concurrent
// use; a nil *Injector injects nothing.
type Injector struct {
	cfg   Config
	mu    sync.Mutex
	calls map[string]uint64
	stats Stats
}

// New builds an injector for the given configuration.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, calls: make(map[string]uint64)}
}

// Stats returns a snapshot of the delivered-fault counts.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Fault is the stage-boundary hook: called with a document identifier and a
// stage name, it may sleep, panic, or return an error according to the
// schedule. Each (doc, stage) site keeps its own call counter, so retried
// documents draw fresh decisions on every attempt while identical runs
// replay identically.
func (in *Injector) Fault(doc, stage string) error {
	if in == nil {
		return nil
	}
	site := doc + "\x00" + stage
	in.mu.Lock()
	seq := in.calls[site]
	in.calls[site] = seq + 1
	in.mu.Unlock()

	if in.cfg.LatencyRate > 0 && in.roll(site, seq, saltLatency) < in.cfg.LatencyRate {
		in.count(func(s *Stats) { s.Sleeps++ })
		time.Sleep(time.Duration(in.roll(site, seq, saltLatencyAmt) * float64(in.cfg.maxLatency())))
	}
	if in.cfg.PanicRate > 0 && in.roll(site, seq, saltPanic) < in.cfg.PanicRate {
		in.count(func(s *Stats) { s.Panics++ })
		panic(fmt.Sprintf("chaos: injected panic at %s/%s (call %d, seed %d)", doc, stage, seq, in.cfg.Seed))
	}
	if in.cfg.ErrorRate > 0 && in.roll(site, seq, saltError) < in.cfg.ErrorRate {
		err := fmt.Errorf("chaos: injected fault at %s/%s (call %d, seed %d)", doc, stage, seq, in.cfg.Seed)
		if in.roll(site, seq, saltTransient) < in.cfg.TransientFraction {
			in.count(func(s *Stats) { s.Errors++; s.Transient++ })
			return &TransientError{Err: err}
		}
		in.count(func(s *Stats) { s.Errors++ })
		return err
	}
	return nil
}

// WrapDocs returns a copy of docs with the schedule's truncation and byte
// corruption applied. The input slice and its documents are not modified.
func (in *Injector) WrapDocs(docs []segment.Document) []segment.Document {
	out := make([]segment.Document, len(docs))
	copy(out, docs)
	if in == nil {
		return out
	}
	for i := range out {
		d := &out[i]
		site := "source\x00" + d.Name
		if n := len(d.Text); n > 0 && in.cfg.TruncateRate > 0 &&
			in.roll(site, 0, saltTruncate) < in.cfg.TruncateRate {
			cut := int(in.roll(site, 0, saltTruncateAt) * float64(n))
			d.Text = d.Text[:cut]
			in.count(func(s *Stats) { s.Truncated++ })
		}
		if n := len(d.Text); n > 0 && in.cfg.CorruptRate > 0 &&
			in.roll(site, 0, saltCorrupt) < in.cfg.CorruptRate {
			b := []byte(d.Text)
			for k := 0; k < in.cfg.corruptBytes(); k++ {
				pos := int(in.roll(site, uint64(k), saltCorruptAt) * float64(len(b)))
				b[pos] = byte(in.roll(site, uint64(k), saltCorruptVal) * 256)
			}
			d.Text = string(b)
			in.count(func(s *Stats) { s.Corrupted++ })
		}
	}
	return out
}

func (in *Injector) count(f func(*Stats)) {
	in.mu.Lock()
	f(&in.stats)
	in.mu.Unlock()
}

// Salt constants separate the decision streams so, e.g., the panic draw for
// a site is independent of its error draw.
const (
	saltLatency = iota + 1
	saltLatencyAmt
	saltPanic
	saltError
	saltTransient
	saltTruncate
	saltTruncateAt
	saltCorrupt
	saltCorruptAt
	saltCorruptVal
)

// roll draws a deterministic uniform float64 in [0,1) for a (site, seq,
// salt) triple.
func (in *Injector) roll(site string, seq, salt uint64) float64 {
	h := in.cfg.Seed ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(site); i++ {
		h = (h ^ uint64(site[i])) * 1099511628211
	}
	h ^= seq * 0xbf58476d1ce4e5b9
	h ^= salt * 0x94d049bb133111eb
	return float64(splitmix64(h)>>11) / (1 << 53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TransientError marks an injected (or real) fault as retryable. Retry and
// IsTransient recognize it, including through fmt.Errorf("%w") wrapping.
type TransientError struct {
	// Err is the underlying fault.
	Err error
}

// Error implements error.
func (e *TransientError) Error() string { return e.Err.Error() + " (transient)" }

// Unwrap exposes the underlying fault.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient reports that the fault is retryable.
func (e *TransientError) Transient() bool { return true }

// IsTransient reports whether any error in err's chain declares itself
// transient via a `Transient() bool` method. Callers outside this package
// can mark their own error types transient the same way without importing
// chaos.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// MarkTransient wraps err so IsTransient — and therefore Retry — classifies
// it as retryable, without altering its message (unlike TransientError,
// which appends a marker). Clients of the serving layer use it to mark
// 503 load-shed responses for retry with backoff. Returns nil for a nil
// err.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientMark{err: err}
}

// transientMark is MarkTransient's invisible wrapper: same message, same
// chain, plus the Transient marker.
type transientMark struct{ err error }

// Error implements error, forwarding the wrapped message unchanged.
func (e *transientMark) Error() string { return e.err.Error() }

// Unwrap exposes the wrapped error to errors.Is/As.
func (e *transientMark) Unwrap() error { return e.err }

// Transient reports that the error is retryable.
func (e *transientMark) Transient() bool { return true }

// WithRetryAfter wraps err with a server-provided backoff hint (a parsed
// Retry-After header, typically). The wrapped error is transient — a server
// that says "come back in d" is inviting a retry — and RetryAfterHint
// recovers d from anywhere in the chain, so Backoff.Hint can honor the
// server's jittered value instead of the blind exponential. Returns nil for
// a nil err.
func WithRetryAfter(err error, d time.Duration) error {
	if err == nil {
		return nil
	}
	return &retryAfterErr{err: err, after: d}
}

// retryAfterErr carries a server backoff hint through an error chain.
type retryAfterErr struct {
	err   error
	after time.Duration
}

// Error implements error, forwarding the wrapped message unchanged.
func (e *retryAfterErr) Error() string { return e.err.Error() }

// Unwrap exposes the wrapped error to errors.Is/As.
func (e *retryAfterErr) Unwrap() error { return e.err }

// Transient reports that the error is retryable.
func (e *retryAfterErr) Transient() bool { return true }

// RetryAfter exposes the server's backoff hint.
func (e *retryAfterErr) RetryAfter() time.Duration { return e.after }

// RetryAfterHint is the standard Backoff.Hint hook: it returns the
// Retry-After duration carried by any error in err's chain exposing a
// `RetryAfter() time.Duration` method (WithRetryAfter's wrapper, or a
// caller's own type). ok is false when no hint is present, which falls Retry
// back to its computed exponential delay.
func RetryAfterHint(err error) (time.Duration, bool) {
	var r interface{ RetryAfter() time.Duration }
	if errors.As(err, &r) {
		return r.RetryAfter(), true
	}
	return 0, false
}
