package chaos

import (
	"context"
	"time"
)

// Backoff configures Retry: capped exponential backoff with full jitter
// (AWS-style: each delay is uniform in [0, min(Cap, Base<<attempt))). The
// jitter stream is deterministic in (Seed, key, attempt), so retry timing —
// like every other chaos decision — replays exactly under a fixed seed.
//
// The zero value performs a single attempt and never sleeps, which makes it
// safe to embed in configuration structs: leaving it unset means "no
// retries".
type Backoff struct {
	// Attempts is the maximum number of attempts, including the first
	// (<= 1 means no retries).
	Attempts int
	// Base is the pre-jitter delay before the second attempt (default 1ms);
	// it doubles each further attempt.
	Base time.Duration
	// Cap bounds the pre-jitter delay (default 100ms).
	Cap time.Duration
	// Seed selects the jitter stream.
	Seed uint64
	// Hint, when set, is consulted after each transient failure with the
	// failing error. When it returns (d, true) the next sleep is d — the
	// server's own backoff advice (e.g. a parsed Retry-After header) takes
	// precedence over the computed exponential delay — still bounded by
	// HintCap and still woken early by context cancellation. RetryAfterHint
	// is the standard hook for errors wrapped with WithRetryAfter.
	Hint func(error) (time.Duration, bool)
	// HintCap bounds a hinted delay (default 30s): a misbehaving server
	// cannot park clients arbitrarily long. Computed (non-hinted) delays are
	// bounded by Cap as before.
	HintCap time.Duration
}

func (b Backoff) base() time.Duration {
	if b.Base <= 0 {
		return time.Millisecond
	}
	return b.Base
}

func (b Backoff) cap() time.Duration {
	if b.Cap <= 0 {
		return 100 * time.Millisecond
	}
	return b.Cap
}

func (b Backoff) hintCap() time.Duration {
	if b.HintCap <= 0 {
		return 30 * time.Second
	}
	return b.HintCap
}

// Delay returns the backoff before attempt+2 for the given key: full jitter
// over the capped exponential envelope.
func (b Backoff) Delay(key string, attempt int) time.Duration {
	env := b.cap()
	if attempt < 63 {
		if d := b.base() << uint(attempt); d > 0 && d < env {
			env = d
		}
	}
	in := Injector{cfg: Config{Seed: b.Seed}}
	return time.Duration(in.roll("retry\x00"+key, uint64(attempt), saltLatencyAmt) * float64(env))
}

// DelayAfter returns the backoff before attempt+2 given the error the attempt
// failed with: when the Hint hook recognizes the error (a server-provided
// Retry-After, typically), its value wins over the computed exponential
// delay, bounded by HintCap; otherwise the delay equals Delay(key, attempt).
// This is the delay Retry actually sleeps, factored out so precedence is
// testable without sleeping.
func (b Backoff) DelayAfter(key string, attempt int, err error) time.Duration {
	if b.Hint != nil && err != nil {
		if d, ok := b.Hint(err); ok {
			if cap := b.hintCap(); d > cap {
				d = cap
			}
			if d < 0 {
				d = 0
			}
			return d
		}
	}
	return b.Delay(key, attempt)
}

// Retry runs op until it succeeds, fails permanently, exhausts b.Attempts,
// or ctx ends. Only errors classified transient (IsTransient) are retried;
// anything else — including a nil result — returns immediately. Between
// attempts Retry sleeps the jittered backoff, waking early with ctx.Err()
// when the context is done, so a cancelled caller never waits out a backoff.
//
// op receives the zero-based attempt number. The error of the last attempt
// is returned when attempts are exhausted.
func Retry(ctx context.Context, b Backoff, key string, op func(attempt int) error) error {
	attempts := b.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if serr := sleepCtx(ctx, b.DelayAfter(key, attempt-1, err)); serr != nil {
				return serr
			}
		}
		if err = op(attempt); err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
