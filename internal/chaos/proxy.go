package chaos

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is an HTTP-level fault injector for tests: it forwards requests to a
// real backend until told to misbehave. Unlike Injector — which injects
// faults inside a process — Proxy sits on the wire, so router/client code
// sees exactly what a dying or overloaded backend produces: aborted
// connections, added latency, or 503 + Retry-After sheds. All knobs are
// safe to flip concurrently while requests are in flight.
type Proxy struct {
	target *url.URL
	ln     net.Listener
	srv    *http.Server
	rp     *httputil.ReverseProxy

	mu         sync.Mutex
	down       bool          // abort every connection mid-flight
	latency    time.Duration // added before forwarding
	reject     bool          // shed with 503 + Retry-After
	retryAfter time.Duration // Retry-After value when rejecting

	forwarded atomic.Int64 // requests passed through to the backend
	aborted   atomic.Int64 // connections aborted by SetDown
	rejected  atomic.Int64 // requests shed with 503
}

// ProxyStats counts the proxy's dispositions.
type ProxyStats struct {
	Forwarded int64 // requests forwarded to the backend
	Aborted   int64 // connections aborted while down
	Rejected  int64 // requests shed with 503 + Retry-After
}

// NewProxy starts a fault proxy on a fresh loopback port forwarding to
// target (a base URL like "http://127.0.0.1:8080"). Close it when done.
func NewProxy(target string) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy target %q: %w", target, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("chaos: proxy target %q: need scheme://host", target)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy listen: %w", err)
	}
	p := &Proxy{target: u, ln: ln}
	p.rp = httputil.NewSingleHostReverseProxy(u)
	// Keep the proxy quiet on aborted upstreams; the test asserts on the
	// client side, not on proxy logs.
	p.rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		w.WriteHeader(http.StatusBadGateway)
	}
	p.srv = &http.Server{Handler: http.HandlerFunc(p.handle)}
	go p.srv.Serve(ln)
	return p, nil
}

// Addr returns the proxy's base URL ("http://127.0.0.1:port").
func (p *Proxy) Addr() string { return "http://" + p.ln.Addr().String() }

// SetDown simulates a dead backend: while down, every request's connection
// is aborted without a response — the client sees an unexpected EOF, exactly
// like a process killed mid-write.
func (p *Proxy) SetDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
}

// SetLatency adds d before forwarding each request (0 disables).
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	p.latency = d
	p.mu.Unlock()
}

// SetReject makes the proxy shed every request with 503 + a Retry-After
// header of retryAfter (rounded up to whole seconds, minimum 1) instead of
// forwarding. Models an overloaded backend's admission control.
func (p *Proxy) SetReject(on bool, retryAfter time.Duration) {
	p.mu.Lock()
	p.reject = on
	p.retryAfter = retryAfter
	p.mu.Unlock()
}

// Stats returns a snapshot of the proxy's dispositions.
func (p *Proxy) Stats() ProxyStats {
	return ProxyStats{
		Forwarded: p.forwarded.Load(),
		Aborted:   p.aborted.Load(),
		Rejected:  p.rejected.Load(),
	}
}

// Close stops the listener and frees the port. In-flight requests are
// aborted.
func (p *Proxy) Close() error { return p.srv.Close() }

func (p *Proxy) handle(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	down, latency, reject, retryAfter := p.down, p.latency, p.reject, p.retryAfter
	p.mu.Unlock()

	if down {
		p.aborted.Add(1)
		// http.ErrAbortHandler makes the server drop the connection without
		// writing a response — the closest stdlib equivalent of kill -9.
		panic(http.ErrAbortHandler)
	}
	if latency > 0 {
		select {
		case <-time.After(latency):
		case <-r.Context().Done():
			return
		}
	}
	if reject {
		p.rejected.Add(1)
		secs := int64(1)
		if retryAfter > 0 {
			secs = int64((retryAfter + time.Second - 1) / time.Second)
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, `{"error":{"code":"overloaded","message":"chaos: injected shed"}}`)
		return
	}
	p.forwarded.Add(1)
	p.rp.ServeHTTP(w, r)
}
