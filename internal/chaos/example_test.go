package chaos_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"thor/internal/chaos"
)

// ExampleRetry retries an operation whose first two attempts fail
// transiently. Only errors marked transient (chaos.MarkTransient, or any
// error declaring Transient() bool) are retried; a permanent error returns
// immediately. The jittered backoff is deterministic in (Seed, key, attempt).
func ExampleRetry() {
	b := chaos.Backoff{Attempts: 5, Base: time.Microsecond, Cap: time.Microsecond, Seed: 42}
	err := chaos.Retry(context.Background(), b, "fetch-doc", func(attempt int) error {
		if attempt < 2 {
			fmt.Printf("attempt %d: connection reset, retrying\n", attempt)
			return chaos.MarkTransient(errors.New("connection reset"))
		}
		fmt.Printf("attempt %d: ok\n", attempt)
		return nil
	})
	fmt.Println("err:", err)
	// Output:
	// attempt 0: connection reset, retrying
	// attempt 1: connection reset, retrying
	// attempt 2: ok
	// err: <nil>
}
