package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newProxyFixture(t *testing.T) (*Proxy, *httptest.Server) {
	t.Helper()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok")
	}))
	t.Cleanup(backend.Close)
	p, err := NewProxy(backend.URL)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p, backend
}

func TestProxyForwardsByDefault(t *testing.T) {
	p, _ := newProxyFixture(t)
	resp, err := http.Get(p.Addr() + "/x")
	if err != nil {
		t.Fatalf("get through proxy: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("got %d %q, want 200 ok", resp.StatusCode, body)
	}
	if st := p.Stats(); st.Forwarded != 1 || st.Aborted != 0 || st.Rejected != 0 {
		t.Fatalf("stats = %+v, want 1 forwarded only", st)
	}
}

func TestProxyDownAbortsConnections(t *testing.T) {
	p, _ := newProxyFixture(t)
	p.SetDown(true)
	_, err := http.Get(p.Addr() + "/x")
	if err == nil {
		t.Fatal("down proxy returned a response, want a connection error")
	}
	if st := p.Stats(); st.Aborted != 1 {
		t.Fatalf("stats = %+v, want 1 aborted", st)
	}

	// Flipping back up restores forwarding on the same address.
	p.SetDown(false)
	resp, err := http.Get(p.Addr() + "/x")
	if err != nil {
		t.Fatalf("recovered proxy: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered status = %d, want 200", resp.StatusCode)
	}
}

func TestProxyRejectShedsWithRetryAfter(t *testing.T) {
	p, _ := newProxyFixture(t)
	p.SetReject(true, 2500*time.Millisecond)
	resp, err := http.Get(p.Addr() + "/x")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	// 2.5s rounds up to whole seconds: 3.
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if st := p.Stats(); st.Rejected != 1 || st.Forwarded != 0 {
		t.Fatalf("stats = %+v, want 1 rejected", st)
	}
}

func TestProxyLatencyDelaysForwarding(t *testing.T) {
	p, _ := newProxyFixture(t)
	p.SetLatency(60 * time.Millisecond)
	start := time.Now()
	resp, err := http.Get(p.Addr() + "/x")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("request returned in %v, want >= 60ms added latency", elapsed)
	}
}

func TestProxyBadTarget(t *testing.T) {
	if _, err := NewProxy("not a url at all\x00"); err == nil {
		t.Fatal("want error for unparseable target")
	}
	if _, err := NewProxy("/just/a/path"); err == nil {
		t.Fatal("want error for target without scheme://host")
	}
}

// TestProxyDownYieldsTransientRetryableError ties the proxy to the retry
// story: the error a client gets from a down backend classifies as
// transient once marked, and Retry drives through it after recovery.
func TestProxyDownYieldsTransientRetryableError(t *testing.T) {
	p, _ := newProxyFixture(t)
	p.SetDown(true)
	calls := 0
	err := Retry(t.Context(), Backoff{Attempts: 5, Base: time.Millisecond, Cap: 5 * time.Millisecond}, "proxy",
		func(attempt int) error {
			calls++
			if attempt == 2 {
				p.SetDown(false)
			}
			resp, err := http.Get(p.Addr() + "/x")
			if err != nil {
				return MarkTransient(err)
			}
			resp.Body.Close()
			return nil
		})
	if err != nil {
		t.Fatalf("retry through recovery: %v (calls=%d)", err, calls)
	}
	if calls < 3 {
		t.Fatalf("calls = %d, want >= 3 (two failures then success)", calls)
	}
	var probe interface{ Transient() bool }
	if errors.As(MarkTransient(errors.New("x")), &probe); !probe.Transient() {
		t.Fatal("sanity: MarkTransient must classify transient")
	}
}
