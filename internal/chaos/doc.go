// Package chaos is THOR's deterministic fault-injection harness: a
// seed-driven injector that perturbs document sources (truncation, byte
// corruption) and pipeline stage boundaries (errors, panics, latency) on a
// reproducible schedule, plus a context-aware retry helper with capped
// exponential backoff (see retry.go).
//
// Every decision the injector makes is a pure function of (seed, site,
// call sequence number), where a site is a (document, stage) pair. Two runs
// with the same seed over the same document set therefore inject exactly the
// same faults, which is what makes chaos test failures reproducible: re-run
// with the printed seed and the schedule replays bit-for-bit.
//
// The injector plugs into the pipeline through thor.Config.FaultHook:
//
//	inj := chaos.New(chaos.Config{Seed: 42, ErrorRate: 0.05})
//	cfg.FaultHook = func(doc string, stage thor.Stage) error {
//		return inj.Fault(doc, string(stage))
//	}
//	docs = inj.WrapDocs(docs)
//
// The package deliberately has no dependency on the pipeline: stages are
// plain strings, so it can wrap any staged computation.
package chaos
