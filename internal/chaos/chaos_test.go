package chaos

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"thor/internal/segment"
)

// schedule replays an injector over a fixed call sequence and records what
// happened at each step.
func schedule(in *Injector, docs, stages, calls int) []string {
	var out []string
	for c := 0; c < calls; c++ {
		for d := 0; d < docs; d++ {
			for s := 0; s < stages; s++ {
				ev := func() (ev string) {
					defer func() {
						if r := recover(); r != nil {
							ev = "panic"
						}
					}()
					err := in.Fault(fmt.Sprintf("doc-%d", d), fmt.Sprintf("stage-%d", s))
					switch {
					case err == nil:
						return "ok"
					case IsTransient(err):
						return "transient"
					default:
						return "error"
					}
				}()
				out = append(out, ev)
			}
		}
	}
	return out
}

func TestInjectorDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 99, ErrorRate: 0.2, TransientFraction: 0.5, PanicRate: 0.1}
	a := schedule(New(cfg), 10, 6, 3)
	b := schedule(New(cfg), 10, 6, 3)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at call %d: %q vs %q", i, a[i], b[i])
		}
		if a[i] != "ok" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("rates 0.2/0.1 over 180 calls injected nothing — schedule generator broken")
	}
	// A different seed must produce a different schedule (astronomically
	// unlikely to collide over 180 draws at these rates).
	c := schedule(New(Config{Seed: 100, ErrorRate: 0.2, TransientFraction: 0.5, PanicRate: 0.1}), 10, 6, 3)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 99 and 100 produced identical fault schedules")
	}
}

func TestFaultPerSiteCallCounter(t *testing.T) {
	// Retried attempts must draw fresh decisions: with ErrorRate 0.5 the
	// same site cannot return the same outcome 64 times in a row unless the
	// sequence number were ignored.
	in := New(Config{Seed: 7, ErrorRate: 0.5})
	first := in.Fault("d", "s") != nil
	varied := false
	for i := 0; i < 63; i++ {
		if (in.Fault("d", "s") != nil) != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("64 calls at the same site all rolled the same outcome; per-site sequence counter not advancing")
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if err := in.Fault("d", "s"); err != nil {
		t.Errorf("nil injector returned %v", err)
	}
	docs := in.WrapDocs([]segment.Document{{Name: "a", Text: "hello"}})
	if len(docs) != 1 || docs[0].Text != "hello" {
		t.Errorf("nil injector perturbed documents: %+v", docs)
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Errorf("nil injector has stats %+v", s)
	}
}

func TestWrapDocsDeterministicAndBounded(t *testing.T) {
	orig := make([]segment.Document, 40)
	for i := range orig {
		orig[i] = segment.Document{
			Name: fmt.Sprintf("doc-%d", i),
			Text: strings.Repeat("Tuberculosis damages the lungs. ", 4),
		}
	}
	cfg := Config{Seed: 5, TruncateRate: 0.5, CorruptRate: 0.5, CorruptBytes: 4}
	a := New(cfg).WrapDocs(orig)
	b := New(cfg).WrapDocs(orig)
	if len(a) != len(orig) {
		t.Fatalf("WrapDocs changed document count: %d", len(a))
	}
	changed := 0
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatalf("doc %d: WrapDocs not deterministic", i)
		}
		if len(a[i].Text) > len(orig[i].Text) {
			t.Errorf("doc %d grew from %d to %d bytes", i, len(orig[i].Text), len(a[i].Text))
		}
		if a[i].Text != orig[i].Text {
			changed++
		}
		// Copy semantics: the input slice must be untouched.
		if orig[i].Text != strings.Repeat("Tuberculosis damages the lungs. ", 4) {
			t.Fatalf("doc %d: WrapDocs mutated its input", i)
		}
	}
	if changed == 0 {
		t.Error("rates 0.5/0.5 over 40 docs perturbed nothing")
	}
	st := New(cfg)
	st.WrapDocs(orig)
	stats := st.Stats()
	if stats.Truncated+stats.Corrupted == 0 {
		t.Errorf("stats did not record perturbations: %+v", stats)
	}
}

func TestIsTransientThroughWrapping(t *testing.T) {
	base := &TransientError{Err: errors.New("flaky")}
	if !IsTransient(base) {
		t.Error("TransientError not classified transient")
	}
	wrapped := fmt.Errorf("stage segment: %w", base)
	if !IsTransient(wrapped) {
		t.Error("transient classification lost through fmt.Errorf wrapping")
	}
	if IsTransient(errors.New("permanent")) {
		t.Error("plain error classified transient")
	}
	if IsTransient(nil) {
		t.Error("nil error classified transient")
	}
	if !errors.Is(wrapped, base.Err) {
		t.Error("TransientError.Unwrap does not expose the underlying fault")
	}
}

func TestRetryTransientUntilSuccess(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Backoff{Attempts: 5, Base: time.Microsecond, Cap: 10 * time.Microsecond}, "k",
		func(attempt int) error {
			if attempt != calls {
				t.Errorf("op attempt %d on call %d", attempt, calls)
			}
			calls++
			if calls < 3 {
				return &TransientError{Err: errors.New("try again")}
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Errorf("err=%v calls=%d, want success on 3rd attempt", err, calls)
	}
}

func TestRetryPermanentImmediate(t *testing.T) {
	calls := 0
	want := errors.New("permanent")
	err := Retry(context.Background(), Backoff{Attempts: 5, Base: time.Microsecond}, "k",
		func(int) error { calls++; return want })
	if !errors.Is(err, want) || calls != 1 {
		t.Errorf("err=%v calls=%d, want the permanent error after 1 call", err, calls)
	}
}

func TestRetryAttemptsExhausted(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Backoff{Attempts: 3, Base: time.Microsecond, Cap: 10 * time.Microsecond}, "k",
		func(int) error { calls++; return &TransientError{Err: fmt.Errorf("fail %d", calls)} })
	if calls != 3 {
		t.Errorf("calls = %d, want exactly Attempts=3", calls)
	}
	if err == nil || !strings.Contains(err.Error(), "fail 3") {
		t.Errorf("err = %v, want the last attempt's error", err)
	}
}

func TestRetryZeroBackoffSingleAttempt(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Backoff{}, "k",
		func(int) error { calls++; return &TransientError{Err: errors.New("x")} })
	if calls != 1 || err == nil {
		t.Errorf("zero Backoff: calls=%d err=%v, want one attempt returning its error", calls, err)
	}
}

func TestRetryCancelledDuringBackoffIsPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	errc := make(chan error, 1)
	go func() {
		errc <- Retry(ctx, Backoff{Attempts: 10, Base: time.Hour, Cap: time.Hour}, "k",
			func(int) error { calls++; return &TransientError{Err: errors.New("x")} })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry did not return promptly after cancel during an hour-long backoff")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled retry took %v", elapsed)
	}
	if calls != 1 {
		t.Errorf("op called %d times, want 1 (cancel landed during the first backoff)", calls)
	}
}

func TestDelayWithinEnvelope(t *testing.T) {
	b := Backoff{Attempts: 8, Base: time.Millisecond, Cap: 20 * time.Millisecond, Seed: 3}
	for attempt := 0; attempt < 70; attempt++ {
		d := b.Delay("key", attempt)
		if d < 0 || d >= 20*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside [0, Cap)", attempt, d)
		}
		if d != b.Delay("key", attempt) {
			t.Fatalf("attempt %d: Delay not deterministic", attempt)
		}
	}
	// Early attempts are bounded by the exponential envelope, not just Cap.
	if d := b.Delay("key", 0); d >= time.Millisecond {
		t.Errorf("attempt 0 delay %v exceeds Base envelope", d)
	}
}

func TestFaultStatsAccounting(t *testing.T) {
	in := New(Config{Seed: 11, ErrorRate: 0.5, TransientFraction: 0.5, PanicRate: 0.2, LatencyRate: 0.3, MaxLatency: time.Microsecond})
	events := schedule(in, 8, 6, 2)
	var errs, panics int
	for _, ev := range events {
		switch ev {
		case "error", "transient":
			errs++
		case "panic":
			panics++
		}
	}
	st := in.Stats()
	if st.Errors != errs || st.Panics != panics {
		t.Errorf("stats %+v disagree with observed events (errors=%d panics=%d)", st, errs, panics)
	}
	if st.Transient == 0 || st.Transient > st.Errors {
		t.Errorf("transient count %d implausible against %d errors", st.Transient, st.Errors)
	}
	if st.Sleeps == 0 {
		t.Errorf("latency rate 0.3 over %d calls slept zero times", len(events))
	}
}
