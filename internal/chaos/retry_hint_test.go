package chaos

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDelayAfterHintPrecedence pins the precedence contract: when the Hint
// hook recognizes the error, the server's value wins over the computed
// exponential delay; otherwise DelayAfter equals Delay exactly.
func TestDelayAfterHintPrecedence(t *testing.T) {
	b := Backoff{Attempts: 5, Base: time.Millisecond, Cap: 100 * time.Millisecond, Seed: 7,
		Hint: RetryAfterHint}

	hinted := WithRetryAfter(errors.New("shed"), 1700*time.Millisecond)
	if got := b.DelayAfter("k", 0, hinted); got != 1700*time.Millisecond {
		t.Fatalf("hinted delay = %v, want the server's 1.7s", got)
	}

	// No hint on the error → identical to the computed jittered delay.
	plain := MarkTransient(errors.New("shed"))
	for attempt := 0; attempt < 4; attempt++ {
		if got, want := b.DelayAfter("k", attempt, plain), b.Delay("k", attempt); got != want {
			t.Fatalf("attempt %d: unhinted DelayAfter = %v, want Delay's %v", attempt, got, want)
		}
	}

	// Nil error (first attempt has no failure yet) also falls back.
	if got, want := b.DelayAfter("k", 2, nil), b.Delay("k", 2); got != want {
		t.Fatalf("nil-error DelayAfter = %v, want %v", got, want)
	}

	// A Backoff without a Hint hook ignores hints entirely.
	noHook := Backoff{Attempts: 5, Seed: 7}
	if got, want := noHook.DelayAfter("k", 1, hinted), noHook.Delay("k", 1); got != want {
		t.Fatalf("no-hook DelayAfter = %v, want %v", got, want)
	}
}

// TestDelayAfterHintCapped pins the bound: a hint larger than HintCap is
// clamped, and a negative hint is treated as zero.
func TestDelayAfterHintCapped(t *testing.T) {
	b := Backoff{Attempts: 3, Hint: RetryAfterHint, HintCap: 2 * time.Second}
	long := WithRetryAfter(errors.New("shed"), time.Hour)
	if got := b.DelayAfter("k", 0, long); got != 2*time.Second {
		t.Fatalf("over-cap hint = %v, want clamp to 2s", got)
	}

	// Default cap is 30s when HintCap is unset.
	def := Backoff{Attempts: 3, Hint: RetryAfterHint}
	if got := def.DelayAfter("k", 0, long); got != 30*time.Second {
		t.Fatalf("default-cap hint = %v, want 30s", got)
	}

	neg := WithRetryAfter(errors.New("shed"), -time.Second)
	if got := b.DelayAfter("k", 0, neg); got != 0 {
		t.Fatalf("negative hint = %v, want 0", got)
	}
}

// TestRetryHintedSleepContextAware proves a hinted sleep is still woken
// early by context cancellation: a 10s server hint with a 30ms deadline must
// return promptly with the context error, not wait out the hint.
func TestRetryHintedSleepContextAware(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()

	b := Backoff{Attempts: 3, Hint: RetryAfterHint}
	start := time.Now()
	err := Retry(ctx, b, "k", func(int) error {
		return WithRetryAfter(errors.New("shed"), 10*time.Second)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hinted sleep ignored cancellation: took %v", elapsed)
	}
}

// TestRetryHonorsHintedDelay proves Retry actually sleeps (at least) the
// hinted duration between attempts rather than the much smaller computed
// backoff.
func TestRetryHonorsHintedDelay(t *testing.T) {
	b := Backoff{Attempts: 2, Base: time.Nanosecond, Cap: time.Nanosecond, Hint: RetryAfterHint}
	start := time.Now()
	err := Retry(context.Background(), b, "k", func(int) error {
		return WithRetryAfter(errors.New("shed"), 50*time.Millisecond)
	})
	if err == nil || !IsTransient(err) {
		t.Fatalf("err = %v, want the transient shed error", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("retry slept only %v, want >= the hinted 50ms", elapsed)
	}
}

// TestWithRetryAfterChain pins the wrapper semantics: transient, message
// unchanged, hint recoverable through further %w wrapping, nil passthrough.
func TestWithRetryAfterChain(t *testing.T) {
	if WithRetryAfter(nil, time.Second) != nil {
		t.Fatal("WithRetryAfter(nil) must be nil")
	}
	base := errors.New("http 503")
	err := WithRetryAfter(base, 3*time.Second)
	if err.Error() != "http 503" {
		t.Fatalf("message changed: %q", err.Error())
	}
	if !IsTransient(err) {
		t.Fatal("Retry-After errors must be transient")
	}
	if !errors.Is(err, base) {
		t.Fatal("wrapped error lost from chain")
	}
	wrapped := MarkTransient(err)
	d, ok := RetryAfterHint(wrapped)
	if !ok || d != 3*time.Second {
		t.Fatalf("RetryAfterHint through wrapping = (%v, %v), want (3s, true)", d, ok)
	}
	if d, ok := RetryAfterHint(base); ok || d != 0 {
		t.Fatalf("RetryAfterHint on plain error = (%v, %v), want (0, false)", d, ok)
	}
}
