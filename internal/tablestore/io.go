package tablestore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"thor/internal/schema"
)

// The on-disk snapshot format: a magic header, the store version, the
// schema (subject index + concept names), the rows (subject plus each
// non-subject concept's values in schema order), and a trailing CRC-32C of
// everything before it, verified on read. Strings are uvarint-length-prefixed
// UTF-8; counts are uvarints. The format is versioned through the magic.
const tableMagic = "THORTBL1"

// crcTable is the Castagnoli polynomial — hardware-accelerated on amd64 and
// arm64, so integrity costs a fraction of re-hashing the table's content.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Read-side sanity bounds: a frame above these is corrupt or hostile, not a
// table we ever wrote.
const (
	maxStringLen = 1 << 20 // one cell value / concept name
	maxConcepts  = 1 << 16
	maxRows      = 1 << 28
	maxCellVals  = 1 << 24 // values in one cell
)

// countingWriter tracks bytes and the running checksum across a
// bufio.Writer.
type countingWriter struct {
	w   *bufio.Writer
	n   int64
	crc uint32
}

func (cw *countingWriter) write(b []byte) error {
	if _, err := cw.w.Write(b); err != nil {
		return err
	}
	cw.crc = crc32.Update(cw.crc, crcTable, b)
	cw.n += int64(len(b))
	return nil
}

func (cw *countingWriter) str(s string) error {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], uint64(len(s)))
	if err := cw.write(buf[:k]); err != nil {
		return err
	}
	if _, err := cw.w.WriteString(s); err != nil {
		return err
	}
	cw.crc = crc32.Update(cw.crc, crcTable, []byte(s))
	cw.n += int64(len(s))
	return nil
}

func (cw *countingWriter) uvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], v)
	return cw.write(buf[:k])
}

// WriteTable serializes (version, table) in the THORTBL1 format. Equal
// tables at equal versions produce byte-identical output: rows are written
// in insertion order and cells in schema column order, both deterministic.
func WriteTable(w io.Writer, version uint64, t *schema.Table) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if err := cw.write([]byte(tableMagic)); err != nil {
		return cw.n, err
	}
	if err := cw.uvarint(version); err != nil {
		return cw.n, err
	}
	// Schema: the subject's index into the concept list, then the concepts.
	subjectIdx := -1
	for i, c := range t.Schema.Concepts {
		if c == t.Schema.Subject {
			subjectIdx = i
			break
		}
	}
	if subjectIdx < 0 {
		return cw.n, fmt.Errorf("tablestore: schema subject %q is not among its concepts", t.Schema.Subject)
	}
	if err := cw.uvarint(uint64(subjectIdx)); err != nil {
		return cw.n, err
	}
	if err := cw.uvarint(uint64(len(t.Schema.Concepts))); err != nil {
		return cw.n, err
	}
	for _, c := range t.Schema.Concepts {
		if err := cw.str(string(c)); err != nil {
			return cw.n, err
		}
	}
	if err := cw.uvarint(uint64(len(t.Rows))); err != nil {
		return cw.n, err
	}
	for _, r := range t.Rows {
		if err := cw.str(r.Subject); err != nil {
			return cw.n, err
		}
		for _, c := range t.Schema.Concepts {
			if c == t.Schema.Subject {
				continue
			}
			vs := r.Cells[c]
			if err := cw.uvarint(uint64(len(vs))); err != nil {
				return cw.n, err
			}
			for _, v := range vs {
				if err := cw.str(v); err != nil {
					return cw.n, err
				}
			}
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], cw.crc)
	if _, err := cw.w.Write(sum[:]); err != nil {
		return cw.n, err
	}
	cw.n += 4
	return cw.n, cw.w.Flush()
}

// WriteTo serializes the store's current snapshot. The snapshot is acquired
// for the duration of the write, so a concurrent swap never tears the
// output.
func (st *Store) WriteTo(w io.Writer) (int64, error) {
	sn := st.Acquire()
	defer sn.Release()
	return WriteTable(w, sn.Version, sn.Table)
}

// decoder parses the snapshot from one in-memory string. Cell values and
// subjects are substrings of it — zero allocations per value — which is what
// makes the binary restart path an order of magnitude faster than JSON
// re-derivation (the loaded table pins the snapshot buffer, whose size is the
// table's own content plus a few percent of framing).
type decoder struct {
	s   string
	off int
}

func (d *decoder) uvarint(what string, max uint64) (uint64, error) {
	var x uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if d.off >= len(d.s) {
			return 0, fmt.Errorf("tablestore: read %s: unexpected end of snapshot", what)
		}
		b := d.s[d.off]
		d.off++
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				break // overflows uint64
			}
			x |= uint64(b) << shift
			if x > max {
				return 0, fmt.Errorf("tablestore: implausible %s %d (max %d)", what, x, max)
			}
			return x, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, fmt.Errorf("tablestore: read %s: varint overflows uint64", what)
}

func (d *decoder) str(what string) (string, error) {
	n, err := d.uvarint(what, maxStringLen)
	if err != nil {
		return "", err
	}
	if uint64(len(d.s)-d.off) < n {
		return "", fmt.Errorf("tablestore: read %s: unexpected end of snapshot", what)
	}
	v := d.s[d.off : d.off+int(n)]
	d.off += int(n)
	return v, nil
}

// ReadFrom parses a snapshot previously produced by WriteTable/WriteTo,
// returning the version it was saved with and the reconstructed table. The
// trailing checksum is verified first, so a truncated or corrupted file
// fails loudly instead of loading a silently different table.
func ReadFrom(r io.Reader) (uint64, *schema.Table, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return 0, nil, fmt.Errorf("tablestore: read snapshot: %w", err)
	}
	if len(raw) < len(tableMagic)+4 || string(raw[:len(tableMagic)]) != tableMagic {
		return 0, nil, fmt.Errorf("tablestore: not a %s file", tableMagic)
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if want, got := binary.LittleEndian.Uint32(trailer), crc32.Checksum(body, crcTable); want != got {
		return 0, nil, fmt.Errorf("tablestore: checksum mismatch: file says %08x, content sums to %08x", want, got)
	}
	d := &decoder{s: string(body), off: len(tableMagic)}
	version, err := d.uvarint("version", 1<<62)
	if err != nil {
		return 0, nil, err
	}
	subjectIdx, err := d.uvarint("subject index", maxConcepts-1)
	if err != nil {
		return 0, nil, err
	}
	nConcepts, err := d.uvarint("concept count", maxConcepts)
	if err != nil {
		return 0, nil, err
	}
	if nConcepts == 0 {
		return 0, nil, fmt.Errorf("tablestore: schema has no concepts")
	}
	if subjectIdx >= nConcepts {
		return 0, nil, fmt.Errorf("tablestore: subject index %d outside %d concepts", subjectIdx, nConcepts)
	}
	concepts := make([]schema.Concept, nConcepts)
	seen := make(map[schema.Concept]bool, nConcepts)
	for i := range concepts {
		name, err := d.str("concept name")
		if err != nil {
			return 0, nil, err
		}
		if name == "" || seen[schema.Concept(name)] {
			return 0, nil, fmt.Errorf("tablestore: empty or duplicate concept %q", name)
		}
		seen[schema.Concept(name)] = true
		concepts[i] = schema.Concept(name)
	}
	nRows, err := d.uvarint("row count", maxRows)
	if err != nil {
		return 0, nil, err
	}
	// Every row costs at least one byte per field, so a count beyond the
	// remaining input is corrupt — refuse before sizing any allocation by it.
	if nRows > uint64(len(d.s)-d.off) {
		return 0, nil, fmt.Errorf("tablestore: row count %d exceeds the remaining input", nRows)
	}
	table := schema.NewTableSized(schema.Schema{Subject: concepts[subjectIdx], Concepts: concepts}, int(nRows))
	// Cell slices are carved out of chunked slabs instead of allocated one
	// make([]string, n) at a time — at bulk-load scale the per-cell
	// allocations are the single largest cost after the row index itself.
	var slab []string
	carve := func(n int) []string {
		if n > len(slab) {
			size := 4096
			if n > size {
				size = n
			}
			slab = make([]string, size)
		}
		out := slab[:n:n]
		slab = slab[n:]
		return out
	}
	rows := make([]schema.Row, nRows) // one slab, not one alloc per row
	for i := uint64(0); i < nRows; i++ {
		subject, err := d.str("row subject")
		if err != nil {
			return 0, nil, err
		}
		if subject == "" {
			return 0, nil, fmt.Errorf("tablestore: row %d has an empty subject", i)
		}
		row := &rows[i]
		row.Subject = subject
		row.Cells = make(map[schema.Concept][]string, int(nConcepts)-1)
		// SetRow would silently replace a same-subject row, so detect the
		// duplicate by the row count not growing.
		table.SetRow(row)
		if uint64(len(table.Rows)) != i+1 {
			return 0, nil, fmt.Errorf("tablestore: duplicate row subject %q", subject)
		}
		for _, c := range concepts {
			if c == table.Schema.Subject {
				continue
			}
			nVals, err := d.uvarint("cell count", maxCellVals)
			if err != nil {
				return 0, nil, err
			}
			if nVals == 0 {
				continue
			}
			if nVals > uint64(len(d.s)-d.off) {
				return 0, nil, fmt.Errorf("tablestore: cell count %d exceeds the remaining input", nVals)
			}
			// Raw slice fill, not Row.Add: the writer serialized the cells
			// verbatim, and Add's case-insensitive dedup could silently drop
			// values a legacy table legitimately held.
			vals := carve(int(nVals))
			for k := range vals {
				v, err := d.str("cell value")
				if err != nil {
					return 0, nil, err
				}
				vals[k] = v
			}
			row.Cells[c] = vals
		}
	}
	if d.off != len(d.s) {
		return 0, nil, fmt.Errorf("tablestore: %d trailing bytes after the last row", len(d.s)-d.off)
	}
	return version, table, nil
}
