package tablestore

import (
	"bytes"
	"testing"
)

// FuzzReadFrom drives the binary snapshot parser with arbitrary bytes: it
// must either return an error or a table whose re-serialization round-trips —
// never panic, never accept content whose fingerprint does not verify.
func FuzzReadFrom(f *testing.F) {
	var buf bytes.Buffer
	if _, err := WriteTable(&buf, 7, seedTable()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-4])
	f.Add([]byte(tableMagic))
	f.Add([]byte("THORTBL1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		version, table, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip exactly.
		var out bytes.Buffer
		if _, err := WriteTable(&out, version, table); err != nil {
			t.Fatalf("accepted table failed to re-serialize: %v", err)
		}
		v2, t2, err := ReadFrom(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized table failed to parse: %v", err)
		}
		if v2 != version || t2.Fingerprint() != table.Fingerprint() {
			t.Fatalf("round-trip drifted: version %d→%d fingerprint %016x→%016x",
				version, v2, table.Fingerprint(), t2.Fingerprint())
		}
	})
}
