package tablestore

import (
	"bytes"
	"fmt"
	"testing"

	"thor/internal/schema"
)

// benchTable builds a table at integrated-dataset scale: a few thousand
// subjects with multi-valued cells across several concepts.
func benchTable() *schema.Table {
	t := schema.NewTable(schema.NewSchema("Disease", "Anatomy", "Complication", "Treatment", "Symptom"))
	for i := 0; i < 4000; i++ {
		row := t.AddRow(fmt.Sprintf("disease %04d", i))
		row.Add("Anatomy", fmt.Sprintf("organ %d", i%97))
		row.Add("Anatomy", fmt.Sprintf("system %d", i%13))
		row.Add("Complication", fmt.Sprintf("complication %d", i%211))
		row.Add("Treatment", fmt.Sprintf("drug %d", i%151))
		row.Add("Symptom", fmt.Sprintf("symptom %d", i%83))
		row.Add("Symptom", fmt.Sprintf("sign %d", i%29))
	}
	return t
}

// BenchmarkSnapshotLoad compares restoring a persisted table from the
// THORTBL1 binary snapshot against re-deriving it from the JSON interchange
// format — the daemon's restart path with and without -snapshot. The binary
// path must hold a ≥10× advantage (see docs/ARCHITECTURE.md, "Live tables").
func BenchmarkSnapshotLoad(b *testing.B) {
	table := benchTable()

	var bin bytes.Buffer
	if _, err := WriteTable(&bin, 1, table); err != nil {
		b.Fatal(err)
	}
	var js bytes.Buffer
	if err := table.WriteJSON(&js); err != nil {
		b.Fatal(err)
	}
	b.Logf("binary %d bytes, json %d bytes, %d rows", bin.Len(), js.Len(), len(table.Rows))

	b.Run("binary", func(b *testing.B) {
		b.SetBytes(int64(bin.Len()))
		for i := 0; i < b.N; i++ {
			if _, _, err := ReadFrom(bytes.NewReader(bin.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json", func(b *testing.B) {
		b.SetBytes(int64(js.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := schema.ReadJSON(bytes.NewReader(js.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestBinaryLoadBeatsJSON pins the acceptance criterion behind
// BenchmarkSnapshotLoad with headroom to spare: loading the binary snapshot
// must be at least 10× faster than re-deriving the table from JSON. The
// measured margin is far wider (dozens of ×), so the 10× floor stays robust
// on loaded CI machines; the benchmark reports the precise ratio.
func TestBinaryLoadBeatsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	table := benchTable()
	var bin, js bytes.Buffer
	if _, err := WriteTable(&bin, 1, table); err != nil {
		t.Fatal(err)
	}
	if err := table.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}

	binElapsed := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ReadFrom(bytes.NewReader(bin.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	jsonElapsed := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := schema.ReadJSON(bytes.NewReader(js.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	binNs := float64(binElapsed.NsPerOp())
	jsonNs := float64(jsonElapsed.NsPerOp())
	ratio := jsonNs / binNs
	t.Logf("binary %.2fms, json %.2fms, ratio %.1fx", binNs/1e6, jsonNs/1e6, ratio)
	if ratio < 10 {
		t.Fatalf("binary snapshot load is only %.1fx faster than JSON re-derive, want >=10x", ratio)
	}
}
