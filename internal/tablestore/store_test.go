package tablestore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"thor/internal/schema"
)

func seedTable() *schema.Table {
	t := schema.NewTable(schema.NewSchema("Disease", "Anatomy", "Complication"))
	t.AddRow("Acoustic Neuroma").Add("Anatomy", "nervous system")
	t.AddRow("Tuberculosis").Add("Complication", "skin infection")
	t.AddRow("Cholera").Add("Anatomy", "small intestine")
	return t
}

func TestStoreMutateSwap(t *testing.T) {
	builds := 0
	st, err := New(Options{Table: seedTable(), Build: func(sn *Snapshot) (any, error) {
		builds++
		return sn.Version, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Version(); got != 1 {
		t.Fatalf("initial version %d, want 1", got)
	}
	if builds != 1 {
		t.Fatalf("initial build ran %d times, want 1", builds)
	}

	res, err := st.Mutate(1, []RowUpdate{
		{Subject: "Tuberculosis", Cells: map[schema.Concept][]string{"Complication": {"meningitis"}}},
		{Subject: "Malaria", Cells: map[schema.Concept][]string{"Anatomy": {"liver"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.Previous != 1 {
		t.Fatalf("result versions %d/%d, want 2/1", res.Version, res.Previous)
	}
	if res.RowsAdded != 1 || res.ValuesAdded != 2 {
		t.Fatalf("rows/values added %d/%d, want 1/2", res.RowsAdded, res.ValuesAdded)
	}
	// Disease (new subject Malaria), Anatomy (liver) and Complication
	// (meningitis) all changed — nothing retained in this mutation.
	if len(res.Invalidated) != 3 || res.Retained != 0 {
		t.Fatalf("invalidated %v retained %d", res.Invalidated, res.Retained)
	}
	if res.NoOp() {
		t.Fatal("swap reported as no-op")
	}
	if builds != 2 {
		t.Fatalf("builds after mutation %d, want 2", builds)
	}

	sn := st.Acquire()
	defer sn.Release()
	if sn.Version != 2 {
		t.Fatalf("acquired version %d, want 2", sn.Version)
	}
	if sn.Payload.(uint64) != 2 {
		t.Fatalf("payload %v, want the build's version 2", sn.Payload)
	}
	if sn.Table.Row("Malaria") == nil {
		t.Fatal("new row Malaria missing from the swapped snapshot")
	}
	if !sn.Table.Row("Tuberculosis").Has("Complication", "meningitis") {
		t.Fatal("appended value missing from the swapped snapshot")
	}
}

func TestMutateRetainsUntouchedConcepts(t *testing.T) {
	st, err := New(Options{Table: seedTable()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Mutate(0, []RowUpdate{
		{Subject: "Cholera", Cells: map[schema.Concept][]string{"Complication": {"dehydration"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Existing subject, one concept touched: Disease and Anatomy retain.
	if res.Retained != 2 {
		t.Fatalf("retained %d, want 2", res.Retained)
	}
	if len(res.Invalidated) != 1 || res.Invalidated[0] != "Complication" {
		t.Fatalf("invalidated %v, want [Complication]", res.Invalidated)
	}
}

func TestVersionPrecondition(t *testing.T) {
	st, err := New(Options{Table: seedTable()})
	if err != nil {
		t.Fatal(err)
	}
	up := []RowUpdate{{Subject: "Cholera", Cells: map[schema.Concept][]string{"Complication": {"dehydration"}}}}
	if _, err := st.Mutate(7, up); err == nil {
		t.Fatal("stale precondition accepted")
	} else {
		var vm *VersionMismatchError
		if !errors.As(err, &vm) || vm.Want != 7 || vm.Have != 1 {
			t.Fatalf("want VersionMismatchError{7,1}, got %v", err)
		}
	}
	if st.Version() != 1 {
		t.Fatalf("failed precondition still bumped the version to %d", st.Version())
	}
	if _, err := st.Mutate(1, up); err != nil {
		t.Fatalf("matching precondition rejected: %v", err)
	}
	if _, err := st.Mutate(0, []RowUpdate{{Subject: "Cholera", Cells: map[schema.Concept][]string{"Complication": {"sepsis"}}}}); err != nil {
		t.Fatalf("unconditional mutation rejected: %v", err)
	}
	if st.Version() != 3 {
		t.Fatalf("version %d after two swaps, want 3", st.Version())
	}
}

func TestMutateValidation(t *testing.T) {
	st, err := New(Options{Table: seedTable()})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		updates []RowUpdate
	}{
		{"empty batch", nil},
		{"empty subject", []RowUpdate{{Subject: ""}}},
		{"subject column", []RowUpdate{{Subject: "Cholera", Cells: map[schema.Concept][]string{"Disease": {"x"}}}}},
		{"unknown concept", []RowUpdate{{Subject: "Cholera", Cells: map[schema.Concept][]string{"Treatment": {"x"}}}}},
	}
	for _, tc := range cases {
		_, err := st.Mutate(0, tc.updates)
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("%s: want ValidationError, got %v", tc.name, err)
		}
	}
	if st.Version() != 1 {
		t.Fatalf("rejected mutations changed the version to %d", st.Version())
	}
}

func TestNoOpMutation(t *testing.T) {
	swaps := 0
	st, err := New(Options{Table: seedTable(), OnSwap: func(*Snapshot, *MutateResult) { swaps++ }})
	if err != nil {
		t.Fatal(err)
	}
	// Every value already present (case-insensitively) — nothing to do.
	res, err := st.Mutate(1, []RowUpdate{
		{Subject: "Tuberculosis", Cells: map[schema.Concept][]string{"Complication": {"SKIN INFECTION"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.NoOp() || res.Version != 1 || res.ValuesAdded != 0 {
		t.Fatalf("want a version-1 no-op, got %+v", res)
	}
	if res.Retained != 3 {
		t.Fatalf("no-op retained %d concepts, want all 3", res.Retained)
	}
	if swaps != 0 {
		t.Fatalf("no-op fired OnSwap %d times", swaps)
	}
	if st.Live() != 1 {
		t.Fatalf("no-op grew live snapshots to %d", st.Live())
	}
}

func TestSnapshotDrain(t *testing.T) {
	var drained []uint64
	st, err := New(Options{Table: seedTable(), OnDrain: func(sn *Snapshot) { drained = append(drained, sn.Version) }})
	if err != nil {
		t.Fatal(err)
	}

	old := st.Acquire()
	oldFP := old.Table.Fingerprint()
	up := []RowUpdate{{Subject: "Malaria", Cells: map[schema.Concept][]string{"Anatomy": {"liver"}}}}
	if _, err := st.Mutate(0, up); err != nil {
		t.Fatal(err)
	}

	// The superseded snapshot stays fully usable — and bit-identical — while
	// its reference is held.
	if st.Live() != 2 {
		t.Fatalf("live %d after swap with a pinned reader, want 2", st.Live())
	}
	if len(drained) != 0 {
		t.Fatalf("drained %v while a reader still holds version 1", drained)
	}
	if old.Version != 1 || old.Table.Row("Malaria") != nil {
		t.Fatal("pinned snapshot leaked the successor's mutation")
	}
	if old.Table.Fingerprint() != oldFP {
		t.Fatal("pinned snapshot's content changed across the swap")
	}

	// Retain/Release nesting: the drain must wait for the LAST reference.
	old.Retain()
	old.Release()
	if len(drained) != 0 {
		t.Fatal("drained with one reference still outstanding")
	}
	if st.Readers() != 1 {
		t.Fatalf("readers %d, want 1", st.Readers())
	}
	old.Release()
	if len(drained) != 1 || drained[0] != 1 {
		t.Fatalf("drained %v, want [1]", drained)
	}
	if st.Live() != 1 || st.Readers() != 0 {
		t.Fatalf("live/readers %d/%d after drain, want 1/0", st.Live(), st.Readers())
	}
}

func TestCopyOnWriteSharesUntouchedRows(t *testing.T) {
	st, err := New(Options{Table: seedTable()})
	if err != nil {
		t.Fatal(err)
	}
	before := st.Acquire()
	defer before.Release()
	if _, err := st.Mutate(0, []RowUpdate{
		{Subject: "Cholera", Cells: map[schema.Concept][]string{"Complication": {"dehydration"}}},
	}); err != nil {
		t.Fatal(err)
	}
	after := st.Acquire()
	defer after.Release()

	// Untouched rows are the same *Row values; the mutated row is a fresh
	// copy and the old snapshot's row is untouched.
	if before.Table.Row("Tuberculosis") != after.Table.Row("Tuberculosis") {
		t.Error("untouched row was deep-copied instead of shared")
	}
	if before.Table.Row("Cholera") == after.Table.Row("Cholera") {
		t.Error("mutated row is shared with the superseded snapshot")
	}
	if before.Table.Row("Cholera").Has("Complication", "dehydration") {
		t.Error("mutation leaked into the superseded snapshot's row")
	}
}

// TestStoreHammer swaps continuously under concurrent readers and asserts —
// under -race — that every acquired snapshot is internally coherent: its
// recorded fingerprints match its table's content, versions never run
// backwards for a reader, and all superseded snapshots eventually drain.
func TestStoreHammer(t *testing.T) {
	var drains atomic.Int64
	st, err := New(Options{
		Table:   seedTable(),
		OnDrain: func(*Snapshot) { drains.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers   = 8
		mutations = 200
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := st.Acquire()
				if sn.Version < last {
					errs <- fmt.Errorf("version ran backwards: %d after %d", sn.Version, last)
					sn.Release()
					return
				}
				last = sn.Version
				if got := sn.Table.Fingerprint(); got != sn.Fingerprint {
					errs <- fmt.Errorf("version %d: torn table: content %016x, snapshot says %016x", sn.Version, got, sn.Fingerprint)
					sn.Release()
					return
				}
				for _, c := range sn.Table.Schema.Concepts {
					if got := sn.Table.ConceptFingerprint(c); got != sn.Concepts[c] {
						errs <- fmt.Errorf("version %d: concept %s fingerprint drifted", sn.Version, c)
						sn.Release()
						return
					}
				}
				sn.Release()
			}
		}()
	}

	for i := 0; i < mutations; i++ {
		subject := fmt.Sprintf("Disease %03d", i%37)
		value := fmt.Sprintf("complication %03d", i)
		if _, err := st.Mutate(0, []RowUpdate{
			{Subject: subject, Cells: map[schema.Concept][]string{"Complication": {value}}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if got := st.Version(); got != mutations+1 {
		t.Fatalf("version %d after %d mutations, want %d", got, mutations, mutations+1)
	}
	// Every superseded version drains once all readers are done: mutations
	// snapshots were superseded, the final one is still current.
	if got := drains.Load(); got != mutations {
		t.Fatalf("%d drains, want %d", got, mutations)
	}
	if st.Live() != 1 || st.Readers() != 0 {
		t.Fatalf("live/readers %d/%d after hammer, want 1/0", st.Live(), st.Readers())
	}
}

func TestBuildErrorAbortsMutation(t *testing.T) {
	boom := false
	st, err := New(Options{Table: seedTable(), Build: func(sn *Snapshot) (any, error) {
		if boom {
			return nil, errors.New("tuner exploded")
		}
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	boom = true
	_, err = st.Mutate(0, []RowUpdate{
		{Subject: "Malaria", Cells: map[schema.Concept][]string{"Anatomy": {"liver"}}},
	})
	if err == nil {
		t.Fatal("build failure did not abort the mutation")
	}
	if st.Version() != 1 || st.Live() != 1 {
		t.Fatalf("failed build still swapped: version %d live %d", st.Version(), st.Live())
	}
	sn := st.Acquire()
	defer sn.Release()
	if sn.Table.Row("Malaria") != nil {
		t.Fatal("failed build leaked the mutated table")
	}
}
