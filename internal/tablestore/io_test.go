package tablestore

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"thor/internal/schema"
)

// randomTable builds a table with deterministic pseudo-random shape: variable
// row counts, sparse cells, multi-valued cells, unicode and empty-adjacent
// values.
func randomTable(rng *rand.Rand) *schema.Table {
	nConcepts := 2 + rng.Intn(4)
	concepts := make([]schema.Concept, nConcepts)
	for i := range concepts {
		concepts[i] = schema.Concept(fmt.Sprintf("Concept%d", i))
	}
	subject := concepts[rng.Intn(nConcepts)]
	t := schema.NewTable(schema.Schema{Subject: subject, Concepts: concepts})
	alphabet := []string{"liver", "päncreas", "小腸", "skin cancer", "x", strings.Repeat("long value ", 20)}
	for i, n := 0, rng.Intn(30); i < n; i++ {
		row := t.AddRow(fmt.Sprintf("subject %d ø", i))
		for _, c := range concepts {
			if c == subject || rng.Intn(3) == 0 {
				continue
			}
			for k, nv := 0, rng.Intn(4); k < nv; k++ {
				row.Add(c, fmt.Sprintf("%s %d", alphabet[rng.Intn(len(alphabet))], rng.Intn(50)))
			}
		}
	}
	return t
}

func tablesEqual(t *testing.T, a, b *schema.Table) {
	t.Helper()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints differ")
	}
	if a.Schema.Subject != b.Schema.Subject || len(a.Schema.Concepts) != len(b.Schema.Concepts) {
		t.Fatal("schemas differ")
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i, ra := range a.Rows {
		rb := b.Rows[i]
		if ra.Subject != rb.Subject {
			t.Fatalf("row %d subject %q vs %q", i, ra.Subject, rb.Subject)
		}
		for _, c := range a.Schema.Concepts {
			va, vb := ra.Values(c), rb.Values(c)
			if len(va) != len(vb) {
				t.Fatalf("row %d concept %s: %d vs %d values", i, c, len(va), len(vb))
			}
			for k := range va {
				if va[k] != vb[k] {
					t.Fatalf("row %d concept %s value %d: %q vs %q", i, c, k, va[k], vb[k])
				}
			}
		}
	}
}

// TestSnapshotRoundTrip is the serialization property test: for many random
// tables, WriteTable → ReadFrom reconstructs version and content exactly, and
// re-serializing yields byte-identical output.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		table := randomTable(rng)
		version := uint64(rng.Intn(1 << 20))
		var buf bytes.Buffer
		n, err := WriteTable(&buf, version, table)
		if err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("trial %d: WriteTable reported %d bytes, wrote %d", trial, n, buf.Len())
		}
		gotVersion, got, err := ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if gotVersion != version {
			t.Fatalf("trial %d: version %d, want %d", trial, gotVersion, version)
		}
		tablesEqual(t, table, got)

		var again bytes.Buffer
		if _, err := WriteTable(&again, gotVersion, got); err != nil {
			t.Fatalf("trial %d: rewrite: %v", trial, err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("trial %d: round-trip is not byte-identical", trial)
		}
	}
}

func TestStoreWriteTo(t *testing.T) {
	st, err := New(Options{Table: seedTable(), Version: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	version, table, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if version != 9 {
		t.Fatalf("version %d, want 9", version)
	}
	tablesEqual(t, seedTable(), table)
	if st.Readers() != 0 {
		t.Fatalf("WriteTo leaked %d reader references", st.Readers())
	}
}

func TestReadFromRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteTable(&buf, 3, seedTable()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("NOTATBL!"), valid[8:]...)
		if _, _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
			t.Fatal("accepted a foreign magic")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{len(valid) - 1, len(valid) - 8, len(valid) / 2, 9} {
			if _, _, err := ReadFrom(bytes.NewReader(valid[:cut])); err == nil {
				t.Fatalf("accepted a file truncated to %d bytes", cut)
			}
		}
	})
	t.Run("flipped content byte", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[len(bad)/2] ^= 0x20 // case-flip a letter mid-file
		if _, _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
			t.Fatal("accepted corrupted content (checksum should mismatch)")
		}
	})
	t.Run("flipped checksum", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[len(bad)-1] ^= 0xff
		if _, _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
			t.Fatal("accepted a tampered checksum")
		}
	})
}
