// Package tablestore is the versioned, copy-on-write state store behind
// live tables: serving state that can be mutated while requests are in
// flight, with zero-downtime atomic swaps.
//
// A Store holds one current Snapshot — an immutable (table, version,
// per-concept fingerprints, payload) tuple — and swaps in a successor on
// every successful Mutate. Snapshots are generation-counted: readers
// Acquire the current snapshot before using it and Release it when done, so
// an in-flight request keeps computing against exactly the version that
// admitted it while new requests already see the next one. A superseded
// snapshot stays alive until its last reader drains, at which point the
// store's OnDrain hook fires (the serving layer's drain telemetry).
//
// Mutations are copy-on-write at row granularity (schema.Table.CloneShared
// plus Row.Clone/SetRow): a mutation touching k rows copies k rows and the
// row index, never the table. The per-concept fingerprint diff between the
// old and new snapshot names exactly which concepts' instance sets changed —
// the matcher's fine-tune cache keys its shared seed clusters on those same
// fingerprints, so a swap re-fine-tunes only the mutated concepts and every
// other concept's cache entries stay warm.
//
// Snapshots persist in the compact THORTBL1 binary format (Store.WriteTo /
// ReadFrom): length-prefixed strings in schema order with a trailing CRC-32C,
// loadable in milliseconds where re-deriving the same table from JSON costs
// an order of magnitude more (see BenchmarkSnapshotLoad).
package tablestore
