package tablestore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thor/internal/schema"
)

// Snapshot is one immutable version of the serving table. The Table (and
// everything derived from it in Payload) must be treated as read-only by
// every holder; mutations go through Store.Mutate, which builds a successor
// snapshot copy-on-write and swaps it in atomically.
type Snapshot struct {
	// Version is the monotonically increasing table version, starting at 1
	// (or the version a persisted snapshot was loaded with).
	Version uint64
	// Table is this version's integrated table. Read-only.
	Table *schema.Table
	// Fingerprint is the table's whole-content fingerprint.
	Fingerprint uint64
	// Concepts maps each schema concept to its instance-set fingerprint —
	// the per-concept keys the matcher cache invalidates by.
	Concepts map[schema.Concept]uint64
	// Payload is whatever Options.Build derived from the table (the serving
	// layer stores the version's fine-tuned pipeline here). Read-only.
	Payload any

	store *Store
	// refs counts the store's own current-pointer reference (1, dropped at
	// supersession) plus every outstanding reader. At zero the snapshot is
	// drained: no holder can touch it again.
	refs atomic.Int64
}

// Release returns a reference obtained from Store.Acquire or
// Snapshot.Retain. When the last reference of a superseded snapshot drops,
// the store's OnDrain hook fires.
func (sn *Snapshot) Release() {
	sn.store.readers.Add(-1)
	sn.decref()
}

// Retain adds a reference to an already-held snapshot — the coalescer pins
// the batch's snapshot for the duration of a pipeline run this way. Callers
// must already hold a reference; Retain pairs with Release.
func (sn *Snapshot) Retain() {
	sn.store.readers.Add(1)
	sn.refs.Add(1)
}

// decref drops one reference and fires the drain hook when the snapshot
// reaches zero (only possible after supersession dropped the store's ref).
func (sn *Snapshot) decref() {
	if sn.refs.Add(-1) == 0 {
		sn.store.live.Add(-1)
		if f := sn.store.onDrain; f != nil {
			f(sn)
		}
	}
}

// Options configure a Store.
type Options struct {
	// Table is the initial table. Required. The store owns it afterwards:
	// the caller must not mutate it.
	Table *schema.Table
	// Version is the initial version; zero means 1. A daemon restoring a
	// persisted snapshot passes the version it was saved with so the fleet's
	// version gauges stay comparable across restarts.
	Version uint64
	// Build, when set, derives each snapshot's Payload from its table before
	// the snapshot becomes visible — the serving layer fine-tunes the
	// version's pipeline here, so a swap never exposes a version whose
	// caches are cold-faulted on the request path. A Build error aborts the
	// mutation; the current version stays in place.
	Build func(sn *Snapshot) (any, error)
	// OnDrain, when set, is called once per superseded snapshot, after its
	// last reader released it.
	OnDrain func(sn *Snapshot)
	// OnSwap, when set, is called after every successful swap with the new
	// snapshot and the mutation's result (persistence, telemetry).
	OnSwap func(sn *Snapshot, res *MutateResult)
}

// Store is a versioned table holder with atomic swap semantics. All methods
// are safe for concurrent use; mutations serialize among themselves but
// never block readers.
type Store struct {
	// mu orders Acquire against the current-pointer swap: readers hold the
	// read side across load+refcount, Mutate takes the write side for the
	// pointer store only (payload builds happen outside it).
	mu  sync.RWMutex
	cur *Snapshot

	// mutateMu serializes mutations end to end, so version preconditions
	// are checked against a stable current version.
	mutateMu sync.Mutex

	build   func(sn *Snapshot) (any, error)
	onDrain func(sn *Snapshot)
	onSwap  func(sn *Snapshot, res *MutateResult)

	// readers counts outstanding acquired references; live counts
	// undrained snapshots (current included). Both feed gauges.
	readers atomic.Int64
	live    atomic.Int64
	// version mirrors cur.Version for lock-free gauge reads.
	version atomic.Uint64
}

// New builds a store over the initial table, deriving the first snapshot's
// payload through Options.Build.
func New(opts Options) (*Store, error) {
	if opts.Table == nil {
		return nil, fmt.Errorf("tablestore: nil table")
	}
	version := opts.Version
	if version == 0 {
		version = 1
	}
	st := &Store{build: opts.Build, onDrain: opts.OnDrain, onSwap: opts.OnSwap}
	sn, err := st.newSnapshot(version, opts.Table)
	if err != nil {
		return nil, err
	}
	st.cur = sn
	st.version.Store(version)
	st.live.Store(1)
	return st, nil
}

// newSnapshot assembles a snapshot (fingerprints + payload) without making
// it visible.
func (st *Store) newSnapshot(version uint64, table *schema.Table) (*Snapshot, error) {
	sn := &Snapshot{
		Version:     version,
		Table:       table,
		Fingerprint: table.Fingerprint(),
		Concepts:    table.ConceptFingerprints(),
		store:       st,
	}
	sn.refs.Store(1) // the store's own reference
	if st.build != nil {
		p, err := st.build(sn)
		if err != nil {
			return nil, fmt.Errorf("tablestore: build version %d: %w", version, err)
		}
		sn.Payload = p
	}
	return sn, nil
}

// Acquire returns the current snapshot with a reference held. Callers must
// Release it when done; the snapshot stays valid (and its version's results
// stay coherent) for as long as the reference is held, across any number of
// concurrent swaps.
func (st *Store) Acquire() *Snapshot {
	st.mu.RLock()
	sn := st.cur
	sn.refs.Add(1)
	st.mu.RUnlock()
	st.readers.Add(1)
	return sn
}

// Version returns the current version without acquiring a reference.
func (st *Store) Version() uint64 { return st.version.Load() }

// Readers returns the number of outstanding acquired references.
func (st *Store) Readers() int64 { return st.readers.Load() }

// Live returns the number of undrained snapshots, the current one included.
// A value above 1 means a superseded version still has readers.
func (st *Store) Live() int64 { return st.live.Load() }

// RowUpdate is one upsert of a mutation: values appended to the subject's
// row (created when absent) under each listed concept. Appends are
// set-semantic — values the row already holds (case-insensitively) are
// skipped — so replaying a mutation is idempotent.
type RowUpdate struct {
	// Subject is the row's subject instance. Required.
	Subject string `json:"subject"`
	// Cells maps non-subject concepts to the values to append.
	Cells map[schema.Concept][]string `json:"cells,omitempty"`
}

// VersionMismatchError reports a failed optimistic-concurrency precondition:
// the mutation named a version (If-Match) that is no longer current.
type VersionMismatchError struct {
	// Want is the version the mutation was conditioned on.
	Want uint64
	// Have is the store's current version.
	Have uint64
}

// Error implements error.
func (e *VersionMismatchError) Error() string {
	return fmt.Sprintf("tablestore: version precondition failed: mutation conditioned on %d, current is %d", e.Want, e.Have)
}

// ValidationError reports a structurally invalid mutation (empty subject,
// unknown concept, values under the subject column). Nothing was applied.
type ValidationError struct {
	// Reason describes the rejected update.
	Reason string
}

// Error implements error.
func (e *ValidationError) Error() string { return "tablestore: invalid mutation: " + e.Reason }

// MutateResult reports what a mutation did.
type MutateResult struct {
	// Version is the version serving after the call: Previous+1 after a
	// swap, Previous unchanged for a no-op mutation.
	Version uint64 `json:"version"`
	// Previous is the version the mutation was applied on top of.
	Previous uint64 `json:"previous"`
	// RowsAdded counts subjects that did not exist before.
	RowsAdded int `json:"rows_added"`
	// ValuesAdded counts cell values actually appended (duplicates skipped).
	ValuesAdded int `json:"values_added"`
	// Invalidated lists the concepts whose instance-set fingerprints
	// changed — the concepts whose fine-tune state must rebuild — in schema
	// order.
	Invalidated []schema.Concept `json:"invalidated,omitempty"`
	// Retained counts the concepts whose fingerprints (and therefore warm
	// caches) survived the swap.
	Retained int `json:"retained"`
	// BuildTime is the successor payload's build wall clock (the
	// incremental fine-tune), zero for a no-op.
	BuildTime time.Duration `json:"-"`
	// SwapTime is the full mutation wall clock: validate, copy-on-write
	// apply, fingerprint diff, payload build and pointer swap.
	SwapTime time.Duration `json:"-"`
}

// NoOp reports whether the mutation changed nothing (every value already
// present) and therefore did not produce a new version.
func (r *MutateResult) NoOp() bool { return r.Version == r.Previous }

// Mutate applies the updates copy-on-write and swaps the successor snapshot
// in. ifVersion is the optimistic-concurrency precondition: non-zero values
// must equal the current version or the mutation fails with
// *VersionMismatchError (zero means unconditional). Invalid updates fail
// with *ValidationError before anything is applied. A mutation whose every
// value is already present is a no-op: no new version, no swap, no build.
//
// In-flight readers are never blocked: they keep their acquired snapshot;
// the first Acquire after Mutate returns sees the new version.
func (st *Store) Mutate(ifVersion uint64, updates []RowUpdate) (*MutateResult, error) {
	st.mutateMu.Lock()
	defer st.mutateMu.Unlock()
	start := time.Now()

	st.mu.RLock()
	cur := st.cur
	st.mu.RUnlock()

	if ifVersion != 0 && ifVersion != cur.Version {
		return nil, &VersionMismatchError{Want: ifVersion, Have: cur.Version}
	}
	if len(updates) == 0 {
		return nil, &ValidationError{Reason: "no row updates"}
	}
	for i, u := range updates {
		if u.Subject == "" {
			return nil, &ValidationError{Reason: fmt.Sprintf("update %d has an empty subject", i)}
		}
		for c := range u.Cells {
			if c == cur.Table.Schema.Subject {
				return nil, &ValidationError{Reason: fmt.Sprintf("update %d writes the subject column %q (the key)", i, c)}
			}
			if !cur.Table.Schema.Has(c) {
				return nil, &ValidationError{Reason: fmt.Sprintf("update %d names unknown concept %q", i, c)}
			}
		}
	}

	res := &MutateResult{Previous: cur.Version, Version: cur.Version}
	next := cur.Table.CloneShared()
	// copied tracks the rows this mutation already cloned, so several
	// updates to one subject mutate a single private copy.
	copied := make(map[string]*schema.Row)
	for _, u := range updates {
		row := copied[u.Subject]
		if row == nil {
			if shared := next.Row(u.Subject); shared != nil {
				row = shared.Clone()
			} else {
				row = &schema.Row{Subject: u.Subject, Cells: make(map[schema.Concept][]string)}
				res.RowsAdded++
			}
			next.SetRow(row)
			copied[u.Subject] = row
		}
		for _, c := range sortedConcepts(u.Cells) {
			for _, v := range u.Cells[c] {
				if row.Add(c, v) {
					res.ValuesAdded++
				}
			}
		}
	}
	if res.RowsAdded == 0 && res.ValuesAdded == 0 {
		res.SwapTime = time.Since(start)
		res.Retained = len(cur.Concepts)
		return res, nil
	}

	sn, err := st.newSnapshotTimed(cur.Version+1, next, res)
	if err != nil {
		return nil, err
	}
	for _, c := range sn.Table.Schema.Concepts {
		if sn.Concepts[c] != cur.Concepts[c] {
			res.Invalidated = append(res.Invalidated, c)
		} else {
			res.Retained++
		}
	}
	res.Version = sn.Version

	st.mu.Lock()
	st.cur = sn
	st.mu.Unlock()
	st.version.Store(sn.Version)
	st.live.Add(1)
	cur.decref() // drop the store's reference to the superseded version
	res.SwapTime = time.Since(start)
	if st.onSwap != nil {
		st.onSwap(sn, res)
	}
	return res, nil
}

// newSnapshotTimed is newSnapshot with the payload build cost recorded into
// the mutation result.
func (st *Store) newSnapshotTimed(version uint64, table *schema.Table, res *MutateResult) (*Snapshot, error) {
	buildStart := time.Now()
	sn, err := st.newSnapshot(version, table)
	res.BuildTime = time.Since(buildStart)
	return sn, err
}

// sortedConcepts returns the update's concepts in deterministic order, so
// replaying a mutation applies values identically regardless of map
// iteration order.
func sortedConcepts(cells map[schema.Concept][]string) []schema.Concept {
	out := make([]schema.Concept, 0, len(cells))
	for c := range cells {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
