package obs

import (
	"runtime/metrics"
	"strings"
	"sync"
)

// runtimeSpec maps one runtime/metrics sample to an exposition family. The
// runtime/metrics namespace shifts between Go releases, so each family lists
// the known names in preference order and the sampler uses the first one the
// running toolchain actually exports.
type runtimeSpec struct {
	family string
	typ    string // counter | gauge | histogram
	help   string
	names  []string
}

// runtimeSpecs is the curated slice of the runtime/metrics namespace the
// exposition serves: enough to reason about heap pressure, GC behaviour and
// scheduler health without dumping the full (and version-dependent) set.
var runtimeSpecs = []runtimeSpec{
	{family: "go_goroutines", typ: "gauge",
		help:  "current goroutine count",
		names: []string{"/sched/goroutines:goroutines"}},
	{family: "go_gomaxprocs", typ: "gauge",
		help:  "GOMAXPROCS",
		names: []string{"/sched/gomaxprocs:threads"}},
	{family: "go_memory_heap_objects_bytes", typ: "gauge",
		help:  "bytes of live heap objects",
		names: []string{"/memory/classes/heap/objects:bytes"}},
	{family: "go_memory_total_bytes", typ: "gauge",
		help:  "total bytes mapped by the Go runtime",
		names: []string{"/memory/classes/total:bytes"}},
	{family: "go_gc_heap_goal_bytes", typ: "gauge",
		help:  "heap size target of the next GC cycle",
		names: []string{"/gc/heap/goal:bytes"}},
	{family: "go_gc_cycles", typ: "counter",
		help:  "completed GC cycles",
		names: []string{"/gc/cycles/total:gc-cycles"}},
	{family: "go_gc_heap_allocs_bytes", typ: "counter",
		help:  "cumulative bytes allocated on the heap",
		names: []string{"/gc/heap/allocs:bytes"}},
	{family: "go_gc_pauses_seconds", typ: "histogram",
		help:  "distribution of stop-the-world pause latencies",
		names: []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"}},
	{family: "go_sched_latencies_seconds", typ: "histogram",
		help:  "distribution of goroutine scheduling latencies",
		names: []string{"/sched/latencies:seconds"}},
}

var (
	runtimeOnce    sync.Once
	runtimeSamples []metrics.Sample // one per resolved spec, same order
	runtimeResolve []runtimeSpec    // specs whose metric exists in this toolchain
)

// resolveRuntime walks metrics.All once and keeps, for each spec, the first
// candidate name this Go version exports.
func resolveRuntime() {
	known := make(map[string]bool)
	for _, d := range metrics.All() {
		known[d.Name] = true
	}
	for _, spec := range runtimeSpecs {
		for _, n := range spec.names {
			if known[n] {
				runtimeResolve = append(runtimeResolve, spec)
				runtimeSamples = append(runtimeSamples, metrics.Sample{Name: n})
				break
			}
		}
	}
}

// addRuntime samples the resolved runtime metrics and renders them into the
// family set. Histogram-valued metrics become cumulative le-bucket
// histograms with zero-count runs elided and a closing +Inf bucket; the
// runtime does not track their sums, so only _bucket and _count samples are
// emitted.
func (fs *familySet) addRuntime() {
	runtimeOnce.Do(resolveRuntime)
	if len(runtimeSamples) == 0 {
		return
	}
	samples := make([]metrics.Sample, len(runtimeSamples))
	copy(samples, runtimeSamples)
	metrics.Read(samples)
	for i, spec := range runtimeResolve {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			v := float64(samples[i].Value.Uint64())
			if spec.typ == "counter" {
				fs.add(counterFamily(spec.family), "counter", spec.help, omSample{suffix: "_total", value: v})
			} else {
				fs.add(spec.family, "gauge", spec.help, omSample{value: v})
			}
		case metrics.KindFloat64:
			fs.add(spec.family, "gauge", spec.help, omSample{value: samples[i].Value.Float64()})
		case metrics.KindFloat64Histogram:
			fs.addRuntimeHistogram(spec, samples[i].Value.Float64Histogram())
		}
	}
}

// addRuntimeHistogram converts a runtime Float64Histogram (per-bucket counts
// between explicit boundaries) to exposition form: cumulative counts keyed
// by upper bound, empty interior buckets skipped, +Inf always present.
func (fs *familySet) addRuntimeHistogram(spec runtimeSpec, h *metrics.Float64Histogram) {
	if h == nil {
		return
	}
	name := spec.family
	if !strings.HasSuffix(name, "_seconds") {
		name += "_seconds"
	}
	var cum uint64
	sawInf := false
	for i, n := range h.Counts {
		cum += n
		// Buckets[i+1] is the upper bound of Counts[i].
		le := h.Buckets[i+1]
		last := i == len(h.Counts)-1
		if n == 0 && !last {
			continue
		}
		fs.add(name, "histogram", spec.help, omSample{
			suffix: "_bucket",
			labels: `le="` + formatValue(le) + `"`,
			value:  float64(cum),
		})
		if last {
			sawInf = formatValue(le) == "+Inf"
		}
	}
	if !sawInf {
		fs.add(name, "histogram", spec.help, omSample{
			suffix: "_bucket",
			labels: `le="+Inf"`,
			value:  float64(cum),
		})
	}
	fs.add(name, "histogram", spec.help, omSample{suffix: "_count", value: float64(cum)})
}
