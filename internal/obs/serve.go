package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// publishMu serializes expvar.Publish calls, which panic on duplicates.
var publishMu sync.Mutex

// PublishExpvar registers the registry's live snapshot under the given name
// in the process-wide expvar namespace, so it appears in /debug/vars.
// Idempotent: a name that is already published is left alone.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || name == "" {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("obs: write metrics: %w", err)
	}
	return nil
}

// DebugOptions selects the signal sources a debug mux serves. Every field
// may be nil; the corresponding endpoints then serve empty payloads.
type DebugOptions struct {
	// Registry feeds /debug/thor/metrics and the /metrics exposition.
	Registry *Registry
	// Tracer feeds /debug/thor/spans.
	Tracer *Tracer
	// Recorder feeds /debug/traces and /debug/traces/{id}.
	Recorder *Recorder
	// SLO contributes quantile summaries and burn rates to /metrics.
	SLO *SLO
	// Profiler feeds /debug/profiles and /debug/profiles/{id}.
	Profiler *Profiler
	// Journal feeds /debug/events.
	Journal *Journal
	// Node is the process identity stamped onto trace exports
	// (/debug/traces/{id}?format=export). Falls back to the journal's node
	// when empty.
	Node string
}

// Handler returns the debug mux for the given registry, tracer and flight
// recorder — shorthand for DebugHandler(DebugOptions{...}). Any argument
// may be nil.
func Handler(reg *Registry, tr *Tracer, rec *Recorder) http.Handler {
	return DebugHandler(DebugOptions{Registry: reg, Tracer: tr, Recorder: rec})
}

// DebugHandler returns the debug mux:
//
//	/metrics             — OpenMetrics exposition (registry + SLO + runtime)
//	/debug/vars          — expvar (includes the registry and SLO once published)
//	/debug/pprof/*       — live profiling (profile, heap, goroutine, trace, …)
//	/debug/profiles      — the profiler's retained-capture listing
//	/debug/profiles/{id} — one retained pprof payload
//	/debug/thor/metrics  — the registry snapshot as JSON
//	/debug/thor/spans    — the tracer's span ring buffer as JSON
//	/debug/traces        — the flight recorder's retained-trace listing
//	/debug/traces/{id}   — one retained trace's full span tree
//	                       (?format=export serves the TraceExport wire form)
//	/debug/events        — the journal's state-transition timeline
//
// Each call builds a fresh mux, so any number of debug handlers (and debug
// servers) can coexist in one process — multi-shard tests construct several
// — without duplicate-registration panics.
func DebugHandler(opts DebugOptions) http.Handler {
	reg, tr, rec := opts.Registry, opts.Tracer, opts.Recorder
	node := opts.Node
	if node == "" {
		node = opts.Journal.Node()
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg, opts.SLO))
	mux.Handle("/debug/vars", expvar.Handler())
	profiles := opts.Profiler.handler()
	mux.Handle("/debug/profiles", profiles)
	mux.Handle("/debug/profiles/", profiles)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/thor/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/thor/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tr.Dump())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		writeIndentedJSON(w, rec.Traces())
	})
	mux.HandleFunc("/debug/traces/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
		rt, ok := rec.Trace(id)
		if !ok {
			writeErrorEnvelope(w, http.StatusNotFound, "not_found",
				fmt.Sprintf("trace %q not retained", id), id)
			return
		}
		if r.URL.Query().Get("format") == "export" {
			writeIndentedJSON(w, ExportTrace(rt, node))
			return
		}
		writeIndentedJSON(w, rt)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
		writeIndentedJSON(w, opts.Journal.Export())
	})
	return mux
}

// errorEnvelope mirrors the serving tier's uniform error body
// ({"error":{"code","message"},"trace_id"}) — replicated here because obs
// sits below internal/serve in the import graph.
type errorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

// writeErrorEnvelope writes the structured JSON error envelope the rest of
// the system uses, so debug-endpoint failures parse like any other error.
func writeErrorEnvelope(w http.ResponseWriter, status int, code, message, traceID string) {
	var body errorEnvelope
	body.Error.Code = code
	body.Error.Message = message
	body.TraceID = traceID
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

// writeIndentedJSON writes v as indented JSON with the standard header.
func writeIndentedJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Serve starts the debug HTTP server on addr (e.g. ":6060" or
// "127.0.0.1:0") in a background goroutine and returns the running server;
// its Addr field carries the bound address, so addr may use port 0. The
// registry is published under the expvar name "thor". Shut the server down
// with (*http.Server).Close or Shutdown.
func Serve(addr string, reg *Registry, tr *Tracer) (*http.Server, error) {
	reg.PublishExpvar("thor")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: Handler(reg, tr, nil)}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
