// Package obs is THOR's stdlib-only observability layer: named counters,
// log-scaled latency histograms, lightweight span tracing, and a debug HTTP
// server exposing expvar, pprof and the span ring buffer.
//
// The package is built for the pipeline's hot path: every type is safe for
// concurrent use, and every method is a guarded no-op on a nil receiver, so
// instrumented code can thread a nil *Registry or *Tracer through without
// branching and without paying any allocation (guarded by
// TestNilRegistryZeroAlloc and BenchmarkNilRegistryHotPath).
//
// Only the standard library is used: sync/atomic for the counters and
// histogram buckets, expvar for /debug/vars, net/http/pprof for live
// profiling, and runtime/trace for optional execution-trace regions.
package obs
