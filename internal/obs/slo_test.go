package obs

import (
	"testing"
	"time"
)

// testClock is the deterministic SLOConfig.Now seam.
type testClock struct{ now time.Time }

func (c *testClock) Now() time.Time            { return c.now }
func (c *testClock) advance(d time.Duration)   { c.now = c.now.Add(d) }
func newTestClock() *testClock                 { return &testClock{now: time.Unix(1_000_000, 0)} }
func newTestSLO(c *testClock, cfg SLOConfig) *SLO {
	cfg.Now = c.Now
	return NewSLO(cfg)
}

// TestSLODegradedAndRecovers pins the burn-rate lifecycle: a healthy stream
// stays ready, injected latency violations flip it degraded, and expiry of
// the window recovers it without any reset call — the /readyz contract.
func TestSLODegradedAndRecovers(t *testing.T) {
	clock := newTestClock()
	slo := newTestSLO(clock, SLOConfig{
		Window:        time.Minute,
		Slices:        6,
		Latency:       100 * time.Millisecond,
		LatencyBudget: 0.01,
		MinSamples:    10,
	})

	for i := 0; i < 50; i++ {
		slo.Observe("fill", 5*time.Millisecond, false)
	}
	if slo.Degraded() {
		t.Fatal("degraded on healthy traffic")
	}

	// Inject latency violations: 20 of 70 observations slow blows a 1%
	// budget by orders of magnitude.
	for i := 0; i < 20; i++ {
		slo.Observe("fill", 300*time.Millisecond, false)
	}
	st := slo.Status()
	if !st.Degraded || len(st.Violating) != 1 || st.Violating[0] != "fill" {
		t.Fatalf("status = %+v, want degraded by fill", st)
	}
	fs := st.Streams["fill"]
	if fs.Count != 70 || fs.Slow != 20 {
		t.Fatalf("stream = %+v, want count 70 slow 20", fs)
	}
	if fs.BurnRate < 1 {
		t.Fatalf("burn rate %v, want >= 1", fs.BurnRate)
	}
	if fs.P50MS >= 100 || fs.P99MS < 100 {
		t.Fatalf("p50 %.1fms p99 %.1fms: percentiles inconsistent with 50 fast + 20 slow", fs.P50MS, fs.P99MS)
	}

	// The violations age out of the window; the engine recovers by itself.
	clock.advance(2 * time.Minute)
	if slo.Degraded() {
		t.Fatal("still degraded after the window expired")
	}
	for i := 0; i < 20; i++ {
		slo.Observe("fill", time.Millisecond, false)
	}
	if slo.Degraded() {
		t.Fatal("degraded after recovery traffic")
	}
}

// TestSLOErrorBudget checks the error burn path (independent of latency).
func TestSLOErrorBudget(t *testing.T) {
	clock := newTestClock()
	slo := newTestSLO(clock, SLOConfig{ErrorBudget: 0.05, MinSamples: 10})
	for i := 0; i < 19; i++ {
		slo.Observe("fill", time.Millisecond, false)
	}
	if slo.Degraded() {
		t.Fatal("degraded without errors")
	}
	slo.Observe("fill", time.Millisecond, true) // 1/20 = 5% = burn rate 1
	if !slo.Degraded() {
		t.Fatal("not degraded at burn rate 1")
	}
}

// TestSLOMinSamplesGuard checks a cold engine is healthy, not degraded.
func TestSLOMinSamplesGuard(t *testing.T) {
	clock := newTestClock()
	slo := newTestSLO(clock, SLOConfig{Latency: time.Millisecond, MinSamples: 10})
	for i := 0; i < 9; i++ {
		slo.Observe("fill", time.Second, true) // all violating, but too few
	}
	if slo.Degraded() {
		t.Fatal("degraded below MinSamples")
	}
	slo.Observe("fill", time.Second, true)
	if !slo.Degraded() {
		t.Fatal("not degraded at MinSamples")
	}
}

// TestSLOTrackedStreamsNeverViolate checks Track feeds percentiles without
// participating in the degraded signal.
func TestSLOTrackedStreamsNeverViolate(t *testing.T) {
	clock := newTestClock()
	slo := newTestSLO(clock, SLOConfig{Latency: time.Millisecond, MinSamples: 1})
	for i := 0; i < 100; i++ {
		slo.Track("stage.match", time.Second)
	}
	st := slo.Status()
	if st.Degraded || len(st.Violating) != 0 {
		t.Fatalf("tracked stream degraded the engine: %+v", st)
	}
	ss := st.Streams["stage.match"]
	if ss.Judged || ss.Count != 100 {
		t.Fatalf("stream = %+v, want unjudged count 100", ss)
	}
	if ss.P50MS < 900 || ss.P50MS > 1100 {
		t.Fatalf("p50 = %.1fms, want ~1000ms", ss.P50MS)
	}
}

// TestSLOWindowSlicesMerge checks observations spread over several slices
// merge into one windowed percentile view (the mergeable-sketch property).
func TestSLOWindowSlicesMerge(t *testing.T) {
	clock := newTestClock()
	slo := newTestSLO(clock, SLOConfig{Window: time.Minute, Slices: 6})
	for s := 0; s < 3; s++ {
		for i := 0; i < 50; i++ {
			slo.Observe("fill", 10*time.Millisecond, false)
		}
		clock.advance(10 * time.Second)
	}
	ss := slo.Status().Streams["fill"]
	if ss.Count != 150 {
		t.Fatalf("windowed count %d, want 150 across 3 slices", ss.Count)
	}
	clock.advance(2 * time.Minute)
	if got := slo.Status().Streams["fill"].Count; got != 0 {
		t.Fatalf("count %d after expiry, want 0", got)
	}
}

func TestSLONilIsNoOp(t *testing.T) {
	var slo *SLO
	slo.Observe("x", time.Second, true)
	slo.Track("x", time.Second)
	if slo.Degraded() {
		t.Fatal("nil SLO degraded")
	}
	if st := slo.Status(); st.Degraded || len(st.Streams) != 0 {
		t.Fatalf("nil SLO status = %+v", st)
	}
	slo.PublishExpvar("") // must not panic
}
