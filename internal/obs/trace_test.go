package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		tc := TraceContext{Trace: NewTraceID(), Span: NewSpanID()}
		h := tc.Traceparent()
		if len(h) != 55 {
			t.Fatalf("traceparent %q has length %d, want 55", h, len(h))
		}
		got, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("round-trip parse failed for %q", h)
		}
		if got != tc {
			t.Fatalf("round-trip mismatch: sent %+v got %+v", tc, got)
		}
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := TraceContext{Trace: NewTraceID(), Span: NewSpanID()}.Traceparent()
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"valid", valid, true},
		{"empty", "", false},
		{"truncated", valid[:54], false},
		{"garbage", "not a traceparent header at all, but long enough to pass len", false},
		{"reserved version ff", "ff" + valid[2:], false},
		{"future version", "cc" + valid[2:], true},
		{"future version with suffix", "cc" + valid[2:] + "-extra", true},
		{"version 00 with suffix", valid + "-extra", false},
		{"zero trace", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"zero span", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
		{"bad trace hex", "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", false},
		{"bad span hex", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902zz-01", false},
		{"bad flags hex", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", false},
		{"bad version hex", "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"wrong separators", strings.ReplaceAll(valid, "-", "_"), false},
	}
	for _, c := range cases {
		tc, ok := ParseTraceparent(c.in)
		if ok != c.ok {
			t.Errorf("%s: ParseTraceparent(%q) ok = %v, want %v", c.name, c.in, ok, c.ok)
		}
		if !ok && tc != (TraceContext{}) {
			t.Errorf("%s: failed parse returned non-zero context %+v", c.name, tc)
		}
	}
}

func TestNewIDsAreUniqueAndNonZero(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		tr, sp := NewTraceID(), NewSpanID()
		if tr.IsZero() || sp.IsZero() {
			t.Fatal("generated a zero ID")
		}
		if seen[tr.String()] || seen[sp.String()] {
			t.Fatal("generated a duplicate ID")
		}
		seen[tr.String()], seen[sp.String()] = true, true
	}
}

// TestSpanTreeMultiplexing pins the fan-out contract: a batched operation
// carrying two requests' span refs records every span once per request, each
// copy parented into its own trace.
func TestSpanTreeMultiplexing(t *testing.T) {
	tr := NewTracer(64)

	ctxA, rootA := tr.StartTrace(context.Background(), TraceContext{Trace: NewTraceID()}, "http.fill")
	ctxB, rootB := tr.StartTrace(context.Background(), TraceContext{Trace: NewTraceID()}, "http.fill")
	refsA, refsB := SpanRefs(ctxA), SpanRefs(ctxB)
	if len(refsA) != 1 || len(refsB) != 1 {
		t.Fatalf("root contexts carry %d/%d refs, want 1/1", len(refsA), len(refsB))
	}

	// The shared batch operation fans out over both requests.
	ctx := WithSpanRefs(context.Background(), refsA[0], refsB[0])
	ctx, batch := tr.StartSpanCtx(ctx, "batch")
	_, run := tr.StartSpanCtx(ctx, "run")
	run.End()
	batch.End()
	rootA.End()
	rootB.End()

	spans := tr.Spans()
	byTrace := map[string]map[string]Span{} // trace -> name -> span
	for _, sp := range spans {
		if byTrace[sp.TraceID] == nil {
			byTrace[sp.TraceID] = map[string]Span{}
		}
		byTrace[sp.TraceID][sp.Name] = sp
	}
	if len(byTrace) != 2 {
		t.Fatalf("spans landed in %d traces, want 2", len(byTrace))
	}
	for id, tree := range byTrace {
		root, okR := tree["http.fill"]
		batchSp, okB := tree["batch"]
		runSp, okN := tree["run"]
		if !okR || !okB || !okN {
			t.Fatalf("trace %s is missing spans: %v", id, tree)
		}
		if root.ParentID != "" {
			t.Errorf("trace %s: root has parent %q, want none", id, root.ParentID)
		}
		if batchSp.ParentID != root.SpanID {
			t.Errorf("trace %s: batch parent %q, want root %q", id, batchSp.ParentID, root.SpanID)
		}
		if runSp.ParentID != batchSp.SpanID {
			t.Errorf("trace %s: run parent %q, want batch %q", id, runSp.ParentID, batchSp.SpanID)
		}
	}
}

// TestStartTraceContinuesRemoteParent checks a caller-sent traceparent
// becomes the root span's parent.
func TestStartTraceContinuesRemoteParent(t *testing.T) {
	tr := NewTracer(8)
	tc := TraceContext{Trace: NewTraceID(), Span: NewSpanID()}
	_, root := tr.StartTrace(context.Background(), tc, "http.fill")
	root.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	if spans[0].TraceID != tc.Trace.String() || spans[0].ParentID != tc.Span.String() {
		t.Fatalf("root = %+v, want trace %s parent %s", spans[0], tc.Trace, tc.Span)
	}
}

func TestRecordSpanSynthesized(t *testing.T) {
	tr := NewTracer(8)
	ref := SpanRef{Trace: NewTraceID(), Parent: NewSpanID()}
	start := time.Now().Add(-50 * time.Millisecond)
	tr.RecordSpan([]SpanRef{ref}, "queue.wait", start, 50*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "queue.wait" || sp.TraceID != ref.Trace.String() || sp.ParentID != ref.Parent.String() {
		t.Fatalf("synthesized span = %+v", sp)
	}
	if sp.Duration != 50*time.Millisecond {
		t.Fatalf("duration = %v, want 50ms", sp.Duration)
	}
}

// TestStartSpanCtxWithoutRefsIsFlat pins the disabled path: no refs in the
// context means the exact pre-tracing behavior (one flat span, no IDs).
func TestStartSpanCtxWithoutRefsIsFlat(t *testing.T) {
	tr := NewTracer(8)
	_, sp := tr.StartSpanCtx(context.Background(), "run")
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].TraceID != "" || spans[0].SpanID != "" {
		t.Fatalf("flat span = %+v, want no trace IDs", spans)
	}
}

func TestNilTracerTraceCallsAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.StartTrace(context.Background(), TraceContext{Trace: NewTraceID()}, "x")
	if root != nil {
		t.Fatal("nil tracer returned a span")
	}
	ctx2, sp := tr.StartSpanCtx(ctx, "y")
	sp.Annotate("shed")
	sp.End()
	root.End()
	tr.RecordSpan([]SpanRef{{Trace: NewTraceID()}}, "z", time.Now(), time.Second)
	if ctx2 != ctx {
		t.Fatal("nil tracer modified the context")
	}
}
