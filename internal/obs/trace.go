package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// TraceID is a W3C Trace Context trace identifier: 16 bytes, rendered as 32
// lowercase hex digits. The zero value is invalid per the spec.
type TraceID [16]byte

// String renders the trace ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the trace ID is the all-zero (invalid) ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanID is a W3C Trace Context span identifier: 8 bytes, rendered as 16
// lowercase hex digits. The zero value is invalid per the spec.
type SpanID [8]byte

// String renders the span ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the span ID is the all-zero (invalid) ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// idState is the process-wide ID generator: a splitmix64 counter seeded once
// from crypto/rand. Atomic increments keep generation lock-free and unique
// within the process; the random seed keeps IDs unique across processes.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	_, _ = rand.Read(seed[:])
	idState.Store(binary.LittleEndian.Uint64(seed[:]) | 1)
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective mixer
// whose outputs are well distributed even over sequential inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID returns a fresh non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		n := idState.Add(2)
		binary.BigEndian.PutUint64(t[:8], splitmix64(n))
		binary.BigEndian.PutUint64(t[8:], splitmix64(n+1))
	}
	return t
}

// NewSpanID returns a fresh non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.BigEndian.PutUint64(s[:], splitmix64(idState.Add(1)))
	}
	return s
}

// TraceContext is one request's position in a distributed trace: the trace it
// belongs to and the span that is its current parent. The zero value means
// "no trace".
type TraceContext struct {
	// Trace is the trace identifier shared by every span of the request.
	Trace TraceID
	// Span is the identifier of the current (parent) span.
	Span SpanID
}

// Valid reports whether both IDs are non-zero, as the W3C spec requires.
func (tc TraceContext) Valid() bool { return !tc.Trace.IsZero() && !tc.Span.IsZero() }

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set).
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", tc.Trace, tc.Span)
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). It returns ok=false — never an invented
// context — for malformed headers, all-zero IDs, or the reserved version ff,
// so callers can fall back to generating a fresh trace. Future versions
// (01–fe) are accepted as long as the 00-prefix fields parse, per the spec's
// forward-compatibility rule.
func ParseTraceparent(h string) (tc TraceContext, ok bool) {
	// Fixed layout: 2 (version) + 1 + 32 (trace) + 1 + 16 (span) + 1 + 2 (flags).
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	if len(h) > 55 && (h[0] == '0' && h[1] == '0' || h[55] != '-') {
		// Version 00 must be exactly 55 chars; later versions may append
		// "-<extra>" suffixes which we ignore.
		return TraceContext{}, false
	}
	var version [1]byte
	if _, err := hex.Decode(version[:], []byte(h[0:2])); err != nil || version[0] == 0xff {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.Trace[:], []byte(h[3:35])); err != nil {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.Span[:], []byte(h[36:52])); err != nil {
		return TraceContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceContext{}, false
	}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// SpanRef is one (trace, parent span) coordinate a new span attaches under.
// A batched operation shared by several requests carries one ref per request,
// so every span the operation opens is recorded once into each request's
// trace — the span-tree multiplexing the serving path relies on.
type SpanRef struct {
	// Trace is the trace the span belongs to.
	Trace TraceID
	// Parent is the span the new span is a child of.
	Parent SpanID
}

// refsKey is the context key SpanRefs travel under.
type refsKey struct{}

// WithSpanRefs returns a context carrying the given span refs; spans started
// with StartSpanCtx attach under them. An empty refs list returns ctx
// unchanged (spans stay flat, exactly the pre-tracing behavior).
func WithSpanRefs(ctx context.Context, refs ...SpanRef) context.Context {
	if len(refs) == 0 {
		return ctx
	}
	return context.WithValue(ctx, refsKey{}, refs)
}

// SpanRefs returns the span refs carried by ctx, nil when there are none.
func SpanRefs(ctx context.Context) []SpanRef {
	refs, _ := ctx.Value(refsKey{}).([]SpanRef)
	return refs
}

// StartTrace opens the root span of a request trace under tc (tc.Span, when
// set, becomes the remote parent of the root — the caller's traceparent).
// The returned context carries a SpanRef under the new root, so every
// StartSpanCtx call below it lands in the trace. When the root span ends the
// trace is complete: an attached Recorder makes its retention decision then.
// On a nil tracer it returns ctx unchanged and a nil span.
func (t *Tracer) StartTrace(ctx context.Context, tc TraceContext, name string, attrs ...Attr) (context.Context, *ActiveSpan) {
	if t == nil || tc.Trace.IsZero() {
		return ctx, nil
	}
	id := NewSpanID()
	s := &ActiveSpan{
		tr:   t,
		span: Span{Name: name, Start: time.Now(), Attrs: attrs, TraceID: tc.Trace.String(), SpanID: id.String()},
		root: true,
	}
	if !tc.Span.IsZero() {
		s.span.ParentID = tc.Span.String()
	}
	s.refs = []SpanRef{{Trace: tc.Trace, Parent: tc.Span}}
	s.ids = []SpanID{id}
	return WithSpanRefs(ctx, SpanRef{Trace: tc.Trace, Parent: id}), s
}

// StartSpanCtx opens a span attached under every SpanRef ctx carries: on End
// one Span record per ref is written, each parented into its own trace. The
// returned context carries the refs of the new span, so nested StartSpanCtx
// calls build a tree. Without refs in ctx it behaves exactly like StartSpan
// (one flat, parentless span). Nil-safe like StartSpan.
func (t *Tracer) StartSpanCtx(ctx context.Context, name string, attrs ...Attr) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	refs := SpanRefs(ctx)
	if len(refs) == 0 {
		return ctx, t.StartSpan(name, attrs...)
	}
	s := &ActiveSpan{
		tr:   t,
		span: Span{Name: name, Start: time.Now(), Attrs: attrs},
		refs: refs,
		ids:  make([]SpanID, len(refs)),
	}
	childRefs := make([]SpanRef, len(refs))
	for i, r := range refs {
		id := NewSpanID()
		s.ids[i] = id
		childRefs[i] = SpanRef{Trace: r.Trace, Parent: id}
	}
	return WithSpanRefs(ctx, childRefs...), s
}

// RecordSpan records an already-measured operation as one span per ref —
// the synthesized spans of the serving path (queue wait, per-stage
// summaries), whose start and duration were measured outside a Start/End
// pair. Nil-safe; no-op with no refs.
func (t *Tracer) RecordSpan(refs []SpanRef, name string, start time.Time, d time.Duration, attrs ...Attr) {
	if t == nil || len(refs) == 0 {
		return
	}
	for _, r := range refs {
		sp := Span{
			Name:     name,
			Start:    start,
			Duration: d,
			Attrs:    attrs,
			TraceID:  r.Trace.String(),
			SpanID:   NewSpanID().String(),
		}
		if !r.Parent.IsZero() {
			sp.ParentID = r.Parent.String()
		}
		t.record(sp)
	}
}
