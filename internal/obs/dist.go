package obs

import "sync"

// Distribution is a concurrency-safe quantile summary over unitless values —
// assignment scores, ratios, sizes — built on the same deterministic Sketch
// the SLO engine uses. Unlike a Histogram (fixed log-scaled duration
// buckets), a Distribution adapts to whatever range it observes, at the cost
// of a mutex per observation; keep it off per-phrase hot paths. The zero
// value is ready to use; all methods are nil-safe.
type Distribution struct {
	mu sync.Mutex
	sk *Sketch
}

// Observe adds one value. No-op on a nil distribution.
func (d *Distribution) Observe(v float64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	if d.sk == nil {
		d.sk = NewSketch(0)
	}
	d.sk.Observe(v)
	d.mu.Unlock()
}

// Count returns the number of observations (0 on a nil distribution).
func (d *Distribution) Count() int64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sk.Count()
}

// DistributionSnapshot is the JSON-serializable state of one distribution.
type DistributionSnapshot struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// Min and Max are the exact observed extremes.
	Min float64 `json:"min"`
	// Max is the exact largest observation.
	Max float64 `json:"max"`
	// P50, P90 and P99 are sketch-estimated quantiles.
	P50 float64 `json:"p50"`
	// P90 is the estimated 90th percentile.
	P90 float64 `json:"p90"`
	// P99 is the estimated 99th percentile.
	P99 float64 `json:"p99"`
}

// Snapshot summarizes the distribution. Safe to call concurrently with
// Observe; returns a zero snapshot on nil.
func (d *Distribution) Snapshot() DistributionSnapshot {
	if d == nil {
		return DistributionSnapshot{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sk == nil || d.sk.Count() == 0 {
		return DistributionSnapshot{}
	}
	return DistributionSnapshot{
		Count: d.sk.Count(),
		Min:   d.sk.Min(),
		Max:   d.sk.Max(),
		P50:   d.sk.Query(0.50),
		P90:   d.sk.Query(0.90),
		P99:   d.sk.Query(0.99),
	}
}
