package obs

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"thor/internal/promtext"
)

func testTraceID(b byte) TraceID {
	var t TraceID
	for i := range t {
		t[i] = b
	}
	return t
}

func TestObserveTraceCapturesExemplar(t *testing.T) {
	var h Histogram
	tr := testTraceID(0xab)
	h.ObserveTrace(3*time.Millisecond, tr)

	ex := h.exemplar()
	if ex == nil {
		t.Fatal("no exemplar captured")
	}
	if ex.TraceID != tr.String() {
		t.Fatalf("exemplar trace = %q, want %q", ex.TraceID, tr.String())
	}
	if ex.ValueSeconds != (3 * time.Millisecond).Seconds() {
		t.Fatalf("exemplar value = %g", ex.ValueSeconds)
	}
	if ex.Time.IsZero() {
		t.Fatal("exemplar time not stamped")
	}
	if h.Count() != 1 {
		t.Fatal("ObserveTrace must also count as an observation")
	}
}

func TestObserveTraceBucketMaxPolicy(t *testing.T) {
	var h Histogram
	slow, fast := testTraceID(0x11), testTraceID(0x22)
	h.ObserveTrace(100*time.Millisecond, slow)
	// A smaller-bucket observation must not displace a fresh bucket-max one.
	h.ObserveTrace(time.Millisecond, fast)
	if ex := h.exemplar(); ex == nil || ex.TraceID != slow.String() {
		t.Fatalf("fast observation displaced the bucket-max exemplar: %+v", ex)
	}
	// An equal-or-higher bucket observation replaces it.
	h.ObserveTrace(200*time.Millisecond, fast)
	if ex := h.exemplar(); ex == nil || ex.TraceID != fast.String() {
		t.Fatalf("higher observation did not replace the exemplar: %+v", ex)
	}
}

func TestObserveTraceStaleExemplarRefreshes(t *testing.T) {
	var h Histogram
	old, fresh := testTraceID(0x33), testTraceID(0x44)
	h.ObserveTrace(100*time.Millisecond, old)
	// Backdate the capture beyond the staleness bound.
	h.exUnix.Store(time.Now().UnixNano() - exemplarMaxAge - int64(time.Second))
	h.ObserveTrace(time.Microsecond, fresh)
	if ex := h.exemplar(); ex == nil || ex.TraceID != fresh.String() {
		t.Fatalf("stale exemplar not refreshed: %+v", ex)
	}
}

func TestObserveTraceZeroTraceLeavesNoExemplar(t *testing.T) {
	var h Histogram
	h.ObserveTrace(time.Millisecond, TraceID{})
	if ex := h.exemplar(); ex != nil {
		t.Fatalf("zero trace captured an exemplar: %+v", ex)
	}
	if h.Count() != 1 {
		t.Fatal("untraced ObserveTrace must still count")
	}
	// Snapshot carries no exemplar either.
	if snap := h.snapshot(); snap.Exemplar != nil {
		t.Fatalf("snapshot exemplar should be nil: %+v", snap.Exemplar)
	}
}

func TestSnapshotCarriesExemplar(t *testing.T) {
	reg := NewRegistry()
	tr := testTraceID(0x5a)
	reg.Histogram("thor.http.fill").ObserveTrace(7*time.Millisecond, tr)
	snap := reg.Snapshot()
	hs := snap.Histograms["thor.http.fill"]
	if hs.Exemplar == nil || hs.Exemplar.TraceID != tr.String() {
		t.Fatalf("snapshot exemplar missing: %+v", hs.Exemplar)
	}
}

// TestOpenMetricsExemplar pins the exposition syntax: the exemplar rides the
// first bucket whose le covers its value, in OpenMetrics exemplar form, and
// the payload still parses and lints cleanly.
func TestOpenMetricsExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("thor.http.fill")
	tr := testTraceID(0xcd)
	h.Observe(time.Microsecond) // a second bucket so attachment is selective
	h.ObserveTrace(3*time.Millisecond, tr)

	var sb strings.Builder
	if err := WriteOpenMetrics(&sb, reg, nil, false); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if !strings.Contains(body, `# {trace_id="`+tr.String()+`"}`) {
		t.Fatalf("exposition missing exemplar:\n%s", body)
	}

	exp, err := promtext.Parse(strings.NewReader(body))
	if err != nil {
		t.Fatalf("exemplar-bearing exposition does not parse: %v\n%s", err, body)
	}
	if probs := promtext.Lint(exp); len(probs) > 0 {
		t.Fatalf("exemplar-bearing exposition does not lint: %v\n%s", probs, body)
	}

	f := exp.Family("thor_http_fill_seconds")
	if f == nil {
		t.Fatal("histogram family missing")
	}
	var carriers []promtext.Sample
	for _, s := range f.Samples {
		if s.Exemplar != nil {
			carriers = append(carriers, s)
		}
	}
	if len(carriers) != 1 {
		t.Fatalf("exemplar on %d samples, want exactly 1: %+v", len(carriers), carriers)
	}
	c := carriers[0]
	if c.Name != "thor_http_fill_seconds_bucket" {
		t.Fatalf("exemplar on %q, want a _bucket sample", c.Name)
	}
	le, err := promtextParseLE(c.Label("le"))
	if err != nil || c.Exemplar.Value > le {
		t.Fatalf("exemplar value %g exceeds carrying bucket le %q", c.Exemplar.Value, c.Label("le"))
	}
	if c.Exemplar.Labels["trace_id"] != tr.String() {
		t.Fatalf("exemplar trace label = %q", c.Exemplar.Labels["trace_id"])
	}
	if !c.Exemplar.HasTimestamp || c.Exemplar.Timestamp <= 0 {
		t.Fatalf("exemplar timestamp missing: %+v", c.Exemplar)
	}
	// It rides the FIRST covering bucket: every lower bucket has a smaller le.
	for _, s := range f.Samples {
		if s.Name != c.Name || s.Exemplar != nil {
			continue
		}
		sle, err := promtextParseLE(s.Label("le"))
		if err == nil && sle < le && c.Exemplar.Value <= sle {
			t.Fatalf("exemplar skipped covering bucket le=%g for le=%g", sle, le)
		}
	}
}

// promtextParseLE mirrors promtext's le parsing for test assertions.
func promtextParseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// TestObserveTraceZeroAlloc gates the traced observe path: exemplar capture
// must add no allocations over plain Observe.
func TestObserveTraceZeroAlloc(t *testing.T) {
	var h Histogram
	tr := testTraceID(0x77)
	h.ObserveTrace(time.Millisecond, tr)
	allocs := testing.AllocsPerRun(100, func() {
		h.ObserveTrace(time.Millisecond, tr)
	})
	if allocs != 0 {
		t.Fatalf("ObserveTrace allocates %.1f times per op, want 0", allocs)
	}
}
