package obs

import (
	"sync"
	"time"
)

// Journal event kinds — the state transitions worth a timeline entry. Every
// kind is pre-registered as one thor.events{kind=…} counter series, so the
// /metrics exposition carries thor_events_total{kind="…"} without any
// per-append name formatting.
const (
	// EventBreaker records a circuit-breaker state change
	// (closed→open→half-open→…). Subject is the backend host, From/To the
	// breaker states.
	EventBreaker = "breaker"
	// EventSLO records the SLO engine flipping between healthy and degraded.
	// Subject names the violating streams on the degraded edge.
	EventSLO = "slo"
	// EventTableSwap records a live-table version swap. Previous/Version are
	// the old and new versions; Concepts lists the invalidated concepts.
	EventTableSwap = "table_swap"
	// EventDrain records drain lifecycle edges: a server beginning its drain
	// (To="begin"), finishing it (To="end"), and a superseded table version's
	// last reader finishing (Subject="table", Version set).
	EventDrain = "drain"
	// EventTopology records a topology load or reload; Subject summarizes
	// the shard layout.
	EventTopology = "topology"
	// EventProfiler records a profiler capture burst; Subject is the capture
	// reason ("degraded", "steady", "manual").
	EventProfiler = "profiler"
)

// journalKinds is the pre-registered kind set. Unknown kinds still append
// and count — they just pay one lazy registry resolution.
var journalKinds = []string{
	EventBreaker, EventSLO, EventTableSwap, EventDrain, EventTopology, EventProfiler,
}

// JournalEvent is one recorded state transition. The zero value of every
// optional field is elided from JSON, so each kind serializes only the fields
// it uses.
type JournalEvent struct {
	// Seq is the journal's monotonic per-process sequence number, assigned at
	// append. Together with Time it gives merged fleet timelines a total
	// order that survives wall-clock ties within one process.
	Seq uint64 `json:"seq"`
	// Time is the append wall-clock time.
	Time time.Time `json:"time"`
	// Kind classifies the transition (Event* constants).
	Kind string `json:"kind"`
	// Node attributes the event to a process. The journal leaves it empty —
	// the export envelope carries the node once — and mergers (thorctl
	// -events) stamp it per event when flattening fleets.
	Node string `json:"node,omitempty"`
	// Subject is what transitioned: a backend host, an SLO stream list, a
	// shard ID.
	Subject string `json:"subject,omitempty"`
	// From and To are the transition's endpoints ("closed"→"open",
	// "healthy"→"degraded", ""→"begin").
	From string `json:"from,omitempty"`
	// To is the state transitioned into.
	To string `json:"to,omitempty"`
	// TraceID is the trace that triggered the transition, when one exists —
	// the bridge from a timeline entry to a stitchable trace.
	TraceID string `json:"trace_id,omitempty"`
	// Version and Previous carry table versions on table_swap/drain events.
	Version uint64 `json:"version,omitempty"`
	// Previous is the superseded table version on table_swap events.
	Previous uint64 `json:"previous,omitempty"`
	// Concepts lists the concepts a table swap invalidated.
	Concepts []string `json:"concepts,omitempty"`
	// Detail carries free-form context (counts, reasons) preformatted by the
	// emitter — never formatted on the append path.
	Detail string `json:"detail,omitempty"`
}

// JournalConfig configures a Journal.
type JournalConfig struct {
	// Capacity bounds the ring; once full the newest events overwrite the
	// oldest. Zero defaults to 512.
	Capacity int
	// Node is the process's self-reported identity (host:port), carried on
	// the /debug/events export envelope.
	Node string
	// Registry, when set, receives one thor.events{kind=…} counter per kind.
	Registry *Registry
	// Now is the clock (default time.Now).
	Now func() time.Time
}

// DefaultJournalCapacity is the ring size for JournalConfig.Capacity <= 0.
const DefaultJournalCapacity = 512

// Journal is a bounded, mergeable ring of state-transition events: breaker
// flips, SLO degradations, table swaps, drains — the "what changed right
// before it" half of an incident timeline. Appends are allocation-free (the
// ring is preallocated and per-kind counters are resolved at construction),
// so journal hooks may sit on serving-path edges. A nil *Journal is a valid
// disabled journal.
type Journal struct {
	node string
	now  func() time.Time
	reg  *Registry

	// counters maps pre-registered kinds to their series counters. The map
	// is read-only after construction, so Append reads it without locking.
	counters map[string]*Counter

	mu   sync.Mutex
	ring []JournalEvent
	seq  uint64 // events ever appended
}

// NewJournal returns a journal with the given configuration.
func NewJournal(cfg JournalConfig) *Journal {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultJournalCapacity
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	j := &Journal{
		node:     cfg.Node,
		now:      cfg.Now,
		reg:      cfg.Registry,
		counters: make(map[string]*Counter, len(journalKinds)),
		ring:     make([]JournalEvent, cfg.Capacity),
	}
	for _, k := range journalKinds {
		j.counters[k] = cfg.Registry.Counter(LabeledName("thor.events", "kind", k))
	}
	return j
}

// Node returns the journal's self-reported process identity.
func (j *Journal) Node() string {
	if j == nil {
		return ""
	}
	return j.node
}

// Append records one event, assigning its sequence number and (when unset)
// its timestamp. Allocation-free for the pre-registered kinds: string fields
// are retained as passed, never formatted. Nil-safe.
func (j *Journal) Append(ev JournalEvent) {
	if j == nil {
		return
	}
	c := j.counters[ev.Kind]
	if c == nil && j.reg != nil {
		c = j.reg.Counter(LabeledName("thor.events", "kind", ev.Kind))
	}
	c.Add(1)
	if ev.Time.IsZero() {
		ev.Time = j.now()
	}
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	j.ring[(j.seq-1)%uint64(len(j.ring))] = ev
	j.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []JournalEvent {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := j.seq
	cap := uint64(len(j.ring))
	if n > cap {
		out := make([]JournalEvent, 0, cap)
		start := n % cap // oldest retained slot
		out = append(out, j.ring[start:]...)
		out = append(out, j.ring[:start]...)
		return out
	}
	out := make([]JournalEvent, n)
	copy(out, j.ring[:n])
	return out
}

// JournalExport is the /debug/events payload: one process's retained events
// plus the attribution a fleet merger needs.
type JournalExport struct {
	// Node is the process's self-reported identity ("" when unconfigured;
	// mergers then fall back to the address they fetched from).
	Node string `json:"node,omitempty"`
	// Total counts every event ever appended; Dropped = Total - len(Events).
	Total uint64 `json:"total"`
	// Dropped is the number of events overwritten in the ring.
	Dropped uint64 `json:"dropped"`
	// Events are the retained events, oldest first.
	Events []JournalEvent `json:"events"`
}

// Export captures the journal for serialization.
func (j *Journal) Export() JournalExport {
	events := j.Events()
	var total uint64
	if j != nil {
		j.mu.Lock()
		total = j.seq
		j.mu.Unlock()
	}
	return JournalExport{
		Node:    j.Node(),
		Total:   total,
		Dropped: total - uint64(len(events)),
		Events:  events,
	}
}
