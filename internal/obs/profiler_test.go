package obs

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
	"time"
)

// profilerForTest builds a fake-clock profiler with CPU capture disabled
// (heap + goroutine only) so bursts are instant and deterministic.
func profilerForTest(degraded *bool, now *time.Time, capacity int, steady time.Duration) *Profiler {
	return NewProfiler(ProfilerConfig{
		Degraded:    func() bool { return *degraded },
		CPUDuration: -1, // skip CPU: no sampling sleep in tests
		SteadyEvery: steady,
		Capacity:    capacity,
		Now:         func() time.Time { return *now },
	})
}

// TestProfilerDegradedEdgeTriggersOneBurst drives a fake-clock SLO-style
// degraded signal through Poll and asserts exactly one capture burst per
// healthy→degraded transition, however often the signal is polled.
func TestProfilerDegradedEdgeTriggersOneBurst(t *testing.T) {
	degraded := false
	now := time.Unix(5000, 0)
	p := profilerForTest(&degraded, &now, 32, -1)

	for i := 0; i < 5; i++ {
		p.Poll() // healthy: nothing captured
		now = now.Add(time.Second)
	}
	if got := len(p.Profiles()); got != 0 {
		t.Fatalf("healthy polls captured %d profiles, want 0", got)
	}

	degraded = true
	for i := 0; i < 10; i++ {
		p.Poll() // only the first poll sees the edge
		now = now.Add(time.Second)
	}
	profs := p.Profiles()
	if len(profs) != 2 { // heap + goroutine (CPU disabled)
		t.Fatalf("degraded transition captured %d profiles, want 2: %+v", len(profs), profs)
	}
	for _, pi := range profs {
		if pi.Reason != CaptureDegraded {
			t.Fatalf("profile reason = %q, want %q", pi.Reason, CaptureDegraded)
		}
	}

	// Recover, then degrade again: a second burst fires.
	degraded = false
	p.Poll()
	degraded = true
	p.Poll()
	if got := len(p.Profiles()); got != 4 {
		t.Fatalf("second transition: %d profiles, want 4", got)
	}
}

// TestProfilerSteadyCadence checks the low-cadence background capture fires
// once per SteadyEvery on the fake clock.
func TestProfilerSteadyCadence(t *testing.T) {
	degraded := false
	now := time.Unix(9000, 0)
	p := profilerForTest(&degraded, &now, 32, time.Minute)

	p.Poll() // 0s since construction: below cadence
	if got := len(p.Profiles()); got != 0 {
		t.Fatalf("early steady capture: %d profiles", got)
	}
	now = now.Add(61 * time.Second)
	p.Poll()
	if got := len(p.Profiles()); got != 2 {
		t.Fatalf("steady capture at cadence: %d profiles, want 2", got)
	}
	for _, pi := range p.Profiles() {
		if pi.Reason != CaptureSteady {
			t.Fatalf("reason = %q, want %q", pi.Reason, CaptureSteady)
		}
	}
	now = now.Add(10 * time.Second)
	p.Poll() // cadence not yet elapsed again
	if got := len(p.Profiles()); got != 2 {
		t.Fatalf("steady re-captured too soon: %d profiles", got)
	}
}

// TestProfilerRingEviction fills a small ring past capacity and asserts
// FIFO retention order.
func TestProfilerRingEviction(t *testing.T) {
	degraded := false
	now := time.Unix(100, 0)
	p := profilerForTest(&degraded, &now, 3, -1)

	for i := 0; i < 3; i++ { // 3 bursts × 2 profiles = 6 captures into a ring of 3
		p.CaptureNow()
		now = now.Add(time.Minute)
	}
	profs := p.Profiles()
	if len(profs) != 3 {
		t.Fatalf("ring holds %d profiles, want capacity 3", len(profs))
	}
	// Oldest first, and only the newest captures survive (seq 4,5,6).
	for i := 1; i < len(profs); i++ {
		if !profs[i].CapturedAt.Before(profs[i-1].CapturedAt) && infoSeq(profs[i].ID) <= infoSeq(profs[i-1].ID) {
			t.Fatalf("ring order broken: %+v", profs)
		}
	}
	if infoSeq(profs[0].ID) != 4 {
		t.Fatalf("oldest retained seq = %d, want 4 (earlier captures evicted): %+v", infoSeq(profs[0].ID), profs)
	}
	if _, _, ok := p.Profile("1-heap-manual"); ok {
		t.Fatalf("evicted profile still retrievable")
	}
}

// TestProfilerTraceCorrelation checks capture-time trace IDs are stamped
// onto the stored profiles.
func TestProfilerTraceCorrelation(t *testing.T) {
	degraded := true
	now := time.Unix(100, 0)
	p := NewProfiler(ProfilerConfig{
		Degraded:    func() bool { return degraded },
		TraceIDs:    func() []string { return []string{"t2", "t1"} },
		CPUDuration: -1,
		SteadyEvery: -1,
		Now:         func() time.Time { return now },
	})
	p.Poll()
	profs := p.Profiles()
	if len(profs) == 0 {
		t.Fatal("no profiles captured")
	}
	for _, pi := range profs {
		if len(pi.TraceIDs) != 2 || pi.TraceIDs[0] != "t1" || pi.TraceIDs[1] != "t2" {
			t.Fatalf("trace IDs not stamped/sorted: %+v", pi)
		}
	}
}

// checkPprof asserts data is a parseable pprof payload: gzipped protobuf
// whose top-level fields walk cleanly.
func checkPprof(t *testing.T, data []byte) {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("profile is not gzipped: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("profile does not decompress: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("profile is empty")
	}
	// Walk the top-level protobuf fields; a valid profile.proto message
	// consists of length-delimited and varint fields only.
	for off := 0; off < len(raw); {
		tag, n := binaryUvarint(raw[off:])
		if n <= 0 {
			t.Fatalf("bad protobuf tag at %d", off)
		}
		off += n
		switch tag & 7 {
		case 0: // varint
			_, vn := binaryUvarint(raw[off:])
			if vn <= 0 {
				t.Fatalf("bad varint at %d", off)
			}
			off += vn
		case 2: // length-delimited
			l, ln := binaryUvarint(raw[off:])
			if ln <= 0 || off+ln+int(l) > len(raw) {
				t.Fatalf("bad length-delimited field at %d", off)
			}
			off += ln + int(l)
		default:
			t.Fatalf("unexpected wire type %d at %d", tag&7, off)
		}
	}
}

// binaryUvarint is encoding/binary.Uvarint, local to keep the import list
// flat.
func binaryUvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
		if s >= 64 {
			return 0, -1
		}
	}
	return 0, 0
}

// TestProfilesEndpointRoundTrip captures a burst and fetches each profile
// back through /debug/profiles/{id}, asserting parseable pprof payloads
// and a sane listing.
func TestProfilesEndpointRoundTrip(t *testing.T) {
	degraded := true
	now := time.Unix(100, 0)
	p := profilerForTest(&degraded, &now, 8, -1)
	p.Poll()

	srv := httptest.NewServer(DebugHandler(DebugOptions{Profiler: p}))
	defer srv.Close()

	var listing []ProfileInfo
	if err := json.Unmarshal(get(t, srv, "/debug/profiles"), &listing); err != nil {
		t.Fatalf("listing not JSON: %v", err)
	}
	if len(listing) != 2 {
		t.Fatalf("listing has %d profiles, want 2", len(listing))
	}
	for _, pi := range listing {
		checkPprof(t, get(t, srv, "/debug/profiles/"+pi.ID))
	}

	resp, err := srv.Client().Get(srv.URL + "/debug/profiles/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("missing profile: status %d, want 404", resp.StatusCode)
	}
}

// TestProfilerCPUCapture exercises the real CPU profile path once, with a
// tiny sampling window, and asserts the payload parses.
func TestProfilerCPUCapture(t *testing.T) {
	p := NewProfiler(ProfilerConfig{
		CPUDuration: 20 * time.Millisecond,
		SteadyEvery: -1,
	})
	infos := p.CaptureNow()
	if len(infos) != 3 {
		t.Fatalf("manual burst captured %d profiles, want 3 (cpu, heap, goroutine): %+v", len(infos), infos)
	}
	for _, pi := range infos {
		_, data, ok := p.Profile(pi.ID)
		if !ok {
			t.Fatalf("profile %s not retrievable", pi.ID)
		}
		checkPprof(t, data)
	}
}

// TestProfilerNil checks the nil profiler no-ops across the whole API.
func TestProfilerNil(t *testing.T) {
	var p *Profiler
	p.Poll()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Run(ctx)
	if p.Profiles() != nil || p.CaptureNow() != nil {
		t.Fatal("nil profiler returned data")
	}
	if _, _, ok := p.Profile("x"); ok {
		t.Fatal("nil profiler resolved a profile")
	}
}
