package obs

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing (or freely adjusted) int64 metric.
// The zero value is ready to use; all methods are nil-safe.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta. No-op on a nil counter.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an instantaneous int64 level — a queue depth, an in-flight
// count — that moves both ways, unlike a Counter's monotone story. The zero
// value is ready to use; all methods are nil-safe.
type Gauge struct {
	n atomic.Int64
}

// Set replaces the gauge's value. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.n.Store(v)
}

// Add moves the gauge by delta (negative deltas decrease it). No-op on a
// nil gauge.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.n.Add(delta)
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}

// FloatGauge is an instantaneous float64 level — a ratio, a density, a
// rate — for signals that do not fit an integer Gauge. The zero value is
// ready to use; all methods are nil-safe and lock-free (the value is stored
// as IEEE-754 bits in an atomic word).
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value. No-op on a nil gauge.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current level (0 on a nil gauge).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// NumBuckets is the fixed number of histogram buckets: 27 log-scaled
// finite buckets (1µs, 2µs, 4µs, … ~67s) plus one overflow bucket.
const NumBuckets = 28

// BucketBound returns the inclusive upper bound of bucket i: 1µs << i.
// The last bucket (i = NumBuckets-1) is unbounded and reported as "+Inf".
func BucketBound(i int) time.Duration {
	return time.Microsecond << i
}

// bucketIndex maps a duration to its bucket: the smallest i such that the
// duration, truncated to whole microseconds, is < 2^i µs. Sub-microsecond
// observations land in bucket 0; anything beyond the last finite bound lands
// in the overflow bucket.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	us := uint64(d / time.Microsecond)
	i := 0
	for us >= 1<<uint(i) && i < NumBuckets-1 {
		i++
	}
	return i
}

// Histogram is a fixed-bucket, log-scaled latency histogram. All updates are
// lock-free atomic operations; the zero value is ready to use and all methods
// are nil-safe.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds+1; 0 until the first observation
	max     atomic.Int64 // nanoseconds

	// Exemplar slot: the trace ID of a recent bucket-max observation, kept
	// consistent across its four words by a seqlock (exSeq odd while a write
	// is in flight, 0 until the first capture). Writers that lose the CAS
	// simply drop their candidate — exemplars are best-effort — so the slot
	// adds no locking and no allocation to the observe path.
	exSeq  atomic.Uint64
	exHi   atomic.Uint64 // trace ID bytes 0..7, big-endian
	exLo   atomic.Uint64 // trace ID bytes 8..15, big-endian
	exNS   atomic.Int64  // observed duration, nanoseconds
	exUnix atomic.Int64  // capture wall clock, unix nanoseconds
}

// Observe records one duration. Negative durations clamp to zero. No-op on a
// nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	// min is stored as ns+1 so the zero value means "no observations yet".
	for {
		cur := h.min.Load()
		if cur != 0 && cur-1 <= ns {
			break
		}
		if h.min.CompareAndSwap(cur, ns+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= ns || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start))
}

// exemplarMaxAge bounds how long a retained exemplar outranks smaller-bucket
// observations: past it, any traced observation refreshes the slot so the
// exposed trace ID stays recent enough to still be in a flight recorder.
const exemplarMaxAge = int64(60 * time.Second)

// ObserveTrace records one duration like Observe and, when the observation
// comes from a traced request, offers its trace ID as the histogram's
// exemplar. The slot keeps the trace of a recent bucket-max observation: a
// new observation replaces it when it lands in an equal-or-higher bucket, or
// when the retained exemplar has gone stale. Allocation-free; no-op exemplar
// capture on a zero trace ID.
func (h *Histogram) ObserveTrace(d time.Duration, trace TraceID) {
	if h == nil {
		return
	}
	h.Observe(d)
	if trace.IsZero() {
		return
	}
	if d < 0 {
		d = 0
	}
	now := time.Now().UnixNano()
	s := h.exSeq.Load()
	if s&1 == 1 {
		return // another writer is mid-capture; drop this candidate
	}
	if s != 0 &&
		bucketIndex(d) < bucketIndex(time.Duration(h.exNS.Load())) &&
		now-h.exUnix.Load() < exemplarMaxAge {
		return
	}
	if !h.exSeq.CompareAndSwap(s, s+1) {
		return
	}
	h.exHi.Store(binary.BigEndian.Uint64(trace[:8]))
	h.exLo.Store(binary.BigEndian.Uint64(trace[8:]))
	h.exNS.Store(int64(d))
	h.exUnix.Store(now)
	h.exSeq.Store(s + 2)
}

// Exemplar links a histogram to one recent traced observation — the
// OpenMetrics exemplar the exposition renders on the matching bucket line.
type Exemplar struct {
	// TraceID is the observation's trace (32 hex digits).
	TraceID string `json:"traceId"`
	// ValueSeconds is the observed duration in seconds.
	ValueSeconds float64 `json:"valueSeconds"`
	// Time is when the exemplar was captured.
	Time time.Time `json:"time"`
}

// exemplar reads the slot consistently (retrying a bounded number of times
// if captures race the read); nil when no traced observation was recorded.
func (h *Histogram) exemplar() *Exemplar {
	if h == nil {
		return nil
	}
	for tries := 0; tries < 8; tries++ {
		s1 := h.exSeq.Load()
		if s1 == 0 {
			return nil
		}
		if s1&1 == 1 {
			continue
		}
		hi, lo := h.exHi.Load(), h.exLo.Load()
		ns, unix := h.exNS.Load(), h.exUnix.Load()
		if h.exSeq.Load() != s1 {
			continue
		}
		var t TraceID
		binary.BigEndian.PutUint64(t[:8], hi)
		binary.BigEndian.PutUint64(t[8:], lo)
		return &Exemplar{
			TraceID:      t.String(),
			ValueSeconds: time.Duration(ns).Seconds(),
			Time:         time.Unix(0, unix),
		}
	}
	return nil
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// snapshot captures a consistent-enough view of the histogram (individual
// loads are atomic; the histogram keeps updating concurrently).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{}
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	sum := time.Duration(h.sum.Load())
	s.SumSeconds = sum.Seconds()
	if s.Count > 0 {
		s.MeanSeconds = sum.Seconds() / float64(s.Count)
		if min := h.min.Load(); min > 0 {
			s.MinSeconds = time.Duration(min - 1).Seconds()
		}
		s.MaxSeconds = time.Duration(h.max.Load()).Seconds()
	}
	counts := make([]int64, NumBuckets)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	var cum int64
	for i, n := range counts {
		cum += n
		// Empty finite buckets are elided for compactness; the overflow
		// bucket is always present so every snapshot carries an explicit
		// "+Inf" row whose Cumulative equals Count — the invariant the
		// OpenMetrics exposition (and its agreement test) relies on.
		if n == 0 && i < NumBuckets-1 {
			continue
		}
		le := "+Inf"
		if i < NumBuckets-1 {
			le = BucketBound(i).String()
		}
		s.Buckets = append(s.Buckets, BucketCount{LE: le, Count: n, Cumulative: cum})
	}
	s.P50Seconds = quantile(counts, s.Count, 0.50)
	s.P95Seconds = quantile(counts, s.Count, 0.95)
	s.P99Seconds = quantile(counts, s.Count, 0.99)
	s.Exemplar = h.exemplar()
	return s
}

// quantile estimates the q-quantile from bucket counts: the upper bound of
// the bucket where the cumulative count reaches q·total. The overflow bucket
// reports the largest finite bound.
func quantile(counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range counts {
		cum += n
		if cum >= target {
			if i >= NumBuckets-1 {
				i = NumBuckets - 2
			}
			return BucketBound(i).Seconds()
		}
	}
	return BucketBound(NumBuckets - 2).Seconds()
}

// BucketCount is one histogram bucket in a snapshot. Non-empty finite
// buckets are listed in bound order; the overflow ("+Inf") bucket is always
// present, even when empty.
type BucketCount struct {
	// LE is the bucket's inclusive upper bound ("1µs", "2ms", …, "+Inf").
	LE string `json:"le"`
	// Count is the number of observations in this bucket alone.
	Count int64 `json:"count"`
	// Cumulative is the number of observations at or below LE — the
	// Prometheus-style cumulative count. The "+Inf" bucket's Cumulative
	// always equals the histogram's Count.
	Cumulative int64 `json:"cumulative"`
}

// HistogramSnapshot is the JSON-serializable state of one histogram.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// SumSeconds and MeanSeconds are the total and average observation.
	SumSeconds float64 `json:"sumSeconds"`
	// MeanSeconds is SumSeconds / Count.
	MeanSeconds float64 `json:"meanSeconds"`
	// MinSeconds and MaxSeconds are the observed extremes.
	MinSeconds float64 `json:"minSeconds"`
	// MaxSeconds is the largest observation.
	MaxSeconds float64 `json:"maxSeconds"`
	// P50Seconds, P95Seconds and P99Seconds are bucket-interpolated
	// percentiles.
	P50Seconds float64 `json:"p50Seconds"`
	// P95Seconds is the 95th percentile.
	P95Seconds float64 `json:"p95Seconds"`
	// P99Seconds is the 99th percentile.
	P99Seconds float64 `json:"p99Seconds"`
	// Buckets is the raw distribution.
	Buckets []BucketCount `json:"buckets,omitempty"`
	// Exemplar is the trace link of a recent bucket-max observation (absent
	// until a traced observation is recorded via ObserveTrace).
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Snapshot is a point-in-time JSON-serializable view of a Registry.
type Snapshot struct {
	// Counters maps counter names to their current counts.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps gauge names to their current levels (omitted when no
	// gauge is registered).
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// FloatGauges maps float-gauge names to their current levels (omitted
	// when none is registered).
	FloatGauges map[string]float64 `json:"floatGauges,omitempty"`
	// Histograms maps histogram names to their snapshots.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Distributions maps distribution names to their quantile summaries
	// (omitted when none is registered).
	Distributions map[string]DistributionSnapshot `json:"distributions,omitempty"`
}

// Registry holds named counters, gauges, float gauges, histograms and
// distributions. A nil *Registry is a valid disabled registry: every
// accessor returns a nil instrument whose methods no-op without allocating.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*Histogram
	dists    map[string]*Distribution
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		fgauges:  make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
		dists:    make(map[string]*Distribution),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil (a
// valid no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
// Returns nil (a valid no-op gauge) on a nil registry.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.fgauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.fgauges[name]; g == nil {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// Distribution returns the named distribution, creating it on first use.
// Returns nil (a valid no-op distribution) on a nil registry.
func (r *Registry) Distribution(name string) *Distribution {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	d := r.dists[name]
	r.mu.RUnlock()
	if d != nil {
		return d
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d = r.dists[name]; d == nil {
		d = &Distribution{}
		r.dists[name] = d
	}
	return d
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil (a valid no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Names returns the sorted names of all registered instruments.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0,
		len(r.counters)+len(r.gauges)+len(r.fgauges)+len(r.hists)+len(r.dists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.fgauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.dists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures the current state of every instrument. Safe to call
// while the registry is being updated; returns an empty snapshot on nil.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	fgauges := make(map[string]*FloatGauge, len(r.fgauges))
	for n, g := range r.fgauges {
		fgauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	dists := make(map[string]*Distribution, len(r.dists))
	for n, d := range r.dists {
		dists[n] = d
	}
	r.mu.RUnlock()
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for n, g := range gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(fgauges) > 0 {
		s.FloatGauges = make(map[string]float64, len(fgauges))
		for n, g := range fgauges {
			s.FloatGauges[n] = g.Value()
		}
	}
	for n, h := range hists {
		s.Histograms[n] = h.snapshot()
	}
	if len(dists) > 0 {
		s.Distributions = make(map[string]DistributionSnapshot, len(dists))
		for n, d := range dists {
			s.Distributions[n] = d.Snapshot()
		}
	}
	return s
}
