package obs

import (
	"runtime"
	"testing"
	"time"
)

// flapSLO builds an SLO engine that a test can flip between degraded and
// healthy deterministically: errored observations burn the budget
// immediately, and advancing the clock past the window ages them out.
func flapSLO(clk *testClock) *SLO {
	return NewSLO(SLOConfig{
		Window:     time.Second,
		Slices:     2,
		MinSamples: 1,
		Now:        clk.Now,
	})
}

// degrade pushes enough errored observations to violate the error budget.
func degrade(s *SLO) {
	for i := 0; i < 4; i++ {
		s.Observe("fill", 5*time.Millisecond, true)
	}
}

// recover ages every observation out of the window.
func recoverSLO(s *SLO, clk *testClock) {
	clk.advance(2 * time.Second)
}

// TestProfilerOneBurstPerDegradedEdge pins the edge-triggered contract under
// rapid flapping: no matter how many polls land while the signal is up, a
// burst fires exactly once per healthy→degraded transition — a flapping SLO
// must not turn into a profile storm.
func TestProfilerOneBurstPerDegradedEdge(t *testing.T) {
	clk := &testClock{now: time.Unix(1700000000, 0)}
	slo := flapSLO(clk)
	p := NewProfiler(ProfilerConfig{
		Degraded:    slo.Degraded,
		SteadyEvery: -1, // isolate the degraded trigger
		CPUDuration: -1, // heap+goroutine only: no 250ms sleep per burst
		Capacity:    8,
		Now:         clk.Now,
	})

	maxSeq := func() int64 {
		var max int64 = -1
		for _, info := range p.Profiles() {
			if s := infoSeq(info.ID); s > max {
				max = s
			}
		}
		return max
	}

	if p.Poll(); maxSeq() != -1 {
		t.Fatal("burst fired while healthy")
	}

	degrade(slo)
	if !slo.Degraded() {
		t.Fatal("SLO not degraded after errored observations")
	}
	p.Poll()
	after1 := maxSeq()
	if after1 < 0 {
		t.Fatal("no burst on the healthy→degraded edge")
	}
	// Polls while the signal stays up are level, not edge: no new captures.
	for i := 0; i < 10; i++ {
		p.Poll()
	}
	if got := maxSeq(); got != after1 {
		t.Fatalf("burst storm while degraded: seq %d → %d", after1, got)
	}

	// Recovery alone fires nothing; the NEXT degraded edge fires exactly one
	// more burst.
	recoverSLO(slo, clk)
	if slo.Degraded() {
		t.Fatal("SLO still degraded after the window aged out")
	}
	p.Poll()
	if got := maxSeq(); got != after1 {
		t.Fatalf("burst fired on the degraded→healthy edge: seq %d → %d", after1, got)
	}
	degrade(slo)
	p.Poll()
	after2 := maxSeq()
	if after2 <= after1 {
		t.Fatal("no burst on the second healthy→degraded edge")
	}
	p.Poll()
	if got := maxSeq(); got != after2 {
		t.Fatalf("extra burst on a level poll: seq %d → %d", after2, got)
	}
}

// TestSLOFlappingThousandEdgesNoLeaks drives 1k degrade↔recover flaps
// through the SLO engine and the profiler and asserts (a) exactly one burst
// per edge across the whole run and (b) the pair leaks no goroutines — the
// degraded signal path must be allocation- and goroutine-clean however often
// readiness flaps.
func TestSLOFlappingThousandEdgesNoLeaks(t *testing.T) {
	clk := &testClock{now: time.Unix(1700000000, 0)}
	slo := flapSLO(clk)
	p := NewProfiler(ProfilerConfig{
		Degraded:    slo.Degraded,
		SteadyEvery: -1,
		CPUDuration: -1,
		Capacity:    4,
		Now:         clk.Now,
	})

	before := runtime.NumGoroutine()
	seen := int64(0) // profile seq numbers start at 1
	for flap := 0; flap < 1000; flap++ {
		degrade(slo)
		// A real poller lands multiple times per state; 3 polls per phase
		// exercises the level-vs-edge distinction on every flap.
		for i := 0; i < 3; i++ {
			p.Poll()
		}
		var max int64 = -1
		for _, info := range p.Profiles() {
			if s := infoSeq(info.ID); s > max {
				max = s
			}
		}
		if max <= seen {
			t.Fatalf("flap %d: no burst on the degraded edge", flap)
		}
		// One burst = 2 profiles (heap + goroutine; CPU disabled).
		if max-seen > 2 {
			t.Fatalf("flap %d: %d profiles captured, want 2 (one burst)", flap, max-seen)
		}
		seen = max

		recoverSLO(slo, clk)
		for i := 0; i < 3; i++ {
			p.Poll()
		}
		for _, info := range p.Profiles() {
			if s := infoSeq(info.ID); s > seen {
				t.Fatalf("flap %d: burst fired while healthy", flap)
			}
		}
	}
	// Neither the SLO engine nor the profiler spawns goroutines on the Poll
	// path; allow slack for runtime background goroutines.
	runtime.GC()
	if after := runtime.NumGoroutine(); after > before+3 {
		t.Fatalf("goroutine leak across 1k flaps: %d → %d", before, after)
	}
}
