package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Profile reasons: why a capture burst fired.
const (
	// CaptureDegraded marks profiles captured on a healthy→degraded SLO
	// transition.
	CaptureDegraded = "degraded"
	// CaptureSteady marks low-cadence background captures.
	CaptureSteady = "steady"
	// CaptureManual marks captures requested via CaptureNow.
	CaptureManual = "manual"
)

// ProfilerConfig configures a Profiler. Every zero value has a usable
// default.
type ProfilerConfig struct {
	// Degraded reports whether the process is currently degraded; typically
	// (*SLO).Degraded. A capture burst fires on each false→true edge. Nil
	// disables degraded-triggered capture.
	Degraded func() bool
	// TraceIDs returns the trace IDs currently retained by the flight
	// recorder; they are stamped onto each captured profile so a profile can
	// be correlated with the traces in flight when it was taken. Nil leaves
	// profiles uncorrelated.
	TraceIDs func() []string
	// SteadyEvery is the background capture cadence while healthy. Zero
	// defaults to 10 minutes; negative disables steady capture.
	SteadyEvery time.Duration
	// PollInterval is how often Run polls the degraded signal. Zero
	// defaults to 1s.
	PollInterval time.Duration
	// CPUDuration is how long each CPU profile samples. Zero defaults to
	// 250ms; negative skips CPU profiles (heap and goroutine only).
	CPUDuration time.Duration
	// Capacity bounds the in-memory profile ring; the oldest capture is
	// evicted first. Zero defaults to 32 profiles.
	Capacity int
	// OnBurst, when set, fires once per capture burst (not per profile)
	// with the burst reason — the seam the daemon uses to journal profiler
	// activity. It runs on the capturing goroutine, before the profiles of
	// the burst are taken.
	OnBurst func(reason string)
	// Now overrides the clock — the deterministic test seam. Nil uses
	// time.Now.
	Now func() time.Time
}

func (c ProfilerConfig) withDefaults() ProfilerConfig {
	if c.SteadyEvery == 0 {
		c.SteadyEvery = 10 * time.Minute
	}
	if c.PollInterval <= 0 {
		c.PollInterval = time.Second
	}
	if c.CPUDuration == 0 {
		c.CPUDuration = 250 * time.Millisecond
	}
	if c.Capacity <= 0 {
		c.Capacity = 32
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// ProfileInfo describes one retained profile (without its payload).
type ProfileInfo struct {
	// ID is the retrieval key for /debug/profiles/{id}.
	ID string `json:"id"`
	// Kind is the profile type: "cpu", "heap" or "goroutine".
	Kind string `json:"kind"`
	// Reason is why the capture fired: "degraded", "steady" or "manual".
	Reason string `json:"reason"`
	// CapturedAt is the capture wall-clock time.
	CapturedAt time.Time `json:"capturedAt"`
	// SizeBytes is the payload length.
	SizeBytes int `json:"sizeBytes"`
	// TraceIDs are the flight-recorder trace IDs retained at capture time.
	TraceIDs []string `json:"traceIds,omitempty"`
}

// storedProfile pairs a listing entry with its pprof payload.
type storedProfile struct {
	info ProfileInfo
	data []byte
}

// Profiler captures pprof profiles (CPU, heap, goroutine) into a bounded
// in-memory ring. Captures are edge-triggered by the SLO degraded signal —
// one burst per healthy→degraded transition — plus an optional low steady
// cadence, so the ring holds evidence from around the moment things went
// wrong rather than whatever happened most recently. A nil *Profiler is
// valid and no-ops everywhere.
type Profiler struct {
	cfg ProfilerConfig

	mu          sync.Mutex
	ring        []storedProfile
	seq         int64
	wasDegraded bool
	lastSteady  time.Time
	capturing   bool
}

// NewProfiler returns a stopped profiler; drive it with Run (production) or
// Poll (tests, custom schedulers).
func NewProfiler(cfg ProfilerConfig) *Profiler {
	cfg = cfg.withDefaults()
	// Start the steady timer at construction so the first background capture
	// lands one full cadence in, not on the first poll.
	return &Profiler{cfg: cfg, lastSteady: cfg.Now()}
}

// Run polls the degraded signal every PollInterval until ctx is cancelled.
// It blocks; run it in its own goroutine. No-op on a nil profiler.
func (p *Profiler) Run(ctx context.Context) {
	if p == nil {
		return
	}
	t := time.NewTicker(p.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.Poll()
		}
	}
}

// Poll evaluates the capture triggers once: a burst fires on a
// healthy→degraded edge, or when SteadyEvery has elapsed since the last
// steady capture. Exactly one burst fires per degraded transition no matter
// how often Poll runs while the signal stays up. Safe for concurrent use;
// no-op on a nil profiler.
func (p *Profiler) Poll() {
	if p == nil {
		return
	}
	now := p.cfg.Now()
	degraded := p.cfg.Degraded != nil && p.cfg.Degraded()

	p.mu.Lock()
	reason := ""
	switch {
	case degraded && !p.wasDegraded:
		reason = CaptureDegraded
	case p.cfg.SteadyEvery > 0 && now.Sub(p.lastSteady) >= p.cfg.SteadyEvery:
		reason = CaptureSteady
	}
	p.wasDegraded = degraded
	if reason == "" || p.capturing {
		p.mu.Unlock()
		return
	}
	p.capturing = true
	// Any burst resets the steady timer: a degraded capture is recent
	// evidence too.
	p.lastSteady = now
	p.mu.Unlock()

	p.capture(reason, now)

	p.mu.Lock()
	p.capturing = false
	p.mu.Unlock()
}

// CaptureNow fires one manual capture burst and returns the infos of the
// profiles it stored. No-op on a nil profiler.
func (p *Profiler) CaptureNow() []ProfileInfo {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	if p.capturing {
		p.mu.Unlock()
		return nil
	}
	p.capturing = true
	before := p.seq
	p.mu.Unlock()

	p.capture(CaptureManual, p.cfg.Now())

	p.mu.Lock()
	defer p.mu.Unlock()
	p.capturing = false
	var out []ProfileInfo
	for _, sp := range p.ring {
		if infoSeq(sp.info.ID) > before {
			out = append(out, sp.info)
		}
	}
	return out
}

// infoSeq parses the leading sequence number out of a profile ID (IDs are
// "<seq>-<kind>-<reason>"); -1 when unparseable.
func infoSeq(id string) int64 {
	var seq int64
	if _, err := fmt.Sscanf(id, "%d-", &seq); err != nil {
		return -1
	}
	return seq
}

// capture performs one burst: CPU (unless disabled), heap and goroutine
// profiles, each stored with the recorder's current trace IDs.
func (p *Profiler) capture(reason string, now time.Time) {
	if p.cfg.OnBurst != nil {
		p.cfg.OnBurst(reason)
	}
	var traceIDs []string
	if p.cfg.TraceIDs != nil {
		traceIDs = p.cfg.TraceIDs()
		sort.Strings(traceIDs)
	}
	if p.cfg.CPUDuration > 0 {
		var buf bytes.Buffer
		// StartCPUProfile fails if another CPU profile is running (e.g. a
		// live /debug/pprof/profile scrape); skip CPU rather than block.
		if err := pprof.StartCPUProfile(&buf); err == nil {
			time.Sleep(p.cfg.CPUDuration)
			pprof.StopCPUProfile()
			p.store("cpu", reason, now, traceIDs, buf.Bytes())
		}
	}
	for _, kind := range []string{"heap", "goroutine"} {
		prof := pprof.Lookup(kind)
		if prof == nil {
			continue
		}
		var buf bytes.Buffer
		if err := prof.WriteTo(&buf, 0); err != nil {
			continue
		}
		p.store(kind, reason, now, traceIDs, buf.Bytes())
	}
}

// store appends one profile to the ring, evicting the oldest entry when the
// ring is full.
func (p *Profiler) store(kind, reason string, now time.Time, traceIDs []string, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	info := ProfileInfo{
		ID:         fmt.Sprintf("%d-%s-%s", p.seq, kind, reason),
		Kind:       kind,
		Reason:     reason,
		CapturedAt: now,
		SizeBytes:  len(data),
		TraceIDs:   traceIDs,
	}
	p.ring = append(p.ring, storedProfile{info: info, data: data})
	if len(p.ring) > p.cfg.Capacity {
		p.ring = append(p.ring[:0], p.ring[len(p.ring)-p.cfg.Capacity:]...)
	}
}

// Profiles lists the retained profiles, oldest first. Empty on a nil
// profiler.
func (p *Profiler) Profiles() []ProfileInfo {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ProfileInfo, len(p.ring))
	for i, sp := range p.ring {
		out[i] = sp.info
	}
	return out
}

// Profile returns one retained profile's info and raw pprof payload by ID.
func (p *Profiler) Profile(id string) (ProfileInfo, []byte, bool) {
	if p == nil {
		return ProfileInfo{}, nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, sp := range p.ring {
		if sp.info.ID == id {
			return sp.info, sp.data, true
		}
	}
	return ProfileInfo{}, nil, false
}

// handler serves the profile ring:
//
//	/debug/profiles       — JSON listing (ProfileInfo, oldest first)
//	/debug/profiles/{id}  — one profile's raw pprof payload
func (p *Profiler) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/debug/profiles")
		id = strings.TrimPrefix(id, "/")
		if id == "" {
			list := p.Profiles()
			if list == nil {
				list = []ProfileInfo{}
			}
			writeIndentedJSON(w, list)
			return
		}
		info, data, ok := p.Profile(id)
		if !ok {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusNotFound)
			body, _ := json.Marshal(map[string]string{
				"error": fmt.Sprintf("profile %q not retained", id),
			})
			_, _ = w.Write(append(body, '\n'))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.pprof", info.ID))
		_, _ = w.Write(data)
	})
}
