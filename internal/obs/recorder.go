package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// RecorderOptions configure a flight Recorder. Every zero value has a
// serving-grade default.
type RecorderOptions struct {
	// SlowThreshold marks a trace slow when its root span meets or exceeds
	// it. Zero defaults to 250ms.
	SlowThreshold time.Duration
	// KeepInteresting bounds the retained slow/errored/shed/quarantined
	// traces. Zero defaults to 256.
	KeepInteresting int
	// KeepHealthy bounds the retained healthy traces (most recent first
	// out). Zero defaults to 64.
	KeepHealthy int
	// MaxSpansPerTrace bounds one trace's span count; further spans are
	// counted in TraceSummary.SpansDropped. Zero defaults to 512.
	MaxSpansPerTrace int
	// MaxActive bounds the number of in-flight (unfinished) traces buffered
	// at once; beyond it the oldest in-flight trace is discarded. Zero
	// defaults to 1024.
	MaxActive int
}

func (o RecorderOptions) withDefaults() RecorderOptions {
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = 250 * time.Millisecond
	}
	if o.KeepInteresting <= 0 {
		o.KeepInteresting = 256
	}
	if o.KeepHealthy <= 0 {
		o.KeepHealthy = 64
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 512
	}
	if o.MaxActive <= 0 {
		o.MaxActive = 1024
	}
	return o
}

// Retention reasons a finished trace is classified under. "healthy" traces
// compete only with each other for buffer space; every other class is
// retained at the expense of healthy traces, never the reverse — the
// tail-sampling invariant the recorder tests pin down.
const (
	// ReasonSlow marks traces whose root span met the slow threshold.
	ReasonSlow = "slow"
	// ReasonError marks traces containing an error event or attribute.
	ReasonError = "error"
	// ReasonShed marks traces of requests refused by admission control.
	ReasonShed = "shed"
	// ReasonQuarantine marks traces in which a document was quarantined.
	ReasonQuarantine = "quarantine"
	// ReasonHealthy marks traces with nothing anomalous about them.
	ReasonHealthy = "healthy"
)

// RecordedTrace is one finished, retained trace.
type RecordedTrace struct {
	// TraceID is the trace's identifier (hex).
	TraceID string `json:"traceId"`
	// Root is the root span's name.
	Root string `json:"root"`
	// Start is the root span's start time.
	Start time.Time `json:"start"`
	// Duration is the root span's elapsed time.
	Duration time.Duration `json:"durationNanos"`
	// Reason is the retention classification (Reason* constants).
	Reason string `json:"reason"`
	// SpansDropped counts spans discarded beyond MaxSpansPerTrace.
	SpansDropped int `json:"spansDropped,omitempty"`
	// Spans are the trace's retained spans in recording (end-time) order.
	Spans []Span `json:"spans"`
}

// TraceSummary is one row of the /debug/traces listing.
type TraceSummary struct {
	// TraceID is the trace's identifier (hex).
	TraceID string `json:"traceId"`
	// Root is the root span's name.
	Root string `json:"root"`
	// Start is the root span's start time.
	Start time.Time `json:"start"`
	// DurationMS is the root span's elapsed time in milliseconds.
	DurationMS float64 `json:"durationMs"`
	// Reason is the retention classification.
	Reason string `json:"reason"`
	// Spans is the retained span count.
	Spans int `json:"spans"`
	// SpansDropped counts spans discarded beyond the per-trace bound.
	SpansDropped int `json:"spansDropped,omitempty"`
}

// activeTrace buffers one in-flight trace's spans until its root ends.
type activeTrace struct {
	id      string
	spans   []Span
	dropped int
	seq     uint64 // admission order, for oldest-first eviction
}

// Recorder is the tail-sampling flight recorder: it buffers every span of
// every in-flight trace, and decides at trace completion — when the root
// span ends — whether to keep the trace. Slow, errored, shed and quarantined
// traces are always retained (up to KeepInteresting, FIFO among themselves);
// healthy traces fill a separate, smaller buffer, so an interesting trace is
// never evicted to make room for a healthy one. A nil *Recorder is a valid
// disabled recorder.
type Recorder struct {
	mu   sync.Mutex
	opts RecorderOptions

	active map[string]*activeTrace
	seq    uint64

	interesting []RecordedTrace // FIFO ring, newest last
	healthy     []RecordedTrace // FIFO ring, newest last

	finished uint64 // traces ever completed
	dropped  uint64 // finished traces evicted (or active traces discarded)
}

// NewRecorder returns a flight recorder with the given options.
func NewRecorder(opts RecorderOptions) *Recorder {
	return &Recorder{
		opts:   opts.withDefaults(),
		active: make(map[string]*activeTrace),
	}
}

// add buffers one span into its in-flight trace, creating the trace on first
// sight (spans can end before the root does — they usually do).
func (r *Recorder) add(sp Span) {
	if r == nil || sp.TraceID == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	at := r.active[sp.TraceID]
	if at == nil {
		if len(r.active) >= r.opts.MaxActive {
			r.evictOldestActiveLocked()
		}
		r.seq++
		at = &activeTrace{id: sp.TraceID, seq: r.seq}
		r.active[sp.TraceID] = at
	}
	if len(at.spans) >= r.opts.MaxSpansPerTrace {
		at.dropped++
		return
	}
	at.spans = append(at.spans, sp)
}

// evictOldestActiveLocked discards the in-flight trace admitted earliest —
// the one most likely abandoned by a vanished client.
func (r *Recorder) evictOldestActiveLocked() {
	var oldest *activeTrace
	for _, at := range r.active {
		if oldest == nil || at.seq < oldest.seq {
			oldest = at
		}
	}
	if oldest != nil {
		delete(r.active, oldest.id)
		r.dropped++
	}
}

// finish completes a trace: its buffered spans are classified and the trace
// is retained or dropped per the tail-sampling policy. root is the trace's
// root span (already recorded via add).
func (r *Recorder) finish(traceID string, root Span) {
	if r == nil || traceID == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	at := r.active[traceID]
	delete(r.active, traceID)
	rt := RecordedTrace{
		TraceID:  traceID,
		Root:     root.Name,
		Start:    root.Start,
		Duration: root.Duration,
	}
	if at != nil {
		rt.Spans = at.spans
		rt.SpansDropped = at.dropped
	}
	rt.Reason = r.classify(rt)
	r.finished++
	if rt.Reason == ReasonHealthy {
		r.healthy = append(r.healthy, rt)
		if len(r.healthy) > r.opts.KeepHealthy {
			r.healthy = r.healthy[1:]
			r.dropped++
		}
		return
	}
	r.interesting = append(r.interesting, rt)
	if len(r.interesting) > r.opts.KeepInteresting {
		r.interesting = r.interesting[1:]
		r.dropped++
	}
}

// classify decides a finished trace's retention reason. Error beats shed
// beats quarantine beats slow: the most actionable signal names the trace.
func (r *Recorder) classify(rt RecordedTrace) string {
	var shed, quarantine, errored bool
	for _, sp := range rt.Spans {
		for _, ev := range sp.Events {
			switch ev.Name {
			case ReasonShed:
				shed = true
			case ReasonQuarantine:
				quarantine = true
			case ReasonError:
				errored = true
			}
		}
		if sp.Name == ReasonQuarantine {
			quarantine = true
		}
		for _, a := range sp.Attrs {
			if a.Key == "error" {
				errored = true
			}
		}
	}
	switch {
	case errored:
		return ReasonError
	case shed:
		return ReasonShed
	case quarantine:
		return ReasonQuarantine
	case rt.Duration >= r.opts.SlowThreshold:
		return ReasonSlow
	default:
		return ReasonHealthy
	}
}

// Traces lists the retained traces, newest first (interesting and healthy
// interleaved by start time).
func (r *Recorder) Traces() []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	all := make([]RecordedTrace, 0, len(r.interesting)+len(r.healthy))
	all = append(all, r.interesting...)
	all = append(all, r.healthy...)
	r.mu.Unlock()
	sort.SliceStable(all, func(i, j int) bool { return all[i].Start.After(all[j].Start) })
	out := make([]TraceSummary, len(all))
	for i, rt := range all {
		out[i] = TraceSummary{
			TraceID:      rt.TraceID,
			Root:         rt.Root,
			Start:        rt.Start,
			DurationMS:   float64(rt.Duration) / float64(time.Millisecond),
			Reason:       rt.Reason,
			Spans:        len(rt.Spans),
			SpansDropped: rt.SpansDropped,
		}
	}
	return out
}

// Trace returns the retained trace with the given ID (hex, case-insensitive)
// and whether it was found.
func (r *Recorder) Trace(id string) (RecordedTrace, bool) {
	if r == nil {
		return RecordedTrace{}, false
	}
	id = strings.ToLower(id)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.interesting) - 1; i >= 0; i-- {
		if r.interesting[i].TraceID == id {
			return cloneTrace(r.interesting[i]), true
		}
	}
	for i := len(r.healthy) - 1; i >= 0; i-- {
		if r.healthy[i].TraceID == id {
			return cloneTrace(r.healthy[i]), true
		}
	}
	return RecordedTrace{}, false
}

// cloneTrace copies the span slice so callers can serialize it outside the
// recorder's lock while new spans keep arriving.
func cloneTrace(rt RecordedTrace) RecordedTrace {
	spans := make([]Span, len(rt.Spans))
	copy(spans, rt.Spans)
	rt.Spans = spans
	return rt
}

// Stats reports the recorder's lifetime counters.
func (r *Recorder) Stats() (finished, retained, dropped uint64) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.finished, uint64(len(r.interesting) + len(r.healthy)), r.dropped
}
