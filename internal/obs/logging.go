package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Correlation field names the serving path logs under, so log lines join
// against traces (/debug/traces/{id}) and quarantine records.
const (
	// LogTraceID is the request trace identifier field.
	LogTraceID = "trace_id"
	// LogBatchID is the micro-batch sequence number field.
	LogBatchID = "batch_id"
	// LogDocID is the document name field.
	LogDocID = "doc_id"
)

// ParseLogLevel maps a flag value ("debug", "info", "warn", "error",
// case-insensitive) to its slog level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// NewLogger builds a structured logger writing to w. format is "text"
// (human-oriented key=value lines) or "json" (one JSON object per line);
// level gates emission. The returned logger is what the four binaries wire
// through their layers in place of ad-hoc fmt.Fprintln diagnostics.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}
