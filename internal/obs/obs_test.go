package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{500 * time.Nanosecond, 0}, // sub-microsecond
		{time.Microsecond, 1},      // 1µs is the bound of bucket 0, so >= lands in 1
		{1500 * time.Nanosecond, 1},
		{2 * time.Microsecond, 2},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{time.Millisecond, 10},      // 1000µs ≤ 1024µs = BucketBound(10)
		{time.Second, 20},           // 1e6µs ≤ 2^20µs = BucketBound(20)
		{time.Hour, NumBuckets - 1}, // overflow
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.d)
		got := -1
		for i := range h.buckets {
			if h.buckets[i].Load() == 1 {
				got = i
				break
			}
		}
		if got != c.want {
			t.Errorf("Observe(%v): bucket %d, want %d", c.d, got, c.want)
		}
	}
}

func TestBucketBoundMonotonic(t *testing.T) {
	for i := 1; i < NumBuckets-1; i++ {
		if BucketBound(i) != 2*BucketBound(i-1) {
			t.Fatalf("bucket %d bound %v is not double bucket %d bound %v",
				i, BucketBound(i), i-1, BucketBound(i-1))
		}
	}
	if BucketBound(0) != time.Microsecond {
		t.Fatalf("bucket 0 bound = %v, want 1µs", BucketBound(0))
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Sum() != 6*time.Millisecond {
		t.Fatalf("Sum = %v, want 6ms", h.Sum())
	}
	s := h.snapshot()
	if s.MinSeconds != 0.001 || s.MaxSeconds != 0.003 {
		t.Fatalf("min/max = %v/%v, want 0.001/0.003", s.MinSeconds, s.MaxSeconds)
	}
	if s.MeanSeconds < 0.0019 || s.MeanSeconds > 0.0021 {
		t.Fatalf("mean = %v, want ~0.002", s.MeanSeconds)
	}
	if s.P50Seconds <= 0 || s.P99Seconds < s.P50Seconds {
		t.Fatalf("quantiles inconsistent: p50=%v p99=%v", s.P50Seconds, s.P99Seconds)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared").Add(1)
				r.Histogram("lat").Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat").Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	s := r.Snapshot()
	if s.Counters["shared"] != workers*iters {
		t.Fatalf("snapshot counter = %d, want %d", s.Counters["shared"], workers*iters)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not serializable: %v", err)
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Histogram("a")
	r.Counter("c")
	got := r.Names()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

// TestNilRegistryZeroAlloc guards the disabled path: a nil registry and nil
// instruments must not allocate.
func TestNilRegistryZeroAlloc(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(100, func() {
		c := r.Counter("x")
		c.Add(1)
		h := r.Histogram("y")
		h.Observe(time.Millisecond)
		var tr *Tracer
		sp := tr.StartSpan("z")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil registry hot path allocates %v times per run, want 0", allocs)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Histogram("y") != nil || r.Names() != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var c *Counter
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var h *Histogram
	h.Observe(time.Second)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}
}

func BenchmarkNilRegistryHotPath(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("y")
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(time.Microsecond)
		sp := tr.StartSpan("z")
		sp.End()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Nanosecond)
	}
}
