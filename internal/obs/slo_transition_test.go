package obs

import (
	"sync"
	"testing"
	"time"
)

// transitionLog collects OnTransition firings.
type transitionLog struct {
	mu    sync.Mutex
	edges []bool
	viols [][]string
}

func (l *transitionLog) fire(degraded bool, violating []string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.edges = append(l.edges, degraded)
	l.viols = append(l.viols, violating)
}

func (l *transitionLog) snapshot() []bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]bool(nil), l.edges...)
}

func TestSLOOnTransitionEdges(t *testing.T) {
	now := time.Unix(1000, 0)
	var log transitionLog
	slo := NewSLO(SLOConfig{
		Latency: 10 * time.Millisecond, MinSamples: 1,
		Window: time.Minute,
		Now:    func() time.Time { return now },
		OnTransition: func(d bool, v []string) { log.fire(d, v) },
	})

	// First evaluation (healthy, no samples) is the initial state — no edge.
	slo.Status()
	if edges := log.snapshot(); len(edges) != 0 {
		t.Fatalf("initial evaluation fired a transition: %v", edges)
	}

	// Go degraded: all observations slow.
	for i := 0; i < 5; i++ {
		slo.Observe("fill", 50*time.Millisecond, false)
	}
	slo.Status()
	slo.Status() // same state: no second fire
	edges := log.snapshot()
	if len(edges) != 1 || !edges[0] {
		t.Fatalf("degraded edge fired %d times (want 1, degraded): %v", len(edges), edges)
	}
	log.mu.Lock()
	viol := log.viols[0]
	log.mu.Unlock()
	if len(viol) != 1 || viol[0] != "fill" {
		t.Fatalf("violating streams = %v, want [fill]", viol)
	}

	// Recover by aging the window out — an age-driven edge must also fire.
	now = now.Add(5 * time.Minute)
	slo.Status()
	edges = log.snapshot()
	if len(edges) != 2 || edges[1] {
		t.Fatalf("recovery edge missing: %v", edges)
	}
}

func TestSLOOnTransitionConcurrentPollsFireOnce(t *testing.T) {
	now := time.Unix(1000, 0)
	var log transitionLog
	slo := NewSLO(SLOConfig{
		Latency: 10 * time.Millisecond, MinSamples: 1,
		Now:          func() time.Time { return now },
		OnTransition: func(d bool, v []string) { log.fire(d, v) },
	})
	slo.Status() // settle the initial healthy state
	for i := 0; i < 5; i++ {
		slo.Observe("fill", time.Second, false)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); slo.Status() }()
	}
	wg.Wait()
	if edges := log.snapshot(); len(edges) != 1 {
		t.Fatalf("concurrent polls fired %d transitions, want 1", len(edges))
	}
}

func TestSLOOnTransitionNilCallback(t *testing.T) {
	slo := NewSLO(SLOConfig{Latency: time.Millisecond, MinSamples: 1})
	slo.Observe("fill", time.Second, false)
	slo.Status() // must not panic without a callback
}
