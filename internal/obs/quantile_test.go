package obs

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// rankOf returns the fraction of sorted values at or below v.
func rankOf(sorted []float64, v float64) float64 {
	i := sort.SearchFloat64s(sorted, v)
	for i < len(sorted) && sorted[i] == v {
		i++
	}
	return float64(i) / float64(len(sorted))
}

// assertRankError checks that the sketch's q-estimate lands within eps rank
// of the exact quantile of the data.
func assertRankError(t *testing.T, sk *Sketch, sorted []float64, q, eps float64) {
	t.Helper()
	got := sk.Query(q)
	r := rankOf(sorted, got)
	if r < q-eps || r > q+eps {
		t.Errorf("q=%.2f: estimate %v sits at rank %.4f, want %.2f±%.2f", q, got, r, q, eps)
	}
}

// TestSketchAccuracy bounds the rank error against an exact sort over fixed
// seeds and several distributions — the accuracy contract the SLO engine's
// published percentiles rest on.
func TestSketchAccuracy(t *testing.T) {
	const n = 20000
	const eps = 0.025 // k=512, n=20k: ~L/k with headroom
	dists := map[string]func(r *rand.Rand) float64{
		"uniform":   func(r *rand.Rand) float64 { return r.Float64() },
		"exp-tail":  func(r *rand.Rand) float64 { return r.ExpFloat64() },
		"bimodal":   func(r *rand.Rand) float64 { return float64(r.Intn(2))*100 + r.Float64() },
		"monotonic": func(r *rand.Rand) float64 { return float64(r.Int63n(1 << 40)) },
	}
	for name, gen := range dists {
		for _, seed := range []int64{1, 7, 42} {
			r := rand.New(rand.NewSource(seed))
			sk := NewSketch(512)
			data := make([]float64, n)
			for i := range data {
				data[i] = gen(r)
				sk.Observe(data[i])
			}
			sort.Float64s(data)
			if sk.Count() != n {
				t.Fatalf("%s/seed=%d: count %d, want %d", name, seed, sk.Count(), n)
			}
			if sk.Min() != data[0] || sk.Max() != data[n-1] {
				t.Fatalf("%s/seed=%d: min/max %v/%v, want %v/%v",
					name, seed, sk.Min(), sk.Max(), data[0], data[n-1])
			}
			for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
				assertRankError(t, sk, data, q, eps)
			}
		}
	}
}

// TestSketchDeterministic pins the determinism contract: the same sequence
// always yields the same estimates.
func TestSketchDeterministic(t *testing.T) {
	build := func() *Sketch {
		r := rand.New(rand.NewSource(99))
		sk := NewSketch(128)
		for i := 0; i < 5000; i++ {
			sk.Observe(r.Float64())
		}
		return sk
	}
	a, b := build(), build()
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if a.Query(q) != b.Query(q) {
			t.Fatalf("q=%v: %v != %v on identical sequences", q, a.Query(q), b.Query(q))
		}
	}
}

// TestSketchMerge checks that merging per-slice sketches matches observing
// the union, within the rank-error bound — the property the SLO window
// composition relies on.
func TestSketchMerge(t *testing.T) {
	const n = 4000
	r := rand.New(rand.NewSource(5))
	parts := []*Sketch{NewSketch(256), NewSketch(256), NewSketch(256)}
	var data []float64
	for i := 0; i < 3*n; i++ {
		v := r.ExpFloat64() * 10
		data = append(data, v)
		parts[i%3].Observe(v)
	}
	merged := NewSketch(256)
	for _, p := range parts {
		merged.Merge(p)
	}
	sort.Float64s(data)
	if merged.Count() != int64(len(data)) {
		t.Fatalf("merged count %d, want %d", merged.Count(), len(data))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		assertRankError(t, merged, data, q, 0.04)
	}
	if merged.Min() != data[0] || merged.Max() != data[len(data)-1] {
		t.Fatalf("merged min/max %v/%v, want %v/%v", merged.Min(), merged.Max(), data[0], data[len(data)-1])
	}
}

func TestSketchSmallAndEmpty(t *testing.T) {
	sk := NewSketch(8)
	if sk.Query(0.5) != 0 || sk.Count() != 0 {
		t.Fatal("empty sketch should report zeros")
	}
	sk.Observe(3)
	if got := sk.Query(0.5); got != 3 {
		t.Fatalf("single-value median = %v, want 3", got)
	}
	sk.ObserveDuration(5 * time.Second)
	if sk.Max() != 5 {
		t.Fatalf("max = %v, want 5 (seconds)", sk.Max())
	}
	if got := sk.Query(2); got != 5 {
		t.Fatalf("clamped q>1 = %v, want max", got)
	}
	sk.Reset()
	if sk.Count() != 0 || sk.Query(0.5) != 0 {
		t.Fatal("reset did not empty the sketch")
	}

	var nilSk *Sketch
	nilSk.Observe(1)
	nilSk.Merge(sk)
	if nilSk.Query(0.5) != 0 || nilSk.Count() != 0 {
		t.Fatal("nil sketch is not a valid no-op")
	}
}
