package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// retainTwoSpanTrace pushes a two-span trace (root + child) through a
// recorder, classified slow so it is always retained.
func retainTwoSpanTrace(r *Recorder, id string) (rootSpanID, childSpanID string) {
	rootSpanID, childSpanID = NewSpanID().String(), NewSpanID().String()
	child := Span{
		Name:     "router.backend",
		TraceID:  id,
		SpanID:   childSpanID,
		ParentID: rootSpanID,
		Start:    time.Now(),
		Duration: 5 * time.Millisecond,
		Attrs:    []Attr{String("backend", "b1:8080"), String("shard", "s0"), String("role", "primary")},
	}
	root := Span{
		Name:     "router.fill",
		TraceID:  id,
		SpanID:   rootSpanID,
		Start:    time.Now(),
		Duration: time.Second, // slow: always retained
	}
	r.add(child)
	r.add(root)
	r.finish(id, root)
	return rootSpanID, childSpanID
}

func TestExportTrace(t *testing.T) {
	r := NewRecorder(RecorderOptions{SlowThreshold: 100 * time.Millisecond})
	id := "4bf92f3577b34da6a3ce929d0e0e4736"
	rootID, childID := retainTwoSpanTrace(r, id)

	rt, ok := r.Trace(id)
	if !ok {
		t.Fatal("trace not retained")
	}
	te := ExportTrace(rt, "router:8090")
	if te.Node != "router:8090" || te.TraceID != id || te.Root != "router.fill" {
		t.Fatalf("export envelope wrong: %+v", te)
	}
	if te.DurationNanos != int64(time.Second) {
		t.Fatalf("export duration = %d", te.DurationNanos)
	}
	if len(te.Spans) != 2 {
		t.Fatalf("exported %d spans, want 2", len(te.Spans))
	}
	byID := map[string]SpanExport{}
	for _, sp := range te.Spans {
		byID[sp.SpanID] = sp
	}
	child := byID[childID]
	if child.ParentID != rootID || child.Name != "router.backend" {
		t.Fatalf("child span wrong: %+v", child)
	}
	if len(child.Attrs) != 3 || child.Attrs[0].Key != "backend" {
		t.Fatalf("child attrs lost: %+v", child.Attrs)
	}
	if child.DurationNanos != int64(5*time.Millisecond) {
		t.Fatalf("child duration = %d", child.DurationNanos)
	}
}

func TestDebugTraceExportEndpoint(t *testing.T) {
	r := NewRecorder(RecorderOptions{SlowThreshold: 100 * time.Millisecond})
	id := "4bf92f3577b34da6a3ce929d0e0e4736"
	retainTwoSpanTrace(r, id)

	srv := httptest.NewServer(DebugHandler(DebugOptions{Recorder: r, Node: "n1:7071"}))
	defer srv.Close()

	var te TraceExport
	if err := json.Unmarshal(get(t, srv, "/debug/traces/"+id+"?format=export"), &te); err != nil {
		t.Fatalf("export not JSON: %v", err)
	}
	if te.Node != "n1:7071" || te.TraceID != id || len(te.Spans) != 2 {
		t.Fatalf("export wrong: node=%q trace=%q spans=%d", te.Node, te.TraceID, len(te.Spans))
	}
	// The default (non-export) format still serves the RecordedTrace shape.
	var rt RecordedTrace
	if err := json.Unmarshal(get(t, srv, "/debug/traces/"+id), &rt); err != nil {
		t.Fatalf("default format not JSON: %v", err)
	}
	if rt.TraceID != id {
		t.Fatalf("default format trace = %q", rt.TraceID)
	}
}

// TestDebugTraceNotFoundEnvelope is the ISSUE 10 satellite: an unknown trace
// ID answers with the structured JSON error envelope (code, message,
// trace_id), not a bare 404 body.
func TestDebugTraceNotFoundEnvelope(t *testing.T) {
	srv := httptest.NewServer(DebugHandler(DebugOptions{
		Recorder: NewRecorder(RecorderOptions{}),
	}))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/traces/deadbeefdeadbeefdeadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("404 body is not the error envelope: %v\n%s", err, body)
	}
	if env.Error.Code != "not_found" || env.Error.Message == "" {
		t.Fatalf("envelope wrong: %+v", env)
	}
	if env.TraceID != "deadbeefdeadbeefdeadbeefdeadbeef" {
		t.Fatalf("envelope trace_id = %q", env.TraceID)
	}
}

func TestDebugEventsEndpoint(t *testing.T) {
	j := NewJournal(JournalConfig{Node: "n1:7071", Capacity: 8})
	j.Append(JournalEvent{Kind: EventBreaker, Subject: "b1", From: "closed", To: "open"})
	j.Append(JournalEvent{Kind: EventTableSwap, Previous: 3, Version: 4, Concepts: []string{"Color", "Brand"}})

	srv := httptest.NewServer(DebugHandler(DebugOptions{Journal: j}))
	defer srv.Close()

	var ex JournalExport
	if err := json.Unmarshal(get(t, srv, "/debug/events"), &ex); err != nil {
		t.Fatalf("/debug/events not JSON: %v", err)
	}
	if ex.Node != "n1:7071" || ex.Total != 2 || len(ex.Events) != 2 {
		t.Fatalf("journal export wrong: %+v", ex)
	}
	if ex.Events[1].Kind != EventTableSwap || ex.Events[1].Version != 4 || len(ex.Events[1].Concepts) != 2 {
		t.Fatalf("table swap event wrong over HTTP: %+v", ex.Events[1])
	}
}
