package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// LabeledName builds the canonical labeled instrument name the OpenMetrics
// exposition understands: family{k1="v1",k2="v2"}. Instruments registered
// under such a name are grouped into one metric family per base name, with
// each label set becoming one series. Pairs are key, value, key, value …;
// a trailing odd key is ignored. With no pairs the family name is returned
// unchanged.
func LabeledName(family string, kv ...string) string {
	if len(kv) < 2 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// splitLabeled splits a (possibly) labeled instrument name into its family
// and the raw label text between the braces ("" when unlabeled).
func splitLabeled(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// sanitizeMetricName maps an instrument family to a legal metric name:
// dots (the registry's namespace separator) become underscores, as does any
// other character outside [a-zA-Z0-9_:]; a leading digit gains a '_' prefix.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// omSample is one exposition line within a family: an optional magic suffix
// (_total, _bucket, _sum, _count, …), a label block, a value and an optional
// exemplar.
type omSample struct {
	suffix   string
	labels   string // rendered label pairs, no braces; "" when unlabeled
	value    float64
	exemplar string // rendered " # {labels} value ts" suffix; "" when absent
}

// renderExemplar renders an exemplar in OpenMetrics syntax for attachment
// after a sample value: " # {trace_id=\"…\"} <value> <unix seconds>".
func renderExemplar(ex *Exemplar) string {
	if ex == nil || ex.TraceID == "" {
		return ""
	}
	ts := strconv.FormatFloat(float64(ex.Time.UnixNano())/1e9, 'f', 3, 64)
	return ` # {trace_id="` + escapeLabelValue(ex.TraceID) + `"} ` +
		formatValue(ex.ValueSeconds) + " " + ts
}

// omFamily is one metric family to render: a TYPE line plus its samples.
type omFamily struct {
	name    string // sanitized family name, without magic suffixes
	typ     string // counter | gauge | histogram | summary
	help    string
	samples []omSample
}

// joinLabels merges two rendered label blocks.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// formatValue renders a sample value: shortest round-trip float, with the
// exposition spellings of the infinities.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// familySet accumulates families keyed by (name, type) so labeled series of
// the same base name merge into one family.
type familySet struct {
	byName map[string]*omFamily
}

func newFamilySet() *familySet {
	return &familySet{byName: make(map[string]*omFamily)}
}

// add appends one sample to its family, creating the family on first use.
// A name collision across different types keeps the first type and drops
// the conflicting sample — malformed output would fail the scrape linter.
func (fs *familySet) add(name, typ, help string, s omSample) {
	f := fs.byName[name]
	if f == nil {
		f = &omFamily{name: name, typ: typ, help: help}
		fs.byName[name] = f
	}
	if f.typ != typ {
		return
	}
	f.samples = append(f.samples, s)
}

// write renders every family in name order.
func (fs *familySet) write(w io.Writer) error {
	names := make([]string, 0, len(fs.byName))
	for n := range fs.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fs.byName[n]
		if len(f.samples) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			line := f.name + s.suffix
			if s.labels != "" {
				line += "{" + s.labels + "}"
			}
			if _, err := fmt.Fprintf(w, "%s %s%s\n", line, formatValue(s.value), s.exemplar); err != nil {
				return err
			}
		}
	}
	return nil
}

// counterFamily resolves a counter family name: OpenMetrics counters are
// named without the _total sample suffix, so a family already carrying it is
// trimmed rather than doubled.
func counterFamily(name string) string {
	return strings.TrimSuffix(sanitizeMetricName(name), "_total")
}

// histogramFamily resolves a duration histogram's family name: every
// registry histogram observes durations, so the family is suffixed _seconds
// unless the name already says so.
func histogramFamily(name string) string {
	n := sanitizeMetricName(name)
	if strings.HasSuffix(n, "_seconds") {
		return n
	}
	return n + "_seconds"
}

// leSeconds converts a snapshot bucket bound ("1µs", "2ms", "+Inf") to its
// exposition value in seconds.
func leSeconds(le string) float64 {
	if le == "+Inf" {
		return math.Inf(1)
	}
	d, err := time.ParseDuration(le)
	if err != nil {
		return math.Inf(1)
	}
	return d.Seconds()
}

// addRegistry renders every registry instrument into the family set. The
// histogram samples are derived from the same HistogramSnapshot served as
// JSON on /debug/vars and /debug/thor/metrics, so the two endpoints cannot
// disagree on totals.
func (fs *familySet) addRegistry(reg *Registry) {
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	for _, name := range sortedKeys(snap.Counters) {
		fam, labels := splitLabeled(name)
		fs.add(counterFamily(fam), "counter", "", omSample{suffix: "_total", labels: labels, value: float64(snap.Counters[name])})
	}
	for _, name := range sortedKeys(snap.Gauges) {
		fam, labels := splitLabeled(name)
		fs.add(sanitizeMetricName(fam), "gauge", "", omSample{labels: labels, value: float64(snap.Gauges[name])})
	}
	for _, name := range sortedKeys(snap.FloatGauges) {
		fam, labels := splitLabeled(name)
		fs.add(sanitizeMetricName(fam), "gauge", "", omSample{labels: labels, value: snap.FloatGauges[name]})
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		fam, labels := splitLabeled(name)
		fname := histogramFamily(fam)
		// The exemplar attaches to the first bucket whose range covers its
		// value — per OpenMetrics, exemplars ride on _bucket sample lines.
		exemplar := renderExemplar(h.Exemplar)
		for _, b := range h.Buckets {
			bound := leSeconds(b.LE)
			le := `le="` + formatValue(bound) + `"`
			s := omSample{
				suffix: "_bucket",
				labels: joinLabels(labels, le),
				value:  float64(b.Cumulative),
			}
			if exemplar != "" && h.Exemplar.ValueSeconds <= bound {
				s.exemplar, exemplar = exemplar, ""
			}
			fs.add(fname, "histogram", "", s)
		}
		fs.add(fname, "histogram", "", omSample{suffix: "_sum", labels: labels, value: h.SumSeconds})
		fs.add(fname, "histogram", "", omSample{suffix: "_count", labels: labels, value: float64(h.Count)})
	}
	for _, name := range sortedKeys(snap.Distributions) {
		d := snap.Distributions[name]
		fam, labels := splitLabeled(name)
		fname := sanitizeMetricName(fam)
		for _, q := range []struct {
			q string
			v float64
		}{{"0", d.Min}, {"0.5", d.P50}, {"0.9", d.P90}, {"0.99", d.P99}, {"1", d.Max}} {
			fs.add(fname, "summary", "", omSample{
				labels: joinLabels(labels, `quantile="`+q.q+`"`),
				value:  q.v,
			})
		}
		fs.add(fname, "summary", "", omSample{suffix: "_count", labels: labels, value: float64(d.Count)})
	}
}

// sortedKeys returns a string-keyed map's keys in sorted order, for
// deterministic exposition output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// addSLO renders the SLO engine's windowed state: per-stream latency
// quantile summaries, burn rates and violation flags for judged streams,
// and the overall degraded bit /readyz keys off.
func (fs *familySet) addSLO(slo *SLO) {
	if slo == nil {
		return
	}
	st := slo.Status()
	streams := make([]string, 0, len(st.Streams))
	for n := range st.Streams {
		streams = append(streams, n)
	}
	sort.Strings(streams)
	const latFam = "thor_slo_latency_seconds"
	for _, name := range streams {
		ss := st.Streams[name]
		stream := `stream="` + escapeLabelValue(name) + `"`
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", ss.P50MS / 1e3}, {"0.95", ss.P95MS / 1e3}, {"0.99", ss.P99MS / 1e3}} {
			fs.add(latFam, "summary", "windowed latency quantiles per SLO stream", omSample{
				labels: joinLabels(stream, `quantile="`+q.q+`"`),
				value:  q.v,
			})
		}
		fs.add(latFam, "summary", "", omSample{suffix: "_count", labels: stream, value: float64(ss.Count)})
		if ss.Judged {
			fs.add("thor_slo_burn_rate", "gauge", "error/latency budget burn rate (1 = at budget)",
				omSample{labels: stream, value: ss.BurnRate})
			fs.add("thor_slo_violated", "gauge", "1 while the stream breaches its SLO",
				omSample{labels: stream, value: boolValue(ss.Violated)})
		}
	}
	fs.add("thor_slo_degraded", "gauge", "1 while any judged stream is violating (mirrors /readyz)",
		omSample{value: boolValue(st.Degraded)})
	fs.add("thor_slo_window_seconds", "gauge", "", omSample{value: st.WindowSeconds})
}

func boolValue(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// WriteOpenMetrics renders the registry, the SLO engine and (optionally)
// the Go runtime metrics in OpenMetrics text format: counters with _total
// samples, histograms with cumulative le buckets (including +Inf) plus
// _sum/_count, distributions and SLO streams as quantile summaries. reg and
// slo may be nil; their sections are then omitted. The output ends with the
// OpenMetrics EOF marker and is accepted by Prometheus' text parser.
func WriteOpenMetrics(w io.Writer, reg *Registry, slo *SLO, runtimeMetrics bool) error {
	fs := newFamilySet()
	fs.addRegistry(reg)
	fs.addSLO(slo)
	if runtimeMetrics {
		fs.addRuntime()
	}
	if err := fs.write(w); err != nil {
		return fmt.Errorf("obs: write openmetrics: %w", err)
	}
	if _, err := io.WriteString(w, "# EOF\n"); err != nil {
		return fmt.Errorf("obs: write openmetrics: %w", err)
	}
	return nil
}

// MetricsHandler serves GET /metrics: the full OpenMetrics exposition of
// the registry, the SLO engine and the Go runtime. Either source may be
// nil.
func MetricsHandler(reg *Registry, slo *SLO) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = WriteOpenMetrics(w, reg, slo, true)
	})
}
