package obs

import (
	"context"
	"runtime/trace"
	"sync"
	"time"
)

// DefaultSpanCapacity is the ring-buffer size NewTracer uses for
// capacity <= 0.
const DefaultSpanCapacity = 4096

// Attr is one key/value annotation on a span.
type Attr struct {
	// Key names the annotation.
	Key string `json:"key"`
	// Value is the annotation's rendered value.
	Value string `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Event is one timestamped annotation recorded while a span was open — a
// quarantine, a shed decision, an error. Events ride inside their span
// rather than becoming spans of their own.
type Event struct {
	// Name identifies the event ("quarantine", "shed", "error", …).
	Name string `json:"name"`
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// Attrs carry the event's details.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Span is one completed timed operation. TraceID/SpanID/ParentID are empty
// on flat spans (recorded outside any request trace) and populated on spans
// recorded through StartTrace/StartSpanCtx, where they place the span in a
// request's tree.
type Span struct {
	// Name identifies the operation ("run", "doc", "finetune", …).
	Name string `json:"name"`
	// TraceID is the request trace the span belongs to (hex; empty on flat
	// spans).
	TraceID string `json:"traceId,omitempty"`
	// SpanID identifies the span within its trace (hex).
	SpanID string `json:"spanId,omitempty"`
	// ParentID is the parent span's ID (hex; empty on roots whose caller
	// sent no traceparent).
	ParentID string `json:"parentId,omitempty"`
	// Start is the wall-clock start time.
	Start time.Time `json:"start"`
	// Duration is the span's elapsed time.
	Duration time.Duration `json:"durationNanos"`
	// Attrs are the annotations passed to StartSpan.
	Attrs []Attr `json:"attrs,omitempty"`
	// Events are the timestamped annotations recorded while the span was
	// open.
	Events []Event `json:"events,omitempty"`
}

// Tracer records completed spans into a fixed-capacity ring buffer: the
// newest spans overwrite the oldest once the buffer is full. A nil *Tracer
// is a valid disabled tracer (StartSpan returns a nil span whose End is a
// no-op). Safe for concurrent use by the pipeline's document workers.
//
// When a runtime execution trace is active (runtime/trace.IsEnabled), every
// span additionally opens a trace region, so spans show up in
// `go tool trace` output. When a Recorder is attached (SetRecorder), every
// span carrying a TraceID is also fed to the flight recorder.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	total uint64 // spans ever recorded

	// rec is the optional flight recorder; set before the tracer is shared
	// (SetRecorder is not synchronized against concurrent StartSpan).
	rec *Recorder
}

// NewTracer returns a tracer keeping the last capacity spans
// (DefaultSpanCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// SetRecorder attaches a flight recorder: every recorded span with a trace
// ID is copied into it, and a root span ending completes its trace. Call
// before the tracer is shared with other goroutines. Nil-safe.
func (t *Tracer) SetRecorder(r *Recorder) {
	if t == nil {
		return
	}
	t.rec = r
}

// ActiveSpan is an in-flight span; call End to record it.
type ActiveSpan struct {
	tr     *Tracer
	span   Span
	region *trace.Region
	root   bool

	// refs/ids fan the span out: one recorded Span per ref, identified by
	// the matching id. Empty on flat spans.
	refs []SpanRef
	ids  []SpanID

	// evMu guards Events: annotations may race with each other (not with
	// End, which happens-after all annotations by contract).
	evMu sync.Mutex
}

// StartSpan opens a span. On a nil tracer it returns nil, and End on a nil
// *ActiveSpan is a no-op, so call sites need no guards.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *ActiveSpan {
	if t == nil {
		return nil
	}
	s := &ActiveSpan{tr: t, span: Span{Name: name, Start: time.Now(), Attrs: attrs}}
	if trace.IsEnabled() {
		s.region = trace.StartRegion(context.Background(), name)
	}
	return s
}

// Annotate records a timestamped event on the span — visible on every copy
// the span fans out to. No-op on a nil span.
func (s *ActiveSpan) Annotate(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.evMu.Lock()
	s.span.Events = append(s.span.Events, Event{Name: name, Time: time.Now(), Attrs: attrs})
	s.evMu.Unlock()
}

// End closes the span and records it in the tracer's ring buffer — once per
// SpanRef for spans opened inside a trace, flat otherwise. Ending the root
// span of a trace completes the trace in the attached Recorder.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	if s.region != nil {
		s.region.End()
	}
	s.span.Duration = time.Since(s.span.Start)
	if len(s.ids) == 0 {
		s.tr.record(s.span)
		return
	}
	for i, r := range s.refs {
		sp := s.span
		sp.TraceID = r.Trace.String()
		sp.SpanID = s.ids[i].String()
		if !r.Parent.IsZero() {
			sp.ParentID = r.Parent.String()
		} else {
			sp.ParentID = ""
		}
		s.tr.record(sp)
	}
	if s.root && s.tr.rec != nil {
		s.tr.rec.finish(s.span.TraceID, s.span)
	}
}

func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	t.ring[t.total%uint64(len(t.ring))] = sp
	t.total++
	t.mu.Unlock()
	if t.rec != nil && sp.TraceID != "" {
		t.rec.add(sp)
	}
}

// Total returns the number of spans ever recorded (including overwritten
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	cap := uint64(len(t.ring))
	if n > cap {
		out := make([]Span, 0, cap)
		start := n % cap // oldest retained slot
		out = append(out, t.ring[start:]...)
		out = append(out, t.ring[:start]...)
		return out
	}
	out := make([]Span, n)
	copy(out, t.ring[:n])
	return out
}

// SpanDump is the JSON payload of /debug/thor/spans.
type SpanDump struct {
	// Total counts every span ever recorded; Dropped = Total - len(Spans).
	Total uint64 `json:"total"`
	// Dropped is the number of spans evicted from the ring buffer.
	Dropped uint64 `json:"dropped"`
	// Spans are the retained spans, oldest first.
	Spans []Span `json:"spans"`
}

// Dump captures the tracer state for serialization.
func (t *Tracer) Dump() SpanDump {
	spans := t.Spans()
	total := t.Total()
	return SpanDump{Total: total, Dropped: total - uint64(len(spans)), Spans: spans}
}
