package obs

import (
	"context"
	"runtime/trace"
	"sync"
	"time"
)

// DefaultSpanCapacity is the ring-buffer size NewTracer uses for
// capacity <= 0.
const DefaultSpanCapacity = 4096

// Attr is one key/value annotation on a span.
type Attr struct {
	// Key names the annotation.
	Key string `json:"key"`
	// Value is the annotation's rendered value.
	Value string `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one completed timed operation.
type Span struct {
	// Name identifies the operation ("run", "doc", "finetune", …).
	Name string `json:"name"`
	// Start is the wall-clock start time.
	Start time.Time `json:"start"`
	// Duration is the span's elapsed time.
	Duration time.Duration `json:"durationNanos"`
	// Attrs are the annotations passed to StartSpan.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Tracer records completed spans into a fixed-capacity ring buffer: the
// newest spans overwrite the oldest once the buffer is full. A nil *Tracer
// is a valid disabled tracer (StartSpan returns a nil span whose End is a
// no-op). Safe for concurrent use by the pipeline's document workers.
//
// When a runtime execution trace is active (runtime/trace.IsEnabled), every
// span additionally opens a trace region, so spans show up in
// `go tool trace` output.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	total uint64 // spans ever recorded
}

// NewTracer returns a tracer keeping the last capacity spans
// (DefaultSpanCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// ActiveSpan is an in-flight span; call End to record it.
type ActiveSpan struct {
	tr     *Tracer
	span   Span
	region *trace.Region
}

// StartSpan opens a span. On a nil tracer it returns nil, and End on a nil
// *ActiveSpan is a no-op, so call sites need no guards.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *ActiveSpan {
	if t == nil {
		return nil
	}
	s := &ActiveSpan{tr: t, span: Span{Name: name, Start: time.Now(), Attrs: attrs}}
	if trace.IsEnabled() {
		s.region = trace.StartRegion(context.Background(), name)
	}
	return s
}

// End closes the span and records it in the tracer's ring buffer.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	if s.region != nil {
		s.region.End()
	}
	s.span.Duration = time.Since(s.span.Start)
	s.tr.record(s.span)
}

func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	t.ring[t.total%uint64(len(t.ring))] = sp
	t.total++
	t.mu.Unlock()
}

// Total returns the number of spans ever recorded (including overwritten
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	cap := uint64(len(t.ring))
	if n > cap {
		out := make([]Span, 0, cap)
		start := n % cap // oldest retained slot
		out = append(out, t.ring[start:]...)
		out = append(out, t.ring[:start]...)
		return out
	}
	out := make([]Span, n)
	copy(out, t.ring[:n])
	return out
}

// SpanDump is the JSON payload of /debug/thor/spans.
type SpanDump struct {
	// Total counts every span ever recorded; Dropped = Total - len(Spans).
	Total uint64 `json:"total"`
	// Dropped is the number of spans evicted from the ring buffer.
	Dropped uint64 `json:"dropped"`
	// Spans are the retained spans, oldest first.
	Spans []Span `json:"spans"`
}

// Dump captures the tracer state for serialization.
func (t *Tracer) Dump() SpanDump {
	spans := t.Spans()
	total := t.Total()
	return SpanDump{Total: total, Dropped: total - uint64(len(spans)), Spans: spans}
}
