package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.StartSpan("work", String("doc", "d1"))
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "work" || len(s.Attrs) != 1 || s.Attrs[0] != (Attr{Key: "doc", Value: "d1"}) {
		t.Fatalf("unexpected span: %+v", s)
	}
	if s.Duration < 0 || s.Start.IsZero() {
		t.Fatalf("span not timed: %+v", s)
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.StartSpan(fmt.Sprintf("s%d", i)).End()
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// Oldest first: s6, s7, s8, s9.
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", 6+i); s.Name != want {
			t.Fatalf("span %d = %q, want %q", i, s.Name, want)
		}
	}
	d := tr.Dump()
	if d.Total != 10 || d.Dropped != 6 || len(d.Spans) != 4 {
		t.Fatalf("dump = total %d dropped %d len %d", d.Total, d.Dropped, len(d.Spans))
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	if len(tr.ring) != DefaultSpanCapacity {
		t.Fatalf("capacity = %d, want %d", len(tr.ring), DefaultSpanCapacity)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.StartSpan("w").End()
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 4000 {
		t.Fatalf("Total = %d, want 4000", tr.Total())
	}
	if got := len(tr.Spans()); got != 64 {
		t.Fatalf("retained %d, want 64", got)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x", String("k", "v"))
	sp.End() // must not panic
	if tr.Total() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer must be empty")
	}
	d := tr.Dump()
	if d.Total != 0 || len(d.Spans) != 0 {
		t.Fatal("nil tracer dump must be empty")
	}
}
