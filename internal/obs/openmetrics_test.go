package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thor/internal/promtext"
)

func TestLabeledName(t *testing.T) {
	cases := []struct {
		family string
		kv     []string
		want   string
	}{
		{"thor.sparsity.fill_rate", nil, "thor.sparsity.fill_rate"},
		{"f", []string{"concept", "Anatomy"}, `f{concept="Anatomy"}`},
		{"f", []string{"a", "1", "b", "2"}, `f{a="1",b="2"}`},
		{"f", []string{"q", `say "hi"`}, `f{q="say \"hi\""}`},
		{"f", []string{"odd"}, "f"},
	}
	for _, c := range cases {
		if got := LabeledName(c.family, c.kv...); got != c.want {
			t.Errorf("LabeledName(%q, %v) = %q, want %q", c.family, c.kv, got, c.want)
		}
		fam, _ := splitLabeled(c.want)
		if fam != c.family {
			t.Errorf("splitLabeled(%q) family = %q, want %q", c.want, fam, c.family)
		}
	}
}

// render runs the exposition and parses it back through the promtext
// linter, failing the test on any syntax error or lint finding.
func render(t *testing.T, reg *Registry, slo *SLO, runtime bool) *promtext.Exposition {
	t.Helper()
	var sb strings.Builder
	if err := WriteOpenMetrics(&sb, reg, slo, runtime); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	exp, err := promtext.Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	if probs := promtext.Lint(exp); len(probs) > 0 {
		t.Fatalf("exposition does not lint: %v\n%s", probs, sb.String())
	}
	return exp
}

// TestOpenMetricsAgreesWithSnapshot is the /debug/vars–/metrics agreement
// guard: the JSON HistogramSnapshot and the exposition must report the
// same totals, the same cumulative bucket counts and the same +Inf bucket.
func TestOpenMetricsAgreesWithSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("thor.docs").Add(42)
	reg.Gauge("thor.queue.depth").Set(7)
	reg.FloatGauge("thor.sparsity.null_density").Set(0.375)
	h := reg.Histogram("thor.stage.match")
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, 5 * time.Millisecond, 3 * time.Second} {
		h.Observe(d)
	}
	d := reg.Distribution("thor.score")
	for _, v := range []float64{0.1, 0.5, 0.9} {
		d.Observe(v)
	}

	snap := reg.Snapshot()
	exp := render(t, reg, nil, false)

	// Counter totals agree.
	cf := exp.Family("thor_docs")
	if cf == nil || cf.Samples[0].Value != float64(snap.Counters["thor.docs"]) {
		t.Fatalf("thor_docs_total disagrees with snapshot: %+v vs %d", cf, snap.Counters["thor.docs"])
	}
	// Gauges agree.
	if gf := exp.Family("thor_queue_depth"); gf == nil || gf.Samples[0].Value != 7 {
		t.Fatalf("thor_queue_depth disagrees: %+v", gf)
	}
	if gf := exp.Family("thor_sparsity_null_density"); gf == nil || gf.Samples[0].Value != 0.375 {
		t.Fatalf("thor_sparsity_null_density disagrees: %+v", gf)
	}

	// Histogram totals, cumulative buckets and +Inf agree.
	hs := snap.Histograms["thor.stage.match"]
	hf := exp.Family("thor_stage_match_seconds")
	if hf == nil {
		t.Fatalf("histogram family missing")
	}
	var expCount, expSum float64
	var infBucket float64
	buckets := 0
	for _, s := range hf.Samples {
		switch s.Name {
		case "thor_stage_match_seconds_count":
			expCount = s.Value
		case "thor_stage_match_seconds_sum":
			expSum = s.Value
		case "thor_stage_match_seconds_bucket":
			buckets++
			if s.Label("le") == "+Inf" {
				infBucket = s.Value
			}
		}
	}
	if expCount != float64(hs.Count) {
		t.Fatalf("_count %g != snapshot count %d", expCount, hs.Count)
	}
	if math.Abs(expSum-hs.SumSeconds) > 1e-9 {
		t.Fatalf("_sum %g != snapshot sum %g", expSum, hs.SumSeconds)
	}
	if infBucket != float64(hs.Count) {
		t.Fatalf("+Inf bucket %g != snapshot count %d", infBucket, hs.Count)
	}
	if buckets != len(hs.Buckets) {
		t.Fatalf("exposition has %d buckets, snapshot %d", buckets, len(hs.Buckets))
	}
	// Snapshot's own +Inf invariant.
	last := hs.Buckets[len(hs.Buckets)-1]
	if last.LE != "+Inf" || last.Cumulative != hs.Count {
		t.Fatalf("snapshot +Inf bucket wrong: %+v (count %d)", last, hs.Count)
	}

	// Distribution quantiles surface as a lint-clean summary.
	df := exp.Family("thor_score")
	if df == nil || df.Type != "summary" {
		t.Fatalf("distribution family missing or mistyped: %+v", df)
	}
	var dcount float64
	for _, s := range df.Samples {
		if s.Name == "thor_score_count" {
			dcount = s.Value
		}
	}
	if dcount != float64(snap.Distributions["thor.score"].Count) {
		t.Fatalf("summary _count %g != snapshot %d", dcount, snap.Distributions["thor.score"].Count)
	}
}

// TestOpenMetricsLabels checks labeled instruments merge into one family
// with per-label series.
func TestOpenMetricsLabels(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(LabeledName("thor.sparsity.cells_filled", "concept", "Anatomy")).Add(3)
	reg.Counter(LabeledName("thor.sparsity.cells_filled", "concept", "Disease")).Add(5)
	exp := render(t, reg, nil, false)
	f := exp.Family("thor_sparsity_cells_filled")
	if f == nil || f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("labeled counter family wrong: %+v", f)
	}
	byConcept := map[string]float64{}
	for _, s := range f.Samples {
		byConcept[s.Label("concept")] = s.Value
	}
	if byConcept["Anatomy"] != 3 || byConcept["Disease"] != 5 {
		t.Fatalf("labeled series wrong: %v", byConcept)
	}
}

// TestOpenMetricsSLO checks the SLO engine's streams render as summaries
// with burn-rate and degraded gauges.
func TestOpenMetricsSLO(t *testing.T) {
	now := time.Unix(1000, 0)
	slo := NewSLO(SLOConfig{
		Latency: 10 * time.Millisecond, MinSamples: 1,
		Now: func() time.Time { return now },
	})
	for i := 0; i < 20; i++ {
		slo.Observe("fill", 50*time.Millisecond, false) // all slow: violating
	}
	slo.Track("stage.match", time.Millisecond)
	exp := render(t, nil, slo, false)

	lf := exp.Family("thor_slo_latency_seconds")
	if lf == nil || lf.Type != "summary" {
		t.Fatalf("latency family missing: %+v", lf)
	}
	streams := map[string]bool{}
	for _, s := range lf.Samples {
		streams[s.Label("stream")] = true
	}
	if !streams["fill"] || !streams["stage.match"] {
		t.Fatalf("streams missing: %v", streams)
	}
	if f := exp.Family("thor_slo_burn_rate"); f == nil || len(f.Samples) != 1 || f.Samples[0].Label("stream") != "fill" {
		t.Fatalf("burn rate should cover judged streams only: %+v", f)
	}
	if f := exp.Family("thor_slo_degraded"); f == nil || f.Samples[0].Value != 1 {
		t.Fatalf("degraded gauge should be 1: %+v", f)
	}
}

// TestOpenMetricsRuntime checks the runtime/metrics section is present and
// lint-clean on whatever Go version runs the tests.
func TestOpenMetricsRuntime(t *testing.T) {
	exp := render(t, nil, nil, true)
	if f := exp.Family("go_goroutines"); f == nil || f.Samples[0].Value < 1 {
		t.Fatalf("go_goroutines missing or absurd: %+v", f)
	}
	if f := exp.Family("go_gc_heap_allocs_bytes"); f == nil || f.Type != "counter" {
		t.Fatalf("go_gc_heap_allocs_bytes missing: %+v", f)
	}
	if f := exp.Family("go_sched_latencies_seconds"); f == nil || f.Type != "histogram" {
		t.Fatalf("go_sched_latencies_seconds missing: %+v", f)
	}
}

// TestMetricsEndpointMatchesDebugVars is the satellite-1 end-to-end check:
// GET /metrics and the JSON debug endpoint served by the same handler
// report identical totals.
func TestMetricsEndpointMatchesDebugVars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("thor.docs").Add(9)
	reg.Histogram("thor.stage.fill").Observe(2 * time.Millisecond)

	srv := httptest.NewServer(DebugHandler(DebugOptions{Registry: reg}))
	defer srv.Close()

	exp, err := promtext.Parse(strings.NewReader(string(get(t, srv, "/metrics"))))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if probs := promtext.Lint(exp); len(probs) > 0 {
		t.Fatalf("/metrics does not lint: %v", probs)
	}
	snap := reg.Snapshot()
	if f := exp.Family("thor_docs"); f == nil || f.Samples[0].Value != float64(snap.Counters["thor.docs"]) {
		t.Fatalf("counter disagrees across endpoints")
	}
	var cnt float64
	for _, s := range exp.Family("thor_stage_fill_seconds").Samples {
		if s.Name == "thor_stage_fill_seconds_count" {
			cnt = s.Value
		}
	}
	if cnt != float64(snap.Histograms["thor.stage.fill"].Count) {
		t.Fatalf("histogram count disagrees across endpoints")
	}
}

// TestTwoDebugHandlersOneProcess is the duplicate-registration regression
// guard: two registries, two SLO engines, two debug handlers and repeated
// expvar publication in one process must not panic.
func TestTwoDebugHandlersOneProcess(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	regA.Counter("thor.docs").Add(1)
	regB.Counter("thor.docs").Add(2)
	regA.PublishExpvar("thor-test-dup")
	regB.PublishExpvar("thor-test-dup") // same name: second publish is a no-op
	sloA, sloB := NewSLO(SLOConfig{}), NewSLO(SLOConfig{})
	sloA.PublishExpvar("thor-test-dup-slo")
	sloB.PublishExpvar("thor-test-dup-slo")

	srvA := httptest.NewServer(DebugHandler(DebugOptions{Registry: regA, SLO: sloA}))
	defer srvA.Close()
	srvB := httptest.NewServer(DebugHandler(DebugOptions{Registry: regB, SLO: sloB}))
	defer srvB.Close()

	// Both serve their own registry on /metrics.
	for srv, want := range map[*httptest.Server]string{srvA: "thor_docs_total 1", srvB: "thor_docs_total 2"} {
		if body := string(get(t, srv, "/metrics")); !strings.Contains(body, want) {
			t.Fatalf("missing %q in /metrics:\n%s", want, body)
		}
	}
	// And both still expose expvar.
	if body := string(get(t, srvA, "/debug/vars")); !strings.Contains(body, "thor-test-dup") {
		t.Fatalf("expvar publication lost: %.120s", body)
	}
}
