package obs

import (
	"sort"
	"time"
)

// DefaultSketchK is the per-level buffer capacity NewSketch uses for k <= 0:
// rank error stays under ~1% for a million observations.
const DefaultSketchK = 512

// Sketch is a deterministic, mergeable streaming quantile estimator in the
// Munro–Paterson / MRL family: values collect in a level-0 buffer of k
// entries; a full level is sorted and every other element is promoted to the
// next level with doubled weight. All decisions are deterministic (promotion
// alternates between even and odd offsets per level, no randomness), so the
// same observation sequence always yields the same sketch — the property the
// SLO engine's tests rely on. Two sketches merge by concatenating levels,
// which makes per-time-slice sketches composable into window estimates.
//
// Rank error is bounded by roughly L/k where L = log2(n/k) is the level
// count: k=512 keeps one million observations under ~2% rank error. Memory
// is O(k·L). A Sketch is not safe for concurrent use; callers (the SLO
// engine) serialize access.
type Sketch struct {
	k      int
	levels [][]float64 // level i holds values of weight 1<<i
	parity []bool      // per-level promotion offset alternation
	count  int64
	min    float64
	max    float64
}

// NewSketch returns an empty sketch with per-level capacity k
// (DefaultSketchK if k <= 0; odd k is rounded up to even).
func NewSketch(k int) *Sketch {
	if k <= 0 {
		k = DefaultSketchK
	}
	if k%2 == 1 {
		k++
	}
	if k < 2 {
		k = 2
	}
	return &Sketch{k: k}
}

// Observe adds one value to the sketch.
func (s *Sketch) Observe(v float64) {
	if s == nil {
		return
	}
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	if len(s.levels) == 0 {
		s.levels = append(s.levels, make([]float64, 0, s.k))
		s.parity = append(s.parity, false)
	}
	s.levels[0] = append(s.levels[0], v)
	if len(s.levels[0]) >= s.k {
		s.carry(0)
	}
}

// ObserveDuration adds a duration, in seconds.
func (s *Sketch) ObserveDuration(d time.Duration) { s.Observe(d.Seconds()) }

// carry compacts level i: sort, promote alternating elements (offset
// flipping each carry so neither the low nor the high tail is systematically
// favored), cascade upward while the next level overflows.
func (s *Sketch) carry(i int) {
	sort.Float64s(s.levels[i])
	if i+1 == len(s.levels) {
		s.levels = append(s.levels, make([]float64, 0, s.k))
		s.parity = append(s.parity, false)
	}
	off := 0
	if s.parity[i] {
		off = 1
	}
	s.parity[i] = !s.parity[i]
	for j := off; j < len(s.levels[i]); j += 2 {
		s.levels[i+1] = append(s.levels[i+1], s.levels[i][j])
	}
	s.levels[i] = s.levels[i][:0]
	if len(s.levels[i+1]) >= s.k {
		s.carry(i + 1)
	}
}

// Count returns the number of observations.
func (s *Sketch) Count() int64 {
	if s == nil {
		return 0
	}
	return s.count
}

// Min and Max return the exact observed extremes (0 on an empty sketch).
func (s *Sketch) Min() float64 {
	if s == nil {
		return 0
	}
	return s.min
}

// Max returns the exact largest observation (0 on an empty sketch).
func (s *Sketch) Max() float64 {
	if s == nil {
		return 0
	}
	return s.max
}

// weighted is one retained sample with its compaction weight.
type weighted struct {
	v float64
	w int64
}

// Query estimates the q-quantile (q clamped to [0,1]); 0 on an empty sketch.
// The estimate is always one of the retained samples, clamped to [Min, Max].
func (s *Sketch) Query(q float64) float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var samples []weighted
	var total int64
	for i, lv := range s.levels {
		w := int64(1) << uint(i)
		for _, v := range lv {
			samples = append(samples, weighted{v, w})
			total += w
		}
	}
	if total == 0 {
		return s.min
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a].v < samples[b].v })
	target := int64(q*float64(total-1)) + 1
	var cum int64
	for _, sm := range samples {
		cum += sm.w
		if cum >= target {
			return clamp(sm.v, s.min, s.max)
		}
	}
	return s.max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Merge folds other into s (other is unchanged). Merging preserves
// determinism: the result depends only on the two sketches' contents, not on
// timing. Sketches with different k merge at s's resolution.
func (s *Sketch) Merge(other *Sketch) {
	if s == nil || other == nil || other.count == 0 {
		return
	}
	if s.count == 0 || other.min < s.min {
		s.min = other.min
	}
	if s.count == 0 || other.max > s.max {
		s.max = other.max
	}
	s.count += other.count
	for i, lv := range other.levels {
		if len(lv) == 0 {
			continue
		}
		for i >= len(s.levels) {
			s.levels = append(s.levels, make([]float64, 0, s.k))
			s.parity = append(s.parity, false)
		}
		s.levels[i] = append(s.levels[i], lv...)
		for len(s.levels[i]) >= s.k {
			s.carry(i)
		}
	}
}

// Reset empties the sketch, retaining its buffers.
func (s *Sketch) Reset() {
	if s == nil {
		return
	}
	for i := range s.levels {
		s.levels[i] = s.levels[i][:0]
		s.parity[i] = false
	}
	s.count, s.min, s.max = 0, 0, 0
}
