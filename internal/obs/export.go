package obs

import (
	"time"
)

// SpanExport is the durable wire form of one span — the schema
// /debug/traces/{id}?format=export serves and cross-process stitchers
// (thorctl -trace) consume. It is deliberately flat and version-stable:
// IDs are lowercase hex strings, the duration is integral nanoseconds, and
// annotations keep the tracer's Attr/Event shapes.
type SpanExport struct {
	// TraceID is the W3C trace the span belongs to (32 hex digits).
	TraceID string `json:"traceId"`
	// SpanID identifies the span within its trace (16 hex digits).
	SpanID string `json:"spanId"`
	// ParentID is the parent span's ID; empty on roots without a remote
	// parent. A parent recorded by another process is normal — stitchers
	// resolve it against fragments fetched from the rest of the fleet.
	ParentID string `json:"parentId,omitempty"`
	// Name identifies the operation ("router.fill", "http.fill", "batch", …).
	Name string `json:"name"`
	// Start is the span's wall-clock start time.
	Start time.Time `json:"start"`
	// DurationNanos is the span's elapsed time in nanoseconds.
	DurationNanos int64 `json:"durationNanos"`
	// Attrs are the span's annotations (backend, shard, endpoint, …).
	Attrs []Attr `json:"attrs,omitempty"`
	// Events are the timestamped annotations recorded while the span was
	// open.
	Events []Event `json:"events,omitempty"`
}

// TraceExport is one process's fragment of a distributed trace in durable
// wire form: every span this process retained for the trace, plus the
// attribution a stitcher needs to label the fragment.
type TraceExport struct {
	// Node is the exporting process's self-reported identity ("" when
	// unconfigured; stitchers then fall back to the address they fetched
	// from).
	Node string `json:"node,omitempty"`
	// TraceID is the trace's identifier (32 hex digits).
	TraceID string `json:"traceId"`
	// Root is the root span's name as this process saw it.
	Root string `json:"root"`
	// Start is the local root span's start time.
	Start time.Time `json:"start"`
	// DurationNanos is the local root span's elapsed time.
	DurationNanos int64 `json:"durationNanos"`
	// Reason is the flight recorder's retention classification.
	Reason string `json:"reason"`
	// SpansDropped counts spans discarded beyond the per-trace bound.
	SpansDropped int `json:"spansDropped,omitempty"`
	// Spans are the retained spans in recording (end-time) order.
	Spans []SpanExport `json:"spans"`
}

// exportSpan converts one recorded span to its wire form.
func exportSpan(sp Span) SpanExport {
	return SpanExport{
		TraceID:       sp.TraceID,
		SpanID:        sp.SpanID,
		ParentID:      sp.ParentID,
		Name:          sp.Name,
		Start:         sp.Start,
		DurationNanos: int64(sp.Duration),
		Attrs:         sp.Attrs,
		Events:        sp.Events,
	}
}

// ExportTrace converts a retained trace to its durable wire form, attributed
// to node.
func ExportTrace(rt RecordedTrace, node string) TraceExport {
	te := TraceExport{
		Node:          node,
		TraceID:       rt.TraceID,
		Root:          rt.Root,
		Start:         rt.Start,
		DurationNanos: int64(rt.Duration),
		Reason:        rt.Reason,
		SpansDropped:  rt.SpansDropped,
		Spans:         make([]SpanExport, len(rt.Spans)),
	}
	for i, sp := range rt.Spans {
		te.Spans[i] = exportSpan(sp)
	}
	return te
}
