package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// finishTrace pushes one synthetic single-span trace through the recorder.
// kind selects the classification signal: "slow", "error", "shed",
// "quarantine" or "healthy".
func finishTrace(r *Recorder, id, kind string) {
	root := Span{
		Name:     "http.fill",
		TraceID:  id,
		SpanID:   NewSpanID().String(),
		Start:    time.Now(),
		Duration: 10 * time.Millisecond,
	}
	switch kind {
	case ReasonSlow:
		root.Duration = time.Second
	case ReasonError:
		root.Events = []Event{{Name: ReasonError, Time: time.Now()}}
	case ReasonShed:
		root.Events = []Event{{Name: ReasonShed, Time: time.Now()}}
	case ReasonQuarantine:
		root.Events = []Event{{Name: ReasonQuarantine, Time: time.Now()}}
	}
	r.add(root)
	r.finish(id, root)
}

// TestRecorderRetentionInvariant pins the tail-sampling guarantee: healthy
// traces can never evict slow/errored/shed/quarantined ones, no matter how
// many healthy traces follow.
func TestRecorderRetentionInvariant(t *testing.T) {
	r := NewRecorder(RecorderOptions{SlowThreshold: 500 * time.Millisecond, KeepInteresting: 8, KeepHealthy: 2})
	interesting := []string{}
	for i, kind := range []string{ReasonSlow, ReasonError, ReasonShed, ReasonQuarantine} {
		id := fmt.Sprintf("%032x", i+1)
		interesting = append(interesting, id)
		finishTrace(r, id, kind)
	}
	// A flood of healthy traffic follows.
	for i := 0; i < 100; i++ {
		finishTrace(r, fmt.Sprintf("%032x", 1000+i), ReasonHealthy)
	}
	for _, id := range interesting {
		rt, ok := r.Trace(id)
		if !ok {
			t.Fatalf("interesting trace %s was evicted by healthy traffic", id)
		}
		if rt.Reason == ReasonHealthy {
			t.Fatalf("trace %s classified healthy, want interesting", id)
		}
	}
	// The healthy ring holds only its own bound, newest last.
	var healthy int
	for _, s := range r.Traces() {
		if s.Reason == ReasonHealthy {
			healthy++
		}
	}
	if healthy != 2 {
		t.Fatalf("retained %d healthy traces, want 2", healthy)
	}
	if _, ok := r.Trace(fmt.Sprintf("%032x", 1099)); !ok {
		t.Fatal("newest healthy trace missing")
	}
	if _, ok := r.Trace(fmt.Sprintf("%032x", 1000)); ok {
		t.Fatal("oldest healthy trace should have been evicted")
	}
}

// TestRecorderInterestingFIFO checks interesting traces evict among
// themselves, oldest first, once their own buffer fills.
func TestRecorderInterestingFIFO(t *testing.T) {
	r := NewRecorder(RecorderOptions{KeepInteresting: 3, KeepHealthy: 1})
	for i := 0; i < 5; i++ {
		finishTrace(r, fmt.Sprintf("%032x", i), ReasonError)
	}
	for i := 0; i < 2; i++ {
		if _, ok := r.Trace(fmt.Sprintf("%032x", i)); ok {
			t.Fatalf("trace %d should have rotated out", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := r.Trace(fmt.Sprintf("%032x", i)); !ok {
			t.Fatalf("trace %d missing from FIFO ring", i)
		}
	}
	finished, retained, dropped := r.Stats()
	if finished != 5 || retained != 3 || dropped != 2 {
		t.Fatalf("stats = %d/%d/%d, want 5/3/2", finished, retained, dropped)
	}
}

// TestRecorderClassifyPrecedence pins error > shed > quarantine > slow.
func TestRecorderClassifyPrecedence(t *testing.T) {
	r := NewRecorder(RecorderOptions{SlowThreshold: time.Millisecond})
	id := strings.Repeat("ab", 16)
	root := Span{
		Name: "http.fill", TraceID: id, SpanID: NewSpanID().String(),
		Duration: time.Second, // slow
		Events: []Event{
			{Name: ReasonQuarantine},
			{Name: ReasonShed},
			{Name: ReasonError},
		},
	}
	r.add(root)
	r.finish(id, root)
	rt, ok := r.Trace(id)
	if !ok || rt.Reason != ReasonError {
		t.Fatalf("reason = %q (found %v), want error", rt.Reason, ok)
	}
}

// TestRecorderQuarantineSpanName checks a span named "quarantine" (the
// pipeline's per-document quarantine span) marks the trace.
func TestRecorderQuarantineSpanName(t *testing.T) {
	r := NewRecorder(RecorderOptions{})
	id := strings.Repeat("cd", 16)
	q := Span{Name: "quarantine", TraceID: id, SpanID: NewSpanID().String()}
	root := Span{Name: "http.fill", TraceID: id, SpanID: NewSpanID().String(), Duration: time.Millisecond}
	r.add(q)
	r.add(root)
	r.finish(id, root)
	rt, ok := r.Trace(id)
	if !ok || rt.Reason != ReasonQuarantine {
		t.Fatalf("reason = %q (found %v), want quarantine", rt.Reason, ok)
	}
	if len(rt.Spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(rt.Spans))
	}
}

func TestRecorderSpanCapAndLookup(t *testing.T) {
	r := NewRecorder(RecorderOptions{MaxSpansPerTrace: 3})
	id := strings.Repeat("ef", 16)
	for i := 0; i < 10; i++ {
		r.add(Span{Name: "doc", TraceID: id, SpanID: NewSpanID().String()})
	}
	root := Span{Name: "http.fill", TraceID: id, Duration: time.Hour}
	r.finish(id, root)
	rt, ok := r.Trace(strings.ToUpper(id)) // case-insensitive lookup
	if !ok {
		t.Fatal("trace not found")
	}
	if len(rt.Spans) != 3 || rt.SpansDropped != 7 {
		t.Fatalf("spans=%d dropped=%d, want 3/7", len(rt.Spans), rt.SpansDropped)
	}
	if _, ok := r.Trace("no-such-trace"); ok {
		t.Fatal("lookup of unknown trace succeeded")
	}
}

func TestRecorderNilIsNoOp(t *testing.T) {
	var r *Recorder
	r.add(Span{TraceID: "x"})
	r.finish("x", Span{})
	if r.Traces() != nil {
		t.Fatal("nil recorder listed traces")
	}
	if _, ok := r.Trace("x"); ok {
		t.Fatal("nil recorder found a trace")
	}
	f, ret, d := r.Stats()
	if f != 0 || ret != 0 || d != 0 {
		t.Fatal("nil recorder has stats")
	}
}
