package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return body
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("thor.docs").Add(3)
	reg.Histogram("thor.stage.match").Observe(5 * time.Millisecond)
	tr := NewTracer(8)
	tr.StartSpan("doc", String("doc", "d1")).End()

	srv := httptest.NewServer(Handler(reg, tr, nil))
	defer srv.Close()

	var snap Snapshot
	if err := json.Unmarshal(get(t, srv, "/debug/thor/metrics"), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if snap.Counters["thor.docs"] != 3 {
		t.Fatalf("metrics counter = %d, want 3", snap.Counters["thor.docs"])
	}
	if snap.Histograms["thor.stage.match"].Count != 1 {
		t.Fatalf("metrics histogram count = %d, want 1", snap.Histograms["thor.stage.match"].Count)
	}

	var dump SpanDump
	if err := json.Unmarshal(get(t, srv, "/debug/thor/spans"), &dump); err != nil {
		t.Fatalf("spans not JSON: %v", err)
	}
	if dump.Total != 1 || len(dump.Spans) != 1 || dump.Spans[0].Name != "doc" {
		t.Fatalf("unexpected span dump: %+v", dump)
	}

	if body := string(get(t, srv, "/debug/vars")); !strings.Contains(body, "cmdline") {
		t.Fatalf("/debug/vars does not look like expvar output: %.80s", body)
	}
	if body := string(get(t, srv, "/debug/pprof/")); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected: %.80s", body)
	}
}

func TestHandlerNilRegistryAndTracer(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil, nil))
	defer srv.Close()
	var snap Snapshot
	if err := json.Unmarshal(get(t, srv, "/debug/thor/metrics"), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	var dump SpanDump
	if err := json.Unmarshal(get(t, srv, "/debug/thor/spans"), &dump); err != nil {
		t.Fatalf("spans not JSON: %v", err)
	}
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("thor.docs").Add(1)
	srv, err := Serve("127.0.0.1:0", reg, NewTracer(4))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// The registry is published under the expvar name "thor".
	if !strings.Contains(string(body), `"thor"`) {
		t.Fatalf("/debug/vars missing published registry: %.120s", body)
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(7)
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if snap.Counters["c"] != 7 {
		t.Fatalf("counter = %d, want 7", snap.Counters["c"])
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	reg := NewRegistry()
	reg.PublishExpvar("thor-test-idem")
	reg.PublishExpvar("thor-test-idem") // second call must not panic
	var nilReg *Registry
	nilReg.PublishExpvar("ignored") // nil-safe
}
