package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestJournalAppendAndOrder(t *testing.T) {
	now := time.Unix(1000, 0)
	j := NewJournal(JournalConfig{
		Capacity: 8,
		Node:     "n1:8080",
		Now:      func() time.Time { now = now.Add(time.Second); return now },
	})
	j.Append(JournalEvent{Kind: EventBreaker, Subject: "b1", From: "closed", To: "open"})
	j.Append(JournalEvent{Kind: EventSLO, From: "healthy", To: "degraded"})
	j.Append(JournalEvent{Kind: EventTableSwap, Previous: 1, Version: 2, Concepts: []string{"Color"}})

	evs := j.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Time.IsZero() {
			t.Fatalf("event %d has zero time", i)
		}
		if i > 0 && !evs[i-1].Time.Before(ev.Time) {
			t.Fatalf("events out of time order: %v !< %v", evs[i-1].Time, ev.Time)
		}
	}
	if evs[0].Kind != EventBreaker || evs[0].From != "closed" || evs[0].To != "open" {
		t.Fatalf("breaker event wrong: %+v", evs[0])
	}
	if evs[2].Previous != 1 || evs[2].Version != 2 || len(evs[2].Concepts) != 1 {
		t.Fatalf("table swap event wrong: %+v", evs[2])
	}
}

func TestJournalRingOverwrite(t *testing.T) {
	j := NewJournal(JournalConfig{Capacity: 4, Node: "n"})
	for i := 0; i < 10; i++ {
		j.Append(JournalEvent{Kind: EventDrain, Subject: fmt.Sprintf("s%d", i)})
	}
	ex := j.Export()
	if ex.Total != 10 || ex.Dropped != 6 || len(ex.Events) != 4 {
		t.Fatalf("export totals wrong: total=%d dropped=%d retained=%d", ex.Total, ex.Dropped, len(ex.Events))
	}
	// Oldest-first: the retained window is s6..s9 with ascending seq.
	for i, ev := range ex.Events {
		if want := fmt.Sprintf("s%d", i+6); ev.Subject != want {
			t.Fatalf("event %d subject = %q, want %q", i, ev.Subject, want)
		}
		if ev.Seq != uint64(i+7) {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, i+7)
		}
	}
	if ex.Node != "n" {
		t.Fatalf("export node = %q", ex.Node)
	}
}

func TestJournalCountsPerKind(t *testing.T) {
	reg := NewRegistry()
	j := NewJournal(JournalConfig{Registry: reg})
	j.Append(JournalEvent{Kind: EventBreaker})
	j.Append(JournalEvent{Kind: EventBreaker})
	j.Append(JournalEvent{Kind: EventSLO})
	j.Append(JournalEvent{Kind: "custom"}) // unknown kind: lazily registered

	snap := reg.Snapshot()
	if got := snap.Counters[`thor.events{kind="breaker"}`]; got != 2 {
		t.Fatalf("breaker count = %d, want 2", got)
	}
	if got := snap.Counters[`thor.events{kind="slo"}`]; got != 1 {
		t.Fatalf("slo count = %d, want 1", got)
	}
	if got := snap.Counters[`thor.events{kind="custom"}`]; got != 1 {
		t.Fatalf("custom count = %d, want 1", got)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Append(JournalEvent{Kind: EventDrain}) // must not panic
	if j.Events() != nil {
		t.Fatal("nil journal should have no events")
	}
	if j.Node() != "" {
		t.Fatal("nil journal should have no node")
	}
	ex := j.Export()
	if ex.Total != 0 || len(ex.Events) != 0 {
		t.Fatalf("nil journal export not empty: %+v", ex)
	}
	// A journal without a registry must also work.
	noReg := NewJournal(JournalConfig{Capacity: 2})
	noReg.Append(JournalEvent{Kind: EventBreaker})
	if len(noReg.Events()) != 1 {
		t.Fatal("registry-less journal dropped its event")
	}
}

func TestJournalConcurrentAppends(t *testing.T) {
	j := NewJournal(JournalConfig{Capacity: 64, Registry: NewRegistry()})
	var wg sync.WaitGroup
	const writers, each = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				j.Append(JournalEvent{Kind: EventBreaker, Subject: "b"})
			}
		}()
	}
	wg.Wait()
	ex := j.Export()
	if ex.Total != writers*each {
		t.Fatalf("total = %d, want %d", ex.Total, writers*each)
	}
	if len(ex.Events) != 64 {
		t.Fatalf("retained = %d, want 64", len(ex.Events))
	}
	// Sequence numbers in the retained window are dense and ascending.
	for i := 1; i < len(ex.Events); i++ {
		if ex.Events[i].Seq != ex.Events[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs: %d then %d", ex.Events[i-1].Seq, ex.Events[i].Seq)
		}
	}
}

// TestJournalAppendZeroAlloc is the ISSUE 10 allocation gate: journal appends
// sit on serving-path edges (drain begin, breaker flips), so an append of a
// pre-registered kind with preformatted strings must not allocate.
func TestJournalAppendZeroAlloc(t *testing.T) {
	j := NewJournal(JournalConfig{Capacity: 128, Registry: NewRegistry(), Node: "n"})
	ev := JournalEvent{Kind: EventBreaker, Subject: "b1:8080", From: "closed", To: "open"}
	j.Append(ev) // warm the path
	allocs := testing.AllocsPerRun(100, func() {
		j.Append(ev)
	})
	if allocs != 0 {
		t.Fatalf("journal append allocates %.1f times per op, want 0", allocs)
	}
}

func TestJournalEventJSONElidesZeroFields(t *testing.T) {
	j := NewJournal(JournalConfig{Capacity: 2})
	j.Append(JournalEvent{Kind: EventDrain, To: "begin"})
	raw, err := json.Marshal(j.Events()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"subject", "from", "trace_id", "version", "previous", "concepts", "detail", "node"} {
		if jsonHasKey(raw, absent) {
			t.Fatalf("zero field %q not elided: %s", absent, raw)
		}
	}
	for _, present := range []string{"seq", "time", "kind", "to"} {
		if !jsonHasKey(raw, present) {
			t.Fatalf("field %q missing: %s", present, raw)
		}
	}
}

// jsonHasKey reports whether a marshaled JSON object has the given top-level
// key.
func jsonHasKey(raw []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}
