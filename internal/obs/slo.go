package obs

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SLOConfig configures an SLO engine. Every zero value has a serving-grade
// default; a zero Latency disables the latency objective (streams are then
// tracked for percentiles only and never judged violating).
type SLOConfig struct {
	// Window is the sliding evaluation window. Zero defaults to 60s.
	Window time.Duration
	// Slices is the number of buckets the window rotates through (finer
	// slices -> smoother expiry). Zero defaults to 6.
	Slices int
	// Latency is the latency objective: a judged observation at or above it
	// consumes error budget. Zero disables the latency objective.
	Latency time.Duration
	// LatencyBudget is the fraction of judged observations allowed to
	// breach Latency before the SLO burns at rate 1. Zero defaults to 0.01.
	LatencyBudget float64
	// ErrorBudget is the fraction of judged observations allowed to error.
	// Zero defaults to 0.01.
	ErrorBudget float64
	// BurnThreshold is the burn rate at or beyond which a stream is
	// violating (degraded). Zero defaults to 1.
	BurnThreshold float64
	// MinSamples is the minimum judged observations in the window before a
	// stream can be judged violating — a cold engine is healthy, not
	// degraded. Zero defaults to 10.
	MinSamples int64
	// SketchK sets the quantile sketch resolution (per-level capacity).
	// Zero defaults to DefaultSketchK.
	SketchK int
	// Now overrides the clock — the deterministic test seam. Nil uses
	// time.Now.
	Now func() time.Time
	// OnTransition, when set, fires on every healthy<->degraded edge
	// observed by Status(): degraded reports the new state, violating the
	// violating streams at the transition (nil on recovery). It fires at
	// most once per edge — Status() is polled concurrently by /readyz,
	// /metrics and the profiler, and only the poll that wins the state CAS
	// invokes the callback. The very first evaluation never fires: a
	// fresh engine entering its initial state is not a transition.
	OnTransition func(degraded bool, violating []string)
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Slices <= 0 {
		c.Slices = 6
	}
	if c.LatencyBudget <= 0 {
		c.LatencyBudget = 0.01
	}
	if c.ErrorBudget <= 0 {
		c.ErrorBudget = 0.01
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 1
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// sloBucket is one time slice of one stream.
type sloBucket struct {
	epoch int64 // which window slice the bucket currently holds; -1 = empty
	total int64
	slow  int64
	errs  int64
	lat   *Sketch
}

// sloStream is one named latency stream (a route or a pipeline stage).
type sloStream struct {
	judged  bool // judged streams drive the burn-rate check
	buckets []sloBucket
}

// StreamStatus is one stream's view in an SLO snapshot.
type StreamStatus struct {
	// Judged reports whether the stream participates in the burn-rate
	// check (routes do, pipeline stages are tracked for percentiles only).
	Judged bool `json:"judged"`
	// Count is the number of observations in the window.
	Count int64 `json:"count"`
	// Slow is the number of observations at or above the latency objective.
	Slow int64 `json:"slow,omitempty"`
	// Errors is the number of errored observations.
	Errors int64 `json:"errors,omitempty"`
	// P50MS, P95MS and P99MS are windowed latency percentiles in
	// milliseconds, merged across the window's slice sketches.
	P50MS float64 `json:"p50Ms"`
	// P95MS is the windowed 95th percentile in milliseconds.
	P95MS float64 `json:"p95Ms"`
	// P99MS is the windowed 99th percentile in milliseconds.
	P99MS float64 `json:"p99Ms"`
	// BurnRate is the worse of the latency and error budget burn rates
	// (1 = budget consumed exactly at the allowed rate).
	BurnRate float64 `json:"burnRate"`
	// Violated reports whether the stream breaches the SLO right now.
	Violated bool `json:"violated"`
}

// SLOStatus is the JSON snapshot of an SLO engine.
type SLOStatus struct {
	// WindowSeconds is the sliding window length.
	WindowSeconds float64 `json:"windowSeconds"`
	// LatencyObjectiveMS is the latency objective in milliseconds (0 when
	// disabled).
	LatencyObjectiveMS float64 `json:"latencyObjectiveMs"`
	// Degraded reports whether any judged stream is violating.
	Degraded bool `json:"degraded"`
	// Violating lists the violating streams, sorted.
	Violating []string `json:"violating,omitempty"`
	// Streams maps stream names to their windowed status.
	Streams map[string]StreamStatus `json:"streams"`
}

// SLO is a streaming SLO engine: per-stream windowed latency percentiles
// (mergeable quantile sketches, one per time slice) plus a burn-rate check
// over the latency and error budgets. Judged streams (Observe) drive the
// degraded signal consumed by /readyz; tracked streams (Track) publish
// percentiles only. A nil *SLO is a valid disabled engine: Observe, Track
// and Degraded no-op.
type SLO struct {
	mu  sync.Mutex
	cfg SLOConfig

	streams map[string]*sloStream

	// lastState is the edge detector behind OnTransition: 0 = never
	// evaluated, 1 = healthy, 2 = degraded. Status() CASes the observed
	// state in so exactly one concurrent poll fires the callback per edge.
	lastState atomic.Int32
}

// NewSLO returns an SLO engine with the given configuration.
func NewSLO(cfg SLOConfig) *SLO {
	return &SLO{cfg: cfg.withDefaults(), streams: make(map[string]*sloStream)}
}

// sliceDur is the duration of one window slice.
func (s *SLO) sliceDur() time.Duration {
	return s.cfg.Window / time.Duration(s.cfg.Slices)
}

// Observe records one judged observation: it feeds the stream's percentile
// sketch and consumes latency/error budget. No-op on a nil engine.
func (s *SLO) Observe(stream string, d time.Duration, errored bool) {
	s.observe(stream, d, errored, true)
}

// Track records one percentile-only observation: the stream is reported in
// Status but never judged violating. No-op on a nil engine.
func (s *SLO) Track(stream string, d time.Duration) {
	s.observe(stream, d, false, false)
}

func (s *SLO) observe(stream string, d time.Duration, errored, judged bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.streams[stream]
	if st == nil {
		st = &sloStream{judged: judged, buckets: make([]sloBucket, s.cfg.Slices)}
		for i := range st.buckets {
			st.buckets[i].epoch = -1
			st.buckets[i].lat = NewSketch(s.cfg.SketchK)
		}
		s.streams[stream] = st
	}
	epoch := s.cfg.Now().UnixNano() / int64(s.sliceDur())
	b := &st.buckets[int(epoch%int64(s.cfg.Slices))]
	if b.epoch != epoch {
		b.epoch = epoch
		b.total, b.slow, b.errs = 0, 0, 0
		b.lat.Reset()
	}
	b.total++
	if errored {
		b.errs++
	}
	if s.cfg.Latency > 0 && d >= s.cfg.Latency {
		b.slow++
	}
	b.lat.Observe(d.Seconds())
}

// Status snapshots every stream over the current window.
func (s *SLO) Status() SLOStatus {
	out := SLOStatus{Streams: map[string]StreamStatus{}}
	if s == nil {
		return out
	}
	s.mu.Lock()
	out.WindowSeconds = s.cfg.Window.Seconds()
	out.LatencyObjectiveMS = float64(s.cfg.Latency) / float64(time.Millisecond)
	epoch := s.cfg.Now().UnixNano() / int64(s.sliceDur())
	for name, st := range s.streams {
		ss := s.streamStatusLocked(st, epoch)
		out.Streams[name] = ss
		if ss.Violated {
			out.Degraded = true
			out.Violating = append(out.Violating, name)
		}
	}
	s.mu.Unlock()
	sort.Strings(out.Violating)
	s.fireTransition(out)
	return out
}

// fireTransition runs the OnTransition edge detector against one snapshot.
// It is called after the engine lock is released, so the callback may call
// back into the engine freely; the CAS below is the only synchronization
// the edge itself needs.
func (s *SLO) fireTransition(st SLOStatus) {
	if s.cfg.OnTransition == nil {
		return
	}
	state := int32(1)
	if st.Degraded {
		state = 2
	}
	for {
		prev := s.lastState.Load()
		if prev == state {
			return // no edge
		}
		if !s.lastState.CompareAndSwap(prev, state) {
			continue // raced with a concurrent poll; re-inspect
		}
		if prev == 0 {
			return // first evaluation: initial state, not a transition
		}
		s.cfg.OnTransition(st.Degraded, st.Violating)
		return
	}
}

// streamStatusLocked folds the live window slices of one stream: counters
// summed, slice sketches merged into one window sketch.
func (s *SLO) streamStatusLocked(st *sloStream, epoch int64) StreamStatus {
	ss := StreamStatus{Judged: st.judged}
	window := NewSketch(s.cfg.SketchK)
	minEpoch := epoch - int64(s.cfg.Slices) + 1
	for i := range st.buckets {
		b := &st.buckets[i]
		if b.epoch < minEpoch || b.epoch > epoch {
			continue // stale slice: expired out of the window
		}
		ss.Count += b.total
		ss.Slow += b.slow
		ss.Errors += b.errs
		window.Merge(b.lat)
	}
	if ss.Count > 0 {
		ss.P50MS = window.Query(0.50) * 1e3
		ss.P95MS = window.Query(0.95) * 1e3
		ss.P99MS = window.Query(0.99) * 1e3
	}
	if st.judged && ss.Count > 0 {
		latBurn := 0.0
		if s.cfg.Latency > 0 {
			latBurn = (float64(ss.Slow) / float64(ss.Count)) / s.cfg.LatencyBudget
		}
		errBurn := (float64(ss.Errors) / float64(ss.Count)) / s.cfg.ErrorBudget
		ss.BurnRate = latBurn
		if errBurn > ss.BurnRate {
			ss.BurnRate = errBurn
		}
		ss.Violated = ss.Count >= s.cfg.MinSamples && ss.BurnRate >= s.cfg.BurnThreshold
	}
	return ss
}

// Degraded reports whether any judged stream currently violates the SLO.
func (s *SLO) Degraded() bool {
	if s == nil {
		return false
	}
	return s.Status().Degraded
}

// PublishExpvar registers the engine's live status under the given name in
// the process-wide expvar namespace (visible in /debug/vars). Idempotent;
// nil-safe.
func (s *SLO) PublishExpvar(name string) {
	if s == nil || name == "" {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return s.Status() }))
}
