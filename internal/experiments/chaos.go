package experiments

import (
	"fmt"
	"strings"
	"time"

	"thor/internal/chaos"
	"thor/internal/datagen"
	"thor/internal/obs"
	"thor/internal/segment"
	"thor/internal/thor"
)

// ChaosReport summarizes one chaos run of the pipeline over a dataset,
// including the central fault-isolation verdict: whether the documents that
// survived injection produced results bit-identical to a clean run over
// exactly that subset.
type ChaosReport struct {
	// Dataset names the workload.
	Dataset string
	// Seed is the injection seed; re-running with it replays the schedule.
	Seed uint64
	// Documents is the total document count, Completed + Quarantined +
	// Skipped.
	Documents int
	// Completed is the number of documents that finished extraction.
	Completed int
	// Quarantined is the number of documents isolated by injected faults.
	Quarantined int
	// Skipped is the number of documents never attempted (hard stop).
	Skipped int
	// Retried counts transient faults absorbed by the retry policy.
	Retried int
	// Failures lists the quarantined documents with stage and cause.
	Failures []thor.DocumentFailure
	// Injected is what the injector actually delivered.
	Injected chaos.Stats
	// QuarantineMetric is the thor.quarantined counter, proving the faults
	// surface through the observability layer too.
	QuarantineMetric int64
	// HealthyIdentical is the invariant: entities, enriched table and
	// deterministic counters of the faulted run match a clean run over the
	// surviving subset exactly.
	HealthyIdentical bool
	// Mismatch describes the first divergence when HealthyIdentical is
	// false.
	Mismatch string
	// Elapsed is the faulted run's wall-clock time.
	Elapsed time.Duration
}

// String renders the report as the human-readable block thorbench -chaos
// prints, including the isolation verdict.
func (r *ChaosReport) String() string {
	verdict := "healthy docs bit-identical to clean run"
	if !r.HealthyIdentical {
		verdict = "ISOLATION VIOLATED: " + r.Mismatch
	}
	return fmt.Sprintf(
		"chaos[%s seed=%d]: %d docs → %d completed, %d quarantined, %d skipped, %d retries; injected %d errors (%d transient), %d panics, %d sleeps, %d truncated, %d corrupted; %s",
		r.Dataset, r.Seed, r.Documents, r.Completed, r.Quarantined, r.Skipped, r.Retried,
		r.Injected.Errors, r.Injected.Transient, r.Injected.Panics, r.Injected.Sleeps,
		r.Injected.Truncated, r.Injected.Corrupted, verdict)
}

// RunChaos drives the full pipeline over ds.Test under fault injection and
// checks the isolation invariant. The injector perturbs both the document
// source (WrapDocs: truncation, byte corruption) and every stage boundary
// (FaultHook: errors, panics, latency); transient faults get a short retry
// budget; everything that still fails is quarantined (MaxFailureFraction=1,
// so the run itself always completes). The reference run sees the same
// wrapped documents — source perturbation is part of the input, not a fault
// to isolate — but no stage faults.
//
// Fresh matcher and parse caches are used on both sides: corrupted text must
// not seed the shared experiment caches.
func RunChaos(ds *datagen.Dataset, ccfg chaos.Config) *ChaosReport {
	inj := chaos.New(ccfg)
	docs := inj.WrapDocs(ds.Test.Docs)
	reg := obs.NewRegistry()

	cfg := thor.Config{
		Tau:                BestTau,
		Knowledge:          ds.Table,
		Lexicon:            ds.Lexicon,
		Workers:            4,
		MaxFailureFraction: 1,
		Retry:              chaos.Backoff{Attempts: 3, Base: 100 * time.Microsecond, Cap: 5 * time.Millisecond, Seed: ccfg.Seed},
		FaultHook: func(doc string, stage thor.Stage) error {
			return inj.Fault(doc, string(stage))
		},
		Metrics: reg,
	}
	start := time.Now()
	res, err := thor.Run(ds.TestTable(), ds.Space, docs, cfg)
	elapsed := time.Since(start)

	rep := &ChaosReport{
		Dataset:   ds.Name,
		Seed:      ccfg.Seed,
		Documents: len(docs),
		Injected:  inj.Stats(),
		Elapsed:   elapsed,
	}
	if err != nil {
		// MaxFailureFraction=1 means any error here is a harness bug, not
		// an injected fault; report it as an isolation failure.
		rep.Mismatch = fmt.Sprintf("run failed outright: %v", err)
		return rep
	}
	rep.Completed = len(res.Stats.CompletedDocs)
	rep.Quarantined = len(res.Stats.Quarantined)
	rep.Skipped = res.Stats.Skipped
	rep.Retried = res.Stats.Retried
	rep.Failures = res.Stats.Quarantined
	rep.QuarantineMetric = reg.Snapshot().Counters["thor.quarantined"]

	subset := make([]segment.Document, 0, rep.Completed)
	for _, i := range res.Stats.CompletedDocs {
		subset = append(subset, docs[i])
	}
	clean, err := thor.Run(ds.TestTable(), ds.Space, subset, thor.Config{
		Tau:       BestTau,
		Knowledge: ds.Table,
		Lexicon:   ds.Lexicon,
	})
	if err != nil {
		rep.Mismatch = fmt.Sprintf("clean reference run failed: %v", err)
		return rep
	}
	rep.HealthyIdentical, rep.Mismatch = sameResults(res, clean)
	return rep
}

// sameResults compares the deterministic outputs of two runs: the extracted
// entities, the enriched table and the count statistics.
func sameResults(a, b *thor.Result) (bool, string) {
	ea, eb := a.AllEntities(), b.AllEntities()
	if len(ea) != len(eb) {
		return false, fmt.Sprintf("entity counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false, fmt.Sprintf("entity %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	if a.Stats.Sentences != b.Stats.Sentences || a.Stats.Phrases != b.Stats.Phrases ||
		a.Stats.Candidates != b.Stats.Candidates || a.Stats.Filled != b.Stats.Filled {
		return false, fmt.Sprintf("counters differ: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Stats.Sentences, a.Stats.Phrases, a.Stats.Candidates, a.Stats.Filled,
			b.Stats.Sentences, b.Stats.Phrases, b.Stats.Candidates, b.Stats.Filled)
	}
	var ca, cb strings.Builder
	if err := a.Table.WriteCSV(&ca); err != nil {
		return false, fmt.Sprintf("serializing faulted table: %v", err)
	}
	if err := b.Table.WriteCSV(&cb); err != nil {
		return false, fmt.Sprintf("serializing clean table: %v", err)
	}
	if ca.String() != cb.String() {
		return false, "enriched tables differ"
	}
	return true, ""
}
