package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These tests assert the paper's qualitative claims — the orderings,
// monotonicities and crossovers of Section VI — on the shared comparison
// results. They are the repository's reproduction contract.

func TestExperiment1TauTradeoffShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	c := DiseaseComparison()
	if len(c.Thor) != len(Taus) {
		t.Fatalf("thor sweep rows = %d", len(c.Thor))
	}
	// Precision must not decrease by more than noise as τ grows; the ends
	// must order strictly (Table V: 0.39 → 0.63).
	first, last := c.Thor[0].Report.Overall, c.Thor[len(c.Thor)-1].Report.Overall
	if !(last.Precision() > first.Precision()) {
		t.Errorf("precision did not rise with τ: %.3f -> %.3f", first.Precision(), last.Precision())
	}
	if !(last.Recall() < first.Recall()-0.15) {
		t.Errorf("recall did not fall with τ: %.3f -> %.3f", first.Recall(), last.Recall())
	}
	for i := 1; i < len(c.Thor); i++ {
		p0, p1 := c.Thor[i-1].Report.Overall.Precision(), c.Thor[i].Report.Overall.Precision()
		if p1 < p0-0.04 {
			t.Errorf("precision dropped sharply at τ=%.1f: %.3f -> %.3f", c.Thor[i].Tau, p0, p1)
		}
	}
	// The F1 peak must fall strictly inside the sweep (Table V: τ=0.7).
	bestIdx, bestF1 := 0, 0.0
	for i, r := range c.Thor {
		if f := r.Report.Overall.F1(); f > bestF1 {
			bestIdx, bestF1 = i, f
		}
	}
	if bestIdx == 0 || bestIdx == len(c.Thor)-1 {
		t.Errorf("F1 peak at sweep boundary (τ=%.1f)", c.Thor[bestIdx].Tau)
	}
}

func TestExperiment1InferenceTimeDropsWithTau(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	c := DiseaseComparison()
	// Fig 6: stricter τ means fewer representatives and candidates, so the
	// run gets faster. Compare the sweep ends (individual steps may jitter).
	if !(c.Thor[len(c.Thor)-1].Measured < c.Thor[0].Measured) {
		t.Errorf("inference time did not drop: τ=0.5 %v vs τ=1.0 %v",
			c.Thor[0].Measured, c.Thor[len(c.Thor)-1].Measured)
	}
}

func TestExperiment1SystemOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	c := DiseaseComparison()
	thorBest := c.ThorAt(BestTau).Report.Overall.F1()
	f1 := func(name string) float64 { return c.Other(name).Report.Overall.F1() }

	// Table V's headline: THOR beats every alternative except LM-Human.
	for _, name := range []string{"Baseline", "LM-SD", "GPT-4", "UniNER"} {
		if thorBest <= f1(name) {
			t.Errorf("THOR (%.3f) should beat %s (%.3f)", thorBest, name, f1(name))
		}
	}
	if f1("LM-Human") <= thorBest {
		t.Errorf("LM-Human (%.3f) should beat THOR (%.3f)", f1("LM-Human"), thorBest)
	}
	// Baseline: high precision, collapsed recall.
	b := c.Other("Baseline").Report.Overall
	if b.Recall() > 0.30 {
		t.Errorf("Baseline recall = %.3f, should collapse (paper: 0.18)", b.Recall())
	}
	// LM-Human: the precision champion.
	lh := c.Other("LM-Human").Report.Overall
	for _, r := range c.All() {
		if r.Name != "LM-Human" && r.Report.Overall.Precision() >= lh.Precision() {
			t.Errorf("%s precision (%.3f) >= LM-Human (%.3f)",
				r.Name, r.Report.Overall.Precision(), lh.Precision())
		}
	}
}

func TestExperiment1FailureModes(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	c := DiseaseComparison()
	// UniNER scores zero on the under-represented Composition class
	// (Table VII).
	un := c.Other("UniNER").Report
	if o := un.PerConcept["Composition"]; o.Predicted() != 0 || o.TP() != 0 {
		t.Errorf("UniNER on Composition: %+v, want zero", o)
	}
	// LM-SD is biased toward the majority class: 'Disease' takes an outsized
	// share of its predictions (Table VII: 819/2421 ≈ 34%%).
	sd := c.Other("LM-SD").Report
	share := float64(sd.PerConcept["Disease"].Predicted()) / float64(sd.Overall.Predicted())
	if share < 0.18 {
		t.Errorf("LM-SD Disease share = %.2f, majority-class bias not visible", share)
	}
	// THOR has the best overall sensitivity (Table VIII).
	thorSens := c.ThorAt(0.8).Report.Overall.Sensitivity()
	for _, r := range c.Others {
		if name := r.Name; name != "LM-Human" && r.Report.Overall.Sensitivity() >= thorSens {
			t.Errorf("%s sensitivity (%.3f) >= THOR (%.3f)",
				name, r.Report.Overall.Sensitivity(), thorSens)
		}
	}
}

func TestExperiment2AnnotationStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("annotation study is slow")
	}
	s := Annotation()
	if len(s.Points) != len(AnnotationSubsets) {
		t.Fatalf("points = %d", len(s.Points))
	}
	// F1 must grow with annotation volume (within noise).
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].F1 < s.Points[i-1].F1-0.05 {
			t.Errorf("F1 dropped between %s (%.3f) and %s (%.3f)",
				s.Points[i-1].Name, s.Points[i-1].F1, s.Points[i].Name, s.Points[i].F1)
		}
	}
	// The smallest subset must be far below THOR; the full model above it.
	if s.Points[0].F1 >= s.ThorF1 {
		t.Error("single-subject LM-Human should not beat THOR")
	}
	last := s.Points[len(s.Points)-1]
	if last.F1 <= s.ThorF1 {
		t.Errorf("fully annotated LM-Human (%.3f) should beat THOR (%.3f)", last.F1, s.ThorF1)
	}
	// The crossover must land strictly inside the sweep (paper: 20
	// subjects), implying tens of hours of annotation for parity.
	if s.CrossoverSubjects <= 1 || s.CrossoverSubjects >= 240 {
		t.Errorf("crossover at %d subjects, want inside the sweep", s.CrossoverSubjects)
	}
	// Annotation time grows linearly with words and is conservative.
	for _, p := range s.Points {
		if p.AnnotationSeconds != s.Cost.SecondsForWords(p.Words) {
			t.Errorf("%s: annotation time mismatch", p.Name)
		}
	}
	// THOR's effort column is zero by construction: no annotations at all.
	if s.ThorWords <= 0 || s.ThorEntities <= 0 {
		t.Error("THOR's structured-data stats missing")
	}
}

func TestExperiment3Generalizability(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	c := ResumeComparison()
	// Table XI lists THOR's top-3 precision rows; its recall claim is made
	// for the τ=0.8 configuration (paper: R=0.50, highest of all systems).
	thorRecallRow := c.ThorAt(0.8).Report.Overall
	thor := c.ThorAt(1.0).Report.Overall

	// THOR has the highest recall and TP count of all systems.
	for _, r := range c.Others {
		if r.Report.Overall.Recall() >= thorRecallRow.Recall() {
			t.Errorf("%s recall (%.3f) >= THOR τ=0.8 (%.3f)",
				r.Name, r.Report.Overall.Recall(), thorRecallRow.Recall())
		}
		if r.Report.Overall.TP() >= thorRecallRow.TP() {
			t.Errorf("%s TP (%d) >= THOR τ=0.8 (%d)", r.Name, r.Report.Overall.TP(), thorRecallRow.TP())
		}
	}
	// GPT-4 and THOR are the two best F1s, close together.
	gpt := c.Other("GPT-4").Report.Overall
	for _, name := range []string{"Baseline", "LM-SD", "UniNER", "LM-Human"} {
		o := c.Other(name).Report.Overall
		if o.F1() >= thor.F1() && o.F1() >= gpt.F1() {
			t.Errorf("%s F1 (%.3f) beats both THOR (%.3f) and GPT-4 (%.3f)",
				name, o.F1(), thor.F1(), gpt.F1())
		}
	}
	// UniNER collapses (context window + coverage): recall far below its
	// Disease A-Z figure.
	if r := c.Other("UniNER").Report.Overall.Recall(); r > 0.25 {
		t.Errorf("UniNER résumé recall = %.3f, should collapse", r)
	}
	// Every system scores lower on Résumé than on Disease A-Z (the
	// generalizability gap).
	d := DiseaseComparison()
	for _, name := range []string{"LM-SD", "UniNER", "LM-Human"} {
		if c.Other(name).Report.Overall.F1() >= d.Other(name).Report.Overall.F1() {
			t.Errorf("%s should score lower on Résumé than Disease A-Z", name)
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	c := DiseaseComparison()
	s := Annotation()
	r := ResumeComparison()
	checks := []struct {
		name   string
		render func(buf *bytes.Buffer)
		want   string
	}{
		{"TableV", func(b *bytes.Buffer) { RenderTableV(b, c) }, "Table V"},
		{"Fig5", func(b *bytes.Buffer) { RenderFig5(b, c) }, "Fig 5"},
		{"Fig6", func(b *bytes.Buffer) { RenderFig6(b, c) }, "Fig 6"},
		{"TableVI", func(b *bytes.Buffer) { RenderTableVI(b, c) }, "Table VI"},
		{"Fig7", func(b *bytes.Buffer) { RenderFig7(b, c) }, "Fig 7"},
		{"TableVII", func(b *bytes.Buffer) { RenderTableVII(b, c) }, "Table VII"},
		{"TableVIII", func(b *bytes.Buffer) { RenderTableVIII(b, c) }, "Table VIII"},
		{"TableIX", func(b *bytes.Buffer) { RenderTableIX(b, s) }, "Table IX"},
		{"TableX", func(b *bytes.Buffer) { RenderTableX(b, s) }, "Table X"},
		{"Fig8", func(b *bytes.Buffer) { RenderFig8(b, s) }, "Fig 8"},
		{"TableXI", func(b *bytes.Buffer) { RenderTableXI(b, r) }, "Table XI"},
		{"Fig9", func(b *bytes.Buffer) { RenderFig7(b, r) }, "Fig 7/9"},
		{"Fig10", func(b *bytes.Buffer) { RenderFig10(b, r) }, "Fig 10"},
	}
	for _, chk := range checks {
		var buf bytes.Buffer
		chk.render(&buf)
		out := buf.String()
		if !strings.Contains(out, chk.want) {
			t.Errorf("%s: missing header %q in output", chk.name, chk.want)
		}
		if len(strings.Split(out, "\n")) < 4 {
			t.Errorf("%s: suspiciously short output:\n%s", chk.name, out)
		}
	}
}

func TestSimulatedCostModel(t *testing.T) {
	// At the paper's corpus sizes the cost model must reproduce the
	// magnitudes of Table V (3,626 / 3,564 / 3,298 seconds).
	const tableWords, trainWords, testWords = 14010, 168816, 19237
	cases := []struct {
		model    string
		min, max float64
	}{
		{"LM-SD", 3000, 4300},
		{"LM-Human", 3000, 4300},
		{"UniNER", 2700, 3900},
		{"Baseline", 0, 0},
		{"GPT-4", 0, 0},
	}
	for _, c := range cases {
		got := SimulatedCost(c.model, tableWords, trainWords, testWords).Seconds()
		if got < c.min || got > c.max {
			t.Errorf("SimulatedCost(%s) = %.0fs, want [%.0f, %.0f]", c.model, got, c.min, c.max)
		}
	}
}

func TestTrainSubset(t *testing.T) {
	ds := DiseaseDataset()
	sub := trainSubset(ds, 5)
	if len(sub.Subjects) != 5 {
		t.Fatalf("subjects = %d", len(sub.Subjects))
	}
	keep := map[string]bool{}
	for _, s := range sub.Subjects {
		keep[strings.ToLower(s)] = true
	}
	for _, d := range sub.Docs {
		if !keep[strings.ToLower(d.DefaultSubject)] {
			t.Errorf("doc %q outside subset", d.Name)
		}
	}
	for _, g := range sub.Gold {
		if !keep[g.Subject] {
			t.Errorf("gold mention %v outside subset", g)
		}
	}
	full := trainSubset(ds, 100000)
	if len(full.Subjects) != len(ds.Train.Subjects) {
		t.Error("oversized subset should return the full split")
	}
}

func TestWriteCSVSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	dir := t.TempDir()
	if err := WriteCSVSeries(dir, DiseaseComparison(), ResumeComparison(), Annotation()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"table5.csv", "fig5.csv", "fig6.csv", "table6.csv", "fig7.csv",
		"table7.csv", "table8.csv", "table10.csv", "fig8.csv",
		"table11.csv", "fig9.csv", "fig10.csv",
	} {
		body, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		lines := strings.Count(string(body), "\n")
		if lines < 3 {
			t.Errorf("%s: only %d lines", name, lines)
		}
	}
}

func TestTuneTauOnValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("validation sweep is slow")
	}
	ds := DiseaseDataset()
	f1Tune, err := TuneTau(ds, TuneF1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1Tune.Scores) != len(Taus) {
		t.Fatalf("scores = %d", len(f1Tune.Scores))
	}
	// The F1-optimal τ must fall strictly inside the sweep (the validation
	// split mirrors the test split's geometry).
	if f1Tune.Tau == Taus[0] || f1Tune.Tau == Taus[len(Taus)-1] {
		t.Errorf("validation-tuned τ at boundary: %.1f", f1Tune.Tau)
	}
	// Precision-tuning must pick a τ ≥ recall-tuning's choice.
	pTune, err := TuneTau(ds, TunePrecision)
	if err != nil {
		t.Fatal(err)
	}
	rTune, err := TuneTau(ds, TuneRecall)
	if err != nil {
		t.Fatal(err)
	}
	if pTune.Tau < rTune.Tau {
		t.Errorf("precision τ (%.1f) below recall τ (%.1f)", pTune.Tau, rTune.Tau)
	}
	// The tuned τ must transfer: its test-split F1 must be within a small
	// margin of the test-optimal τ's F1.
	c := DiseaseComparison()
	tuned := c.ThorAt(f1Tune.Tau).Report.Overall.F1()
	best := 0.0
	for _, r := range c.Thor {
		if f := r.Report.Overall.F1(); f > best {
			best = f
		}
	}
	if tuned < best-0.04 {
		t.Errorf("validation-tuned τ transfers poorly: %.3f vs best %.3f", tuned, best)
	}
}
